#!/usr/bin/env bash
# Smoke-runs every bench binary with a tiny workload and records one
# BENCH_<name>.json per binary so CI starts a perf trajectory.
#
# Usage: scripts/bench_smoke.sh [build_dir] [output_dir]
#
# The table/bench drivers read APLUS_SCALE (a multiplier on the paper's
# dataset sizes); bench_micro_index takes Google Benchmark flags. Both
# are pinned to a few-second budget here — this job guards "the benches
# still run", not absolute numbers.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}/bench-smoke}"
SCALE="${APLUS_SMOKE_SCALE:-0.0002}"
# Cap the baseline engines' per-query time limit (default 60s in the
# bench) so smoke runs stay at a few seconds per binary.
export APLUS_BASELINE_TL_SECONDS="${APLUS_BASELINE_TL_SECONDS:-2}"
mkdir -p "${OUT_DIR}"

GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
HOST="$(uname -sm)"

run_one() {
  local name="$1"
  shift
  local bin="${BUILD_DIR}/${name}"
  local log="${OUT_DIR}/${name}.log"
  local start end status elapsed
  # Benches that support it write per-case metrics here; the file name
  # keeps the BENCH_ prefix so bench_compare.py picks it up.
  export APLUS_BENCH_JSON="${OUT_DIR}/BENCH_${name}_cases.json"
  start=$(date +%s.%N)
  if "$@" "${bin}" ${EXTRA_ARGS:-} > "${log}" 2>&1; then
    status=0
  else
    status=$?
  fi
  end=$(date +%s.%N)
  elapsed=$(awk -v a="${start}" -v b="${end}" 'BEGIN { printf "%.3f", b - a }')
  cat > "${OUT_DIR}/BENCH_${name}.json" <<EOF
{
  "bench": "${name}",
  "status": ${status},
  "wall_seconds": ${elapsed},
  "scale": "${SCALE}",
  "git_sha": "${GIT_SHA}",
  "host": "${HOST}"
}
EOF
  if [[ ${status} -ne 0 ]]; then
    echo "FAIL ${name} (rc=${status}); last log lines:" >&2
    tail -20 "${log}" >&2
    return "${status}"
  fi
  echo "OK   ${name} (${elapsed}s)"
}

# Discover the built bench binaries rather than duplicating the list
# in bench/CMakeLists.txt; a new bench_* target is smoked automatically.
mapfile -t BENCHES < <(find "${BUILD_DIR}" -maxdepth 1 -name 'bench_*' -type f -executable \
  | sort | xargs -r -n1 basename)
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  echo "ERROR: no bench_* binaries in ${BUILD_DIR}; build the bench_all target first" >&2
  exit 1
fi

FAILED=0
for bench in "${BENCHES[@]}"; do
  if [[ "${bench}" == "bench_micro_index" ]]; then
    # Google Benchmark micro-suite; 1.7.x wants a bare double for min_time.
    EXTRA_ARGS="--benchmark_min_time=0.01" run_one "${bench}" env || FAILED=1
  elif [[ "${bench}" == "bench_table2_reconfig" ]]; then
    # SQ5/SQ13 dominate the full Table II sweep (tens of seconds even at
    # smoke scale); the smoke path caps the per-dataset query count.
    run_one "${bench}" env APLUS_SCALE="${SCALE}" \
      APLUS_TABLE2_QUERIES="${APLUS_TABLE2_QUERIES:-4}" || FAILED=1
  elif [[ "${bench}" == "bench_parallel_scaling" ]]; then
    # Thread sweep capped to the runner's cores (oversubscribed counts
    # add smoke time without adding signal) and one timed rep.
    CORES="$(nproc 2>/dev/null || echo 1)"
    run_one "${bench}" env APLUS_SCALE="${SCALE}" \
      APLUS_PAR_MAX_THREADS="${APLUS_PAR_MAX_THREADS:-$(( CORES < 8 ? CORES : 8 ))}" \
      APLUS_PAR_REPS="${APLUS_PAR_REPS:-1}" || FAILED=1
  elif [[ "${bench}" == "bench_mixed" ]]; then
    # Small request budget and a slow ingest stream: smoke guards the
    # concurrent read/write path end-to-end, the perf-gate job carries
    # the throughput comparison.
    run_one "${bench}" env APLUS_SCALE="${SCALE}" \
      APLUS_MIXED_REQS="${APLUS_MIXED_REQS:-200}" \
      APLUS_MIXED_RATE="${APLUS_MIXED_RATE:-5000}" || FAILED=1
  elif [[ "${bench}" == "bench_server" ]]; then
    # Wire-protocol loadgen: real sockets on an in-process server. A
    # small request budget keeps the six arms + overload pass at a few
    # seconds; the perf-gate job runs the full stream.
    run_one "${bench}" env APLUS_SCALE="${SCALE}" \
      APLUS_SERVER_REQS="${APLUS_SERVER_REQS:-200}" || FAILED=1
  elif [[ "${bench}" == "bench_serving" ]]; then
    # Fewer requests and one timed rep at smoke scale; the perf-gate job
    # runs the full request stream.
    run_one "${bench}" env APLUS_SCALE="${SCALE}" \
      APLUS_SERVING_REQS="${APLUS_SERVING_REQS:-300}" \
      APLUS_SERVING_REPS="${APLUS_SERVING_REPS:-1}" || FAILED=1
  elif [[ "${bench}" == "bench_cancel" ]]; then
    # Time-to-stop tails: a handful of samples guards the stop path
    # end-to-end; the perf-gate job runs the full sample count.
    run_one "${bench}" env \
      APLUS_CANCEL_REPS="${APLUS_CANCEL_REPS:-5}" || FAILED=1
  elif [[ "${bench}" == "bench_segments" ]]; then
    # Seal/reopen + footprint at smoke scale with one timed rep; the
    # perf-gate job runs the full defaults and gates the seg/mem ratio
    # and compression floor.
    run_one "${bench}" env APLUS_SCALE="${SCALE}" \
      APLUS_SEGMENT_REPS="${APLUS_SEGMENT_REPS:-1}" || FAILED=1
  elif [[ "${bench}" == "bench_intersect" ]]; then
    # One timed rep and fewer tuples: smoke guards "it runs and reports",
    # the perf-gate job runs it at full defaults.
    run_one "${bench}" env APLUS_SCALE="${SCALE}" \
      APLUS_INTERSECT_TUPLES="${APLUS_INTERSECT_TUPLES:-500}" \
      APLUS_INTERSECT_REPS="${APLUS_INTERSECT_REPS:-1}" || FAILED=1
  else
    run_one "${bench}" env APLUS_SCALE="${SCALE}" || FAILED=1
  fi
done

echo
echo "Smoke results in ${OUT_DIR}:"
ls "${OUT_DIR}"/BENCH_*.json 2>/dev/null || true
exit "${FAILED}"
