#!/usr/bin/env python3
"""Regression gate over BENCH_*.json artifacts.

Compares two directories of bench results (as written by
scripts/bench_smoke.sh plus any per-case APLUS_BENCH_JSON files the
bench binaries emit) and fails when the new run regresses past the
threshold:

    scripts/bench_compare.py <base_dir> <new_dir> [--threshold 1.15]
                             [--min-seconds 0.05] [--budgets budgets.json]

Rules:
  * Only benches present in BOTH directories with status 0 are compared;
    a bench that newly appears is reported as informational, a bench
    that disappeared fails the gate (a perf artifact silently vanishing
    is exactly what the gate exists to catch).
  * `cases` sub-metrics (per-workload, best-of-reps seconds emitted by
    e.g. bench_intersect via APLUS_BENCH_JSON) are the precise gate:
    they are compared case by case against --threshold.
  * --budgets points at a JSON object of per-case threshold overrides,
    looked up most-specific-first:
        "<bench>/<case>"   one case,
        "<bench>/t<k>"     every case of that bench keyed to k threads
                           (bench_parallel_scaling emits a "threads"
                           field per case; its case names end in _t<k>),
        "<bench>"          every case of that bench.
  * Thread-count-keyed cases (a "threads" field in the case entry) that
    are missing from the new run are informational — not a failure —
    when the thread count exceeds the new run's recorded "cores": a
    smaller runner legitimately cannot produce them.
  * ISA-keyed cases (a "simd" field in the case entry, emitted by
    bench_intersect's kernel-variant sweep) are likewise informational
    when the new run's recorded "host_simd" cannot execute that level
    (scalar < sse < avx2), and when both runs have the case but resolved
    different dispatch levels (auto dispatch on hosts of different
    ISAs): timings of different kernels are not comparable.
  * Top-level `wall_seconds` comparisons are single-sample whole-binary
    wall times (process startup + data generation included), so they are
    gated loosely against --wall-threshold — a catastrophic-regression
    backstop, not a precision gate. A PR that legitimately grows a
    bench's workload may need a one-off --wall-threshold override.

Exit status: 0 clean, 1 regression or missing bench, 2 usage error.
"""

import argparse
import json
import pathlib
import sys


def load_results(directory):
    results = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"WARNING: skipping unreadable {path}: {exc}")
            continue
        name = data.get("bench", path.stem)
        # Detail files ({"bench": ..., "cases": {...}}) merge into the
        # smoke entry of the same bench when both exist.
        entry = results.setdefault(name, {})
        for key, value in data.items():
            if key == "cases" and "cases" in entry:
                entry["cases"].update(value)
            else:
                entry[key] = value
    return results


# SIMD dispatch levels, in capability order (bench_intersect's per-case
# "simd" field / top-level "host_simd").
SIMD_RANK = {"scalar": 0, "sse": 1, "avx2": 2}


def simd_rank(level):
    return SIMD_RANK.get(level) if isinstance(level, str) else None


def case_threshold(bench, case, case_data, budgets, default):
    """Resolves the gate threshold for one case, most specific first."""
    if budgets:
        exact = f"{bench}/{case}"
        if exact in budgets:
            return budgets[exact], exact
        threads = case_data.get("threads")
        if threads is not None:
            by_threads = f"{bench}/t{threads}"
            if by_threads in budgets:
                return budgets[by_threads], by_threads
        if bench in budgets:
            return budgets[bench], bench
    return default, None


def compare_metric(label, base_s, new_s, threshold, min_seconds, failures, budget_key=None):
    if base_s is None or new_s is None:
        return
    if base_s < min_seconds and new_s < min_seconds:
        return  # both under the noise floor
    ratio = new_s / base_s if base_s > 0 else float("inf")
    marker = "ok"
    if ratio > threshold:
        marker = "REGRESSION"
        failures.append(f"{label}: {base_s:.3f}s -> {new_s:.3f}s ({ratio:.2f}x, "
                        f"threshold {threshold:.2f}x)")
    elif ratio < 1.0 / threshold:
        marker = "improved"
    if budget_key is not None:
        marker += f" [budget {budget_key}={threshold:.2f}x]"
    print(f"  {label:<44} {base_s:>9.3f}s {new_s:>9.3f}s {ratio:>6.2f}x  {marker}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base_dir", help="BENCH_*.json directory of the base run")
    parser.add_argument("new_dir", help="BENCH_*.json directory of the new run")
    parser.add_argument("--threshold", type=float, default=1.15,
                        help="fail when a per-case new/base ratio exceeds this (default 1.15)")
    parser.add_argument("--wall-threshold", type=float, default=1.5,
                        help="fail when a whole-binary wall-time ratio exceeds this "
                             "(default 1.5; wall times are single-sample and noisy)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore wall times where both sides are under this (default 0.05)")
    parser.add_argument("--min-case-seconds", type=float, default=0.02,
                        help="ignore per-case timings where both sides are under this "
                             "(default 0.02; per-case loops are tighter than wall times)")
    parser.add_argument("--budgets", type=pathlib.Path, default=None,
                        help="JSON file of per-case threshold overrides "
                             "(keys: '<bench>/<case>', '<bench>/t<threads>', '<bench>')")
    args = parser.parse_args()

    budgets = {}
    if args.budgets is not None:
        try:
            budgets = json.loads(args.budgets.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"ERROR: cannot read budgets file {args.budgets}: {exc}")
            return 2
        bad = {k: v for k, v in budgets.items() if not isinstance(v, (int, float)) or v <= 0}
        if bad:
            print(f"ERROR: budget thresholds must be positive numbers, got {bad}")
            return 2

    base = load_results(args.base_dir)
    new = load_results(args.new_dir)
    if not base:
        # An empty base (e.g. the merge-base predates the bench harness)
        # cannot gate anything; succeed explicitly rather than crash.
        print(f"No BENCH_*.json in {args.base_dir}; nothing to compare.")
        return 0
    if not new:
        print(f"ERROR: no BENCH_*.json in {args.new_dir}")
        return 1

    failures = []
    print(f"{'metric':<46} {'base':>10} {'new':>10} {'ratio':>7}")
    for name in sorted(base):
        if name not in new:
            failures.append(f"{name}: present in base but missing from new run")
            print(f"  {name:<44} MISSING from new run")
            continue
        b, n = base[name], new[name]
        if b.get("status", 0) != 0 or n.get("status", 0) != 0:
            print(f"  {name:<44} skipped (non-zero status)")
            continue
        compare_metric(name, b.get("wall_seconds"), n.get("wall_seconds"),
                       args.wall_threshold, args.min_seconds, failures)
        base_cases = b.get("cases", {})
        new_cases = n.get("cases", {})
        for case in sorted(base_cases):
            if case not in new_cases:
                threads = base_cases[case].get("threads")
                # `cores` of 0 (hardware_concurrency unknown) or absent
                # means we cannot justify the skip: fail as usual.
                new_cores = n.get("cores")
                if threads is not None and new_cores and threads > new_cores:
                    print(f"  {name}/{case:<38} skipped (t{threads} > {new_cores} cores "
                          "on the new host)")
                    continue
                # Kernel-variant cases the new host's ISA cannot run
                # (e.g. z3_skew_avx2 compared on an SSE-only runner).
                case_simd = simd_rank(base_cases[case].get("simd"))
                host_simd = simd_rank(n.get("host_simd"))
                if case_simd is not None and host_simd is not None and case_simd > host_simd:
                    print(f"  {name}/{case:<38} skipped "
                          f"({base_cases[case]['simd']} > host {n['host_simd']})")
                    continue
                failures.append(f"{name}/{case}: case missing from new run")
                continue
            base_simd = base_cases[case].get("simd")
            new_simd = new_cases[case].get("simd")
            if base_simd is not None and new_simd is not None and base_simd != new_simd:
                # Auto-dispatch resolved different kernels on the two
                # hosts; their timings are not comparable.
                print(f"  {name}/{case:<38} skipped (simd {base_simd} vs {new_simd})")
                continue
            threshold, budget_key = case_threshold(name, case, base_cases[case], budgets,
                                                   args.threshold)
            compare_metric(f"{name}/{case}", base_cases[case].get("seconds"),
                           new_cases[case].get("seconds"), threshold,
                           args.min_case_seconds, failures, budget_key)
    for name in sorted(set(new) - set(base)):
        print(f"  {name:<44} new bench (no base to compare)")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) past the threshold "
              f"(cases {args.threshold:.2f}x default, wall {args.wall_threshold:.2f}x):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: no regressions past the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
