#!/usr/bin/env python3
"""Regression gate over BENCH_*.json artifacts.

Compares two directories of bench results (as written by
scripts/bench_smoke.sh plus any per-case APLUS_BENCH_JSON files the
bench binaries emit) and fails when the new run regresses past the
threshold:

    scripts/bench_compare.py <base_dir> <new_dir> [--threshold 1.15]
                             [--min-seconds 0.05]

Rules:
  * Only benches present in BOTH directories with status 0 are compared;
    a bench that newly appears is reported as informational, a bench
    that disappeared fails the gate (a perf artifact silently vanishing
    is exactly what the gate exists to catch).
  * `cases` sub-metrics (per-workload, best-of-reps seconds emitted by
    e.g. bench_intersect via APLUS_BENCH_JSON) are the precise gate:
    they are compared case by case against --threshold.
  * Top-level `wall_seconds` comparisons are single-sample whole-binary
    wall times (process startup + data generation included), so they are
    gated loosely against --wall-threshold — a catastrophic-regression
    backstop, not a precision gate. A PR that legitimately grows a
    bench's workload may need a one-off --wall-threshold override.

Exit status: 0 clean, 1 regression or missing bench, 2 usage error.
"""

import argparse
import json
import pathlib
import sys


def load_results(directory):
    results = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"WARNING: skipping unreadable {path}: {exc}")
            continue
        name = data.get("bench", path.stem)
        # Detail files ({"bench": ..., "cases": {...}}) merge into the
        # smoke entry of the same bench when both exist.
        entry = results.setdefault(name, {})
        for key, value in data.items():
            if key == "cases" and "cases" in entry:
                entry["cases"].update(value)
            else:
                entry[key] = value
    return results


def compare_metric(label, base_s, new_s, threshold, min_seconds, failures):
    if base_s is None or new_s is None:
        return
    if base_s < min_seconds and new_s < min_seconds:
        return  # both under the noise floor
    ratio = new_s / base_s if base_s > 0 else float("inf")
    marker = "ok"
    if ratio > threshold:
        marker = "REGRESSION"
        failures.append(f"{label}: {base_s:.3f}s -> {new_s:.3f}s ({ratio:.2f}x)")
    elif ratio < 1.0 / threshold:
        marker = "improved"
    print(f"  {label:<44} {base_s:>9.3f}s {new_s:>9.3f}s {ratio:>6.2f}x  {marker}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base_dir", help="BENCH_*.json directory of the base run")
    parser.add_argument("new_dir", help="BENCH_*.json directory of the new run")
    parser.add_argument("--threshold", type=float, default=1.15,
                        help="fail when a per-case new/base ratio exceeds this (default 1.15)")
    parser.add_argument("--wall-threshold", type=float, default=1.5,
                        help="fail when a whole-binary wall-time ratio exceeds this "
                             "(default 1.5; wall times are single-sample and noisy)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore wall times where both sides are under this (default 0.05)")
    parser.add_argument("--min-case-seconds", type=float, default=0.02,
                        help="ignore per-case timings where both sides are under this "
                             "(default 0.02; per-case loops are tighter than wall times)")
    args = parser.parse_args()

    base = load_results(args.base_dir)
    new = load_results(args.new_dir)
    if not base:
        # An empty base (e.g. the merge-base predates the bench harness)
        # cannot gate anything; succeed explicitly rather than crash.
        print(f"No BENCH_*.json in {args.base_dir}; nothing to compare.")
        return 0
    if not new:
        print(f"ERROR: no BENCH_*.json in {args.new_dir}")
        return 1

    failures = []
    print(f"{'metric':<46} {'base':>10} {'new':>10} {'ratio':>7}")
    for name in sorted(base):
        if name not in new:
            failures.append(f"{name}: present in base but missing from new run")
            print(f"  {name:<44} MISSING from new run")
            continue
        b, n = base[name], new[name]
        if b.get("status", 0) != 0 or n.get("status", 0) != 0:
            print(f"  {name:<44} skipped (non-zero status)")
            continue
        compare_metric(name, b.get("wall_seconds"), n.get("wall_seconds"),
                       args.wall_threshold, args.min_seconds, failures)
        base_cases = b.get("cases", {})
        new_cases = n.get("cases", {})
        for case in sorted(base_cases):
            if case not in new_cases:
                failures.append(f"{name}/{case}: case missing from new run")
                continue
            compare_metric(f"{name}/{case}", base_cases[case].get("seconds"),
                           new_cases[case].get("seconds"), args.threshold,
                           args.min_case_seconds, failures)
    for name in sorted(set(new) - set(base)):
        print(f"  {name:<44} new bench (no base to compare)")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) past the threshold "
              f"(cases {args.threshold:.2f}x, wall {args.wall_threshold:.2f}x):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: no regressions past the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
