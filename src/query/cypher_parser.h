#ifndef APLUS_QUERY_CYPHER_PARSER_H_
#define APLUS_QUERY_CYPHER_PARSER_H_

#include <string>
#include <vector>

#include "query/query_graph.h"

namespace aplus {

// Parses the openCypher subset the paper's examples are written in
// (Sections I-III), extended with the serving-layer surface: $param
// placeholders, a projection list with aggregates, ORDER BY, and LIMIT.
//
//   MATCH (c1:Customer)-[r1:O]->(a1:Account)-[r2:W]->(a2)
//   WHERE c1.name = 'Alice', r2.currency = USD, r2.amount > $min
//   RETURN a1, COUNT(*), SUM(r2.amount) ORDER BY SUM(r2.amount) DESC LIMIT 100
//
// Supported WHERE terms: <var>.<property>, <var>.ID, integer / float /
// 'string' literals, $name parameters, bare identifiers (resolved as
// category-value names of the property on the other side), and
// <var>.<prop> + <int> addends on the right-hand side (the paper's
// money-flow predicates). Comma and AND both separate conjuncts.
// `<var>.ID = <int>` on a vertex pins the variable to that vertex id
// (the paper's a1.ID = v5 bindings); `<var>.ID = $p` records a
// parameter pin patched at bind time (core/session.h).
//
// RETURN takes a comma-separated list of items: bare variables
// (projected as vertex/edge ids), <var>.<property> reads, and aggregate
// calls COUNT(*) / COUNT(<item>) / SUM / MIN / MAX / AVG(<item>).
// Mixing bare items and aggregates groups by the bare items (SQL-style
// implicit GROUP BY); SUM/MIN/MAX/AVG require an int64 or double
// argument and skip null cells, COUNT(<item>) counts non-null cells.
//
// ORDER BY takes return items (matched against the RETURN list by their
// rendered name, e.g. `ORDER BY COUNT(*) DESC, a1`), each with an
// optional ASC (default) or DESC. Nulls order last under ASC; ties on
// the sort keys break by the remaining output columns, so result order
// is deterministic up to fully identical rows.
//
// LIMIT caps the emitted rows (LIMIT 0 is valid and yields no rows); it
// applies to the final output, i.e. after aggregation and ordering.

// One $name placeholder. The expected type is derived from the
// comparison the parameter appears in (kInt64 for .ID comparisons, the
// catalog type of the left-hand property otherwise); using one name
// with conflicting expectations is a parse error.
struct CypherParam {
  std::string name;
  ValueType expected = ValueType::kNull;
  prop_key_t key = kInvalidPropKey;  // lhs property (category-name resolution at bind)
  int pin_var = -1;  // query vertex pinned by `<var>.ID = $name`, -1 when none
};

// One projection item of the RETURN clause: a plain reference (group
// key when aggregates are present) or an aggregate call.
struct ReturnItem {
  QueryPropRef ref;  // ref.is_id for bare variables (project the id)
  std::string name;  // display name, e.g. "a2", "r2.amount", "SUM(r2.amount)"
  AggFn agg = AggFn::kNone;
  bool star = false;  // COUNT(*): no argument reference
};

// One ORDER BY key: an index into `returns` plus the direction.
struct OrderByItem {
  int item = -1;
  bool desc = false;
};

struct ParsedCypher {
  QueryGraph query;
  std::vector<ReturnItem> returns;  // empty = bare MATCH (pure counting)
  std::vector<OrderByItem> order_by;
  bool has_aggregate = false;  // any returns[i].agg != kNone
  bool distinct = false;       // RETURN DISTINCT (rejected with aggregates)
  bool has_limit = false;
  uint64_t limit = 0;
  std::vector<CypherParam> params;
  std::string error;  // empty on success
  bool ok() const { return error.empty(); }
};

ParsedCypher ParseCypher(const std::string& text, const Catalog& catalog);

}  // namespace aplus

#endif  // APLUS_QUERY_CYPHER_PARSER_H_
