#ifndef APLUS_QUERY_CYPHER_PARSER_H_
#define APLUS_QUERY_CYPHER_PARSER_H_

#include <string>

#include "query/query_graph.h"

namespace aplus {

// Parses the openCypher subset the paper's examples are written in
// (Sections I-III): a MATCH clause of node/edge patterns, an optional
// WHERE conjunction, and an optional RETURN COUNT(*).
//
//   MATCH (c1:Customer)-[r1:O]->(a1:Account)-[r2:W]->(a2)
//   WHERE c1.name = 'Alice', r2.currency = USD, r2.amount > 50
//   RETURN COUNT(*)
//
// Supported WHERE terms: <var>.<property>, <var>.ID, integer / float /
// 'string' literals, bare identifiers (resolved as category-value names
// of the property on the other side), and <var>.<prop> + <int> addends
// on the right-hand side (the paper's money-flow predicates). Comma and
// AND both separate conjuncts. `<var>.ID = <int>` on a vertex pins the
// variable to that vertex id (the paper's a1.ID = v5 bindings).
struct ParsedCypher {
  QueryGraph query;
  std::string error;  // empty on success
  bool ok() const { return error.empty(); }
};

ParsedCypher ParseCypher(const std::string& text, const Catalog& catalog);

}  // namespace aplus

#endif  // APLUS_QUERY_CYPHER_PARSER_H_
