// SSE4.2 kernel variant. Compiled with -msse4.2 (see query/CMakeLists.txt)
// so the Block primitives inline into the shared adaptive skeleton.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "query/intersect_kernels.h"
#include "query/intersect_kernels_impl.h"

namespace aplus {
namespace simd {

namespace {

struct BlockSse {
  static constexpr uint32_t kWidth = 4;

  // Index of the first lane in p[0, 4) with p[i] >= n, or 4 when none.
  // Vertex IDs are unsigned; SSE only compares signed, so both sides are
  // biased by 0x80000000 (an order-preserving bijection into int32).
  static inline uint32_t FirstGe(const vertex_id_t* p, vertex_id_t n) {
    const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
    __m128i v = _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), bias);
    __m128i needle = _mm_xor_si128(_mm_set1_epi32(static_cast<int>(n)), bias);
    // lt-mask per lane, then the first zero bit is the first lane >= n.
    int lt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(v, needle)));
    return static_cast<uint32_t>(__builtin_ctz(~lt & 0x1f));
  }
};

uint32_t AdvanceGeSse(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n) {
  return detail::AdvanceGeAdaptive<BlockSse>(nbrs, from, end, n);
}

uint32_t AdvanceGtSse(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n) {
  return detail::AdvanceGtAdaptive<BlockSse>(nbrs, from, end, n);
}

// SSE has no gather; the decode loops stay scalar at this level (the
// width-specialized loops already autovectorize poorly because of the
// dependent base_nbrs load, so AVX2's hardware gather is the first level
// where vectorizing the decode pays off).
void DecodeNbrsSse(const vertex_id_t* base_nbrs, const uint8_t* offsets, uint8_t width,
                   uint32_t begin, uint32_t count, vertex_id_t* out) {
  detail::DecodeNbrsScalarRange(base_nbrs, offsets, width, begin, 0, count, out);
}

void DecodeEntriesSse(const vertex_id_t* base_nbrs, const edge_id_t* base_edges,
                      const uint8_t* offsets, uint8_t width, uint32_t begin, uint32_t count,
                      vertex_id_t* out_nbrs, edge_id_t* out_edges) {
  detail::DecodeEntriesScalarRange(base_nbrs, base_edges, offsets, width, begin, 0, count,
                                   out_nbrs, out_edges);
}

constexpr Kernels kSseTable = {
    &AdvanceGeSse,  &AdvanceGtSse,
    &DecodeNbrsSse, &DecodeEntriesSse,
    &DecodeVarintBlockScalar,
    Level::kSse,
};

}  // namespace

const Kernels& SseKernels() { return kSseTable; }

}  // namespace simd
}  // namespace aplus

#endif  // x86
