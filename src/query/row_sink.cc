#include "query/row_sink.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace aplus {

namespace {

// FNV-1a style mixing for group-key hashing. Strings hash by dictionary
// pointer: PropertyColumn dictionary-encodes strings, so equal values in
// one column share one canonical std::string object.
inline uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// Canonical bit pattern of a double for group-key hashing AND equality:
// -0.0 folds into +0.0 (they compare equal, so they must group
// together) and every NaN payload collapses to one pattern (NaN != NaN
// numerically, yet one group per NaN row would leak a table entry per
// input row — SQL groups nulls together and we extend that to NaNs).
inline uint64_t CanonicalDoubleBits(double d) {
  if (d == 0.0) d = 0.0;
  if (d != d) return 0x7ff8000000000000ull;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Payload bits of cell `row` of a typed column triple (used for both
// RowBatch columns and the stage arenas, which share the layout).
// Doubles canonicalize, so bit equality of CellBits IS group-key
// equality for every type (strings by dictionary pointer).
template <typename Col>
inline uint64_t CellBits(const Col& col, ValueType type, uint32_t row) {
  switch (type) {
    case ValueType::kDouble:
      return CanonicalDoubleBits(col.doubles[row]);
    case ValueType::kString:
      return reinterpret_cast<uint64_t>(col.strings[row]);
    default:
      return static_cast<uint64_t>(col.ints[row]);
  }
}

// NaN-aware double ordering shared by the MIN/MAX accumulators: numbers
// order below NaN (matching the SortStage comparator), so MIN/MAX
// results are identical for every accumulation/merge order even when
// the data contains NaNs.
inline bool DoubleLess(double a, double b) {
  bool a_nan = a != a;
  bool b_nan = b != b;
  if (a_nan || b_nan) return !a_nan && b_nan;
  return a < b;
}

// Appends cell `row` of a typed source column (RowBatch::Column or
// ColumnArena — shared layout) to output column `out_col`, null-aware.
// The single copy every stage's emission path goes through.
template <typename Col>
inline void AppendCell(RowBatch* out, size_t out_col, const Col& src, uint32_t row) {
  if (src.nulls[row] != 0) {
    out->AppendNull(out_col);
    return;
  }
  switch (src.type) {
    case ValueType::kDouble:
      out->AppendDouble(out_col, src.doubles[row]);
      break;
    case ValueType::kString:
      out->AppendString(out_col, src.strings[row]);
      break;
    default:
      out->AppendInt(out_col, src.ints[row]);
      break;
  }
}

}  // namespace

void RowBatch::Init(const std::vector<ProjectColumn>& cols, uint32_t capacity) {
  capacity_ = capacity;
  num_rows_ = 0;
  cols_.clear();
  cols_.reserve(cols.size());
  for (const ProjectColumn& col : cols) {
    Column out;
    out.name = col.name;
    out.type = col.ref.is_id ? ValueType::kInt64 : col.type;
    out.nulls.reserve(capacity);
    switch (out.type) {
      case ValueType::kDouble:
        out.doubles.reserve(capacity);
        break;
      case ValueType::kString:
        out.strings.reserve(capacity);
        break;
      default:
        out.ints.reserve(capacity);
        break;
    }
    cols_.push_back(std::move(out));
  }
}

void RowBatch::Clear() {
  num_rows_ = 0;
  for (Column& col : cols_) {
    col.ints.clear();
    col.doubles.clear();
    col.strings.clear();
    col.nulls.clear();
  }
}

void RowBatch::AppendNull(size_t col) {
  Column& c = cols_[col];
  c.nulls.push_back(1);
  switch (c.type) {
    case ValueType::kDouble:
      c.doubles.push_back(0.0);
      break;
    case ValueType::kString:
      c.strings.push_back(nullptr);
      break;
    default:
      c.ints.push_back(0);
      break;
  }
}

Value RowBatch::Cell(size_t col, uint32_t row) const {
  const Column& c = cols_[col];
  if (c.nulls[row] != 0) return Value::Null();
  switch (c.type) {
    case ValueType::kDouble:
      return Value::Double(c.doubles[row]);
    case ValueType::kString:
      return Value::String(*c.strings[row]);
    case ValueType::kBool:
      return Value::Bool(c.ints[row] != 0);
    case ValueType::kCategory:
      return Value::Category(c.ints[row]);
    default:
      return Value::Int64(c.ints[row]);
  }
}

void SinkStage::MergeAll(SinkStage* const* workers, int num_workers, int num_threads) {
  (void)num_threads;
  for (int w = 0; w < num_workers; ++w) Merge(*workers[w]);
}

void SinkStage::Deliver(RowBatch* batch) {
  if (batch->empty()) return;
  if (next_ != nullptr) {
    next_->OnBatch(*batch);
  } else {
    controls_->rows_emitted += batch->num_rows();
    if (controls_->consumer != nullptr) controls_->consumer->OnBatch(*batch);
  }
  batch->Clear();
}

// --- GroupedAggregateStage ---

GroupedAggregateStage::GroupedAggregateStage(std::vector<AggSpec> specs,
                                             std::vector<ValueType> input_types,
                                             uint32_t batch_capacity, ExecControls* controls)
    : SinkStage(controls),
      specs_(std::move(specs)),
      input_types_(std::move(input_types)),
      batch_capacity_(batch_capacity < 1 ? 1 : batch_capacity) {
  std::vector<ProjectColumn> out_schema;
  for (size_t s = 0; s < specs_.size(); ++s) {
    const AggSpec& spec = specs_[s];
    ProjectColumn col;
    col.name = spec.name;
    if (spec.fn == AggFn::kNone) {
      APLUS_CHECK_GE(spec.input, 0);
      col.type = input_types_[spec.input];
      key_inputs_.push_back(spec.input);
      ColumnArena arena;
      arena.type = col.type;
      keys_.push_back(std::move(arena));
    } else {
      col.type = spec.out_type;
      agg_specs_.push_back(static_cast<uint32_t>(s));
      accs_.emplace_back();
      if (spec.input >= 0) needs_row_scan_ = true;
    }
    out_schema.push_back(std::move(col));
  }
  out_.Init(out_schema, batch_capacity_);
  // Estimated arena footprint of one group: per key ~8 bytes payload +
  // 1 null byte, per accumulator ints + doubles + counts, plus the
  // open-addressing slot at <= 50% load. An estimate is enough — the
  // mem-cap guards against runaway growth, not byte-exact accounting.
  bytes_per_group_ = keys_.size() * 9 + accs_.size() * 24 + 2 * sizeof(uint32_t);
  Reset();
}

std::unique_ptr<SinkStage> GroupedAggregateStage::Clone() const {
  return std::make_unique<GroupedAggregateStage>(specs_, input_types_, batch_capacity_,
                                                 controls_);
}

void GroupedAggregateStage::Reset() {
  num_groups_ = 0;
  merged_parts_ = 0;
  for (ColumnArena& arena : keys_) {
    arena.ints.clear();
    arena.doubles.clear();
    arena.strings.clear();
    arena.nulls.clear();
  }
  for (AccArena& acc : accs_) {
    acc.ints.clear();
    acc.doubles.clear();
    acc.counts.clear();
  }
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  out_.Clear();
  EnsureGlobalGroup();
}

void GroupedAggregateStage::EnsureGlobalGroup() {
  // A global aggregate (no group keys) emits exactly one row even on
  // empty input: materialize its group up front.
  if (!key_inputs_.empty() || num_groups_ > 0) return;
  for (AccArena& acc : accs_) {
    acc.ints.push_back(0);
    acc.doubles.push_back(0.0);
    acc.counts.push_back(0);
  }
  num_groups_ = 1;
}

template <typename ColFn>
uint64_t GroupedAggregateStage::HashKeys(ColFn&& col_of, uint32_t row) const {
  uint64_t h = 14695981039346656037ull;
  for (size_t k = 0; k < keys_.size(); ++k) {
    const auto& col = col_of(k);
    // All nulls group together (SQL GROUP BY semantics).
    h = MixHash(h, col.nulls[row] != 0 ? 0x6e756c6cull : CellBits(col, keys_[k].type, row));
  }
  return h;
}

uint64_t GroupedAggregateStage::HashGroup(uint32_t group) const {
  return HashKeys([this](size_t k) -> const ColumnArena& { return keys_[k]; }, group);
}

template <typename ColFn>
bool GroupedAggregateStage::GroupEquals(uint32_t group, ColFn&& col_of, uint32_t row) const {
  for (size_t k = 0; k < keys_.size(); ++k) {
    const ColumnArena& arena = keys_[k];
    const auto& col = col_of(k);
    bool a_null = arena.nulls[group] != 0;
    bool b_null = col.nulls[row] != 0;
    if (a_null != b_null) return false;
    if (a_null) continue;
    // Canonicalized payload bits are the equality relation (matches the
    // hash by construction: +/-0.0 and all NaNs unify).
    if (CellBits(arena, arena.type, group) != CellBits(col, arena.type, row)) return false;
  }
  return true;
}

void GroupedAggregateStage::GrowSlots() {
  size_t cap = slots_.size() < 16 ? 16 : slots_.size() * 2;
  slots_.assign(cap, kEmptySlot);
  for (uint32_t g = 0; g < num_groups_; ++g) {
    uint64_t h = HashGroup(g);
    size_t i = h & (cap - 1);
    while (slots_[i] != kEmptySlot) i = (i + 1) & (cap - 1);
    slots_[i] = g;
  }
}

template <typename ColFn>
void GroupedAggregateStage::AppendKey(ColFn&& col_of, uint32_t row) {
  for (size_t k = 0; k < keys_.size(); ++k) {
    ColumnArena& arena = keys_[k];
    const auto& col = col_of(k);
    bool is_null = col.nulls[row] != 0;
    arena.nulls.push_back(is_null ? 1 : 0);
    switch (arena.type) {
      case ValueType::kDouble:
        arena.doubles.push_back(is_null ? 0.0 : col.doubles[row]);
        break;
      case ValueType::kString:
        arena.strings.push_back(is_null ? nullptr : col.strings[row]);
        break;
      default:
        arena.ints.push_back(is_null ? 0 : col.ints[row]);
        break;
    }
  }
  for (AccArena& acc : accs_) {
    acc.ints.push_back(0);
    acc.doubles.push_back(0.0);
    acc.counts.push_back(0);
  }
  ++num_groups_;
  if (track_mem_) {
    // First replica over the budget stops the scans; every OnBatch
    // (including the other workers') discards input from here on.
    controls_->ChargeOrStop(bytes_per_group_);
  }
}

template <typename ColFn>
uint32_t GroupedAggregateStage::FindOrAddGroup(ColFn&& col_of, uint32_t row, uint64_t hash) {
  if ((num_groups_ + 1) * 2 > slots_.size()) GrowSlots();
  size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (slots_[i] != kEmptySlot) {
    if (GroupEquals(slots_[i], col_of, row)) return slots_[i];
    i = (i + 1) & mask;
  }
  uint32_t g = static_cast<uint32_t>(num_groups_);
  slots_[i] = g;
  AppendKey(col_of, row);
  return g;
}

void GroupedAggregateStage::AccumulateRow(uint32_t group, const RowBatch& batch, uint32_t row) {
  for (size_t j = 0; j < agg_specs_.size(); ++j) {
    const AggSpec& spec = specs_[agg_specs_[j]];
    AccArena& acc = accs_[j];
    if (spec.input < 0) {  // COUNT(*)
      acc.counts[group]++;
      continue;
    }
    const RowBatch::Column& col = batch.column(static_cast<size_t>(spec.input));
    if (col.nulls[row] != 0) continue;  // aggregates skip null cells
    bool is_double = col.type == ValueType::kDouble;
    switch (spec.fn) {
      case AggFn::kCount:
        acc.counts[group]++;
        break;
      case AggFn::kSum:
        if (is_double) {
          acc.doubles[group] += col.doubles[row];
        } else {
          acc.ints[group] += col.ints[row];
        }
        acc.counts[group]++;
        break;
      case AggFn::kAvg:
        acc.doubles[group] += is_double ? col.doubles[row] : static_cast<double>(col.ints[row]);
        acc.counts[group]++;
        break;
      case AggFn::kMin:
      case AggFn::kMax: {
        bool take = acc.counts[group] == 0;
        if (is_double) {
          double v = col.doubles[row];
          if (take || (spec.fn == AggFn::kMin ? DoubleLess(v, acc.doubles[group])
                                              : DoubleLess(acc.doubles[group], v))) {
            acc.doubles[group] = v;
          }
        } else {
          int64_t v = col.ints[row];
          if (take ||
              (spec.fn == AggFn::kMin ? v < acc.ints[group] : v > acc.ints[group])) {
            acc.ints[group] = v;
          }
        }
        acc.counts[group]++;
        break;
      }
      case AggFn::kNone:
        break;
    }
  }
}

void GroupedAggregateStage::OnBatch(const RowBatch& batch) {
  // A requested stop (budget exhaustion, deadline, cancel) discards
  // further input: the execution is already failing or winding down.
  if (controls_->token.stop_requested()) return;
  if (key_inputs_.empty()) {
    if (!needs_row_scan_) {
      // Pure COUNT(*): no cell reads, no null checks — one add per batch.
      for (AccArena& acc : accs_) acc.counts[0] += batch.num_rows();
      return;
    }
    for (uint32_t r = 0; r < batch.num_rows(); ++r) AccumulateRow(0, batch, r);
    return;
  }
  auto input_col = [this, &batch](size_t k) -> const RowBatch::Column& {
    return batch.column(static_cast<size_t>(key_inputs_[k]));
  };
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    uint32_t g = FindOrAddGroup(input_col, r, HashKeys(input_col, r));
    AccumulateRow(g, batch, r);
  }
}

void GroupedAggregateStage::FoldGroupFrom(uint32_t g, const GroupedAggregateStage& src_stage,
                                          uint32_t og) {
  for (size_t j = 0; j < agg_specs_.size(); ++j) {
    const AggSpec& spec = specs_[agg_specs_[j]];
    AccArena& acc = accs_[j];
    const AccArena& src = src_stage.accs_[j];
    if (src.counts[og] == 0) continue;
    switch (spec.fn) {
      case AggFn::kMin:
      case AggFn::kMax: {
        bool min = spec.fn == AggFn::kMin;
        if (acc.counts[g] == 0) {
          acc.ints[g] = src.ints[og];
          acc.doubles[g] = src.doubles[og];
        } else {
          acc.ints[g] = min ? std::min(acc.ints[g], src.ints[og])
                            : std::max(acc.ints[g], src.ints[og]);
          bool src_wins = min ? DoubleLess(src.doubles[og], acc.doubles[g])
                              : DoubleLess(acc.doubles[g], src.doubles[og]);
          if (src_wins) acc.doubles[g] = src.doubles[og];
        }
        break;
      }
      default:
        acc.ints[g] += src.ints[og];
        acc.doubles[g] += src.doubles[og];
        break;
    }
    acc.counts[g] += src.counts[og];
  }
}

void GroupedAggregateStage::Merge(SinkStage& worker) {
  auto& other = static_cast<GroupedAggregateStage&>(worker);
  auto other_col = [&other](size_t k) -> const ColumnArena& { return other.keys_[k]; };
  for (uint32_t og = 0; og < other.num_groups_; ++og) {
    uint32_t g = key_inputs_.empty() ? 0 : FindOrAddGroup(other_col, og, other.HashGroup(og));
    FoldGroupFrom(g, other, og);
  }
}

void GroupedAggregateStage::MergePartitionFrom(const GroupedAggregateStage& src,
                                               uint32_t num_parts, uint32_t part) {
  auto src_col = [&src](size_t k) -> const ColumnArena& { return src.keys_[k]; };
  for (uint32_t og = 0; og < src.num_groups_; ++og) {
    uint64_t h = src.HashGroup(og);
    if (h % num_parts != part) continue;
    FoldGroupFrom(FindOrAddGroup(src_col, og, h), src, og);
  }
}

void GroupedAggregateStage::MergeAll(SinkStage* const* workers, int num_workers,
                                     int num_threads) {
  merged_parts_ = 0;
  size_t total = num_groups_;
  for (int w = 0; w < num_workers; ++w) {
    total += static_cast<const GroupedAggregateStage&>(*workers[w]).num_groups_;
  }
  // Small folds, global aggregates (one group), and serial merges take
  // the plain path; the partitioned fan-out only pays off when the k
  // tables carry real group volume.
  if (num_threads <= 1 || num_workers == 0 || key_inputs_.empty() ||
      total < kParallelMergeMinGroups) {
    SinkStage::MergeAll(workers, num_workers, num_threads);
    return;
  }
  int p = num_threads < 64 ? num_threads : 64;
  while (static_cast<int>(parts_.size()) < p) {
    auto part = std::unique_ptr<GroupedAggregateStage>(
        new GroupedAggregateStage(specs_, input_types_, batch_capacity_, controls_));
    // Partitions re-materialize groups the source tables already charged
    // against the group-by memory cap: charging them again would double
    // count.
    part->track_mem_ = false;
    parts_.push_back(std::move(part));
  }
  for (int i = 0; i < p; ++i) parts_[i]->Reset();
  auto body = [this, workers, num_workers, p](int part) {
    GroupedAggregateStage& dst = *parts_[part];
    dst.MergePartitionFrom(*this, static_cast<uint32_t>(p), static_cast<uint32_t>(part));
    for (int w = 0; w < num_workers; ++w) {
      dst.MergePartitionFrom(static_cast<const GroupedAggregateStage&>(*workers[w]),
                             static_cast<uint32_t>(p), static_cast<uint32_t>(part));
    }
  };
  ThreadPool::Global().ParallelRun(p, body);
  merged_parts_ = p;
}

void GroupedAggregateStage::EmitGroupsFrom(const GroupedAggregateStage& src) {
  for (uint32_t g = 0; g < src.num_groups_; ++g) {
    // A drained downstream LIMIT discards everything else: stop
    // materializing output rows nobody consumes (e.g. GROUP BY hub-heavy
    // keys with LIMIT 5 but no ORDER BY).
    if (next_ != nullptr && next_->Done()) break;
    // Staged plans never raise kLimit, so a stop here is a deadline /
    // cancel / exhaustion landing mid-Finish: abandon the cascade.
    if ((g & 255u) == 0 && controls_->token.PollClock()) return;
    size_t key_i = 0;
    size_t agg_i = 0;
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggSpec& spec = specs_[s];
      if (spec.fn == AggFn::kNone) {
        AppendCell(&out_, s, src.keys_[key_i++], g);
        continue;
      }
      const AccArena& acc = src.accs_[agg_i++];
      switch (spec.fn) {
        case AggFn::kCount:
          out_.AppendInt(s, acc.counts[g]);
          break;
        case AggFn::kSum:
        case AggFn::kMin:
        case AggFn::kMax:
          if (acc.counts[g] == 0) {
            out_.AppendNull(s);  // all-null (or empty) group
          } else if (spec.out_type == ValueType::kDouble) {
            out_.AppendDouble(s, acc.doubles[g]);
          } else {
            out_.AppendInt(s, acc.ints[g]);
          }
          break;
        case AggFn::kAvg:
          if (acc.counts[g] == 0) {
            out_.AppendNull(s);
          } else {
            out_.AppendDouble(s, acc.doubles[g] / static_cast<double>(acc.counts[g]));
          }
          break;
        case AggFn::kNone:
          break;
      }
    }
    out_.AdvanceRow();
    if (out_.full()) Deliver(&out_);
  }
}

void GroupedAggregateStage::Finish() {
  if (merged_parts_ > 0) {
    // The last merge was partitioned: the partitions hold the complete
    // fold (this stage's own table was one of the sources).
    for (int i = 0; i < merged_parts_; ++i) EmitGroupsFrom(*parts_[i]);
  } else {
    EmitGroupsFrom(*this);
  }
  Deliver(&out_);
}

std::string GroupedAggregateStage::Describe() const {
  std::string keys = "[";
  std::string aggs = "[";
  for (const AggSpec& spec : specs_) {
    std::string& target = spec.fn == AggFn::kNone ? keys : aggs;
    if (target.size() > 1) target += ", ";
    target += spec.name;
  }
  return "GROUP AGGREGATE keys=" + keys + "] aggs=" + aggs + "]";
}

void GroupedAggregateStage::RebindControls(ExecControls* controls) {
  SinkStage::RebindControls(controls);
  // Partition stages (parallel MergeAll scratch) charge through the same
  // controls; a freshly cloned stage has none, but rebinding a warmed
  // instance must not leave them pointing at the old owner.
  for (auto& part : parts_) part->RebindControls(controls);
}

// --- DistinctStage ---

namespace {

std::vector<AggSpec> DistinctSpecs(const std::vector<ProjectColumn>& schema) {
  std::vector<AggSpec> specs;
  specs.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    AggSpec spec;
    spec.fn = AggFn::kNone;  // every column a group key, zero aggregates
    spec.input = static_cast<int>(i);
    spec.out_type = schema[i].type;
    spec.name = schema[i].name;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ValueType> DistinctInputTypes(const std::vector<ProjectColumn>& schema) {
  std::vector<ValueType> types;
  types.reserve(schema.size());
  for (const ProjectColumn& col : schema) types.push_back(col.type);
  return types;
}

}  // namespace

DistinctStage::DistinctStage(const std::vector<ProjectColumn>& schema, uint32_t batch_capacity,
                             ExecControls* controls)
    : GroupedAggregateStage(DistinctSpecs(schema), DistinctInputTypes(schema), batch_capacity,
                            controls),
      schema_(schema),
      capacity_(batch_capacity) {}

std::unique_ptr<SinkStage> DistinctStage::Clone() const {
  return std::make_unique<DistinctStage>(schema_, capacity_, controls_);
}

std::string DistinctStage::Describe() const {
  std::string cols = "[";
  for (const ProjectColumn& col : schema_) {
    if (cols.size() > 1) cols += ", ";
    cols += col.name;
  }
  return "DISTINCT " + cols + "]";
}

// --- SortStage ---

SortStage::SortStage(std::vector<ProjectColumn> schema, std::vector<SortKeySpec> keys,
                     uint64_t limit, uint32_t batch_capacity, ExecControls* controls)
    : SinkStage(controls),
      schema_(std::move(schema)),
      keys_(std::move(keys)),
      limit_(limit) {
  cols_.resize(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    cols_[c].type = schema_[c].type;
    bool is_key = false;
    for (const SortKeySpec& key : keys_) is_key |= key.col == static_cast<int>(c);
    if (!is_key) tiebreak_cols_.push_back(static_cast<int>(c));
  }
  // One buffered row costs ~9 bytes per column (8-byte payload + null
  // flag) plus the 4-byte order_ permutation slot.
  bytes_per_row_ = static_cast<uint64_t>(schema_.size()) * 9 + 4;
  out_.Init(schema_, batch_capacity < 1 ? 1 : batch_capacity);
}

std::unique_ptr<SinkStage> SortStage::Clone() const {
  return std::make_unique<SortStage>(schema_, keys_, limit_, out_.capacity(), controls_);
}

void SortStage::Reset() {
  num_buffered_ = 0;
  for (ColumnArena& col : cols_) {
    col.ints.clear();
    col.doubles.clear();
    col.strings.clear();
    col.nulls.clear();
  }
  order_.clear();
  out_.Clear();
}

void SortStage::OnBatch(const RowBatch& batch) {
  if (controls_->token.stop_requested()) return;
  // Sort buffers the whole input stream: charge it against the budget
  // before growing. A failed charge raises kResourceExhausted and the
  // batch is discarded (the execution is failing).
  if (!controls_->ChargeOrStop(static_cast<uint64_t>(batch.num_rows()) * bytes_per_row_)) {
    return;
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    ColumnArena& dst = cols_[c];
    const RowBatch::Column& src = batch.column(c);
    dst.nulls.insert(dst.nulls.end(), src.nulls.begin(), src.nulls.end());
    switch (dst.type) {
      case ValueType::kDouble:
        dst.doubles.insert(dst.doubles.end(), src.doubles.begin(), src.doubles.end());
        break;
      case ValueType::kString:
        dst.strings.insert(dst.strings.end(), src.strings.begin(), src.strings.end());
        break;
      default:
        dst.ints.insert(dst.ints.end(), src.ints.begin(), src.ints.end());
        break;
    }
  }
  num_buffered_ += batch.num_rows();
}

void SortStage::Merge(SinkStage& worker) {
  auto& other = static_cast<SortStage&>(worker);
  for (size_t c = 0; c < cols_.size(); ++c) {
    ColumnArena& dst = cols_[c];
    const ColumnArena& src = other.cols_[c];
    dst.nulls.insert(dst.nulls.end(), src.nulls.begin(), src.nulls.end());
    dst.ints.insert(dst.ints.end(), src.ints.begin(), src.ints.end());
    dst.doubles.insert(dst.doubles.end(), src.doubles.begin(), src.doubles.end());
    dst.strings.insert(dst.strings.end(), src.strings.begin(), src.strings.end());
  }
  num_buffered_ += other.num_buffered_;
}

int SortStage::CompareCell(int col, uint32_t a, uint32_t b) const {
  const ColumnArena& c = cols_[col];
  bool a_null = c.nulls[a] != 0;
  bool b_null = c.nulls[b] != 0;
  if (a_null || b_null) return a_null == b_null ? 0 : (a_null ? 1 : -1);  // null = +inf
  switch (c.type) {
    case ValueType::kDouble: {
      // NaNs rank between the numbers and null (and equal to each
      // other): plain < comparisons on NaN would break the strict weak
      // ordering std::sort requires.
      double x = c.doubles[a];
      double y = c.doubles[b];
      bool x_nan = x != x;
      bool y_nan = y != y;
      if (x_nan || y_nan) return x_nan == y_nan ? 0 : (x_nan ? 1 : -1);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kString: {
      const std::string* x = c.strings[a];
      const std::string* y = c.strings[b];
      if (x == y) return 0;
      int cmp = x->compare(*y);
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    default: {
      int64_t x = c.ints[a];
      int64_t y = c.ints[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
  }
}

bool SortStage::RowLess(uint32_t a, uint32_t b) const {
  for (const SortKeySpec& key : keys_) {
    int cmp = CompareCell(key.col, a, b);
    if (key.desc) cmp = -cmp;
    if (cmp != 0) return cmp < 0;
  }
  // Tie-break by the remaining columns ascending: output order is then
  // deterministic up to fully identical rows (which are interchangeable).
  for (int c : tiebreak_cols_) {
    int cmp = CompareCell(c, a, b);
    if (cmp != 0) return cmp < 0;
  }
  return false;
}

void SortStage::Finish() {
  // A pre-drained downstream LIMIT makes the whole sort moot.
  if (next_ != nullptr && next_->Done()) return;
  // Deadline / cancel landing before the sort: skip it entirely (the
  // sort itself is uninterruptible, so check the clock first).
  if (controls_->token.PollClock()) return;
  size_t n = num_buffered_;
  size_t emit = limit_ < n ? static_cast<size_t>(limit_) : n;
  if (emit == 0) return;  // ORDER BY ... LIMIT 0: nothing to order
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  auto less = [this](uint32_t a, uint32_t b) { return RowLess(a, b); };
  if (emit < n) {
    // The LIMIT caps the output: top-k via partial_sort instead of
    // ordering the whole buffer.
    std::partial_sort(order_.begin(), order_.begin() + static_cast<ptrdiff_t>(emit),
                      order_.end(), less);
  } else {
    std::sort(order_.begin(), order_.end(), less);
  }
  for (size_t i = 0; i < emit; ++i) {
    if (next_ != nullptr && next_->Done()) break;
    if ((i & 255u) == 0 && controls_->token.PollClock()) return;
    uint32_t row = order_[i];
    for (size_t c = 0; c < cols_.size(); ++c) AppendCell(&out_, c, cols_[c], row);
    out_.AdvanceRow();
    if (out_.full()) Deliver(&out_);
  }
  Deliver(&out_);
}

std::string SortStage::Describe() const {
  std::string out = "ORDER BY [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_[keys_[i].col].name;
    out += keys_[i].desc ? " DESC" : " ASC";
  }
  out += "]";
  if (limit_ != kNoLimit) out += " LIMIT " + std::to_string(limit_);
  return out;
}

// --- LimitStage ---

LimitStage::LimitStage(std::vector<ProjectColumn> schema, uint64_t limit,
                       uint32_t batch_capacity, ExecControls* controls)
    : SinkStage(controls), schema_(std::move(schema)), limit_(limit), remaining_(limit) {
  out_.Init(schema_, batch_capacity < 1 ? 1 : batch_capacity);
}

std::unique_ptr<SinkStage> LimitStage::Clone() const {
  return std::make_unique<LimitStage>(schema_, limit_, out_.capacity(), controls_);
}

void LimitStage::Reset() {
  remaining_ = limit_;
  out_.Clear();
}

void LimitStage::OnBatch(const RowBatch& batch) {
  uint32_t take = batch.num_rows();
  if (remaining_ < take) take = static_cast<uint32_t>(remaining_);
  for (uint32_t r = 0; r < take; ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) AppendCell(&out_, c, batch.column(c), r);
    out_.AdvanceRow();
    if (out_.full()) Deliver(&out_);
  }
  remaining_ -= take;
}

void LimitStage::Finish() { Deliver(&out_); }

std::string LimitStage::Describe() const { return "LIMIT " + std::to_string(limit_); }

// --- ProjectSinkOp ---

ProjectSinkOp::ProjectSinkOp(const Graph* graph, std::vector<ProjectColumn> cols,
                             uint32_t batch_capacity, ExecControls* controls,
                             std::vector<std::unique_ptr<SinkStage>> stages)
    : graph_(graph),
      cols_(std::move(cols)),
      batch_capacity_(batch_capacity < 1 ? 1 : batch_capacity),
      controls_(controls),
      stages_(std::move(stages)) {
  APLUS_CHECK(controls_ != nullptr);
  batch_.Init(cols_, batch_capacity_);
  WireStages();
}

void ProjectSinkOp::WireStages() {
  for (size_t i = 0; i < stages_.size(); ++i) {
    stages_[i]->set_next(i + 1 < stages_.size() ? stages_[i + 1].get() : nullptr);
  }
}

void ProjectSinkOp::RebindControls(ExecControls* controls) {
  controls_ = controls;
  for (auto& stage : stages_) stage->RebindControls(controls);
}

std::unique_ptr<Operator> ProjectSinkOp::Clone() const {
  std::vector<std::unique_ptr<SinkStage>> cloned;
  cloned.reserve(stages_.size());
  for (const auto& stage : stages_) cloned.push_back(stage->Clone());
  return std::make_unique<ProjectSinkOp>(graph_, cols_, batch_capacity_, controls_,
                                         std::move(cloned));
}

void ProjectSinkOp::Run(MatchState* state) {
  if (controls_->limit_active) {
    // Claim one row from the shared budget; the claim that drains it (and
    // every losing claim after) raises the stop flag so the scans wind
    // down. Exactly `limit` claims succeed across all workers. Only
    // active for stage-less plans — post-aggregation/-sort limits cannot
    // stop the match enumeration early.
    int64_t prev = controls_->rows_remaining.fetch_sub(1, std::memory_order_relaxed);
    if (prev <= 0) {
      controls_->token.RequestStop(StopReason::kLimit);
      return;
    }
    if (prev == 1) controls_->token.RequestStop(StopReason::kLimit);
  }
  state->count++;
  if (cols_.empty() && stages_.empty()) return;  // counting: the degenerate projection
  AppendRow(*state);
  if (batch_.full()) Flush();
}

void ProjectSinkOp::AppendRow(const MatchState& state) {
  for (size_t i = 0; i < cols_.size(); ++i) {
    const ProjectColumn& col = cols_[i];
    RowBatch::Column& out = batch_.cols_[i];
    uint64_t id = col.ref.is_edge ? state.e[col.ref.var]
                                  : static_cast<uint64_t>(state.v[col.ref.var]);
    if (col.ref.is_id) {
      out.ints.push_back(static_cast<int64_t>(id));
      out.nulls.push_back(0);
      continue;
    }
    const PropertyStore& store =
        col.ref.is_edge ? graph_->edge_props() : graph_->vertex_props();
    const PropertyColumn* pc = store.column(col.ref.key);
    if (pc == nullptr || id >= pc->size() || pc->IsNull(id)) {
      out.nulls.push_back(1);
      switch (out.type) {
        case ValueType::kDouble:
          out.doubles.push_back(0.0);
          break;
        case ValueType::kString:
          out.strings.push_back(nullptr);
          break;
        default:
          out.ints.push_back(0);
          break;
      }
      continue;
    }
    out.nulls.push_back(0);
    switch (out.type) {
      case ValueType::kDouble:
        out.doubles.push_back(pc->GetDouble(id));
        break;
      case ValueType::kString:
        out.strings.push_back(&pc->GetString(id));
        break;
      default:  // kInt64 / kBool / kCategory share the int payload
        out.ints.push_back(pc->GetInt64(id));
        break;
    }
  }
  batch_.num_rows_++;
}

void ProjectSinkOp::Flush() {
  if (batch_.empty()) return;
  RowConsumer* out =
      stages_.empty() ? static_cast<RowConsumer*>(controls_->consumer) : stages_.front().get();
  if (out != nullptr) out->OnBatch(batch_);
  batch_.Clear();
}

void ProjectSinkOp::ResetBatch() {
  batch_.Clear();
  // Charge this replica's projection batch arena for the execution (the
  // buffers are plan-lifetime, but they are this query's working set).
  if (!cols_.empty()) {
    controls_->ChargeOrStop(static_cast<uint64_t>(batch_capacity_) * cols_.size() * 9);
  }
  for (auto& stage : stages_) stage->Reset();
}

void ProjectSinkOp::MergeStagesFrom(ProjectSinkOp* worker) {
  APLUS_DCHECK(worker->stages_.size() == stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) stages_[i]->Merge(*worker->stages_[i]);
}

void ProjectSinkOp::MergeAllStages(ProjectSinkOp* const* workers, int num_workers,
                                   int num_threads) {
  for (size_t i = 0; i < stages_.size(); ++i) {
    stage_scratch_.clear();
    for (int w = 0; w < num_workers; ++w) {
      APLUS_DCHECK(workers[w]->stages_.size() == stages_.size());
      stage_scratch_.push_back(workers[w]->stages_[i].get());
    }
    stages_[i]->MergeAll(stage_scratch_.data(), num_workers, num_threads);
  }
}

void ProjectSinkOp::FinishStages() {
  for (auto& stage : stages_) stage->Finish();
}

std::vector<std::string> ProjectSinkOp::ChainLines() const {
  std::vector<std::string> lines;
  lines.push_back(Describe());
  for (const auto& stage : stages_) lines.push_back(stage->Describe());
  return lines;
}

std::string ProjectSinkOp::Describe() const {
  if (cols_.empty() && stages_.empty()) return "ProjectSink (count)";
  std::string out = "ProjectSink [";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols_[i].name;
  }
  out += "] batch=" + std::to_string(batch_capacity_);
  if (!stages_.empty()) out += " +" + std::to_string(stages_.size()) + " stages";
  return out;
}

}  // namespace aplus
