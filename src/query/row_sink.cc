#include "query/row_sink.h"

#include "util/logging.h"

namespace aplus {

void RowBatch::Init(const std::vector<ProjectColumn>& cols, uint32_t capacity) {
  capacity_ = capacity;
  num_rows_ = 0;
  cols_.clear();
  cols_.reserve(cols.size());
  for (const ProjectColumn& col : cols) {
    Column out;
    out.name = col.name;
    out.type = col.ref.is_id ? ValueType::kInt64 : col.type;
    out.nulls.reserve(capacity);
    switch (out.type) {
      case ValueType::kDouble:
        out.doubles.reserve(capacity);
        break;
      case ValueType::kString:
        out.strings.reserve(capacity);
        break;
      default:
        out.ints.reserve(capacity);
        break;
    }
    cols_.push_back(std::move(out));
  }
}

void RowBatch::Clear() {
  num_rows_ = 0;
  for (Column& col : cols_) {
    col.ints.clear();
    col.doubles.clear();
    col.strings.clear();
    col.nulls.clear();
  }
}

Value RowBatch::Cell(size_t col, uint32_t row) const {
  const Column& c = cols_[col];
  if (c.nulls[row] != 0) return Value::Null();
  switch (c.type) {
    case ValueType::kDouble:
      return Value::Double(c.doubles[row]);
    case ValueType::kString:
      return Value::String(*c.strings[row]);
    case ValueType::kBool:
      return Value::Bool(c.ints[row] != 0);
    case ValueType::kCategory:
      return Value::Category(c.ints[row]);
    default:
      return Value::Int64(c.ints[row]);
  }
}

ProjectSinkOp::ProjectSinkOp(const Graph* graph, std::vector<ProjectColumn> cols,
                             uint32_t batch_capacity, ExecControls* controls)
    : graph_(graph),
      cols_(std::move(cols)),
      batch_capacity_(batch_capacity < 1 ? 1 : batch_capacity),
      controls_(controls) {
  APLUS_CHECK(controls_ != nullptr);
  batch_.Init(cols_, batch_capacity_);
}

void ProjectSinkOp::Run(MatchState* state) {
  if (controls_->limit_active) {
    // Claim one row from the shared budget; the claim that drains it (and
    // every losing claim after) raises the stop flag so the scans wind
    // down. Exactly `limit` claims succeed across all workers.
    int64_t prev = controls_->rows_remaining.fetch_sub(1, std::memory_order_relaxed);
    if (prev <= 0) {
      controls_->stop.store(true, std::memory_order_relaxed);
      return;
    }
    if (prev == 1) controls_->stop.store(true, std::memory_order_relaxed);
  }
  state->count++;
  if (cols_.empty()) return;  // counting: the degenerate projection
  AppendRow(*state);
  if (batch_.full()) Flush();
}

void ProjectSinkOp::AppendRow(const MatchState& state) {
  for (size_t i = 0; i < cols_.size(); ++i) {
    const ProjectColumn& col = cols_[i];
    RowBatch::Column& out = batch_.cols_[i];
    uint64_t id = col.ref.is_edge ? state.e[col.ref.var]
                                  : static_cast<uint64_t>(state.v[col.ref.var]);
    if (col.ref.is_id) {
      out.ints.push_back(static_cast<int64_t>(id));
      out.nulls.push_back(0);
      continue;
    }
    const PropertyStore& store =
        col.ref.is_edge ? graph_->edge_props() : graph_->vertex_props();
    const PropertyColumn* pc = store.column(col.ref.key);
    if (pc == nullptr || id >= pc->size() || pc->IsNull(id)) {
      out.nulls.push_back(1);
      switch (out.type) {
        case ValueType::kDouble:
          out.doubles.push_back(0.0);
          break;
        case ValueType::kString:
          out.strings.push_back(nullptr);
          break;
        default:
          out.ints.push_back(0);
          break;
      }
      continue;
    }
    out.nulls.push_back(0);
    switch (out.type) {
      case ValueType::kDouble:
        out.doubles.push_back(pc->GetDouble(id));
        break;
      case ValueType::kString:
        out.strings.push_back(&pc->GetString(id));
        break;
      default:  // kInt64 / kBool / kCategory share the int payload
        out.ints.push_back(pc->GetInt64(id));
        break;
    }
  }
  batch_.num_rows_++;
}

void ProjectSinkOp::Flush() {
  if (batch_.empty()) return;
  if (controls_->consumer != nullptr) controls_->consumer->OnBatch(batch_);
  batch_.Clear();
}

std::string ProjectSinkOp::Describe() const {
  if (cols_.empty()) return "ProjectSink (count)";
  std::string out = "ProjectSink [";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols_[i].name;
  }
  out += "] batch=" + std::to_string(batch_capacity_);
  return out;
}

}  // namespace aplus
