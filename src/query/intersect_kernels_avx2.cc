// AVX2 kernel variant. Compiled with -mavx2 (see query/CMakeLists.txt)
// so the Block primitives inline into the shared adaptive skeleton and
// the decode loops use hardware gathers.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "query/intersect_kernels.h"
#include "query/intersect_kernels_impl.h"

namespace aplus {
namespace simd {

namespace {

struct BlockAvx2 {
  static constexpr uint32_t kWidth = 8;

  // Index of the first lane in p[0, 8) with p[i] >= n, or 8 when none.
  // Unsigned compare via the 0x80000000 bias into signed int32 order.
  static inline uint32_t FirstGe(const vertex_id_t* p, vertex_id_t n) {
    const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
    __m256i v = _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), bias);
    __m256i needle = _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(n)), bias);
    int lt = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(needle, v)));
    return static_cast<uint32_t>(__builtin_ctz(~lt & 0x1ff));
  }
};

uint32_t AdvanceGeAvx2(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n) {
  return detail::AdvanceGeAdaptive<BlockAvx2>(nbrs, from, end, n);
}

uint32_t AdvanceGtAvx2(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n) {
  return detail::AdvanceGtAdaptive<BlockAvx2>(nbrs, from, end, n);
}

// Widens 8 fixed-width little-endian offsets starting at `p` into 32-bit
// lanes. Width 2 loads exactly 16 bytes and width 1 exactly 8, so no
// over-read past the offsets array; width 4 may be the last full block
// of the array and reads exactly its 32 bytes.
inline __m256i LoadOffsets8(const uint8_t* p, uint8_t width) {
  switch (width) {
    case 1:
      return _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
    case 2:
      return _mm256_cvtepu16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    default:  // 4
      return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
}

// Gather indices are signed 32-bit; offsets are list positions (< list
// length <= num edges of one vertex's list page), far below 2^31.
void DecodeNbrsAvx2(const vertex_id_t* base_nbrs, const uint8_t* offsets, uint8_t width,
                    uint32_t begin, uint32_t count, vertex_id_t* out) {
  if (width != 1 && width != 2 && width != 4) {
    detail::DecodeNbrsScalarRange(base_nbrs, offsets, width, begin, 0, count, out);
    return;
  }
  const uint8_t* src = offsets + static_cast<size_t>(begin) * width;
  uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i idx = LoadOffsets8(src + static_cast<size_t>(i) * width, width);
    __m256i nbrs = _mm256_i32gather_epi32(reinterpret_cast<const int*>(base_nbrs), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), nbrs);
  }
  detail::DecodeNbrsScalarRange(base_nbrs, offsets, width, begin, i, count, out);
}

void DecodeEntriesAvx2(const vertex_id_t* base_nbrs, const edge_id_t* base_edges,
                       const uint8_t* offsets, uint8_t width, uint32_t begin, uint32_t count,
                       vertex_id_t* out_nbrs, edge_id_t* out_edges) {
  if (width != 1 && width != 2 && width != 4) {
    detail::DecodeEntriesScalarRange(base_nbrs, base_edges, offsets, width, begin, 0, count,
                                     out_nbrs, out_edges);
    return;
  }
  const uint8_t* src = offsets + static_cast<size_t>(begin) * width;
  const long long* edges64 = reinterpret_cast<const long long*>(base_edges);
  uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i idx = LoadOffsets8(src + static_cast<size_t>(i) * width, width);
    __m256i nbrs = _mm256_i32gather_epi32(reinterpret_cast<const int*>(base_nbrs), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_nbrs + i), nbrs);
    // 64-bit edge IDs gather four lanes at a time: low and high halves of
    // the 8 offsets.
    __m256i lo = _mm256_i32gather_epi64(edges64, _mm256_castsi256_si128(idx), 8);
    __m256i hi = _mm256_i32gather_epi64(edges64, _mm256_extracti128_si256(idx, 1), 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_edges + i), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_edges + i + 4), hi);
  }
  detail::DecodeEntriesScalarRange(base_nbrs, base_edges, offsets, width, begin, i, count,
                                   out_nbrs, out_edges);
}

constexpr Kernels kAvx2Table = {
    &AdvanceGeAvx2,  &AdvanceGtAvx2,
    &DecodeNbrsAvx2, &DecodeEntriesAvx2,
    &DecodeVarintBlockScalar,
    Level::kAvx2,
};

}  // namespace

const Kernels& Avx2Kernels() { return kAvx2Table; }

}  // namespace simd
}  // namespace aplus

#endif  // x86
