#include "query/operators.h"

#include <algorithm>

#include "query/intersect_kernels.h"
#include "util/logging.h"
#include "util/memory_tracker.h"

namespace aplus {

namespace {

// First position in [from, end) whose neighbour ID is >= n (kLower) or
// > n (kUpper), found by galloping (exponential) search: double the step
// from `from` until overshooting, then binary-search the bracketed
// window. Cost is O(log d) in the distance d actually advanced, so a
// sequence of k ascending probes over a list of length L costs
// O(k log(L/k)) total instead of k full O(log L) restarts.
enum class GallopBound { kLower, kUpper };

template <GallopBound kBound, typename NbrFn>
uint32_t GallopSearch(const NbrFn& nbr_at, uint32_t from, uint32_t end, vertex_id_t n) {
  auto below = [&](uint32_t i) {
    return kBound == GallopBound::kLower ? nbr_at(i) < n : nbr_at(i) <= n;
  };
  if (from >= end || !below(from)) return from;
  // Invariant: below(lo); widen until hi = lo + step overshoots.
  uint64_t lo = from;
  uint64_t step = 1;
  while (lo + step < end && below(static_cast<uint32_t>(lo + step))) {
    lo += step;
    step <<= 1;
  }
  uint64_t hi = lo + step < end ? lo + step : end;
  while (lo + 1 < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (below(static_cast<uint32_t>(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint32_t>(hi);
}

// Equal range of neighbour `n` within [from, end) of a neighbour-ID
// sorted run, galloping from `from` (a monotone frontier or the range
// start).
template <typename NbrFn>
std::pair<uint32_t, uint32_t> GallopEqualRange(const NbrFn& nbr_at, uint32_t from, uint32_t end,
                                               vertex_id_t n) {
  uint32_t first = GallopSearch<GallopBound::kLower>(nbr_at, from, end, n);
  if (first == end || nbr_at(first) != n) return {first, first};
  uint32_t last = GallopSearch<GallopBound::kUpper>(nbr_at, first, end, n);
  return {first, last};
}

// Equal range of `n` within the bounded range of a slice. Direct lists
// expose a flat sorted array, so the dispatched SIMD kernel runs on it;
// offset and packed lists keep the lambda gallop (per-probe
// LoadFixedWidth reads / cursor-cached varint block decodes).
std::pair<uint32_t, uint32_t> EqualRangeByNbr(const AdjListSlice& slice, vertex_id_t n,
                                              uint32_t begin, uint32_t end) {
  if (slice.is_direct()) {
    return simd::EqualRange(simd::Active(), slice.nbrs, begin, end, n);
  }
  return GallopEqualRange([&slice](uint32_t i) { return slice.NbrAt(i); }, begin, end, n);
}

// True when a list of length `len` probed `probes` times should be
// batch-decoded out of its offset representation: galloping costs about
// log2(len) indirections per probe, so decoding (one pass over len
// entries) wins once probes * log2(len) exceeds len.
bool ShouldDecode(uint64_t probes, uint64_t len) {
  if (len == 0) return false;
  uint32_t log2_len = 1;
  while ((1ULL << log2_len) < len) ++log2_len;
  return probes * log2_len >= len;
}

// Slice-aware variant: a point probe into a packed (varint) list decodes
// a whole codec block per touched entry, roughly an order of magnitude
// more work than a fixed-width offset read, so packing tilts the
// heuristic decode-ward.
bool ShouldDecodeSlice(const AdjListSlice& slice, uint64_t probes, uint64_t len) {
  return ShouldDecode(slice.is_packed() ? probes * 8 : probes, len);
}

// Batch-decode dispatch over the two non-direct representations behind
// the chokepoint: fixed-width offset lists (decode_nbrs/decode_entries)
// and packed varint streams (decode_varint_block). Operators stay
// representation-agnostic; this is the single seam.
void DecodeSliceNbrs(const simd::Kernels& kern, const AdjListSlice& s, uint32_t begin,
                     uint32_t count, vertex_id_t* out) {
  if (s.is_packed()) {
    kern.decode_varint_block(s.packed, s.packed_base + begin, count, out, nullptr);
  } else {
    kern.decode_nbrs(s.nbrs, s.offsets, s.offset_width, begin, count, out);
  }
}

void DecodeSliceEntries(const simd::Kernels& kern, const AdjListSlice& s, uint32_t begin,
                        uint32_t count, vertex_id_t* out_nbrs, edge_id_t* out_edges) {
  if (s.is_packed()) {
    kern.decode_varint_block(s.packed, s.packed_base + begin, count, out_nbrs, out_edges);
  } else {
    kern.decode_entries(s.nbrs, s.edges, s.offsets, s.offset_width, begin, count, out_nbrs,
                        out_edges);
  }
}

bool EvalResiduals(const Graph& graph, const std::vector<QueryComparison>& preds,
                   const MatchState& state) {
  for (const QueryComparison& cmp : preds) {
    if (!EvalQueryComparison(graph, cmp, state)) return false;
  }
  return true;
}

// Shared CollectParamSlots pieces: a list's materialized target pin, its
// $param-backed sort-key bounds, and the $param constants of a
// residual-conjunct vector.
void CollectListPin(ListDescriptor* list, ParamSlots* slots) {
  if (list->target_bound != kInvalidVertex && list->target_vertex_var >= 0) {
    slots->pins.push_back({list->target_vertex_var, &list->target_bound});
  }
  if (list->upper_bound_param >= 0) {
    slots->ranges.push_back(
        {list->upper_bound_param, &list->upper_bound, list->bound_param_double});
  }
  if (list->lower_bound_param >= 0) {
    slots->ranges.push_back(
        {list->lower_bound_param, &list->lower_bound, list->bound_param_double});
  }
}

void CollectPredSlots(std::vector<QueryComparison>* preds, ParamSlots* slots) {
  for (QueryComparison& cmp : *preds) {
    if (cmp.rhs_param >= 0) slots->values.push_back({cmp.rhs_param, &cmp.rhs_const});
  }
}

}  // namespace

AdjListSlice ListDescriptor::Fetch(const MatchState& state) const {
  switch (source) {
    case Source::kPrimary:
      // Snapshot probe: merges the page's delta buffer into the view
      // when an ingest writer is active; degenerates to the zero-copy
      // run slice on a clean page. Secondary indexes have no delta
      // layer (concurrent ingest forbids them), so they read runs.
      return primary->GetListSnapshot(state.v[bound_var], cats, &merge_scratch);
    case Source::kVp:
      return vp->GetList(state.v[bound_var], cats);
    case Source::kEp:
      return ep->GetList(state.e[bound_var], cats);
  }
  APLUS_CHECK(false) << "corrupt ListDescriptor source " << static_cast<int>(source);
  __builtin_unreachable();
}

const std::vector<SortCriterion>& ListDescriptor::sorts() const {
  switch (source) {
    case Source::kPrimary:
      return primary->config().sorts;
    case Source::kVp:
      return vp->config().sorts;
    case Source::kEp:
      return ep->config().sorts;
  }
  APLUS_CHECK(false) << "corrupt ListDescriptor source " << static_cast<int>(source);
  __builtin_unreachable();
}

const Graph* ListDescriptor::graph() const {
  switch (source) {
    case Source::kPrimary:
      return primary->graph();
    case Source::kVp:
      return vp->primary()->graph();
    case Source::kEp:
      return ep->base_primary()->graph();
  }
  APLUS_CHECK(false) << "corrupt ListDescriptor source " << static_cast<int>(source);
  __builtin_unreachable();
}

int64_t ListDescriptor::SortKeyAt(const AdjListSlice& slice, uint32_t i) const {
  const std::vector<SortCriterion>& criteria = sorts();
  APLUS_DCHECK(!criteria.empty());
  return EntrySortKey(*graph(), criteria.front(), slice.EdgeAt(i), slice.NbrAt(i));
}

std::pair<uint32_t, uint32_t> ListDescriptor::BoundedRange(const AdjListSlice& slice) const {
  uint32_t begin = 0;
  uint32_t end = slice.len;
  if (has_lower_bound) {
    uint32_t lo = 0;
    uint32_t hi = slice.len;
    // First entry with key > bound (strict) or key >= bound.
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      int64_t key = SortKeyAt(slice, mid);
      bool below = lower_strict ? key <= lower_bound : key < lower_bound;
      if (below) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    begin = lo;
  }
  // A bound always comes from a range predicate on the sort key (or a
  // label pin, which installs both sides), and predicates on null
  // values compare false — so a lower-bound-only range must still stop
  // before the null tail (null keys sort last as kNullSortKey; a pure
  // `key > c` search would otherwise swallow them). An explicit upper
  // bound caps the range below the tail on its own — except a
  // non-strict bound AT kNullSortKey (`key <= INT64_MAX`), which
  // tightens to strict so the tail stays excluded.
  int64_t upper = has_upper_bound ? upper_bound : kNullSortKey;
  bool upper_is_strict = has_upper_bound ? upper_strict : true;
  if (upper == kNullSortKey) upper_is_strict = true;
  if (has_upper_bound || has_lower_bound) {
    uint32_t lo = begin;
    uint32_t hi = slice.len;
    // First entry with key >= bound (strict) or key > bound.
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      int64_t key = SortKeyAt(slice, mid);
      bool below = upper_is_strict ? key < upper : key <= upper;
      if (below) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    end = lo;
  }
  return {begin, end};
}

std::string ListDescriptor::Describe(const Catalog& catalog, const QueryGraph& query) const {
  std::string out;
  switch (source) {
    case Source::kPrimary:
      out = query.vertex(bound_var).name + "(" + ToString(primary->direction()) + " primary";
      break;
    case Source::kVp:
      out = query.vertex(bound_var).name + "(" + ToString(vp->direction()) + " VP:" + vp->name();
      break;
    case Source::kEp:
      out = query.edge(bound_var).name + "(EP:" + ep->name();
      break;
  }
  if (!cats.empty()) {
    out += " cats=[";
    for (size_t i = 0; i < cats.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(cats[i]);
    }
    out += "]";
  }
  out += ")->" + (target_vertex_var >= 0 ? query.vertex(target_vertex_var).name : "?");
  (void)catalog;
  return out;
}

void ScanOp::ScanRange(MatchState* state, uint64_t begin, uint64_t end) {
  for (uint64_t v = begin; v < end; ++v) {
    if (token_ != nullptr) {
      if (token_->stop_requested()) break;
      // Serial scans have no per-morsel clock check: sample the deadline
      // every 1024 source vertices instead.
      if (((v - begin) & 1023u) == 1023u && token_->PollClock()) break;
    }
    if (label_ != kInvalidLabel && graph_->vertex_label(static_cast<vertex_id_t>(v)) != label_) {
      continue;
    }
    state->v[var_] = static_cast<vertex_id_t>(v);
    if (EvalResiduals(*graph_, preds_, *state)) Emit(state);
  }
  state->v[var_] = kInvalidVertex;
}

void ScanOp::Run(MatchState* state) {
  if (morsel_cursor_ != nullptr) {
    // Parallel execution: drain vertex-range morsels from the cursor
    // this replica shares with the other workers' replicas.
    uint64_t begin = 0;
    uint64_t end = 0;
    while (morsel_cursor_->Next(&begin, &end)) {
      if (token_ != nullptr && token_->PollClock()) return;
      ScanRange(state, begin, end);
    }
    return;
  }
  auto [begin, end] = ScanDomain();
  ScanRange(state, begin, end);
}

void ScanOp::CollectParamSlots(ParamSlots* slots) {
  if (bound_ != kInvalidVertex) slots->pins.push_back({var_, &bound_});
  for (QueryComparison& cmp : preds_) {
    if (cmp.rhs_param >= 0) slots->values.push_back({cmp.rhs_param, &cmp.rhs_const});
  }
}

std::string ScanOp::Describe() const {
  std::string out = "Scan v" + std::to_string(var_);
  if (bound_ != kInvalidVertex) out += " id=" + std::to_string(bound_);
  if (label_ != kInvalidLabel) out += " label=" + std::to_string(label_);
  if (!preds_.empty()) out += " +" + std::to_string(preds_.size()) + " preds";
  return out;
}

bool ExtendOp::AcceptEntry(MatchState* state, const AdjListSlice& slice, uint32_t i) {
  edge_id_t e = slice.EdgeAt(i);
  if (state->EdgeAlreadyBound(e)) return false;
  if (!list_.EntryPassesLabels(*graph_, slice, i)) return false;
  vertex_id_t n = slice.NbrAt(i);
  if (list_.target_bound != kInvalidVertex && n != list_.target_bound) return false;
  if (!closing_) {
    if (state->VertexAlreadyBound(n)) return false;
    state->v[list_.target_vertex_var] = n;
  }
  state->e[list_.target_edge_var] = e;
  bool pass = EvalResiduals(*graph_, residual_, *state);
  if (pass) Emit(state);
  state->e[list_.target_edge_var] = kInvalidEdge;
  if (!closing_) state->v[list_.target_vertex_var] = kInvalidVertex;
  return pass;
}

void ExtendOp::Run(MatchState* state) {
  // Partially materialized EP index (Section III-B2 future work): when
  // the bound edge's page was not materialized under the budget, derive
  // the adjacency at run time from the anchor's primary list. Partition
  // categories and sort-key bounds become per-entry filters (the
  // runtime order is the base list's, not this index's sort order).
  if (list_.source == ListDescriptor::Source::kEp) {
    edge_id_t eb = state->e[list_.bound_var];
    const EpIndex* ep = list_.ep;
    if (!ep->IsMaterialized(eb)) {
      AdjListSlice base = ep->base_primary()->GetFullList(ep->AnchorOf(eb));
      vertex_id_t close_target =
          closing_ ? state->v[list_.target_vertex_var] : kInvalidVertex;
      ep->ForEachRuntime(eb, [&](uint32_t i, edge_id_t eadj, vertex_id_t nbr) {
        if (closing_ && nbr != close_target) return;
        for (size_t c = 0; c < list_.cats.size(); ++c) {
          if (ep->base_primary()->CategoryOf(ep->config().partitions[c], eadj, nbr) !=
              list_.cats[c]) {
            return;
          }
        }
        if (list_.has_upper_bound || list_.has_lower_bound) {
          int64_t key = EntrySortKey(*graph_, list_.sorts().front(), eadj, nbr);
          // Range predicates on the sort key compare false for null
          // values (mirrors BoundedRange's null-tail cap).
          if (key == kNullSortKey) return;
          if (list_.has_upper_bound &&
              !(list_.upper_strict ? key < list_.upper_bound : key <= list_.upper_bound)) {
            return;
          }
          if (list_.has_lower_bound &&
              !(list_.lower_strict ? key > list_.lower_bound : key >= list_.lower_bound)) {
            return;
          }
        }
        AcceptEntry(state, base, i);
      });
      return;
    }
  }
  AdjListSlice slice = list_.Fetch(*state);
  if (closing_) {
    vertex_id_t target = state->v[list_.target_vertex_var];
    APLUS_DCHECK(target != kInvalidVertex);
    // Membership probe: binary search when the list is neighbour-sorted,
    // linear scan otherwise.
    auto [bound_begin, bound_end] = list_.BoundedRange(slice);
    if (list_.nbr_sorted) {
      auto [first, last] = EqualRangeByNbr(slice, target, bound_begin, bound_end);
      for (uint32_t i = first; i < last; ++i) AcceptEntry(state, slice, i);
    } else {
      for (uint32_t i = bound_begin; i < bound_end; ++i) {
        if (slice.NbrAt(i) == target) AcceptEntry(state, slice, i);
      }
    }
    return;
  }
  // Enumeration loops go through ClaimEntry: a no-op in scan-partitioned
  // and serial execution, entry-ordinal ownership when this operator is
  // the deep-morselization split point (see EntryCursor).
  if (list_.has_upper_bound || list_.has_lower_bound) {
    auto [begin, end] = list_.BoundedRange(slice);
    for (uint32_t i = begin; i < end; ++i) {
      if ((i & 63u) == 0 && token_ != nullptr && CheckStop()) break;
      if (ClaimEntry()) AcceptEntry(state, slice, i);
    }
    return;
  }
  for (uint32_t i = 0; i < slice.len; ++i) {
    // Once a stop is requested the enumeration is abandoned outright
    // (claim numbering no longer matters: every replica is stopping).
    if ((i & 63u) == 0 && token_ != nullptr && CheckStop()) break;
    if (ClaimEntry()) AcceptEntry(state, slice, i);
  }
}

void ExtendOp::CollectParamSlots(ParamSlots* slots) {
  CollectListPin(&list_, slots);
  CollectPredSlots(&residual_, slots);
}

std::string ExtendOp::Describe() const {
  std::string out = closing_ ? "Extend(close) " : "Extend ";
  out += "list_src_var=" + std::to_string(list_.bound_var);
  out += " -> v" + std::to_string(list_.target_vertex_var);
  if (!residual_.empty()) out += " +" + std::to_string(residual_.size()) + " residual";
  return out;
}

ExtendIntersectOp::ExtendIntersectOp(const Graph* graph, std::vector<ListDescriptor> lists,
                                     int target_vertex_var,
                                     std::vector<QueryComparison> residual)
    : graph_(graph),
      lists_(std::move(lists)),
      target_var_(target_vertex_var),
      residual_(std::move(residual)) {
  APLUS_CHECK_GE(lists_.size(), 2u) << "E/I with z >= 2; use ExtendOp for one list";
  for (const ListDescriptor& list : lists_) {
    APLUS_CHECK(list.nbr_sorted)
        << "E/I requires (effectively) neighbour-ID sorted lists";
    if (list.target_vertex_label != kInvalidLabel) target_label_ = list.target_vertex_label;
    if (list.target_bound != kInvalidVertex) target_bound_ = list.target_bound;
  }
  probes_.resize(lists_.size());
  ranges_.resize(lists_.size());
  idx_.resize(lists_.size());
}

void ExtendIntersectOp::Run(MatchState* state) {
  const simd::Kernels& kern = simd::Active();
  size_t z = lists_.size();
  size_t pivot = 0;
  for (size_t l = 0; l < z; ++l) {
    ProbeList& pl = probes_[l];
    pl.slice = lists_[l].Fetch(*state);
    auto [begin, end] = lists_[l].BoundedRange(pl.slice);
    pl.begin = begin;
    pl.end = end;
    pl.frontier = begin;
    pl.decoded = nullptr;
    if (begin >= end) return;  // empty input: the intersection is empty
    if (pl.len() < probes_[pivot].len()) pivot = l;
  }
  // Probe-count estimate for the decode heuristic: with a pinned target
  // at most one candidate group is ever probed, so decoding would copy a
  // whole list for a single binary search.
  const uint32_t pivot_len = target_bound_ != kInvalidVertex ? 1 : probes_[pivot].len();
  for (size_t l = 0; l < z; ++l) {
    ProbeList& pl = probes_[l];
    if (l == pivot || pl.slice.is_direct() || !ShouldDecodeSlice(pl.slice, pivot_len, pl.len())) {
      continue;
    }
    // Batch-decode via the dispatched kernel (gathers under AVX2); the
    // buffer keeps its plan-lifetime capacity across executions. Growth
    // is plan scratch and charges the query's budget.
    if (pl.decode_buf.size() < pl.len()) {
      const uint64_t grow =
          static_cast<uint64_t>(pl.len() - pl.decode_buf.size()) * sizeof(vertex_id_t);
      if (budget_ != nullptr && !budget_->Charge(grow)) {
        if (token_ != nullptr) token_->RequestStop(StopReason::kResourceExhausted);
        return;
      }
      pl.decode_buf.resize(pl.len());
    }
    DecodeSliceNbrs(kern, pl.slice, pl.begin, pl.len(), pl.decode_buf.data());
    pl.decoded = pl.decode_buf.data();
  }
  const ProbeList& ps = probes_[pivot];

  uint32_t i = ps.begin;
  while (i < ps.end) {
    if (token_ != nullptr) {
      // Flag check per pivot group; clock check every 256 groups.
      if ((poll_tick_++ & 255u) == 0 ? token_->PollClock() : token_->stop_requested()) {
        return;
      }
    }
    vertex_id_t n = ps.NbrAt(i);
    uint32_t group_end = i + 1;
    while (group_end < ps.end && ps.NbrAt(group_end) == n) ++group_end;
    if (state->VertexAlreadyBound(n) ||
        (target_bound_ != kInvalidVertex && n != target_bound_) ||
        (target_label_ != kInvalidLabel && graph_->vertex_label(n) != target_label_)) {
      i = group_end;
      continue;
    }
    bool all_present = true;
    for (size_t l = 0; l < z && all_present; ++l) {
      if (l == pivot) {
        ranges_[l] = {i, group_end};
        continue;
      }
      // Candidates ascend, so resume from the frontier left by the
      // previous probe instead of restarting at the range start. Decoded
      // batches and direct lists are flat sorted arrays — probe them with
      // the dispatched SIMD kernel; undecoded offset lists gallop through
      // the per-entry indirection.
      ProbeList& pl = probes_[l];
      if (pl.decoded != nullptr) {
        auto [first, last] = simd::EqualRange(kern, pl.decoded, pl.frontier - pl.begin,
                                              pl.end - pl.begin, n);
        ranges_[l] = {first + pl.begin, last + pl.begin};
      } else if (pl.slice.is_direct()) {
        ranges_[l] = simd::EqualRange(kern, pl.slice.nbrs, pl.frontier, pl.end, n);
      } else {
        ranges_[l] =
            GallopEqualRange([&pl](uint32_t j) { return pl.NbrAt(j); }, pl.frontier, pl.end, n);
      }
      pl.frontier = ranges_[l].second;
      all_present = ranges_[l].first < ranges_[l].second;
    }
    if (all_present) {
      state->v[target_var_] = n;
      // Enumerate every combination of edges, one per list.
      for (size_t l = 0; l < z; ++l) idx_[l] = ranges_[l].first;
      // Depth-first product with edge-distinctness checks.
      size_t depth = 0;
      uint32_t dfs_tick = 0;
      while (true) {
        // Hub-heavy edge products can dwarf the pivot-group cadence:
        // honor a stop mid-product, unbinding before bailing out.
        if ((++dfs_tick & 255u) == 0 && token_ != nullptr && token_->stop_requested()) {
          for (size_t l = 0; l < z; ++l) state->e[lists_[l].target_edge_var] = kInvalidEdge;
          state->v[target_var_] = kInvalidVertex;
          return;
        }
        if (depth == z) {
          if (EvalResiduals(*graph_, residual_, *state)) Emit(state);
          // Backtrack.
          --depth;
          state->e[lists_[depth].target_edge_var] = kInvalidEdge;
          ++idx_[depth];
        }
        if (idx_[depth] >= ranges_[depth].second) {
          idx_[depth] = ranges_[depth].first;
          if (depth == 0) break;
          --depth;
          state->e[lists_[depth].target_edge_var] = kInvalidEdge;
          ++idx_[depth];
          continue;
        }
        edge_id_t e = probes_[depth].slice.EdgeAt(idx_[depth]);
        if (state->EdgeAlreadyBound(e) ||
            (lists_[depth].edge_label_filter != kInvalidLabel &&
             graph_->edge_label(e) != lists_[depth].edge_label_filter)) {
          ++idx_[depth];
          continue;
        }
        state->e[lists_[depth].target_edge_var] = e;
        ++depth;
      }
      state->v[target_var_] = kInvalidVertex;
    }
    i = group_end;
  }
}

void ExtendIntersectOp::CollectParamSlots(ParamSlots* slots) {
  for (ListDescriptor& list : lists_) CollectListPin(&list, slots);
  // The per-list pins folded into target_bound_ at construction must be
  // re-patched alongside them.
  if (target_bound_ != kInvalidVertex) slots->pins.push_back({target_var_, &target_bound_});
  CollectPredSlots(&residual_, slots);
}

std::string ExtendIntersectOp::Describe() const {
  return "Extend/Intersect z=" + std::to_string(lists_.size()) + " -> v" +
         std::to_string(target_var_);
}

MultiExtendOp::MultiExtendOp(const Graph* graph, std::vector<ListDescriptor> lists,
                             std::vector<QueryComparison> residual)
    : graph_(graph), lists_(std::move(lists)), residual_(std::move(residual)) {
  APLUS_CHECK_GE(lists_.size(), 2u);
  const SortCriterion& first = lists_.front().sorts().front();
  for (const ListDescriptor& list : lists_) {
    APLUS_CHECK(!list.sorts().empty() && list.sorts().front() == first)
        << "MULTI-EXTEND requires identical sort criteria on all lists";
    key_crits_.push_back(list.sorts().front());
    key_graphs_.push_back(list.graph());
  }
  size_t z = lists_.size();
  slices_.resize(z);
  pos_.resize(z);
  ends_.resize(z);
  cur_key_.resize(z);
  next_key_.resize(z);
  ranges_.resize(z);
  run_nbrs_.resize(z);
  run_edges_.resize(z);
  run_decoded_.resize(z);
}

void MultiExtendOp::EmitCombinations(MatchState* state, size_t depth) {
  if (depth == lists_.size()) {
    if (EvalResiduals(*graph_, residual_, *state)) Emit(state);
    return;
  }
  const ListDescriptor& list = lists_[depth];
  const AdjListSlice& slice = slices_[depth];
  const uint32_t first = ranges_[depth].first;
  const uint32_t last = ranges_[depth].second;
  const vertex_id_t* run_nbrs = run_decoded_[depth] != 0 ? run_nbrs_[depth].data() : nullptr;
  const edge_id_t* run_edges = run_nbrs != nullptr ? run_edges_[depth].data() : nullptr;
  for (uint32_t i = first; i < last; ++i) {
    // The combination product across runs can be enormous; honor a stop
    // between combinations (callers unbind on unwind).
    if ((i & 63u) == 0 && token_ != nullptr && token_->stop_requested()) return;
    vertex_id_t n = run_nbrs != nullptr ? run_nbrs[i - first] : slice.NbrAt(i);
    edge_id_t e = run_nbrs != nullptr ? run_edges[i - first] : slice.EdgeAt(i);
    if (state->VertexAlreadyBound(n) || state->EdgeAlreadyBound(e)) continue;
    if (list.target_bound != kInvalidVertex && n != list.target_bound) continue;
    if (list.edge_label_filter != kInvalidLabel &&
        graph_->edge_label(e) != list.edge_label_filter) {
      continue;
    }
    if (list.target_vertex_label != kInvalidLabel &&
        graph_->vertex_label(n) != list.target_vertex_label) {
      continue;
    }
    state->v[list.target_vertex_var] = n;
    state->e[list.target_edge_var] = e;
    EmitCombinations(state, depth + 1);
    state->v[list.target_vertex_var] = kInvalidVertex;
    state->e[list.target_edge_var] = kInvalidEdge;
  }
}

void MultiExtendOp::Run(MatchState* state) {
  size_t z = lists_.size();
  for (size_t l = 0; l < z; ++l) {
    slices_[l] = lists_[l].Fetch(*state);
    auto [begin, end] = lists_[l].BoundedRange(slices_[l]);
    pos_[l] = begin;
    ends_[l] = end;
    if (begin >= end) return;
    cur_key_[l] = KeyAt(l, begin);
  }
  while (true) {
    if (token_ != nullptr) {
      // Flag check per merge step; clock check every 256 steps.
      if ((poll_tick_++ & 255u) == 0 ? token_->PollClock() : token_->stop_requested()) {
        return;
      }
    }
    int64_t max_key = cur_key_[0];
    for (size_t l = 1; l < z; ++l) {
      if (cur_key_[l] > max_key) max_key = cur_key_[l];
    }
    // Advance lagging lists to >= max_key, computing each newly visited
    // entry's key exactly once (cur_key_ caches the key at pos_[l]).
    bool all_equal = true;
    for (size_t l = 0; l < z; ++l) {
      while (cur_key_[l] < max_key) {
        if (++pos_[l] >= ends_[l]) return;
        cur_key_[l] = KeyAt(l, pos_[l]);
      }
      if (cur_key_[l] != max_key) all_equal = false;
    }
    if (!all_equal) continue;
    if (max_key == kNullSortKey) return;  // null tails never join
    // Equal-key ranges; remember the first key past each range so the
    // boundary entry is not re-decoded when pos_ lands on it.
    for (size_t l = 0; l < z; ++l) {
      uint32_t end = pos_[l] + 1;
      next_key_[l] = kNullSortKey;
      while (end < ends_[l]) {
        int64_t key = KeyAt(l, end);
        if (key != max_key) {
          next_key_[l] = key;
          break;
        }
        ++end;
      }
      ranges_[l] = {pos_[l], end};
    }
    // Batch-decode the equal-key run of an offset list that
    // EmitCombinations will re-enumerate (once per combination of the
    // preceding lists' runs), so each entry pays the LoadFixedWidth
    // indirection once instead of once per enumeration. Short runs and
    // low enumeration counts are left alone: the copy plus the extra
    // indirection in the emit loop would cost more than it saves.
    uint64_t enumerations = 1;
    for (size_t l = 0; l < z; ++l) {
      run_decoded_[l] = 0;
      uint32_t run_len = ranges_[l].second - ranges_[l].first;
      if (enumerations >= 4 && run_len >= 8 && !slices_[l].is_direct()) {
        // Run-buffer growth is plan scratch and charges the budget.
        if (run_nbrs_[l].size() < run_len) {
          const uint64_t grow = static_cast<uint64_t>(run_len - run_nbrs_[l].size()) *
                                (sizeof(vertex_id_t) + sizeof(edge_id_t));
          if (budget_ != nullptr && !budget_->Charge(grow)) {
            if (token_ != nullptr) token_->RequestStop(StopReason::kResourceExhausted);
            return;
          }
          run_nbrs_[l].resize(run_len);
        }
        if (run_edges_[l].size() < run_len) run_edges_[l].resize(run_len);
        DecodeSliceEntries(simd::Active(), slices_[l], ranges_[l].first, run_len,
                           run_nbrs_[l].data(), run_edges_[l].data());
        run_decoded_[l] = 1;
      }
      enumerations *= run_len;
    }
    EmitCombinations(state, 0);
    for (size_t l = 0; l < z; ++l) {
      pos_[l] = ranges_[l].second;
      if (pos_[l] >= ends_[l]) return;
      cur_key_[l] = next_key_[l];
    }
  }
}

void MultiExtendOp::CollectParamSlots(ParamSlots* slots) {
  for (ListDescriptor& list : lists_) CollectListPin(&list, slots);
  CollectPredSlots(&residual_, slots);
}

std::string MultiExtendOp::Describe() const {
  std::string out = "Multi-Extend z=" + std::to_string(lists_.size()) + " ->";
  for (const ListDescriptor& list : lists_) {
    out += " v" + std::to_string(list.target_vertex_var);
  }
  return out;
}

void FilterOp::Run(MatchState* state) {
  if (EvalResiduals(*graph_, preds_, *state)) Emit(state);
}

void FilterOp::CollectParamSlots(ParamSlots* slots) { CollectPredSlots(&preds_, slots); }

std::string FilterOp::Describe() const {
  return "Filter (" + std::to_string(preds_.size()) + " preds)";
}

}  // namespace aplus
