#include "query/operators.h"

#include <algorithm>

#include "util/logging.h"

namespace aplus {

namespace {

// Equal range of neighbour `n` within [begin, end) of a slice whose
// entries in that range are sorted on neighbour IDs.
std::pair<uint32_t, uint32_t> EqualRangeByNbr(const AdjListSlice& slice, vertex_id_t n,
                                              uint32_t begin, uint32_t end) {
  uint32_t lo = begin;
  uint32_t hi = end;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (slice.NbrAt(mid) < n) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint32_t first = lo;
  hi = end;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (slice.NbrAt(mid) <= n) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {first, lo};
}

bool EvalResiduals(const Graph& graph, const std::vector<QueryComparison>& preds,
                   const MatchState& state) {
  for (const QueryComparison& cmp : preds) {
    if (!EvalQueryComparison(graph, cmp, state)) return false;
  }
  return true;
}

}  // namespace

AdjListSlice ListDescriptor::Fetch(const MatchState& state) const {
  switch (source) {
    case Source::kPrimary:
      return primary->GetList(state.v[bound_var], cats);
    case Source::kVp:
      return vp->GetList(state.v[bound_var], cats);
    case Source::kEp:
      return ep->GetList(state.e[bound_var], cats);
  }
  return AdjListSlice();
}

const std::vector<SortCriterion>& ListDescriptor::sorts() const {
  switch (source) {
    case Source::kPrimary:
      return primary->config().sorts;
    case Source::kVp:
      return vp->config().sorts;
    case Source::kEp:
      return ep->config().sorts;
  }
  return primary->config().sorts;
}

const Graph* ListDescriptor::graph() const {
  switch (source) {
    case Source::kPrimary:
      return primary->graph();
    case Source::kVp:
      return vp->primary()->graph();
    case Source::kEp:
      return ep->base_primary()->graph();
  }
  return nullptr;
}

int64_t ListDescriptor::SortKeyAt(const AdjListSlice& slice, uint32_t i) const {
  const std::vector<SortCriterion>& criteria = sorts();
  APLUS_DCHECK(!criteria.empty());
  return EntrySortKey(*graph(), criteria.front(), slice.EdgeAt(i), slice.NbrAt(i));
}

std::pair<uint32_t, uint32_t> ListDescriptor::BoundedRange(const AdjListSlice& slice) const {
  uint32_t begin = 0;
  uint32_t end = slice.len;
  if (has_lower_bound) {
    uint32_t lo = 0;
    uint32_t hi = slice.len;
    // First entry with key > bound (strict) or key >= bound.
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      int64_t key = SortKeyAt(slice, mid);
      bool below = lower_strict ? key <= lower_bound : key < lower_bound;
      if (below) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    begin = lo;
  }
  if (has_upper_bound) {
    uint32_t lo = begin;
    uint32_t hi = slice.len;
    // First entry with key >= bound (strict) or key > bound.
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      int64_t key = SortKeyAt(slice, mid);
      bool below = upper_strict ? key < upper_bound : key <= upper_bound;
      if (below) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    end = lo;
  }
  return {begin, end};
}

std::string ListDescriptor::Describe(const Catalog& catalog, const QueryGraph& query) const {
  std::string out;
  switch (source) {
    case Source::kPrimary:
      out = query.vertex(bound_var).name + "(" + ToString(primary->direction()) + " primary";
      break;
    case Source::kVp:
      out = query.vertex(bound_var).name + "(" + ToString(vp->direction()) + " VP:" + vp->name();
      break;
    case Source::kEp:
      out = query.edge(bound_var).name + "(EP:" + ep->name();
      break;
  }
  if (!cats.empty()) {
    out += " cats=[";
    for (size_t i = 0; i < cats.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(cats[i]);
    }
    out += "]";
  }
  out += ")->" + (target_vertex_var >= 0 ? query.vertex(target_vertex_var).name : "?");
  (void)catalog;
  return out;
}

void ScanOp::Run(MatchState* state) {
  if (bound_ != kInvalidVertex) {
    if (label_ != kInvalidLabel && graph_->vertex_label(bound_) != label_) return;
    state->v[var_] = bound_;
    if (EvalResiduals(*graph_, preds_, *state)) Emit(state);
    state->v[var_] = kInvalidVertex;
    return;
  }
  uint64_t nv = graph_->num_vertices();
  for (vertex_id_t v = 0; v < nv; ++v) {
    if (label_ != kInvalidLabel && graph_->vertex_label(v) != label_) continue;
    state->v[var_] = v;
    if (EvalResiduals(*graph_, preds_, *state)) Emit(state);
  }
  state->v[var_] = kInvalidVertex;
}

std::string ScanOp::Describe() const {
  std::string out = "Scan v" + std::to_string(var_);
  if (bound_ != kInvalidVertex) out += " id=" + std::to_string(bound_);
  if (label_ != kInvalidLabel) out += " label=" + std::to_string(label_);
  if (!preds_.empty()) out += " +" + std::to_string(preds_.size()) + " preds";
  return out;
}

bool ExtendOp::AcceptEntry(MatchState* state, const AdjListSlice& slice, uint32_t i) {
  edge_id_t e = slice.EdgeAt(i);
  if (state->EdgeAlreadyBound(e)) return false;
  if (!list_.EntryPassesLabels(*graph_, slice, i)) return false;
  vertex_id_t n = slice.NbrAt(i);
  if (list_.target_bound != kInvalidVertex && n != list_.target_bound) return false;
  if (!closing_) {
    if (state->VertexAlreadyBound(n)) return false;
    state->v[list_.target_vertex_var] = n;
  }
  state->e[list_.target_edge_var] = e;
  bool pass = EvalResiduals(*graph_, residual_, *state);
  if (pass) Emit(state);
  state->e[list_.target_edge_var] = kInvalidEdge;
  if (!closing_) state->v[list_.target_vertex_var] = kInvalidVertex;
  return pass;
}

void ExtendOp::Run(MatchState* state) {
  // Partially materialized EP index (Section III-B2 future work): when
  // the bound edge's page was not materialized under the budget, derive
  // the adjacency at run time from the anchor's primary list. Partition
  // categories and sort-key bounds become per-entry filters (the
  // runtime order is the base list's, not this index's sort order).
  if (list_.source == ListDescriptor::Source::kEp) {
    edge_id_t eb = state->e[list_.bound_var];
    const EpIndex* ep = list_.ep;
    if (!ep->IsMaterialized(eb)) {
      AdjListSlice base = ep->base_primary()->GetFullList(ep->AnchorOf(eb));
      vertex_id_t close_target =
          closing_ ? state->v[list_.target_vertex_var] : kInvalidVertex;
      ep->ForEachRuntime(eb, [&](uint32_t i, edge_id_t eadj, vertex_id_t nbr) {
        if (closing_ && nbr != close_target) return;
        for (size_t c = 0; c < list_.cats.size(); ++c) {
          if (ep->base_primary()->CategoryOf(ep->config().partitions[c], eadj, nbr) !=
              list_.cats[c]) {
            return;
          }
        }
        if (list_.has_upper_bound || list_.has_lower_bound) {
          int64_t key = EntrySortKey(*graph_, list_.sorts().front(), eadj, nbr);
          if (list_.has_upper_bound &&
              !(list_.upper_strict ? key < list_.upper_bound : key <= list_.upper_bound)) {
            return;
          }
          if (list_.has_lower_bound &&
              !(list_.lower_strict ? key > list_.lower_bound : key >= list_.lower_bound)) {
            return;
          }
        }
        AcceptEntry(state, base, i);
      });
      return;
    }
  }
  AdjListSlice slice = list_.Fetch(*state);
  if (closing_) {
    vertex_id_t target = state->v[list_.target_vertex_var];
    APLUS_DCHECK(target != kInvalidVertex);
    // Membership probe: binary search when the list is neighbour-sorted,
    // linear scan otherwise.
    auto [bound_begin, bound_end] = list_.BoundedRange(slice);
    if (list_.nbr_sorted) {
      auto [first, last] = EqualRangeByNbr(slice, target, bound_begin, bound_end);
      for (uint32_t i = first; i < last; ++i) AcceptEntry(state, slice, i);
    } else {
      for (uint32_t i = bound_begin; i < bound_end; ++i) {
        if (slice.NbrAt(i) == target) AcceptEntry(state, slice, i);
      }
    }
    return;
  }
  if (list_.has_upper_bound || list_.has_lower_bound) {
    auto [begin, end] = list_.BoundedRange(slice);
    for (uint32_t i = begin; i < end; ++i) AcceptEntry(state, slice, i);
    return;
  }
  for (uint32_t i = 0; i < slice.len; ++i) AcceptEntry(state, slice, i);
}

std::string ExtendOp::Describe() const {
  std::string out = closing_ ? "Extend(close) " : "Extend ";
  out += "list_src_var=" + std::to_string(list_.bound_var);
  out += " -> v" + std::to_string(list_.target_vertex_var);
  if (!residual_.empty()) out += " +" + std::to_string(residual_.size()) + " residual";
  return out;
}

ExtendIntersectOp::ExtendIntersectOp(const Graph* graph, std::vector<ListDescriptor> lists,
                                     int target_vertex_var,
                                     std::vector<QueryComparison> residual)
    : graph_(graph),
      lists_(std::move(lists)),
      target_var_(target_vertex_var),
      residual_(std::move(residual)) {
  APLUS_CHECK_GE(lists_.size(), 2u) << "E/I with z >= 2; use ExtendOp for one list";
  for (const ListDescriptor& list : lists_) {
    APLUS_CHECK(list.nbr_sorted)
        << "E/I requires (effectively) neighbour-ID sorted lists";
  }
}

void ExtendIntersectOp::Run(MatchState* state) {
  size_t z = lists_.size();
  std::vector<AdjListSlice> slices(z);
  std::vector<std::pair<uint32_t, uint32_t>> bounds(z);
  size_t pivot = 0;
  for (size_t i = 0; i < z; ++i) {
    slices[i] = lists_[i].Fetch(*state);
    bounds[i] = lists_[i].BoundedRange(slices[i]);
    uint32_t len_i = bounds[i].second - bounds[i].first;
    uint32_t len_p = bounds[pivot].second - bounds[pivot].first;
    if (len_i < len_p) pivot = i;
  }
  const AdjListSlice& ps = slices[pivot];
  label_t target_label = kInvalidLabel;
  for (const ListDescriptor& list : lists_) {
    if (list.target_vertex_label != kInvalidLabel) target_label = list.target_vertex_label;
  }

  uint32_t i = bounds[pivot].first;
  const uint32_t pivot_end = bounds[pivot].second;
  // Ranges of entries per list agreeing on the candidate neighbour.
  std::vector<std::pair<uint32_t, uint32_t>> ranges(z);
  while (i < pivot_end) {
    vertex_id_t n = ps.NbrAt(i);
    uint32_t group_end = i + 1;
    while (group_end < pivot_end && ps.NbrAt(group_end) == n) ++group_end;
    vertex_id_t pivot_bound = lists_[pivot].target_bound;
    if (state->VertexAlreadyBound(n) ||
        (pivot_bound != kInvalidVertex && n != pivot_bound) ||
        (target_label != kInvalidLabel && graph_->vertex_label(n) != target_label)) {
      i = group_end;
      continue;
    }
    bool all_present = true;
    for (size_t l = 0; l < z && all_present; ++l) {
      if (l == pivot) {
        ranges[l] = {i, group_end};
        continue;
      }
      ranges[l] = EqualRangeByNbr(slices[l], n, bounds[l].first, bounds[l].second);
      all_present = ranges[l].first < ranges[l].second;
    }
    if (all_present) {
      state->v[target_var_] = n;
      // Enumerate every combination of edges, one per list.
      std::vector<uint32_t> idx(z);
      for (size_t l = 0; l < z; ++l) idx[l] = ranges[l].first;
      // Depth-first product with edge-distinctness checks.
      size_t depth = 0;
      while (true) {
        if (depth == z) {
          if (EvalResiduals(*graph_, residual_, *state)) Emit(state);
          // Backtrack.
          --depth;
          state->e[lists_[depth].target_edge_var] = kInvalidEdge;
          ++idx[depth];
        }
        if (idx[depth] >= ranges[depth].second) {
          idx[depth] = ranges[depth].first;
          if (depth == 0) break;
          --depth;
          state->e[lists_[depth].target_edge_var] = kInvalidEdge;
          ++idx[depth];
          continue;
        }
        edge_id_t e = slices[depth].EdgeAt(idx[depth]);
        if (state->EdgeAlreadyBound(e) ||
            (lists_[depth].edge_label_filter != kInvalidLabel &&
             graph_->edge_label(e) != lists_[depth].edge_label_filter)) {
          ++idx[depth];
          continue;
        }
        state->e[lists_[depth].target_edge_var] = e;
        ++depth;
      }
      state->v[target_var_] = kInvalidVertex;
    }
    i = group_end;
  }
}

std::string ExtendIntersectOp::Describe() const {
  return "Extend/Intersect z=" + std::to_string(lists_.size()) + " -> v" +
         std::to_string(target_var_);
}

MultiExtendOp::MultiExtendOp(const Graph* graph, std::vector<ListDescriptor> lists,
                             std::vector<QueryComparison> residual)
    : graph_(graph), lists_(std::move(lists)), residual_(std::move(residual)) {
  APLUS_CHECK_GE(lists_.size(), 2u);
  const SortCriterion& first = lists_.front().sorts().front();
  for (const ListDescriptor& list : lists_) {
    APLUS_CHECK(!list.sorts().empty() && list.sorts().front() == first)
        << "MULTI-EXTEND requires identical sort criteria on all lists";
  }
}

void MultiExtendOp::EmitCombinations(MatchState* state, const std::vector<AdjListSlice>& slices,
                                     const std::vector<std::pair<uint32_t, uint32_t>>& ranges,
                                     size_t depth) {
  if (depth == lists_.size()) {
    if (EvalResiduals(*graph_, residual_, *state)) Emit(state);
    return;
  }
  const ListDescriptor& list = lists_[depth];
  const AdjListSlice& slice = slices[depth];
  for (uint32_t i = ranges[depth].first; i < ranges[depth].second; ++i) {
    vertex_id_t n = slice.NbrAt(i);
    edge_id_t e = slice.EdgeAt(i);
    if (state->VertexAlreadyBound(n) || state->EdgeAlreadyBound(e)) continue;
    if (list.target_bound != kInvalidVertex && n != list.target_bound) continue;
    if (!list.EntryPassesLabels(*graph_, slice, i)) continue;
    state->v[list.target_vertex_var] = n;
    state->e[list.target_edge_var] = e;
    EmitCombinations(state, slices, ranges, depth + 1);
    state->v[list.target_vertex_var] = kInvalidVertex;
    state->e[list.target_edge_var] = kInvalidEdge;
  }
}

void MultiExtendOp::Run(MatchState* state) {
  size_t z = lists_.size();
  std::vector<AdjListSlice> slices(z);
  std::vector<uint32_t> pos(z);
  std::vector<uint32_t> ends(z);
  for (size_t l = 0; l < z; ++l) {
    slices[l] = lists_[l].Fetch(*state);
    auto [begin, end] = lists_[l].BoundedRange(slices[l]);
    pos[l] = begin;
    ends[l] = end;
    if (begin >= end) return;
  }
  std::vector<std::pair<uint32_t, uint32_t>> ranges(z);
  while (true) {
    // Compute current keys and the max.
    int64_t max_key = INT64_MIN;
    for (size_t l = 0; l < z; ++l) {
      if (pos[l] >= ends[l]) return;
      int64_t key = lists_[l].SortKeyAt(slices[l], pos[l]);
      if (key > max_key) max_key = key;
    }
    // Advance lagging lists to >= max_key.
    bool all_equal = true;
    for (size_t l = 0; l < z; ++l) {
      while (pos[l] < ends[l] && lists_[l].SortKeyAt(slices[l], pos[l]) < max_key) {
        ++pos[l];
      }
      if (pos[l] >= ends[l]) return;
      if (lists_[l].SortKeyAt(slices[l], pos[l]) != max_key) all_equal = false;
    }
    if (!all_equal) continue;
    if (max_key == kNullSortKey) return;  // null tails never join
    // Equal-key ranges.
    for (size_t l = 0; l < z; ++l) {
      uint32_t end = pos[l];
      while (end < ends[l] && lists_[l].SortKeyAt(slices[l], end) == max_key) ++end;
      ranges[l] = {pos[l], end};
    }
    EmitCombinations(state, slices, ranges, 0);
    for (size_t l = 0; l < z; ++l) pos[l] = ranges[l].second;
  }
}

std::string MultiExtendOp::Describe() const {
  std::string out = "Multi-Extend z=" + std::to_string(lists_.size()) + " ->";
  for (const ListDescriptor& list : lists_) {
    out += " v" + std::to_string(list.target_vertex_var);
  }
  return out;
}

void FilterOp::Run(MatchState* state) {
  if (EvalResiduals(*graph_, preds_, *state)) Emit(state);
}

std::string FilterOp::Describe() const {
  return "Filter (" + std::to_string(preds_.size()) + " preds)";
}

}  // namespace aplus
