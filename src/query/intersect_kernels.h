#ifndef APLUS_QUERY_INTERSECT_KERNELS_H_
#define APLUS_QUERY_INTERSECT_KERNELS_H_

#include <cstdint>
#include <utility>

#include "storage/types.h"

namespace aplus {
namespace simd {

// Branch-reduced kernels for the three shapes that dominate the
// EXTEND/INTERSECT and MULTI-EXTEND inner loops (Section IV-A):
//
//   1. frontier advance over a flat sorted neighbour run (the galloping
//      search of sorted-run ∩ sorted-run),
//   2. equal-range probes over a decoded batch (the same advance, run
//      twice), and
//   3. the offset-list batch-decode widening loop (fixed-width offsets
//      -> flat neighbour/edge arrays, Section III-B3).
//
// Three implementations are compiled: a scalar gallop (always correct,
// any architecture), an SSE4.2 variant (4-lane block compares), and an
// AVX2 variant (8-lane block compares + gathered decodes). Dispatch is
// resolved once at runtime from `__builtin_cpu_supports` intersected
// with the APLUS_SIMD environment knob:
//
//   APLUS_SIMD=auto    highest level the host supports (default)
//   APLUS_SIMD=avx2    force AVX2 (clamped down if unsupported)
//   APLUS_SIMD=sse     force SSE4.2 (clamped down if unsupported)
//   APLUS_SIMD=scalar  force the scalar fallback
//
// The advance kernels are length-ratio-adaptive by construction: a short
// advance (balanced lists) resolves inside the leading SIMD block
// compares, a long advance (skewed lists) falls through to a galloping
// bracket + binary search whose final window is block-scanned. Cost
// stays O(log d) in the distance d actually advanced, matching the
// scalar gallop's complexity contract, so monotone-frontier sequences
// keep their O(k log(L/k)) total.
enum class Level : uint8_t { kScalar = 0, kSse = 1, kAvx2 = 2 };

const char* ToString(Level level);

// Dispatch table of one level. All function pointers are non-null.
struct Kernels {
  // First index in [from, end) with nbrs[i] >= n (ge) / > n (gt);
  // nbrs[from, end) must be sorted ascending. Returns end when no entry
  // qualifies; `from >= end` returns `from`.
  uint32_t (*advance_ge)(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n);
  uint32_t (*advance_gt)(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n);
  // Batch-decodes `count` neighbour IDs of an offset list starting at
  // entry `begin`: out[i] = base_nbrs[offset(begin + i)], with offsets
  // read LoadFixedWidth-style (`width` bytes, little-endian).
  void (*decode_nbrs)(const vertex_id_t* base_nbrs, const uint8_t* offsets, uint8_t width,
                      uint32_t begin, uint32_t count, vertex_id_t* out);
  // Same, widening neighbour + edge IDs together (the MULTI-EXTEND
  // equal-key-run decode).
  void (*decode_entries)(const vertex_id_t* base_nbrs, const edge_id_t* base_edges,
                         const uint8_t* offsets, uint8_t width, uint32_t begin, uint32_t count,
                         vertex_id_t* out_nbrs, edge_id_t* out_edges);
  // Batch-decodes `count` entries of a delta/varint packed stream
  // (storage/codec.h layout — the sealed-segment cold-list
  // representation) starting at stream entry `begin`. Either output may
  // be null to skip that side. Sequential varint decoding is a serial
  // dependency chain, so every level currently shares the scalar
  // implementation; the table entry is the dispatch seam for future
  // SIMD variants (e.g. masked-shuffle varint unpacking).
  void (*decode_varint_block)(const uint8_t* packed, uint32_t begin, uint32_t count,
                              vertex_id_t* out_nbrs, edge_id_t* out_edges);
  Level level;
};

// The shared scalar varint decoder behind decode_varint_block (wraps the
// storage/codec.h reference decoder); exposed so the per-ISA tables can
// reference one definition.
void DecodeVarintBlockScalar(const uint8_t* packed, uint32_t begin, uint32_t count,
                             vertex_id_t* out_nbrs, edge_id_t* out_edges);

// Highest level this host's CPU can execute.
Level HostMaxLevel();

// The active dispatch table. First use resolves APLUS_SIMD against
// HostMaxLevel(); subsequent calls are one relaxed atomic load.
const Kernels& Active();
Level ActiveLevel();

// Installs the table for `level` (clamped to HostMaxLevel()) and returns
// the level actually installed. For tests and the bench kernel-variant
// sweeps; not intended to race with concurrently executing plans.
Level SetLevel(Level level);

// Equal range of `n` within the sorted run [from, end) of `nbrs`.
inline std::pair<uint32_t, uint32_t> EqualRange(const Kernels& k, const vertex_id_t* nbrs,
                                                uint32_t from, uint32_t end, vertex_id_t n) {
  uint32_t first = k.advance_ge(nbrs, from, end, n);
  if (first == end || nbrs[first] != n) return {first, first};
  return {first, k.advance_gt(nbrs, first, end, n)};
}

// Per-level tables, exposed for the dispatcher and the bench A/B sweeps.
// SseKernels()/Avx2Kernels() return the scalar table when the build
// target is not x86 (the level is then reported as kScalar).
const Kernels& ScalarKernels();
const Kernels& SseKernels();
const Kernels& Avx2Kernels();

}  // namespace simd
}  // namespace aplus

#endif  // APLUS_QUERY_INTERSECT_KERNELS_H_
