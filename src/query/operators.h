#ifndef APLUS_QUERY_OPERATORS_H_
#define APLUS_QUERY_OPERATORS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/adj_list_slice.h"
#include "index/ep_index.h"
#include "index/primary_index.h"
#include "index/vp_index.h"
#include "query/morsel.h"
#include "query/query_graph.h"
#include "util/deadline.h"

namespace aplus {

class MemoryBudget;

// Which A+ index an extension reads its adjacency list from, and how the
// list is selected: the bound variable (a query vertex for primary/VP
// lists, a query edge for EP lists) plus a fixed prefix of partition
// categories resolved at plan time (e.g. the Wire label slot).
struct ListDescriptor {
  enum class Source : uint8_t { kPrimary, kVp, kEp };

  Source source = Source::kPrimary;
  const PrimaryIndex* primary = nullptr;
  const VpIndex* vp = nullptr;
  const EpIndex* ep = nullptr;
  int bound_var = -1;  // vertex var (kPrimary/kVp) or edge var (kEp)
  std::vector<category_t> cats;

  // Variables this list binds when its entries are consumed.
  int target_vertex_var = -1;
  int target_edge_var = -1;
  // When the target query vertex is pinned to a literal vertex (e.g.
  // a1.ID = v1), only entries pointing at it qualify.
  vertex_id_t target_bound = kInvalidVertex;
  // True when, within BoundedRange, entries are ordered by neighbour ID:
  // the slice is an innermost sublist whose (effective) sort starts with
  // vnbr.ID — possibly after equality bounds pin leading sort keys (the
  // Ds configuration sorts by neighbour label then ID; fixing the label
  // leaves a neighbour-ID-sorted run). Set by the index matcher;
  // required by EXTEND/INTERSECT.
  bool nbr_sorted = false;
  // Optional label filter on the bound neighbour (applied while
  // consuming entries when the list is not already partitioned on it).
  label_t target_vertex_label = kInvalidLabel;
  // Optional label filter on the consumed edge, for lists that are not
  // partitioned by edge label (e.g. a Flat-configured primary index).
  label_t edge_label_filter = kInvalidLabel;

  // True when the entry at position i passes this descriptor's label
  // filters.
  bool EntryPassesLabels(const Graph& graph, const AdjListSlice& slice, uint32_t i) const {
    if (edge_label_filter != kInvalidLabel &&
        graph.edge_label(slice.EdgeAt(i)) != edge_label_filter) {
      return false;
    }
    if (target_vertex_label != kInvalidLabel &&
        graph.vertex_label(slice.NbrAt(i)) != target_vertex_label) {
      return false;
    }
    return true;
  }

  // Optional range restriction on the list's first sort key: when the
  // list is sorted on a property and the query carries a range predicate
  // on it (e.g. e.time < alpha over a time-sorted VP index, the
  // MagicRecs pattern of Section V-C1), the operators binary-search the
  // qualifying prefix/suffix instead of filtering every entry.
  bool has_upper_bound = false;
  int64_t upper_bound = 0;
  bool upper_strict = true;  // key < bound vs key <= bound
  bool has_lower_bound = false;
  int64_t lower_bound = 0;
  bool lower_strict = true;  // key > bound vs key >= bound
  // >= 0 when the corresponding bound comes from a prepared-query $param
  // (a range conjunct on the list's first sort key folded at plan time):
  // the bound value is patched at Bind through ParamSlots::RangeSlot
  // instead of staying a residual per-entry predicate, so the sorted-
  // prefix binary search serves parameterized windows too (the MagicRecs
  // time-window pattern, Section V-C1).
  int upper_bound_param = -1;
  int lower_bound_param = -1;
  // True when the sort key is a double property: the bound value is
  // encoded via EncodeDoubleSortKey at Bind.
  bool bound_param_double = false;

  // Per-descriptor scratch for merged run+delta probes under concurrent
  // ingest (primary_index.h). Descriptors are cloned into each worker
  // replica along with their operator, so the scratch is never shared
  // across threads; mutable because Fetch is logically const.
  mutable ListMergeScratch merge_scratch;

  AdjListSlice Fetch(const MatchState& state) const;
  // First-sort-criterion key of entry i (used by MULTI-EXTEND merges).
  int64_t SortKeyAt(const AdjListSlice& slice, uint32_t i) const;
  // [begin, end) of entries satisfying the configured sort-key bounds
  // (whole list when no bounds are set).
  std::pair<uint32_t, uint32_t> BoundedRange(const AdjListSlice& slice) const;
  // The sort criteria this list is ordered by.
  const std::vector<SortCriterion>& sorts() const;
  std::string Describe(const Catalog& catalog, const QueryGraph& query) const;

  const Graph* graph() const;
};

// The patchable parameter slots of one physical pipeline, collected for
// prepared queries (core/session.h): pointers to predicate constants
// whose QueryComparison carries a $param, and to the vertex-pin sites
// (scan bounds, list target bounds) materialized from a query vertex so
// `<var>.ID = $param` pins can be re-bound without re-planning. The
// pointers stay valid for the plan's lifetime; pin slots are filtered by
// the collector to the vars that are actually param-pinned.
struct ParamSlots {
  struct ValueSlot {
    int param;     // parameter index (QueryComparison::rhs_param)
    Value* value;  // the rhs_const to patch
  };
  struct PinSlot {
    int var;           // query-vertex index the site was materialized from
    vertex_id_t* pin;  // the bound-vertex slot to patch
  };
  // A $param folded into a ListDescriptor sort-key bound: the raw int64
  // bound to patch, with doubles encoded via EncodeDoubleSortKey first.
  struct RangeSlot {
    int param;
    int64_t* bound;
    bool encode_double;
  };
  std::vector<ValueSlot> values;
  std::vector<PinSlot> pins;
  std::vector<RangeSlot> ranges;

  void Clear() {
    values.clear();
    pins.clear();
    ranges.clear();
  }
};

// Push-based physical operator. Each operator consumes one partial match
// and forwards zero or more extended matches to `next_`.
class Operator {
 public:
  virtual ~Operator() = default;
  void set_next(Operator* next) { next_ = next; }
  virtual void Run(MatchState* state) = 0;
  // Deep copy with fresh (empty) scratch, used by Plan::Execute's
  // parallel path to build one pipeline replica per worker. The clone's
  // next_ is unset; the caller rewires the replica chain.
  virtual std::unique_ptr<Operator> Clone() const = 0;
  // Appends this operator's patchable parameter slots (see ParamSlots).
  virtual void CollectParamSlots(ParamSlots* slots) { (void)slots; }
  // Installs the execution-wide stop token (deadline / cancel / LIMIT /
  // exhaustion) and memory budget. Operators that poll or charge
  // override this; the default ignores both. Called on the primary
  // pipeline and every worker replica before execution.
  virtual void SetExecContext(ExecToken* token, MemoryBudget* budget) {
    (void)token;
    (void)budget;
  }
  virtual std::string Describe() const = 0;

 protected:
  void Emit(MatchState* state) { next_->Run(state); }
  Operator* next_ = nullptr;
};

// Terminal operator: counts (and optionally samples) complete matches.
//
// Thread-safety contract for callbacks under Plan::Execute(num_threads
// > 1): every worker invokes its own copy of the callback (made by
// Clone()), concurrently with the other workers' copies. The MatchState
// passed in is the invoking worker's private state and is safe to read;
// anything the callback captures by reference or pointer is shared
// across all copies and must be synchronized by the caller.
class SinkOp : public Operator {
 public:
  explicit SinkOp(std::function<void(const MatchState&)> callback = nullptr)
      : callback_(std::move(callback)) {}
  void Run(MatchState* state) override {
    state->count++;
    if (callback_) callback_(*state);
  }
  std::unique_ptr<Operator> Clone() const override { return std::make_unique<SinkOp>(callback_); }
  bool has_callback() const { return static_cast<bool>(callback_); }
  std::string Describe() const override { return "Sink"; }

 private:
  std::function<void(const MatchState&)> callback_;
};

// Pipeline driver: binds query vertex `var` to every graph vertex that
// passes the label filter / bound-ID constraint and the given predicates.
class ScanOp : public Operator {
 public:
  ScanOp(const Graph* graph, int var, label_t label, vertex_id_t bound,
         std::vector<QueryComparison> preds)
      : graph_(graph), var_(var), label_(label), bound_(bound), preds_(std::move(preds)) {}

  void Run(MatchState* state) override;
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<ScanOp>(graph_, var_, label_, bound_, preds_);
  }
  void CollectParamSlots(ParamSlots* slots) override;
  std::string Describe() const override;

  // Scan domain [begin, end) in vertex-ID space — the whole graph, or a
  // single ID when the variable is pinned. The morsel dispatcher carves
  // this range across workers.
  std::pair<uint64_t, uint64_t> ScanDomain() const {
    if (bound_ != kInvalidVertex) return {bound_, static_cast<uint64_t>(bound_) + 1};
    return {0, graph_->num_vertices()};
  }
  // When set, Run() drains vertex-range morsels from the shared cursor
  // instead of scanning the whole domain; Plan::Execute sets it for
  // parallel execution and clears it for serial execution.
  void set_morsel_cursor(MorselCursor* cursor) { morsel_cursor_ = cursor; }
  // Cooperative stop (LIMIT / deadline / cancel / exhaustion): the scan
  // re-checks the token per source vertex, checks the wall clock per
  // morsel (and periodically within a serial range), and stops driving
  // the pipeline once a stop is requested.
  void SetExecContext(ExecToken* token, MemoryBudget* budget) override {
    (void)budget;
    token_ = token;
  }

 private:
  void ScanRange(MatchState* state, uint64_t begin, uint64_t end);

  const Graph* graph_;
  int var_;
  label_t label_;
  vertex_id_t bound_;
  std::vector<QueryComparison> preds_;
  MorselCursor* morsel_cursor_ = nullptr;
  ExecToken* token_ = nullptr;
};

// Single-list EXTEND (the z = 1 case of E/I): extends the partial match
// along one adjacency list, binding one new query vertex and edge.
// When the target vertex is already bound (a cycle-closing edge) the
// operator verifies list membership instead of enumerating.
class ExtendOp : public Operator {
 public:
  ExtendOp(const Graph* graph, ListDescriptor list, std::vector<QueryComparison> residual,
           bool target_already_bound = false)
      : graph_(graph),
        list_(std::move(list)),
        residual_(std::move(residual)),
        closing_(target_already_bound) {}

  void Run(MatchState* state) override;
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<ExtendOp>(graph_, list_, residual_, closing_);
  }
  void CollectParamSlots(ParamSlots* slots) override;
  std::string Describe() const override;

  // --- Deep morselization (Plan::Execute with a tiny scan domain) ---

  // Whether this operator's entry enumeration can be partitioned across
  // worker replicas via an EntryCursor. Cycle-closing extends probe
  // instead of enumerating, and non-materialized EP lists enumerate
  // through a runtime callback path that is not instrumented; both stay
  // scan-partitioned.
  bool CanDeepMorselize() const {
    return !closing_ && list_.source != ListDescriptor::Source::kEp;
  }
  // When set, Run() claims entry-ordinal blocks from the shared cursor
  // and only processes the entries it owns (see EntryCursor). The local
  // ordinal sequence must be reset via ResetEntryClaims() before each
  // parallel execution.
  void set_entry_cursor(EntryCursor* cursor) { entry_cursor_ = cursor; }
  void ResetEntryClaims() {
    entry_seq_ = 0;
    claim_begin_ = 0;
    claim_end_ = 0;
  }
  // Cooperative stop, polled (with a clock check) once per claimed block
  // so a long entry loop below a one-vertex scan still stops early.
  void SetExecContext(ExecToken* token, MemoryBudget* budget) override {
    (void)budget;
    token_ = token;
  }

 private:
  bool AcceptEntry(MatchState* state, const AdjListSlice& slice, uint32_t i);
  // Flag check on most calls, a clock check every 64th: a serial chain
  // plan has no other PollClock site hot enough to notice a deadline
  // (the scan samples per 1024 source vertices, which a small or pinned
  // scan domain never reaches).
  bool CheckStop() {
    return (poll_tick_++ & 63u) == 0 ? token_->PollClock() : token_->stop_requested();
  }
  // Advances the local ordinal sequence by one entry and reports whether
  // this replica owns it. Must be called exactly once per enumerated
  // entry so all replicas agree on the numbering.
  bool ClaimEntry() {
    if (entry_cursor_ == nullptr) return true;
    uint64_t s = entry_seq_++;
    if (s >= claim_end_) {
      // Own previous block ended at claim_end_ <= the shared counter, so
      // the new block starts at or after s: never claims into the past.
      claim_begin_ = entry_cursor_->ClaimBlock();
      claim_end_ = claim_begin_ + EntryCursor::kBlock;
      if (token_ != nullptr && token_->PollClock()) return false;
    }
    return s >= claim_begin_;
  }

  const Graph* graph_;
  ListDescriptor list_;
  std::vector<QueryComparison> residual_;
  bool closing_;
  EntryCursor* entry_cursor_ = nullptr;
  ExecToken* token_ = nullptr;
  uint32_t poll_tick_ = 0;  // clock-sampling cadence of the entry loops
  uint64_t entry_seq_ = 0;
  uint64_t claim_begin_ = 0;
  uint64_t claim_end_ = 0;
};

// Per-list probe state of one EXTEND/INTERSECT input, reused across
// Run() calls (plan lifetime) so steady-state execution does not
// allocate. `frontier` is a monotone cursor: pivot candidates arrive in
// ascending neighbour order, so every probe resumes where the previous
// one ended instead of binary-searching from the range start.
struct ProbeList {
  AdjListSlice slice;
  uint32_t begin = 0;  // bounded range [begin, end)
  uint32_t end = 0;
  uint32_t frontier = 0;
  // Neighbour IDs of [begin, end), batch-decoded out of an offset list
  // when the list will be probed more than O(log n) times; probing a
  // flat sorted array avoids the per-access LoadFixedWidth indirection.
  // Null when reads go through the slice. Indexed by (i - begin).
  const vertex_id_t* decoded = nullptr;
  std::vector<vertex_id_t> decode_buf;

  vertex_id_t NbrAt(uint32_t i) const {
    return decoded != nullptr ? decoded[i - begin] : slice.NbrAt(i);
  }
  uint32_t len() const { return end - begin; }
};

// EXTEND/INTERSECT with z >= 2 (Section IV-A): intersects z adjacency
// lists sorted on neighbour IDs and binds the new query vertex to each
// vertex in the intersection (plus one query edge per list). This is the
// WCOJ building block.
class ExtendIntersectOp : public Operator {
 public:
  ExtendIntersectOp(const Graph* graph, std::vector<ListDescriptor> lists, int target_vertex_var,
                    std::vector<QueryComparison> residual);

  void Run(MatchState* state) override;
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<ExtendIntersectOp>(graph_, lists_, target_var_, residual_);
  }
  void CollectParamSlots(ParamSlots* slots) override;
  // Polled per pivot-candidate group (with a periodic clock check) and
  // within the edge-combination product loop; decode-buffer growth is
  // charged against the budget.
  void SetExecContext(ExecToken* token, MemoryBudget* budget) override {
    token_ = token;
    budget_ = budget;
  }
  std::string Describe() const override;

 private:
  const Graph* graph_;
  std::vector<ListDescriptor> lists_;
  int target_var_;
  std::vector<QueryComparison> residual_;
  // Target-vertex constraints folded over all z lists at plan time.
  label_t target_label_ = kInvalidLabel;
  vertex_id_t target_bound_ = kInvalidVertex;
  // Plan-lifetime scratch, sized to z once in the constructor.
  std::vector<ProbeList> probes_;
  std::vector<std::pair<uint32_t, uint32_t>> ranges_;
  std::vector<uint32_t> idx_;
  ExecToken* token_ = nullptr;
  MemoryBudget* budget_ = nullptr;
  uint32_t poll_tick_ = 0;  // coarsens the clock checks
};

// MULTI-EXTEND (Section IV-A): intersects z lists sorted on a property
// other than the neighbour ID (all lists must share the sort criterion)
// and extends the partial match by up to z new query vertices at once —
// one per list — for every combination of entries agreeing on the sort
// key. Used by the money-flow plans (Figure 6).
class MultiExtendOp : public Operator {
 public:
  MultiExtendOp(const Graph* graph, std::vector<ListDescriptor> lists,
                std::vector<QueryComparison> residual);

  void Run(MatchState* state) override;
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<MultiExtendOp>(graph_, lists_, residual_);
  }
  void CollectParamSlots(ParamSlots* slots) override;
  // Polled in the z-way merge loop and inside the per-combination
  // emission; run-decode buffer growth is charged against the budget.
  void SetExecContext(ExecToken* token, MemoryBudget* budget) override {
    token_ = token;
    budget_ = budget;
  }
  std::string Describe() const override;

 private:
  // Sort key of entry i of list l under the list's first sort criterion,
  // via the criterion/graph pair cached at plan time (skips the
  // ListDescriptor::sorts() dispatch of the old per-comparison path).
  int64_t KeyAt(size_t l, uint32_t i) const {
    return EntrySortKey(*key_graphs_[l], key_crits_[l], slices_[l].EdgeAt(i),
                        slices_[l].NbrAt(i));
  }
  void EmitCombinations(MatchState* state, size_t depth);

  const Graph* graph_;
  std::vector<ListDescriptor> lists_;
  std::vector<QueryComparison> residual_;
  // First sort criterion + backing graph per list, resolved once.
  std::vector<SortCriterion> key_crits_;
  std::vector<const Graph*> key_graphs_;
  // Plan-lifetime scratch, sized to z once in the constructor. `cur_key_`
  // caches the sort key at pos_[l] so the merge computes each entry's
  // property-backed key once per visit instead of once per comparison.
  std::vector<AdjListSlice> slices_;
  std::vector<uint32_t> pos_;
  std::vector<uint32_t> ends_;
  std::vector<int64_t> cur_key_;
  std::vector<int64_t> next_key_;
  std::vector<std::pair<uint32_t, uint32_t>> ranges_;
  // Current equal-key run of each offset list, batch-decoded to flat
  // arrays before EmitCombinations re-enumerates it per combination of
  // the preceding lists. Indexed by (i - ranges_[l].first); empty when
  // the run is read through the slice.
  std::vector<std::vector<vertex_id_t>> run_nbrs_;
  std::vector<std::vector<edge_id_t>> run_edges_;
  std::vector<uint8_t> run_decoded_;
  ExecToken* token_ = nullptr;
  MemoryBudget* budget_ = nullptr;
  uint32_t poll_tick_ = 0;  // coarsens the clock checks
};

// FILTER: applies residual predicates (Section IV-A).
class FilterOp : public Operator {
 public:
  FilterOp(const Graph* graph, std::vector<QueryComparison> preds)
      : graph_(graph), preds_(std::move(preds)) {}
  void Run(MatchState* state) override;
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<FilterOp>(graph_, preds_);
  }
  void CollectParamSlots(ParamSlots* slots) override;
  std::string Describe() const override;

 private:
  const Graph* graph_;
  std::vector<QueryComparison> preds_;
};

}  // namespace aplus

#endif  // APLUS_QUERY_OPERATORS_H_
