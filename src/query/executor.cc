#include "query/executor.h"

namespace aplus {

QueryResult RunPlan(Plan* plan, int num_threads) {
  QueryResult result;
  result.count = num_threads == kUseEnvThreads ? plan->Execute() : plan->Execute(num_threads);
  result.seconds = plan->last_execute_seconds();
  result.plan = plan->Describe();
  return result;
}

}  // namespace aplus
