#include "query/executor.h"

namespace aplus {

QueryResult RunPlan(Plan* plan) {
  QueryResult result;
  result.count = plan->Execute();
  result.seconds = plan->last_execute_seconds();
  result.plan = plan->Describe();
  return result;
}

QueryResult RunPlan(Plan* plan, int num_threads) {
  QueryResult result;
  result.count = plan->Execute(num_threads);
  result.seconds = plan->last_execute_seconds();
  result.plan = plan->Describe();
  return result;
}

}  // namespace aplus
