#include "query/executor.h"

namespace aplus {

QueryResult RunPlan(Plan* plan) {
  QueryResult result;
  result.count = plan->Execute();
  result.seconds = plan->last_execute_seconds();
  result.plan = plan->Describe();
  return result;
}

}  // namespace aplus
