#ifndef APLUS_QUERY_INTERSECT_KERNELS_IMPL_H_
#define APLUS_QUERY_INTERSECT_KERNELS_IMPL_H_

// Shared skeletons of the SIMD kernel variants. Included by the per-ISA
// translation units (intersect_kernels_sse.cc / _avx2.cc), each compiled
// with its own -m flags, so the templates instantiate with full
// intrinsic inlining inside the right ISA context. Nothing here is
// compiled into the portable TU.

#include <cstdint>

#include "query/intersect_kernels.h"
#include "util/bit_util.h"

namespace aplus {
namespace simd {
namespace detail {

// Entries scanned linearly (in Block::kWidth chunks) before conceding
// the advance is long and switching to the galloping bracket. Balanced
// intersections advance a handful of entries per probe and resolve here.
inline constexpr uint32_t kLinearBlocks = 4;
// Binary search narrows the bracketed window down to this many entries,
// then the block compare finishes (replaces the last log2(32) halvings
// with two 8-lane compares under AVX2).
inline constexpr uint32_t kBinaryCutoff = 32;

// Length-ratio-adaptive advance: first index in [from, end) with
// nbrs[i] >= n. `Block` supplies kWidth and FirstGe(p, n) -> index of
// the first qualifying lane in p[0, kWidth) (kWidth when none).
template <typename Block>
uint32_t AdvanceGeAdaptive(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n) {
  if (from >= end || nbrs[from] >= n) return from;
  constexpr uint32_t kW = Block::kWidth;
  uint32_t i = from + 1;
  for (uint32_t b = 0; b < kLinearBlocks && i + kW <= end; ++b) {
    uint32_t r = Block::FirstGe(nbrs + i, n);
    if (r < kW) return i + r;
    i += kW;
  }
  if (i + kW > end) {
    while (i < end && nbrs[i] < n) ++i;
    return i;
  }
  // Long advance: gallop from the last position known < n, then binary
  // search the bracket down to a block-scannable window.
  uint64_t lo = i - 1;  // nbrs[lo] < n
  uint64_t step = kW;
  while (lo + step < end && nbrs[lo + step] < n) {
    lo += step;
    step <<= 1;
  }
  uint64_t hi = lo + step < end ? lo + step : end;
  while (hi - lo > kBinaryCutoff) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (nbrs[mid] < n) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  uint32_t j = static_cast<uint32_t>(lo) + 1;
  uint32_t window_end = static_cast<uint32_t>(hi);
  while (j + kW <= window_end) {
    uint32_t r = Block::FirstGe(nbrs + j, n);
    if (r < kW) return j + r;
    j += kW;
  }
  while (j < window_end && nbrs[j] < n) ++j;
  return j;
}

// advance_gt via advance_ge: x > n  <=>  x >= n + 1 for unsigned IDs.
// n == max (kInvalidVertex, never stored in a list) has no successor:
// every entry is <= n, so the answer is end.
template <typename Block>
uint32_t AdvanceGtAdaptive(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n) {
  if (from >= end) return from;
  if (n == static_cast<vertex_id_t>(~0u)) return end;
  return AdvanceGeAdaptive<Block>(nbrs, from, end, n + 1);
}

// Scalar decode loops shared as the odd-width / tail path of the SIMD
// decoders. Width-specialized so the per-entry LoadFixedWidth dispatch
// is hoisted out of the loop (the compiler folds each case's byte
// assembly into one load on little-endian targets).
inline void DecodeNbrsScalarRange(const vertex_id_t* base_nbrs, const uint8_t* offsets,
                                  uint8_t width, uint32_t begin, uint32_t from, uint32_t count,
                                  vertex_id_t* out) {
  const uint8_t* src = offsets + static_cast<size_t>(begin) * width;
  switch (width) {
    case 1:
      for (uint32_t i = from; i < count; ++i) out[i] = base_nbrs[src[i]];
      break;
    case 2:
      for (uint32_t i = from; i < count; ++i) {
        const uint8_t* p = src + static_cast<size_t>(i) * 2;
        out[i] = base_nbrs[static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8)];
      }
      break;
    case 4:
      for (uint32_t i = from; i < count; ++i) {
        const uint8_t* p = src + static_cast<size_t>(i) * 4;
        uint32_t o = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
        out[i] = base_nbrs[o];
      }
      break;
    default:
      for (uint32_t i = from; i < count; ++i) {
        out[i] = base_nbrs[LoadFixedWidth(src + static_cast<size_t>(i) * width, width)];
      }
      break;
  }
}

inline void DecodeEntriesScalarRange(const vertex_id_t* base_nbrs, const edge_id_t* base_edges,
                                     const uint8_t* offsets, uint8_t width, uint32_t begin,
                                     uint32_t from, uint32_t count, vertex_id_t* out_nbrs,
                                     edge_id_t* out_edges) {
  const uint8_t* src = offsets + static_cast<size_t>(begin) * width;
  for (uint32_t i = from; i < count; ++i) {
    uint64_t o = LoadFixedWidth(src + static_cast<size_t>(i) * width, width);
    out_nbrs[i] = base_nbrs[o];
    out_edges[i] = base_edges[o];
  }
}

}  // namespace detail
}  // namespace simd
}  // namespace aplus

#endif  // APLUS_QUERY_INTERSECT_KERNELS_IMPL_H_
