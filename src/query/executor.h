#ifndef APLUS_QUERY_EXECUTOR_H_
#define APLUS_QUERY_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "query/plan.h"

namespace aplus {

// Sentinel thread count: defer to Plan::Execute()'s APLUS_THREADS
// environment default (1 when unset; plans with a callback or a
// non-counting sink stay serial under the env knob). Any value >= 1
// pins the worker count explicitly.
inline constexpr int kUseEnvThreads = 0;

// Result of running one plan. Serving code goes through
// Database::Execute / PreparedQuery::Execute, which return the richer
// QueryOutcome (core/session.h); RunPlan is the low-level plan-driver
// for benches and tests that assemble plans by hand.
struct QueryResult {
  uint64_t count = 0;
  double seconds = 0.0;
  std::string plan;  // Describe() of the executed plan
};

// Runs `plan` once and packages count / runtime / plan description.
// `num_threads` == kUseEnvThreads uses Plan::Execute()'s APLUS_THREADS
// default; any explicit value >= 1 pins the worker count (see
// Plan::Execute(int) for the parallel-execution and SinkOp-callback
// contracts).
QueryResult RunPlan(Plan* plan, int num_threads = kUseEnvThreads);

}  // namespace aplus

#endif  // APLUS_QUERY_EXECUTOR_H_
