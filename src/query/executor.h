#ifndef APLUS_QUERY_EXECUTOR_H_
#define APLUS_QUERY_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "query/plan.h"

namespace aplus {

// Result of running one plan.
struct QueryResult {
  uint64_t count = 0;
  double seconds = 0.0;
  std::string plan;  // Describe() of the executed plan
};

// Runs `plan` once and packages count / runtime / plan description. The
// single-argument form uses Plan::Execute()'s APLUS_THREADS default; the
// two-argument form pins the worker count (see Plan::Execute(int) for
// the parallel-execution and SinkOp-callback contracts).
QueryResult RunPlan(Plan* plan);
QueryResult RunPlan(Plan* plan, int num_threads);

}  // namespace aplus

#endif  // APLUS_QUERY_EXECUTOR_H_
