#include "query/intersect_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "query/intersect_kernels_impl.h"
#include "storage/codec.h"

#if defined(__x86_64__) || defined(__i386__)
#define APLUS_X86_KERNELS 1
#endif

namespace aplus {
namespace simd {

namespace {

// Scalar gallop, identical to the operators' historical GallopSearch on
// a flat array: exponential bracket then binary search, O(log d) in the
// distance d advanced.
template <bool kStrict>
uint32_t AdvanceScalar(const vertex_id_t* nbrs, uint32_t from, uint32_t end, vertex_id_t n) {
  auto below = [&](uint32_t i) { return kStrict ? nbrs[i] <= n : nbrs[i] < n; };
  if (from >= end || !below(from)) return from;
  uint64_t lo = from;
  uint64_t step = 1;
  while (lo + step < end && below(static_cast<uint32_t>(lo + step))) {
    lo += step;
    step <<= 1;
  }
  uint64_t hi = lo + step < end ? lo + step : end;
  while (lo + 1 < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (below(static_cast<uint32_t>(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint32_t>(hi);
}

void DecodeNbrsScalar(const vertex_id_t* base_nbrs, const uint8_t* offsets, uint8_t width,
                      uint32_t begin, uint32_t count, vertex_id_t* out) {
  detail::DecodeNbrsScalarRange(base_nbrs, offsets, width, begin, 0, count, out);
}

void DecodeEntriesScalar(const vertex_id_t* base_nbrs, const edge_id_t* base_edges,
                         const uint8_t* offsets, uint8_t width, uint32_t begin, uint32_t count,
                         vertex_id_t* out_nbrs, edge_id_t* out_edges) {
  detail::DecodeEntriesScalarRange(base_nbrs, base_edges, offsets, width, begin, 0, count,
                                   out_nbrs, out_edges);
}

constexpr Kernels kScalarTable = {
    &AdvanceScalar<false>, &AdvanceScalar<true>,
    &DecodeNbrsScalar,     &DecodeEntriesScalar,
    &DecodeVarintBlockScalar,
    Level::kScalar,
};

Level ClampToHost(Level level) {
  Level max = HostMaxLevel();
  return static_cast<uint8_t>(level) > static_cast<uint8_t>(max) ? max : level;
}

Level RequestedFromEnv() {
  const char* env = std::getenv("APLUS_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) return HostMaxLevel();
  if (std::strcmp(env, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(env, "sse") == 0) return Level::kSse;
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  return HostMaxLevel();  // unrecognized: behave like auto
}

const Kernels& TableFor(Level level) {
  switch (level) {
    case Level::kAvx2:
      return Avx2Kernels();
    case Level::kSse:
      return SseKernels();
    case Level::kScalar:
      break;
  }
  return ScalarKernels();
}

// The active table. Null until the first Active() call resolves the
// environment; SetLevel installs directly. Concurrent first resolution
// is benign (both writers store the same pointer).
std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

void DecodeVarintBlockScalar(const uint8_t* packed, uint32_t begin, uint32_t count,
                             vertex_id_t* out_nbrs, edge_id_t* out_edges) {
  codec::DecodeRange(packed, begin, count, out_nbrs, out_edges);
}

const char* ToString(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse:
      return "sse";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

Level HostMaxLevel() {
#if defined(APLUS_X86_KERNELS)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse;
#endif
  return Level::kScalar;
}

const Kernels& ScalarKernels() { return kScalarTable; }

#if !defined(APLUS_X86_KERNELS)
// Non-x86 builds compile no SIMD TUs; every level degrades to scalar.
const Kernels& SseKernels() { return kScalarTable; }
const Kernels& Avx2Kernels() { return kScalarTable; }
#endif

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = &TableFor(ClampToHost(RequestedFromEnv()));
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

Level ActiveLevel() { return Active().level; }

Level SetLevel(Level level) {
  const Kernels& table = TableFor(ClampToHost(level));
  g_active.store(&table, std::memory_order_release);
  return table.level;
}

}  // namespace simd
}  // namespace aplus
