#include "query/cypher_parser.h"

#include <cctype>
#include <charconv>
#include <vector>

namespace aplus {

namespace {

// Overflow-safe literal conversions: serving text is untrusted, so an
// over-long number must surface as a parse error, never as a thrown
// std::out_of_range. Each requires the whole token to convert.
template <typename T>
bool ParseNumberLiteral(const std::string& text, T* out) {
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

struct Token {
  enum class Kind { kIdent, kNumber, kString, kParam, kOp, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token Next() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ >= text_.size()) return Token{Token::Kind::kEnd, ""};
    char c = text_[pos_];
    if (c == '\'') {
      // Single-quoted string literal.
      size_t end = text_.find('\'', pos_ + 1);
      if (end == std::string::npos) {
        pos_ = text_.size();
        return Token{Token::Kind::kString, ""};
      }
      Token token{Token::Kind::kString, text_.substr(pos_ + 1, end - pos_ - 1)};
      pos_ = end + 1;
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                     text_[pos_] == '.')) {
        ++pos_;
      }
      return Token{Token::Kind::kNumber, text_.substr(start, pos_ - start)};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                     text_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::Kind::kIdent, text_.substr(start, pos_ - start)};
    }
    if (c == '$') {
      // $name parameter placeholder. A bare '$' falls through as an
      // operator token and errors downstream.
      size_t start = pos_ + 1;
      size_t end = start;
      while (end < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                                    text_[end] == '_')) {
        ++end;
      }
      if (end > start) {
        pos_ = end;
        return Token{Token::Kind::kParam, text_.substr(start, end - start)};
      }
    }
    // Multi-character operators.
    static const char* kMulti[] = {"<=", ">=", "<>", "->", "<-"};
    for (const char* op : kMulti) {
      if (text_.compare(pos_, 2, op) == 0) {
        pos_ += 2;
        return Token{Token::Kind::kOp, op};
      }
    }
    ++pos_;
    return Token{Token::Kind::kOp, std::string(1, c)};
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

class Parser {
 public:
  Parser(const std::string& text, const Catalog& catalog) : catalog_(catalog) {
    Lexer lexer(text);
    for (Token token = lexer.Next();; token = lexer.Next()) {
      tokens_.push_back(token);
      if (token.kind == Token::Kind::kEnd) break;
    }
  }

  ParsedCypher Parse() {
    if (!AcceptKeyword("MATCH")) {
      result_.error = "query must start with MATCH";
      return result_;
    }
    do {
      if (!ParsePattern()) return result_;
    } while (Accept(","));
    if (AcceptKeyword("WHERE")) {
      do {
        if (!ParseCondition()) return result_;
      } while (Accept(",") || AcceptKeyword("AND"));
    }
    if (AcceptKeyword("RETURN")) {
      if (!ParseReturn()) return result_;
    }
    if (AcceptKeyword("ORDER")) {
      if (!ParseOrderBy()) return result_;
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != Token::Kind::kNumber ||
          Peek().text.find('.') != std::string::npos ||
          !ParseNumberLiteral(Peek().text, &result_.limit)) {
        result_.error = "expected non-negative integer after LIMIT";
        return result_;
      }
      result_.has_limit = true;
      ++pos_;
    }
    if (Peek().kind != Token::Kind::kEnd) {
      result_.error = "unexpected trailing token '" + Peek().text + "'";
    }
    return result_;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool Accept(const std::string& op) {
    if (Peek().kind == Token::Kind::kOp && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == Token::Kind::kIdent && Upper(Peek().text) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Expect(const std::string& op) {
    if (Accept(op)) return true;
    result_.error = "expected '" + op + "', got '" + Peek().text + "'";
    return false;
  }

  // (name[:Label])
  int ParseNode() {
    if (!Expect("(")) return -1;
    if (Peek().kind != Token::Kind::kIdent) {
      result_.error = "expected node variable";
      return -1;
    }
    std::string name = Peek().text;
    ++pos_;
    label_t label = kInvalidLabel;
    if (Accept(":")) {
      if (Peek().kind != Token::Kind::kIdent) {
        result_.error = "expected node label";
        return -1;
      }
      label = catalog_.FindVertexLabel(Peek().text);
      if (label == kInvalidLabel) {
        result_.error = "unknown vertex label " + Peek().text;
        return -1;
      }
      ++pos_;
    }
    if (!Expect(")")) return -1;
    int var = result_.query.FindVertex(name);
    if (var < 0) {
      var = result_.query.AddVertex(name, label);
    } else if (label != kInvalidLabel) {
      result_.query.mutable_vertex(var).label = label;
    }
    return var;
  }

  // node (edge node)*
  bool ParsePattern() {
    int prev = ParseNode();
    if (prev < 0) return false;
    while (true) {
      bool backward = false;
      if (Accept("-")) {
        backward = false;
      } else if (Accept("<-")) {
        backward = true;
      } else {
        return true;  // pattern ends at a node
      }
      // [name][:Label] inside brackets (both optional).
      std::string edge_name;
      label_t edge_label = kInvalidLabel;
      if (!Expect("[")) return false;
      if (Peek().kind == Token::Kind::kIdent) {
        edge_name = Peek().text;
        ++pos_;
      }
      if (Accept(":")) {
        if (Peek().kind != Token::Kind::kIdent) {
          result_.error = "expected edge label";
          return false;
        }
        edge_label = catalog_.FindEdgeLabel(Peek().text);
        if (edge_label == kInvalidLabel) {
          result_.error = "unknown edge label " + Peek().text;
          return false;
        }
        ++pos_;
      }
      if (!Expect("]")) return false;
      if (backward) {
        if (!Expect("-")) return false;
      } else {
        if (!Expect("->")) return false;
      }
      int next = ParseNode();
      if (next < 0) return false;
      if (backward) {
        result_.query.AddEdge(next, prev, edge_label, edge_name);
      } else {
        result_.query.AddEdge(prev, next, edge_label, edge_name);
      }
      prev = next;
    }
  }

  // <var>.<prop> | <var>.ID
  bool ParseRef(QueryPropRef* ref) {
    if (Peek().kind != Token::Kind::kIdent) {
      result_.error = "expected variable reference";
      return false;
    }
    std::string var_name = Peek().text;
    ++pos_;
    if (!Expect(".")) return false;
    if (Peek().kind != Token::Kind::kIdent) {
      result_.error = "expected property name after '.'";
      return false;
    }
    std::string prop = Peek().text;
    ++pos_;
    int vertex_var = result_.query.FindVertex(var_name);
    int edge_var = result_.query.FindEdge(var_name);
    if (vertex_var < 0 && edge_var < 0) {
      result_.error = "unknown variable " + var_name;
      return false;
    }
    ref->is_edge = vertex_var < 0;
    ref->var = ref->is_edge ? edge_var : vertex_var;
    if (Upper(prop) == "ID") {
      ref->is_id = true;
      return true;
    }
    ref->key = catalog_.FindProperty(
        prop, ref->is_edge ? PropTargetKind::kEdge : PropTargetKind::kVertex);
    if (ref->key == kInvalidPropKey) {
      result_.error = "unknown property " + prop;
      return false;
    }
    return true;
  }

  // AggFn of an identifier token, kNone when it is not an aggregate name.
  static AggFn AggFnOf(const std::string& ident) {
    std::string up = Upper(ident);
    if (up == "COUNT") return AggFn::kCount;
    if (up == "SUM") return AggFn::kSum;
    if (up == "MIN") return AggFn::kMin;
    if (up == "MAX") return AggFn::kMax;
    if (up == "AVG") return AggFn::kAvg;
    return AggFn::kNone;
  }

  // <var> | <var>.<prop> | <var>.ID, shared by RETURN items, aggregate
  // arguments, and ORDER BY keys. Bare variables project the bound id.
  bool ParseProjectionRef(ReturnItem* item, const char* clause) {
    if (Peek().kind != Token::Kind::kIdent) {
      result_.error = std::string("expected variable reference in ") + clause;
      return false;
    }
    std::string var_name = Peek().text;
    if (Peek(1).kind == Token::Kind::kOp && Peek(1).text == ".") {
      if (!ParseRef(&item->ref)) {
        // ParseRef reports unknown variables/properties; sharpen the
        // clause context for the common failure mode.
        result_.error += std::string(" (in ") + clause + ")";
        return false;
      }
      item->name = var_name + "." + (item->ref.is_id ? "ID" : PropName(item->ref.key));
      return true;
    }
    ++pos_;
    int vertex_var = result_.query.FindVertex(var_name);
    int edge_var = result_.query.FindEdge(var_name);
    if (vertex_var < 0 && edge_var < 0) {
      result_.error = "unknown variable " + var_name + " in " + clause;
      return false;
    }
    item->ref.is_edge = vertex_var < 0;
    item->ref.var = item->ref.is_edge ? edge_var : vertex_var;
    item->ref.is_id = true;
    item->name = var_name;
    return true;
  }

  // item := AGG '(' '*' | ref ')' | ref, where AGG is COUNT / SUM / MIN
  // / MAX / AVG and ref := <var> | <var>.<prop> | <var>.ID.
  bool ParseReturnItem(ReturnItem* item, const char* clause) {
    AggFn fn = Peek().kind == Token::Kind::kIdent ? AggFnOf(Peek().text) : AggFn::kNone;
    bool is_call = fn != AggFn::kNone && Peek(1).kind == Token::Kind::kOp &&
                   Peek(1).text == "(";
    if (!is_call) return ParseProjectionRef(item, clause);
    ++pos_;
    if (!Expect("(")) return false;
    item->agg = fn;
    if (Accept("*")) {
      if (fn != AggFn::kCount) {
        result_.error = std::string(ToString(fn)) + "(*) is not supported; COUNT(*) only";
        return false;
      }
      item->star = true;
      item->name = "COUNT(*)";
      return Expect(")");
    }
    if (!ParseProjectionRef(item, clause)) return false;
    if (!Expect(")")) return false;
    if (fn != AggFn::kCount) {
      // SUM/MIN/MAX/AVG need a numeric argument; ids count as int64.
      ValueType type = item->ref.is_id ? ValueType::kInt64 : catalog_.property(item->ref.key).type;
      if (type != ValueType::kInt64 && type != ValueType::kDouble) {
        result_.error = std::string(ToString(fn)) + "(" + item->name +
                        ") requires an int64 or double argument";
        return false;
      }
    }
    item->name = std::string(ToString(fn)) + "(" + item->name + ")";
    return true;
  }

  // item (, item)*; bare items double as group keys when aggregates are
  // present (implicit GROUP BY).
  bool ParseReturn() {
    // RETURN DISTINCT <items>: dedup of the projected rows. Aggregates
    // already emit one row per group, so combining the two is redundant
    // at best and ambiguous at worst (DISTINCT inside vs over the
    // aggregation) — rejected rather than silently picking one.
    if (AcceptKeyword("DISTINCT")) result_.distinct = true;
    do {
      ReturnItem item;
      if (!ParseReturnItem(&item, "RETURN")) return false;
      if (item.agg != AggFn::kNone) result_.has_aggregate = true;
      result_.returns.push_back(std::move(item));
    } while (Accept(","));
    if (result_.distinct && result_.has_aggregate) {
      result_.error = "RETURN DISTINCT cannot be combined with aggregates";
      return false;
    }
    return true;
  }

  // ORDER BY key [ASC|DESC] (, key [ASC|DESC])*. Keys are matched
  // against the RETURN items by rendered name (aggregation makes any
  // other target ill-defined).
  bool ParseOrderBy() {
    if (!AcceptKeyword("BY")) {
      result_.error = "expected BY after ORDER";
      return false;
    }
    if (result_.returns.empty()) {
      result_.error = "ORDER BY requires a RETURN projection";
      return false;
    }
    do {
      ReturnItem key;
      if (!ParseReturnItem(&key, "ORDER BY")) return false;
      OrderByItem order;
      for (size_t i = 0; i < result_.returns.size(); ++i) {
        if (result_.returns[i].name == key.name) {
          order.item = static_cast<int>(i);
          break;
        }
      }
      if (order.item < 0) {
        result_.error = "ORDER BY key " + key.name + " is not a RETURN item";
        return false;
      }
      if (AcceptKeyword("DESC")) {
        order.desc = true;
      } else {
        AcceptKeyword("ASC");
      }
      result_.order_by.push_back(order);
    } while (Accept(","));
    return true;
  }

  const std::string& PropName(prop_key_t key) const { return catalog_.property(key).name; }

  // Registers (or re-finds) parameter $name with the given expected
  // type; -1 and a parse error when the name is reused with a
  // conflicting expectation.
  int RegisterParam(const std::string& name, ValueType expected, prop_key_t key) {
    for (size_t i = 0; i < result_.params.size(); ++i) {
      CypherParam& p = result_.params[i];
      if (p.name != name) continue;
      if (p.expected != expected || p.key != key) {
        result_.error = "parameter $" + name + " used with conflicting types";
        return -1;
      }
      return static_cast<int>(i);
    }
    CypherParam p;
    p.name = name;
    p.expected = expected;
    p.key = key;
    result_.params.push_back(std::move(p));
    return static_cast<int>(result_.params.size() - 1);
  }

  bool ParseCondition() {
    QueryComparison cmp;
    if (!ParseRef(&cmp.lhs)) return false;
    if (Accept("=")) {
      cmp.op = CmpOp::kEq;
    } else if (Accept("<>")) {
      cmp.op = CmpOp::kNe;
    } else if (Accept("<=")) {
      cmp.op = CmpOp::kLe;
    } else if (Accept(">=")) {
      cmp.op = CmpOp::kGe;
    } else if (Accept("<")) {
      cmp.op = CmpOp::kLt;
    } else if (Accept(">")) {
      cmp.op = CmpOp::kGt;
    } else {
      result_.error = "expected comparison operator, got '" + Peek().text + "'";
      return false;
    }
    // Right-hand side: literal, <var>.<prop> [+ int], or identifier
    // (category value name of the lhs property).
    const Token& rhs = Peek();
    if (rhs.kind == Token::Kind::kNumber) {
      ++pos_;
      if (rhs.text.find('.') != std::string::npos) {
        double d = 0.0;
        if (!ParseNumberLiteral(rhs.text, &d)) {
          result_.error = "malformed numeric literal '" + rhs.text + "'";
          return false;
        }
        cmp.rhs_const = Value::Double(d);
      } else {
        int64_t v = 0;
        if (!ParseNumberLiteral(rhs.text, &v)) {
          result_.error = "integer literal out of range '" + rhs.text + "'";
          return false;
        }
        cmp.rhs_const = Value::Int64(v);
      }
    } else if (rhs.kind == Token::Kind::kString) {
      ++pos_;
      cmp.rhs_const = Value::String(rhs.text);
    } else if (rhs.kind == Token::Kind::kParam) {
      ++pos_;
      // `<vertex>.ID = $p` is a parameter pin: the plan is optimized
      // around a pinned vertex whose id is patched at bind time. A
      // vertex can carry only one pin — further ID equalities become
      // ordinary predicates so conjunctions keep intersection semantics
      // instead of the later pin overwriting the earlier one.
      if (!cmp.lhs.is_edge && cmp.lhs.is_id && cmp.op == CmpOp::kEq &&
          !VertexIsPinned(cmp.lhs.var)) {
        int idx = RegisterParam(rhs.text, ValueType::kInt64, kInvalidPropKey);
        if (idx < 0) return false;
        CypherParam& param = result_.params[idx];
        if (param.pin_var >= 0 && param.pin_var != cmp.lhs.var) {
          result_.error = "parameter $" + rhs.text + " pins multiple variables";
          return false;
        }
        param.pin_var = cmp.lhs.var;
        result_.query.mutable_vertex(cmp.lhs.var).bound_param = idx;
        return true;
      }
      ValueType expected =
          cmp.lhs.is_id ? ValueType::kInt64 : catalog_.property(cmp.lhs.key).type;
      int idx = RegisterParam(rhs.text, expected,
                              cmp.lhs.is_id ? kInvalidPropKey : cmp.lhs.key);
      if (idx < 0) return false;
      cmp.rhs_param = idx;  // rhs_const stays null until bound
    } else if (rhs.kind == Token::Kind::kIdent) {
      // <var>.<prop> reference, or a bare category-value identifier.
      bool is_ref = Peek(1).kind == Token::Kind::kOp && Peek(1).text == "." &&
                    (result_.query.FindVertex(rhs.text) >= 0 ||
                     result_.query.FindEdge(rhs.text) >= 0);
      if (is_ref) {
        cmp.rhs_is_const = false;
        if (!ParseRef(&cmp.rhs_ref)) return false;
        if (Accept("+")) {
          if (Peek().kind != Token::Kind::kNumber ||
              !ParseNumberLiteral(Peek().text, &cmp.rhs_addend)) {
            result_.error = "expected integer addend";
            return false;
          }
          ++pos_;
        }
      } else {
        ++pos_;
        if (cmp.lhs.key == kInvalidPropKey ||
            catalog_.property(cmp.lhs.key).type != ValueType::kCategory) {
          result_.error = "identifier constant '" + rhs.text +
                          "' requires a categorical left-hand property";
          return false;
        }
        category_t cat = catalog_.FindCategoryValue(cmp.lhs.key, rhs.text);
        if (cat == kInvalidCategory) {
          result_.error = "unknown category value " + rhs.text;
          return false;
        }
        cmp.rhs_const = Value::Category(cat);
      }
    } else {
      result_.error = "expected right-hand side";
      return false;
    }
    // `<vertex>.ID = <int>` pins the vertex — at most once; a second ID
    // equality stays a predicate (see the $param pin note above).
    if (!cmp.lhs.is_edge && cmp.lhs.is_id && cmp.op == CmpOp::kEq && cmp.rhs_is_const &&
        cmp.rhs_param < 0 && cmp.rhs_const.type() == ValueType::kInt64 &&
        !VertexIsPinned(cmp.lhs.var)) {
      result_.query.mutable_vertex(cmp.lhs.var).bound =
          static_cast<vertex_id_t>(cmp.rhs_const.AsInt64());
      return true;
    }
    result_.query.AddPredicate(std::move(cmp));
    return true;
  }

  // True when the vertex already carries a literal or $param ID pin.
  bool VertexIsPinned(int var) const {
    const QueryVertex& qv = result_.query.vertex(var);
    return qv.bound != kInvalidVertex || qv.bound_param >= 0;
  }

  const Catalog& catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  ParsedCypher result_;
};

}  // namespace

ParsedCypher ParseCypher(const std::string& text, const Catalog& catalog) {
  Parser parser(text, catalog);
  return parser.Parse();
}

}  // namespace aplus
