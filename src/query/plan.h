#ifndef APLUS_QUERY_PLAN_H_
#define APLUS_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/operators.h"

namespace aplus {

// A physical plan: a pipeline of push-based operators ending in a SinkOp.
// Plans are produced by the DP optimizer (src/optimizer) or built by hand
// via PlanBuilder for the benchmark harnesses.
class Plan {
 public:
  Plan(std::vector<std::unique_ptr<Operator>> ops, int num_query_vertices, int num_query_edges);

  // Runs the pipeline and returns the number of complete matches.
  uint64_t Execute();

  // One line per operator, root first (Figure 6 style).
  std::string Describe() const;

  double last_execute_seconds() const { return last_execute_seconds_; }

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  int num_query_vertices_;
  int num_query_edges_;
  double last_execute_seconds_ = 0.0;
};

// Convenience builder used by benches and tests to assemble pipelines.
class PlanBuilder {
 public:
  PlanBuilder(const Graph* graph, const QueryGraph* query) : graph_(graph), query_(query) {}

  PlanBuilder& Scan(int var, std::vector<QueryComparison> preds = {});
  PlanBuilder& Extend(ListDescriptor list, std::vector<QueryComparison> residual = {},
                      bool closing = false);
  PlanBuilder& ExtendIntersect(std::vector<ListDescriptor> lists, int target_var,
                               std::vector<QueryComparison> residual = {});
  PlanBuilder& MultiExtend(std::vector<ListDescriptor> lists,
                           std::vector<QueryComparison> residual = {});
  PlanBuilder& Filter(std::vector<QueryComparison> preds);

  // Appends the sink and finalizes.
  std::unique_ptr<Plan> Build(std::function<void(const MatchState&)> callback = nullptr);

 private:
  const Graph* graph_;
  const QueryGraph* query_;
  std::vector<std::unique_ptr<Operator>> ops_;
};

}  // namespace aplus

#endif  // APLUS_QUERY_PLAN_H_
