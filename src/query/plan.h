#ifndef APLUS_QUERY_PLAN_H_
#define APLUS_QUERY_PLAN_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "query/morsel.h"
#include "query/operators.h"

namespace aplus {

// A physical plan: a pipeline of push-based operators ending in a SinkOp.
// Plans are produced by the DP optimizer (src/optimizer) or built by hand
// via PlanBuilder for the benchmark harnesses.
//
// Plans are internally parallel (Execute(num_threads)) but not
// externally thread-safe: one Plan must not be executed from two threads
// at once. MatchStates and per-worker pipeline replicas persist across
// Execute calls, so repeated execution of the same plan (the serving
// pattern) is allocation-free in steady state.
class Plan {
 public:
  Plan(std::vector<std::unique_ptr<Operator>> ops, int num_query_vertices, int num_query_edges);

  // Runs the pipeline and returns the number of complete matches. The
  // worker count comes from the APLUS_THREADS environment variable
  // (default 1). Plans whose SinkOp carries a callback ignore the env
  // knob and stay serial — concurrent callback execution must be
  // requested explicitly through Execute(num_threads), which is the
  // caller's acknowledgement of the SinkOp thread-safety contract.
  uint64_t Execute();

  // Runs the pipeline with `num_threads` workers using morsel-driven
  // parallelism: the leading ScanOp's vertex domain is carved into
  // morsels handed out through an atomic cursor, and each worker drives
  // its own cloned pipeline replica (private operator scratch, private
  // MatchState, private SinkOp callback copy) over the morsels it
  // claims. Match counts accumulate per worker and merge once at the
  // end. See SinkOp for the callback thread-safety contract.
  uint64_t Execute(int num_threads);

  // One line per operator, root first (Figure 6 style).
  std::string Describe() const;

  double last_execute_seconds() const { return last_execute_seconds_; }

  // --- Prepared-query support (core/session.h) ---

  // Number of materialized pipelines: the serial pipeline plus every
  // worker replica created by a parallel Execute so far. Replicas
  // persist across Execute calls, so the count only grows.
  int num_pipelines() const { return 1 + static_cast<int>(workers_.size()); }
  // Terminal (sink) operator of pipeline `pipeline` in [0, num_pipelines).
  Operator* sink(int pipeline);
  // Appends the patchable $param slots of every pipeline. Pointers stay
  // valid until more replicas are created (collect again when
  // num_pipelines() changes).
  void CollectParamSlots(ParamSlots* slots);
  // Installs the cooperative stop token and memory budget on every
  // operator of every pipeline (current and future replicas); nullptrs
  // detach. LIMIT, deadlines, cancellation, and resource exhaustion all
  // stop execution through the token.
  void SetExecContext(ExecToken* token, MemoryBudget* budget);

  // Upper bound on the worker count of Execute(num_threads).
  static constexpr int kMaxThreads = 256;

  // --- Plan-clone support (server/shared_plan_cache.cc) ---
  //
  // The primary pipeline's operators and the query dimensions, for
  // re-materializing an equivalent Plan (Operator::Clone per op) without
  // re-running the optimizer. Callers must not mutate the operators and
  // must not clone while this plan is executing.
  const std::vector<std::unique_ptr<Operator>>& primary_ops() const { return ops_; }
  int num_query_vertices() const { return num_query_vertices_; }
  int num_query_edges() const { return num_query_edges_; }

 private:
  // One parallel worker's pipeline replica; workers_[w] serves worker
  // w + 1 (worker 0 reuses the original ops_ / state_).
  struct WorkerPipeline {
    std::vector<std::unique_ptr<Operator>> ops;
    MatchState state;
  };

  uint64_t ExecuteSerial(ScanOp* scan);
  void EnsureWorkers(int num_replicas);
  // The first-extend split point of pipeline `w` (0 = the primary), or
  // nullptr when the plan's second operator is not a deep-morselizable
  // ExtendOp (see ExtendOp::CanDeepMorselize).
  ExtendOp* DeepExtend(int w);

  // Scan domains smaller than kDeepMorselFactor × num_threads leave
  // workers idle under scan morsels (a one-vertex $src-pinned scan
  // starves all but one); such plans split the first EXTEND's entry
  // domain instead.
  static constexpr uint64_t kDeepMorselFactor = 4;

  std::vector<std::unique_ptr<Operator>> ops_;
  int num_query_vertices_;
  int num_query_edges_;
  double last_execute_seconds_ = 0.0;
  MatchState state_;  // worker 0 / serial state, reused across Execute calls
  std::vector<WorkerPipeline> workers_;
  MorselCursor cursor_;
  EntryCursor entry_cursor_;
  ExecToken* token_ = nullptr;
  MemoryBudget* budget_ = nullptr;
};

// Convenience builder used by benches and tests to assemble pipelines.
class PlanBuilder {
 public:
  PlanBuilder(const Graph* graph, const QueryGraph* query) : graph_(graph), query_(query) {}

  PlanBuilder& Scan(int var, std::vector<QueryComparison> preds = {});
  PlanBuilder& Extend(ListDescriptor list, std::vector<QueryComparison> residual = {},
                      bool closing = false);
  PlanBuilder& ExtendIntersect(std::vector<ListDescriptor> lists, int target_var,
                               std::vector<QueryComparison> residual = {});
  PlanBuilder& MultiExtend(std::vector<ListDescriptor> lists,
                           std::vector<QueryComparison> residual = {});
  PlanBuilder& Filter(std::vector<QueryComparison> preds);

  // Appends a counting SinkOp and finalizes.
  std::unique_ptr<Plan> Build(std::function<void(const MatchState&)> callback = nullptr);
  // Finalizes with a caller-supplied terminal operator (e.g. the serving
  // path's ProjectSinkOp).
  std::unique_ptr<Plan> BuildWithSink(std::unique_ptr<Operator> sink);

 private:
  const Graph* graph_;
  const QueryGraph* query_;
  std::vector<std::unique_ptr<Operator>> ops_;
};

}  // namespace aplus

#endif  // APLUS_QUERY_PLAN_H_
