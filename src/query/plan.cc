#include "query/plan.h"

#include <cstdlib>

#include "util/epoch.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace aplus {

namespace {

// Default worker count for Plan::Execute(): the APLUS_THREADS
// environment variable, so serving deployments (and CI) can parallelize
// every plan without touching call sites. Unset/unparsable = 1.
int DefaultNumThreads() {
  const char* env = std::getenv("APLUS_THREADS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  if (v < 1) return 1;
  if (v > Plan::kMaxThreads) return Plan::kMaxThreads;
  return static_cast<int>(v);
}

}  // namespace

Plan::Plan(std::vector<std::unique_ptr<Operator>> ops, int num_query_vertices,
           int num_query_edges)
    : ops_(std::move(ops)),
      num_query_vertices_(num_query_vertices),
      num_query_edges_(num_query_edges) {
  APLUS_CHECK_GE(ops_.size(), 2u) << "plan needs at least a scan and a sink";
  for (size_t i = 0; i + 1 < ops_.size(); ++i) ops_[i]->set_next(ops_[i + 1].get());
}

uint64_t Plan::Execute() {
  int num_threads = DefaultNumThreads();
  if (num_threads > 1) {
    // The env knob never opts a callback (or a non-counting sink such as
    // the serving path's ProjectSinkOp) into concurrent invocation on
    // the caller's behalf; that requires an explicit Execute(n).
    auto* sink = dynamic_cast<SinkOp*>(ops_.back().get());
    if (sink == nullptr || sink->has_callback()) num_threads = 1;
  }
  return Execute(num_threads);
}

uint64_t Plan::ExecuteSerial(ScanOp* scan) {
  if (scan != nullptr) scan->set_morsel_cursor(nullptr);
  if (ExtendOp* deep = DeepExtend(0)) deep->set_entry_cursor(nullptr);
  state_.Reset(num_query_vertices_, num_query_edges_);
  ops_.front()->Run(&state_);
  return state_.count;
}

ExtendOp* Plan::DeepExtend(int w) {
  // Needs at least scan, extend, sink — and the extend must enumerate
  // through the instrumented loops.
  if (ops_.size() < 3) return nullptr;
  std::vector<std::unique_ptr<Operator>>& ops = w == 0 ? ops_ : workers_[w - 1].ops;
  auto* ext = dynamic_cast<ExtendOp*>(ops[1].get());
  if (ext == nullptr || !ext->CanDeepMorselize()) return nullptr;
  return ext;
}

uint64_t Plan::Execute(int num_threads) {
  WallTimer timer;
  // Pin an epoch for the whole execution: the pool workers run strictly
  // inside the spawn/join window, so one pin on the calling thread keeps
  // every run/delta version probed by any replica alive until we return
  // (util/epoch.h). Nested pins (sub-plans in sink callbacks) are free.
  EpochGuard epoch_guard;
  int k = num_threads < 1 ? 1 : (num_threads > kMaxThreads ? kMaxThreads : num_threads);
  auto* scan = dynamic_cast<ScanOp*>(ops_.front().get());
  // Morsel dispatch partitions the driving scan; a plan led by anything
  // else (not produced by PlanBuilder/DpOptimizer) runs serially.
  if (scan == nullptr) k = 1;
  uint64_t total = 0;
  if (k == 1) {
    total = ExecuteSerial(scan);
  } else {
    EnsureWorkers(k - 1);
    auto [begin, end] = scan->ScanDomain();
    // Tiny scan domain (e.g. a $src-pinned scan of one vertex): scan
    // morsels would starve all but a few workers, so push the work split
    // one stage deeper — every replica runs the full scan and the first
    // EXTEND's entry domain is claimed block-wise through entry_cursor_.
    bool deep = (end - begin) < kDeepMorselFactor * static_cast<uint64_t>(k) &&
                DeepExtend(0) != nullptr;
    if (deep) {
      entry_cursor_.Reset();
    } else {
      cursor_.Reset(begin, end, k);
    }
    // Wire both split points explicitly on every pipeline that will run:
    // the mode can flip between Execute calls (thread count changes, a
    // $param re-bind unpinning the scan), and replicas persist across
    // calls with their previous wiring.
    for (int w = 0; w < k; ++w) {
      auto* s = w == 0 ? scan
                       : dynamic_cast<ScanOp*>(workers_[w - 1].ops.front().get());
      s->set_morsel_cursor(deep ? nullptr : &cursor_);
      if (ExtendOp* ext = DeepExtend(w)) {
        ext->set_entry_cursor(deep ? &entry_cursor_ : nullptr);
        if (deep) ext->ResetEntryClaims();
      }
    }
    auto body = [this](int w) {
      MatchState& state = w == 0 ? state_ : workers_[w - 1].state;
      state.Reset(num_query_vertices_, num_query_edges_);
      Operator* root = w == 0 ? ops_.front().get() : workers_[w - 1].ops.front().get();
      root->Run(&state);
    };
    ThreadPool::Global().ParallelRun(k, body);
    total = state_.count;
    for (int w = 1; w < k; ++w) total += workers_[w - 1].state.count;
  }
  last_execute_seconds_ = timer.ElapsedSeconds();
  return total;
}

void Plan::EnsureWorkers(int num_replicas) {
  while (static_cast<int>(workers_.size()) < num_replicas) {
    WorkerPipeline worker;
    worker.ops.reserve(ops_.size());
    for (const auto& op : ops_) worker.ops.push_back(op->Clone());
    for (size_t i = 0; i + 1 < worker.ops.size(); ++i) {
      worker.ops[i]->set_next(worker.ops[i + 1].get());
    }
    auto* scan = dynamic_cast<ScanOp*>(worker.ops.front().get());
    APLUS_CHECK(scan != nullptr);
    // cursor_ is a member, so the pointer stays valid across Execute
    // calls and replicas are wired up exactly once.
    scan->set_morsel_cursor(&cursor_);
    for (const auto& op : worker.ops) op->SetExecContext(token_, budget_);
    workers_.push_back(std::move(worker));
  }
}

Operator* Plan::sink(int pipeline) {
  APLUS_DCHECK(pipeline >= 0 && pipeline < num_pipelines());
  return pipeline == 0 ? ops_.back().get() : workers_[pipeline - 1].ops.back().get();
}

void Plan::CollectParamSlots(ParamSlots* slots) {
  for (const auto& op : ops_) op->CollectParamSlots(slots);
  for (const WorkerPipeline& worker : workers_) {
    for (const auto& op : worker.ops) op->CollectParamSlots(slots);
  }
}

void Plan::SetExecContext(ExecToken* token, MemoryBudget* budget) {
  token_ = token;
  budget_ = budget;
  for (const auto& op : ops_) op->SetExecContext(token, budget);
  for (WorkerPipeline& worker : workers_) {
    for (const auto& op : worker.ops) op->SetExecContext(token, budget);
  }
}

std::string Plan::Describe() const {
  std::string out;
  for (const auto& op : ops_) {
    out += op->Describe();
    out += "\n";
  }
  return out;
}

PlanBuilder& PlanBuilder::Scan(int var, std::vector<QueryComparison> preds) {
  const QueryVertex& qv = query_->vertex(var);
  ops_.push_back(std::make_unique<ScanOp>(graph_, var, qv.label, qv.bound, std::move(preds)));
  return *this;
}

PlanBuilder& PlanBuilder::Extend(ListDescriptor list, std::vector<QueryComparison> residual,
                                 bool closing) {
  ops_.push_back(std::make_unique<ExtendOp>(graph_, std::move(list), std::move(residual),
                                            closing));
  return *this;
}

PlanBuilder& PlanBuilder::ExtendIntersect(std::vector<ListDescriptor> lists, int target_var,
                                          std::vector<QueryComparison> residual) {
  ops_.push_back(std::make_unique<ExtendIntersectOp>(graph_, std::move(lists), target_var,
                                                     std::move(residual)));
  return *this;
}

PlanBuilder& PlanBuilder::MultiExtend(std::vector<ListDescriptor> lists,
                                      std::vector<QueryComparison> residual) {
  ops_.push_back(std::make_unique<MultiExtendOp>(graph_, std::move(lists), std::move(residual)));
  return *this;
}

PlanBuilder& PlanBuilder::Filter(std::vector<QueryComparison> preds) {
  ops_.push_back(std::make_unique<FilterOp>(graph_, std::move(preds)));
  return *this;
}

std::unique_ptr<Plan> PlanBuilder::Build(std::function<void(const MatchState&)> callback) {
  return BuildWithSink(std::make_unique<SinkOp>(std::move(callback)));
}

std::unique_ptr<Plan> PlanBuilder::BuildWithSink(std::unique_ptr<Operator> sink) {
  APLUS_CHECK(sink != nullptr);
  ops_.push_back(std::move(sink));
  return std::make_unique<Plan>(std::move(ops_), query_->num_vertices(), query_->num_edges());
}

}  // namespace aplus
