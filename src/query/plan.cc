#include "query/plan.h"

#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

Plan::Plan(std::vector<std::unique_ptr<Operator>> ops, int num_query_vertices,
           int num_query_edges)
    : ops_(std::move(ops)),
      num_query_vertices_(num_query_vertices),
      num_query_edges_(num_query_edges) {
  APLUS_CHECK_GE(ops_.size(), 2u) << "plan needs at least a scan and a sink";
  for (size_t i = 0; i + 1 < ops_.size(); ++i) ops_[i]->set_next(ops_[i + 1].get());
}

uint64_t Plan::Execute() {
  WallTimer timer;
  MatchState state;
  state.Reset(num_query_vertices_, num_query_edges_);
  ops_.front()->Run(&state);
  last_execute_seconds_ = timer.ElapsedSeconds();
  return state.count;
}

std::string Plan::Describe() const {
  std::string out;
  for (const auto& op : ops_) {
    out += op->Describe();
    out += "\n";
  }
  return out;
}

PlanBuilder& PlanBuilder::Scan(int var, std::vector<QueryComparison> preds) {
  const QueryVertex& qv = query_->vertex(var);
  ops_.push_back(std::make_unique<ScanOp>(graph_, var, qv.label, qv.bound, std::move(preds)));
  return *this;
}

PlanBuilder& PlanBuilder::Extend(ListDescriptor list, std::vector<QueryComparison> residual,
                                 bool closing) {
  ops_.push_back(std::make_unique<ExtendOp>(graph_, std::move(list), std::move(residual),
                                            closing));
  return *this;
}

PlanBuilder& PlanBuilder::ExtendIntersect(std::vector<ListDescriptor> lists, int target_var,
                                          std::vector<QueryComparison> residual) {
  ops_.push_back(std::make_unique<ExtendIntersectOp>(graph_, std::move(lists), target_var,
                                                     std::move(residual)));
  return *this;
}

PlanBuilder& PlanBuilder::MultiExtend(std::vector<ListDescriptor> lists,
                                      std::vector<QueryComparison> residual) {
  ops_.push_back(std::make_unique<MultiExtendOp>(graph_, std::move(lists), std::move(residual)));
  return *this;
}

PlanBuilder& PlanBuilder::Filter(std::vector<QueryComparison> preds) {
  ops_.push_back(std::make_unique<FilterOp>(graph_, std::move(preds)));
  return *this;
}

std::unique_ptr<Plan> PlanBuilder::Build(std::function<void(const MatchState&)> callback) {
  ops_.push_back(std::make_unique<SinkOp>(std::move(callback)));
  return std::make_unique<Plan>(std::move(ops_), query_->num_vertices(), query_->num_edges());
}

}  // namespace aplus
