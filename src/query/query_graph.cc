#include "query/query_graph.h"

#include "util/logging.h"

namespace aplus {

const char* ToString(AggFn fn) {
  switch (fn) {
    case AggFn::kNone:
      return "";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

int QueryGraph::AddVertex(const std::string& name, label_t label, vertex_id_t bound) {
  APLUS_CHECK(FindVertex(name) < 0) << "duplicate query vertex " << name;
  vertices_.push_back(QueryVertex{name, label, bound});
  return static_cast<int>(vertices_.size() - 1);
}

int QueryGraph::AddEdge(int from, int to, label_t label, const std::string& name) {
  APLUS_CHECK_GE(from, 0);
  APLUS_CHECK_LT(from, num_vertices());
  APLUS_CHECK_GE(to, 0);
  APLUS_CHECK_LT(to, num_vertices());
  std::string edge_name = name.empty() ? "e" + std::to_string(edges_.size() + 1) : name;
  edges_.push_back(QueryEdge{edge_name, from, to, label});
  return static_cast<int>(edges_.size() - 1);
}

int QueryGraph::FindVertex(const std::string& name) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int QueryGraph::FindEdge(const std::string& name) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> QueryGraph::EdgesIncidentTo(int v) const {
  std::vector<int> incident;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].from == v || edges_[i].to == v) incident.push_back(static_cast<int>(i));
  }
  return incident;
}

Value ReadQueryPropRef(const Graph& graph, const QueryPropRef& ref, const MatchState& state) {
  if (ref.is_edge) {
    edge_id_t e = state.e[ref.var];
    APLUS_DCHECK(e != kInvalidEdge);
    if (ref.is_id) return Value::Int64(static_cast<int64_t>(e));
    return graph.edge_props().Get(ref.key, e);
  }
  vertex_id_t v = state.v[ref.var];
  APLUS_DCHECK(v != kInvalidVertex);
  if (ref.is_id) return Value::Int64(v);
  return graph.vertex_props().Get(ref.key, v);
}

bool EvalQueryComparison(const Graph& graph, const QueryComparison& cmp,
                         const MatchState& state) {
  Value lhs = ReadQueryPropRef(graph, cmp.lhs, state);
  if (lhs.is_null()) return false;
  Value rhs = cmp.rhs_is_const ? cmp.rhs_const : ReadQueryPropRef(graph, cmp.rhs_ref, state);
  if (rhs.is_null()) return false;
  if (!cmp.rhs_is_const && cmp.rhs_addend != 0) {
    if (rhs.type() == ValueType::kDouble) {
      rhs = Value::Double(rhs.AsDouble() + static_cast<double>(cmp.rhs_addend));
    } else {
      rhs = Value::Int64(rhs.AsInt64() + cmp.rhs_addend);
    }
  }
  return ApplyCmp(cmp.op, Value::Compare(lhs, rhs));
}

bool ComparisonIsBound(const QueryComparison& cmp, const MatchState& state) {
  auto bound = [&state](const QueryPropRef& ref) {
    if (ref.is_edge) return state.e[ref.var] != kInvalidEdge;
    return state.v[ref.var] != kInvalidVertex;
  };
  if (!bound(cmp.lhs)) return false;
  if (!cmp.rhs_is_const && !bound(cmp.rhs_ref)) return false;
  return true;
}

}  // namespace aplus
