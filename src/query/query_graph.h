#ifndef APLUS_QUERY_QUERY_GRAPH_H_
#define APLUS_QUERY_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "storage/graph.h"
#include "storage/types.h"
#include "view/predicate.h"

namespace aplus {

// Aggregate functions of the RETURN clause (the serving layer's
// grouped-aggregation surface). kNone marks a plain projection item,
// which doubles as a group key when the projection mixes bare items and
// aggregates (SQL-style implicit GROUP BY).
enum class AggFn : uint8_t {
  kNone = 0,
  kCount,  // COUNT(*) / COUNT(<ref>) — rows (non-null refs) per group
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* ToString(AggFn fn);

// A property reference inside a query predicate: <var>.<key>, where var
// names a query vertex or query edge, or the pseudo-property .ID.
struct QueryPropRef {
  int var = -1;
  bool is_edge = false;
  prop_key_t key = kInvalidPropKey;
  bool is_id = false;

  bool operator==(const QueryPropRef& o) const {
    return var == o.var && is_edge == o.is_edge && key == o.key && is_id == o.is_id;
  }
};

// One conjunct of a query's WHERE clause, e.g. a2.city = a4.city,
// a3.ID < 10000, or the money-flow predicate e1.amt < e2.amt + alpha.
struct QueryComparison {
  QueryPropRef lhs;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_const = true;
  Value rhs_const;
  QueryPropRef rhs_ref;
  int64_t rhs_addend = 0;
  // >= 0 when the right-hand constant is a prepared-query parameter
  // ($name): rhs_const stays null at plan time (the optimizer treats the
  // conjunct as an opaque residual) and is patched in the physical plan
  // at bind time through Operator::CollectParamSlots.
  int rhs_param = -1;
};

struct QueryVertex {
  std::string name;
  label_t label = kInvalidLabel;       // optional label filter
  vertex_id_t bound = kInvalidVertex;  // optional literal binding (e.g. a1.ID = v1)
  // >= 0 when the binding comes from a `<var>.ID = $param` pin: `bound`
  // holds a placeholder at prepare time and is patched at bind time.
  int bound_param = -1;
};

struct QueryEdge {
  std::string name;
  int from = -1;  // query-vertex index; the edge is directed from -> to
  int to = -1;
  label_t label = kInvalidLabel;  // optional label filter
};

// The subgraph pattern component of a query (Section IV-A): query
// vertices, directed query edges, and a conjunctive predicate. Matching
// semantics are subgraph isomorphism (distinct query vertices bind
// distinct data vertices, hence also distinct edges), applied uniformly
// across the A+ engine and the baseline engines.
class QueryGraph {
 public:
  int AddVertex(const std::string& name, label_t label = kInvalidLabel,
                vertex_id_t bound = kInvalidVertex);
  int AddEdge(int from, int to, label_t label = kInvalidLabel, const std::string& name = "");
  void AddPredicate(QueryComparison cmp) { predicates_.push_back(std::move(cmp)); }

  int FindVertex(const std::string& name) const;
  int FindEdge(const std::string& name) const;

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const QueryVertex& vertex(int i) const { return vertices_[i]; }
  QueryVertex& mutable_vertex(int i) { return vertices_[i]; }
  const QueryEdge& edge(int i) const { return edges_[i]; }
  const std::vector<QueryComparison>& predicates() const { return predicates_; }

  // Query edges incident to vertex var `v`.
  std::vector<int> EdgesIncidentTo(int v) const;

 private:
  std::vector<QueryVertex> vertices_;
  std::vector<QueryEdge> edges_;
  std::vector<QueryComparison> predicates_;
};

// A partial match: per-variable bindings plus the output counter.
struct MatchState {
  std::vector<vertex_id_t> v;  // kInvalidVertex = unbound
  std::vector<edge_id_t> e;    // kInvalidEdge = unbound
  uint64_t count = 0;

  void Reset(int num_vertices, int num_edges) {
    v.assign(num_vertices, kInvalidVertex);
    e.assign(num_edges, kInvalidEdge);
    count = 0;
  }

  bool VertexAlreadyBound(vertex_id_t id) const {
    for (vertex_id_t b : v) {
      if (b == id) return true;
    }
    return false;
  }
  bool EdgeAlreadyBound(edge_id_t id) const {
    for (edge_id_t b : e) {
      if (b == id) return true;
    }
    return false;
  }
};

// Reads the value a QueryPropRef points at under `state`; the referenced
// variable must be bound.
Value ReadQueryPropRef(const Graph& graph, const QueryPropRef& ref, const MatchState& state);

// Evaluates one query conjunct; null property values compare false.
bool EvalQueryComparison(const Graph& graph, const QueryComparison& cmp, const MatchState& state);

// True when every variable the comparison references is bound in `state`.
bool ComparisonIsBound(const QueryComparison& cmp, const MatchState& state);

}  // namespace aplus

#endif  // APLUS_QUERY_QUERY_GRAPH_H_
