#ifndef APLUS_QUERY_MORSEL_H_
#define APLUS_QUERY_MORSEL_H_

#include <atomic>
#include <cstdint>

namespace aplus {

// Carves a scan domain [begin, end) into morsels handed to parallel
// workers through one atomic cursor (morsel-driven scheduling). Morsel
// sizes shrink as the domain drains: each grab takes
// remaining / (kShrinkDivisor * num_workers), clamped to
// [kMinMorsel, kMaxMorsel] — large morsels early keep cursor contention
// negligible, small morsels at the tail keep stragglers short.
//
// Reset() is called by the coordinating thread before workers start;
// Next() is safe to call concurrently from any number of workers.
class MorselCursor {
 public:
  static constexpr uint64_t kMinMorsel = 64;
  static constexpr uint64_t kMaxMorsel = 8192;
  static constexpr uint64_t kShrinkDivisor = 4;

  void Reset(uint64_t begin, uint64_t end, int num_workers) {
    end_ = end;
    divisor_ = kShrinkDivisor * static_cast<uint64_t>(num_workers < 1 ? 1 : num_workers);
    next_.store(begin, std::memory_order_relaxed);
  }

  // Claims the next morsel; false once the domain is drained.
  bool Next(uint64_t* morsel_begin, uint64_t* morsel_end) {
    uint64_t cur = next_.load(std::memory_order_relaxed);
    while (cur < end_) {
      uint64_t remaining = end_ - cur;
      uint64_t grab = remaining / divisor_;
      if (grab < kMinMorsel) grab = kMinMorsel;
      if (grab > kMaxMorsel) grab = kMaxMorsel;
      if (grab > remaining) grab = remaining;
      if (next_.compare_exchange_weak(cur, cur + grab, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        *morsel_begin = cur;
        *morsel_end = cur + grab;
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<uint64_t> next_{0};
  uint64_t end_ = 0;
  uint64_t divisor_ = kShrinkDivisor;
};

// Work partitioner one pipeline stage below the scan, used when the
// leading scan's domain is too small to split (e.g. a $src-pinned scan
// of one vertex). Every worker replica then runs the full scan and
// enumerates the first EXTEND's entries in the same order, numbering
// them with a private sequence counter; ownership of entry ordinals is
// claimed in fixed blocks from this shared cursor. Blocks are globally
// disjoint and exhaustive, and each replica's local ordinal sequence is
// identical (same scan order, same adjacency snapshot under the pinned
// epoch), so every entry is processed by exactly one worker.
//
// The block size trades scheduling granularity against contention: one
// fetch_add per kBlock entries, and at most kBlock - 1 entries of
// imbalance per worker at the tail.
class EntryCursor {
 public:
  static constexpr uint64_t kBlock = 8;

  void Reset() { next_.store(0, std::memory_order_relaxed); }

  // Claims the next block; returns its first ordinal (owns kBlock from
  // there). Monotone: a claim never returns less than any prior claim.
  uint64_t ClaimBlock() { return next_.fetch_add(kBlock, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> next_{0};
};

}  // namespace aplus

#endif  // APLUS_QUERY_MORSEL_H_
