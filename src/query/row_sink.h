#ifndef APLUS_QUERY_ROW_SINK_H_
#define APLUS_QUERY_ROW_SINK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/operators.h"
#include "storage/graph.h"
#include "util/deadline.h"
#include "util/memory_tracker.h"

namespace aplus {

// One projected output column, resolved against the catalog at prepare
// time: a vertex/edge id (`ref.is_id`) or a property read. `type` is the
// column's output type; ids surface as kInt64.
struct ProjectColumn {
  std::string name;  // display name, e.g. "a2" or "r1.amount"
  QueryPropRef ref;
  ValueType type = ValueType::kInt64;
};

// A columnar batch of projected rows, owned by a ProjectSinkOp or a
// SinkStage and reused across executions (plan-lifetime buffers: after
// the first fill reaches the high-water mark, appending and clearing
// never allocate). Cells are typed: int64/bool/category payloads land in
// `ints`, doubles in `doubles`, strings as pointers into the property
// store's dictionary (valid while the graph outlives the batch and is
// not mutated).
class RowBatch {
 public:
  struct Column {
    std::string name;
    ValueType type = ValueType::kInt64;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<const std::string*> strings;
    std::vector<uint8_t> nulls;  // 1 = null cell
  };

  void Init(const std::vector<ProjectColumn>& cols, uint32_t capacity);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t capacity() const { return capacity_; }
  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  bool full() const { return num_rows_ >= capacity_; }
  bool empty() const { return num_rows_ == 0; }

  // Drops the rows, keeping the buffers' capacity.
  void Clear();

  // Appends one typed cell to column `col` (callers advance num_rows
  // once per row via AdvanceRow). Null cells push a type-matching zero
  // payload so the columns stay aligned.
  void AppendInt(size_t col, int64_t v) {
    cols_[col].ints.push_back(v);
    cols_[col].nulls.push_back(0);
  }
  void AppendDouble(size_t col, double v) {
    cols_[col].doubles.push_back(v);
    cols_[col].nulls.push_back(0);
  }
  void AppendString(size_t col, const std::string* v) {
    cols_[col].strings.push_back(v);
    cols_[col].nulls.push_back(0);
  }
  void AppendNull(size_t col);
  void AdvanceRow() { num_rows_++; }

  // Convenience accessor for tests/examples (materializes a Value; the
  // string case copies — hot consumers should read the typed columns).
  Value Cell(size_t col, uint32_t row) const;

 private:
  friend class ProjectSinkOp;
  std::vector<Column> cols_;
  uint32_t num_rows_ = 0;
  uint32_t capacity_ = 0;
};

// Receives full (and, at the end of an execution, partial) row batches.
// Implemented by the serving caller; a plain virtual interface instead
// of std::function so installing a consumer per execution never
// allocates. Under Execute(num_threads > 1) every worker streams its own
// batches concurrently — OnBatch must be thread-safe in that mode (the
// final partial flush always happens on the calling thread). Queries
// with sink stages (aggregation / ORDER BY) only deliver from the
// coordinating thread, after the workers' partial states merged.
class RowConsumer {
 public:
  virtual ~RowConsumer() = default;
  virtual void OnBatch(const RowBatch& batch) = 0;
};

// Execution-wide controls shared by every ProjectSinkOp replica (and
// every sink-stage chain) of one prepared query: the per-execution
// consumer, the LIMIT row budget of the stage-less fast path, the
// cooperative stop token (LIMIT / deadline / cancel / resource
// exhaustion) every operator polls, the per-query memory budget every
// transient arena charges, and the final output row counter. Owned by
// the PreparedQuery (stable address), reset before each execution.
struct ExecControls {
  RowConsumer* consumer = nullptr;
  bool limit_active = false;
  std::atomic<int64_t> rows_remaining{0};  // claimed via fetch_sub when limit_active
  // Unified stop token: LIMIT satisfaction, deadline expiry, Cancel(),
  // and budget exhaustion all land here; token.reason() disambiguates.
  ExecToken token;
  // Per-query governor for group/sort/project arenas and plan scratch.
  // A failed Charge() requests kResourceExhausted on the token.
  MemoryBudget budget;
  // Rows delivered to (or counted for) the final consumer by a stage
  // chain. Only written single-threaded, during the Finish cascade.
  uint64_t rows_emitted = 0;

  // Charges `bytes` to the budget; on failure requests a stop with
  // kResourceExhausted and returns false.
  bool ChargeOrStop(uint64_t bytes) {
    if (budget.Charge(bytes)) return true;
    token.RequestStop(StopReason::kResourceExhausted);
    return false;
  }
};

// A typed columnar plan-lifetime buffer shared by the sink stages
// (group-key arenas, sort buffers); the member layout mirrors
// RowBatch::Column so generic cell helpers serve both.
struct ColumnArena {
  ValueType type = ValueType::kInt64;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<const std::string*> strings;
  std::vector<uint8_t> nulls;
};

// One post-projection stage of the composable sink pipeline
//   Project -> [GroupedAggregate] -> [Sort] -> [Limit] -> RowConsumer.
//
// During execution every worker pipeline owns a private clone of the
// chain: its ProjectSinkOp streams input batches into the chain head,
// and accumulating stages (aggregate, sort) buffer worker-local partial
// state without synchronization. After the workers join, the
// coordinating thread folds every worker chain into pipeline 0's chain
// stage-by-stage (Merge) and runs the Finish cascade on pipeline 0 only:
// each stage emits its result downstream, the terminal stage delivers to
// ExecControls::consumer. All buffers are plan-lifetime (zero
// steady-state allocation once warm, like the operators).
class SinkStage : public RowConsumer {
 public:
  explicit SinkStage(ExecControls* controls) : controls_(controls) {}

  void set_next(SinkStage* next) { next_ = next; }

  // Fresh clone with empty accumulated state for a worker pipeline
  // replica. The clone's next_ is unset; the caller rewires the chain.
  virtual std::unique_ptr<SinkStage> Clone() const = 0;
  // Drops accumulated state ahead of an execution (buffers keep their
  // capacity).
  virtual void Reset() = 0;
  // Folds a worker replica's partial state (the same position of its
  // chain) into this stage. Coordinating thread only.
  virtual void Merge(SinkStage& worker) = 0;
  // Folds every worker replica's partial state at once. The default is
  // the serial Merge fold; stages with an order-free merge (grouped
  // aggregation) override it to partition the work across `num_threads`
  // pool workers. Coordinating thread only; returns with the fold
  // complete.
  virtual void MergeAll(SinkStage* const* workers, int num_workers, int num_threads);
  // Emits this stage's result downstream (OnBatch on next_, or the final
  // consumer at the chain tail). Coordinating thread only; upstream
  // stages finish first.
  virtual void Finish() = 0;
  // True once the stage will discard any further input (a drained
  // LIMIT). Upstream Finish loops poll it to stop materializing output
  // nobody consumes.
  virtual bool Done() const { return false; }
  virtual std::string Describe() const = 0;
  // Re-points the stage at another prepared query's controls. Used when a
  // cloned sink-stage chain moves to a fresh PreparedQuery (the shared
  // plan cache clones plans across connections); never called while an
  // execution is in flight.
  virtual void RebindControls(ExecControls* controls) { controls_ = controls; }

 protected:
  // Emits `batch` downstream and clears it. The chain tail counts the
  // rows and hands them to the per-execution consumer (which may be
  // null: rows are counted, then dropped).
  void Deliver(RowBatch* batch);

  ExecControls* controls_;
  SinkStage* next_ = nullptr;
};

// One output item of a GroupedAggregateStage, in RETURN order.
struct AggSpec {
  AggFn fn = AggFn::kNone;  // kNone = group-key passthrough
  int input = -1;           // input-column index in the projected batch; -1 for COUNT(*)
  ValueType out_type = ValueType::kInt64;
  std::string name;
};

// Grouped aggregation over the projected input stream: group keys are
// the kNone specs, every other spec folds its input column with the
// aggregate function (nulls skipped; COUNT(*) counts rows). Groups live
// in columnar plan-lifetime arenas addressed through an open-addressing
// hash index; worker partials merge exactly (MIN/MAX/COUNT/SUM are
// order-free, AVG merges sum+count). With no group keys the stage is a
// global aggregate and always emits exactly one row (COUNT = 0 and null
// SUM/MIN/MAX/AVG on empty input).
class GroupedAggregateStage : public SinkStage {
 public:
  GroupedAggregateStage(std::vector<AggSpec> specs, std::vector<ValueType> input_types,
                        uint32_t batch_capacity, ExecControls* controls);

  void OnBatch(const RowBatch& batch) override;
  std::unique_ptr<SinkStage> Clone() const override;
  void Reset() override;
  void Merge(SinkStage& worker) override;
  // Hash-partitioned parallel merge: when the fold is large enough,
  // group ordinal ownership is split by HashGroup(g) % P across P
  // plan-lifetime partition stages, each merging its share of every
  // source table (this stage + all workers) on a pool worker. Group
  // hashes are deterministic across replicas (key cells hash by payload
  // bits / shared dictionary pointers), so partitions are disjoint and
  // exhaustive. Finish then emits partition by partition.
  void MergeAll(SinkStage* const* workers, int num_workers, int num_threads) override;
  void Finish() override;
  std::string Describe() const override;
  void RebindControls(ExecControls* controls) override;

  size_t num_groups() const { return num_groups_; }

 private:
  // Accumulator arena of one aggregate spec: `counts` is the non-null
  // input count (COUNT result, AVG divisor, empty-group detector),
  // `ints`/`doubles` the running SUM/MIN/MAX payload.
  struct AccArena {
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<int64_t> counts;
  };

  static constexpr uint32_t kEmptySlot = ~0u;

  // The key-cell helpers template over a column accessor `col_of(k)`
  // yielding the k-th key column of the probe side — a RowBatch::Column
  // for input rows, a ColumnArena for another stage's stored groups
  // (identical member layout) — so the input and merge paths share one
  // hash/equality/append implementation.
  template <typename ColFn>
  uint64_t HashKeys(ColFn&& col_of, uint32_t row) const;
  uint64_t HashGroup(uint32_t group) const;
  template <typename ColFn>
  bool GroupEquals(uint32_t group, ColFn&& col_of, uint32_t row) const;
  // Probes (inserting if absent) the group keyed by `col_of` cells at
  // `row`; returns the group ordinal.
  template <typename ColFn>
  uint32_t FindOrAddGroup(ColFn&& col_of, uint32_t row, uint64_t hash);
  template <typename ColFn>
  void AppendKey(ColFn&& col_of, uint32_t row);
  void GrowSlots();
  void AccumulateRow(uint32_t group, const RowBatch& batch, uint32_t row);
  void EnsureGlobalGroup();
  // Folds source group `og` of `src` into local group `g` (the per-spec
  // accumulator combine shared by Merge and MergePartitionFrom).
  void FoldGroupFrom(uint32_t g, const GroupedAggregateStage& src, uint32_t og);
  // Merges the groups of `src` whose hash lands in partition `part` of
  // `num_parts` (the parallel MergeAll worker body).
  void MergePartitionFrom(const GroupedAggregateStage& src, uint32_t num_parts, uint32_t part);
  // Emits `src`'s groups through this stage's output batch.
  void EmitGroupsFrom(const GroupedAggregateStage& src);

  // Below this many total groups the partitioned merge's fan-out costs
  // more than the serial fold it replaces.
  static constexpr size_t kParallelMergeMinGroups = 1024;

  std::vector<AggSpec> specs_;
  std::vector<ValueType> input_types_;
  std::vector<int> key_inputs_;     // input columns of the kNone specs, in spec order
  std::vector<ColumnArena> keys_;   // one per key_inputs_ entry
  std::vector<AccArena> accs_;      // one per aggregate spec, in spec order
  // True when some aggregate reads an input column (needs the per-row
  // null scan); a pure COUNT(*) global aggregate instead adds
  // batch.num_rows() per delivery, keeping `RETURN COUNT(*)` O(1) per
  // batch on top of the counting scan.
  bool needs_row_scan_ = false;
  std::vector<uint32_t> agg_specs_;  // spec indices with fn != kNone
  std::vector<uint32_t> slots_;      // open-addressing index: group ordinal or kEmptySlot
  size_t num_groups_ = 0;
  uint32_t batch_capacity_;
  RowBatch out_;
  // Estimated bytes one group adds across keys_/accs_/slots_, charged
  // against ExecControls::budget when track_mem_ (partition stages
  // re-materialize already-charged groups and do not track).
  uint64_t bytes_per_group_ = 0;
  bool track_mem_ = true;
  // Plan-lifetime partition stages of the parallel MergeAll; > 0 in
  // merged_parts_ means the last merge was partitioned and Finish reads
  // the partitions instead of this stage's own table.
  std::vector<std::unique_ptr<GroupedAggregateStage>> parts_;
  int merged_parts_ = 0;
};

// RETURN DISTINCT over a plain projection: the degenerate grouped
// aggregation — every output column is a group key and there are zero
// aggregates — so deduplication inherits the open-addressing group
// table, the memory-budget charging, and the exact hash-partitioned
// parallel merge for free. Output order is the group-discovery order of
// the merged table (deterministic serially; follow with ORDER BY for a
// stable parallel order, as with any aggregation).
class DistinctStage : public GroupedAggregateStage {
 public:
  DistinctStage(const std::vector<ProjectColumn>& schema, uint32_t batch_capacity,
                ExecControls* controls);

  std::unique_ptr<SinkStage> Clone() const override;
  std::string Describe() const override;

 private:
  std::vector<ProjectColumn> schema_;  // kept for Clone
  uint32_t capacity_;
};

// One ORDER BY key over the stage's input schema.
struct SortKeySpec {
  int col = -1;  // input-column index
  bool desc = false;
};

// Buffers the full input stream in columnar plan-lifetime arenas and
// emits it in key order at Finish. Nulls order last under ASC (first
// under DESC); ties on the configured keys break by the remaining
// columns ascending, so output order is deterministic up to fully
// identical rows. Worker partials concatenate at Merge — the sort itself
// runs once, on the merged buffer (std::sort / std::partial_sort over an
// index permutation: in-place, allocation-free). A `limit` below
// kNoLimit caps the emission (the query's `ORDER BY ... LIMIT n`): the
// stage partial_sorts and emits only the top n rows itself, so no
// trailing LimitStage is needed.
class SortStage : public SinkStage {
 public:
  static constexpr uint64_t kNoLimit = ~0ull;

  SortStage(std::vector<ProjectColumn> schema, std::vector<SortKeySpec> keys, uint64_t limit,
            uint32_t batch_capacity, ExecControls* controls);

  void OnBatch(const RowBatch& batch) override;
  std::unique_ptr<SinkStage> Clone() const override;
  void Reset() override;
  void Merge(SinkStage& worker) override;
  void Finish() override;
  std::string Describe() const override;

 private:
  // Three-way compare of buffered rows a, b under column `col` (null =
  // +infinity; NaN orders between the numbers and null so the
  // comparator stays a strict weak ordering on arbitrary doubles).
  int CompareCell(int col, uint32_t a, uint32_t b) const;
  bool RowLess(uint32_t a, uint32_t b) const;

  std::vector<ProjectColumn> schema_;
  std::vector<SortKeySpec> keys_;
  std::vector<int> tiebreak_cols_;  // non-key columns, fixed at construction
  uint64_t limit_;                  // kNoLimit = emit everything
  std::vector<ColumnArena> cols_;
  size_t num_buffered_ = 0;
  std::vector<uint32_t> order_;  // sort permutation scratch
  RowBatch out_;
  // Estimated bytes one buffered row adds across cols_ + order_, charged
  // against ExecControls::budget as the buffer grows.
  uint64_t bytes_per_row_ = 0;
};

// Caps the output at `limit` rows. Stage form of LIMIT, used whenever
// aggregation or ordering precedes it (the stage-less fast path claims
// rows from ExecControls::rows_remaining instead and stops the scans
// early). Pass-through during Finish only: upstream stages never emit
// mid-execution.
class LimitStage : public SinkStage {
 public:
  LimitStage(std::vector<ProjectColumn> schema, uint64_t limit, uint32_t batch_capacity,
             ExecControls* controls);

  void OnBatch(const RowBatch& batch) override;
  std::unique_ptr<SinkStage> Clone() const override;
  void Reset() override;
  void Merge(SinkStage& worker) override { (void)worker; }
  void Finish() override;
  bool Done() const override { return remaining_ == 0; }
  std::string Describe() const override;

 private:
  std::vector<ProjectColumn> schema_;
  uint64_t limit_;
  uint64_t remaining_;
  RowBatch out_;
};

// Terminal operator of the serving path: materializes the projection of
// every complete match into its columnar RowBatch and hands full batches
// to the head of its sink-stage chain (or straight to the consumer when
// the chain is empty). Counting is the degenerate projection (no
// columns, no stages — only MatchState::count advances). With a
// stage-less LIMIT, rows are claimed from the shared atomic budget so
// the total emitted across all workers is exactly min(limit, matches),
// and the stop flag cuts the scans short.
class ProjectSinkOp : public Operator {
 public:
  ProjectSinkOp(const Graph* graph, std::vector<ProjectColumn> cols, uint32_t batch_capacity,
                ExecControls* controls,
                std::vector<std::unique_ptr<SinkStage>> stages = {});

  void Run(MatchState* state) override;
  std::unique_ptr<Operator> Clone() const override;
  std::string Describe() const override;

  // Delivers the pending partial batch (if any) into this pipeline's
  // stage chain / consumer and clears it. Called on the coordinating
  // thread after the plan finishes; worker replicas flush their own full
  // batches inline.
  void Flush();
  // Drops any pending rows and accumulated stage state (pre-execution
  // reset; buffers keep their capacity).
  void ResetBatch();
  // Folds `worker`'s stage chain into this pipeline's chain,
  // stage-by-stage. Both chains must come from clones of one sink.
  void MergeStagesFrom(ProjectSinkOp* worker);
  // Folds every worker chain at once, letting each stage parallelize its
  // own fold across `num_threads` pool workers (SinkStage::MergeAll).
  void MergeAllStages(ProjectSinkOp* const* workers, int num_workers, int num_threads);
  // Runs the Finish cascade: every stage emits downstream, the tail
  // delivers to ExecControls::consumer and counts rows_emitted.
  void FinishStages();

  // Re-points this sink and its whole stage chain at `controls` (plan
  // cloning across PreparedQuery instances; see SinkStage).
  void RebindControls(ExecControls* controls);

  bool counting_only() const { return cols_.empty() && stages_.empty(); }
  int num_stages() const { return static_cast<int>(stages_.size()); }
  const SinkStage* stage(int i) const { return stages_[i].get(); }
  // Describe() of the projection plus every stage, most-downstream last
  // (used by the plan printer to render the sink chain).
  std::vector<std::string> ChainLines() const;

 private:
  void AppendRow(const MatchState& state);
  void WireStages();

  const Graph* graph_;
  std::vector<ProjectColumn> cols_;
  uint32_t batch_capacity_;
  ExecControls* controls_;
  std::vector<std::unique_ptr<SinkStage>> stages_;
  RowBatch batch_;
  std::vector<SinkStage*> stage_scratch_;  // MergeAllStages worker list, reused
};

}  // namespace aplus

#endif  // APLUS_QUERY_ROW_SINK_H_
