#ifndef APLUS_QUERY_ROW_SINK_H_
#define APLUS_QUERY_ROW_SINK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/operators.h"
#include "storage/graph.h"

namespace aplus {

// One projected output column, resolved against the catalog at prepare
// time: a vertex/edge id (`ref.is_id`) or a property read. `type` is the
// column's output type; ids surface as kInt64.
struct ProjectColumn {
  std::string name;  // display name, e.g. "a2" or "r1.amount"
  QueryPropRef ref;
  ValueType type = ValueType::kInt64;
};

// A columnar batch of projected rows, owned by a ProjectSinkOp and
// reused across executions (plan-lifetime buffers: after the first fill
// reaches the high-water mark, appending and clearing never allocate).
// Cells are typed: int64/bool/category payloads land in `ints`, doubles
// in `doubles`, strings as pointers into the property store's dictionary
// (valid while the graph outlives the batch and is not mutated).
class RowBatch {
 public:
  struct Column {
    std::string name;
    ValueType type = ValueType::kInt64;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<const std::string*> strings;
    std::vector<uint8_t> nulls;  // 1 = null cell
  };

  void Init(const std::vector<ProjectColumn>& cols, uint32_t capacity);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t capacity() const { return capacity_; }
  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  bool full() const { return num_rows_ >= capacity_; }
  bool empty() const { return num_rows_ == 0; }

  // Drops the rows, keeping the buffers' capacity.
  void Clear();

  // Convenience accessor for tests/examples (materializes a Value; the
  // string case copies — hot consumers should read the typed columns).
  Value Cell(size_t col, uint32_t row) const;

 private:
  friend class ProjectSinkOp;
  std::vector<Column> cols_;
  uint32_t num_rows_ = 0;
  uint32_t capacity_ = 0;
};

// Receives full (and, at the end of an execution, partial) row batches.
// Implemented by the serving caller; a plain virtual interface instead
// of std::function so installing a consumer per execution never
// allocates. Under Execute(num_threads > 1) every worker streams its own
// batches concurrently — OnBatch must be thread-safe in that mode (the
// final partial flush always happens on the calling thread).
class RowConsumer {
 public:
  virtual ~RowConsumer() = default;
  virtual void OnBatch(const RowBatch& batch) = 0;
};

// Execution-wide controls shared by every ProjectSinkOp replica of one
// prepared query: the per-execution consumer, the LIMIT row budget, and
// the cooperative stop flag the leading scans poll. Owned by the
// PreparedQuery (stable address), reset before each execution.
struct ExecControls {
  RowConsumer* consumer = nullptr;
  bool limit_active = false;
  std::atomic<int64_t> rows_remaining{0};  // claimed via fetch_sub when limit_active
  std::atomic<bool> stop{false};
};

// Terminal operator of the serving path: materializes the projection of
// every complete match into its columnar RowBatch and hands full batches
// to the consumer. Counting is the degenerate projection (no columns —
// only MatchState::count advances). With a LIMIT, rows are claimed from
// the shared atomic budget so the total emitted across all workers is
// exactly min(limit, matches), and the stop flag cuts the scans short.
class ProjectSinkOp : public Operator {
 public:
  ProjectSinkOp(const Graph* graph, std::vector<ProjectColumn> cols, uint32_t batch_capacity,
                ExecControls* controls);

  void Run(MatchState* state) override;
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<ProjectSinkOp>(graph_, cols_, batch_capacity_, controls_);
  }
  std::string Describe() const override;

  // Delivers the pending partial batch (if any) to the current consumer
  // and clears it. Called on the coordinating thread after the plan
  // finishes; worker replicas flush their own full batches inline.
  void Flush();
  // Drops any pending rows without delivering them (pre-execution reset).
  void ResetBatch() { batch_.Clear(); }

  bool counting_only() const { return cols_.empty(); }

 private:
  void AppendRow(const MatchState& state);

  const Graph* graph_;
  std::vector<ProjectColumn> cols_;
  uint32_t batch_capacity_;
  ExecControls* controls_;
  RowBatch batch_;
};

}  // namespace aplus

#endif  // APLUS_QUERY_ROW_SINK_H_
