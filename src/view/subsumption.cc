#include "view/subsumption.h"

#include "util/logging.h"

namespace aplus {

namespace {

// Canonical form for range analysis: ref op const.
struct RangeForm {
  PropRef ref;
  CmpOp op;
  Value constant;
};

// Extracts `ref op const` from a comparison, flipping `const op ref`
// spellings. Returns false for ref-vs-ref comparisons.
bool ToRangeForm(const Comparison& cmp, RangeForm* out) {
  if (!cmp.rhs_is_const) return false;
  out->ref = cmp.lhs;
  out->op = cmp.op;
  out->constant = cmp.rhs_const;
  return true;
}

// True if "x qop qc" implies "x iop ic" for all x.
bool RangeImplies(CmpOp qop, const Value& qc, CmpOp iop, const Value& ic) {
  int c = Value::Compare(qc, ic);  // qc vs ic
  switch (iop) {
    case CmpOp::kLt:
      // need: x < ic
      if (qop == CmpOp::kLt) return c <= 0;                   // x < qc <= ic
      if (qop == CmpOp::kLe) return c < 0;                    // x <= qc < ic
      if (qop == CmpOp::kEq) return c < 0;                    // x = qc < ic
      return false;
    case CmpOp::kLe:
      if (qop == CmpOp::kLt) return c <= 0;
      if (qop == CmpOp::kLe) return c <= 0;
      if (qop == CmpOp::kEq) return c <= 0;
      return false;
    case CmpOp::kGt:
      if (qop == CmpOp::kGt) return c >= 0;
      if (qop == CmpOp::kGe) return c > 0;
      if (qop == CmpOp::kEq) return c > 0;
      return false;
    case CmpOp::kGe:
      if (qop == CmpOp::kGt) return c >= 0;
      if (qop == CmpOp::kGe) return c >= 0;
      if (qop == CmpOp::kEq) return c >= 0;
      return false;
    case CmpOp::kEq:
      return qop == CmpOp::kEq && c == 0;
    case CmpOp::kNe:
      if (qop == CmpOp::kNe) return c == 0;
      if (qop == CmpOp::kEq) return c != 0;
      if (qop == CmpOp::kLt) return c <= 0;  // x < qc <= ic => x != ic
      if (qop == CmpOp::kGt) return c >= 0;
      return false;
  }
  return false;
}

bool RefEqual(const PropRef& a, const PropRef& b) { return a == b; }

}  // namespace

bool ConjunctImplies(const Comparison& qc, const Comparison& ic) {
  // Exact (syntactic) match of ref-vs-ref comparisons, including addend.
  if (!qc.rhs_is_const && !ic.rhs_is_const) {
    bool direct = RefEqual(qc.lhs, ic.lhs) && RefEqual(qc.rhs_ref, ic.rhs_ref) &&
                  qc.op == ic.op && qc.rhs_addend == ic.rhs_addend;
    // Also accept the flipped spelling when there is no addend, e.g.
    // query a < b matches index b > a.
    bool flipped = qc.rhs_addend == 0 && ic.rhs_addend == 0 && RefEqual(qc.lhs, ic.rhs_ref) &&
                   RefEqual(qc.rhs_ref, ic.lhs) && Flip(qc.op) == ic.op;
    if (direct || flipped) return true;
    // Range-style implication on the addend of otherwise identical
    // comparisons: x < y + a implies x < y + b when a <= b.
    if (RefEqual(qc.lhs, ic.lhs) && RefEqual(qc.rhs_ref, ic.rhs_ref) && qc.op == ic.op) {
      if ((qc.op == CmpOp::kLt || qc.op == CmpOp::kLe) && qc.rhs_addend <= ic.rhs_addend) {
        return true;
      }
      if ((qc.op == CmpOp::kGt || qc.op == CmpOp::kGe) && qc.rhs_addend >= ic.rhs_addend) {
        return true;
      }
    }
    return false;
  }
  // Range subsumption: both must be ref-vs-const on the same ref.
  RangeForm q;
  RangeForm i;
  if (!ToRangeForm(qc, &q) || !ToRangeForm(ic, &i)) return false;
  if (!RefEqual(q.ref, i.ref)) return false;
  return RangeImplies(q.op, q.constant, i.op, i.constant);
}

bool PredicateSubsumes(const Predicate& index_pred, const Predicate& query_pred,
                       Predicate* residual) {
  for (const Comparison& ic : index_pred.conjuncts()) {
    bool implied = false;
    for (const Comparison& qc : query_pred.conjuncts()) {
      if (ConjunctImplies(qc, ic)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  if (residual != nullptr) {
    *residual = Predicate();
    for (const Comparison& qc : query_pred.conjuncts()) {
      // qc can be dropped only when some index conjunct implies it back,
      // i.e. the index guarantees it exactly.
      bool guaranteed = false;
      for (const Comparison& ic : index_pred.conjuncts()) {
        if (ConjunctImplies(ic, qc)) {
          guaranteed = true;
          break;
        }
      }
      if (!guaranteed) residual->Add(qc);
    }
  }
  return true;
}

}  // namespace aplus
