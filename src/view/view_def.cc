#include "view/view_def.h"

namespace aplus {

const char* ToString(EpKind kind) {
  switch (kind) {
    case EpKind::kDstFwd:
      return "Destination-FW";
    case EpKind::kDstBwd:
      return "Destination-BW";
    case EpKind::kSrcFwd:
      return "Source-FW";
    case EpKind::kSrcBwd:
      return "Source-BW";
  }
  return "?";
}

}  // namespace aplus
