#ifndef APLUS_VIEW_VIEW_DEF_H_
#define APLUS_VIEW_VIEW_DEF_H_

#include <string>

#include "storage/types.h"
#include "view/predicate.h"

namespace aplus {

// The four ways a 2-hop view can be partitioned by one of its edges
// (Section III-B2). eb is the bound (partitioning) edge with endpoints
// vs -> vd; eadj is the adjacent edge; vnbr is eadj's far endpoint.
enum class EpKind : uint8_t {
  kDstFwd = 0,  // vs -[eb]-> vd -[eadj]-> vnbr
  kDstBwd = 1,  // vs -[eb]-> vd <-[eadj]- vnbr
  kSrcFwd = 2,  // vnbr -[eadj]-> vs -[eb]-> vd
  kSrcBwd = 3,  // vnbr <-[eadj]- vs -[eb]-> vd
};

const char* ToString(EpKind kind);

// The vertex shared between eb and eadj: vd for Destination-*, vs for
// Source-*.
inline bool AnchorIsDst(EpKind kind) { return kind == EpKind::kDstFwd || kind == EpKind::kDstBwd; }

// The primary-index direction whose lists contain eadj at the anchor:
// FW when eadj leaves the anchor, BW when it enters it.
inline Direction AdjDirection(EpKind kind) {
  switch (kind) {
    case EpKind::kDstFwd:
      return Direction::kFwd;
    case EpKind::kDstBwd:
      return Direction::kBwd;
    case EpKind::kSrcFwd:
      return Direction::kBwd;  // eadj points into vs
    case EpKind::kSrcBwd:
      return Direction::kFwd;  // eadj leaves vs
  }
  return Direction::kFwd;
}

// A 1-hop view (Section III-B1): arbitrary selection over single edges.
// Sites allowed in the predicate: kAdjEdge, kSrcVertex, kDstVertex,
// kNbrVertex. Output is a subset of the edge set, which is what makes the
// offset-list storage possible.
struct OneHopViewDef {
  std::string name;
  Predicate pred;
};

// A 2-hop view (Section III-B2). The predicate must reference both edges
// of the 2-path (enforced at index creation), otherwise the index would
// materialize duplicated adjacency lists and a 1-hop view should be used
// instead.
struct TwoHopViewDef {
  std::string name;
  EpKind kind = EpKind::kDstFwd;
  Predicate pred;
};

}  // namespace aplus

#endif  // APLUS_VIEW_VIEW_DEF_H_
