#ifndef APLUS_VIEW_SUBSUMPTION_H_
#define APLUS_VIEW_SUBSUMPTION_H_

#include "view/predicate.h"

namespace aplus {

// Predicate subsumption checking per Section IV-A. The optimizer may use
// an index whose lists satisfy predicate `index_pred` for a query step
// that requires `query_pred` when every edge the query wants is present
// in the index lists, i.e. query_pred implies index_pred. Two forms are
// checked, exactly as the paper describes:
//   1. Conjunctive subsumption: each conjunct of index_pred matches a
//      conjunct of query_pred.
//   2. Range subsumption: a conjunct of index_pred comparing a property
//      against a constant is implied by a (possibly stricter) range or
//      equality conjunct of query_pred on the same property, e.g.
//      index eadj.amt > 10000 is implied by query eadj.amt > 15000.

// True if query conjunct `qc` implies index conjunct `ic`.
bool ConjunctImplies(const Comparison& qc, const Comparison& ic);

// True if `query_pred` implies `index_pred` conjunct-wise. When true and
// `residual` is non-null, `residual` receives the query conjuncts that are
// not exactly guaranteed by the index and must still be FILTERed at run
// time (a query conjunct is dropped only when an index conjunct implies
// it back, i.e. they are equivalent).
bool PredicateSubsumes(const Predicate& index_pred, const Predicate& query_pred,
                       Predicate* residual);

}  // namespace aplus

#endif  // APLUS_VIEW_SUBSUMPTION_H_
