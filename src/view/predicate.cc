#include "view/predicate.h"

#include "util/logging.h"

namespace aplus {

const char* ToString(PropSite site) {
  switch (site) {
    case PropSite::kAdjEdge:
      return "eadj";
    case PropSite::kNbrVertex:
      return "vnbr";
    case PropSite::kBoundEdge:
      return "eb";
    case PropSite::kSrcVertex:
      return "vs";
    case PropSite::kDstVertex:
      return "vd";
  }
  return "?";
}

const char* ToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp Flip(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

bool Comparison::IsCrossEdge() const {
  if (rhs_is_const) return false;
  bool lhs_bound = lhs.site == PropSite::kBoundEdge;
  bool rhs_bound = rhs_ref.site == PropSite::kBoundEdge;
  bool lhs_adj = lhs.site == PropSite::kAdjEdge || lhs.site == PropSite::kNbrVertex;
  bool rhs_adj = rhs_ref.site == PropSite::kAdjEdge || rhs_ref.site == PropSite::kNbrVertex;
  return (lhs_bound && rhs_adj) || (rhs_bound && lhs_adj);
}

std::string Comparison::ToString(const Catalog& catalog) const {
  auto ref_str = [&catalog](const PropRef& ref) -> std::string {
    std::string out = aplus::ToString(ref.site);
    out += ".";
    if (ref.is_label) {
      out += "label";
    } else if (ref.is_id) {
      out += "ID";
    } else {
      out += catalog.property(ref.key).name;
    }
    return out;
  };
  std::string out = ref_str(lhs);
  out += aplus::ToString(op);
  if (rhs_is_const) {
    out += rhs_const.ToString();
  } else {
    out += ref_str(rhs_ref);
    if (rhs_addend != 0) {
      out += "+";
      out += std::to_string(rhs_addend);
    }
  }
  return out;
}

Predicate& Predicate::AddConst(PropRef lhs, CmpOp op, Value constant) {
  Comparison cmp;
  cmp.lhs = lhs;
  cmp.op = op;
  cmp.rhs_is_const = true;
  cmp.rhs_const = std::move(constant);
  return Add(std::move(cmp));
}

Predicate& Predicate::AddRef(PropRef lhs, CmpOp op, PropRef rhs, int64_t addend) {
  Comparison cmp;
  cmp.lhs = lhs;
  cmp.op = op;
  cmp.rhs_is_const = false;
  cmp.rhs_ref = rhs;
  cmp.rhs_addend = addend;
  return Add(std::move(cmp));
}

bool Predicate::HasCrossEdgeConjunct() const {
  for (const Comparison& cmp : conjuncts_) {
    if (cmp.IsCrossEdge()) return true;
  }
  return false;
}

bool Predicate::Eval(const EvalContext& ctx) const {
  for (const Comparison& cmp : conjuncts_) {
    if (!EvalComparison(cmp, ctx)) return false;
  }
  return true;
}

std::string Predicate::ToString(const Catalog& catalog) const {
  if (conjuncts_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) out += " & ";
    out += conjuncts_[i].ToString(catalog);
  }
  return out;
}

Value ReadPropRef(const PropRef& ref, const EvalContext& ctx) {
  const Graph& g = *ctx.graph;
  if (ref.IsVertexSite()) {
    vertex_id_t v = kInvalidVertex;
    switch (ref.site) {
      case PropSite::kNbrVertex:
        v = ctx.nbr;
        break;
      case PropSite::kSrcVertex:
        v = ctx.src;
        break;
      case PropSite::kDstVertex:
        v = ctx.dst;
        break;
      default:
        break;
    }
    APLUS_DCHECK(v != kInvalidVertex) << "vertex site unbound: " << ToString(ref.site);
    if (ref.is_label) return Value::Int64(g.vertex_label(v));
    if (ref.is_id) return Value::Int64(v);
    return g.vertex_props().Get(ref.key, v);
  }
  edge_id_t e = ref.site == PropSite::kAdjEdge ? ctx.adj_edge : ctx.bound_edge;
  APLUS_DCHECK(e != kInvalidEdge) << "edge site unbound: " << ToString(ref.site);
  if (ref.is_label) return Value::Int64(g.edge_label(e));
  if (ref.is_id) return Value::Int64(static_cast<int64_t>(e));
  return g.edge_props().Get(ref.key, e);
}

bool ApplyCmp(CmpOp op, int three_way) {
  switch (op) {
    case CmpOp::kEq:
      return three_way == 0;
    case CmpOp::kNe:
      return three_way != 0;
    case CmpOp::kLt:
      return three_way < 0;
    case CmpOp::kLe:
      return three_way <= 0;
    case CmpOp::kGt:
      return three_way > 0;
    case CmpOp::kGe:
      return three_way >= 0;
  }
  return false;
}

bool EvalComparison(const Comparison& cmp, const EvalContext& ctx) {
  Value lhs = ReadPropRef(cmp.lhs, ctx);
  if (lhs.is_null()) return false;
  Value rhs = cmp.rhs_is_const ? cmp.rhs_const : ReadPropRef(cmp.rhs_ref, ctx);
  if (rhs.is_null()) return false;
  if (!cmp.rhs_is_const && cmp.rhs_addend != 0) {
    if (rhs.type() == ValueType::kDouble) {
      rhs = Value::Double(rhs.AsDouble() + static_cast<double>(cmp.rhs_addend));
    } else {
      rhs = Value::Int64(rhs.AsInt64() + cmp.rhs_addend);
    }
  }
  return ApplyCmp(cmp.op, Value::Compare(lhs, rhs));
}

}  // namespace aplus
