#include "view/ddl_parser.h"

#include <cctype>
#include <vector>

namespace aplus {

namespace {

// Simple whitespace/operator tokenizer. Produces upper-cased keyword
// candidates but preserves original spelling for identifiers.
struct Token {
  std::string text;
  bool is_op = false;
};

std::vector<Token> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push_op = [&tokens](std::string op) { tokens.push_back(Token{std::move(op), true}); };
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '<' || c == '>' || c == '=') {
      if (c == '<' && i + 1 < text.size() && text[i + 1] == '=') {
        push_op("<=");
        i += 2;
      } else if (c == '>' && i + 1 < text.size() && text[i + 1] == '=') {
        push_op(">=");
        i += 2;
      } else if (c == '<' && i + 1 < text.size() && text[i + 1] == '>') {
        push_op("<>");
        i += 2;
      } else {
        push_op(std::string(1, c));
        ++i;
      }
      continue;
    }
    if (c == ',' || c == '(' || c == ')' || c == '[' || c == ']' || c == '+' || c == '.') {
      push_op(std::string(1, c));
      ++i;
      continue;
    }
    if (c == '-') {
      push_op("-");
      ++i;
      continue;
    }
    size_t start = i;
    while (i < text.size() && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                               text[i] == '_' || text[i] == '.')) {
      ++i;
    }
    if (i == start) {  // unknown character; skip it
      ++i;
      continue;
    }
    tokens.push_back(Token{text.substr(start, i - start), false});
  }
  return tokens;
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

class Parser {
 public:
  Parser(const std::string& text, const Catalog& catalog)
      : tokens_(Tokenize(text)), catalog_(catalog) {}

  DdlCommand Parse() {
    DdlCommand cmd;
    if (AcceptKeyword("RECONFIGURE")) {
      cmd.kind = DdlCommand::Kind::kReconfigure;
      if (!ExpectKeyword("PRIMARY", &cmd) || !ExpectKeyword("INDEXES", &cmd)) return cmd;
      ParseIndexAsBody(&cmd);
      return cmd;
    }
    if (AcceptKeyword("CREATE")) {
      bool one_hop = false;
      if (AcceptKeyword("1-HOP") || (AcceptToken("1") && AcceptToken("-") &&
                                     AcceptKeyword("HOP"))) {
        one_hop = true;
      } else if (AcceptKeyword("2-HOP") ||
                 (AcceptToken("2") && AcceptToken("-") && AcceptKeyword("HOP"))) {
        one_hop = false;
      } else {
        cmd.error = "expected 1-HOP or 2-HOP after CREATE";
        return cmd;
      }
      cmd.kind = one_hop ? DdlCommand::Kind::kCreateVp : DdlCommand::Kind::kCreateEp;
      if (!ExpectKeyword("VIEW", &cmd)) return cmd;
      if (pos_ >= tokens_.size()) {
        cmd.error = "expected view name";
        return cmd;
      }
      cmd.view_name = tokens_[pos_++].text;
      if (!ExpectKeyword("MATCH", &cmd)) return cmd;
      if (one_hop) {
        if (!ParseOneHopPattern(&cmd)) return cmd;
      } else {
        if (!ParseTwoHopPattern(&cmd)) return cmd;
      }
      if (AcceptKeyword("WHERE")) {
        if (!ParseWhere(&cmd)) return cmd;
      } else if (!one_hop) {
        cmd.error = "2-HOP views require a WHERE clause referencing both edges";
        return cmd;
      }
      if (AcceptKeyword("INDEX")) {
        if (!ExpectKeyword("AS", &cmd)) return cmd;
        // Optional direction flags for 1-hop views.
        if (AcceptKeyword("FW-BW") || (PeekIs("FW") && PeekIs2("-"))) {
          if (tokens_[pos_].text == "FW") pos_ += 3;  // FW - BW as three tokens
          cmd.fwd = true;
          cmd.bwd = true;
        } else if (AcceptKeyword("FW")) {
          cmd.fwd = true;
          cmd.bwd = false;
        } else if (AcceptKeyword("BW")) {
          cmd.fwd = false;
          cmd.bwd = true;
        }
        ParseIndexAsBody(&cmd);
      }
      return cmd;
    }
    cmd.error = "expected RECONFIGURE or CREATE";
    return cmd;
  }

 private:
  bool PeekIs(const std::string& kw) const {
    return pos_ < tokens_.size() && Upper(tokens_[pos_].text) == kw;
  }
  bool PeekIs2(const std::string& kw) const {
    return pos_ + 1 < tokens_.size() && tokens_[pos_ + 1].text == kw;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (PeekIs(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptToken(const std::string& t) {
    if (pos_ < tokens_.size() && tokens_[pos_].text == t) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ExpectKeyword(const std::string& kw, DdlCommand* cmd) {
    if (AcceptKeyword(kw)) return true;
    cmd->error = "expected keyword " + kw;
    return false;
  }

  bool ExpectToken(const std::string& t, DdlCommand* cmd) {
    if (AcceptToken(t)) return true;
    cmd->error = "expected '" + t + "'";
    return false;
  }

  // vs-[eadj]->vd
  bool ParseOneHopPattern(DdlCommand* cmd) {
    if (!ExpectKeyword("VS", cmd) || !ExpectToken("-", cmd) || !ExpectToken("[", cmd) ||
        !ExpectKeyword("EADJ", cmd) || !ExpectToken("]", cmd) || !ExpectToken("-", cmd) ||
        !ExpectToken(">", cmd) || !ExpectKeyword("VD", cmd)) {
      return false;
    }
    return true;
  }

  // One of the four 2-hop shapes; sets cmd->ep_kind.
  bool ParseTwoHopPattern(DdlCommand* cmd) {
    // Shapes starting at vs: vs-[eb]->vd-[eadj]->vnbr | vs-[eb]->vd<-[eadj]-vnbr
    if (AcceptKeyword("VS")) {
      if (!ExpectToken("-", cmd) || !ExpectToken("[", cmd) || !ExpectKeyword("EB", cmd) ||
          !ExpectToken("]", cmd) || !ExpectToken("-", cmd) || !ExpectToken(">", cmd) ||
          !ExpectKeyword("VD", cmd)) {
        return false;
      }
      if (AcceptToken("-")) {
        if (!ExpectToken("[", cmd) || !ExpectKeyword("EADJ", cmd) || !ExpectToken("]", cmd) ||
            !ExpectToken("-", cmd) || !ExpectToken(">", cmd) || !ExpectKeyword("VNBR", cmd)) {
          return false;
        }
        cmd->ep_kind = EpKind::kDstFwd;
        return true;
      }
      if (AcceptToken("<")) {
        if (!ExpectToken("-", cmd) || !ExpectToken("[", cmd) || !ExpectKeyword("EADJ", cmd) ||
            !ExpectToken("]", cmd) || !ExpectToken("-", cmd) || !ExpectKeyword("VNBR", cmd)) {
          return false;
        }
        cmd->ep_kind = EpKind::kDstBwd;
        return true;
      }
      cmd->error = "expected -[eadj]-> or <-[eadj]- after vd";
      return false;
    }
    // Shapes starting at vnbr: vnbr-[eadj]->vs-[eb]->vd | vnbr<-[eadj]-vs-[eb]->vd
    if (AcceptKeyword("VNBR")) {
      bool fwd_into_vs;
      if (AcceptToken("-")) {
        if (!ExpectToken("[", cmd) || !ExpectKeyword("EADJ", cmd) || !ExpectToken("]", cmd) ||
            !ExpectToken("-", cmd) || !ExpectToken(">", cmd)) {
          return false;
        }
        fwd_into_vs = true;
      } else if (AcceptToken("<")) {
        if (!ExpectToken("-", cmd) || !ExpectToken("[", cmd) || !ExpectKeyword("EADJ", cmd) ||
            !ExpectToken("]", cmd) || !ExpectToken("-", cmd)) {
          return false;
        }
        fwd_into_vs = false;
      } else {
        cmd->error = "expected edge pattern after vnbr";
        return false;
      }
      if (!ExpectKeyword("VS", cmd) || !ExpectToken("-", cmd) || !ExpectToken("[", cmd) ||
          !ExpectKeyword("EB", cmd) || !ExpectToken("]", cmd) || !ExpectToken("-", cmd) ||
          !ExpectToken(">", cmd) || !ExpectKeyword("VD", cmd)) {
        return false;
      }
      cmd->ep_kind = fwd_into_vs ? EpKind::kSrcFwd : EpKind::kSrcBwd;
      return true;
    }
    cmd->error = "2-hop pattern must start with vs or vnbr";
    return false;
  }

  // site.prop | site.label | site.ID
  bool ParseRef(PropRef* ref, DdlCommand* cmd, bool edge_site_for_prop_lookup) {
    (void)edge_site_for_prop_lookup;
    if (pos_ >= tokens_.size()) {
      cmd->error = "expected property reference";
      return false;
    }
    std::string tok = tokens_[pos_].text;
    // Tokenizer keeps dots inside identifier tokens, so "eadj.amt" is one
    // token. Split at the first dot.
    size_t dot = tok.find('.');
    if (dot == std::string::npos) {
      cmd->error = "expected <site>.<property>, got " + tok;
      return false;
    }
    ++pos_;
    std::string site = Upper(tok.substr(0, dot));
    std::string prop = tok.substr(dot + 1);
    if (site == "EADJ") {
      ref->site = PropSite::kAdjEdge;
    } else if (site == "VNBR") {
      ref->site = PropSite::kNbrVertex;
    } else if (site == "EB") {
      ref->site = PropSite::kBoundEdge;
    } else if (site == "VS") {
      ref->site = PropSite::kSrcVertex;
    } else if (site == "VD") {
      ref->site = PropSite::kDstVertex;
    } else {
      cmd->error = "unknown site " + site;
      return false;
    }
    std::string prop_upper = Upper(prop);
    if (prop_upper == "LABEL") {
      ref->is_label = true;
      return true;
    }
    if (prop_upper == "ID") {
      ref->is_id = true;
      return true;
    }
    PropTargetKind target = ref->IsVertexSite() ? PropTargetKind::kVertex : PropTargetKind::kEdge;
    ref->key = catalog_.FindProperty(prop, target);
    if (ref->key == kInvalidPropKey) {
      cmd->error = "unknown property " + prop;
      return false;
    }
    return true;
  }

  bool ParseWhere(DdlCommand* cmd) {
    while (true) {
      Comparison cmp;
      if (!ParseRef(&cmp.lhs, cmd, true)) return false;
      if (pos_ >= tokens_.size() || !tokens_[pos_].is_op) {
        cmd->error = "expected comparison operator";
        return false;
      }
      std::string op = tokens_[pos_++].text;
      if (op == "=") {
        cmp.op = CmpOp::kEq;
      } else if (op == "<>") {
        cmp.op = CmpOp::kNe;
      } else if (op == "<") {
        cmp.op = CmpOp::kLt;
      } else if (op == "<=") {
        cmp.op = CmpOp::kLe;
      } else if (op == ">") {
        cmp.op = CmpOp::kGt;
      } else if (op == ">=") {
        cmp.op = CmpOp::kGe;
      } else {
        cmd->error = "unknown operator " + op;
        return false;
      }
      if (pos_ >= tokens_.size()) {
        cmd->error = "expected right-hand side";
        return false;
      }
      std::string rhs = tokens_[pos_].text;
      if (rhs.find('.') != std::string::npos && !std::isdigit(static_cast<unsigned char>(rhs[0]))) {
        cmp.rhs_is_const = false;
        if (!ParseRef(&cmp.rhs_ref, cmd, true)) return false;
        // Optional "+ <int>" addend.
        if (AcceptToken("+")) {
          if (pos_ >= tokens_.size()) {
            cmd->error = "expected addend";
            return false;
          }
          cmp.rhs_addend = std::stoll(tokens_[pos_++].text);
        }
      } else {
        ++pos_;
        cmp.rhs_is_const = true;
        if (std::isdigit(static_cast<unsigned char>(rhs[0])) || rhs[0] == '-') {
          if (rhs.find('.') != std::string::npos) {
            cmp.rhs_const = Value::Double(std::stod(rhs));
          } else {
            cmp.rhs_const = Value::Int64(std::stoll(rhs));
          }
        } else {
          // Identifier constant: resolve as category value of the lhs
          // property, else as a string literal.
          if (cmp.lhs.key != kInvalidPropKey &&
              catalog_.property(cmp.lhs.key).type == ValueType::kCategory) {
            category_t cat = catalog_.FindCategoryValue(cmp.lhs.key, rhs);
            if (cat == kInvalidCategory) {
              cmd->error = "unknown category value " + rhs + " for property " +
                           catalog_.property(cmp.lhs.key).name;
              return false;
            }
            cmp.rhs_const = Value::Category(cat);
          } else {
            cmp.rhs_const = Value::String(rhs);
          }
        }
      }
      cmd->pred.Add(std::move(cmp));
      if (!AcceptToken(",") && !AcceptKeyword("AND") && !AcceptToken("&")) break;
    }
    return true;
  }

  // [PARTITION BY <list>] [SORT BY <list>]
  void ParseIndexAsBody(DdlCommand* cmd) {
    // Accept the paper's "PARTITON" typo too.
    if (AcceptKeyword("PARTITION") || AcceptKeyword("PARTITON")) {
      if (!ExpectKeyword("BY", cmd)) return;
      do {
        PropRef ref;
        if (!ParseRef(&ref, cmd, true)) return;
        PartitionCriterion crit;
        if (ref.is_label) {
          crit.source = ref.site == PropSite::kNbrVertex ? PartitionSource::kNbrLabel
                                                         : PartitionSource::kEdgeLabel;
        } else if (ref.IsVertexSite()) {
          crit.source = PartitionSource::kNbrProp;
          crit.key = ref.key;
        } else {
          crit.source = PartitionSource::kEdgeProp;
          crit.key = ref.key;
        }
        cmd->config.partitions.push_back(crit);
      } while (AcceptToken(","));
    }
    if (AcceptKeyword("SORT")) {
      if (!ExpectKeyword("BY", cmd)) return;
      do {
        PropRef ref;
        if (!ParseRef(&ref, cmd, true)) return;
        SortCriterion crit;
        if (ref.is_id) {
          crit.source = SortSource::kNbrId;
        } else if (ref.is_label) {
          crit.source = SortSource::kNbrLabel;
        } else if (ref.IsVertexSite()) {
          crit.source = SortSource::kNbrProp;
          crit.key = ref.key;
        } else {
          crit.source = SortSource::kEdgeProp;
          crit.key = ref.key;
        }
        cmd->config.sorts.push_back(crit);
      } while (AcceptToken(","));
    }
    if (cmd->config.sorts.empty()) {
      cmd->config.sorts.push_back(SortCriterion{SortSource::kNbrId, kInvalidPropKey});
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Catalog& catalog_;
};

}  // namespace

DdlCommand ParseDdl(const std::string& text, const Catalog& catalog) {
  Parser parser(text, catalog);
  DdlCommand cmd = parser.Parse();
  if (cmd.ok() && cmd.kind == DdlCommand::Kind::kCreateEp && !cmd.pred.HasCrossEdgeConjunct()) {
    cmd.error =
        "2-HOP view predicate must reference both eb and eadj; use a 1-HOP "
        "view for single-edge predicates (Section III-B2)";
  }
  return cmd;
}

}  // namespace aplus
