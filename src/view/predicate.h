#ifndef APLUS_VIEW_PREDICATE_H_
#define APLUS_VIEW_PREDICATE_H_

#include <string>
#include <vector>

#include "storage/graph.h"
#include "storage/types.h"
#include "storage/value.h"

namespace aplus {

// Where a property reference in a view predicate points. The reserved
// keywords of the paper's index-definition language (Section III) map as:
//   eadj -> kAdjEdge, vnbr -> kNbrVertex, eb -> kBoundEdge,
//   vs -> kSrcVertex, vd -> kDstVertex.
enum class PropSite : uint8_t {
  kAdjEdge = 0,    // the edge stored in the adjacency list
  kNbrVertex = 1,  // the neighbour vertex the adjacent edge points to
  kBoundEdge = 2,  // the partitioning edge of a 2-hop view
  kSrcVertex = 3,  // source vertex of the (bound) edge
  kDstVertex = 4,  // destination vertex of the (bound) edge
};

const char* ToString(PropSite site);

// A property reference, possibly to the pseudo-properties "label" / "ID".
struct PropRef {
  PropSite site = PropSite::kAdjEdge;
  prop_key_t key = kInvalidPropKey;
  bool is_label = false;  // <site>.label
  bool is_id = false;     // <site>.ID

  bool IsVertexSite() const {
    return site == PropSite::kNbrVertex || site == PropSite::kSrcVertex ||
           site == PropSite::kDstVertex;
  }
  bool operator==(const PropRef& other) const {
    return site == other.site && key == other.key && is_label == other.is_label &&
           is_id == other.is_id;
  }
};

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* ToString(CmpOp op);
// The comparison `b (op') a` equivalent to `a (op) b`.
CmpOp Flip(CmpOp op);

// One conjunct: `lhs op rhs_const` or `lhs op rhs_ref + rhs_addend`.
// The addend supports the paper's money-flow predicates such as
// eadj.amt < eb.amt + alpha (Example 7 / Figure 5).
struct Comparison {
  PropRef lhs;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_const = true;
  Value rhs_const;
  PropRef rhs_ref;
  int64_t rhs_addend = 0;

  bool IsCrossEdge() const;  // references both kAdjEdge and kBoundEdge
  std::string ToString(const Catalog& catalog) const;
};

// Bindings a predicate is evaluated against. Unused slots stay invalid;
// evaluating a comparison whose site is unbound is a programming error.
struct EvalContext {
  const Graph* graph = nullptr;
  edge_id_t adj_edge = kInvalidEdge;
  vertex_id_t nbr = kInvalidVertex;
  edge_id_t bound_edge = kInvalidEdge;
  vertex_id_t src = kInvalidVertex;
  vertex_id_t dst = kInvalidVertex;
};

// A conjunction of comparisons. Views in the paper are select-only, so a
// flat conjunct list is the complete predicate language (Section III-B).
class Predicate {
 public:
  Predicate() = default;

  static Predicate True() { return Predicate(); }

  Predicate& Add(Comparison cmp) {
    conjuncts_.push_back(std::move(cmp));
    return *this;
  }

  // Convenience builders.
  Predicate& AddConst(PropRef lhs, CmpOp op, Value constant);
  Predicate& AddRef(PropRef lhs, CmpOp op, PropRef rhs, int64_t addend = 0);

  bool IsTrue() const { return conjuncts_.empty(); }
  const std::vector<Comparison>& conjuncts() const { return conjuncts_; }

  // True iff some conjunct compares a kBoundEdge property against a
  // kAdjEdge/kNbrVertex property; edge-partitioned views must satisfy this
  // (Section III-B2, the "Redundant" discussion).
  bool HasCrossEdgeConjunct() const;

  // Evaluates the full conjunction. Any comparison on a null property
  // value is false (nulls live in dedicated partitions / tails instead).
  bool Eval(const EvalContext& ctx) const;

  std::string ToString(const Catalog& catalog) const;

 private:
  std::vector<Comparison> conjuncts_;
};

// Evaluates one comparison under `ctx`.
bool EvalComparison(const Comparison& cmp, const EvalContext& ctx);

// Reads the referenced value (label/ID pseudo-properties included).
Value ReadPropRef(const PropRef& ref, const EvalContext& ctx);

// Applies `op` to an already-computed three-way comparison result.
bool ApplyCmp(CmpOp op, int three_way);

}  // namespace aplus

#endif  // APLUS_VIEW_PREDICATE_H_
