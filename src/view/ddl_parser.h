#ifndef APLUS_VIEW_DDL_PARSER_H_
#define APLUS_VIEW_DDL_PARSER_H_

#include <string>

#include "index/index_config.h"
#include "storage/catalog.h"
#include "view/view_def.h"

namespace aplus {

// Parsed form of the paper's index definition commands (Section III):
//
//   RECONFIGURE PRIMARY INDEXES
//     PARTITION BY eadj.label, eadj.currency SORT BY vnbr.city
//
//   CREATE 1-HOP VIEW LargeUSDTrnx
//     MATCH vs-[eadj]->vd
//     WHERE eadj.currency=USD, eadj.amt>10000
//     INDEX AS FW-BW PARTITION BY eadj.label SORT BY vnbr.ID
//
//   CREATE 2-HOP VIEW MoneyFlow
//     MATCH vs-[eb]->vd-[eadj]->vnbr
//     WHERE eb.date<eadj.date, eadj.amt<eb.amt
//     INDEX AS PARTITION BY eadj.label SORT BY vnbr.city
//
// Identifier constants (e.g. USD) resolve through the catalog's category
// value names; numeric constants parse as int64 (or double when they
// contain '.').
struct DdlCommand {
  enum class Kind { kReconfigure, kCreateVp, kCreateEp };

  Kind kind = Kind::kReconfigure;
  std::string view_name;
  Predicate pred;
  EpKind ep_kind = EpKind::kDstFwd;  // CREATE 2-HOP only
  bool fwd = true;                   // CREATE 1-HOP: index directions
  bool bwd = false;
  IndexConfig config;

  // Empty on success; a human-readable message otherwise.
  std::string error;
  bool ok() const { return error.empty(); }
};

// Parses one command. `edge_prop_target`/`vertex_prop_target` resolve
// property names via the catalog; unknown names fail the parse.
DdlCommand ParseDdl(const std::string& text, const Catalog& catalog);

}  // namespace aplus

#endif  // APLUS_VIEW_DDL_PARSER_H_
