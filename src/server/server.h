#ifndef APLUS_SERVER_SERVER_H_
#define APLUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/database.h"
#include "server/protocol.h"
#include "server/shared_plan_cache.h"
#include "storage/value.h"
#include "util/thread_pool.h"

namespace aplus {

// aplusd server configuration. Env defaults (APLUS_SERVER_BATCH,
// APLUS_QUERY_TIMEOUT_MS) are resolved by ServerOptions::FromEnv so the
// aplusd binary and in-process test servers agree on knob semantics.
struct ServerOptions {
  // TCP port to listen on (loopback + any). 0 binds an ephemeral port —
  // tests read the real one back from Server::port().
  int port = 0;
  // Request worker threads (PREPARE/EXECUTE run here, off the I/O loop).
  int num_workers = 4;
  // Deadline applied to EXECUTE frames that carry deadline_ms == 0.
  // < 0 defers to APLUS_QUERY_TIMEOUT_MS.
  int64_t default_deadline_millis = -1;
  // Groups concurrent identical EXECUTEs into one morsel-parallel pass
  // (see Server's batching notes). APLUS_SERVER_BATCH=off disables.
  bool batching = true;
  int listen_backlog = 64;

  // Applies APLUS_SERVER_BATCH=on|off on top of the defaults above.
  static ServerOptions FromEnv();
};

// The aplusd front-end: accepts wire-protocol connections
// (server/protocol.h), prepares statements through the cross-session
// SharedPlanCache, and executes them on a TaskQueue worker pool while a
// single poll(2) loop thread owns all socket I/O.
//
// Threading model:
//   * One I/O loop thread: accept, read, frame parsing, response writes,
//     FETCH/CLOSE/STATS (spool slicing only — no execution), connection
//     teardown. Sockets are non-blocking; a self-pipe wakes the loop for
//     worker completions and Stop().
//   * num_workers TaskQueue threads: PREPARE (parse + optimize on cache
//     miss) and EXECUTE (bind + run + serialize the result spool). Each
//     connection has at most ONE job in flight; frames that arrive while
//     it is busy are deferred in arrival order, except CANCEL, which is
//     handled out-of-band (PreparedQuery::Cancel is the one thread-safe
//     entry point). A connection is never destroyed while busy, so
//     worker jobs may touch their Connection/Statement freely.
//   * Queries execute with num_threads = 1: the engine's fork-join pool
//     serializes whole parallel jobs, so server throughput comes from
//     cross-connection concurrency, not per-query parallelism. The one
//     exception is a batch group (below), which amortizes one pass
//     across its members and may go morsel-parallel.
//
// Request batching (APLUS_SERVER_BATCH): concurrent EXECUTE frames that
// hit the same shared-cache plan entry with byte-identical parameters,
// deadline and max_rows are grouped; the first worker to start seals the
// group, executes ONCE (num_threads = min(group, 4)), and every member
// connection receives its own copy of the result spool. Per-connection
// ordering makes same-connection duplicates impossible, so batching
// only ever merges across connections.
//
// Results stream into a per-statement spool of serialized kRows frames;
// the EXECUTE response carries up to max_rows rows (rounded up to whole
// batches) and sets more=1 when FETCH can page the rest.
class Server {
 public:
  Server(Database* db, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds + listens + spawns the loop and worker threads. Returns false
  // with *error set when the port cannot be bound.
  bool Start(std::string* error);

  // Graceful shutdown: stops accepting, cancels in-flight executes via
  // their ExecTokens, drains worker completions, flushes pending
  // responses best-effort, closes every connection. Idempotent.
  void Stop();

  // The bound port (the real one when options.port was 0).
  int port() const { return port_; }

  SharedPlanCache& plan_cache() { return cache_; }
  uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }
  // Executes answered from a batch leader's pass instead of running.
  uint64_t batch_saved() const { return batch_saved_.load(std::memory_order_relaxed); }

 private:
  // One contiguous slice of a statement's result spool: a serialized
  // kRows frame and the row count it carries.
  struct SpoolChunk {
    size_t offset = 0;
    size_t len = 0;
    uint64_t rows = 0;
  };

  struct Statement {
    SharedPlanCache::Lease lease;
    std::vector<uint8_t> spool;  // concatenated kRows frames
    std::vector<SpoolChunk> chunks;
    size_t next_chunk = 0;  // FETCH cursor
    uint64_t count = 0;
    double seconds = 0.0;
  };

  struct Connection {
    int fd = -1;
    std::vector<uint8_t> in;
    size_t in_start = 0;  // parsed prefix of `in`
    std::vector<uint8_t> out;
    size_t out_start = 0;  // written prefix of `out`
    bool hello_done = false;
    bool busy = false;     // worker job in flight
    bool closing = false;  // drain `out`, then close
    bool dead = false;     // socket failed; reap once not busy
    uint32_t next_stmt_id = 1;
    std::unordered_map<uint32_t, std::unique_ptr<Statement>> stmts;
    // Frames received while busy, replayed in order on completion.
    std::deque<std::vector<uint8_t>> deferred;
    // The executing statement's query, for out-of-band CANCEL.
    std::atomic<PreparedQuery*> inflight{nullptr};
  };

  // A dispatched EXECUTE: parsed request + (for batching) the raw
  // parameter bytes that make up the group key.
  struct ExecRequest {
    Connection* conn = nullptr;
    Statement* stmt = nullptr;
    uint32_t stmt_id = 0;
    int64_t deadline_millis = 0;  // resolved (0 frame value applied)
    uint64_t max_rows = 0;        // 0 = all
    std::vector<std::pair<std::string, Value>> params;
    std::string batch_key;  // empty when batching is off
  };

  struct BatchGroup {
    // shared_ptr: requests are captured in std::function job closures,
    // which require copyable captures.
    std::vector<std::shared_ptr<ExecRequest>> members;
    bool sealed = false;
  };

  // Worker -> loop completion: bytes to append to conn->out, plus
  // whether the (failed-prepare) statement should be dropped.
  struct Completion {
    Connection* conn = nullptr;
    std::vector<uint8_t> response;
    uint32_t drop_stmt_id = 0;  // 0 = keep
  };

  void LoopThread();
  void AcceptNew();
  void ReadFrom(Connection* conn);
  void ParseFrames(Connection* conn);
  // Dispatches one complete frame. Returns false when the connection
  // must close (protocol violation).
  bool HandleFrame(Connection* conn, const wire::FrameView& frame);
  void HandleHello(Connection* conn, const wire::FrameView& frame);
  void DispatchPrepare(Connection* conn, const wire::FrameView& frame);
  void DispatchExecute(Connection* conn, const wire::FrameView& frame);
  void HandleFetch(Connection* conn, const wire::FrameView& frame);
  void HandleCancel(Connection* conn);
  void HandleCloseStmt(Connection* conn, const wire::FrameView& frame);
  void HandleStats(Connection* conn);

  // Worker-side bodies.
  void RunPrepare(Connection* conn, uint32_t stmt_id, std::string text);
  void RunExecuteGroup(const std::string& group_key, std::shared_ptr<ExecRequest> leader);

  // Appends the post-execute response for `req` (rows up to max_rows,
  // then DONE/ERROR) into `out`, advancing stmt->next_chunk.
  void BuildExecuteResponse(const QueryOutcome& outcome, ExecRequest* req,
                            std::vector<uint8_t>* out);

  void PostCompletion(Completion completion);
  void DrainCompletions();
  void FinishJob(Connection* conn);  // busy=false + replay deferred
  void SendError(Connection* conn, wire::WireStatus status, const std::string& message);
  void FlushOut(Connection* conn);
  void CloseStatement(Connection* conn, Statement* stmt);
  void DestroyConnection(Connection* conn);
  void WakeLoop();

  Database* db_;
  ServerOptions options_;
  SharedPlanCache cache_;
  TaskQueue workers_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] in the poll set
  int port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::unordered_set<Connection*> conns_;  // loop-thread only

  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  std::mutex batch_mu_;
  std::unordered_map<std::string, std::shared_ptr<BatchGroup>> batch_pending_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batch_saved_{0};
};

}  // namespace aplus

#endif  // APLUS_SERVER_SERVER_H_
