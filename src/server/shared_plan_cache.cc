#include "server/shared_plan_cache.h"

#include <functional>

namespace aplus {

SharedPlanCache::Shard& SharedPlanCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

bool SharedPlanCache::EntryStale(const Entry& entry) const {
  if (entry.store_version != db_->index_store().version()) return true;
  const uint64_t num_edges = db_->graph().num_edges();
  return num_edges < entry.num_edges_at_prepare ||
         num_edges > entry.num_edges_at_prepare * 2;
}

SharedPlanCache::Lease SharedPlanCache::Acquire(const std::string& text,
                                                const PrepareOptions& options) {
  const std::string key = NormalizeQueryText(text);
  Shard& shard = ShardFor(key);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (EntryStale(*it->second)) {
        shard.map.erase(it);  // instances drain back through Release and drop
      } else {
        entry = it->second;
      }
    }
  }
  Lease lease;
  if (entry != nullptr) {
    // Hit: pool pop, or clone from the shared optimized plan. Cloning
    // under the entry mutex serializes same-text checkouts only; other
    // texts proceed in parallel.
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->pool.empty()) {
      lease.owned = std::move(entry->pool.back());
      entry->pool.pop_back();
    } else {
      lease.owned = db_->ClonePrepared(*entry->master);
    }
    lease.query = lease.owned.get();
    lease.entry = entry;
    lease.hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return lease;
  }
  // Miss: parse + optimize the master outside any shard lock, then
  // publish. A racing miss on the same text may publish first; adopt
  // the winner's entry and donate our master to its pool.
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<PreparedQuery> master;
  {
    std::lock_guard<std::mutex> prepare_lock(prepare_mu_);
    master = db_->Prepare(text, options);
  }
  if (!master->ok()) {
    // Failed prepares are cheap error holders and never cached (the
    // Session contract); hand the holder itself out.
    lease.owned = std::move(master);
    lease.query = lease.owned.get();
    return lease;
  }
  auto fresh = std::make_shared<Entry>();
  fresh->key = key;
  fresh->store_version = db_->index_store().version();
  fresh->num_edges_at_prepare = master->num_edges_at_prepare();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && !EntryStale(*it->second)) {
      entry = it->second;  // lost the publish race
    } else {
      fresh->master = std::move(master);
      shard.map[key] = fresh;
      entry = fresh;
    }
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (master != nullptr) {
    // Race loser: our fully prepared master becomes this lease's
    // instance — the optimizer work is not wasted.
    lease.owned = std::move(master);
  } else if (!entry->pool.empty()) {
    lease.owned = std::move(entry->pool.back());
    entry->pool.pop_back();
  } else {
    lease.owned = db_->ClonePrepared(*entry->master);
  }
  lease.query = lease.owned.get();
  lease.entry = entry;
  return lease;
}

void SharedPlanCache::Release(Lease* lease) {
  if (lease->owned == nullptr) return;
  std::shared_ptr<Entry> entry = std::static_pointer_cast<Entry>(lease->entry);
  if (entry != nullptr && lease->owned->ok() && !EntryStale(*entry)) {
    // A pooled instance must not leak the previous owner's parameter
    // values into the next checkout: clear the bound flags so Execute
    // refuses until the new owner binds.
    lease->owned->ClearBindings();
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->pool.size() < kMaxPooledPerEntry) {
      entry->pool.push_back(std::move(lease->owned));
    }
  }
  lease->owned.reset();
  lease->query = nullptr;
  lease->entry.reset();
}

void SharedPlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

size_t SharedPlanCache::size() const {
  size_t total = 0;
  for (const Shard& shard : const_cast<SharedPlanCache*>(this)->shards_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(shard.mu));
    total += shard.map.size();
  }
  return total;
}

}  // namespace aplus
