#ifndef APLUS_SERVER_SHARED_PLAN_CACHE_H_
#define APLUS_SERVER_SHARED_PLAN_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/database.h"

namespace aplus {

// Cross-session shared plan cache: one map over ALL connections keyed on
// normalized query text, so a query is parsed + optimized once per text
// per graph epoch — not once per connection (Session's cache is
// per-thread and rebuilds the same plan N times for N connections).
//
// Structure:
//   * The map is mutex-sharded (hash(text) % kNumShards); shard critical
//     sections only touch the map, never prepare or clone.
//   * Each entry holds a "master" PreparedQuery that is NEVER executed —
//     it is the clone template — plus a pool of idle instances.
//   * Acquire() checks an instance out (pool pop, or
//     Database::ClonePrepared from the master under the entry mutex);
//     the caller owns it exclusively until Release(), so Bind/Execute on
//     a checked-out instance take no locks at all.
//   * Version invalidation mirrors Session::Prepare: an entry is stale
//     when the index-store version moved (DDL / index rebuild) or the
//     graph's edge count left [prepared, 2 x prepared] (ingest grew or
//     shrank the graph past plan quality). Stale entries are dropped
//     whole — instances still checked out drain back through Release()
//     and are discarded there.
//
// A hit is an Acquire served from the shared plan (pool pop or clone) —
// no parse, no optimizer. After warmup a steady request mix should sit
// well above 90% (tests/server_test.cc and aplus_loadgen assert it).
class SharedPlanCache {
 public:
  explicit SharedPlanCache(Database* db) : db_(db), shards_(kNumShards) {}

  // Move-only handle to a checked-out instance. valid() is false only
  // when Prepare itself failed; the failed PreparedQuery rides along so
  // the caller can surface error()/status through the normal path.
  struct Lease {
    PreparedQuery* query = nullptr;
    bool hit = false;  // served from the shared plan (no re-optimize)

    bool valid() const { return query != nullptr && query->ok(); }

   private:
    friend class SharedPlanCache;
    std::shared_ptr<void> entry;  // keeps the Entry alive while checked out
    std::unique_ptr<PreparedQuery> owned;
  };

  // Checks an instance out for `text`. Never returns a null Lease.query.
  // `options` apply on misses only (the first prepare of a text fixes
  // the batch size for every later clone).
  Lease Acquire(const std::string& text, const PrepareOptions& options = {});

  // Returns the instance to its entry's pool (bindings cleared), or
  // drops it when the entry went stale/evicted meanwhile.
  void Release(Lease* lease);

  // Drops every entry (DDL hook / tests). Checked-out instances keep
  // executing and are discarded on Release.
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

 private:
  static constexpr size_t kNumShards = 16;
  // Idle instances kept per entry; beyond this, Release drops the
  // instance instead (bounds idle memory under connection churn).
  static constexpr size_t kMaxPooledPerEntry = 64;

  struct Entry {
    std::string key;
    uint64_t store_version = 0;
    uint64_t num_edges_at_prepare = 0;
    std::mutex mu;  // guards master (as clone source) + pool
    std::unique_ptr<PreparedQuery> master;  // clone template; never executed
    std::vector<std::unique_ptr<PreparedQuery>> pool;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map;
  };

  Shard& ShardFor(const std::string& key);
  bool EntryStale(const Entry& entry) const;

  Database* db_;
  std::vector<Shard> shards_;
  // Serializes Database::Prepare across worker threads: the cached
  // optimizer rebuild inside Prepare is not concurrency-safe (ROADMAP
  // carry-over), and misses are rare after warmup by design.
  std::mutex prepare_mu_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace aplus

#endif  // APLUS_SERVER_SHARED_PLAN_CACHE_H_
