#ifndef APLUS_SERVER_PROTOCOL_H_
#define APLUS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/session.h"
#include "query/row_sink.h"
#include "storage/value.h"

namespace aplus {
namespace wire {

// The aplusd wire protocol (docs/PROTOCOL.md): length-prefixed binary
// frames over a byte stream.
//
//   frame := u32 payload_len (LE) | u8 type | payload[payload_len]
//
// payload_len counts the bytes AFTER the type octet, so the full frame
// occupies 5 + payload_len bytes. All integers are little-endian;
// doubles are IEEE-754 bit patterns. Strings are a length prefix plus
// raw bytes (str16 = u16 length, str32 = u32 length), never
// NUL-terminated.
constexpr uint32_t kProtocolVersion = 1;
// Oversized-length backstop: a frame advertising more than this is a
// protocol violation (the peer is broken or hostile), not a large
// request — the connection is failed without buffering the payload.
constexpr uint32_t kMaxFrameBytes = 16u << 20;
// Bytes preceding the payload (u32 length + u8 type).
constexpr size_t kFrameHeaderBytes = 5;

enum class FrameType : uint8_t {
  // Client -> server.
  kHello = 0x01,    // u32 protocol_version
  kPrepare = 0x02,  // str32 query_text
  kExecute = 0x03,  // u32 stmt_id, u32 deadline_ms (0 = server default),
                    // u64 max_rows (0 = all), u32 num_params,
                    // { str16 name, u8 value_type, payload } per param
  kFetch = 0x04,    // u32 stmt_id, u64 max_rows (0 = rest of the spool)
  kCancel = 0x05,   // empty; stops the connection's in-flight execute
  kClose = 0x06,    // u32 stmt_id
  kStats = 0x07,    // empty

  // Server -> client.
  kHelloOk = 0x81,   // u32 protocol_version, u32 flags (bit0 = batching)
  kPrepared = 0x82,  // u32 stmt_id, u32 num_params, str16 name per param,
                     // u32 num_cols, { u8 value_type, str16 name } per col
  kRows = 0x83,      // columnar row batch; see AppendRowsFrame
  kDone = 0x84,      // u8 status (kOk), u8 more, u64 count, u64 rows, f64 seconds
  kError = 0x85,     // u8 status, str32 message
  kClosed = 0x86,    // u32 stmt_id
  kStatsResult = 0x87,  // u64 cache_hits, u64 cache_misses, u64 cache_entries,
                        // u64 queries, u64 batch_saved
};

// Typed wire error codes. Values 0..9 map 1:1 onto QueryOutcome::Status
// (same numeric values, asserted in protocol.cc); kProtocolError is the
// wire-only addition for malformed/unexpected frames.
enum class WireStatus : uint8_t {
  kOk = 0,
  kParseError = 1,
  kPlanError = 2,
  kBindError = 3,
  kInvalidated = 4,
  kExecError = 5,
  kResourceExhausted = 6,
  kTimeout = 7,
  kCancelled = 8,
  kOverloaded = 9,
  kProtocolError = 100,
};

WireStatus ToWire(QueryOutcome::Status status);
// kProtocolError (no QueryOutcome analogue) maps to kExecError.
QueryOutcome::Status FromWire(WireStatus status);
const char* ToString(WireStatus status);

// Value payload tags of EXECUTE parameters (subset of ValueType; nulls
// are not bindable and categories bind as int64 or string).
enum class ParamTag : uint8_t {
  kInt64 = 1,   // i64
  kDouble = 2,  // f64
  kString = 3,  // str32
  kBool = 4,    // u8
};

// --- Encoding ---

// Appends frames to a caller-owned byte buffer (reused across frames:
// steady-state serialization allocates only on high-water-mark growth).
class FrameWriter {
 public:
  explicit FrameWriter(std::vector<uint8_t>* out) : out_(out) {}

  // Begin/End bracket one frame; End patches the length prefix.
  void BeginFrame(FrameType type);
  void EndFrame();

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  void PutBytes(const void* data, size_t len);
  void PutStr16(const std::string& s);
  void PutStr32(const std::string& s);

 private:
  std::vector<uint8_t>* out_;
  size_t frame_start_ = 0;  // offset of the length prefix
};

// One decoded frame header pointing into the receive buffer.
struct FrameView {
  FrameType type = FrameType::kHello;
  const uint8_t* payload = nullptr;
  size_t len = 0;
};

// Extracts the next complete frame from data[0..size). Returns true and
// sets *consumed/*view when one is complete; false with *consumed == 0
// when more bytes are needed; false with a non-empty *error on a
// protocol violation (oversized length). Never reads past `size`.
bool ExtractFrame(const uint8_t* data, size_t size, size_t* consumed, FrameView* view,
                  std::string* error);

// Bounds-checked cursor over one frame payload. Every getter returns
// false (and poisons the reader) on overrun, so malformed frames fail
// deterministically instead of reading garbage.
class FrameReader {
 public:
  FrameReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetF64(double* v);
  bool GetStr16(std::string* s);
  bool GetStr32(std::string* s);

  bool ok() const { return ok_; }
  size_t remaining() const { return len_ - pos_; }

 private:
  bool Take(size_t n, const uint8_t** p);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- Composite frames ---

// Serializes `batch` as one kRows frame:
//   u32 num_rows, u32 num_cols,
//   per column: u8 value_type, u8 has_nulls,
//               [num_rows null bytes when has_nulls],
//               payload (i64*n | f64*n | str32*n by storage class)
// Column-at-a-time appends into the reused buffer: no per-row heap
// allocation (string cells copy their dictionary bytes into `out`, which
// is amortized by the buffer's high-water mark like every other append).
void AppendRowsFrame(const RowBatch& batch, std::vector<uint8_t>* out);

void AppendErrorFrame(WireStatus status, const std::string& message,
                      std::vector<uint8_t>* out);
void AppendDoneFrame(bool more, uint64_t count, uint64_t rows, double seconds,
                     std::vector<uint8_t>* out);

// --- Client-side decoding ---

// A decoded kRows payload, materialized into Values (client/test
// convenience — the server side never decodes row frames).
struct DecodedRows {
  std::vector<ValueType> col_types;
  std::vector<std::vector<Value>> rows;
};

// Appends the frame's rows to *out (col_types are set on first use and
// checked afterwards). Returns false on malformed payloads.
bool DecodeRowsPayload(const uint8_t* payload, size_t len, DecodedRows* out,
                       std::string* error);

}  // namespace wire
}  // namespace aplus

#endif  // APLUS_SERVER_PROTOCOL_H_
