// aplusd: the A+ index engine behind the wire protocol (docs/PROTOCOL.md).
//
//   aplusd [--port=N] [--workers=N] [--scale=F] [--deadline-ms=N]
//          [--graph=SEGMENT] [--seal=PATH]
//
// Serves the synthetic power-law financial workload of the benches
// (vertices with sequential IDs, :E edges with an integer `amt`
// property) so aplus_loadgen and external drivers have a deterministic
// dataset to query. --graph skips generation and serves a sealed
// segment file (storage/segment.h) instead: the file is mapped
// read-only and both primary indexes come up without a rebuild, so
// startup is O(graph copy), not O(index build). --seal generates (or
// opens) the dataset, writes it to a segment file, and exits — the
// companion of --graph for ahead-of-time dataset preparation. Env knobs:
//   APLUS_MAX_CONCURRENT / APLUS_ADMISSION_QUEUE /
//   APLUS_ADMISSION_TIMEOUT_MS  — admission control (core/admission.h)
//   APLUS_SERVER_BATCH=on|off   — identical-request batching
//   APLUS_QUERY_TIMEOUT_MS      — default per-query deadline
//   APLUS_MEM_CAP[_TOTAL]       — per-query / process memory budget

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "server/server.h"
#include "util/rng.h"

using namespace aplus;  // NOLINT: binary brevity

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options = ServerOptions::FromEnv();
  options.port = 7601;
  double scale = 0.02;
  std::string graph_path;
  std::string seal_path;
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (FlagValue(argv[i], "--port", &value)) {
      options.port = std::atoi(value);
    } else if (FlagValue(argv[i], "--workers", &value)) {
      options.num_workers = std::atoi(value);
    } else if (FlagValue(argv[i], "--scale", &value)) {
      scale = std::atof(value);
    } else if (FlagValue(argv[i], "--deadline-ms", &value)) {
      options.default_deadline_millis = std::atoll(value);
    } else if (FlagValue(argv[i], "--graph", &value)) {
      graph_path = value;
    } else if (FlagValue(argv[i], "--seal", &value)) {
      seal_path = value;
    } else {
      std::fprintf(stderr,
                   "usage: aplusd [--port=N] [--workers=N] [--scale=F] [--deadline-ms=N] "
                   "[--graph=SEGMENT] [--seal=PATH]\n");
      return 2;
    }
  }

  std::unique_ptr<Database> owned_db;
  if (!graph_path.empty()) {
    std::string error;
    owned_db = Database::OpenFromSegment(graph_path, &error);
    if (owned_db == nullptr) {
      std::fprintf(stderr, "aplusd: --graph=%s: %s\n", graph_path.c_str(), error.c_str());
      return 1;
    }
  } else {
    Graph graph;
    PowerLawParams params;
    params.num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
    params.avg_degree = 8.0;
    params.preferential_fraction = 0.75;
    params.seed = 97;
    GeneratePowerLawGraph(params, &graph);
    prop_key_t amt_key = graph.AddEdgeProperty("amt", ValueType::kInt64);
    {
      PropertyColumn* amt = graph.edge_props().mutable_column(amt_key);
      Rng rng(13);
      for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
        amt->SetInt64(e, static_cast<int64_t>(rng.NextBounded(10000)));
      }
    }
    owned_db = std::make_unique<Database>(std::move(graph));
    owned_db->BuildPrimaryIndexes();
  }
  Database& db = *owned_db;

  if (!seal_path.empty()) {
    std::string error;
    if (!db.SealToSegment(seal_path, &error)) {
      std::fprintf(stderr, "aplusd: --seal=%s: %s\n", seal_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("aplusd: sealed %llu vertices, %llu edges to %s\n",
                static_cast<unsigned long long>(db.graph().num_vertices()),
                static_cast<unsigned long long>(db.graph().num_edges()), seal_path.c_str());
    return 0;
  }

  Server server(&db, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "aplusd: %s\n", error.c_str());
    return 1;
  }
  std::printf("aplusd listening on port %d (%llu vertices, %llu edges, %d workers, batch %s)\n",
              server.port(), static_cast<unsigned long long>(db.graph().num_vertices()),
              static_cast<unsigned long long>(db.graph().num_edges()), options.num_workers,
              options.batching ? "on" : "off");
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("aplusd: shutting down (%llu queries served, %llu batched, "
              "plan cache %llu hits / %llu misses)\n",
              static_cast<unsigned long long>(server.queries()),
              static_cast<unsigned long long>(server.batch_saved()),
              static_cast<unsigned long long>(server.plan_cache().hits()),
              static_cast<unsigned long long>(server.plan_cache().misses()));
  server.Stop();
  return 0;
}
