#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace aplus {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Frames a connection may queue while a job is in flight before the
// server declares it hostile and closes it (bounds deferred memory).
constexpr size_t kMaxDeferredFrames = 1024;

// Canonical byte encoding of one bound parameter value, for batch-group
// keys: identical key bytes == identical binds.
void AppendValueKey(const Value& value, std::string* key) {
  key->push_back(static_cast<char>(value.type()));
  switch (value.type()) {
    case ValueType::kDouble: {
      double d = value.AsDouble();
      key->append(reinterpret_cast<const char*>(&d), sizeof(d));
      break;
    }
    case ValueType::kString:
      key->append(value.AsString());
      break;
    default: {
      int64_t i = value.AsInt64();
      key->append(reinterpret_cast<const char*>(&i), sizeof(i));
      break;
    }
  }
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions options;
  const char* batch = std::getenv("APLUS_SERVER_BATCH");
  if (batch != nullptr) {
    std::string v(batch);
    options.batching = !(v == "off" || v == "0" || v == "false");
  }
  return options;
}

Server::Server(Database* db, const ServerOptions& options)
    : db_(db), options_(options), cache_(db) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "bind port " + std::to_string(options_.port) + ": " + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (listen(listen_fd_, options_.listen_backlog) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (pipe(wake_fds_) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  SetNonBlocking(listen_fd_);
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  workers_.Start(options_.num_workers);
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { LoopThread(); });
  return true;
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  workers_.Stop();
  // The loop reaped every connection before exiting; only the pipes and
  // (possibly) the listener remain.
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
}

void Server::WakeLoop() {
  if (wake_fds_[1] < 0) return;
  uint8_t byte = 1;
  ssize_t rc = write(wake_fds_[1], &byte, 1);
  (void)rc;  // EAGAIN just means a wakeup is already pending
}

void Server::LoopThread() {
  std::vector<pollfd> pfds;
  std::vector<Connection*> pfd_conns;
  bool listener_open = true;
  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && listener_open) {
      close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
      // Drain in-flight executes promptly: every busy connection's
      // query gets a cooperative cancel.
      for (Connection* conn : conns_) {
        conn->closing = true;
        if (conn->busy) {
          PreparedQuery* q = conn->inflight.load(std::memory_order_acquire);
          if (q != nullptr) q->Cancel();
        }
      }
    }

    // Reap connections with no job in flight and nothing left to say.
    // While stopping, pending output is best-effort: one last flush
    // attempt happened below; a stalled peer does not stall shutdown.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Connection* conn = *it;
      const bool drained = conn->out_start >= conn->out.size();
      if (!conn->busy && (conn->dead || stopping || (conn->closing && drained))) {
        it = conns_.erase(it);
        DestroyConnection(conn);
      } else {
        ++it;
      }
    }
    if (stopping && conns_.empty()) return;

    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfd_conns.push_back(nullptr);
    if (listener_open) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conns.push_back(nullptr);
    }
    for (Connection* conn : conns_) {
      if (conn->dead) continue;
      short events = 0;
      if (!conn->closing) events |= POLLIN;
      if (conn->out_start < conn->out.size()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({conn->fd, events, 0});
      pfd_conns.push_back(conn);
    }

    int rc = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
    if (rc < 0 && errno != EINTR) return;

    // Self-pipe: drain it, then the completion queue.
    if (pfds[0].revents & POLLIN) {
      uint8_t buf[64];
      while (read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    DrainCompletions();

    size_t base = 1;
    if (listener_open) {
      if (pfds[1].revents & POLLIN) AcceptNew();
      base = 2;
    }
    for (size_t i = base; i < pfds.size(); ++i) {
      Connection* conn = pfd_conns[i];
      if (conn->dead) continue;
      if (pfds[i].revents & (POLLERR | POLLHUP)) {
        // POLLHUP with readable bytes still delivers them below; a
        // half-closed peer that sent a full request gets its response
        // attempt before the reap notices the write side failed.
        if (!(pfds[i].revents & POLLIN)) conn->dead = true;
      }
      if (pfds[i].revents & POLLIN) ReadFrom(conn);
      if (pfds[i].revents & POLLOUT) FlushOut(conn);
    }
  }
}

void Server::AcceptNew() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to poll
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection* conn = new Connection();
    conn->fd = fd;
    conns_.insert(conn);
  }
}

void Server::ReadFrom(Connection* conn) {
  while (true) {
    uint8_t buf[64 * 1024];
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.insert(conn->in.end(), buf, buf + n);
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn->dead = true;  // EOF or hard error
    break;
  }
  if (!conn->dead) {
    ParseFrames(conn);
    FlushOut(conn);
  }
}

void Server::ParseFrames(Connection* conn) {
  while (!conn->closing && !conn->dead) {
    wire::FrameView view;
    size_t consumed = 0;
    std::string error;
    if (!wire::ExtractFrame(conn->in.data() + conn->in_start, conn->in.size() - conn->in_start,
                            &consumed, &view, &error)) {
      if (!error.empty()) {
        SendError(conn, wire::WireStatus::kProtocolError, error);
        conn->closing = true;
      }
      break;  // incomplete: wait for more bytes
    }
    if (conn->busy) {
      // One job in flight per connection: CANCEL goes out-of-band,
      // everything else replays in order once the job completes.
      if (view.type == wire::FrameType::kCancel) {
        HandleCancel(conn);
      } else if (conn->deferred.size() >= kMaxDeferredFrames) {
        SendError(conn, wire::WireStatus::kProtocolError, "too many frames queued mid-request");
        conn->closing = true;
      } else {
        const uint8_t* start = conn->in.data() + conn->in_start;
        conn->deferred.emplace_back(start, start + consumed);
      }
      conn->in_start += consumed;
      continue;
    }
    conn->in_start += consumed;
    if (!HandleFrame(conn, view)) conn->closing = true;
  }
  if (conn->in_start == conn->in.size()) {
    conn->in.clear();
    conn->in_start = 0;
  } else if (conn->in_start > 64 * 1024) {
    conn->in.erase(conn->in.begin(), conn->in.begin() + static_cast<ptrdiff_t>(conn->in_start));
    conn->in_start = 0;
  }
}

bool Server::HandleFrame(Connection* conn, const wire::FrameView& frame) {
  if (!conn->hello_done && frame.type != wire::FrameType::kHello) {
    SendError(conn, wire::WireStatus::kProtocolError, "expected HELLO");
    return false;
  }
  switch (frame.type) {
    case wire::FrameType::kHello:
      HandleHello(conn, frame);
      return !conn->closing;
    case wire::FrameType::kPrepare:
      DispatchPrepare(conn, frame);
      return true;
    case wire::FrameType::kExecute:
      DispatchExecute(conn, frame);
      return true;
    case wire::FrameType::kFetch:
      HandleFetch(conn, frame);
      return true;
    case wire::FrameType::kCancel:
      HandleCancel(conn);
      return true;
    case wire::FrameType::kClose:
      HandleCloseStmt(conn, frame);
      return true;
    case wire::FrameType::kStats:
      HandleStats(conn);
      return true;
    default:
      SendError(conn, wire::WireStatus::kProtocolError,
                "unexpected frame type " + std::to_string(static_cast<int>(frame.type)));
      return false;
  }
}

void Server::HandleHello(Connection* conn, const wire::FrameView& frame) {
  wire::FrameReader r(frame.payload, frame.len);
  uint32_t version = 0;
  if (!r.GetU32(&version) || r.remaining() != 0) {
    SendError(conn, wire::WireStatus::kProtocolError, "malformed HELLO");
    conn->closing = true;
    return;
  }
  if (version != wire::kProtocolVersion) {
    SendError(conn, wire::WireStatus::kProtocolError,
              "unsupported protocol version " + std::to_string(version));
    conn->closing = true;
    return;
  }
  conn->hello_done = true;
  wire::FrameWriter w(&conn->out);
  w.BeginFrame(wire::FrameType::kHelloOk);
  w.PutU32(wire::kProtocolVersion);
  w.PutU32(options_.batching ? 1u : 0u);
  w.EndFrame();
}

void Server::DispatchPrepare(Connection* conn, const wire::FrameView& frame) {
  wire::FrameReader r(frame.payload, frame.len);
  std::string text;
  if (!r.GetStr32(&text) || r.remaining() != 0) {
    SendError(conn, wire::WireStatus::kProtocolError, "malformed PREPARE");
    conn->closing = true;
    return;
  }
  const uint32_t stmt_id = conn->next_stmt_id++;
  conn->stmts[stmt_id] = std::make_unique<Statement>();
  conn->busy = true;
  bool submitted = workers_.Submit([this, conn, stmt_id, text = std::move(text)] {
    RunPrepare(conn, stmt_id, text);
  });
  if (!submitted) {
    conn->busy = false;
    conn->stmts.erase(stmt_id);
    SendError(conn, wire::WireStatus::kOverloaded, "server is shutting down");
  }
}

void Server::DispatchExecute(Connection* conn, const wire::FrameView& frame) {
  wire::FrameReader r(frame.payload, frame.len);
  uint32_t stmt_id = 0;
  uint32_t deadline_ms = 0;
  uint64_t max_rows = 0;
  uint32_t num_params = 0;
  bool ok = r.GetU32(&stmt_id) && r.GetU32(&deadline_ms) && r.GetU64(&max_rows) &&
            r.GetU32(&num_params);
  auto req = std::make_shared<ExecRequest>();
  for (uint32_t i = 0; ok && i < num_params; ++i) {
    std::string name;
    uint8_t tag = 0;
    ok = r.GetStr16(&name) && r.GetU8(&tag);
    if (!ok) break;
    Value value;
    switch (static_cast<wire::ParamTag>(tag)) {
      case wire::ParamTag::kInt64: {
        int64_t v = 0;
        ok = r.GetI64(&v);
        value = Value::Int64(v);
        break;
      }
      case wire::ParamTag::kDouble: {
        double v = 0;
        ok = r.GetF64(&v);
        value = Value::Double(v);
        break;
      }
      case wire::ParamTag::kString: {
        std::string v;
        ok = r.GetStr32(&v);
        value = Value::String(std::move(v));
        break;
      }
      case wire::ParamTag::kBool: {
        uint8_t v = 0;
        ok = r.GetU8(&v);
        value = Value::Bool(v != 0);
        break;
      }
      default:
        ok = false;
        break;
    }
    if (ok) req->params.emplace_back(std::move(name), std::move(value));
  }
  if (!ok || r.remaining() != 0) {
    SendError(conn, wire::WireStatus::kProtocolError, "malformed EXECUTE");
    conn->closing = true;
    return;
  }
  auto it = conn->stmts.find(stmt_id);
  if (it == conn->stmts.end()) {
    SendError(conn, wire::WireStatus::kProtocolError,
              "unknown statement " + std::to_string(stmt_id));
    return;
  }
  req->conn = conn;
  req->stmt = it->second.get();
  req->stmt_id = stmt_id;
  req->deadline_millis = deadline_ms > 0 ? static_cast<int64_t>(deadline_ms)
                                         : options_.default_deadline_millis;
  req->max_rows = max_rows;
  conn->busy = true;

  if (options_.batching && req->stmt->lease.valid()) {
    std::string key = req->stmt->lease.query->normalized_text();
    key.push_back('\x1f');
    key.append(reinterpret_cast<const char*>(&req->deadline_millis),
               sizeof(req->deadline_millis));
    key.append(reinterpret_cast<const char*>(&req->max_rows), sizeof(req->max_rows));
    for (const auto& param : req->params) {
      key.push_back('\x1e');
      key.append(param.first);
      key.push_back('=');
      AppendValueKey(param.second, &key);
    }
    req->batch_key = std::move(key);
    std::lock_guard<std::mutex> lock(batch_mu_);
    auto pending = batch_pending_.find(req->batch_key);
    if (pending != batch_pending_.end() && !pending->second->sealed) {
      // An identical request is queued but its leader has not started:
      // ride along. The leader answers for this connection too.
      pending->second->members.push_back(std::move(req));
      return;
    }
    batch_pending_[req->batch_key] = std::make_shared<BatchGroup>();
  }

  const std::string key = req->batch_key;
  bool submitted =
      workers_.Submit([this, key, req]() mutable { RunExecuteGroup(key, std::move(req)); });
  if (!submitted) {
    if (!key.empty()) {
      std::lock_guard<std::mutex> lock(batch_mu_);
      batch_pending_.erase(key);
    }
    conn->busy = false;
    SendError(conn, wire::WireStatus::kOverloaded, "server is shutting down");
  }
}

void Server::RunPrepare(Connection* conn, uint32_t stmt_id, std::string text) {
  SharedPlanCache::Lease lease = cache_.Acquire(text);
  Completion completion;
  completion.conn = conn;
  if (!lease.query->ok()) {
    wire::AppendErrorFrame(wire::ToWire(lease.query->status()), lease.query->error(),
                           &completion.response);
    completion.drop_stmt_id = stmt_id;
    cache_.Release(&lease);
    PostCompletion(std::move(completion));
    return;
  }
  PreparedQuery* q = lease.query;
  wire::FrameWriter w(&completion.response);
  w.BeginFrame(wire::FrameType::kPrepared);
  w.PutU32(stmt_id);
  w.PutU32(static_cast<uint32_t>(q->num_params()));
  for (size_t i = 0; i < q->num_params(); ++i) w.PutStr16(q->param_name(i));
  w.PutU32(static_cast<uint32_t>(q->columns().size()));
  for (const ProjectColumn& col : q->columns()) {
    w.PutU8(static_cast<uint8_t>(col.type));
    w.PutStr16(col.name);
  }
  w.EndFrame();
  // The worker may touch the statement freely: its connection stays
  // busy (and thus alive, untouched by the loop) until this completion.
  conn->stmts.at(stmt_id)->lease = std::move(lease);
  PostCompletion(std::move(completion));
}

void Server::RunExecuteGroup(const std::string& group_key, std::shared_ptr<ExecRequest> leader) {
  std::vector<std::shared_ptr<ExecRequest>> followers;
  if (!group_key.empty()) {
    std::lock_guard<std::mutex> lock(batch_mu_);
    auto it = batch_pending_.find(group_key);
    if (it != batch_pending_.end()) {
      it->second->sealed = true;
      followers = std::move(it->second->members);
      batch_pending_.erase(it);
    }
  }

  Statement* stmt = leader->stmt;
  PreparedQuery* q = stmt->lease.query;
  QueryOutcome outcome;
  bool bound = true;
  for (const auto& param : leader->params) {
    if (!q->Bind(param.first, param.second)) {
      outcome.status = QueryOutcome::Status::kBindError;
      outcome.error = q->bind_error();
      bound = false;
      break;
    }
  }
  if (bound) {
    stmt->spool.clear();
    stmt->chunks.clear();
    stmt->next_chunk = 0;
    q->set_deadline_millis(leader->deadline_millis);
    leader->conn->inflight.store(q, std::memory_order_release);

    struct Sink : RowConsumer {
      Statement* stmt;
      std::mutex mu;
      void OnBatch(const RowBatch& batch) override {
        std::lock_guard<std::mutex> lock(mu);
        SpoolChunk chunk;
        chunk.offset = stmt->spool.size();
        chunk.rows = batch.num_rows();
        wire::AppendRowsFrame(batch, &stmt->spool);
        chunk.len = stmt->spool.size() - chunk.offset;
        stmt->chunks.push_back(chunk);
      }
    } sink;
    sink.stmt = stmt;

    // A lone request runs serial (cross-connection concurrency is the
    // throughput lever); a sealed batch group amortizes one
    // morsel-parallel pass across all its members.
    const int num_threads =
        followers.empty() ? 1 : static_cast<int>(std::min<size_t>(followers.size() + 1, 4));
    outcome = q->Execute(&sink, num_threads);
    leader->conn->inflight.store(nullptr, std::memory_order_release);
    stmt->count = outcome.count;
    stmt->seconds = outcome.seconds;
  }

  queries_.fetch_add(1 + followers.size(), std::memory_order_relaxed);
  if (!followers.empty()) {
    batch_saved_.fetch_add(followers.size(), std::memory_order_relaxed);
  }

  // Build EVERY response before posting ANY completion: the moment the
  // leader's completion lands, its connection stops being busy and the
  // loop thread may free the leader's Statement (a pipelined CLOSE) —
  // the follower spool copies below must already be done by then.
  std::vector<Completion> completions;
  completions.emplace_back();
  completions.back().conn = leader->conn;
  BuildExecuteResponse(outcome, leader.get(), &completions.back().response);
  for (const std::shared_ptr<ExecRequest>& follower : followers) {
    // Batched answer: the follower's statement adopts a copy of the
    // leader's spool so its FETCH cursor pages independently.
    if (outcome.ok()) {
      follower->stmt->spool = stmt->spool;
      follower->stmt->chunks = stmt->chunks;
      follower->stmt->next_chunk = 0;
      follower->stmt->count = stmt->count;
      follower->stmt->seconds = stmt->seconds;
    }
    completions.emplace_back();
    completions.back().conn = follower->conn;
    BuildExecuteResponse(outcome, follower.get(), &completions.back().response);
  }
  for (Completion& completion : completions) PostCompletion(std::move(completion));
}

void Server::BuildExecuteResponse(const QueryOutcome& outcome, ExecRequest* req,
                                  std::vector<uint8_t>* out) {
  if (!outcome.ok()) {
    wire::AppendErrorFrame(wire::ToWire(outcome.status), outcome.error, out);
    return;
  }
  Statement* stmt = req->stmt;
  uint64_t delivered = 0;
  while (stmt->next_chunk < stmt->chunks.size() &&
         (req->max_rows == 0 || delivered < req->max_rows)) {
    const SpoolChunk& chunk = stmt->chunks[stmt->next_chunk];
    out->insert(out->end(), stmt->spool.begin() + static_cast<ptrdiff_t>(chunk.offset),
                stmt->spool.begin() + static_cast<ptrdiff_t>(chunk.offset + chunk.len));
    delivered += chunk.rows;
    ++stmt->next_chunk;
  }
  const bool more = stmt->next_chunk < stmt->chunks.size();
  wire::AppendDoneFrame(more, outcome.count, delivered, outcome.seconds, out);
}

void Server::HandleFetch(Connection* conn, const wire::FrameView& frame) {
  wire::FrameReader r(frame.payload, frame.len);
  uint32_t stmt_id = 0;
  uint64_t max_rows = 0;
  if (!r.GetU32(&stmt_id) || !r.GetU64(&max_rows) || r.remaining() != 0) {
    SendError(conn, wire::WireStatus::kProtocolError, "malformed FETCH");
    conn->closing = true;
    return;
  }
  auto it = conn->stmts.find(stmt_id);
  if (it == conn->stmts.end()) {
    SendError(conn, wire::WireStatus::kProtocolError,
              "unknown statement " + std::to_string(stmt_id));
    return;
  }
  // Pure spool slicing: no execution, so it runs right here on the
  // loop thread.
  Statement* stmt = it->second.get();
  uint64_t delivered = 0;
  while (stmt->next_chunk < stmt->chunks.size() && (max_rows == 0 || delivered < max_rows)) {
    const SpoolChunk& chunk = stmt->chunks[stmt->next_chunk];
    conn->out.insert(conn->out.end(),
                     stmt->spool.begin() + static_cast<ptrdiff_t>(chunk.offset),
                     stmt->spool.begin() + static_cast<ptrdiff_t>(chunk.offset + chunk.len));
    delivered += chunk.rows;
    ++stmt->next_chunk;
  }
  const bool more = stmt->next_chunk < stmt->chunks.size();
  wire::AppendDoneFrame(more, stmt->count, delivered, stmt->seconds, &conn->out);
}

void Server::HandleCancel(Connection* conn) {
  if (!conn->busy) return;  // nothing in flight
  PreparedQuery* q = conn->inflight.load(std::memory_order_acquire);
  if (q != nullptr) q->Cancel();
}

void Server::HandleCloseStmt(Connection* conn, const wire::FrameView& frame) {
  wire::FrameReader r(frame.payload, frame.len);
  uint32_t stmt_id = 0;
  if (!r.GetU32(&stmt_id) || r.remaining() != 0) {
    SendError(conn, wire::WireStatus::kProtocolError, "malformed CLOSE");
    conn->closing = true;
    return;
  }
  auto it = conn->stmts.find(stmt_id);
  if (it != conn->stmts.end()) {
    CloseStatement(conn, it->second.get());
    conn->stmts.erase(it);
  }
  wire::FrameWriter w(&conn->out);
  w.BeginFrame(wire::FrameType::kClosed);
  w.PutU32(stmt_id);
  w.EndFrame();
}

void Server::HandleStats(Connection* conn) {
  wire::FrameWriter w(&conn->out);
  w.BeginFrame(wire::FrameType::kStatsResult);
  w.PutU64(cache_.hits());
  w.PutU64(cache_.misses());
  w.PutU64(cache_.size());
  w.PutU64(queries());
  w.PutU64(batch_saved());
  w.EndFrame();
}

void Server::PostCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  WakeLoop();
}

void Server::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    Connection* conn = completion.conn;
    conn->out.insert(conn->out.end(), completion.response.begin(), completion.response.end());
    if (completion.drop_stmt_id != 0) conn->stmts.erase(completion.drop_stmt_id);
    FinishJob(conn);
    FlushOut(conn);
  }
}

void Server::FinishJob(Connection* conn) {
  conn->busy = false;
  // Replay frames that arrived mid-job, in order, until another job
  // starts (busy again) or the connection is closing.
  while (!conn->busy && !conn->closing && !conn->deferred.empty()) {
    std::vector<uint8_t> bytes = std::move(conn->deferred.front());
    conn->deferred.pop_front();
    wire::FrameView view;
    view.type = static_cast<wire::FrameType>(bytes[4]);
    view.payload = bytes.data() + wire::kFrameHeaderBytes;
    view.len = bytes.size() - wire::kFrameHeaderBytes;
    if (!HandleFrame(conn, view)) conn->closing = true;
  }
  if (!conn->busy && !conn->closing) ParseFrames(conn);
}

void Server::SendError(Connection* conn, wire::WireStatus status, const std::string& message) {
  wire::AppendErrorFrame(status, message, &conn->out);
}

void Server::FlushOut(Connection* conn) {
  while (conn->out_start < conn->out.size()) {
    ssize_t n = send(conn->fd, conn->out.data() + conn->out_start,
                     conn->out.size() - conn->out_start, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_start += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;  // POLLOUT resumes
    conn->dead = true;
    return;
  }
  conn->out.clear();
  conn->out_start = 0;
}

void Server::CloseStatement(Connection* conn, Statement* stmt) {
  (void)conn;
  if (stmt->lease.query != nullptr) cache_.Release(&stmt->lease);
}

void Server::DestroyConnection(Connection* conn) {
  for (auto& entry : conn->stmts) CloseStatement(conn, entry.second.get());
  conn->stmts.clear();
  if (conn->fd >= 0) close(conn->fd);
  delete conn;
}

}  // namespace aplus
