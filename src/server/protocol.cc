#include "server/protocol.h"

#include "util/logging.h"

namespace aplus {
namespace wire {

// The 1:1 numeric mapping WireStatus <-> QueryOutcome::Status relies on.
static_assert(static_cast<uint8_t>(WireStatus::kOverloaded) ==
                  static_cast<uint8_t>(QueryOutcome::Status::kOverloaded),
              "WireStatus must mirror QueryOutcome::Status values");
static_assert(static_cast<uint8_t>(WireStatus::kTimeout) ==
                  static_cast<uint8_t>(QueryOutcome::Status::kTimeout),
              "WireStatus must mirror QueryOutcome::Status values");

WireStatus ToWire(QueryOutcome::Status status) {
  return static_cast<WireStatus>(static_cast<uint8_t>(status));
}

QueryOutcome::Status FromWire(WireStatus status) {
  if (status == WireStatus::kProtocolError) return QueryOutcome::Status::kExecError;
  return static_cast<QueryOutcome::Status>(static_cast<uint8_t>(status));
}

const char* ToString(WireStatus status) {
  if (status == WireStatus::kProtocolError) return "PROTOCOL_ERROR";
  return aplus::ToString(FromWire(status));
}

// --- FrameWriter ---

void FrameWriter::BeginFrame(FrameType type) {
  frame_start_ = out_->size();
  out_->insert(out_->end(), {0, 0, 0, 0});  // length, patched by EndFrame
  out_->push_back(static_cast<uint8_t>(type));
}

void FrameWriter::EndFrame() {
  const size_t payload = out_->size() - frame_start_ - kFrameHeaderBytes;
  APLUS_CHECK_LE(payload, static_cast<size_t>(kMaxFrameBytes)) << "frame too large";
  uint32_t len = static_cast<uint32_t>(payload);
  std::memcpy(out_->data() + frame_start_, &len, sizeof(len));
}

void FrameWriter::PutU16(uint16_t v) { PutBytes(&v, sizeof(v)); }
void FrameWriter::PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
void FrameWriter::PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
void FrameWriter::PutF64(double v) { PutBytes(&v, sizeof(v)); }

void FrameWriter::PutBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out_->insert(out_->end(), p, p + len);
}

void FrameWriter::PutStr16(const std::string& s) {
  APLUS_CHECK_LE(s.size(), size_t{0xFFFF});
  PutU16(static_cast<uint16_t>(s.size()));
  PutBytes(s.data(), s.size());
}

void FrameWriter::PutStr32(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

// --- ExtractFrame / FrameReader ---

bool ExtractFrame(const uint8_t* data, size_t size, size_t* consumed, FrameView* view,
                  std::string* error) {
  *consumed = 0;
  if (size < kFrameHeaderBytes) return false;
  uint32_t len = 0;
  std::memcpy(&len, data, sizeof(len));
  if (len > kMaxFrameBytes) {
    *error = "frame length " + std::to_string(len) + " exceeds the " +
             std::to_string(kMaxFrameBytes) + "-byte limit";
    return false;
  }
  if (size < kFrameHeaderBytes + len) return false;  // incomplete: wait for more bytes
  view->type = static_cast<FrameType>(data[4]);
  view->payload = data + kFrameHeaderBytes;
  view->len = len;
  *consumed = kFrameHeaderBytes + len;
  return true;
}

bool FrameReader::Take(size_t n, const uint8_t** p) {
  if (!ok_ || len_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_ + pos_;
  pos_ += n;
  return true;
}

bool FrameReader::GetU8(uint8_t* v) {
  const uint8_t* p;
  if (!Take(1, &p)) return false;
  *v = *p;
  return true;
}

bool FrameReader::GetU16(uint16_t* v) {
  const uint8_t* p;
  if (!Take(sizeof(*v), &p)) return false;
  std::memcpy(v, p, sizeof(*v));
  return true;
}

bool FrameReader::GetU32(uint32_t* v) {
  const uint8_t* p;
  if (!Take(sizeof(*v), &p)) return false;
  std::memcpy(v, p, sizeof(*v));
  return true;
}

bool FrameReader::GetU64(uint64_t* v) {
  const uint8_t* p;
  if (!Take(sizeof(*v), &p)) return false;
  std::memcpy(v, p, sizeof(*v));
  return true;
}

bool FrameReader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool FrameReader::GetF64(double* v) {
  const uint8_t* p;
  if (!Take(sizeof(*v), &p)) return false;
  std::memcpy(v, p, sizeof(*v));
  return true;
}

bool FrameReader::GetStr16(std::string* s) {
  uint16_t len = 0;
  if (!GetU16(&len)) return false;
  const uint8_t* p;
  if (!Take(len, &p)) return false;
  s->assign(reinterpret_cast<const char*>(p), len);
  return true;
}

bool FrameReader::GetStr32(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  const uint8_t* p;
  if (!Take(len, &p)) return false;
  s->assign(reinterpret_cast<const char*>(p), len);
  return true;
}

// --- Composite frames ---

namespace {

// Storage class of a column type inside RowBatch (which payload vector
// carries the cells). Mirrors RowBatch::AppendNull.
enum class Storage { kInts, kDoubles, kStrings };

Storage StorageOf(ValueType type) {
  switch (type) {
    case ValueType::kDouble:
      return Storage::kDoubles;
    case ValueType::kString:
      return Storage::kStrings;
    default:
      return Storage::kInts;
  }
}

}  // namespace

void AppendRowsFrame(const RowBatch& batch, std::vector<uint8_t>* out) {
  FrameWriter w(out);
  w.BeginFrame(FrameType::kRows);
  const uint32_t num_rows = batch.num_rows();
  const uint32_t num_cols = static_cast<uint32_t>(batch.num_columns());
  w.PutU32(num_rows);
  w.PutU32(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    const RowBatch::Column& col = batch.column(c);
    w.PutU8(static_cast<uint8_t>(col.type));
    uint8_t has_nulls = 0;
    for (uint32_t r = 0; r < num_rows; ++r) has_nulls |= col.nulls[r];
    w.PutU8(has_nulls);
    if (has_nulls) w.PutBytes(col.nulls.data(), num_rows);
    switch (StorageOf(col.type)) {
      case Storage::kInts:
        w.PutBytes(col.ints.data(), static_cast<size_t>(num_rows) * sizeof(int64_t));
        break;
      case Storage::kDoubles:
        w.PutBytes(col.doubles.data(), static_cast<size_t>(num_rows) * sizeof(double));
        break;
      case Storage::kStrings:
        // Dictionary pointers dereference here, at serialization time —
        // the bytes go on the wire, so the frame stays valid however
        // long the client holds it.
        for (uint32_t r = 0; r < num_rows; ++r) {
          const std::string* s = col.strings[r];
          if (s == nullptr) {
            w.PutU32(0);
          } else {
            w.PutU32(static_cast<uint32_t>(s->size()));
            w.PutBytes(s->data(), s->size());
          }
        }
        break;
    }
  }
  w.EndFrame();
}

void AppendErrorFrame(WireStatus status, const std::string& message,
                      std::vector<uint8_t>* out) {
  FrameWriter w(out);
  w.BeginFrame(FrameType::kError);
  w.PutU8(static_cast<uint8_t>(status));
  w.PutStr32(message);
  w.EndFrame();
}

void AppendDoneFrame(bool more, uint64_t count, uint64_t rows, double seconds,
                     std::vector<uint8_t>* out) {
  FrameWriter w(out);
  w.BeginFrame(FrameType::kDone);
  w.PutU8(static_cast<uint8_t>(WireStatus::kOk));
  w.PutU8(more ? 1 : 0);
  w.PutU64(count);
  w.PutU64(rows);
  w.PutF64(seconds);
  w.EndFrame();
}

bool DecodeRowsPayload(const uint8_t* payload, size_t len, DecodedRows* out,
                       std::string* error) {
  FrameReader r(payload, len);
  uint32_t num_rows = 0;
  uint32_t num_cols = 0;
  if (!r.GetU32(&num_rows) || !r.GetU32(&num_cols)) {
    *error = "truncated ROWS header";
    return false;
  }
  if (out->col_types.empty()) {
    out->col_types.resize(num_cols, ValueType::kNull);
  } else if (out->col_types.size() != num_cols) {
    *error = "ROWS column count changed mid-result";
    return false;
  }
  const size_t first_new = out->rows.size();
  out->rows.resize(first_new + num_rows);
  for (size_t i = first_new; i < out->rows.size(); ++i) out->rows[i].resize(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    uint8_t type_tag = 0;
    uint8_t has_nulls = 0;
    if (!r.GetU8(&type_tag) || !r.GetU8(&has_nulls)) {
      *error = "truncated ROWS column header";
      return false;
    }
    ValueType type = static_cast<ValueType>(type_tag);
    if (out->col_types[c] == ValueType::kNull) out->col_types[c] = type;
    std::vector<uint8_t> nulls(num_rows, 0);
    if (has_nulls) {
      for (uint32_t i = 0; i < num_rows; ++i) {
        if (!r.GetU8(&nulls[i])) {
          *error = "truncated ROWS null bitmap";
          return false;
        }
      }
    }
    for (uint32_t i = 0; i < num_rows; ++i) {
      Value v;
      switch (StorageOf(type)) {
        case Storage::kInts: {
          int64_t x = 0;
          if (!r.GetI64(&x)) {
            *error = "truncated ROWS int column";
            return false;
          }
          v = type == ValueType::kBool ? Value::Bool(x != 0)
              : type == ValueType::kCategory ? Value::Category(x)
                                             : Value::Int64(x);
          break;
        }
        case Storage::kDoubles: {
          double x = 0;
          if (!r.GetF64(&x)) {
            *error = "truncated ROWS double column";
            return false;
          }
          v = Value::Double(x);
          break;
        }
        case Storage::kStrings: {
          std::string s;
          if (!r.GetStr32(&s)) {
            *error = "truncated ROWS string column";
            return false;
          }
          v = Value::String(std::move(s));
          break;
        }
      }
      out->rows[first_new + i][c] = nulls[i] ? Value::Null() : std::move(v);
    }
  }
  return true;
}

}  // namespace wire
}  // namespace aplus
