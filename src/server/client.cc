#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aplus {

namespace {

void AppendParam(const std::string& name, const Value& value, wire::FrameWriter* w) {
  w->PutStr16(name);
  switch (value.type()) {
    case ValueType::kDouble:
      w->PutU8(static_cast<uint8_t>(wire::ParamTag::kDouble));
      w->PutF64(value.AsDouble());
      break;
    case ValueType::kString:
      w->PutU8(static_cast<uint8_t>(wire::ParamTag::kString));
      w->PutStr32(value.AsString());
      break;
    case ValueType::kBool:
      w->PutU8(static_cast<uint8_t>(wire::ParamTag::kBool));
      w->PutU8(value.AsBool() ? 1 : 0);
      break;
    default:  // int64 and categories travel as i64
      w->PutU8(static_cast<uint8_t>(wire::ParamTag::kInt64));
      w->PutI64(value.AsInt64());
      break;
  }
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host;
    Close();
    return false;
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    Close();
    return false;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  send_scratch_.clear();
  wire::FrameWriter w(&send_scratch_);
  w.BeginFrame(wire::FrameType::kHello);
  w.PutU32(wire::kProtocolVersion);
  w.EndFrame();
  if (!SendRaw(send_scratch_.data(), send_scratch_.size())) {
    *error = "HELLO send failed";
    Close();
    return false;
  }
  wire::FrameType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(&type, &payload, error)) {
    Close();
    return false;
  }
  if (type == wire::FrameType::kError) {
    wire::FrameReader r(payload.data(), payload.size());
    uint8_t status = 0;
    std::string message;
    r.GetU8(&status);
    r.GetStr32(&message);
    *error = "HELLO rejected: " + message;
    Close();
    return false;
  }
  if (type != wire::FrameType::kHelloOk) {
    *error = "unexpected HELLO response frame";
    Close();
    return false;
  }
  wire::FrameReader r(payload.data(), payload.size());
  uint32_t version = 0;
  uint32_t flags = 0;
  if (!r.GetU32(&version) || !r.GetU32(&flags)) {
    *error = "malformed HELLO_OK";
    Close();
    return false;
  }
  server_batching_ = (flags & 1u) != 0;
  return true;
}

bool Client::SendRaw(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool Client::ReadFrameRaw(std::vector<uint8_t>* frame, std::string* error) {
  while (true) {
    wire::FrameView view;
    size_t consumed = 0;
    std::string extract_error;
    if (wire::ExtractFrame(in_.data(), in_.size(), &consumed, &view, &extract_error)) {
      frame->assign(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(consumed));
      in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(consumed));
      return true;
    }
    if (!extract_error.empty()) {
      *error = extract_error;
      return false;
    }
    uint8_t buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      *error = n == 0 ? "connection closed by server" : std::strerror(errno);
      return false;
    }
    in_.insert(in_.end(), buf, buf + n);
  }
}

bool Client::ReadFrame(wire::FrameType* type, std::vector<uint8_t>* payload,
                       std::string* error) {
  std::vector<uint8_t> frame;
  if (!ReadFrameRaw(&frame, error)) return false;
  *type = static_cast<wire::FrameType>(frame[4]);
  payload->assign(frame.begin() + wire::kFrameHeaderBytes, frame.end());
  return true;
}

Client::PreparedInfo Client::Prepare(const std::string& text) {
  PreparedInfo info;
  send_scratch_.clear();
  wire::FrameWriter w(&send_scratch_);
  w.BeginFrame(wire::FrameType::kPrepare);
  w.PutStr32(text);
  w.EndFrame();
  if (!SendRaw(send_scratch_.data(), send_scratch_.size())) {
    info.status = wire::WireStatus::kProtocolError;
    info.error = "send failed";
    return info;
  }
  wire::FrameType type;
  std::vector<uint8_t> payload;
  std::string error;
  if (!ReadFrame(&type, &payload, &error)) {
    info.status = wire::WireStatus::kProtocolError;
    info.error = error;
    return info;
  }
  wire::FrameReader r(payload.data(), payload.size());
  if (type == wire::FrameType::kError) {
    uint8_t status = 0;
    r.GetU8(&status);
    r.GetStr32(&info.error);
    info.status = static_cast<wire::WireStatus>(status);
    return info;
  }
  if (type != wire::FrameType::kPrepared) {
    info.status = wire::WireStatus::kProtocolError;
    info.error = "unexpected PREPARE response frame";
    return info;
  }
  uint32_t num_params = 0;
  r.GetU32(&info.stmt_id);
  r.GetU32(&num_params);
  for (uint32_t i = 0; i < num_params && r.ok(); ++i) {
    std::string name;
    r.GetStr16(&name);
    info.param_names.push_back(std::move(name));
  }
  uint32_t num_cols = 0;
  r.GetU32(&num_cols);
  for (uint32_t i = 0; i < num_cols && r.ok(); ++i) {
    uint8_t type_tag = 0;
    std::string name;
    r.GetU8(&type_tag);
    r.GetStr16(&name);
    info.columns.emplace_back(static_cast<ValueType>(type_tag), std::move(name));
  }
  if (!r.ok()) {
    info.status = wire::WireStatus::kProtocolError;
    info.error = "malformed PREPARED frame";
  }
  return info;
}

Client::Result Client::ReadResult() {
  Result result;
  while (true) {
    wire::FrameType type;
    std::vector<uint8_t> payload;
    std::string error;
    if (!ReadFrame(&type, &payload, &error)) {
      result.status = wire::WireStatus::kProtocolError;
      result.error = error;
      return result;
    }
    wire::FrameReader r(payload.data(), payload.size());
    switch (type) {
      case wire::FrameType::kRows: {
        std::string decode_error;
        if (!wire::DecodeRowsPayload(payload.data(), payload.size(), &result.rows,
                                     &decode_error)) {
          result.status = wire::WireStatus::kProtocolError;
          result.error = decode_error;
          return result;
        }
        break;
      }
      case wire::FrameType::kDone: {
        uint8_t status = 0;
        uint8_t more = 0;
        r.GetU8(&status);
        r.GetU8(&more);
        r.GetU64(&result.count);
        r.GetU64(&result.rows_delivered);
        r.GetF64(&result.seconds);
        result.status = static_cast<wire::WireStatus>(status);
        result.more = more != 0;
        if (!r.ok()) {
          result.status = wire::WireStatus::kProtocolError;
          result.error = "malformed DONE frame";
        }
        return result;
      }
      case wire::FrameType::kError: {
        uint8_t status = 0;
        r.GetU8(&status);
        r.GetStr32(&result.error);
        result.status = static_cast<wire::WireStatus>(status);
        return result;
      }
      default:
        result.status = wire::WireStatus::kProtocolError;
        result.error = "unexpected response frame";
        return result;
    }
  }
}

Client::Result Client::Execute(uint32_t stmt_id,
                               const std::vector<std::pair<std::string, Value>>& params,
                               uint32_t deadline_millis, uint64_t max_rows) {
  send_scratch_.clear();
  wire::FrameWriter w(&send_scratch_);
  w.BeginFrame(wire::FrameType::kExecute);
  w.PutU32(stmt_id);
  w.PutU32(deadline_millis);
  w.PutU64(max_rows);
  w.PutU32(static_cast<uint32_t>(params.size()));
  for (const auto& param : params) AppendParam(param.first, param.second, &w);
  w.EndFrame();
  if (!SendRaw(send_scratch_.data(), send_scratch_.size())) {
    Result result;
    result.status = wire::WireStatus::kProtocolError;
    result.error = "send failed";
    return result;
  }
  return ReadResult();
}

Client::Result Client::Fetch(uint32_t stmt_id, uint64_t max_rows) {
  send_scratch_.clear();
  wire::FrameWriter w(&send_scratch_);
  w.BeginFrame(wire::FrameType::kFetch);
  w.PutU32(stmt_id);
  w.PutU64(max_rows);
  w.EndFrame();
  if (!SendRaw(send_scratch_.data(), send_scratch_.size())) {
    Result result;
    result.status = wire::WireStatus::kProtocolError;
    result.error = "send failed";
    return result;
  }
  return ReadResult();
}

void Client::Cancel() {
  // Built into a local buffer: Cancel may run from a second thread while
  // Execute's thread owns send_scratch_.
  std::vector<uint8_t> frame;
  wire::FrameWriter w(&frame);
  w.BeginFrame(wire::FrameType::kCancel);
  w.EndFrame();
  SendRaw(frame.data(), frame.size());
}

bool Client::CloseStatement(uint32_t stmt_id, std::string* error) {
  send_scratch_.clear();
  wire::FrameWriter w(&send_scratch_);
  w.BeginFrame(wire::FrameType::kClose);
  w.PutU32(stmt_id);
  w.EndFrame();
  if (!SendRaw(send_scratch_.data(), send_scratch_.size())) {
    *error = "send failed";
    return false;
  }
  wire::FrameType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(&type, &payload, error)) return false;
  if (type != wire::FrameType::kClosed) {
    *error = "unexpected CLOSE response frame";
    return false;
  }
  return true;
}

Client::Stats Client::GetStats() {
  Stats stats;
  send_scratch_.clear();
  wire::FrameWriter w(&send_scratch_);
  w.BeginFrame(wire::FrameType::kStats);
  w.EndFrame();
  if (!SendRaw(send_scratch_.data(), send_scratch_.size())) {
    stats.error = "send failed";
    return stats;
  }
  wire::FrameType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(&type, &payload, &stats.error)) return stats;
  if (type != wire::FrameType::kStatsResult) {
    stats.error = "unexpected STATS response frame";
    return stats;
  }
  wire::FrameReader r(payload.data(), payload.size());
  r.GetU64(&stats.cache_hits);
  r.GetU64(&stats.cache_misses);
  r.GetU64(&stats.cache_entries);
  r.GetU64(&stats.queries);
  r.GetU64(&stats.batch_saved);
  stats.ok = r.ok();
  if (!stats.ok) stats.error = "malformed STATS_RESULT frame";
  return stats;
}

}  // namespace aplus
