#ifndef APLUS_SERVER_CLIENT_H_
#define APLUS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "storage/value.h"

namespace aplus {

// Minimal blocking wire-protocol client (aplus_loadgen, server tests,
// and a reference for third-party drivers — docs/PROTOCOL.md). One
// socket, one outstanding request; Cancel() is the only call that is
// safe from a second thread while Execute() blocks on the response.
class Client {
 public:
  struct Result {
    wire::WireStatus status = wire::WireStatus::kOk;
    std::string error;
    wire::DecodedRows rows;       // decoded kRows payloads, in order
    uint64_t count = 0;           // DONE.count (matches enumerated)
    uint64_t rows_delivered = 0;  // DONE.rows (rows in THIS response)
    double seconds = 0.0;
    bool more = false;  // FETCH can page further rows

    bool ok() const { return status == wire::WireStatus::kOk; }
  };

  struct PreparedInfo {
    wire::WireStatus status = wire::WireStatus::kOk;
    std::string error;
    uint32_t stmt_id = 0;
    std::vector<std::string> param_names;
    std::vector<std::pair<ValueType, std::string>> columns;

    bool ok() const { return status == wire::WireStatus::kOk; }
  };

  struct Stats {
    bool ok = false;
    std::string error;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_entries = 0;
    uint64_t queries = 0;
    uint64_t batch_saved = 0;
  };

  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connect + HELLO handshake. Returns false with *error set on refusal
  // or version mismatch.
  bool Connect(const std::string& host, int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }
  // HELLO_OK flags bit 0: the server groups identical concurrent
  // executes (APLUS_SERVER_BATCH).
  bool server_batching() const { return server_batching_; }

  PreparedInfo Prepare(const std::string& text);
  // deadline_millis 0 = server default; max_rows 0 = everything.
  Result Execute(uint32_t stmt_id, const std::vector<std::pair<std::string, Value>>& params,
                 uint32_t deadline_millis = 0, uint64_t max_rows = 0);
  Result Fetch(uint32_t stmt_id, uint64_t max_rows = 0);
  // Fire-and-forget: asks the server to cancel this connection's
  // in-flight execute. No response frame.
  void Cancel();
  bool CloseStatement(uint32_t stmt_id, std::string* error);
  Stats GetStats();

  // --- Raw access (protocol fuzz tests) ---

  bool SendRaw(const void* data, size_t len);
  // Reads the next complete frame (header + payload) into *frame.
  // Returns false on EOF/error/oversized.
  bool ReadFrameRaw(std::vector<uint8_t>* frame, std::string* error);

 private:
  bool ReadFrame(wire::FrameType* type, std::vector<uint8_t>* payload, std::string* error);
  // Reads response frames until DONE/ERROR, decoding kRows into
  // result.rows.
  Result ReadResult();

  int fd_ = -1;
  bool server_batching_ = false;
  std::vector<uint8_t> in_;  // buffered unparsed bytes
  std::vector<uint8_t> send_scratch_;
};

}  // namespace aplus

#endif  // APLUS_SERVER_CLIENT_H_
