#pragma once

// Admission control for query execution: a bounded slot gate that caps the
// number of concurrently running Execute() calls and holds a bounded FIFO
// queue of waiters. This is the seam a server front-end (aplusd) multiplexes
// client requests onto — a query that cannot be admitted fails fast with
// OVERLOADED instead of piling more threads onto a saturated pool.
//
// Disabled (max_concurrent == 0) admission is a single branch; no locks.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace aplus {

struct AdmissionConfig {
  // Maximum Execute() calls running at once; 0 disables admission control.
  int max_concurrent = 0;
  // Maximum waiters queued behind the running set; a full queue rejects
  // immediately.
  int max_queue = 0;
  // How long a waiter may sit in the queue before giving up; <= 0 means a
  // full running set with an empty queue allowance rejects immediately.
  int64_t queue_timeout_ms = 0;
};

class AdmissionController {
 public:
  enum class Result {
    kAdmitted,   // slot acquired; caller must Release() when done
    kRejected,   // queue full (or zero-capacity queue and all slots busy)
    kTimedOut    // waited queue_timeout_ms without a slot freeing
  };

  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Replaces the configuration. Safe to call while queries run; already
  // admitted queries keep their slots, waiters re-evaluate on wake.
  void Configure(const AdmissionConfig& config);

  bool enabled() const;

  // Blocks until a slot is free (FIFO order among waiters), the queue
  // times out, or the queue is full. kAdmitted must be paired with
  // Release().
  Result Admit();
  void Release();

  // Introspection for tests and server stats.
  int running() const;
  int queued() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  AdmissionConfig config_;
  int running_ = 0;
  uint64_t next_ticket_ = 0;
  std::deque<uint64_t> waiters_;  // FIFO of tickets still waiting
};

// RAII slot holder: releases on destruction iff admitted.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* controller) : controller_(controller) {
    if (controller_ != nullptr && controller_->enabled()) {
      result_ = controller_->Admit();
      holds_slot_ = result_ == AdmissionController::Result::kAdmitted;
    }
  }
  ~AdmissionSlot() {
    if (holds_slot_) controller_->Release();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  AdmissionController::Result result() const { return result_; }
  bool admitted() const {
    return result_ == AdmissionController::Result::kAdmitted;
  }

 private:
  AdmissionController* controller_;
  AdmissionController::Result result_ = AdmissionController::Result::kAdmitted;
  bool holds_slot_ = false;
};

}  // namespace aplus
