#include "core/admission.h"

#include <algorithm>
#include <chrono>

namespace aplus {

void AdmissionController::Configure(const AdmissionConfig& config) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
  }
  cv_.notify_all();
}

bool AdmissionController::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.max_concurrent > 0;
}

AdmissionController::Result AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (config_.max_concurrent <= 0) {
    ++running_;
    return Result::kAdmitted;
  }
  if (running_ < config_.max_concurrent && waiters_.empty()) {
    ++running_;
    return Result::kAdmitted;
  }
  if (static_cast<int>(waiters_.size()) >= config_.max_queue ||
      config_.queue_timeout_ms <= 0) {
    return Result::kRejected;
  }
  const uint64_t ticket = next_ticket_++;
  waiters_.push_back(ticket);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.queue_timeout_ms);
  while (true) {
    // FIFO: only the front waiter may take a freed slot.
    if (!waiters_.empty() && waiters_.front() == ticket &&
        (config_.max_concurrent <= 0 || running_ < config_.max_concurrent)) {
      waiters_.pop_front();
      ++running_;
      cv_.notify_all();  // the next waiter may now be at the front
      return Result::kAdmitted;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-check once: the slot may have freed in the same instant.
      if (!waiters_.empty() && waiters_.front() == ticket &&
          running_ < config_.max_concurrent) {
        waiters_.pop_front();
        ++running_;
        cv_.notify_all();
        return Result::kAdmitted;
      }
      waiters_.erase(std::find(waiters_.begin(), waiters_.end(), ticket));
      cv_.notify_all();
      return Result::kTimedOut;
    }
  }
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(waiters_.size());
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

}  // namespace aplus
