#include "core/database.h"

#include <cstdlib>

#include "optimizer/plan_printer.h"
#include "storage/segment.h"
#include "util/epoch.h"
#include "util/logging.h"

namespace aplus {

namespace {

int IntFromEnvOr(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  long v = std::strtol(env, nullptr, 10);
  if (v < 0) return fallback;
  return static_cast<int>(v);
}

int64_t Int64FromEnvOr(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (end == env || v < 0) return fallback;
  return static_cast<int64_t>(v);
}

}  // namespace

Database::Database(Graph graph) : graph_(std::move(graph)) {
  store_ = std::make_unique<IndexStore>(&graph_);
  maintainer_ = std::make_unique<Maintainer>(&graph_, store_.get());
  // Optional admission control (disabled unless APLUS_MAX_CONCURRENT is
  // set): queue depth defaults to the slot count, queue wait to 100 ms.
  const int max_concurrent = IntFromEnvOr("APLUS_MAX_CONCURRENT", 0);
  if (max_concurrent > 0) {
    AdmissionConfig config;
    config.max_concurrent = max_concurrent;
    config.max_queue = IntFromEnvOr("APLUS_ADMISSION_QUEUE", max_concurrent);
    config.queue_timeout_ms = IntFromEnvOr("APLUS_ADMISSION_TIMEOUT_MS", 100);
    admission_.Configure(config);
  }
}

Database::~Database() = default;

double Database::BuildPrimaryIndexes(const IndexConfig& config) {
  APLUS_CHECK(!segment_backed()) << "segment-backed primary indexes are immutable";
  return store_->BuildPrimary(config);
}

VpIndex* Database::CreateVpIndex(const std::string& name, const Predicate& pred,
                                 const IndexConfig& config, Direction dir, double* seconds) {
  if (segment_backed()) {
    APLUS_LOG(Error) << "secondary indexes are unsupported on a segment-backed database";
    return nullptr;
  }
  OneHopViewDef view;
  view.name = name;
  view.pred = pred;
  return store_->CreateVpIndex(view, config, dir, seconds);
}

EpIndex* Database::CreateEpIndex(const std::string& name, EpKind kind, const Predicate& pred,
                                 const IndexConfig& config, double* seconds,
                                 size_t budget_bytes) {
  if (segment_backed()) {
    APLUS_LOG(Error) << "secondary indexes are unsupported on a segment-backed database";
    return nullptr;
  }
  TwoHopViewDef view;
  view.name = name;
  view.kind = kind;
  view.pred = pred;
  return store_->CreateEpIndex(view, config, seconds, budget_bytes);
}

bool Database::SealToSegment(const std::string& path, std::string* error) {
  if (concurrent_ingest_active()) {
    if (error != nullptr) *error = "seal: concurrent ingest is active";
    return false;
  }
  if (store_->HasPendingUpdates()) store_->FlushAll();
  return SealSegment(graph_, *store_, path, error);
}

std::unique_ptr<Database> Database::OpenFromSegment(const std::string& path, std::string* error) {
  std::unique_ptr<Segment> segment = aplus::OpenSegment(path, error);
  if (segment == nullptr) return nullptr;
  // The graph moves into the database; index page views point into the
  // mapping, which stays owned by the segment.
  std::unique_ptr<Database> db(new Database(std::move(segment->graph())));
  for (Direction dir : {Direction::kFwd, Direction::kBwd}) {
    SegmentIndexPart& part = segment->part(dir);
    db->store_->AttachSegment(dir, part.config, std::move(part.pages), part.num_edges);
  }
  db->segment_ = std::move(segment);
  return db;
}

DdlResult Database::ExecuteDdl(const std::string& command) {
  DdlResult result;
  if (segment_backed()) {
    result.message = "segment-backed database is immutable: DDL rejected";
    return result;
  }
  DdlCommand cmd = ParseDdl(command, graph_.catalog());
  if (!cmd.ok()) {
    result.message = cmd.error;
    return result;
  }
  switch (cmd.kind) {
    case DdlCommand::Kind::kReconfigure: {
      result.seconds = BuildPrimaryIndexes(cmd.config);
      result.ok = true;
      result.message = "primary indexes reconfigured: " + cmd.config.ToString(graph_.catalog());
      return result;
    }
    case DdlCommand::Kind::kCreateVp: {
      double total = 0.0;
      double seconds = 0.0;
      if (cmd.fwd) {
        CreateVpIndex(cmd.view_name, cmd.pred, cmd.config, Direction::kFwd, &seconds);
        total += seconds;
      }
      if (cmd.bwd) {
        CreateVpIndex(cmd.view_name, cmd.pred, cmd.config, Direction::kBwd, &seconds);
        total += seconds;
      }
      result.seconds = total;
      result.ok = true;
      result.message = "created vertex-partitioned index " + cmd.view_name;
      return result;
    }
    case DdlCommand::Kind::kCreateEp: {
      CreateEpIndex(cmd.view_name, cmd.ep_kind, cmd.pred, cmd.config, &result.seconds);
      result.ok = true;
      result.message = "created edge-partitioned index " + cmd.view_name + " (" +
                       std::string(ToString(cmd.ep_kind)) + ")";
      return result;
    }
  }
  result.message = "unreachable";
  return result;
}

DpOptimizer* Database::CachedOptimizer() {
  // The optimizer's catalog statistics are a cost model, not a
  // correctness input, so ingest does not have to rebuild it per edge:
  // refresh on DDL (version bump), on shrinkage, or once the graph has
  // grown enough (2x) that its cardinality estimates are meaningfully
  // stale. This keeps Prepare cheap while updates stream in.
  uint64_t num_edges = graph_.num_edges();
  bool stale = optimizer_ == nullptr || optimizer_store_version_ != store_->version() ||
               num_edges < optimizer_num_edges_ || num_edges > optimizer_num_edges_ * 2;
  if (stale) {
    optimizer_ = std::make_unique<DpOptimizer>(&graph_, store_.get());
    optimizer_store_version_ = store_->version();
    optimizer_num_edges_ = num_edges;
  }
  return optimizer_.get();
}

void Database::BeginConcurrentIngest(const ConcurrentIngestOptions& options) {
  APLUS_CHECK(!segment_backed()) << "concurrent ingest is unsupported on a segment-backed database";
  APLUS_CHECK(!concurrent_ingest_active()) << "concurrent ingest is already active";
  APLUS_CHECK_GE(options.max_vertices, graph_.num_vertices());
  APLUS_CHECK_GE(options.max_edges, graph_.num_edges());
  // Start from exact indexes so the run+delta views only ever lag by the
  // currently buffered deltas.
  if (store_->HasPendingUpdates()) store_->FlushAll();
  graph_.ReserveForIngest(options.max_vertices, options.max_edges);
  store_->PrepareForConcurrentIngest(options.max_vertices);
  maintainer_->EnterConcurrentMode(options.background_merge);
  ingest_active_.store(true, std::memory_order_release);
}

void Database::EndConcurrentIngest() {
  APLUS_CHECK(concurrent_ingest_active()) << "concurrent ingest is not active";
  // Flush deltas first (ExitConcurrentMode), then wait for every reader
  // to drain so the retired runs can be freed.
  maintainer_->ExitConcurrentMode();
  EpochManager::Global().DrainAndReclaimAll();
  graph_.EndIngestReservation();
  ingest_active_.store(false, std::memory_order_release);
}

std::unique_ptr<PreparedQuery> Database::Prepare(const std::string& text,
                                                 const PrepareOptions& options) {
  std::unique_ptr<PreparedQuery> prepared(new PreparedQuery(this));
  prepared->normalized_text_ = NormalizeQueryText(text);
  ParsedCypher parsed = ParseCypher(text, graph_.catalog());
  if (!parsed.ok()) {
    prepared->status_ = QueryOutcome::Status::kParseError;
    prepared->error_ = parsed.error;
    return prepared;
  }
  prepared->query_ = std::move(parsed.query);
  prepared->has_limit_ = parsed.has_limit;
  prepared->limit_ = parsed.limit;
  for (const CypherParam& param : parsed.params) {
    PreparedQuery::ParamInfo info;
    info.name = param.name;
    info.expected = param.expected;
    info.key = param.key;
    info.pin_var = param.pin_var;
    prepared->params_.push_back(std::move(info));
  }
  // Placeholder-pin every `<var>.ID = $p` vertex so the optimizer plans
  // around a pinned vertex; Bind patches the literal id into the plan.
  for (int v = 0; v < prepared->query_.num_vertices(); ++v) {
    if (prepared->query_.vertex(v).bound_param >= 0) {
      prepared->query_.mutable_vertex(v).bound = 0;
    }
  }
  // --- Result-path construction: projected input columns plus the sink
  // stage chain Project -> [GroupedAggregate] -> [Sort] -> [Limit]. ---
  auto type_of_ref = [this](const QueryPropRef& ref) {
    return ref.is_id ? ValueType::kInt64 : graph_.catalog().property(ref.key).type;
  };
  auto project_col = [&type_of_ref](const ReturnItem& item) {
    return ProjectColumn{item.name, item.ref, type_of_ref(item.ref)};
  };
  const bool has_agg = parsed.has_aggregate;
  const bool has_order = !parsed.order_by.empty();
  const bool distinct = parsed.distinct;  // never true with has_agg (parser rejects)
  // Bare `RETURN COUNT(*)` (no grouping, no ordering): the answer is the
  // match count the counting sink already maintains, so the plan gets a
  // stage-less, column-less ProjectSinkOp (no row materialization at
  // all) and Execute synthesizes the single output row afterwards.
  const bool count_star_only = has_agg && !has_order && parsed.returns.size() == 1 &&
                               parsed.returns[0].agg == AggFn::kCount &&
                               parsed.returns[0].star;
  std::vector<ProjectColumn> inputs;   // what the ProjectSinkOp materializes
  std::vector<std::unique_ptr<SinkStage>> stages;
  if (count_star_only) {
    ProjectColumn out_col;
    out_col.name = parsed.returns[0].name;
    out_col.type = ValueType::kInt64;
    prepared->columns_.push_back(std::move(out_col));
    prepared->count_star_only_ = true;
    prepared->count_row_.Init(prepared->columns_, 1);
  } else if (!has_agg && !has_order && !distinct) {
    // Plain projection (or a bare-MATCH count): the input columns are the
    // output columns, no stages, LIMIT stays on the atomic-budget fast
    // path.
    for (const ReturnItem& item : parsed.returns) inputs.push_back(project_col(item));
    prepared->columns_ = inputs;
  } else {
    std::vector<ProjectColumn> out_schema;  // one column per RETURN item
    if (has_agg) {
      // Inputs deduplicate by reference: group keys and aggregate
      // arguments sharing a ref read one projected column.
      auto input_index_of = [&inputs, &project_col](const ReturnItem& item) {
        for (size_t i = 0; i < inputs.size(); ++i) {
          if (inputs[i].ref == item.ref) return static_cast<int>(i);
        }
        inputs.push_back(project_col(item));
        return static_cast<int>(inputs.size() - 1);
      };
      std::vector<AggSpec> specs;
      for (const ReturnItem& item : parsed.returns) {
        AggSpec spec;
        spec.fn = item.agg;
        spec.name = item.name;
        if (item.agg == AggFn::kNone) {
          spec.input = input_index_of(item);
          spec.out_type = type_of_ref(item.ref);
        } else if (item.star) {
          spec.input = -1;  // COUNT(*): no argument column
          spec.out_type = ValueType::kInt64;
        } else {
          spec.input = input_index_of(item);
          ValueType in = type_of_ref(item.ref);
          switch (item.agg) {
            case AggFn::kCount:
              spec.out_type = ValueType::kInt64;
              break;
            case AggFn::kAvg:
              spec.out_type = ValueType::kDouble;
              break;
            default:  // SUM / MIN / MAX keep the argument type
              spec.out_type = in;
              break;
          }
        }
        ProjectColumn out_col;
        out_col.name = spec.name;
        out_col.type = spec.out_type;
        out_schema.push_back(std::move(out_col));
        specs.push_back(std::move(spec));
      }
      std::vector<ValueType> input_types;
      input_types.reserve(inputs.size());
      for (const ProjectColumn& col : inputs) input_types.push_back(col.type);
      stages.push_back(std::make_unique<GroupedAggregateStage>(
          std::move(specs), std::move(input_types), options.batch_rows,
          &prepared->controls_));
    } else {
      // ORDER BY over a plain projection: inputs stay in RETURN order
      // (they are the output schema), no dedup.
      for (const ReturnItem& item : parsed.returns) {
        inputs.push_back(project_col(item));
        ProjectColumn out_col;
        out_col.name = item.name;
        out_col.type = type_of_ref(item.ref);
        out_schema.push_back(std::move(out_col));
      }
    }
    if (distinct) {
      // Dedup precedes ordering/limit: Project -> DISTINCT -> [Sort] ->
      // [Limit]. The stage is the all-group-keys degenerate aggregation,
      // so worker partials merge exactly under parallelism.
      stages.push_back(std::make_unique<DistinctStage>(out_schema, options.batch_rows,
                                                       &prepared->controls_));
    }
    if (has_order) {
      // The sort owns any LIMIT (top-k partial_sort emits exactly the
      // capped rows); a trailing LimitStage would only re-copy them.
      std::vector<SortKeySpec> keys;
      for (const OrderByItem& order : parsed.order_by) {
        keys.push_back(SortKeySpec{order.item, order.desc});
      }
      stages.push_back(std::make_unique<SortStage>(
          out_schema, std::move(keys), parsed.has_limit ? parsed.limit : SortStage::kNoLimit,
          options.batch_rows, &prepared->controls_));
    } else if (parsed.has_limit) {
      // LIMIT over an unordered aggregation: caps the emitted groups.
      stages.push_back(std::make_unique<LimitStage>(out_schema, parsed.limit,
                                                    options.batch_rows,
                                                    &prepared->controls_));
    }
    prepared->columns_ = std::move(out_schema);
  }
  prepared->has_stages_ = !stages.empty();
  // During concurrent ingest the probe paths merge deltas themselves;
  // flushing here would serialize Prepare against the ingest thread.
  if (!concurrent_ingest_active() && store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  auto sink = std::make_unique<ProjectSinkOp>(&graph_, std::move(inputs), options.batch_rows,
                                              &prepared->controls_, std::move(stages));
  std::unique_ptr<Plan> plan = optimizer->Optimize(prepared->query_, std::move(sink));
  if (plan == nullptr) {
    prepared->status_ = QueryOutcome::Status::kPlanError;
    prepared->error_ = "no plan found (disconnected or unsupported query)";
    return prepared;
  }
  prepared->plan_text_ = RenderPlanTree(
      prepared->query_, graph_.catalog(), optimizer->last_steps(),
      static_cast<ProjectSinkOp*>(plan->sink(0))->ChainLines());
  plan->SetExecContext(&prepared->controls_.token, &prepared->controls_.budget);
  prepared->plan_ = std::move(plan);
  prepared->RefreshSlots();
  prepared->store_version_ = store_->version();
  prepared->num_edges_ = graph_.num_edges();
  return prepared;
}

std::unique_ptr<PreparedQuery> Database::ClonePrepared(const PreparedQuery& src) {
  APLUS_CHECK(src.ok()) << "cannot clone a failed prepare: " << src.error();
  APLUS_CHECK(src.plan_ != nullptr);
  std::unique_ptr<PreparedQuery> clone(new PreparedQuery(this));
  clone->normalized_text_ = src.normalized_text_;
  clone->query_ = src.query_;
  clone->columns_ = src.columns_;
  clone->has_limit_ = src.has_limit_;
  clone->has_stages_ = src.has_stages_;
  clone->count_star_only_ = src.count_star_only_;
  clone->limit_ = src.limit_;
  clone->plan_text_ = src.plan_text_;
  clone->store_version_ = src.store_version_;
  clone->num_edges_ = src.num_edges_;
  clone->timeout_millis_ = src.timeout_millis_;
  clone->mem_cap_bytes_ = src.mem_cap_bytes_;
  for (const PreparedQuery::ParamInfo& param : src.params_) {
    PreparedQuery::ParamInfo info;
    info.name = param.name;
    info.expected = param.expected;
    info.key = param.key;
    info.pin_var = param.pin_var;
    clone->params_.push_back(std::move(info));  // unbound: each owner binds its own
  }
  if (clone->count_star_only_) clone->count_row_.Init(clone->columns_, 1);
  std::vector<std::unique_ptr<Operator>> ops;
  ops.reserve(src.plan_->primary_ops().size());
  for (const auto& op : src.plan_->primary_ops()) ops.push_back(op->Clone());
  // The cloned sink (and its stage chain) still charges/streams through
  // `src`'s ExecControls; re-point it before the clone ever runs.
  auto* sink = dynamic_cast<ProjectSinkOp*>(ops.back().get());
  APLUS_CHECK(sink != nullptr) << "prepared plan must end in a ProjectSinkOp";
  sink->RebindControls(&clone->controls_);
  auto plan = std::make_unique<Plan>(std::move(ops), src.plan_->num_query_vertices(),
                                     src.plan_->num_query_edges());
  plan->SetExecContext(&clone->controls_.token, &clone->controls_.budget);
  clone->plan_ = std::move(plan);
  clone->RefreshSlots();
  return clone;
}

QueryOutcome Database::Execute(const QueryGraph& query) {
  QueryOutcome out;
  if (!concurrent_ingest_active() && store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  std::unique_ptr<Plan> plan = optimizer->Optimize(query);
  if (plan == nullptr) {
    out.status = QueryOutcome::Status::kPlanError;
    out.error = "no plan found (disconnected or unsupported query)";
    return out;
  }
  // Governance parity with the serving path: the programmatic
  // (QueryGraph) one-shot honors APLUS_QUERY_TIMEOUT_MS, APLUS_MEM_CAP
  // and APLUS_MEM_CAP_TOTAL too, so a whole binary — table benches
  // included — respects the caps, not just Session traffic.
  ExecToken token;
  MemoryBudget budget;
  const int64_t timeout_ms = Int64FromEnvOr("APLUS_QUERY_TIMEOUT_MS", 0);
  if (timeout_ms > 0) token.ArmDeadlineMillis(timeout_ms);
  const uint64_t mem_cap = static_cast<uint64_t>(Int64FromEnvOr("APLUS_MEM_CAP", 0));
  budget.Reset(mem_cap);
  MemoryBudget::SetProcessCeiling(
      static_cast<uint64_t>(Int64FromEnvOr("APLUS_MEM_CAP_TOTAL", 0)));
  plan->SetExecContext(&token, &budget);
  QueryResult result = RunPlan(plan.get());
  out.count = result.count;
  out.seconds = result.seconds;
  switch (token.reason()) {
    case StopReason::kTimeout:
      out.status = QueryOutcome::Status::kTimeout;
      out.error = "query deadline exceeded (APLUS_QUERY_TIMEOUT_MS=" +
                  std::to_string(timeout_ms) + " ms)";
      break;
    case StopReason::kResourceExhausted:
      out.status = QueryOutcome::Status::kResourceExhausted;
      out.error =
          "memory budget exceeded (APLUS_MEM_CAP=" + std::to_string(mem_cap) + " bytes)";
      break;
    default:
      break;
  }
  out.plan = RenderPlanTree(query, graph_.catalog(), optimizer->last_steps());
  return out;
}

QueryOutcome Database::ExecuteCypher(const std::string& text, RowConsumer* consumer) {
  std::unique_ptr<PreparedQuery> prepared = Prepare(text);
  QueryOutcome out = prepared->Execute(consumer);
  if (out.ok()) out.plan = prepared->plan_text();
  return out;
}

std::string Database::Explain(const QueryGraph& query) {
  if (!concurrent_ingest_active() && store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  std::unique_ptr<Plan> plan = optimizer->Optimize(query);
  if (plan == nullptr) return "(no plan)";
  return RenderPlanTree(query, graph_.catalog(), optimizer->last_steps());
}

std::string Database::Explain(const std::string& text) {
  std::unique_ptr<PreparedQuery> prepared = Prepare(text);
  if (!prepared->ok()) return "(error: " + prepared->error() + ")";
  return prepared->plan_text();
}

}  // namespace aplus
