#include "core/database.h"

#include "optimizer/plan_printer.h"
#include "util/logging.h"

namespace aplus {

Database::Database(Graph graph) : graph_(std::move(graph)) {
  store_ = std::make_unique<IndexStore>(&graph_);
  maintainer_ = std::make_unique<Maintainer>(&graph_, store_.get());
}

double Database::BuildPrimaryIndexes(const IndexConfig& config) {
  return store_->BuildPrimary(config);
}

VpIndex* Database::CreateVpIndex(const std::string& name, const Predicate& pred,
                                 const IndexConfig& config, Direction dir, double* seconds) {
  OneHopViewDef view;
  view.name = name;
  view.pred = pred;
  return store_->CreateVpIndex(view, config, dir, seconds);
}

EpIndex* Database::CreateEpIndex(const std::string& name, EpKind kind, const Predicate& pred,
                                 const IndexConfig& config, double* seconds,
                                 size_t budget_bytes) {
  TwoHopViewDef view;
  view.name = name;
  view.kind = kind;
  view.pred = pred;
  return store_->CreateEpIndex(view, config, seconds, budget_bytes);
}

DdlResult Database::ExecuteDdl(const std::string& command) {
  DdlResult result;
  DdlCommand cmd = ParseDdl(command, graph_.catalog());
  if (!cmd.ok()) {
    result.message = cmd.error;
    return result;
  }
  switch (cmd.kind) {
    case DdlCommand::Kind::kReconfigure: {
      result.seconds = BuildPrimaryIndexes(cmd.config);
      result.ok = true;
      result.message = "primary indexes reconfigured: " + cmd.config.ToString(graph_.catalog());
      return result;
    }
    case DdlCommand::Kind::kCreateVp: {
      double total = 0.0;
      double seconds = 0.0;
      if (cmd.fwd) {
        CreateVpIndex(cmd.view_name, cmd.pred, cmd.config, Direction::kFwd, &seconds);
        total += seconds;
      }
      if (cmd.bwd) {
        CreateVpIndex(cmd.view_name, cmd.pred, cmd.config, Direction::kBwd, &seconds);
        total += seconds;
      }
      result.seconds = total;
      result.ok = true;
      result.message = "created vertex-partitioned index " + cmd.view_name;
      return result;
    }
    case DdlCommand::Kind::kCreateEp: {
      CreateEpIndex(cmd.view_name, cmd.ep_kind, cmd.pred, cmd.config, &result.seconds);
      result.ok = true;
      result.message = "created edge-partitioned index " + cmd.view_name + " (" +
                       std::string(ToString(cmd.ep_kind)) + ")";
      return result;
    }
  }
  result.message = "unreachable";
  return result;
}

DpOptimizer* Database::CachedOptimizer() {
  if (optimizer_ == nullptr || optimizer_store_version_ != store_->version() ||
      optimizer_num_edges_ != graph_.num_edges()) {
    optimizer_ = std::make_unique<DpOptimizer>(&graph_, store_.get());
    optimizer_store_version_ = store_->version();
    optimizer_num_edges_ = graph_.num_edges();
  }
  return optimizer_.get();
}

std::unique_ptr<PreparedQuery> Database::Prepare(const std::string& text,
                                                 const PrepareOptions& options) {
  std::unique_ptr<PreparedQuery> prepared(new PreparedQuery(this));
  prepared->normalized_text_ = NormalizeQueryText(text);
  ParsedCypher parsed = ParseCypher(text, graph_.catalog());
  if (!parsed.ok()) {
    prepared->status_ = QueryOutcome::Status::kParseError;
    prepared->error_ = parsed.error;
    return prepared;
  }
  prepared->query_ = std::move(parsed.query);
  prepared->has_limit_ = parsed.has_limit;
  prepared->limit_ = parsed.limit;
  for (const CypherParam& param : parsed.params) {
    PreparedQuery::ParamInfo info;
    info.name = param.name;
    info.expected = param.expected;
    info.key = param.key;
    info.pin_var = param.pin_var;
    prepared->params_.push_back(std::move(info));
  }
  // Placeholder-pin every `<var>.ID = $p` vertex so the optimizer plans
  // around a pinned vertex; Bind patches the literal id into the plan.
  for (int v = 0; v < prepared->query_.num_vertices(); ++v) {
    if (prepared->query_.vertex(v).bound_param >= 0) {
      prepared->query_.mutable_vertex(v).bound = 0;
    }
  }
  for (const ReturnItem& item : parsed.returns) {
    ProjectColumn col;
    col.name = item.name;
    col.ref = item.ref;
    col.type =
        item.ref.is_id ? ValueType::kInt64 : graph_.catalog().property(item.ref.key).type;
    prepared->columns_.push_back(std::move(col));
  }
  if (store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  auto sink = std::make_unique<ProjectSinkOp>(&graph_, prepared->columns_, options.batch_rows,
                                              &prepared->controls_);
  std::unique_ptr<Plan> plan = optimizer->Optimize(prepared->query_, std::move(sink));
  if (plan == nullptr) {
    prepared->status_ = QueryOutcome::Status::kPlanError;
    prepared->error_ = "no plan found (disconnected or unsupported query)";
    return prepared;
  }
  prepared->plan_text_ =
      RenderPlanTree(prepared->query_, graph_.catalog(), optimizer->last_steps());
  plan->SetStopFlag(&prepared->controls_.stop);
  prepared->plan_ = std::move(plan);
  prepared->RefreshSlots();
  prepared->store_version_ = store_->version();
  prepared->num_edges_ = graph_.num_edges();
  return prepared;
}

QueryOutcome Database::Execute(const QueryGraph& query) {
  QueryOutcome out;
  if (store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  std::unique_ptr<Plan> plan = optimizer->Optimize(query);
  if (plan == nullptr) {
    out.status = QueryOutcome::Status::kPlanError;
    out.error = "no plan found (disconnected or unsupported query)";
    return out;
  }
  QueryResult result = RunPlan(plan.get());
  out.count = result.count;
  out.seconds = result.seconds;
  out.plan = RenderPlanTree(query, graph_.catalog(), optimizer->last_steps());
  return out;
}

QueryOutcome Database::ExecuteCypher(const std::string& text, RowConsumer* consumer) {
  std::unique_ptr<PreparedQuery> prepared = Prepare(text);
  QueryOutcome out = prepared->Execute(consumer);
  if (out.ok()) out.plan = prepared->plan_text();
  return out;
}

QueryResult Database::Run(const QueryGraph& query) {
  QueryOutcome out = Execute(query);
  APLUS_CHECK(out.ok()) << out.error;
  QueryResult result;
  result.count = out.count;
  result.seconds = out.seconds;
  result.plan = std::move(out.plan);
  return result;
}

Database::CypherResult Database::RunCypher(const std::string& text) {
  QueryOutcome outcome = ExecuteCypher(text);
  CypherResult out;
  out.ok = outcome.ok();
  out.error = std::move(outcome.error);
  out.result.count = outcome.count;
  out.result.seconds = outcome.seconds;
  out.result.plan = std::move(outcome.plan);
  return out;
}

std::string Database::Explain(const QueryGraph& query) {
  if (store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  std::unique_ptr<Plan> plan = optimizer->Optimize(query);
  if (plan == nullptr) return "(no plan)";
  return RenderPlanTree(query, graph_.catalog(), optimizer->last_steps());
}

std::string Database::Explain(const std::string& text) {
  std::unique_ptr<PreparedQuery> prepared = Prepare(text);
  if (!prepared->ok()) return "(error: " + prepared->error() + ")";
  return prepared->plan_text();
}

}  // namespace aplus
