#include "core/database.h"

#include "optimizer/plan_printer.h"
#include "util/logging.h"

namespace aplus {

Database::Database(Graph graph) : graph_(std::move(graph)) {
  store_ = std::make_unique<IndexStore>(&graph_);
  maintainer_ = std::make_unique<Maintainer>(&graph_, store_.get());
}

double Database::BuildPrimaryIndexes(const IndexConfig& config) {
  return store_->BuildPrimary(config);
}

VpIndex* Database::CreateVpIndex(const std::string& name, const Predicate& pred,
                                 const IndexConfig& config, Direction dir, double* seconds) {
  OneHopViewDef view;
  view.name = name;
  view.pred = pred;
  return store_->CreateVpIndex(view, config, dir, seconds);
}

EpIndex* Database::CreateEpIndex(const std::string& name, EpKind kind, const Predicate& pred,
                                 const IndexConfig& config, double* seconds,
                                 size_t budget_bytes) {
  TwoHopViewDef view;
  view.name = name;
  view.kind = kind;
  view.pred = pred;
  return store_->CreateEpIndex(view, config, seconds, budget_bytes);
}

DdlResult Database::ExecuteDdl(const std::string& command) {
  DdlResult result;
  DdlCommand cmd = ParseDdl(command, graph_.catalog());
  if (!cmd.ok()) {
    result.message = cmd.error;
    return result;
  }
  switch (cmd.kind) {
    case DdlCommand::Kind::kReconfigure: {
      result.seconds = BuildPrimaryIndexes(cmd.config);
      result.ok = true;
      result.message = "primary indexes reconfigured: " + cmd.config.ToString(graph_.catalog());
      return result;
    }
    case DdlCommand::Kind::kCreateVp: {
      double total = 0.0;
      double seconds = 0.0;
      if (cmd.fwd) {
        CreateVpIndex(cmd.view_name, cmd.pred, cmd.config, Direction::kFwd, &seconds);
        total += seconds;
      }
      if (cmd.bwd) {
        CreateVpIndex(cmd.view_name, cmd.pred, cmd.config, Direction::kBwd, &seconds);
        total += seconds;
      }
      result.seconds = total;
      result.ok = true;
      result.message = "created vertex-partitioned index " + cmd.view_name;
      return result;
    }
    case DdlCommand::Kind::kCreateEp: {
      CreateEpIndex(cmd.view_name, cmd.ep_kind, cmd.pred, cmd.config, &result.seconds);
      result.ok = true;
      result.message = "created edge-partitioned index " + cmd.view_name + " (" +
                       std::string(ToString(cmd.ep_kind)) + ")";
      return result;
    }
  }
  result.message = "unreachable";
  return result;
}

DpOptimizer* Database::CachedOptimizer() {
  if (optimizer_ == nullptr || optimizer_store_version_ != store_->version() ||
      optimizer_num_edges_ != graph_.num_edges()) {
    optimizer_ = std::make_unique<DpOptimizer>(&graph_, store_.get());
    optimizer_store_version_ = store_->version();
    optimizer_num_edges_ = graph_.num_edges();
  }
  return optimizer_.get();
}

QueryResult Database::Run(const QueryGraph& query) {
  if (store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  std::unique_ptr<Plan> plan = optimizer->Optimize(query);
  APLUS_CHECK(plan != nullptr) << "no plan found (disconnected query?)";
  QueryResult result = RunPlan(plan.get());
  result.plan = RenderPlanTree(query, graph_.catalog(), optimizer->last_steps());
  return result;
}

Database::CypherResult Database::RunCypher(const std::string& text) {
  CypherResult out;
  ParsedCypher parsed = ParseCypher(text, graph_.catalog());
  if (!parsed.ok()) {
    out.error = parsed.error;
    return out;
  }
  out.result = Run(parsed.query);
  out.ok = true;
  return out;
}

std::string Database::Explain(const QueryGraph& query) {
  if (store_->HasPendingUpdates()) store_->FlushAll();
  DpOptimizer* optimizer = CachedOptimizer();
  std::unique_ptr<Plan> plan = optimizer->Optimize(query);
  if (plan == nullptr) return "(no plan)";
  return RenderPlanTree(query, graph_.catalog(), optimizer->last_steps());
}

}  // namespace aplus
