#include "core/session.h"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "core/database.h"
#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

const char* ToString(QueryOutcome::Status status) {
  switch (status) {
    case QueryOutcome::Status::kOk:
      return "OK";
    case QueryOutcome::Status::kParseError:
      return "PARSE_ERROR";
    case QueryOutcome::Status::kPlanError:
      return "PLAN_ERROR";
    case QueryOutcome::Status::kBindError:
      return "BIND_ERROR";
    case QueryOutcome::Status::kInvalidated:
      return "INVALIDATED";
    case QueryOutcome::Status::kExecError:
      return "EXEC_ERROR";
    case QueryOutcome::Status::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "?";
}

std::string NormalizeQueryText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  bool in_string = false;  // inside a '...' literal: whitespace is significant
  for (char c : text) {
    if (c == '\'') in_string = !in_string;
    if (!in_string && std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

int PreparedQuery::FindParam(const std::string& name) const {
  for (size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool PreparedQuery::current() const {
  // Validity tracks the store version only (DDL replaces index objects
  // the plan points into). Plain edge growth does NOT invalidate: probe
  // paths merge run + delta views, so a prepared plan keeps returning
  // correct rows across online ingest. Plan *quality* staleness from
  // large growth is a cache policy, handled by Session::Prepare.
  return plan_ != nullptr && store_version_ == db_->index_store().version();
}

void PreparedQuery::RefreshSlots() {
  slots_.Clear();
  plan_->CollectParamSlots(&slots_);
  slots_pipelines_ = plan_->num_pipelines();
}

void PreparedQuery::ApplyParam(const ParamInfo& param, int index) {
  for (const ParamSlots::ValueSlot& slot : slots_.values) {
    if (slot.param == index) *slot.value = param.value;
  }
  // Sort-key bounds folded from $param range conjuncts (the descriptor's
  // BoundedRange binary search replaces the residual filter).
  for (const ParamSlots::RangeSlot& slot : slots_.ranges) {
    if (slot.param != index) continue;
    *slot.bound = slot.encode_double ? EncodeDoubleSortKey(param.value.AsDouble())
                                     : param.value.AsInt64();
  }
  if (param.pin_var >= 0) {
    vertex_id_t id = static_cast<vertex_id_t>(param.value.AsInt64());
    for (const ParamSlots::PinSlot& slot : slots_.pins) {
      if (slot.var == param.pin_var) *slot.pin = id;
    }
  }
}

bool PreparedQuery::Bind(const std::string& name, const Value& value) {
  int index = FindParam(name);
  if (index < 0) {
    bind_error_ = "unknown parameter $" + name;
    return false;
  }
  ParamInfo& param = params_[index];
  if (value.is_null()) {
    bind_error_ = "cannot bind null to parameter $" + name;
    return false;
  }
  if (value.type() == ValueType::kDouble && value.AsDouble() != value.AsDouble()) {
    // NaN never satisfies a comparison; accepting it would also corrupt
    // folded sort-key range bounds (EncodeDoubleSortKey(NaN) encodes
    // above every finite value).
    bind_error_ = "cannot bind NaN to parameter $" + name;
    return false;
  }
  Value coerced = value;
  bool type_ok = false;
  switch (param.expected) {
    case ValueType::kInt64:
      type_ok = value.type() == ValueType::kInt64;
      break;
    case ValueType::kDouble:
      if (value.type() == ValueType::kInt64) {
        coerced = Value::Double(static_cast<double>(value.AsInt64()));
        type_ok = true;
      } else {
        type_ok = value.type() == ValueType::kDouble;
      }
      break;
    case ValueType::kString:
      type_ok = value.type() == ValueType::kString;
      break;
    case ValueType::kBool:
      type_ok = value.type() == ValueType::kBool;
      break;
    case ValueType::kCategory: {
      const Catalog& catalog = db_->graph().catalog();
      if (value.type() == ValueType::kString) {
        // Category parameters accept the value's registered name.
        category_t cat = catalog.FindCategoryValue(param.key, value.AsString());
        if (cat == kInvalidCategory) {
          bind_error_ = "unknown category value '" + value.AsString() + "' for parameter $" +
                        name;
          return false;
        }
        coerced = Value::Category(cat);
        type_ok = true;
      } else if (value.type() == ValueType::kInt64 || value.type() == ValueType::kCategory) {
        int64_t code = value.AsInt64();
        if (code < 0 ||
            code >= static_cast<int64_t>(catalog.property(param.key).domain_size)) {
          bind_error_ = "category code out of domain for parameter $" + name;
          return false;
        }
        coerced = Value::Category(code);
        type_ok = true;
      }
      break;
    }
    case ValueType::kNull:
      break;
  }
  if (!type_ok) {
    bind_error_ = std::string("type mismatch binding parameter $") + name + ": expected " +
                  aplus::ToString(param.expected) + ", got " + aplus::ToString(value.type());
    return false;
  }
  if (param.pin_var >= 0) {
    // A pin becomes a raw scan bound / list probe target, so the id must
    // be a real vertex — client input never reaches an unchecked index.
    int64_t id = coerced.AsInt64();
    if (id < 0 || id >= static_cast<int64_t>(db_->graph().num_vertices())) {
      bind_error_ = "vertex id out of range for parameter $" + name;
      return false;
    }
  }
  param.value = std::move(coerced);
  param.bound = true;
  if (plan_ == nullptr) return true;  // errored prepare: nothing to patch
  if (plan_->num_pipelines() != slots_pipelines_) {
    // A parallel Execute added worker replicas since the last
    // collection: re-collect and re-apply every bound parameter so the
    // replicas see this (and any future) bind.
    RefreshSlots();
    for (size_t i = 0; i < params_.size(); ++i) {
      if (params_[i].bound) ApplyParam(params_[i], static_cast<int>(i));
    }
  } else {
    ApplyParam(param, index);
  }
  return true;
}

QueryOutcome PreparedQuery::Execute(RowConsumer* consumer, int num_threads) {
  QueryOutcome out;
  if (!ok()) {
    out.status = status_;
    out.error = error_;
    return out;
  }
  if (!current()) {
    out.status = QueryOutcome::Status::kInvalidated;
    out.error = "prepared query is stale (indexes or graph changed since Prepare); re-prepare";
    return out;
  }
  for (const ParamInfo& param : params_) {
    if (!param.bound) {
      out.status = QueryOutcome::Status::kBindError;
      out.error = "unbound parameter $" + param.name;
      return out;
    }
  }
  // Outside concurrent ingest, queries require clean indexes (the
  // pre-serving Run invariant): deletions buffer page updates without
  // bumping the store version, so `current()` alone cannot catch them;
  // flushing mutates page internals in place and never invalidates plan
  // pointers (index objects are only replaced by DDL, which does bump
  // versions). During concurrent ingest the probe paths merge deltas
  // themselves and flushing belongs to the merger.
  if (!db_->concurrent_ingest_active() && db_->index_store().HasPendingUpdates()) {
    db_->index_store().FlushAll();
  }
  controls_.consumer = consumer;
  // The atomic row budget (early scan termination) serves stage-less
  // plans only: a LIMIT below aggregation or ordering caps the *output*
  // rows, which requires the full match enumeration and is enforced by
  // the LimitStage during the Finish cascade. The COUNT(*) pushdown is
  // also excluded — its single output row needs the full enumeration.
  controls_.limit_active = has_limit_ && !has_stages_ && !count_star_only_;
  int64_t budget = 0;
  if (controls_.limit_active) {
    constexpr uint64_t kMaxBudget =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
    budget = static_cast<int64_t>(limit_ < kMaxBudget ? limit_ : kMaxBudget);
  }
  controls_.rows_remaining.store(budget, std::memory_order_relaxed);
  controls_.stop.store(false, std::memory_order_relaxed);
  controls_.rows_emitted = 0;
  // Group-by memory cap: read per execution so serving deployments can
  // adjust it without re-preparing (getenv allocates nothing).
  if (has_stages_) {
    const char* cap = std::getenv("APLUS_GROUPBY_MEM_CAP");
    controls_.groupby_mem_cap = cap != nullptr ? std::strtoull(cap, nullptr, 10) : 0;
  } else {
    controls_.groupby_mem_cap = 0;
  }
  controls_.groupby_bytes.store(0, std::memory_order_relaxed);
  controls_.resource_exhausted.store(false, std::memory_order_relaxed);
  for (int i = 0; i < plan_->num_pipelines(); ++i) {
    static_cast<ProjectSinkOp*>(plan_->sink(i))->ResetBatch();
  }
  // Timed end-to-end: a staged query does real work (partial merge, the
  // sort, the Finish emission) after the plan's own timer stops, and the
  // caller waits for all of it.
  WallTimer timer;
  uint64_t count =
      num_threads == kUseEnvThreads ? plan_->Execute() : plan_->Execute(num_threads);
  // Partial batches drain on the calling thread once the workers joined
  // (into each pipeline's own stage chain for staged queries).
  for (int i = 0; i < plan_->num_pipelines(); ++i) {
    static_cast<ProjectSinkOp*>(plan_->sink(i))->Flush();
  }
  if (has_stages_ && controls_.resource_exhausted.load(std::memory_order_relaxed)) {
    // The group-by arena crossed the cap mid-enumeration: the partial
    // tables are incomplete, so no merge, no Finish, no rows — a clean
    // error instead of silently wrong aggregates.
    controls_.consumer = nullptr;
    out.status = QueryOutcome::Status::kResourceExhausted;
    out.error = "group-by memory cap exceeded (APLUS_GROUPBY_MEM_CAP=" +
                std::to_string(controls_.groupby_mem_cap) + " bytes)";
    out.count = count;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }
  if (has_stages_) {
    // Parallel partial-merge: fold every worker chain into pipeline 0 —
    // stages with an order-free fold (grouped aggregation) hash-partition
    // the k worker tables across the pool — then run the Finish cascade
    // there; the final rows stream to the consumer from this thread only.
    auto* primary = static_cast<ProjectSinkOp*>(plan_->sink(0));
    worker_sinks_.clear();
    for (int i = 1; i < plan_->num_pipelines(); ++i) {
      worker_sinks_.push_back(static_cast<ProjectSinkOp*>(plan_->sink(i)));
    }
    // The env-thread path runs ProjectSinkOp plans serially (see
    // Plan::Execute()), so its worker partials are empty: merge serially.
    int merge_threads = num_threads == kUseEnvThreads ? 1 : num_threads;
    primary->MergeAllStages(worker_sinks_.data(), static_cast<int>(worker_sinks_.size()),
                            merge_threads);
    primary->FinishStages();
    out.rows = controls_.rows_emitted;
  } else if (count_star_only_) {
    // COUNT(*) pushdown: the counting sink already produced the answer;
    // synthesize the single output row (LIMIT 0 suppresses it).
    if (has_limit_ && limit_ == 0) {
      out.rows = 0;
    } else {
      count_row_.Clear();
      count_row_.AppendInt(0, static_cast<int64_t>(count));
      count_row_.AdvanceRow();
      if (consumer != nullptr) consumer->OnBatch(count_row_);
      out.rows = 1;
    }
  } else {
    out.rows = columns_.empty() ? 0 : count;
  }
  controls_.consumer = nullptr;
  out.count = count;
  out.seconds = timer.ElapsedSeconds();
  return out;
}

PreparedQuery* Session::Prepare(const std::string& text, const PrepareOptions& options) {
  std::string key = NormalizeQueryText(text);
  ++tick_;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A cached plan stays *valid* across ingest (current() checks the
    // store version only), but its join order was costed on the graph as
    // of Prepare; once the graph doubles, re-prepare for plan quality.
    uint64_t num_edges = db_->graph().num_edges();
    uint64_t prepared_edges = it->second.prepared->num_edges_at_prepare();
    bool quality_stale = num_edges < prepared_edges || num_edges > prepared_edges * 2;
    if (it->second.prepared->current() && !quality_stale) {
      ++cache_hits_;
      it->second.last_used = tick_;
      return it->second.prepared.get();
    }
    cache_.erase(it);  // stale: the store moved on, or the graph outgrew the plan
  }
  ++cache_misses_;
  std::unique_ptr<PreparedQuery> prepared = db_->Prepare(text, options);
  PreparedQuery* raw = prepared.get();
  if (!raw->ok()) {
    last_failed_ = std::move(prepared);
    return last_failed_.get();
  }
  if (cache_.size() >= kMaxCachedQueries) {
    auto victim = cache_.begin();
    for (auto entry = cache_.begin(); entry != cache_.end(); ++entry) {
      if (entry->second.last_used < victim->second.last_used) victim = entry;
    }
    cache_.erase(victim);
  }
  cache_.emplace(std::move(key), CacheEntry{std::move(prepared), tick_});
  return raw;
}

QueryOutcome Session::Execute(const std::string& text, RowConsumer* consumer,
                              int num_threads) {
  PreparedQuery* prepared = Prepare(text);
  QueryOutcome out = prepared->Execute(consumer, num_threads);
  if (out.ok()) out.plan = prepared->plan_text();
  return out;
}

}  // namespace aplus
