#include "core/session.h"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "core/admission.h"
#include "core/database.h"
#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

namespace {

// Non-negative int64 from an env knob; `fallback` when unset/unparsable.
int64_t Int64FromEnv(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (end == env || v < 0) return fallback;
  return static_cast<int64_t>(v);
}

}  // namespace

const char* ToString(QueryOutcome::Status status) {
  switch (status) {
    case QueryOutcome::Status::kOk:
      return "OK";
    case QueryOutcome::Status::kParseError:
      return "PARSE_ERROR";
    case QueryOutcome::Status::kPlanError:
      return "PLAN_ERROR";
    case QueryOutcome::Status::kBindError:
      return "BIND_ERROR";
    case QueryOutcome::Status::kInvalidated:
      return "INVALIDATED";
    case QueryOutcome::Status::kExecError:
      return "EXEC_ERROR";
    case QueryOutcome::Status::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case QueryOutcome::Status::kTimeout:
      return "TIMEOUT";
    case QueryOutcome::Status::kCancelled:
      return "CANCELLED";
    case QueryOutcome::Status::kOverloaded:
      return "OVERLOADED";
  }
  return "?";
}

std::string NormalizeQueryText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  bool in_string = false;  // inside a '...' literal: whitespace is significant
  for (char c : text) {
    if (c == '\'') in_string = !in_string;
    if (!in_string && std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

int PreparedQuery::FindParam(const std::string& name) const {
  for (size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool PreparedQuery::current() const {
  // Validity tracks the store version only (DDL replaces index objects
  // the plan points into). Plain edge growth does NOT invalidate: probe
  // paths merge run + delta views, so a prepared plan keeps returning
  // correct rows across online ingest. Plan *quality* staleness from
  // large growth is a cache policy, handled by Session::Prepare.
  return plan_ != nullptr && store_version_ == db_->index_store().version();
}

void PreparedQuery::RefreshSlots() {
  slots_.Clear();
  plan_->CollectParamSlots(&slots_);
  slots_pipelines_ = plan_->num_pipelines();
}

void PreparedQuery::ApplyParam(const ParamInfo& param, int index) {
  for (const ParamSlots::ValueSlot& slot : slots_.values) {
    if (slot.param == index) *slot.value = param.value;
  }
  // Sort-key bounds folded from $param range conjuncts (the descriptor's
  // BoundedRange binary search replaces the residual filter).
  for (const ParamSlots::RangeSlot& slot : slots_.ranges) {
    if (slot.param != index) continue;
    *slot.bound = slot.encode_double ? EncodeDoubleSortKey(param.value.AsDouble())
                                     : param.value.AsInt64();
  }
  if (param.pin_var >= 0) {
    vertex_id_t id = static_cast<vertex_id_t>(param.value.AsInt64());
    for (const ParamSlots::PinSlot& slot : slots_.pins) {
      if (slot.var == param.pin_var) *slot.pin = id;
    }
  }
}

bool PreparedQuery::Bind(const std::string& name, const Value& value) {
  int index = FindParam(name);
  if (index < 0) {
    bind_error_ = "unknown parameter $" + name;
    return false;
  }
  ParamInfo& param = params_[index];
  if (value.is_null()) {
    bind_error_ = "cannot bind null to parameter $" + name;
    return false;
  }
  if (value.type() == ValueType::kDouble && value.AsDouble() != value.AsDouble()) {
    // NaN never satisfies a comparison; accepting it would also corrupt
    // folded sort-key range bounds (EncodeDoubleSortKey(NaN) encodes
    // above every finite value).
    bind_error_ = "cannot bind NaN to parameter $" + name;
    return false;
  }
  Value coerced = value;
  bool type_ok = false;
  switch (param.expected) {
    case ValueType::kInt64:
      type_ok = value.type() == ValueType::kInt64;
      break;
    case ValueType::kDouble:
      if (value.type() == ValueType::kInt64) {
        coerced = Value::Double(static_cast<double>(value.AsInt64()));
        type_ok = true;
      } else {
        type_ok = value.type() == ValueType::kDouble;
      }
      break;
    case ValueType::kString:
      type_ok = value.type() == ValueType::kString;
      break;
    case ValueType::kBool:
      type_ok = value.type() == ValueType::kBool;
      break;
    case ValueType::kCategory: {
      const Catalog& catalog = db_->graph().catalog();
      if (value.type() == ValueType::kString) {
        // Category parameters accept the value's registered name.
        category_t cat = catalog.FindCategoryValue(param.key, value.AsString());
        if (cat == kInvalidCategory) {
          bind_error_ = "unknown category value '" + value.AsString() + "' for parameter $" +
                        name;
          return false;
        }
        coerced = Value::Category(cat);
        type_ok = true;
      } else if (value.type() == ValueType::kInt64 || value.type() == ValueType::kCategory) {
        int64_t code = value.AsInt64();
        if (code < 0 ||
            code >= static_cast<int64_t>(catalog.property(param.key).domain_size)) {
          bind_error_ = "category code out of domain for parameter $" + name;
          return false;
        }
        coerced = Value::Category(code);
        type_ok = true;
      }
      break;
    }
    case ValueType::kNull:
      break;
  }
  if (!type_ok) {
    bind_error_ = std::string("type mismatch binding parameter $") + name + ": expected " +
                  aplus::ToString(param.expected) + ", got " + aplus::ToString(value.type());
    return false;
  }
  if (param.pin_var >= 0) {
    // A pin becomes a raw scan bound / list probe target, so the id must
    // be a real vertex — client input never reaches an unchecked index.
    int64_t id = coerced.AsInt64();
    if (id < 0 || id >= static_cast<int64_t>(db_->graph().num_vertices())) {
      bind_error_ = "vertex id out of range for parameter $" + name;
      return false;
    }
  }
  param.value = std::move(coerced);
  param.bound = true;
  if (plan_ == nullptr) return true;  // errored prepare: nothing to patch
  if (plan_->num_pipelines() != slots_pipelines_) {
    // A parallel Execute added worker replicas since the last
    // collection: re-collect and re-apply every bound parameter so the
    // replicas see this (and any future) bind.
    RefreshSlots();
    for (size_t i = 0; i < params_.size(); ++i) {
      if (params_[i].bound) ApplyParam(params_[i], static_cast<int>(i));
    }
  } else {
    ApplyParam(param, index);
  }
  return true;
}

void PreparedQuery::ClearBindings() {
  for (ParamInfo& param : params_) {
    param.bound = false;
    param.value = Value();
  }
  bind_error_.clear();
}

QueryOutcome PreparedQuery::Execute(RowConsumer* consumer, int num_threads) {
  QueryOutcome out;
  if (!ok()) {
    out.status = status_;
    out.error = error_;
    return out;
  }
  if (!current()) {
    out.status = QueryOutcome::Status::kInvalidated;
    out.error = "prepared query is stale (indexes or graph changed since Prepare); re-prepare";
    return out;
  }
  for (const ParamInfo& param : params_) {
    if (!param.bound) {
      out.status = QueryOutcome::Status::kBindError;
      out.error = "unbound parameter $" + param.name;
      return out;
    }
  }
  // Admission gate: when configured (APLUS_MAX_CONCURRENT), concurrent
  // Execute calls beyond the slot count wait in a bounded FIFO queue; a
  // full queue or a queue timeout fails fast with kOverloaded. The RAII
  // slot releases when this frame returns, success or failure.
  AdmissionSlot admission_slot(&db_->admission());
  if (!admission_slot.admitted()) {
    out.status = QueryOutcome::Status::kOverloaded;
    out.error = admission_slot.result() == AdmissionController::Result::kTimedOut
                    ? "admission queue timed out waiting for an execute slot "
                      "(APLUS_MAX_CONCURRENT)"
                    : "execute slots and admission queue full (APLUS_MAX_CONCURRENT)";
    return out;
  }
  // Outside concurrent ingest, queries require clean indexes (the
  // pre-serving Run invariant): deletions buffer page updates without
  // bumping the store version, so `current()` alone cannot catch them;
  // flushing mutates page internals in place and never invalidates plan
  // pointers (index objects are only replaced by DDL, which does bump
  // versions). During concurrent ingest the probe paths merge deltas
  // themselves and flushing belongs to the merger.
  if (!db_->concurrent_ingest_active() && db_->index_store().HasPendingUpdates()) {
    db_->index_store().FlushAll();
  }
  controls_.consumer = consumer;
  // The atomic row budget (early scan termination) serves stage-less
  // plans only: a LIMIT below aggregation or ordering caps the *output*
  // rows, which requires the full match enumeration and is enforced by
  // the LimitStage during the Finish cascade. The COUNT(*) pushdown is
  // also excluded — its single output row needs the full enumeration.
  controls_.limit_active = has_limit_ && !has_stages_ && !count_star_only_;
  int64_t budget = 0;
  if (controls_.limit_active) {
    constexpr uint64_t kMaxBudget =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
    budget = static_cast<int64_t>(limit_ < kMaxBudget ? limit_ : kMaxBudget);
  }
  controls_.rows_remaining.store(budget, std::memory_order_relaxed);
  controls_.rows_emitted = 0;
  // Stop token: clear last execution's state, then arm the deadline.
  // The env knobs are read per execution so serving deployments can
  // adjust them without re-preparing (getenv allocates nothing). A
  // Cancel() issued while no execute was running targets this one
  // (session.h contract), so it survives the reset.
  const bool pre_cancelled = controls_.token.reason() == StopReason::kCancelled;
  controls_.token.Reset();
  if (pre_cancelled) controls_.token.Cancel();
  const int64_t timeout_ms = timeout_millis_ >= 0
                                 ? timeout_millis_
                                 : Int64FromEnv("APLUS_QUERY_TIMEOUT_MS", 0);
  if (timeout_ms > 0) controls_.token.ArmDeadlineMillis(timeout_ms);
  // Memory budget: explicit set_mem_cap_bytes wins, then APLUS_MEM_CAP,
  // then the deprecated group-by-era alias. The source name is kept for
  // the kResourceExhausted error message.
  uint64_t mem_cap = 0;
  const char* mem_cap_source = "APLUS_MEM_CAP";
  if (mem_cap_bytes_ >= 0) {
    mem_cap = static_cast<uint64_t>(mem_cap_bytes_);
    mem_cap_source = "set_mem_cap_bytes";
  } else if (std::getenv("APLUS_MEM_CAP") != nullptr) {
    mem_cap = static_cast<uint64_t>(Int64FromEnv("APLUS_MEM_CAP", 0));
  } else if (std::getenv("APLUS_GROUPBY_MEM_CAP") != nullptr) {
    mem_cap = static_cast<uint64_t>(Int64FromEnv("APLUS_GROUPBY_MEM_CAP", 0));
    mem_cap_source = "APLUS_GROUPBY_MEM_CAP";
  }
  controls_.budget.Reset(mem_cap);
  MemoryBudget::SetProcessCeiling(
      static_cast<uint64_t>(Int64FromEnv("APLUS_MEM_CAP_TOTAL", 0)));
  for (int i = 0; i < plan_->num_pipelines(); ++i) {
    static_cast<ProjectSinkOp*>(plan_->sink(i))->ResetBatch();
  }
  // Timed end-to-end: a staged query does real work (partial merge, the
  // sort, the Finish emission) after the plan's own timer stops, and the
  // caller waits for all of it.
  WallTimer timer;
  uint64_t count =
      num_threads == kUseEnvThreads ? plan_->Execute() : plan_->Execute(num_threads);
  // Partial batches drain on the calling thread once the workers joined
  // (into each pipeline's own stage chain for staged queries).
  for (int i = 0; i < plan_->num_pipelines(); ++i) {
    static_cast<ProjectSinkOp*>(plan_->sink(i))->Flush();
  }
  // Abnormal stop (anything but a satisfied LIMIT): surface the typed
  // status with partial-progress counters. Staged partial tables are
  // incomplete, so no merge, no Finish, no rows — a clean error instead
  // of silently wrong aggregates; stage-less projections have already
  // streamed a partial row prefix to the consumer.
  const StopReason stop_reason = controls_.token.reason();
  if (stop_reason != StopReason::kNone && stop_reason != StopReason::kLimit) {
    controls_.consumer = nullptr;
    if (stop_reason == StopReason::kResourceExhausted) {
      out.status = QueryOutcome::Status::kResourceExhausted;
      out.error = "memory budget exceeded (" + std::string(mem_cap_source) + "=" +
                  std::to_string(mem_cap) + " bytes)";
    } else if (stop_reason == StopReason::kTimeout) {
      out.status = QueryOutcome::Status::kTimeout;
      out.error = "query deadline exceeded (" + std::to_string(timeout_ms) + " ms)";
    } else {
      out.status = QueryOutcome::Status::kCancelled;
      out.error = "query cancelled";
    }
    out.count = count;
    out.rows = (!has_stages_ && !count_star_only_ && !columns_.empty()) ? count : 0;
    out.seconds = timer.ElapsedSeconds();
    // Consume the stop reason: a cancel that fired during this execute
    // must not bleed into the next one (a Cancel racing this reset may
    // land on either execution — see util/deadline.h).
    controls_.token.Reset();
    return out;
  }
  if (has_stages_) {
    // Parallel partial-merge: fold every worker chain into pipeline 0 —
    // stages with an order-free fold (grouped aggregation) hash-partition
    // the k worker tables across the pool — then run the Finish cascade
    // there; the final rows stream to the consumer from this thread only.
    auto* primary = static_cast<ProjectSinkOp*>(plan_->sink(0));
    worker_sinks_.clear();
    for (int i = 1; i < plan_->num_pipelines(); ++i) {
      worker_sinks_.push_back(static_cast<ProjectSinkOp*>(plan_->sink(i)));
    }
    // The env-thread path runs ProjectSinkOp plans serially (see
    // Plan::Execute()), so its worker partials are empty: merge serially.
    int merge_threads = num_threads == kUseEnvThreads ? 1 : num_threads;
    primary->MergeAllStages(worker_sinks_.data(), static_cast<int>(worker_sinks_.size()),
                            merge_threads);
    primary->FinishStages();
    out.rows = controls_.rows_emitted;
    // The deadline (or a cancel) can land mid-cascade — the sort / group
    // emission polls the token too. The delivered prefix is incomplete:
    // report the typed status with the partial row counter.
    const StopReason finish_reason = controls_.token.reason();
    if (finish_reason == StopReason::kTimeout || finish_reason == StopReason::kCancelled) {
      controls_.consumer = nullptr;
      out.status = finish_reason == StopReason::kTimeout
                       ? QueryOutcome::Status::kTimeout
                       : QueryOutcome::Status::kCancelled;
      out.error = finish_reason == StopReason::kTimeout
                      ? "query deadline exceeded (" + std::to_string(timeout_ms) +
                            " ms, during result emission)"
                      : "query cancelled (during result emission)";
      out.count = count;
      out.seconds = timer.ElapsedSeconds();
      controls_.token.Reset();  // consume; see the abnormal-stop block
      return out;
    }
  } else if (count_star_only_) {
    // COUNT(*) pushdown: the counting sink already produced the answer;
    // synthesize the single output row (LIMIT 0 suppresses it).
    if (has_limit_ && limit_ == 0) {
      out.rows = 0;
    } else {
      count_row_.Clear();
      count_row_.AppendInt(0, static_cast<int64_t>(count));
      count_row_.AdvanceRow();
      if (consumer != nullptr) consumer->OnBatch(count_row_);
      out.rows = 1;
    }
  } else {
    out.rows = columns_.empty() ? 0 : count;
  }
  controls_.consumer = nullptr;
  out.count = count;
  out.seconds = timer.ElapsedSeconds();
  return out;
}

PreparedQuery* Session::Prepare(const std::string& text, const PrepareOptions& options) {
  std::string key = NormalizeQueryText(text);
  ++tick_;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A cached plan stays *valid* across ingest (current() checks the
    // store version only), but its join order was costed on the graph as
    // of Prepare; once the graph doubles, re-prepare for plan quality.
    uint64_t num_edges = db_->graph().num_edges();
    uint64_t prepared_edges = it->second.prepared->num_edges_at_prepare();
    bool quality_stale = num_edges < prepared_edges || num_edges > prepared_edges * 2;
    if (it->second.prepared->current() && !quality_stale) {
      ++cache_hits_;
      it->second.last_used = tick_;
      return it->second.prepared.get();
    }
    cache_.erase(it);  // stale: the store moved on, or the graph outgrew the plan
  }
  ++cache_misses_;
  std::unique_ptr<PreparedQuery> prepared = db_->Prepare(text, options);
  PreparedQuery* raw = prepared.get();
  if (!raw->ok()) {
    last_failed_ = std::move(prepared);
    return last_failed_.get();
  }
  // Session-wide default deadline, stamped at prepare time; a later
  // set_deadline_millis on the prepared query overrides it.
  if (default_deadline_millis_ >= 0) raw->set_deadline_millis(default_deadline_millis_);
  if (cache_.size() >= kMaxCachedQueries) {
    auto victim = cache_.begin();
    for (auto entry = cache_.begin(); entry != cache_.end(); ++entry) {
      if (entry->second.last_used < victim->second.last_used) victim = entry;
    }
    cache_.erase(victim);
  }
  cache_.emplace(std::move(key), CacheEntry{std::move(prepared), tick_});
  return raw;
}

QueryOutcome Session::Execute(const std::string& text, RowConsumer* consumer,
                              int num_threads) {
  PreparedQuery* prepared = Prepare(text);
  QueryOutcome out = prepared->Execute(consumer, num_threads);
  if (out.ok()) out.plan = prepared->plan_text();
  return out;
}

}  // namespace aplus
