#ifndef APLUS_CORE_DATABASE_H_
#define APLUS_CORE_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>

#include "core/admission.h"
#include "core/session.h"
#include "index/index_store.h"
#include "index/maintenance.h"
#include "optimizer/dp_optimizer.h"
#include "query/cypher_parser.h"
#include "query/executor.h"
#include "query/query_graph.h"
#include "storage/graph.h"
#include "view/ddl_parser.h"

namespace aplus {

// Result of executing a DDL command (RECONFIGURE / CREATE ... VIEW).
struct DdlResult {
  bool ok = false;
  std::string message;
  double seconds = 0.0;  // index (re)build time — the IR/IC columns
};

// Capacity contract of one concurrent ingest phase: the graph and index
// storage are pre-sized so lock-free readers never race a reallocation.
struct ConcurrentIngestOptions {
  uint64_t max_vertices = 0;  // >= current count; hard cap during the phase
  uint64_t max_edges = 0;
  // Compact deltas on a dedicated merger thread (default); false merges
  // inline on the ingest thread once a page crosses its cost threshold.
  bool background_merge = true;
};

// The public facade of the engine: a property graph plus its A+ index
// subsystem, the DP optimizer, and maintenance.
//
// The serving flow prepares once and executes per request:
//
//   Database db(std::move(graph));
//   db.BuildPrimaryIndexes();
//   db.ExecuteDdl("RECONFIGURE PRIMARY INDEXES ...");
//
//   Session session(&db);  // one per serving thread
//   PreparedQuery* q = session.Prepare(
//       "MATCH (a)-[r1:W]->(b)-[r2:W]->(c) WHERE a.ID = $src "
//       "RETURN b, c, r2.amount LIMIT 100");
//   q->Bind("src", Value::Int64(42));
//   QueryOutcome out = q->Execute(&my_row_consumer);   // streams RowBatches
//
// One-shot paths (Execute / ExecuteCypher) parse + optimize per call and
// also report through QueryOutcome.
class Segment;

class Database {
 public:
  explicit Database(Graph graph);
  ~Database();

  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }
  IndexStore& index_store() { return *store_; }
  const IndexStore& index_store() const { return *store_; }
  Maintainer& maintainer() { return *maintainer_; }

  // Builds / reconfigures the primary A+ indexes. Returns build seconds.
  double BuildPrimaryIndexes(const IndexConfig& config = IndexConfig::Default());

  // Programmatic secondary index creation. FW-BW views produce one index
  // per direction; `seconds` (optional) receives the total build time.
  VpIndex* CreateVpIndex(const std::string& name, const Predicate& pred,
                         const IndexConfig& config, Direction dir, double* seconds = nullptr);
  // `budget_bytes` > 0 partially materializes the 2-hop view under the
  // given memory budget (Section III-B2 future work).
  EpIndex* CreateEpIndex(const std::string& name, EpKind kind, const Predicate& pred,
                         const IndexConfig& config, double* seconds = nullptr,
                         size_t budget_bytes = 0);

  // Parses and executes one of the paper's index DDL commands. Rejected
  // with a typed error on a segment-backed database (sealed pages are
  // immutable).
  DdlResult ExecuteDdl(const std::string& command);

  // --- Sealed segments (storage/segment.h) ---
  //
  // Writes the graph plus both primary indexes to an immutable segment
  // file. Requires built indexes and no active ingest; pending index
  // updates are flushed first. Returns false with a description in
  // *error.
  bool SealToSegment(const std::string& path, std::string* error = nullptr);

  // Opens a sealed segment: maps the file read-only, copies the graph
  // section into memory, and attaches both primary indexes as views into
  // the mapping — no index rebuild. The database holds the mapping for
  // its lifetime. Segment-backed databases are read-only on the DDL /
  // ingest axis: ExecuteDdl returns a typed error and
  // BeginConcurrentIngest / CreateVpIndex / CreateEpIndex /
  // BuildPrimaryIndexes are rejected. Queries, sessions, morsel
  // parallelism and the server run unchanged. Returns null with a
  // description in *error on any validation failure.
  static std::unique_ptr<Database> OpenFromSegment(const std::string& path,
                                                   std::string* error = nullptr);

  bool segment_backed() const { return segment_ != nullptr; }

  // --- Concurrent serving under online updates ---
  //
  // Between Begin and End, exactly one ingest thread may stream updates
  // (Graph::AddEdge / property writes, then Maintainer::OnEdgeInserted /
  // OnEdgeDeleted — property writes must precede the maintainer call so
  // the edge is fully formed when it becomes probe-visible) while any
  // number of serving threads execute prepared queries. Readers see
  // per-list read-committed snapshots: each probe merges the page's
  // published run + delta atomically, so every row is backed by edges
  // that were live at some point during the phase; whole-query snapshot
  // isolation is NOT provided. DDL, secondary indexes and string
  // property writes are unsupported while the phase is active. Both
  // transitions require quiescence (no queries in flight).
  //
  // Capacity overrun is a typed error, not an abort: once max_vertices /
  // max_edges are exhausted, Graph::AddVertex / AddEdge return
  // kInvalidVertex / kInvalidEdge and the caller must NOT invoke the
  // maintainer for the failed insert. EndConcurrentIngest still flushes
  // cleanly afterwards — the indexes are exact over the edges that did
  // insert.
  void BeginConcurrentIngest(const ConcurrentIngestOptions& options);
  // Stops the merger, flushes every delta and drains the epoch queue;
  // the indexes are exact w.r.t. the graph afterwards.
  void EndConcurrentIngest();
  bool concurrent_ingest_active() const {
    return ingest_active_.load(std::memory_order_acquire);
  }

  // --- Serving API ---

  // Parses + optimizes `text` once into a reusable PreparedQuery (always
  // non-null; parse/plan failures are carried in its status and
  // re-reported by Execute). Prefer Session::Prepare, which caches on
  // normalized query text and revalidates against the store/graph
  // version counters.
  std::unique_ptr<PreparedQuery> Prepare(const std::string& text,
                                         const PrepareOptions& options = {});

  // Deep-clones a successfully prepared query without re-parsing or
  // re-optimizing: every physical operator (and sink stage) of `src`'s
  // primary pipeline is cloned into a fresh Plan wired to a fresh
  // PreparedQuery with its own ExecControls, empty scratch, and all
  // parameters unbound. `src` is read-only here and must not be
  // executing concurrently. This is the cross-session shared plan
  // cache's checkout path (src/server/shared_plan_cache.h): parse +
  // optimize once per distinct query text, clone per connection.
  std::unique_ptr<PreparedQuery> ClonePrepared(const PreparedQuery& src);

  // Optimizes and runs a programmatic pattern (counting); flushes
  // pending index updates first.
  QueryOutcome Execute(const QueryGraph& query);

  // One-shot Cypher: Prepare + Execute. Rows stream to `consumer` when
  // the query projects and one is given.
  QueryOutcome ExecuteCypher(const std::string& text, RowConsumer* consumer = nullptr);

  // Figure 6-style plan rendering without executing.
  std::string Explain(const QueryGraph& query);
  std::string Explain(const std::string& text);

  size_t IndexMemoryBytes() const { return store_->TotalMemoryBytes(); }

  // Admission gate shared by every session's PreparedQuery::Execute.
  // Configured from APLUS_MAX_CONCURRENT (plus APLUS_ADMISSION_QUEUE /
  // APLUS_ADMISSION_TIMEOUT_MS) at construction, or programmatically via
  // admission().Configure(). Disabled by default.
  AdmissionController& admission() { return admission_; }

 private:
  // Rebuilds the cached optimizer when the index set or the graph
  // changed since it was created.
  DpOptimizer* CachedOptimizer();

  Graph graph_;
  // Mapping behind segment-backed primary pages; null for in-memory
  // databases. Declared before store_ so the store (whose pages view the
  // mapping) destructs first and nothing dangles during teardown.
  std::unique_ptr<Segment> segment_;
  std::unique_ptr<IndexStore> store_;
  std::unique_ptr<Maintainer> maintainer_;
  std::unique_ptr<DpOptimizer> optimizer_;
  AdmissionController admission_;
  std::atomic<bool> ingest_active_{false};
  uint64_t optimizer_store_version_ = ~0ULL;
  uint64_t optimizer_num_edges_ = 0;
};

}  // namespace aplus

#endif  // APLUS_CORE_DATABASE_H_
