#ifndef APLUS_CORE_SESSION_H_
#define APLUS_CORE_SESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/cypher_parser.h"
#include "query/executor.h"
#include "query/row_sink.h"

namespace aplus {

class Database;

// The single result type of the serving API: every query/command path
// (prepared execution, one-shot Cypher, programmatic QueryGraph runs)
// reports through it. Errors land in `status` + `error` — never in the
// plan text or a magic count.
struct QueryOutcome {
  enum class Status : uint8_t {
    kOk = 0,
    kParseError,   // Cypher text did not parse
    kPlanError,    // no plan (disconnected / unsupported query)
    kBindError,    // unknown/unbound/type-mismatched parameter
    kInvalidated,  // indexes or graph changed since Prepare; re-prepare
    kExecError,    // execution failed
    // Execution aborted cleanly on a resource cap (the per-query memory
    // budget or the process ceiling); staged queries deliver no rows.
    kResourceExhausted,
    // Execution stopped at the deadline (set_deadline_millis / Session
    // default / APLUS_QUERY_TIMEOUT_MS). `count` carries the partial
    // match progress; staged queries deliver no rows, stage-less
    // projections may have streamed a partial prefix.
    kTimeout,
    // Execution stopped by PreparedQuery::Cancel() from another thread.
    // Partial-progress semantics match kTimeout.
    kCancelled,
    // Admission control rejected the execute: the concurrent-execute
    // slots were full and the wait queue was full or timed out
    // (APLUS_MAX_CONCURRENT). Nothing ran; retry later.
    kOverloaded,
  };

  Status status = Status::kOk;
  std::string error;  // empty when ok()
  // Complete matches enumerated. Stage-less LIMIT queries stop early, so
  // count == min(LIMIT, matches) there; aggregate / ORDER BY queries
  // enumerate everything (their LIMIT caps the *output* rows).
  uint64_t count = 0;
  // Rows delivered through the sink pipeline: projected matches for
  // plain projections, post-aggregation/-ordering/-limit output rows for
  // staged queries (e.g. 1 for a global RETURN COUNT(*)), 0 for a bare
  // MATCH count.
  uint64_t rows = 0;
  double seconds = 0.0;
  // Figure 6-style plan rendering. Filled by the one-shot paths
  // (Database::Execute/ExecuteCypher); PreparedQuery::Execute leaves it
  // empty so the steady-state hot path stays allocation-free — read
  // PreparedQuery::plan_text() instead.
  std::string plan;

  bool ok() const { return status == Status::kOk; }
};

const char* ToString(QueryOutcome::Status status);

struct PrepareOptions {
  // RowBatch capacity (rows per consumer delivery) of the projection
  // sink. Larger batches amortize the consumer callback; smaller ones
  // lower first-row latency.
  uint32_t batch_rows = 1024;
};

// A parsed + optimized query whose physical plan is reused across
// executions: Bind patches $param slots directly in the plan (no
// re-parse, no re-optimization), Execute streams typed row batches to a
// RowConsumer. Steady-state Bind + Execute performs zero heap
// allocations after warm-up (asserted by tests/zero_alloc_test.cc).
//
// Thread-safety: a PreparedQuery is NOT thread-safe — use one Session
// (and thus one PreparedQuery instance) per thread, and never share one
// mid-execute. Execute(consumer, k > 1) runs the plan morsel-parallel;
// for plain projections the consumer's OnBatch then fires concurrently
// from the workers (the final partial flush is always on the calling
// thread). Staged queries (aggregation / ORDER BY) instead accumulate
// per-worker partial state, merge it once the workers joined, and
// deliver every batch from the calling thread.
class PreparedQuery {
 public:
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  // Prepare status: a parse/plan failure is carried here and re-reported
  // by Execute (failed prepares are cheap error holders, never cached).
  bool ok() const { return status_ == QueryOutcome::Status::kOk; }
  QueryOutcome::Status status() const { return status_; }
  const std::string& error() const { return error_; }

  size_t num_params() const { return params_.size(); }
  const std::string& param_name(size_t i) const { return params_[i].name; }
  int FindParam(const std::string& name) const;

  // Binds $name to `value`, patching every parameter slot of the plan in
  // place. Returns false (and records bind_error()) on unknown names and
  // type mismatches; category-typed parameters also accept the category
  // value's string name. Bindings persist across Execute calls until
  // re-bound.
  bool Bind(const std::string& name, const Value& value);
  const std::string& bind_error() const { return bind_error_; }

  // Unbinds every parameter (pooled-instance hygiene: a shared-cache
  // instance returned by one connection must not execute with its
  // previous owner's values — see src/server/shared_plan_cache.h).
  // Execute reports kBindError until the parameters are re-bound.
  void ClearBindings();

  // Runs the plan. Rows stream to `consumer` (may be null: rows are
  // counted, then dropped). `num_threads` as in RunPlan: kUseEnvThreads
  // defers to APLUS_THREADS (serial for projecting queries), >= 1 pins
  // the worker count.
  QueryOutcome Execute(RowConsumer* consumer = nullptr, int num_threads = kUseEnvThreads);

  // Wall-clock deadline for each Execute, in milliseconds: every worker
  // polls it cooperatively and the execute returns kTimeout with partial
  // counters once it passes. 0 disables; a negative value (the default)
  // defers to the Session default, then APLUS_QUERY_TIMEOUT_MS.
  void set_deadline_millis(int64_t millis) { timeout_millis_ = millis; }
  int64_t deadline_millis() const { return timeout_millis_; }

  // Requests cooperative cancellation of the in-flight Execute (or the
  // next one, if none is running — effective until that Execute ends).
  // Safe to call from any thread; the only PreparedQuery member that is.
  void Cancel() { controls_.token.Cancel(); }

  // Per-query memory budget, in bytes, charged by the group/sort/project
  // arenas and plan scratch; crossing it returns kResourceExhausted.
  // 0 removes the cap; a negative value (the default) defers to
  // APLUS_MEM_CAP, then the deprecated APLUS_GROUPBY_MEM_CAP alias.
  void set_mem_cap_bytes(int64_t bytes) { mem_cap_bytes_ = bytes; }

  // True while the plan is still valid against the database's index
  // store version and graph edge count; false means Execute will return
  // kInvalidated and the query must be re-prepared.
  bool current() const;

  const std::string& plan_text() const { return plan_text_; }
  // Output schema: what the consumer receives per batch. For aggregate /
  // ORDER BY queries this is the post-stage schema (group keys and
  // aggregate results in RETURN order), not the projected inputs.
  const std::vector<ProjectColumn>& columns() const { return columns_; }
  bool has_limit() const { return has_limit_; }
  uint64_t limit() const { return limit_; }
  // True when the sink carries post-projection stages (aggregation /
  // ORDER BY / staged LIMIT).
  bool has_stages() const { return has_stages_; }
  // True when the query is a bare `RETURN COUNT(*)` (no grouping, no
  // ordering): the plan runs the counting sink with no row
  // materialization and Execute synthesizes the single output row from
  // the match count.
  bool count_star_only() const { return count_star_only_; }
  const std::string& normalized_text() const { return normalized_text_; }
  // Edge count the plan was costed against (Session's plan-quality
  // re-prepare heuristic compares it to the live graph).
  uint64_t num_edges_at_prepare() const { return num_edges_; }

 private:
  friend class Database;

  explicit PreparedQuery(Database* db) : db_(db) {}

  struct ParamInfo {
    std::string name;
    ValueType expected = ValueType::kNull;
    prop_key_t key = kInvalidPropKey;
    int pin_var = -1;
    bool bound = false;
    Value value;
  };

  // Re-collects plan slots when the pipeline count changed (a parallel
  // Execute added replicas) and re-applies every bound parameter.
  void RefreshSlots();
  void ApplyParam(const ParamInfo& param, int index);

  Database* db_;
  QueryOutcome::Status status_ = QueryOutcome::Status::kOk;
  std::string error_;       // prepare-time error (parse/plan)
  std::string bind_error_;  // last Bind failure
  std::string normalized_text_;

  QueryGraph query_;  // placeholder-pinned pattern (kept for rendering/debugging)
  std::vector<ProjectColumn> columns_;
  bool has_limit_ = false;
  bool has_stages_ = false;
  bool count_star_only_ = false;
  uint64_t limit_ = 0;
  std::vector<ParamInfo> params_;
  RowBatch count_row_;  // the one-row COUNT(*) pushdown result, reused
  std::vector<ProjectSinkOp*> worker_sinks_;  // MergeAllStages scratch

  std::unique_ptr<Plan> plan_;
  ExecControls controls_;  // shared with every ProjectSinkOp replica
  std::string plan_text_;
  uint64_t store_version_ = 0;
  uint64_t num_edges_ = 0;
  int64_t timeout_millis_ = -1;  // < 0: inherit session default / env
  int64_t mem_cap_bytes_ = -1;   // < 0: inherit env

  ParamSlots slots_;
  int slots_pipelines_ = 0;
};

// A per-thread serving handle: wraps a Database with a prepared-query
// cache keyed on normalized query text. Cache entries are revalidated
// against the store/graph version counters on every Prepare, so DDL
// (RECONFIGURE / CREATE ... VIEW) and ingest transparently re-plan on
// the next request. Sessions are cheap; use one per thread (neither the
// Session nor its PreparedQuerys are thread-safe).
class Session {
 public:
  // Cache capacity: a long-lived session serving literal-inlined (un-
  // parameterized) texts must not grow without bound, so the least-
  // recently-used entry is evicted once this many are cached.
  static constexpr size_t kMaxCachedQueries = 256;

  explicit Session(Database* db) : db_(db) {}

  // Returns the cached (or freshly prepared) query for `text`. The
  // pointer is owned by the session and stays valid until the entry is
  // re-prepared (version-stale), LRU-evicted, or the session dies — so
  // per-request code should call Prepare each time (hits are cheap)
  // rather than holding the pointer across unrelated Prepares.
  // `options` apply on cache misses only. Prepare failures are returned
  // but not cached.
  PreparedQuery* Prepare(const std::string& text, const PrepareOptions& options = {});

  // One-shot convenience: Prepare (cached) + Execute. Parameterized
  // queries must go through Prepare/Bind.
  QueryOutcome Execute(const std::string& text, RowConsumer* consumer = nullptr,
                       int num_threads = kUseEnvThreads);

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  size_t cache_size() const { return cache_.size(); }

  // Default per-execute deadline stamped onto queries prepared after
  // this call (explicit set_deadline_millis overrides it per query).
  // Negative (the default) leaves queries on APLUS_QUERY_TIMEOUT_MS.
  void set_default_deadline_millis(int64_t millis) { default_deadline_millis_ = millis; }

 private:
  struct CacheEntry {
    std::unique_ptr<PreparedQuery> prepared;
    uint64_t last_used = 0;  // Prepare tick, for LRU eviction
  };

  Database* db_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::unique_ptr<PreparedQuery> last_failed_;  // error holder, not cached
  int64_t default_deadline_millis_ = -1;
  uint64_t tick_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

// Cache key normalization: trims and collapses whitespace runs so
// formatting variants of one query share a plan.
std::string NormalizeQueryText(const std::string& text);

}  // namespace aplus

#endif  // APLUS_CORE_SESSION_H_
