#include "index/bitmap_index.h"

#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

BitmapIndex::BitmapIndex(const Graph* graph, const PrimaryIndex* primary, OneHopViewDef view)
    : graph_(graph), primary_(primary), view_(std::move(view)) {}

double BitmapIndex::Build() {
  WallTimer timer;
  num_edges_indexed_ = 0;
  page_bits_.assign(primary_->num_pages(), {});
  for (uint32_t p = 0; p < primary_->num_pages(); ++p) {
    const IdListPage& page = primary_->page(p);
    APLUS_CHECK(!page.is_packed()) << "bitmap indexes require raw primary pages";
    size_t num_entries = page.num_entries;
    std::vector<uint64_t>& bits = page_bits_[p];
    bits.assign((num_entries + 63) / 64, 0);
    for (size_t i = 0; i < num_entries; ++i) {
      edge_id_t e = page.eids[i];
      EvalContext ctx;
      ctx.graph = graph_;
      ctx.adj_edge = e;
      ctx.nbr = page.nbrs[i];
      ctx.src = graph_->edge_src(e);
      ctx.dst = graph_->edge_dst(e);
      if (view_.pred.Eval(ctx)) {
        bits[i >> 6] |= 1ULL << (i & 63);
        ++num_edges_indexed_;
      }
    }
  }
  build_seconds_ = timer.ElapsedSeconds();
  return build_seconds_;
}

BitmapIndex::BitmapSlice BitmapIndex::GetBits(vertex_id_t v,
                                              const std::vector<category_t>& cats) const {
  BitmapSlice slice;
  uint32_t page_idx = v / kGroupSize;
  if (page_idx >= page_bits_.size()) return slice;
  const IdListPage& page = primary_->page(page_idx);
  uint32_t fp = primary_->fanout_product();
  uint32_t start = (v % kGroupSize) * fp;
  uint32_t span = fp;
  for (size_t i = 0; i < cats.size(); ++i) {
    span /= primary_->fanouts()[i];
    start += cats[i] * span;
  }
  slice.words = page_bits_[page_idx].data();
  slice.bit_offset = page.csr[start];
  slice.len = page.csr[start + span] - page.csr[start];
  return slice;
}

size_t BitmapIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& bits : page_bits_) bytes += bits.capacity() * sizeof(uint64_t);
  return bytes;
}

}  // namespace aplus
