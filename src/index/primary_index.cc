#include "index/primary_index.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

int64_t EncodeDoubleSortKey(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  // Map IEEE-754 to a monotonically increasing unsigned space, then shift
  // into signed space so plain int64 comparison preserves double order.
  if (bits >> 63) {
    bits = ~bits;
  } else {
    bits |= 0x8000000000000000ULL;
  }
  return static_cast<int64_t>(bits ^ 0x8000000000000000ULL);
}

PrimaryIndex::PrimaryIndex(const Graph* graph, Direction direction)
    : graph_(graph), direction_(direction) {}

category_t PrimaryIndex::CategoryOf(const PartitionCriterion& criterion, edge_id_t e,
                                    vertex_id_t nbr) const {
  switch (criterion.source) {
    case PartitionSource::kEdgeLabel:
      return graph_->edge_label(e);
    case PartitionSource::kNbrLabel:
      return graph_->vertex_label(nbr);
    case PartitionSource::kEdgeProp: {
      const PropertyColumn* col = graph_->edge_props().column(criterion.key);
      APLUS_CHECK(col != nullptr);
      return col->GetCategoryOrNullSlot(e);
    }
    case PartitionSource::kNbrProp: {
      const PropertyColumn* col = graph_->vertex_props().column(criterion.key);
      APLUS_CHECK(col != nullptr);
      return col->GetCategoryOrNullSlot(nbr);
    }
  }
  return 0;
}

uint32_t PrimaryIndex::BucketOf(const IndexConfig& config, const std::vector<uint32_t>& fanouts,
                                edge_id_t e, vertex_id_t nbr) const {
  uint32_t bucket = 0;
  for (size_t i = 0; i < config.partitions.size(); ++i) {
    category_t cat = CategoryOf(config.partitions[i], e, nbr);
    APLUS_DCHECK(cat < fanouts[i]) << "category out of range";
    bucket = bucket * fanouts[i] + cat;
  }
  return bucket;
}

int64_t EntrySortKey(const Graph& graph, const SortCriterion& criterion, edge_id_t e,
                     vertex_id_t nbr) {
  switch (criterion.source) {
    case SortSource::kNbrId:
      return nbr;
    case SortSource::kNbrLabel:
      return graph.vertex_label(nbr);
    case SortSource::kEdgeProp:
    case SortSource::kNbrProp: {
      bool is_edge = criterion.source == SortSource::kEdgeProp;
      const PropertyStore& store = is_edge ? graph.edge_props() : graph.vertex_props();
      const PropertyColumn* col = store.column(criterion.key);
      APLUS_CHECK(col != nullptr);
      uint64_t id = is_edge ? e : nbr;
      if (id >= col->size() || col->IsNull(id)) return kNullSortKey;
      switch (col->type()) {
        case ValueType::kInt64:
        case ValueType::kBool:
          return col->GetInt64(id);
        case ValueType::kCategory:
          return col->GetCategoryOrNullSlot(id);
        case ValueType::kDouble:
          return EncodeDoubleSortKey(col->GetDouble(id));
        default:
          APLUS_CHECK(false) << "sort criterion on unsupported type " << ToString(col->type());
      }
    }
  }
  return 0;
}

int64_t PrimaryIndex::SortKeyComponent(const SortCriterion& criterion, edge_id_t e,
                                       vertex_id_t nbr) const {
  return EntrySortKey(*graph_, criterion, e, nbr);
}

SortKey PrimaryIndex::ComputeSortKey(const IndexConfig& config, edge_id_t e,
                                     vertex_id_t nbr) const {
  SortKey key;
  APLUS_CHECK_LE(config.sorts.size(), static_cast<size_t>(kMaxSortKeys));
  key.num_keys = static_cast<int>(config.sorts.size());
  for (int i = 0; i < key.num_keys; ++i) {
    key.keys[i] = SortKeyComponent(config.sorts[i], e, nbr);
  }
  key.nbr = nbr;
  key.eid = e;
  return key;
}

double PrimaryIndex::Build(const IndexConfig& config) {
  WallTimer timer;
  config_ = config;
  fanouts_.clear();
  fanout_product_ = 1;
  for (const PartitionCriterion& p : config_.partitions) {
    uint32_t fanout = PartitionFanout(graph_->catalog(), p);
    APLUS_CHECK_GT(fanout, 0u) << "empty partition domain";
    fanouts_.push_back(fanout);
    APLUS_CHECK_LT(static_cast<uint64_t>(fanout_product_) * fanout, 1ULL << 24)
        << "partitioning fan-out too large";
    fanout_product_ *= fanout;
  }

  uint64_t nv = graph_->num_vertices();
  uint32_t num_pages = static_cast<uint32_t>((nv + kGroupSize - 1) / kGroupSize);
  pages_.clear();
  pages_.reserve(num_pages);
  for (uint32_t p = 0; p < num_pages; ++p) pages_.push_back(std::make_unique<IdListPage>());

  // Distribute edges to their page.
  std::vector<uint32_t> page_counts(num_pages, 0);
  uint64_t ne = graph_->num_edges();
  for (edge_id_t e = 0; e < ne; ++e) page_counts[PageOf(OwnerOf(e))]++;
  std::vector<std::vector<edge_id_t>> page_edges(num_pages);
  for (uint32_t p = 0; p < num_pages; ++p) page_edges[p].reserve(page_counts[p]);
  for (edge_id_t e = 0; e < ne; ++e) page_edges[PageOf(OwnerOf(e))].push_back(e);

  num_edges_indexed_ = 0;
  for (uint32_t p = 0; p < num_pages; ++p) {
    RebuildPage(p, page_edges[p]);
    num_edges_indexed_ += page_edges[p].size();
  }
  pending_updates_ = 0;
  build_seconds_ = timer.ElapsedSeconds();
  return build_seconds_;
}

void PrimaryIndex::RebuildPage(uint32_t page_idx, const std::vector<edge_id_t>& edges) {
  IdListPage& page = *pages_[page_idx];
  uint32_t slots = kGroupSize * fanout_product_;

  std::vector<BuildEntry> entries;
  entries.reserve(edges.size());
  for (edge_id_t e : edges) {
    vertex_id_t owner = OwnerOf(e);
    vertex_id_t nbr = NbrOf(e);
    BuildEntry entry;
    entry.bucket = (owner % kGroupSize) * fanout_product_ + BucketOf(config_, fanouts_, e, nbr);
    entry.nbr = nbr;
    entry.eid = e;
    entry.key = ComputeSortKey(config_, e, nbr);
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(), [](const BuildEntry& a, const BuildEntry& b) {
    if (a.bucket != b.bucket) return a.bucket < b.bucket;
    return a.key < b.key;
  });

  page.csr.assign(slots + 1, 0);
  for (const BuildEntry& entry : entries) page.csr[entry.bucket + 1]++;
  for (uint32_t s = 0; s < slots; ++s) page.csr[s + 1] += page.csr[s];

  page.nbrs.resize(entries.size());
  page.eids.resize(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    page.nbrs[i] = entries[i].nbr;
    page.eids[i] = entries[i].eid;
  }
  page.insert_buffer.clear();
  page.tombstones.clear();
  page.num_tombstones = 0;
}

AdjListSlice PrimaryIndex::GetList(vertex_id_t v, const std::vector<category_t>& cats) const {
  APLUS_DCHECK(v < graph_->num_vertices());
  APLUS_DCHECK(cats.size() <= fanouts_.size()) << "partition path too long";
  if (PageOf(v) >= pages_.size() || pages_[PageOf(v)]->csr.empty()) return AdjListSlice();
  const IdListPage& page = *pages_[PageOf(v)];
  uint32_t base = (v % kGroupSize) * fanout_product_;
  uint32_t start = base;
  uint32_t span = fanout_product_;
  for (size_t i = 0; i < cats.size(); ++i) {
    span /= fanouts_[i];
    start += cats[i] * span;
  }
  AdjListSlice slice;
  slice.nbrs = page.nbrs.data() + page.csr[start];
  slice.edges = page.eids.data() + page.csr[start];
  slice.len = page.csr[start + span] - page.csr[start];
  return slice;
}

AdjListSlice PrimaryIndex::GetFullList(vertex_id_t v) const { return GetList(v, {}); }

void PrimaryIndex::GetListBase(vertex_id_t v, const vertex_id_t** nbrs, const edge_id_t** eids,
                               uint32_t* len) const {
  if (PageOf(v) >= pages_.size() || pages_[PageOf(v)]->csr.empty()) {
    *nbrs = nullptr;
    *eids = nullptr;
    *len = 0;
    return;
  }
  const IdListPage& page = *pages_[PageOf(v)];
  uint32_t base = (v % kGroupSize) * fanout_product_;
  uint32_t begin = page.csr[base];
  uint32_t end = page.csr[base + fanout_product_];
  *nbrs = page.nbrs.data() + begin;
  *eids = page.eids.data() + begin;
  *len = end - begin;
}

size_t PrimaryIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& page : pages_) bytes += page->MemoryBytes();
  return bytes;
}

size_t PrimaryIndex::PartitionLevelBytes() const {
  size_t bytes = 0;
  for (const auto& page : pages_) bytes += page->csr.capacity() * sizeof(uint32_t);
  return bytes;
}

void PrimaryIndex::InsertEdge(edge_id_t e) {
  vertex_id_t owner = OwnerOf(e);
  uint32_t page_idx = PageOf(owner);
  // The graph may have grown past the pages built at Build() time.
  while (pages_.size() <= page_idx) pages_.push_back(std::make_unique<IdListPage>());
  IdListPage& page = *pages_[page_idx];
  if (page.csr.empty()) page.csr.assign(kGroupSize * fanout_product_ + 1, 0);
  page.insert_buffer.push_back(e);
  ++pending_updates_;
  ++num_edges_indexed_;
  if (page.insert_buffer.size() >= kUpdateBufferCapacity) MergePage(page_idx);
}

void PrimaryIndex::DeleteEdge(edge_id_t e) {
  vertex_id_t owner = OwnerOf(e);
  uint32_t page_idx = PageOf(owner);
  APLUS_CHECK_LT(page_idx, pages_.size());
  IdListPage& page = *pages_[page_idx];
  // The edge may still sit in the insert buffer.
  for (size_t i = 0; i < page.insert_buffer.size(); ++i) {
    if (page.insert_buffer[i] == e) {
      page.insert_buffer.erase(page.insert_buffer.begin() + static_cast<int64_t>(i));
      --pending_updates_;
      --num_edges_indexed_;
      return;
    }
  }
  if (page.tombstones.empty()) page.tombstones.assign(page.eids.size(), 0);
  for (size_t i = 0; i < page.eids.size(); ++i) {
    if (page.eids[i] == e && !page.tombstones[i]) {
      page.tombstones[i] = 1;
      page.num_tombstones++;
      ++pending_updates_;
      --num_edges_indexed_;
      if (page.num_tombstones >= kUpdateBufferCapacity) MergePage(page_idx);
      return;
    }
  }
  APLUS_CHECK(false) << "edge " << e << " not found for deletion";
}

void PrimaryIndex::MergePage(uint32_t page_idx) {
  IdListPage& page = *pages_[page_idx];
  std::vector<edge_id_t> edges;
  edges.reserve(page.eids.size() + page.insert_buffer.size());
  for (size_t i = 0; i < page.eids.size(); ++i) {
    if (page.tombstones.empty() || !page.tombstones[i]) edges.push_back(page.eids[i]);
  }
  uint64_t merged = page.insert_buffer.size() + page.num_tombstones;
  edges.insert(edges.end(), page.insert_buffer.begin(), page.insert_buffer.end());
  RebuildPage(page_idx, edges);
  APLUS_CHECK_GE(pending_updates_, merged);
  pending_updates_ -= merged;
}

void PrimaryIndex::FlushPage(uint32_t page_idx) {
  if (page_idx >= pages_.size()) return;
  IdListPage& page = *pages_[page_idx];
  if (!page.insert_buffer.empty() || page.num_tombstones > 0) MergePage(page_idx);
}

void PrimaryIndex::FlushUpdates() {
  for (uint32_t p = 0; p < pages_.size(); ++p) {
    IdListPage& page = *pages_[p];
    if (!page.insert_buffer.empty() || page.num_tombstones > 0) MergePage(p);
  }
  APLUS_CHECK_EQ(pending_updates_, 0u);
}

}  // namespace aplus
