#include "index/primary_index.h"

#include <algorithm>
#include <cstring>

#include "util/epoch.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

int64_t EncodeDoubleSortKey(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  // Map IEEE-754 to a monotonically increasing unsigned space, then shift
  // into signed space so plain int64 comparison preserves double order.
  if (bits >> 63) {
    bits = ~bits;
  } else {
    bits |= 0x8000000000000000ULL;
  }
  return static_cast<int64_t>(bits ^ 0x8000000000000000ULL);
}

PrimaryIndex::PrimaryIndex(const Graph* graph, Direction direction)
    : graph_(graph), direction_(direction) {}

PrimaryIndex::~PrimaryIndex() {
  for (PageSlot& slot : pages_) {
    delete slot.run.load(std::memory_order_relaxed);
    delete slot.delta.load(std::memory_order_relaxed);
  }
}

category_t PrimaryIndex::CategoryOf(const PartitionCriterion& criterion, edge_id_t e,
                                    vertex_id_t nbr) const {
  switch (criterion.source) {
    case PartitionSource::kEdgeLabel:
      return graph_->edge_label(e);
    case PartitionSource::kNbrLabel:
      return graph_->vertex_label(nbr);
    case PartitionSource::kEdgeProp: {
      const PropertyColumn* col = graph_->edge_props().column(criterion.key);
      APLUS_CHECK(col != nullptr);
      return col->GetCategoryOrNullSlot(e);
    }
    case PartitionSource::kNbrProp: {
      const PropertyColumn* col = graph_->vertex_props().column(criterion.key);
      APLUS_CHECK(col != nullptr);
      return col->GetCategoryOrNullSlot(nbr);
    }
  }
  return 0;
}

uint32_t PrimaryIndex::BucketOf(const IndexConfig& config, const std::vector<uint32_t>& fanouts,
                                edge_id_t e, vertex_id_t nbr) const {
  uint32_t bucket = 0;
  for (size_t i = 0; i < config.partitions.size(); ++i) {
    category_t cat = CategoryOf(config.partitions[i], e, nbr);
    APLUS_DCHECK(cat < fanouts[i]) << "category out of range";
    bucket = bucket * fanouts[i] + cat;
  }
  return bucket;
}

int64_t EntrySortKey(const Graph& graph, const SortCriterion& criterion, edge_id_t e,
                     vertex_id_t nbr) {
  switch (criterion.source) {
    case SortSource::kNbrId:
      return nbr;
    case SortSource::kNbrLabel:
      return graph.vertex_label(nbr);
    case SortSource::kEdgeProp:
    case SortSource::kNbrProp: {
      bool is_edge = criterion.source == SortSource::kEdgeProp;
      const PropertyStore& store = is_edge ? graph.edge_props() : graph.vertex_props();
      const PropertyColumn* col = store.column(criterion.key);
      APLUS_CHECK(col != nullptr);
      uint64_t id = is_edge ? e : nbr;
      if (id >= col->size() || col->IsNull(id)) return kNullSortKey;
      switch (col->type()) {
        case ValueType::kInt64:
        case ValueType::kBool:
          return col->GetInt64(id);
        case ValueType::kCategory:
          return col->GetCategoryOrNullSlot(id);
        case ValueType::kDouble:
          return EncodeDoubleSortKey(col->GetDouble(id));
        default:
          APLUS_CHECK(false) << "sort criterion on unsupported type " << ToString(col->type());
      }
    }
  }
  return 0;
}

int64_t PrimaryIndex::SortKeyComponent(const SortCriterion& criterion, edge_id_t e,
                                       vertex_id_t nbr) const {
  return EntrySortKey(*graph_, criterion, e, nbr);
}

SortKey PrimaryIndex::ComputeSortKey(const IndexConfig& config, edge_id_t e,
                                     vertex_id_t nbr) const {
  SortKey key;
  APLUS_CHECK_LE(config.sorts.size(), static_cast<size_t>(kMaxSortKeys));
  key.num_keys = static_cast<int>(config.sorts.size());
  for (int i = 0; i < key.num_keys; ++i) {
    key.keys[i] = SortKeyComponent(config.sorts[i], e, nbr);
  }
  key.nbr = nbr;
  key.eid = e;
  return key;
}

double PrimaryIndex::Build(const IndexConfig& config) {
  WallTimer timer;
  std::lock_guard<std::mutex> lock(writer_mu_);
  config_ = config;
  fanouts_.clear();
  fanout_product_ = 1;
  for (const PartitionCriterion& p : config_.partitions) {
    uint32_t fanout = PartitionFanout(graph_->catalog(), p);
    APLUS_CHECK_GT(fanout, 0u) << "empty partition domain";
    fanouts_.push_back(fanout);
    APLUS_CHECK_LT(static_cast<uint64_t>(fanout_product_) * fanout, 1ULL << 24)
        << "partitioning fan-out too large";
    fanout_product_ *= fanout;
  }

  uint64_t nv = graph_->num_vertices();
  uint32_t num_pages = static_cast<uint32_t>((nv + kGroupSize - 1) / kGroupSize);
  // A rebuild is DDL: callers quiesce queries first, but retire the old
  // versions anyway so the protocol is uniform.
  for (PageSlot& slot : pages_) {
    EpochManager::Global().Retire(slot.run.load(std::memory_order_relaxed));
    EpochManager::Global().Retire(slot.delta.load(std::memory_order_relaxed));
    slot.run.store(nullptr, std::memory_order_relaxed);
    slot.delta.store(nullptr, std::memory_order_relaxed);
  }
  if (pages_.size() < num_pages) {
    pages_.reserve(num_pages);
    while (pages_.size() < num_pages) pages_.emplace_back();
  } else {
    pages_.resize(num_pages);
  }

  // Distribute edges to their page.
  std::vector<uint32_t> page_counts(num_pages, 0);
  uint64_t ne = graph_->num_edges();
  for (edge_id_t e = 0; e < ne; ++e) page_counts[PageOf(OwnerOf(e))]++;
  std::vector<std::vector<edge_id_t>> page_edges(num_pages);
  for (uint32_t p = 0; p < num_pages; ++p) page_edges[p].reserve(page_counts[p]);
  for (edge_id_t e = 0; e < ne; ++e) page_edges[PageOf(OwnerOf(e))].push_back(e);

  uint64_t indexed = 0;
  for (uint32_t p = 0; p < num_pages; ++p) {
    pages_[p].run.store(BuildRun(page_edges[p]).release(), std::memory_order_release);
    indexed += page_edges[p].size();
  }
  num_edges_indexed_.store(indexed, std::memory_order_relaxed);
  pending_updates_.store(0, std::memory_order_relaxed);
  EpochManager::Global().TryReclaim();
  build_seconds_ = timer.ElapsedSeconds();
  return build_seconds_;
}

std::unique_ptr<IdListPage> PrimaryIndex::BuildRun(const std::vector<edge_id_t>& edges) const {
  auto page = std::make_unique<IdListPage>();
  uint32_t slots = kGroupSize * fanout_product_;

  std::vector<BuildEntry> entries;
  entries.reserve(edges.size());
  for (edge_id_t e : edges) {
    vertex_id_t owner = OwnerOf(e);
    vertex_id_t nbr = NbrOf(e);
    BuildEntry entry;
    entry.bucket = (owner % kGroupSize) * fanout_product_ + BucketOf(config_, fanouts_, e, nbr);
    entry.nbr = nbr;
    entry.eid = e;
    entry.key = ComputeSortKey(config_, e, nbr);
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(), [](const BuildEntry& a, const BuildEntry& b) {
    if (a.bucket != b.bucket) return a.bucket < b.bucket;
    return a.key < b.key;
  });

  page->csr_store.assign(slots + 1, 0);
  for (const BuildEntry& entry : entries) page->csr_store[entry.bucket + 1]++;
  for (uint32_t s = 0; s < slots; ++s) page->csr_store[s + 1] += page->csr_store[s];

  page->nbr_store.resize(entries.size());
  page->eid_store.resize(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    page->nbr_store[i] = entries[i].nbr;
    page->eid_store[i] = entries[i].eid;
  }
  page->Seal();
  return page;
}

AdjListSlice PrimaryIndex::SliceFromRun(const IdListPage* run, vertex_id_t v,
                                        const std::vector<category_t>& cats,
                                        codec::PackedCursor* cursor) const {
  if (run == nullptr || run->csr_len == 0) return AdjListSlice();
  uint32_t base = (v % kGroupSize) * fanout_product_;
  uint32_t start = base;
  uint32_t span = fanout_product_;
  for (size_t i = 0; i < cats.size(); ++i) {
    span /= fanouts_[i];
    start += cats[i] * span;
  }
  AdjListSlice slice;
  slice.len = run->csr[start + span] - run->csr[start];
  if (run->is_packed()) {
    slice.packed = run->packed;
    slice.packed_base = run->csr[start];
    slice.cursor = cursor;
    return slice;
  }
  slice.nbrs = run->nbrs + run->csr[start];
  slice.edges = run->eids + run->csr[start];
  return slice;
}

AdjListSlice PrimaryIndex::GetList(vertex_id_t v, const std::vector<category_t>& cats) const {
  APLUS_DCHECK(v < graph_->num_vertices());
  APLUS_DCHECK(cats.size() <= fanouts_.size()) << "partition path too long";
  if (PageOf(v) >= pages_.size()) return AdjListSlice();
  return SliceFromRun(pages_[PageOf(v)].run.load(std::memory_order_acquire), v, cats);
}

AdjListSlice PrimaryIndex::GetFullList(vertex_id_t v) const { return GetList(v, {}); }

AdjListSlice PrimaryIndex::GetListSnapshot(vertex_id_t v, const std::vector<category_t>& cats,
                                           ListMergeScratch* scratch) const {
  APLUS_DCHECK(cats.size() <= fanouts_.size()) << "partition path too long";
  uint32_t page_idx = PageOf(v);
  if (page_idx >= pages_.size()) return AdjListSlice();
  const PageSlot& slot = pages_[page_idx];
  // Load run before delta: the merge publishes in the opposite order
  // (delta cleared, then new run installed), so a probe either sees a
  // consistent pre-merge pair, the post-merge pair, or — transiently —
  // the old run with no delta, which is a valid earlier snapshot. It can
  // never see a delta entry twice.
  const IdListPage* run = slot.run.load(std::memory_order_acquire);
  const PageDelta* delta = slot.delta.load(std::memory_order_acquire);
  codec::PackedCursor* cursor = scratch != nullptr ? &scratch->packed_cursor : nullptr;
  if (delta == nullptr) return SliceFromRun(run, v, cats, cursor);
  // Segment-backed (packed) pages never carry deltas: every mutation
  // path is rejected on a segment-backed database.
  APLUS_DCHECK(run == nullptr || !run->is_packed());
  uint32_t ni = delta->num_inserts.load(std::memory_order_acquire);
  uint32_t nd = delta->num_deletes.load(std::memory_order_acquire);
  if (ni == 0 && nd == 0) return SliceFromRun(run, v, cats, cursor);

  // Does any delta entry belong to this owner at all?
  bool relevant = false;
  for (uint32_t i = 0; i < ni && !relevant; ++i) relevant = OwnerOf(delta->inserts[i]) == v;
  for (uint32_t i = 0; i < nd && !relevant; ++i) relevant = OwnerOf(delta->deletes[i]) == v;
  if (!relevant) return SliceFromRun(run, v, cats, cursor);

  // Requested bucket range within the page (same arithmetic as
  // SliceFromRun, but we need the bucket bounds to place adds).
  uint32_t base = (v % kGroupSize) * fanout_product_;
  uint32_t start = base;
  uint32_t span = fanout_product_;
  for (size_t i = 0; i < cats.size(); ++i) {
    span /= fanouts_[i];
    start += cats[i] * span;
  }
  bool has_run = run != nullptr && run->csr_len != 0;
  uint32_t begin = has_run ? run->csr[start] : 0;
  uint32_t end = has_run ? run->csr[start + span] : 0;

  scratch->deletes.clear();
  for (uint32_t i = 0; i < nd; ++i) {
    if (OwnerOf(delta->deletes[i]) == v) scratch->deletes.push_back(delta->deletes[i]);
  }
  auto is_deleted = [&](edge_id_t e) {
    for (edge_id_t d : scratch->deletes) {
      if (d == e) return true;
    }
    return false;
  };

  scratch->adds.clear();
  for (uint32_t i = 0; i < ni; ++i) {
    edge_id_t e = delta->inserts[i];
    if (OwnerOf(e) != v || is_deleted(e)) continue;
    vertex_id_t nbr = NbrOf(e);
    uint32_t bucket = base + BucketOf(config_, fanouts_, e, nbr);
    if (bucket < start || bucket >= start + span) continue;
    ListMergeScratch::Add add;
    add.bucket = bucket;
    add.key = ComputeSortKey(config_, e, nbr);
    add.nbr = nbr;
    add.eid = e;
    add.pos = 0;
    scratch->adds.push_back(add);
  }
  if (scratch->adds.empty() && scratch->deletes.empty()) {
    return SliceFromRun(run, v, cats, cursor);
  }

  // Sorted insertion position of each add inside its bucket's run range
  // (keys within a bucket are sorted, so binary search applies).
  for (ListMergeScratch::Add& add : scratch->adds) {
    if (!has_run) {
      add.pos = 0;
      continue;
    }
    uint32_t lo = run->csr[add.bucket];
    uint32_t hi = run->csr[add.bucket + 1];
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      SortKey mid_key = ComputeSortKey(config_, run->eids[mid], run->nbrs[mid]);
      if (add.key < mid_key) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    add.pos = lo;
  }
  std::sort(scratch->adds.begin(), scratch->adds.end(),
            [](const ListMergeScratch::Add& a, const ListMergeScratch::Add& b) {
              if (a.pos != b.pos) return a.pos < b.pos;
              if (a.bucket != b.bucket) return a.bucket < b.bucket;
              return a.key < b.key;
            });

  scratch->nbrs.clear();
  scratch->eids.clear();
  scratch->nbrs.reserve(end - begin + scratch->adds.size());
  scratch->eids.reserve(end - begin + scratch->adds.size());
  size_t ai = 0;
  for (uint32_t p = begin; p <= end; ++p) {
    while (ai < scratch->adds.size() && scratch->adds[ai].pos <= p) {
      scratch->nbrs.push_back(scratch->adds[ai].nbr);
      scratch->eids.push_back(scratch->adds[ai].eid);
      ++ai;
    }
    if (p == end) break;
    if (!scratch->deletes.empty() && is_deleted(run->eids[p])) continue;
    scratch->nbrs.push_back(run->nbrs[p]);
    scratch->eids.push_back(run->eids[p]);
  }

  AdjListSlice slice;
  slice.nbrs = scratch->nbrs.data();
  slice.edges = scratch->eids.data();
  slice.len = static_cast<uint32_t>(scratch->eids.size());
  return slice;
}

void PrimaryIndex::GetListBase(vertex_id_t v, const vertex_id_t** nbrs, const edge_id_t** eids,
                               uint32_t* len) const {
  const IdListPage* run =
      PageOf(v) < pages_.size() ? pages_[PageOf(v)].run.load(std::memory_order_acquire) : nullptr;
  if (run == nullptr || run->csr_len == 0) {
    *nbrs = nullptr;
    *eids = nullptr;
    *len = 0;
    return;
  }
  // Only secondary-index paths resolve base pointers, and secondaries
  // are rejected on segment-backed graphs — a packed run here is a bug.
  APLUS_CHECK(!run->is_packed()) << "GetListBase on a packed segment page";
  uint32_t base = (v % kGroupSize) * fanout_product_;
  uint32_t begin = run->csr[base];
  uint32_t end = run->csr[base + fanout_product_];
  *nbrs = run->nbrs + begin;
  *eids = run->eids + begin;
  *len = end - begin;
}

size_t PrimaryIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const PageSlot& slot : pages_) {
    const IdListPage* run = slot.run.load(std::memory_order_acquire);
    if (run != nullptr) bytes += run->MemoryBytes();
    const PageDelta* delta = slot.delta.load(std::memory_order_acquire);
    if (delta != nullptr) bytes += delta->MemoryBytes();
  }
  return bytes;
}

size_t PrimaryIndex::PartitionLevelBytes() const {
  size_t bytes = 0;
  for (const PageSlot& slot : pages_) {
    const IdListPage* run = slot.run.load(std::memory_order_acquire);
    if (run != nullptr) bytes += static_cast<size_t>(run->csr_len) * sizeof(uint32_t);
  }
  return bytes;
}

void PrimaryIndex::ReservePages(uint64_t max_vertices) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  uint32_t num_pages = static_cast<uint32_t>((max_vertices + kGroupSize - 1) / kGroupSize);
  pages_.reserve(num_pages);
  while (pages_.size() < num_pages) {
    pages_.emplace_back();
    pages_.back().run.store(BuildRun({}).release(), std::memory_order_release);
  }
  pages_reserved_ = true;
}

void PrimaryIndex::AttachSegmentPages(const IndexConfig& config,
                                      std::vector<std::unique_ptr<IdListPage>> pages,
                                      uint64_t num_edges) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  config_ = config;
  fanouts_.clear();
  fanout_product_ = 1;
  for (const PartitionCriterion& p : config_.partitions) {
    uint32_t fanout = PartitionFanout(graph_->catalog(), p);
    APLUS_CHECK_GT(fanout, 0u) << "empty partition domain";
    fanouts_.push_back(fanout);
    fanout_product_ *= fanout;
  }
  for (PageSlot& slot : pages_) {
    EpochManager::Global().Retire(slot.run.load(std::memory_order_relaxed));
    EpochManager::Global().Retire(slot.delta.load(std::memory_order_relaxed));
    slot.run.store(nullptr, std::memory_order_relaxed);
    slot.delta.store(nullptr, std::memory_order_relaxed);
  }
  pages_.clear();
  pages_.reserve(pages.size());
  for (auto& page : pages) {
    pages_.emplace_back();
    pages_.back().run.store(page.release(), std::memory_order_release);
  }
  num_edges_indexed_.store(num_edges, std::memory_order_relaxed);
  pending_updates_.store(0, std::memory_order_relaxed);
  EpochManager::Global().TryReclaim();
}

void PrimaryIndex::GrowPagesLocked(uint32_t page_idx) {
  // The graph may have grown past the pages built at Build() time.
  // Growing moves the slot array, so it is only legal while no reader
  // is active; concurrent serving pre-sizes via ReservePages.
  APLUS_CHECK(!pages_reserved_ || page_idx < pages_.size())
      << "edge insert beyond the page range reserved for concurrent ingest";
  while (pages_.size() <= page_idx) {
    pages_.emplace_back();
    pages_.back().run.store(BuildRun({}).release(), std::memory_order_release);
  }
}

void PrimaryIndex::InsertEdge(edge_id_t e) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  vertex_id_t owner = OwnerOf(e);
  uint32_t page_idx = PageOf(owner);
  GrowPagesLocked(page_idx);
  PageSlot& slot = pages_[page_idx];
  PageDelta* delta = slot.delta.load(std::memory_order_relaxed);
  if (delta != nullptr &&
      (delta->num_inserts.load(std::memory_order_relaxed) >= PageDelta::kCapacity ||
       fault::ShouldFail(fault::kDeltaFull))) {
    // The fault point fakes a full delta buffer, forcing the inline
    // merge path that normally only fires under sustained skew.
    MergePageLocked(page_idx);
    delta = nullptr;
  }
  if (delta == nullptr) {
    delta = new PageDelta();
    slot.delta.store(delta, std::memory_order_release);
  }
  uint32_t nd = delta->num_deletes.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < nd; ++i) {
    // A pending delete of the same id would suppress this insert at
    // merge time; flushing first keeps the ordering unambiguous.
    APLUS_CHECK(delta->deletes[i] != e) << "reinserting edge " << e << " with a pending delete";
  }
  uint32_t n = delta->num_inserts.load(std::memory_order_relaxed);
  delta->inserts[n] = e;
  delta->num_inserts.store(n + 1, std::memory_order_release);
  pending_updates_.fetch_add(1, std::memory_order_relaxed);
  num_edges_indexed_.fetch_add(1, std::memory_order_relaxed);
  if (auto_merge_ && n + 1 >= kUpdateBufferCapacity) MergePageLocked(page_idx);
}

void PrimaryIndex::DeleteEdge(edge_id_t e) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  vertex_id_t owner = OwnerOf(e);
  uint32_t page_idx = PageOf(owner);
  APLUS_CHECK_LT(page_idx, pages_.size());
  PageSlot& slot = pages_[page_idx];

  // The edge must exist: either in the sorted run or still buffered.
  const IdListPage* run = slot.run.load(std::memory_order_relaxed);
  PageDelta* delta = slot.delta.load(std::memory_order_relaxed);
  bool found = false;
  if (run != nullptr) {
    APLUS_CHECK(!run->is_packed()) << "mutating a segment-backed page";
    for (uint32_t i = 0; i < run->num_entries; ++i) {
      if (run->eids[i] == e) {
        found = true;
        break;
      }
    }
  }
  uint32_t ni = delta != nullptr ? delta->num_inserts.load(std::memory_order_relaxed) : 0;
  uint32_t nd = delta != nullptr ? delta->num_deletes.load(std::memory_order_relaxed) : 0;
  for (uint32_t i = 0; i < ni && !found; ++i) found = delta->inserts[i] == e;
  for (uint32_t i = 0; i < nd; ++i) {
    APLUS_CHECK(delta->deletes[i] != e) << "edge " << e << " deleted twice";
  }
  APLUS_CHECK(found) << "edge " << e << " not found for deletion";

  if (delta != nullptr && nd >= PageDelta::kCapacity) {
    MergePageLocked(page_idx);
    delta = nullptr;
    nd = 0;
  }
  if (delta == nullptr) {
    delta = new PageDelta();
    slot.delta.store(delta, std::memory_order_release);
  }
  delta->deletes[nd] = e;
  delta->num_deletes.store(nd + 1, std::memory_order_release);
  pending_updates_.fetch_add(1, std::memory_order_relaxed);
  num_edges_indexed_.fetch_sub(1, std::memory_order_relaxed);
  if (auto_merge_ && nd + 1 >= kUpdateBufferCapacity) MergePageLocked(page_idx);
}

void PrimaryIndex::MergePageLocked(uint32_t page_idx) {
  PageSlot& slot = pages_[page_idx];
  const IdListPage* old_run = slot.run.load(std::memory_order_relaxed);
  PageDelta* delta = slot.delta.load(std::memory_order_relaxed);
  if (delta == nullptr) return;
  uint32_t ni = delta->num_inserts.load(std::memory_order_relaxed);
  uint32_t nd = delta->num_deletes.load(std::memory_order_relaxed);
  if (ni == 0 && nd == 0) return;

  auto is_deleted = [&](edge_id_t e) {
    for (uint32_t i = 0; i < nd; ++i) {
      if (delta->deletes[i] == e) return true;
    }
    return false;
  };
  APLUS_CHECK(old_run == nullptr || !old_run->is_packed()) << "merging a segment-backed page";
  std::vector<edge_id_t> edges;
  edges.reserve((old_run != nullptr ? old_run->num_entries : 0) + ni);
  if (old_run != nullptr) {
    for (uint32_t i = 0; i < old_run->num_entries; ++i) {
      if (!is_deleted(old_run->eids[i])) edges.push_back(old_run->eids[i]);
    }
  }
  for (uint32_t i = 0; i < ni; ++i) {
    if (!is_deleted(delta->inserts[i])) edges.push_back(delta->inserts[i]);
  }
  PublishRun(page_idx, BuildRun(edges));
  uint64_t merged = ni + nd;
  APLUS_CHECK_GE(pending_updates_.load(std::memory_order_relaxed), merged);
  pending_updates_.fetch_sub(merged, std::memory_order_relaxed);
}

void PrimaryIndex::PublishRun(uint32_t page_idx, std::unique_ptr<IdListPage> run) {
  PageSlot& slot = pages_[page_idx];
  const IdListPage* old_run = slot.run.load(std::memory_order_relaxed);
  PageDelta* old_delta = slot.delta.load(std::memory_order_relaxed);
  // Clear the delta *before* installing the run that absorbed it: a
  // reader loading run-then-delta then either misses the delta (a valid
  // earlier snapshot) or sees the new run with no delta — never the new
  // run plus the already-merged delta (which would duplicate entries).
  slot.delta.store(nullptr, std::memory_order_release);
  slot.run.store(run.release(), std::memory_order_release);
  EpochManager& epochs = EpochManager::Global();
  epochs.Retire(old_run);
  epochs.Retire(old_delta);
  epochs.Advance();
}

// DeltaEntries/RunEntries feed the maintainer's merge cost model from
// the ingest thread, which holds no epoch pin: writer_mu_ is what keeps
// the background merger from retiring and freeing the pointers mid-read
// (all retirement happens under the mutex, so a pointer loaded here is
// current and cannot be reclaimed before we release it).
uint32_t PrimaryIndex::DeltaEntries(uint32_t page_idx) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (page_idx >= pages_.size()) return 0;
  const PageDelta* delta = pages_[page_idx].delta.load(std::memory_order_acquire);
  if (delta == nullptr) return 0;
  return delta->num_inserts.load(std::memory_order_acquire) +
         delta->num_deletes.load(std::memory_order_acquire);
}

uint32_t PrimaryIndex::RunEntries(uint32_t page_idx) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (page_idx >= pages_.size()) return 0;
  const IdListPage* run = pages_[page_idx].run.load(std::memory_order_acquire);
  return run != nullptr ? run->num_entries : 0;
}

void PrimaryIndex::FlushPage(uint32_t page_idx) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (page_idx >= pages_.size()) return;
  MergePageLocked(page_idx);
}

void PrimaryIndex::FlushUpdates() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  for (uint32_t p = 0; p < pages_.size(); ++p) MergePageLocked(p);
  APLUS_CHECK_EQ(pending_updates_.load(std::memory_order_relaxed), 0u);
  EpochManager::Global().TryReclaim();
}

}  // namespace aplus
