#ifndef APLUS_INDEX_INDEX_CONFIG_H_
#define APLUS_INDEX_INDEX_CONFIG_H_

#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/types.h"

namespace aplus {

// What a nested partitioning level keys on (Section III-A1). Only
// categorical criteria are allowed: labels and kCategory properties of
// the adjacent edge or the neighbour vertex.
enum class PartitionSource : uint8_t {
  kEdgeLabel = 0,  // eadj.label
  kNbrLabel = 1,   // vnbr.label
  kEdgeProp = 2,   // eadj.<categorical property>
  kNbrProp = 3,    // vnbr.<categorical property>
};

struct PartitionCriterion {
  PartitionSource source = PartitionSource::kEdgeLabel;
  prop_key_t key = kInvalidPropKey;  // for kEdgeProp / kNbrProp

  bool operator==(const PartitionCriterion& other) const {
    return source == other.source && key == other.key;
  }
};

// What the most granular sublists are sorted on (Section III-A2).
enum class SortSource : uint8_t {
  kNbrId = 0,     // vnbr.ID (the system default; enables E/I intersections)
  kNbrLabel = 1,  // vnbr.label
  kEdgeProp = 2,  // eadj.<property>
  kNbrProp = 3,   // vnbr.<property>
};

struct SortCriterion {
  SortSource source = SortSource::kNbrId;
  prop_key_t key = kInvalidPropKey;

  bool operator==(const SortCriterion& other) const {
    return source == other.source && key == other.key;
  }
};

// The tunable part of an A+ index: nested partitioning criteria applied
// after the level-0 vertex-ID (or edge-ID) partitioning, plus the sort
// order of the most granular sublists. Ties after the configured sort
// keys are broken by neighbour ID then edge ID, so list order is total
// and deterministic.
struct IndexConfig {
  std::vector<PartitionCriterion> partitions;
  std::vector<SortCriterion> sorts;

  // The system default of Section III-A: partitioned by edge labels and
  // sorted by neighbour IDs.
  static IndexConfig Default();

  // A config with no secondary partitioning, sorted on neighbour IDs.
  static IndexConfig Flat();

  bool SamePartitioning(const IndexConfig& other) const { return partitions == other.partitions; }
  bool SameSorting(const IndexConfig& other) const { return sorts == other.sorts; }

  // True when the final sort keys start with the neighbour ID, which is
  // what EXTEND/INTERSECT multiway intersections require.
  bool SortedOnNbrId() const {
    return sorts.empty() || sorts.front().source == SortSource::kNbrId;
  }

  std::string ToString(const Catalog& catalog) const;
};

// Fan-out of one partitioning level: label count or category domain + 1
// null slot. Label counts are snapshotted at build time.
uint32_t PartitionFanout(const Catalog& catalog, const PartitionCriterion& criterion);

std::string ToString(const Catalog& catalog, const PartitionCriterion& criterion);
std::string ToString(const Catalog& catalog, const SortCriterion& criterion);

}  // namespace aplus

#endif  // APLUS_INDEX_INDEX_CONFIG_H_
