#ifndef APLUS_INDEX_EP_INDEX_H_
#define APLUS_INDEX_EP_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/adj_list_slice.h"
#include "index/index_config.h"
#include "index/offset_list.h"
#include "index/primary_index.h"
#include "view/view_def.h"

namespace aplus {

// A secondary edge-partitioned A+ index (Section III-B2): a 2-hop view
// partitioned by the ID of the bound edge eb, then by the configured
// nested criteria over the adjacent edge eadj / neighbour vnbr, stored as
// offset lists into the anchor vertex's primary ID list.
//
// The adjacency of eb = (vs, vd) is one of the four kinds of EpKind; e.g.
// Destination-FW stores, for each eb, the subset of vd's forward edges
// that satisfy the view predicate together with eb. The predicate must
// reference both edges (enforced at construction), otherwise the lists
// would be duplicates of a 1-hop view's lists.
class EpIndex {
 public:
  // `primary_fwd`/`primary_bwd` are the primary indexes; the one matching
  // AdjDirection(view.kind) provides the base lists the offsets resolve
  // against.
  //
  // `budget_bytes` implements the partial materialization the paper
  // defers to future work (Section III-B2): when > 0, Build() stops
  // materializing offset-list pages once the budget is reached; queries
  // over unmaterialized bound edges fall back to evaluating the view
  // predicate over the anchor's primary list at run time (ExtendOp's
  // EP fallback). 0 = fully materialized.
  EpIndex(const Graph* graph, const PrimaryIndex* primary_fwd, const PrimaryIndex* primary_bwd,
          TwoHopViewDef view, IndexConfig config, size_t budget_bytes = 0);

  double Build();

  const std::string& name() const { return view_.name; }
  const TwoHopViewDef& view() const { return view_; }
  const IndexConfig& config() const { return config_; }
  EpKind kind() const { return view_.kind; }

  // The vertex whose primary list eb's adjacency is a subset of.
  vertex_id_t AnchorOf(edge_id_t eb) const {
    return AnchorIsDst(view_.kind) ? graph_->edge_dst(eb) : graph_->edge_src(eb);
  }
  // The primary index the offsets resolve against.
  const PrimaryIndex* base_primary() const { return base_primary_; }

  // Constant-time adjacency of edge `eb`; `cats` fixes a prefix of this
  // index's partition criteria. Only valid for materialized bound edges.
  AdjListSlice GetList(edge_id_t eb, const std::vector<category_t>& cats) const;
  AdjListSlice GetFullList(edge_id_t eb) const { return GetList(eb, {}); }

  // Partial materialization state (Section III-B2 future work).
  bool IsMaterialized(edge_id_t eb) const {
    uint32_t page_idx = static_cast<uint32_t>(eb / kGroupSize);
    return page_idx < pages_.size() && !pages_[page_idx]->csr.empty();
  }
  bool fully_materialized() const { return fully_materialized_; }
  size_t budget_bytes() const { return budget_bytes_; }

  // Runtime fallback for unmaterialized bound edges: calls
  // fn(base_offset, eadj, vnbr) for every entry of eb's view adjacency,
  // derived by scanning the anchor's primary list and evaluating the
  // view predicate (entries come in base-list order, not this index's
  // sort order).
  template <typename Fn>
  void ForEachRuntime(edge_id_t eb, Fn fn) const {
    vertex_id_t anchor = AnchorOf(eb);
    AdjListSlice base = base_primary_->GetFullList(anchor);
    for (uint32_t i = 0; i < base.size(); ++i) {
      edge_id_t eadj = base.EdgeAt(i);
      if (eadj == eb) continue;
      vertex_id_t nbr = base.NbrAt(i);
      if (EvalViewPredPublic(eb, eadj, nbr)) fn(i, eadj, nbr);
    }
  }

  bool EvalViewPredPublic(edge_id_t eb, edge_id_t eadj, vertex_id_t nbr) const {
    return EvalViewPred(eb, eadj, nbr);
  }

  size_t MemoryBytes() const;
  uint64_t num_edges_indexed() const { return num_edges_indexed_; }
  double build_seconds() const { return build_seconds_; }

  // Maintenance (Section IV-C). Inserting e runs the two delta queries:
  // (1) e may become an adjacent edge of existing bound edges; (2) e gets
  // its own (possibly empty) list. Updates are buffered per 64-edge page;
  // the returned page indexes have full buffers and should be merged
  // (RebuildGroup) after the primary indexes are flushed — the
  // Maintainer orchestrates this ordering.
  std::vector<uint32_t> InsertEdge(edge_id_t e);
  void RebuildGroup(uint32_t page_idx);
  void FlushUpdates();
  bool HasPendingUpdates() const { return pending_total_ > 0; }

  // Larger than the VP buffer: one insertion marks every bound edge
  // anchored at the shared vertex, so EP pages fill much faster and the
  // group re-derivation must amortize over more buffered updates.
  static constexpr uint32_t kUpdateBufferCapacity = 256;

 private:
  bool EvalViewPred(edge_id_t eb, edge_id_t eadj, vertex_id_t nbr) const;
  void BuildGroup(uint32_t page_idx);
  // Thread-safe variant: derives one page and returns its entry count
  // without touching num_edges_indexed_.
  uint64_t BuildGroupCounted(uint32_t page_idx);
  bool MarkPending(uint32_t page_idx);

  const Graph* graph_;
  const PrimaryIndex* primary_fwd_;
  const PrimaryIndex* primary_bwd_;
  const PrimaryIndex* base_primary_;
  TwoHopViewDef view_;
  IndexConfig config_;
  std::vector<uint32_t> fanouts_;
  uint32_t fanout_product_ = 1;
  std::vector<std::unique_ptr<OffsetListPage>> pages_;
  std::vector<uint32_t> pending_;
  uint64_t pending_total_ = 0;
  uint64_t num_edges_indexed_ = 0;
  double build_seconds_ = 0.0;
  size_t budget_bytes_ = 0;
  bool fully_materialized_ = true;
};

}  // namespace aplus

#endif  // APLUS_INDEX_EP_INDEX_H_
