#ifndef APLUS_INDEX_VP_INDEX_H_
#define APLUS_INDEX_VP_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/adj_list_slice.h"
#include "index/index_config.h"
#include "index/offset_list.h"
#include "index/primary_index.h"
#include "view/view_def.h"

namespace aplus {

// A secondary vertex-partitioned A+ index (Section III-B1): a 1-hop view
// (arbitrary selection over edges) partitioned by vertex ID, then by the
// configured nested criteria, sorted by the configured criteria, and
// stored as offset lists into the primary index's ID lists
// (Section III-B3).
//
// Two storage modes (Section III-B3):
//  * Shared partitioning levels — when the view has no predicate and the
//    partitioning structure equals the primary index's, the lists hold
//    the same edges with identical boundaries and only the sort order
//    differs, so the primary CSR levels are reused and only permuted
//    offset lists are stored (the D+VPt configuration of Table III).
//  * Own partitioning levels — with a predicate or different
//    partitioning, each page carries its own CSR (Figure 3a bottom-right).
class VpIndex {
 public:
  // `primary` must be the primary index of the same direction. The view
  // predicate may reference eadj, vs, vd and vnbr.
  VpIndex(const Graph* graph, const PrimaryIndex* primary, OneHopViewDef view,
          IndexConfig config);

  double Build();

  const std::string& name() const { return view_.name; }
  const OneHopViewDef& view() const { return view_; }
  const IndexConfig& config() const { return config_; }
  Direction direction() const { return primary_->direction(); }
  const PrimaryIndex* primary() const { return primary_; }
  bool shares_partition_levels() const { return shared_levels_; }

  // Constant-time list access; same contract as PrimaryIndex::GetList,
  // with `cats` interpreted against this index's partition criteria.
  AdjListSlice GetList(vertex_id_t v, const std::vector<category_t>& cats) const;
  AdjListSlice GetFullList(vertex_id_t v) const { return GetList(v, {}); }

  size_t MemoryBytes() const;
  uint64_t num_edges_indexed() const { return num_edges_indexed_; }
  double build_seconds() const { return build_seconds_; }

  // Maintenance (Section IV-C): evaluates the view predicate against the
  // new edge and buffers an update for the owner's page. Returns the
  // page index whose buffer just filled (and should be merged via
  // RebuildGroup after flushing the primary page), or -1. The Maintainer
  // orchestrates the merge ordering; exactness is guaranteed once both
  // the primary index and this index are flushed.
  int64_t InsertEdge(edge_id_t e);
  // Rebuilds the offset lists of every owner in `page_idx` from the
  // primary page (used after a primary merge invalidates offsets).
  void RebuildGroup(uint32_t page_idx);
  void FlushUpdates();
  bool HasPendingUpdates() const { return pending_total_ > 0; }

  static constexpr uint32_t kUpdateBufferCapacity = 32;

 private:
  bool EvalViewPred(edge_id_t e, vertex_id_t nbr) const;
  void BuildGroup(uint32_t page_idx);

  const Graph* graph_;
  const PrimaryIndex* primary_;
  OneHopViewDef view_;
  IndexConfig config_;
  bool shared_levels_ = false;
  std::vector<uint32_t> fanouts_;
  uint32_t fanout_product_ = 1;
  std::vector<std::unique_ptr<OffsetListPage>> pages_;
  std::vector<uint32_t> pending_;  // buffered-update counts per page
  uint64_t pending_total_ = 0;
  uint64_t num_edges_indexed_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace aplus

#endif  // APLUS_INDEX_VP_INDEX_H_
