#include "index/adj_list_slice.h"

// AdjListSlice is header-only; this translation unit anchors the library.
