#ifndef APLUS_INDEX_BITMAP_INDEX_H_
#define APLUS_INDEX_BITMAP_INDEX_H_

#include <memory>
#include <vector>

#include "index/primary_index.h"
#include "view/view_def.h"

namespace aplus {

// The bitmap alternative to offset lists discussed in Section III-B3: one
// bit per primary-list entry marking membership in a 1-hop view. It can
// only mirror the primary index's partitioning and sorting (a different
// sort order cannot be expressed by flags over the primary layout), and
// reading it costs one bitmask test per *primary* entry regardless of the
// view's selectivity — which is exactly the trade-off the ablation
// benchmark (bench_ablation_offsets) quantifies against offset lists.
class BitmapIndex {
 public:
  BitmapIndex(const Graph* graph, const PrimaryIndex* primary, OneHopViewDef view);

  double Build();

  const OneHopViewDef& view() const { return view_; }

  // Bit view aligned with primary->GetList(v, cats): bit i corresponds to
  // that slice's entry i.
  struct BitmapSlice {
    const uint64_t* words = nullptr;
    uint32_t bit_offset = 0;
    uint32_t len = 0;

    bool TestAt(uint32_t i) const {
      uint32_t bit = bit_offset + i;
      return (words[bit >> 6] >> (bit & 63)) & 1;
    }
  };

  BitmapSlice GetBits(vertex_id_t v, const std::vector<category_t>& cats) const;

  size_t MemoryBytes() const;
  uint64_t num_edges_indexed() const { return num_edges_indexed_; }
  double build_seconds() const { return build_seconds_; }

 private:
  const Graph* graph_;
  const PrimaryIndex* primary_;
  OneHopViewDef view_;
  // One word array per primary page, sized to the page's entry count.
  std::vector<std::vector<uint64_t>> page_bits_;
  uint64_t num_edges_indexed_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace aplus

#endif  // APLUS_INDEX_BITMAP_INDEX_H_
