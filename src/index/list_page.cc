#include "index/list_page.h"

// IdListPage is header-only; this translation unit anchors the library.
