#include "index/vp_index.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

VpIndex::VpIndex(const Graph* graph, const PrimaryIndex* primary, OneHopViewDef view,
                 IndexConfig config)
    : graph_(graph), primary_(primary), view_(std::move(view)), config_(std::move(config)) {
  shared_levels_ = view_.pred.IsTrue() && config_.SamePartitioning(primary_->config());
  for (const Comparison& cmp : view_.pred.conjuncts()) {
    APLUS_CHECK(cmp.lhs.site != PropSite::kBoundEdge &&
                (cmp.rhs_is_const || cmp.rhs_ref.site != PropSite::kBoundEdge))
        << "1-hop view predicates cannot reference eb";
  }
}

bool VpIndex::EvalViewPred(edge_id_t e, vertex_id_t nbr) const {
  if (view_.pred.IsTrue()) return true;
  EvalContext ctx;
  ctx.graph = graph_;
  ctx.adj_edge = e;
  ctx.nbr = nbr;
  ctx.src = graph_->edge_src(e);
  ctx.dst = graph_->edge_dst(e);
  return view_.pred.Eval(ctx);
}

double VpIndex::Build() {
  WallTimer timer;
  fanouts_.clear();
  fanout_product_ = 1;
  for (const PartitionCriterion& p : config_.partitions) {
    uint32_t fanout = PartitionFanout(graph_->catalog(), p);
    fanouts_.push_back(fanout);
    fanout_product_ *= fanout;
  }
  pages_.clear();
  uint32_t num_pages = primary_->num_pages();
  pages_.reserve(num_pages);
  for (uint32_t p = 0; p < num_pages; ++p) pages_.push_back(std::make_unique<OffsetListPage>());
  num_edges_indexed_ = 0;
  for (uint32_t p = 0; p < num_pages; ++p) BuildGroup(p);
  build_seconds_ = timer.ElapsedSeconds();
  return build_seconds_;
}

void VpIndex::BuildGroup(uint32_t page_idx) {
  OffsetListPage& page = *pages_[page_idx];
  uint64_t nv = graph_->num_vertices();
  vertex_id_t first = page_idx * kGroupSize;
  vertex_id_t last = static_cast<vertex_id_t>(
      std::min<uint64_t>(nv, static_cast<uint64_t>(first) + kGroupSize));

  struct Entry {
    uint32_t bucket;  // slot * fanout_product + partition path
    SortKey key;
    uint32_t offset;  // position within the owner's full primary list
  };
  std::vector<Entry> entries;

  for (vertex_id_t v = first; v < last; ++v) {
    const vertex_id_t* nbrs;
    const edge_id_t* eids;
    uint32_t len;
    primary_->GetListBase(v, &nbrs, &eids, &len);
    uint32_t slot = v % kGroupSize;
    for (uint32_t i = 0; i < len; ++i) {
      edge_id_t e = eids[i];
      vertex_id_t nbr = nbrs[i];
      if (!EvalViewPred(e, nbr)) continue;
      Entry entry;
      entry.bucket = shared_levels_
                         ? slot  // shared mode keeps primary bucket order implicitly
                         : slot * fanout_product_ +
                               primary_->BucketOf(config_, fanouts_, e, nbr);
      entry.key = primary_->ComputeSortKey(config_, e, nbr);
      entry.offset = i;
      entries.push_back(entry);
    }
  }

  if (shared_levels_) {
    // Identical boundaries to the primary page: re-sort within each
    // innermost primary sublist only. Recompute buckets as the primary
    // innermost slot so grouping matches primary sublist boundaries.
    const IdListPage& ppage = primary_->page(page_idx);
    uint32_t pfp = primary_->fanout_product();
    // Assign each entry its primary innermost bucket (entry.bucket holds
    // the owner slot at this point): the bucket is the last CSR position
    // in the owner's range whose start is <= the absolute entry position.
    for (Entry& entry : entries) {
      uint32_t slot_base = entry.bucket * pfp;
      uint32_t abs_pos = ppage.csr[slot_base] + entry.offset;
      const uint32_t* begin_it = ppage.csr + slot_base;
      const uint32_t* end_it = ppage.csr + slot_base + pfp + 1;
      const uint32_t* it = std::upper_bound(begin_it, end_it, abs_pos);
      entry.bucket = slot_base + static_cast<uint32_t>(it - begin_it) - 1;
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (a.bucket != b.bucket) return a.bucket < b.bucket;
      return a.key < b.key;
    });
    std::vector<uint32_t> offsets;
    offsets.reserve(entries.size());
    for (const Entry& entry : entries) offsets.push_back(entry.offset);
    page.csr.clear();
    page.SetOffsets(offsets);
  } else {
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (a.bucket != b.bucket) return a.bucket < b.bucket;
      return a.key < b.key;
    });
    uint32_t slots = kGroupSize * fanout_product_;
    page.csr.assign(slots + 1, 0);
    for (const Entry& entry : entries) page.csr[entry.bucket + 1]++;
    for (uint32_t s = 0; s < slots; ++s) page.csr[s + 1] += page.csr[s];
    std::vector<uint32_t> offsets;
    offsets.reserve(entries.size());
    for (const Entry& entry : entries) offsets.push_back(entry.offset);
    page.SetOffsets(offsets);
  }
  num_edges_indexed_ += entries.size();
}

AdjListSlice VpIndex::GetList(vertex_id_t v, const std::vector<category_t>& cats) const {
  uint32_t page_idx = v / kGroupSize;
  if (page_idx >= pages_.size()) return AdjListSlice();
  const OffsetListPage& page = *pages_[page_idx];

  AdjListSlice slice;
  const edge_id_t* base_eids;
  uint32_t base_len;
  primary_->GetListBase(v, &slice.nbrs, &base_eids, &base_len);
  slice.edges = base_eids;
  slice.offset_width = page.width;

  if (shared_levels_) {
    // Reuse the primary CSR (identical boundaries).
    APLUS_DCHECK(cats.size() <= primary_->fanouts().size());
    const IdListPage& ppage = primary_->page(page_idx);
    uint32_t pfp = primary_->fanout_product();
    uint32_t start = (v % kGroupSize) * pfp;
    uint32_t span = pfp;
    for (size_t i = 0; i < cats.size(); ++i) {
      span /= primary_->fanouts()[i];
      start += cats[i] * span;
    }
    uint32_t begin = ppage.csr[start];
    uint32_t end = ppage.csr[start + span];
    slice.offsets = page.bytes.data() + static_cast<size_t>(begin) * page.width;
    slice.len = end - begin;
    return slice;
  }

  APLUS_DCHECK(cats.size() <= fanouts_.size());
  if (page.csr.empty()) return AdjListSlice();
  uint32_t start = (v % kGroupSize) * fanout_product_;
  uint32_t span = fanout_product_;
  for (size_t i = 0; i < cats.size(); ++i) {
    span /= fanouts_[i];
    start += cats[i] * span;
  }
  uint32_t begin = page.csr[start];
  uint32_t end = page.csr[start + span];
  slice.offsets = page.bytes.data() + static_cast<size_t>(begin) * page.width;
  slice.len = end - begin;
  return slice;
}

size_t VpIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& page : pages_) bytes += page->MemoryBytes();
  return bytes;
}

int64_t VpIndex::InsertEdge(edge_id_t e) {
  vertex_id_t owner = primary_->OwnerOf(e);
  // The predicate is evaluated eagerly as in Section IV-C. The page is
  // marked pending regardless of the outcome because a primary-page merge
  // may shift the offsets of the owner's other edges.
  (void)EvalViewPred(e, primary_->NbrOf(e));
  uint32_t page_idx = owner / kGroupSize;
  while (pages_.size() <= page_idx) pages_.push_back(std::make_unique<OffsetListPage>());
  if (pending_.size() < pages_.size()) pending_.resize(pages_.size(), 0);
  pending_[page_idx]++;
  pending_total_++;
  return pending_[page_idx] >= kUpdateBufferCapacity ? static_cast<int64_t>(page_idx) : -1;
}

void VpIndex::FlushUpdates() {
  if (pending_total_ == 0) return;
  for (uint32_t p = 0; p < pending_.size(); ++p) {
    if (pending_[p] > 0) RebuildGroup(p);
  }
  APLUS_CHECK_EQ(pending_total_, 0u);
}

void VpIndex::RebuildGroup(uint32_t page_idx) {
  if (page_idx >= pages_.size()) return;
  // Subtract the group's previous contribution before re-deriving it
  // (BuildGroup adds the new count back).
  OffsetListPage& page = *pages_[page_idx];
  num_edges_indexed_ -= page.num_entries();
  BuildGroup(page_idx);
  if (page_idx < pending_.size()) {
    pending_total_ -= pending_[page_idx];
    pending_[page_idx] = 0;
  }
}

}  // namespace aplus
