#ifndef APLUS_INDEX_OFFSET_LIST_H_
#define APLUS_INDEX_OFFSET_LIST_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"
#include "util/bit_util.h"

namespace aplus {

// One data page of a secondary A+ index: fixed-width offset lists for a
// group of 64 owners (vertices for VP indexes, edges for EP indexes).
//
// Offsets identify entries within the owner's base primary ID list, so
// they only need to be list-level identifiable (Section III-B3): the
// width is the number of bytes needed for the largest offset stored in
// the page, i.e. the log of the longest base list rounded up to a byte
// (Section IV-B).
//
// In "own levels" mode the page also carries its own partitioning-level
// CSR; in "shared levels" mode (no predicate, same partitioning as the
// primary index) `csr` stays empty and the primary page's CSR is reused,
// saving the partitioning-level space entirely.
struct OffsetListPage {
  std::vector<uint32_t> csr;  // empty in shared-levels mode
  uint8_t width = 1;
  std::vector<uint8_t> bytes;  // num_entries * width

  uint32_t num_entries() const {
    return width == 0 ? 0 : static_cast<uint32_t>(bytes.size() / width);
  }

  uint64_t OffsetAt(uint32_t i) const {
    return LoadFixedWidth(bytes.data() + static_cast<size_t>(i) * width, width);
  }

  // Encodes `offsets` into the page with the minimal fixed width.
  void SetOffsets(const std::vector<uint32_t>& offsets) {
    uint32_t max_offset = 0;
    for (uint32_t o : offsets) max_offset = o > max_offset ? o : max_offset;
    width = BytesForValue(max_offset);
    bytes.assign(offsets.size() * width, 0);
    for (size_t i = 0; i < offsets.size(); ++i) {
      StoreFixedWidth(bytes.data() + i * width, width, offsets[i]);
    }
  }

  size_t MemoryBytes() const { return csr.capacity() * sizeof(uint32_t) + bytes.capacity(); }
};

}  // namespace aplus

#endif  // APLUS_INDEX_OFFSET_LIST_H_
