#include "index/index_config.h"

#include "util/logging.h"

namespace aplus {

IndexConfig IndexConfig::Default() {
  IndexConfig config;
  config.partitions.push_back(PartitionCriterion{PartitionSource::kEdgeLabel, kInvalidPropKey});
  config.sorts.push_back(SortCriterion{SortSource::kNbrId, kInvalidPropKey});
  return config;
}

IndexConfig IndexConfig::Flat() {
  IndexConfig config;
  config.sorts.push_back(SortCriterion{SortSource::kNbrId, kInvalidPropKey});
  return config;
}

uint32_t PartitionFanout(const Catalog& catalog, const PartitionCriterion& criterion) {
  switch (criterion.source) {
    case PartitionSource::kEdgeLabel:
      return catalog.num_edge_labels();
    case PartitionSource::kNbrLabel:
      return catalog.num_vertex_labels();
    case PartitionSource::kEdgeProp:
    case PartitionSource::kNbrProp: {
      const PropertyMeta& meta = catalog.property(criterion.key);
      APLUS_CHECK(meta.type == ValueType::kCategory)
          << "partitioning criterion " << meta.name << " is not categorical";
      return meta.domain_size + 1;  // +1 for the null partition
    }
  }
  return 0;
}

std::string ToString(const Catalog& catalog, const PartitionCriterion& criterion) {
  switch (criterion.source) {
    case PartitionSource::kEdgeLabel:
      return "eadj.label";
    case PartitionSource::kNbrLabel:
      return "vnbr.label";
    case PartitionSource::kEdgeProp:
      return "eadj." + catalog.property(criterion.key).name;
    case PartitionSource::kNbrProp:
      return "vnbr." + catalog.property(criterion.key).name;
  }
  return "?";
}

std::string ToString(const Catalog& catalog, const SortCriterion& criterion) {
  switch (criterion.source) {
    case SortSource::kNbrId:
      return "vnbr.ID";
    case SortSource::kNbrLabel:
      return "vnbr.label";
    case SortSource::kEdgeProp:
      return "eadj." + catalog.property(criterion.key).name;
    case SortSource::kNbrProp:
      return "vnbr." + catalog.property(criterion.key).name;
  }
  return "?";
}

std::string IndexConfig::ToString(const Catalog& catalog) const {
  std::string out = "PARTITION BY vID";
  for (const PartitionCriterion& p : partitions) {
    out += ", ";
    out += aplus::ToString(catalog, p);
  }
  out += " SORT BY ";
  if (sorts.empty()) {
    out += "vnbr.ID";
  } else {
    for (size_t i = 0; i < sorts.size(); ++i) {
      if (i > 0) out += ", ";
      out += aplus::ToString(catalog, sorts[i]);
    }
  }
  return out;
}

}  // namespace aplus
