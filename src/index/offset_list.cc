#include "index/offset_list.h"

// OffsetListPage is header-only; this translation unit anchors the library.
