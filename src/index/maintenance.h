#ifndef APLUS_INDEX_MAINTENANCE_H_
#define APLUS_INDEX_MAINTENANCE_H_

#include "index/index_store.h"
#include "storage/graph.h"

namespace aplus {

// Orchestrates index maintenance (Section IV-C) across the primary and
// secondary A+ indexes of a store. The caller first applies the edge to
// the graph (AddEdge + property writes), then calls OnEdgeInserted; the
// maintainer propagates through every index:
//   1. the edge enters the update buffers of both primary indexes (pages
//      merge automatically when a buffer fills);
//   2. each VP index evaluates its view predicate and buffers a page
//      update;
//   3. each EP index runs the two delta queries of Section IV-C
//      (inserting the edge into adjacent bound edges' lists, and creating
//      the edge's own list) with buffered page merges.
// Finalize() (or IndexStore::FlushAll) merges all buffers; the indexes
// are exact with respect to the graph afterwards.
class Maintainer {
 public:
  Maintainer(const Graph* graph, IndexStore* store) : graph_(graph), store_(store) {}

  void OnEdgeInserted(edge_id_t e);

  // Deletes `e` from every index (the graph row is tombstoned by the
  // indexes only; graph storage is append-only).
  void OnEdgeDeleted(edge_id_t e);

  void Finalize();

 private:
  const Graph* graph_;
  IndexStore* store_;
};

}  // namespace aplus

#endif  // APLUS_INDEX_MAINTENANCE_H_
