#ifndef APLUS_INDEX_MAINTENANCE_H_
#define APLUS_INDEX_MAINTENANCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "index/index_store.h"
#include "storage/graph.h"

namespace aplus {

// Orchestrates index maintenance (Section IV-C) across the primary and
// secondary A+ indexes of a store. The caller first applies the edge to
// the graph (AddEdge + property writes), then calls OnEdgeInserted; the
// maintainer propagates through every index:
//   1. the edge enters the update buffers of both primary indexes (pages
//      merge automatically when a buffer fills);
//   2. each VP index evaluates its view predicate and buffers a page
//      update;
//   3. each EP index runs the two delta queries of Section IV-C
//      (inserting the edge into adjacent bound edges' lists, and creating
//      the edge's own list) with buffered page merges.
// Finalize() (or IndexStore::FlushAll) merges all buffers; the indexes
// are exact with respect to the graph afterwards.
//
// Concurrent serving mode (EnterConcurrentMode): primary-page deltas are
// published to lock-free readers instead of auto-merging, and the
// maintainer drives merges through its cost model — either inline on the
// ingest thread or on a dedicated background merger thread that compacts
// deltas into fresh sorted runs and retires the old ones through the
// EpochManager once every reader has drained. Secondary indexes resolve
// offsets against primary runs non-atomically and must not exist while
// the mode is active (Database::BeginConcurrentIngest enforces this).
class Maintainer {
 public:
  Maintainer(const Graph* graph, IndexStore* store) : graph_(graph), store_(store) {}
  ~Maintainer();

  void OnEdgeInserted(edge_id_t e);

  // Deletes `e` from every index (the graph row is tombstoned by the
  // indexes only; graph storage is append-only).
  void OnEdgeDeleted(edge_id_t e);

  void Finalize();

  // --- Concurrent serving (the tentpole of the epoch layer) ---

  // Switches the primaries to delta-publishing maintenance: inserts and
  // deletes accumulate in per-page PageDeltas visible to snapshot probes
  // and merge per the cost model below. With `background_merge` a
  // dedicated thread compacts scheduled pages; otherwise merges run
  // inline on the ingest thread once a page crosses its threshold.
  // Requires no secondary indexes.
  void EnterConcurrentMode(bool background_merge);
  // Stops the merger, flushes every remaining delta and re-enables
  // auto-merging. The indexes are exact w.r.t. the graph afterwards.
  void ExitConcurrentMode();
  bool concurrent_mode() const { return concurrent_.load(std::memory_order_acquire); }

  // Merge cost model (the Section IV-C amortization argument, adapted to
  // delta pages): a probe pays O(d) to scan a page's delta of d entries
  // while a merge pays O(r + d) to rebuild a run of r entries. Merging
  // after d entries amortizes the rebuild to O(r/d) per buffered update,
  // so larger runs demand proportionally more buffered entries before a
  // merge — bounded below to keep tiny pages from thrashing and above by
  // the delta capacity that forces an inline merge.
  static uint32_t MergeThreshold(uint32_t run_entries);

  // Pages compacted by the background merger thread so far.
  uint64_t background_merges() const {
    return background_merges_.load(std::memory_order_relaxed);
  }

 private:
  void MaybeScheduleMerge(PrimaryIndex* index, edge_id_t e);
  void MergerLoop();

  const Graph* graph_;
  IndexStore* store_;

  std::atomic<bool> concurrent_{false};
  bool background_ = false;

  struct MergeTask {
    PrimaryIndex* index;
    uint32_t page;
  };
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<MergeTask> queue_;
  std::set<std::pair<PrimaryIndex*, uint32_t>> queued_;  // dedup
  bool stop_merger_ = false;
  std::thread merger_;
  std::atomic<uint64_t> background_merges_{0};
};

}  // namespace aplus

#endif  // APLUS_INDEX_MAINTENANCE_H_
