#ifndef APLUS_INDEX_INDEX_STORE_H_
#define APLUS_INDEX_INDEX_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/ep_index.h"
#include "index/primary_index.h"
#include "index/vp_index.h"

namespace aplus {

// The INDEX STORE of Section IV-A: owns the two mandatory primary A+
// indexes plus every secondary index, and exposes their metadata (type,
// direction, partitioning structure, sorting criterion, view predicate)
// to the optimizer's index matcher.
class IndexStore {
 public:
  explicit IndexStore(const Graph* graph);

  // Builds (or rebuilds, i.e. RECONFIGUREs) both primary indexes under
  // `config`. Returns total build seconds (the IR column of Table II).
  double BuildPrimary(const IndexConfig& config);

  PrimaryIndex* primary(Direction dir) {
    return dir == Direction::kFwd ? primary_fwd_.get() : primary_bwd_.get();
  }
  const PrimaryIndex* primary(Direction dir) const {
    return dir == Direction::kFwd ? primary_fwd_.get() : primary_bwd_.get();
  }

  // Creates and builds a secondary vertex-partitioned index over `view`
  // in direction `dir`. Returns the new index (owned by the store) and
  // reports build seconds through `*build_seconds` if non-null.
  VpIndex* CreateVpIndex(const OneHopViewDef& view, const IndexConfig& config, Direction dir,
                         double* build_seconds = nullptr);

  // Creates and builds a secondary edge-partitioned index.
  // `budget_bytes` > 0 enables partial materialization (Section III-B2
  // future work): pages beyond the budget answer at run time.
  EpIndex* CreateEpIndex(const TwoHopViewDef& view, const IndexConfig& config,
                         double* build_seconds = nullptr, size_t budget_bytes = 0);

  void DropSecondaryIndexes();

  const std::vector<std::unique_ptr<VpIndex>>& vp_indexes() const { return vp_indexes_; }
  const std::vector<std::unique_ptr<EpIndex>>& ep_indexes() const { return ep_indexes_; }
  std::vector<std::unique_ptr<VpIndex>>& vp_indexes() { return vp_indexes_; }
  std::vector<std::unique_ptr<EpIndex>>& ep_indexes() { return ep_indexes_; }

  VpIndex* FindVpIndex(const std::string& name, Direction dir);
  EpIndex* FindEpIndex(const std::string& name);

  size_t PrimaryMemoryBytes() const;
  size_t SecondaryMemoryBytes() const;
  size_t TotalMemoryBytes() const { return PrimaryMemoryBytes() + SecondaryMemoryBytes(); }

  // Total |E_indexed| across primary + secondary indexes (the column of
  // Table IV).
  uint64_t TotalEdgesIndexed() const;

  // Merges every pending update buffer (queries require clean indexes).
  void FlushAll();
  bool HasPendingUpdates() const;

  // Pre-sizes both primary indexes' page vectors for a concurrent ingest
  // phase (the slot arrays must not grow under lock-free readers) and
  // checks no secondary indexes exist. Must be called while quiesced.
  void PrepareForConcurrentIngest(uint64_t max_vertices);

  // Installs sealed segment-backed pages into one primary index; the
  // pages view a read-only mapping that the caller keeps alive for the
  // store's lifetime (Database::OpenFromSegment holds the Segment).
  // Requires no secondary indexes and no readers.
  void AttachSegment(Direction dir, const IndexConfig& config,
                     std::vector<std::unique_ptr<IdListPage>> pages, uint64_t num_edges);

  const Graph* graph() const { return graph_; }

  // Monotonic counter bumped whenever the set or configuration of
  // indexes changes; lets the Database cache its optimizer and prepared
  // queries validate against DDL. Reads are lock-free (serving threads
  // revalidate plans while a writer may be running DDL-adjacent code).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  const Graph* graph_;
  std::atomic<uint64_t> version_{0};
  std::unique_ptr<PrimaryIndex> primary_fwd_;
  std::unique_ptr<PrimaryIndex> primary_bwd_;
  std::vector<std::unique_ptr<VpIndex>> vp_indexes_;
  std::vector<std::unique_ptr<EpIndex>> ep_indexes_;
};

}  // namespace aplus

#endif  // APLUS_INDEX_INDEX_STORE_H_
