#include "index/ep_index.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/logging.h"
#include "util/timer.h"

namespace aplus {

EpIndex::EpIndex(const Graph* graph, const PrimaryIndex* primary_fwd,
                 const PrimaryIndex* primary_bwd, TwoHopViewDef view, IndexConfig config,
                 size_t budget_bytes)
    : graph_(graph),
      primary_fwd_(primary_fwd),
      primary_bwd_(primary_bwd),
      view_(std::move(view)),
      config_(std::move(config)),
      budget_bytes_(budget_bytes) {
  APLUS_CHECK(view_.pred.HasCrossEdgeConjunct())
      << "2-hop view " << view_.name
      << " must have a predicate accessing both edges (Section III-B2)";
  base_primary_ = AdjDirection(view_.kind) == Direction::kFwd ? primary_fwd : primary_bwd;
}

bool EpIndex::EvalViewPred(edge_id_t eb, edge_id_t eadj, vertex_id_t nbr) const {
  EvalContext ctx;
  ctx.graph = graph_;
  ctx.bound_edge = eb;
  ctx.adj_edge = eadj;
  ctx.nbr = nbr;
  ctx.src = graph_->edge_src(eb);
  ctx.dst = graph_->edge_dst(eb);
  return view_.pred.Eval(ctx);
}

double EpIndex::Build() {
  WallTimer timer;
  fanouts_.clear();
  fanout_product_ = 1;
  for (const PartitionCriterion& p : config_.partitions) {
    uint32_t fanout = PartitionFanout(graph_->catalog(), p);
    fanouts_.push_back(fanout);
    fanout_product_ *= fanout;
  }
  uint64_t ne = graph_->num_edges();
  uint32_t num_pages = static_cast<uint32_t>((ne + kGroupSize - 1) / kGroupSize);
  pages_.clear();
  pages_.reserve(num_pages);
  for (uint32_t p = 0; p < num_pages; ++p) pages_.push_back(std::make_unique<OffsetListPage>());
  num_edges_indexed_ = 0;

  // Pages are independent, so the build parallelizes over them — the
  // paper creates edge-partitioned indexes with 16 threads (Section V-A)
  // while everything else stays single-threaded.
  unsigned hw = std::thread::hardware_concurrency();
  uint32_t num_threads = std::min<uint32_t>(hw == 0 ? 1 : hw, 16);
  fully_materialized_ = true;
  if (budget_bytes_ > 0) {
    // Partial materialization: build pages in order until the budget is
    // hit; the rest stay unmaterialized (empty CSR) and are answered at
    // run time through ForEachRuntime. Sequential so the budget check is
    // deterministic.
    size_t used = 0;
    for (uint32_t p = 0; p < num_pages; ++p) {
      BuildGroup(p);
      used += pages_[p]->MemoryBytes();
      if (used >= budget_bytes_ && p + 1 < num_pages) {
        fully_materialized_ = false;
        break;
      }
    }
  } else if (num_threads <= 1 || num_pages < 2 * num_threads) {
    for (uint32_t p = 0; p < num_pages; ++p) BuildGroup(p);
  } else {
    std::atomic<uint32_t> next_page{0};
    std::atomic<uint64_t> total_indexed{0};
    auto worker = [&]() {
      uint64_t local = 0;
      while (true) {
        uint32_t p = next_page.fetch_add(1);
        if (p >= num_pages) break;
        local += BuildGroupCounted(p);
      }
      total_indexed.fetch_add(local);
    };
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
    num_edges_indexed_ = total_indexed.load();
  }
  pending_.assign(pages_.size(), 0);
  pending_total_ = 0;
  build_seconds_ = timer.ElapsedSeconds();
  return build_seconds_;
}

void EpIndex::BuildGroup(uint32_t page_idx) {
  num_edges_indexed_ += BuildGroupCounted(page_idx);
}

uint64_t EpIndex::BuildGroupCounted(uint32_t page_idx) {
  OffsetListPage& page = *pages_[page_idx];
  uint64_t ne = graph_->num_edges();
  edge_id_t first = static_cast<edge_id_t>(page_idx) * kGroupSize;
  edge_id_t last = std::min<uint64_t>(ne, first + kGroupSize);

  struct Entry {
    uint32_t bucket;
    SortKey key;
    uint32_t offset;
  };
  std::vector<Entry> entries;

  for (edge_id_t eb = first; eb < last; ++eb) {
    vertex_id_t anchor = AnchorOf(eb);
    const vertex_id_t* nbrs;
    const edge_id_t* eids;
    uint32_t len;
    base_primary_->GetListBase(anchor, &nbrs, &eids, &len);
    uint32_t slot = static_cast<uint32_t>(eb % kGroupSize);
    for (uint32_t i = 0; i < len; ++i) {
      edge_id_t eadj = eids[i];
      if (eadj == eb) continue;  // a 2-path uses two distinct edges
      vertex_id_t nbr = nbrs[i];
      if (!EvalViewPred(eb, eadj, nbr)) continue;
      Entry entry;
      entry.bucket =
          slot * fanout_product_ + base_primary_->BucketOf(config_, fanouts_, eadj, nbr);
      entry.key = base_primary_->ComputeSortKey(config_, eadj, nbr);
      entry.offset = i;
      entries.push_back(entry);
    }
  }

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.bucket != b.bucket) return a.bucket < b.bucket;
    return a.key < b.key;
  });
  uint32_t slots = kGroupSize * fanout_product_;
  page.csr.assign(slots + 1, 0);
  for (const Entry& entry : entries) page.csr[entry.bucket + 1]++;
  for (uint32_t s = 0; s < slots; ++s) page.csr[s + 1] += page.csr[s];
  std::vector<uint32_t> offsets;
  offsets.reserve(entries.size());
  for (const Entry& entry : entries) offsets.push_back(entry.offset);
  page.SetOffsets(offsets);
  return entries.size();
}

AdjListSlice EpIndex::GetList(edge_id_t eb, const std::vector<category_t>& cats) const {
  uint32_t page_idx = static_cast<uint32_t>(eb / kGroupSize);
  if (page_idx >= pages_.size()) return AdjListSlice();
  const OffsetListPage& page = *pages_[page_idx];
  if (page.csr.empty()) return AdjListSlice();
  APLUS_DCHECK(cats.size() <= fanouts_.size());

  AdjListSlice slice;
  const edge_id_t* base_eids;
  uint32_t base_len;
  vertex_id_t anchor = AnchorOf(eb);
  base_primary_->GetListBase(anchor, &slice.nbrs, &base_eids, &base_len);
  slice.edges = base_eids;
  slice.offset_width = page.width;

  uint32_t start = static_cast<uint32_t>(eb % kGroupSize) * fanout_product_;
  uint32_t span = fanout_product_;
  for (size_t i = 0; i < cats.size(); ++i) {
    span /= fanouts_[i];
    start += cats[i] * span;
  }
  uint32_t begin = page.csr[start];
  uint32_t end = page.csr[start + span];
  slice.offsets = page.bytes.data() + static_cast<size_t>(begin) * page.width;
  slice.len = end - begin;
  return slice;
}

size_t EpIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& page : pages_) bytes += page->MemoryBytes();
  return bytes;
}

bool EpIndex::MarkPending(uint32_t page_idx) {
  while (pages_.size() <= page_idx) pages_.push_back(std::make_unique<OffsetListPage>());
  if (pending_.size() < pages_.size()) pending_.resize(pages_.size(), 0);
  pending_[page_idx]++;
  pending_total_++;
  return pending_[page_idx] >= kUpdateBufferCapacity;
}

std::vector<uint32_t> EpIndex::InsertEdge(edge_id_t e) {
  std::vector<uint32_t> full_pages;
  auto mark = [&](uint32_t page_idx) {
    if (MarkPending(page_idx)) {
      for (uint32_t p : full_pages) {
        if (p == page_idx) return;
      }
      full_pages.push_back(page_idx);
    }
  };
  // Delta query 1 (Section IV-C): e becomes the adjacent edge eadj of
  // every bound edge eb whose anchor equals e's near endpoint under the
  // base direction. Those candidate ebs are the in-edges of the shared
  // vertex for Destination-* kinds (eb points into its anchor) and the
  // out-edges for Source-* kinds.
  vertex_id_t shared = base_primary_->OwnerOf(e);
  vertex_id_t far = base_primary_->NbrOf(e);
  const PrimaryIndex* candidates = AnchorIsDst(view_.kind) ? primary_bwd_ : primary_fwd_;
  AdjListSlice ebs = candidates->GetFullList(shared);
  for (uint32_t i = 0; i < ebs.size(); ++i) {
    edge_id_t eb = ebs.EdgeAt(i);
    if (eb == e) continue;
    // The predicate evaluation is the paper's delta-query work; the page
    // is marked pending either way because inserting e into the shared
    // vertex's primary list shifts the offsets every eb anchored there
    // resolves against.
    (void)EvalViewPred(eb, e, far);
    mark(static_cast<uint32_t>(eb / kGroupSize));
  }
  // Delta query 2: create e's own (possibly empty) list by scanning its
  // anchor's base adjacency. The predicate evaluations here mirror the
  // second loop of Section IV-C; the page rederivation at merge time
  // recomputes the exact lists.
  vertex_id_t anchor = AnchorOf(e);
  AdjListSlice adj = base_primary_->GetFullList(anchor);
  for (uint32_t i = 0; i < adj.size(); ++i) {
    edge_id_t eadj = adj.EdgeAt(i);
    if (eadj == e) continue;
    (void)EvalViewPred(e, eadj, adj.NbrAt(i));
  }
  mark(static_cast<uint32_t>(e / kGroupSize));
  return full_pages;
}

void EpIndex::RebuildGroup(uint32_t page_idx) {
  if (page_idx >= pages_.size()) return;
  OffsetListPage& page = *pages_[page_idx];
  // Pages left unmaterialized under the budget stay runtime-evaluated;
  // only clear their pending counters.
  if (!fully_materialized_ && page.csr.empty()) {
    if (page_idx < pending_.size()) {
      pending_total_ -= pending_[page_idx];
      pending_[page_idx] = 0;
    }
    return;
  }
  num_edges_indexed_ -= page.num_entries();
  BuildGroup(page_idx);
  if (page_idx < pending_.size()) {
    pending_total_ -= pending_[page_idx];
    pending_[page_idx] = 0;
  }
}

void EpIndex::FlushUpdates() {
  if (pending_total_ == 0) return;
  for (uint32_t p = 0; p < pending_.size(); ++p) {
    if (pending_[p] > 0) RebuildGroup(p);
  }
  APLUS_CHECK_EQ(pending_total_, 0u);
}

}  // namespace aplus
