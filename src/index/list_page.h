#ifndef APLUS_INDEX_LIST_PAGE_H_
#define APLUS_INDEX_LIST_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/types.h"

namespace aplus {

// One data page of a primary A+ index: the ID lists of a group of
// kGroupSize (64) owner vertices, plus the CSR offsets of the nested
// partitioning levels (Section IV-B).
//
// With partition fan-outs f1..fn and fp = f1*...*fn, `csr` has
// kGroupSize * fp + 1 entries; slot s of owner o (o = owner % 64) starts
// at csr[o * fp + s]. Because nested sublists are laid out contiguously,
// any partition *prefix* is still one contiguous range, which is what
// gives constant-time access at every level of the index.
struct IdListPage {
  std::vector<uint32_t> csr;
  std::vector<vertex_id_t> nbrs;
  std::vector<edge_id_t> eids;

  // Pending inserts not yet merged into the arrays (Section IV-C). Each
  // entry is an edge id owned by a vertex of this page.
  std::vector<edge_id_t> insert_buffer;
  // Tombstoned positions awaiting a merge; parallel to nbrs/eids when
  // non-empty.
  std::vector<uint8_t> tombstones;
  uint32_t num_tombstones = 0;

  size_t MemoryBytes() const {
    return csr.capacity() * sizeof(uint32_t) + nbrs.capacity() * sizeof(vertex_id_t) +
           eids.capacity() * sizeof(edge_id_t) + insert_buffer.capacity() * sizeof(edge_id_t) +
           tombstones.capacity();
  }
};

}  // namespace aplus

#endif  // APLUS_INDEX_LIST_PAGE_H_
