#ifndef APLUS_INDEX_LIST_PAGE_H_
#define APLUS_INDEX_LIST_PAGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include <vector>

#include "storage/types.h"

namespace aplus {

// One data page of a primary A+ index: the ID lists of a group of
// kGroupSize (64) owner vertices, plus the CSR offsets of the nested
// partitioning levels (Section IV-B).
//
// With partition fan-outs f1..fn and fp = f1*...*fn, `csr` has
// kGroupSize * fp + 1 entries; slot s of owner o (o = owner % 64) starts
// at csr[o * fp + s]. Because nested sublists are laid out contiguously,
// any partition *prefix* is still one contiguous range, which is what
// gives constant-time access at every level of the index.
//
// Readers go through the raw view pointers, which come in two flavours:
//   - In-memory pages own their arrays (the *_store vectors below);
//     Seal() points the views at them after a build.
//   - Segment-backed pages view a read-only mmap region directly
//     (src/storage/segment.h): the stores stay empty and the views point
//     into the mapping, which the owning Segment keeps alive. Cold pages
//     additionally drop the flat nbr/eid arrays for a delta/varint
//     stream (`packed`, storage/codec.h layout).
//
// A page is an immutable sorted run once published: maintenance never
// mutates it in place. Updates accumulate in a separate PageDelta and a
// merge builds a fresh IdListPage, swaps it in behind an atomic pointer
// and retires this one through the EpochManager once no reader can still
// be probing it (Section IV-C, made concurrency-safe). Segment-backed
// pages reject mutation wholesale (Database::OpenFromSegment).
struct IdListPage {
  // Views (what every reader touches).
  const uint32_t* csr = nullptr;       // csr_len entries
  const vertex_id_t* nbrs = nullptr;   // num_entries entries (null when packed)
  const edge_id_t* eids = nullptr;     // num_entries entries (null when packed)
  const uint8_t* packed = nullptr;     // codec stream (null when raw)
  uint32_t csr_len = 0;
  uint32_t num_entries = 0;

  // Backing storage of in-memory pages (empty for segment-backed pages).
  std::vector<uint32_t> csr_store;
  std::vector<vertex_id_t> nbr_store;
  std::vector<edge_id_t> eid_store;

  bool is_packed() const { return packed != nullptr; }

  // Points the views at the owned stores after an in-memory build.
  void Seal() {
    csr = csr_store.data();
    csr_len = static_cast<uint32_t>(csr_store.size());
    nbrs = nbr_store.data();
    eids = eid_store.data();
    num_entries = static_cast<uint32_t>(nbr_store.size());
  }

  size_t MemoryBytes() const {
    return csr_store.capacity() * sizeof(uint32_t) + nbr_store.capacity() * sizeof(vertex_id_t) +
           eid_store.capacity() * sizeof(edge_id_t);
  }
};

// Pending updates of one page, kept out of the sorted run so concurrent
// readers never observe a half-mutated list. Fixed-capacity arrays with
// atomically published counts: the (single) writer stores the entry
// first, then bumps the count with release semantics; readers load the
// count with acquire and only look at entries below it. Appending is
// therefore allocation-free and never invalidates a concurrent probe.
//
// `inserts` holds edge ids not yet merged into the run; `deletes` holds
// edge ids to suppress (they may live in the run *or* in `inserts` — a
// probe and a merge both treat `deletes` as a filter over the union).
// When either side fills up the writer must merge the page inline.
struct PageDelta {
  static constexpr uint32_t kCapacity = 64;

  std::atomic<uint32_t> num_inserts{0};
  std::atomic<uint32_t> num_deletes{0};
  edge_id_t inserts[kCapacity];
  edge_id_t deletes[kCapacity];

  size_t MemoryBytes() const { return sizeof(PageDelta); }
};

}  // namespace aplus

#endif  // APLUS_INDEX_LIST_PAGE_H_
