#ifndef APLUS_INDEX_LIST_PAGE_H_
#define APLUS_INDEX_LIST_PAGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include <vector>

#include "storage/types.h"

namespace aplus {

// One data page of a primary A+ index: the ID lists of a group of
// kGroupSize (64) owner vertices, plus the CSR offsets of the nested
// partitioning levels (Section IV-B).
//
// With partition fan-outs f1..fn and fp = f1*...*fn, `csr` has
// kGroupSize * fp + 1 entries; slot s of owner o (o = owner % 64) starts
// at csr[o * fp + s]. Because nested sublists are laid out contiguously,
// any partition *prefix* is still one contiguous range, which is what
// gives constant-time access at every level of the index.
//
// A page is an immutable sorted run once published: maintenance never
// mutates it in place. Updates accumulate in a separate PageDelta and a
// merge builds a fresh IdListPage, swaps it in behind an atomic pointer
// and retires this one through the EpochManager once no reader can still
// be probing it (Section IV-C, made concurrency-safe).
struct IdListPage {
  std::vector<uint32_t> csr;
  std::vector<vertex_id_t> nbrs;
  std::vector<edge_id_t> eids;

  size_t MemoryBytes() const {
    return csr.capacity() * sizeof(uint32_t) + nbrs.capacity() * sizeof(vertex_id_t) +
           eids.capacity() * sizeof(edge_id_t);
  }
};

// Pending updates of one page, kept out of the sorted run so concurrent
// readers never observe a half-mutated list. Fixed-capacity arrays with
// atomically published counts: the (single) writer stores the entry
// first, then bumps the count with release semantics; readers load the
// count with acquire and only look at entries below it. Appending is
// therefore allocation-free and never invalidates a concurrent probe.
//
// `inserts` holds edge ids not yet merged into the run; `deletes` holds
// edge ids to suppress (they may live in the run *or* in `inserts` — a
// probe and a merge both treat `deletes` as a filter over the union).
// When either side fills up the writer must merge the page inline.
struct PageDelta {
  static constexpr uint32_t kCapacity = 64;

  std::atomic<uint32_t> num_inserts{0};
  std::atomic<uint32_t> num_deletes{0};
  edge_id_t inserts[kCapacity];
  edge_id_t deletes[kCapacity];

  size_t MemoryBytes() const { return sizeof(PageDelta); }
};

}  // namespace aplus

#endif  // APLUS_INDEX_LIST_PAGE_H_
