#ifndef APLUS_INDEX_PRIMARY_INDEX_H_
#define APLUS_INDEX_PRIMARY_INDEX_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "index/adj_list_slice.h"
#include "index/index_config.h"
#include "index/list_page.h"
#include "storage/graph.h"
#include "storage/types.h"

namespace aplus {

// Maximum number of configured sort criteria (the paper's workloads use
// at most two, e.g. neighbour label then neighbour ID).
inline constexpr int kMaxSortKeys = 3;

// Sort key tuple of one list entry: the configured keys followed by the
// implicit neighbour-ID / edge-ID tie breakers.
struct SortKey {
  std::array<int64_t, kMaxSortKeys> keys{};
  int num_keys = 0;
  vertex_id_t nbr = 0;
  edge_id_t eid = 0;

  bool operator<(const SortKey& other) const {
    for (int i = 0; i < num_keys; ++i) {
      if (keys[i] != other.keys[i]) return keys[i] < other.keys[i];
    }
    if (nbr != other.nbr) return nbr < other.nbr;
    return eid < other.eid;
  }
};

// Encodes a double so that int64 comparison preserves double ordering.
int64_t EncodeDoubleSortKey(double d);
// Nulls sort last (Section III-A2).
inline constexpr int64_t kNullSortKey = INT64_MAX;

// Sort-key component of a list entry (edge e pointing at neighbour nbr)
// under one sort criterion. Shared by index builds and the MULTI-EXTEND
// merge, which re-derives entry keys at probe time.
int64_t EntrySortKey(const Graph& graph, const SortCriterion& criterion, edge_id_t e,
                     vertex_id_t nbr);

// Reusable scratch for materializing a merged run+delta view of one
// list. Owned by the probing ListDescriptor (cloned per worker replica),
// so the no-delta fast path performs no allocation at all and the slow
// path amortizes its buffers across probes.
struct ListMergeScratch {
  struct Add {
    uint32_t pos;  // insertion index within the probed run range
    uint32_t bucket;
    SortKey key;
    vertex_id_t nbr;
    edge_id_t eid;
  };
  std::vector<vertex_id_t> nbrs;
  std::vector<edge_id_t> eids;
  std::vector<Add> adds;
  std::vector<edge_id_t> deletes;
  // One-block decode cache for packed (segment-backed) lists, wired into
  // the returned slice so repeated point probes amortize varint decodes.
  codec::PackedCursor packed_cursor;
};

// A primary A+ index (Section III-A): one of the two mandatory indexes
// (forward or backward) that stores every edge of the graph in a nested
// CSR partitioned first by vertex ID (in pages of 64 vertices), then by
// the configured categorical criteria, with the most granular ID lists
// sorted by the configured criteria.
//
// Unlike existing GDBMSs, the secondary partitioning and the sorting are
// reconfigurable at runtime (RECONFIGURE PRIMARY INDEXES): Build() can be
// called again with a new config, which is exactly the paper's index
// reconfiguration (the IR column of Table II).
//
// Concurrency model: each page slot holds an immutable sorted run and an
// optional PageDelta behind atomic pointers. Readers (GetListSnapshot)
// are lock-free; they load run-then-delta with acquire semantics and
// merge the two views at probe time. All mutation — InsertEdge,
// DeleteEdge, merges, Build — serializes on an internal writer mutex, so
// one ingest thread and one background merger can run against any number
// of readers. Replaced runs/deltas are retired through the global
// EpochManager and freed only after every reader that could hold a
// pointer into them has unpinned. During concurrent serving the page
// vector must be pre-sized with ReservePages (growing it would move the
// slots under the readers); secondary indexes resolve offsets against
// primary runs non-atomically and are therefore unsupported while
// writers are active (enforced by Database::BeginConcurrentIngest).
class PrimaryIndex {
 public:
  PrimaryIndex(const Graph* graph, Direction direction);
  ~PrimaryIndex();

  // (Re)builds the whole index under `config`. Returns build seconds.
  double Build(const IndexConfig& config);

  Direction direction() const { return direction_; }
  const IndexConfig& config() const { return config_; }
  const Graph* graph() const { return graph_; }

  // Owner vertex whose list stores edge `e` (src for FW, dst for BW) and
  // the neighbour stored in the list entry.
  vertex_id_t OwnerOf(edge_id_t e) const {
    return direction_ == Direction::kFwd ? graph_->edge_src(e) : graph_->edge_dst(e);
  }
  vertex_id_t NbrOf(edge_id_t e) const {
    return direction_ == Direction::kFwd ? graph_->edge_dst(e) : graph_->edge_src(e);
  }

  // Constant-time list access against the sorted run only. `cats` fixes
  // a prefix of the partition criteria (Section III-A1): empty = the
  // whole list of v, one value = the level-1 sublist, and so on. Any
  // prefix is one contiguous range. Requires a clean index (no pending
  // delta entries) for exact results; concurrent probes use
  // GetListSnapshot instead.
  AdjListSlice GetList(vertex_id_t v, const std::vector<category_t>& cats) const;
  AdjListSlice GetFullList(vertex_id_t v) const;

  // Like GetList but merges the page's delta buffer into the view when
  // one is pending: run entries suppressed by `deletes` are skipped and
  // buffered inserts are spliced in at their sorted position, using
  // `scratch` for the materialized copy. When the page has no relevant
  // delta this degenerates to the zero-copy run slice. The caller must
  // hold an epoch pin for the lifetime of the returned slice.
  AdjListSlice GetListSnapshot(vertex_id_t v, const std::vector<category_t>& cats,
                               ListMergeScratch* scratch) const;

  // Base pointers of v's full ID list; secondary indexes resolve their
  // vertex-relative offsets against these.
  void GetListBase(vertex_id_t v, const vertex_id_t** nbrs, const edge_id_t** eids,
                   uint32_t* len) const;

  // Category of edge/nbr under one partitioning criterion (nulls map to
  // the extra last slot).
  category_t CategoryOf(const PartitionCriterion& criterion, edge_id_t e, vertex_id_t nbr) const;
  // Flattened partition path of an entry across all criteria of `config`.
  uint32_t BucketOf(const IndexConfig& config, const std::vector<uint32_t>& fanouts, edge_id_t e,
                    vertex_id_t nbr) const;

  int64_t SortKeyComponent(const SortCriterion& criterion, edge_id_t e, vertex_id_t nbr) const;
  SortKey ComputeSortKey(const IndexConfig& config, edge_id_t e, vertex_id_t nbr) const;

  const std::vector<uint32_t>& fanouts() const { return fanouts_; }
  uint32_t fanout_product() const { return fanout_product_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  const IdListPage& page(uint32_t p) const {
    return *pages_[p].run.load(std::memory_order_acquire);
  }

  size_t MemoryBytes() const;
  // Bytes of the partitioning-level CSRs only (the Dp overhead of
  // Table II comes from this component).
  size_t PartitionLevelBytes() const;
  uint64_t num_edges_indexed() const {
    return num_edges_indexed_.load(std::memory_order_relaxed);
  }
  double build_seconds() const { return build_seconds_; }

  // --- Maintenance (Section IV-C) ---
  // Buffers the insertion of edge `e` (must already exist in the graph);
  // the page merges automatically when its buffer fills up, unless auto
  // merge is off (background-merge mode), in which case only a full
  // PageDelta forces an inline merge.
  void InsertEdge(edge_id_t e);
  // Buffers the deletion of `e`; reclaimed at the next page merge.
  void DeleteEdge(edge_id_t e);
  // Merges all pending deltas. Non-snapshot queries require a clean index.
  void FlushUpdates();
  // Merges one page's pending delta (no-op when clean).
  void FlushPage(uint32_t page_idx);
  bool HasPendingUpdates() const {
    return pending_updates_.load(std::memory_order_relaxed) > 0;
  }

  // Pre-sizes the page vector for concurrent serving: the slot array
  // must not grow (and thus move) while lock-free readers index into it.
  void ReservePages(uint64_t max_vertices);

  // Installs sealed segment-backed pages: each IdListPage views arrays
  // inside a read-only mapping the caller keeps alive for the index's
  // lifetime (Database::OpenFromSegment holds the Segment). Replaces any
  // built state; must run before readers exist. Mutation of a
  // segment-backed index is rejected upstream (DDL / ingest guards).
  void AttachSegmentPages(const IndexConfig& config,
                          std::vector<std::unique_ptr<IdListPage>> pages, uint64_t num_edges);
  // Background-merge mode: the maintainer decides when to merge, pages
  // only force an inline merge when a delta side fills up entirely.
  void set_auto_merge(bool on) { auto_merge_ = on; }
  bool auto_merge() const { return auto_merge_; }

  // Delta occupancy of one page (inserts + deletes) and length of its
  // sorted run; the maintainer's merge cost model reads these.
  uint32_t DeltaEntries(uint32_t page_idx) const;
  uint32_t RunEntries(uint32_t page_idx) const;

  // Buffer capacity per page before an automatic merge.
  static constexpr uint32_t kUpdateBufferCapacity = 32;

 private:
  struct BuildEntry {
    uint32_t bucket;
    vertex_id_t nbr;
    edge_id_t eid;
    SortKey key;
  };

  // One page's published state. Only ever mutated under writer_mu_;
  // readers load the pointers with acquire semantics. Moves happen only
  // while the vector grows under writer_mu_ with no concurrent readers
  // (enforced by ReservePages in concurrent mode).
  struct PageSlot {
    std::atomic<const IdListPage*> run{nullptr};
    std::atomic<PageDelta*> delta{nullptr};

    PageSlot() = default;
    PageSlot(PageSlot&& other) noexcept
        : run(other.run.load(std::memory_order_relaxed)),
          delta(other.delta.load(std::memory_order_relaxed)) {
      other.run.store(nullptr, std::memory_order_relaxed);
      other.delta.store(nullptr, std::memory_order_relaxed);
    }
    PageSlot(const PageSlot&) = delete;
    PageSlot& operator=(const PageSlot&) = delete;
  };

  std::unique_ptr<IdListPage> BuildRun(const std::vector<edge_id_t>& edges) const;
  // Publishes `run` as the page's new sorted run and clears its delta;
  // the old run/delta are retired through the EpochManager.
  void PublishRun(uint32_t page_idx, std::unique_ptr<IdListPage> run);
  void MergePageLocked(uint32_t page_idx);
  void GrowPagesLocked(uint32_t page_idx);
  AdjListSlice SliceFromRun(const IdListPage* run, vertex_id_t v,
                            const std::vector<category_t>& cats,
                            codec::PackedCursor* cursor = nullptr) const;
  uint32_t PageOf(vertex_id_t v) const { return v / kGroupSize; }

  const Graph* graph_;
  Direction direction_;
  IndexConfig config_;
  std::vector<uint32_t> fanouts_;
  uint32_t fanout_product_ = 1;
  std::vector<PageSlot> pages_;
  std::atomic<uint64_t> num_edges_indexed_{0};
  std::atomic<uint64_t> pending_updates_{0};
  bool auto_merge_ = true;
  bool pages_reserved_ = false;
  double build_seconds_ = 0.0;
  // Serializes every mutator (ingest writer, background merger, DDL).
  mutable std::mutex writer_mu_;
};

}  // namespace aplus

#endif  // APLUS_INDEX_PRIMARY_INDEX_H_
