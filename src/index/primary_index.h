#ifndef APLUS_INDEX_PRIMARY_INDEX_H_
#define APLUS_INDEX_PRIMARY_INDEX_H_

#include <array>
#include <memory>
#include <vector>

#include "index/adj_list_slice.h"
#include "index/index_config.h"
#include "index/list_page.h"
#include "storage/graph.h"
#include "storage/types.h"

namespace aplus {

// Maximum number of configured sort criteria (the paper's workloads use
// at most two, e.g. neighbour label then neighbour ID).
inline constexpr int kMaxSortKeys = 3;

// Sort key tuple of one list entry: the configured keys followed by the
// implicit neighbour-ID / edge-ID tie breakers.
struct SortKey {
  std::array<int64_t, kMaxSortKeys> keys{};
  int num_keys = 0;
  vertex_id_t nbr = 0;
  edge_id_t eid = 0;

  bool operator<(const SortKey& other) const {
    for (int i = 0; i < num_keys; ++i) {
      if (keys[i] != other.keys[i]) return keys[i] < other.keys[i];
    }
    if (nbr != other.nbr) return nbr < other.nbr;
    return eid < other.eid;
  }
};

// Encodes a double so that int64 comparison preserves double ordering.
int64_t EncodeDoubleSortKey(double d);
// Nulls sort last (Section III-A2).
inline constexpr int64_t kNullSortKey = INT64_MAX;

// Sort-key component of a list entry (edge e pointing at neighbour nbr)
// under one sort criterion. Shared by index builds and the MULTI-EXTEND
// merge, which re-derives entry keys at probe time.
int64_t EntrySortKey(const Graph& graph, const SortCriterion& criterion, edge_id_t e,
                     vertex_id_t nbr);

// A primary A+ index (Section III-A): one of the two mandatory indexes
// (forward or backward) that stores every edge of the graph in a nested
// CSR partitioned first by vertex ID (in pages of 64 vertices), then by
// the configured categorical criteria, with the most granular ID lists
// sorted by the configured criteria.
//
// Unlike existing GDBMSs, the secondary partitioning and the sorting are
// reconfigurable at runtime (RECONFIGURE PRIMARY INDEXES): Build() can be
// called again with a new config, which is exactly the paper's index
// reconfiguration (the IR column of Table II).
class PrimaryIndex {
 public:
  PrimaryIndex(const Graph* graph, Direction direction);

  // (Re)builds the whole index under `config`. Returns build seconds.
  double Build(const IndexConfig& config);

  Direction direction() const { return direction_; }
  const IndexConfig& config() const { return config_; }
  const Graph* graph() const { return graph_; }

  // Owner vertex whose list stores edge `e` (src for FW, dst for BW) and
  // the neighbour stored in the list entry.
  vertex_id_t OwnerOf(edge_id_t e) const {
    return direction_ == Direction::kFwd ? graph_->edge_src(e) : graph_->edge_dst(e);
  }
  vertex_id_t NbrOf(edge_id_t e) const {
    return direction_ == Direction::kFwd ? graph_->edge_dst(e) : graph_->edge_src(e);
  }

  // Constant-time list access. `cats` fixes a prefix of the partition
  // criteria (Section III-A1): empty = the whole list of v, one value =
  // the level-1 sublist, and so on. Any prefix is one contiguous range.
  AdjListSlice GetList(vertex_id_t v, const std::vector<category_t>& cats) const;
  AdjListSlice GetFullList(vertex_id_t v) const;

  // Base pointers of v's full ID list; secondary indexes resolve their
  // vertex-relative offsets against these.
  void GetListBase(vertex_id_t v, const vertex_id_t** nbrs, const edge_id_t** eids,
                   uint32_t* len) const;

  // Category of edge/nbr under one partitioning criterion (nulls map to
  // the extra last slot).
  category_t CategoryOf(const PartitionCriterion& criterion, edge_id_t e, vertex_id_t nbr) const;
  // Flattened partition path of an entry across all criteria of `config`.
  uint32_t BucketOf(const IndexConfig& config, const std::vector<uint32_t>& fanouts, edge_id_t e,
                    vertex_id_t nbr) const;

  int64_t SortKeyComponent(const SortCriterion& criterion, edge_id_t e, vertex_id_t nbr) const;
  SortKey ComputeSortKey(const IndexConfig& config, edge_id_t e, vertex_id_t nbr) const;

  const std::vector<uint32_t>& fanouts() const { return fanouts_; }
  uint32_t fanout_product() const { return fanout_product_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  const IdListPage& page(uint32_t p) const { return *pages_[p]; }

  size_t MemoryBytes() const;
  // Bytes of the partitioning-level CSRs only (the Dp overhead of
  // Table II comes from this component).
  size_t PartitionLevelBytes() const;
  uint64_t num_edges_indexed() const { return num_edges_indexed_; }
  double build_seconds() const { return build_seconds_; }

  // --- Maintenance (Section IV-C) ---
  // Buffers the insertion of edge `e` (must already exist in the graph);
  // the page merges automatically when its buffer fills up.
  void InsertEdge(edge_id_t e);
  // Tombstones `e`; reclaimed at the next page merge.
  void DeleteEdge(edge_id_t e);
  // Merges all pending buffers/tombstones. Queries require a clean index.
  void FlushUpdates();
  // Merges one page's pending updates (no-op when clean).
  void FlushPage(uint32_t page_idx);
  bool HasPendingUpdates() const { return pending_updates_ > 0; }

  // Buffer capacity per page before an automatic merge.
  static constexpr uint32_t kUpdateBufferCapacity = 32;

 private:
  struct BuildEntry {
    uint32_t bucket;
    vertex_id_t nbr;
    edge_id_t eid;
    SortKey key;
  };

  void RebuildPage(uint32_t page_idx, const std::vector<edge_id_t>& edges);
  void MergePage(uint32_t page_idx);
  uint32_t PageOf(vertex_id_t v) const { return v / kGroupSize; }

  const Graph* graph_;
  Direction direction_;
  IndexConfig config_;
  std::vector<uint32_t> fanouts_;
  uint32_t fanout_product_ = 1;
  std::vector<std::unique_ptr<IdListPage>> pages_;
  uint64_t num_edges_indexed_ = 0;
  uint64_t pending_updates_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace aplus

#endif  // APLUS_INDEX_PRIMARY_INDEX_H_
