#include "index/index_store.h"

#include "util/logging.h"

namespace aplus {

IndexStore::IndexStore(const Graph* graph)
    : graph_(graph),
      primary_fwd_(std::make_unique<PrimaryIndex>(graph, Direction::kFwd)),
      primary_bwd_(std::make_unique<PrimaryIndex>(graph, Direction::kBwd)) {}

double IndexStore::BuildPrimary(const IndexConfig& config) {
  BumpVersion();
  double seconds = primary_fwd_->Build(config);
  seconds += primary_bwd_->Build(config);
  // A reconfiguration invalidates secondary indexes' offsets; rebuild.
  for (auto& vp : vp_indexes_) vp->Build();
  for (auto& ep : ep_indexes_) ep->Build();
  return seconds;
}

VpIndex* IndexStore::CreateVpIndex(const OneHopViewDef& view, const IndexConfig& config,
                                   Direction dir, double* build_seconds) {
  BumpVersion();
  auto index = std::make_unique<VpIndex>(graph_, primary(dir), view, config);
  double seconds = index->Build();
  if (build_seconds != nullptr) *build_seconds = seconds;
  vp_indexes_.push_back(std::move(index));
  return vp_indexes_.back().get();
}

EpIndex* IndexStore::CreateEpIndex(const TwoHopViewDef& view, const IndexConfig& config,
                                   double* build_seconds, size_t budget_bytes) {
  BumpVersion();
  auto index = std::make_unique<EpIndex>(graph_, primary_fwd_.get(), primary_bwd_.get(), view,
                                         config, budget_bytes);
  double seconds = index->Build();
  if (build_seconds != nullptr) *build_seconds = seconds;
  ep_indexes_.push_back(std::move(index));
  return ep_indexes_.back().get();
}

void IndexStore::DropSecondaryIndexes() {
  BumpVersion();
  vp_indexes_.clear();
  ep_indexes_.clear();
}

VpIndex* IndexStore::FindVpIndex(const std::string& name, Direction dir) {
  for (auto& vp : vp_indexes_) {
    if (vp->name() == name && vp->direction() == dir) return vp.get();
  }
  return nullptr;
}

EpIndex* IndexStore::FindEpIndex(const std::string& name) {
  for (auto& ep : ep_indexes_) {
    if (ep->name() == name) return ep.get();
  }
  return nullptr;
}

size_t IndexStore::PrimaryMemoryBytes() const {
  return primary_fwd_->MemoryBytes() + primary_bwd_->MemoryBytes();
}

size_t IndexStore::SecondaryMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& vp : vp_indexes_) bytes += vp->MemoryBytes();
  for (const auto& ep : ep_indexes_) bytes += ep->MemoryBytes();
  return bytes;
}

uint64_t IndexStore::TotalEdgesIndexed() const {
  // Both primary directions index every edge; the paper's |E_indexed|
  // column counts the forward primary once plus each secondary index.
  uint64_t total = primary_fwd_->num_edges_indexed();
  for (const auto& vp : vp_indexes_) total += vp->num_edges_indexed();
  for (const auto& ep : ep_indexes_) total += ep->num_edges_indexed();
  return total;
}

void IndexStore::FlushAll() {
  primary_fwd_->FlushUpdates();
  primary_bwd_->FlushUpdates();
  for (auto& vp : vp_indexes_) vp->FlushUpdates();
  for (auto& ep : ep_indexes_) ep->FlushUpdates();
}

void IndexStore::PrepareForConcurrentIngest(uint64_t max_vertices) {
  APLUS_CHECK(vp_indexes_.empty() && ep_indexes_.empty())
      << "secondary indexes are unsupported during concurrent ingest";
  primary_fwd_->ReservePages(max_vertices);
  primary_bwd_->ReservePages(max_vertices);
}

void IndexStore::AttachSegment(Direction dir, const IndexConfig& config,
                               std::vector<std::unique_ptr<IdListPage>> pages,
                               uint64_t num_edges) {
  APLUS_CHECK(vp_indexes_.empty() && ep_indexes_.empty())
      << "attach segment pages before creating secondary indexes";
  BumpVersion();
  primary(dir)->AttachSegmentPages(config, std::move(pages), num_edges);
}

bool IndexStore::HasPendingUpdates() const {
  if (primary_fwd_->HasPendingUpdates() || primary_bwd_->HasPendingUpdates()) return true;
  for (const auto& vp : vp_indexes_) {
    if (vp->HasPendingUpdates()) return true;
  }
  for (const auto& ep : ep_indexes_) {
    if (ep->HasPendingUpdates()) return true;
  }
  return false;
}

}  // namespace aplus
