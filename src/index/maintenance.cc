#include "index/maintenance.h"

#include "util/epoch.h"
#include "util/logging.h"

namespace aplus {

Maintainer::~Maintainer() {
  if (concurrent_mode()) ExitConcurrentMode();
}

uint32_t Maintainer::MergeThreshold(uint32_t run_entries) {
  // d* = r / 64, clamped to [8, kCapacity / 2]: small pages merge after a
  // handful of updates, hot long lists defer until the probe-side scan
  // cost genuinely outweighs the rebuild. The hard kCapacity bound in
  // PrimaryIndex still forces an inline merge if the merger falls behind.
  uint32_t t = run_entries / 64;
  if (t < 8) t = 8;
  if (t > PageDelta::kCapacity / 2) t = PageDelta::kCapacity / 2;
  return t;
}

void Maintainer::OnEdgeInserted(edge_id_t e) {
  if (concurrent_mode()) {
    PrimaryIndex* fwd = store_->primary(Direction::kFwd);
    PrimaryIndex* bwd = store_->primary(Direction::kBwd);
    fwd->InsertEdge(e);
    bwd->InsertEdge(e);
    MaybeScheduleMerge(fwd, e);
    MaybeScheduleMerge(bwd, e);
    return;
  }
  store_->primary(Direction::kFwd)->InsertEdge(e);
  store_->primary(Direction::kBwd)->InsertEdge(e);
  for (auto& vp : store_->vp_indexes()) {
    int64_t full_page = vp->InsertEdge(e);
    if (full_page >= 0) {
      // Merge ordering: the primary page of the same vertex group must be
      // current before the offset lists are re-derived from it.
      store_->primary(vp->direction())->FlushPage(static_cast<uint32_t>(full_page));
      vp->RebuildGroup(static_cast<uint32_t>(full_page));
    }
  }
  for (auto& ep : store_->ep_indexes()) {
    std::vector<uint32_t> full_pages = ep->InsertEdge(e);
    if (!full_pages.empty()) {
      // EP anchors scatter across primary pages; flush both primaries.
      store_->primary(Direction::kFwd)->FlushUpdates();
      store_->primary(Direction::kBwd)->FlushUpdates();
      for (uint32_t page : full_pages) ep->RebuildGroup(page);
    }
  }
}

void Maintainer::OnEdgeDeleted(edge_id_t e) {
  if (concurrent_mode()) {
    PrimaryIndex* fwd = store_->primary(Direction::kFwd);
    PrimaryIndex* bwd = store_->primary(Direction::kBwd);
    fwd->DeleteEdge(e);
    bwd->DeleteEdge(e);
    MaybeScheduleMerge(fwd, e);
    MaybeScheduleMerge(bwd, e);
    return;
  }
  // Capture EP pages affected by e acting as an adjacent edge *before*
  // the primary indexes forget it (marks the same pages pending).
  for (auto& ep : store_->ep_indexes()) ep->InsertEdge(e);
  store_->primary(Direction::kFwd)->DeleteEdge(e);
  store_->primary(Direction::kBwd)->DeleteEdge(e);
  for (auto& vp : store_->vp_indexes()) vp->InsertEdge(e);  // marks the owner page pending
}

void Maintainer::Finalize() { store_->FlushAll(); }

void Maintainer::MaybeScheduleMerge(PrimaryIndex* index, edge_id_t e) {
  uint32_t page = index->OwnerOf(e) / kGroupSize;
  uint32_t d = index->DeltaEntries(page);
  if (d < MergeThreshold(index->RunEntries(page))) return;
  if (!background_) {
    index->FlushPage(page);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!queued_.insert({index, page}).second) return;  // already scheduled
    queue_.push_back({index, page});
  }
  queue_cv_.notify_one();
}

void Maintainer::MergerLoop() {
  for (;;) {
    MergeTask task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_merger_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_merger_) return;
        continue;
      }
      task = queue_.front();
      queue_.pop_front();
      queued_.erase({task.index, task.page});
    }
    // FlushPage publishes the fresh run, retires the old run + delta and
    // advances the epoch; reclaim what drained readers no longer hold.
    task.index->FlushPage(task.page);
    background_merges_.fetch_add(1, std::memory_order_relaxed);
    EpochManager::Global().TryReclaim();
  }
}

void Maintainer::EnterConcurrentMode(bool background_merge) {
  APLUS_CHECK(!concurrent_mode()) << "concurrent mode is already active";
  APLUS_CHECK(store_->vp_indexes().empty() && store_->ep_indexes().empty())
      << "secondary indexes are unsupported during concurrent ingest "
         "(their offset lists resolve against primary runs non-atomically)";
  store_->primary(Direction::kFwd)->set_auto_merge(false);
  store_->primary(Direction::kBwd)->set_auto_merge(false);
  background_ = background_merge;
  if (background_) {
    stop_merger_ = false;
    merger_ = std::thread([this] { MergerLoop(); });
  }
  concurrent_.store(true, std::memory_order_release);
}

void Maintainer::ExitConcurrentMode() {
  APLUS_CHECK(concurrent_mode()) << "concurrent mode is not active";
  if (background_) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_merger_ = true;
    }
    queue_cv_.notify_one();
    merger_.join();
    queue_.clear();
    queued_.clear();
  }
  store_->primary(Direction::kFwd)->set_auto_merge(true);
  store_->primary(Direction::kBwd)->set_auto_merge(true);
  // Compact every remaining delta: afterwards plain GetList probes (and
  // the quiesced oracle paths in tests) see the exact index again.
  store_->FlushAll();
  concurrent_.store(false, std::memory_order_release);
}

}  // namespace aplus
