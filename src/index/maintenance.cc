#include "index/maintenance.h"

namespace aplus {

void Maintainer::OnEdgeInserted(edge_id_t e) {
  store_->primary(Direction::kFwd)->InsertEdge(e);
  store_->primary(Direction::kBwd)->InsertEdge(e);
  for (auto& vp : store_->vp_indexes()) {
    int64_t full_page = vp->InsertEdge(e);
    if (full_page >= 0) {
      // Merge ordering: the primary page of the same vertex group must be
      // current before the offset lists are re-derived from it.
      store_->primary(vp->direction())->FlushPage(static_cast<uint32_t>(full_page));
      vp->RebuildGroup(static_cast<uint32_t>(full_page));
    }
  }
  for (auto& ep : store_->ep_indexes()) {
    std::vector<uint32_t> full_pages = ep->InsertEdge(e);
    if (!full_pages.empty()) {
      // EP anchors scatter across primary pages; flush both primaries.
      store_->primary(Direction::kFwd)->FlushUpdates();
      store_->primary(Direction::kBwd)->FlushUpdates();
      for (uint32_t page : full_pages) ep->RebuildGroup(page);
    }
  }
}

void Maintainer::OnEdgeDeleted(edge_id_t e) {
  // Capture EP pages affected by e acting as an adjacent edge *before*
  // the primary indexes forget it (marks the same pages pending).
  for (auto& ep : store_->ep_indexes()) ep->InsertEdge(e);
  store_->primary(Direction::kFwd)->DeleteEdge(e);
  store_->primary(Direction::kBwd)->DeleteEdge(e);
  for (auto& vp : store_->vp_indexes()) vp->InsertEdge(e);  // marks the owner page pending
}

void Maintainer::Finalize() { store_->FlushAll(); }

}  // namespace aplus
