#ifndef APLUS_INDEX_ADJ_LIST_SLICE_H_
#define APLUS_INDEX_ADJ_LIST_SLICE_H_

#include <cstdint>

#include "storage/codec.h"
#include "storage/types.h"
#include "util/bit_util.h"

namespace aplus {

// A read-only view over one most-granular adjacency list.
//
// Primary A+ index lists are "direct": `nbrs`/`edges` point straight at
// the contiguous ID lists (4-byte neighbour IDs, 8-byte edge IDs,
// Section IV-B) and `offsets`/`packed` are null.
//
// Secondary A+ index lists are "offset lists" (Section III-B3): `offsets`
// points at a fixed-width byte array of positions into the bound vertex's
// primary ID list, and `nbrs`/`edges` point at the *base* of that primary
// list. Entry i resolves through one indirection; because primary lists
// are short (average degree of real graphs), the indirection stays cache
// friendly, which is the design argument of Section III-B3.
//
// Sealed-segment cold lists are "packed": `packed` points at the page's
// delta/varint stream (storage/codec.h) living inside the segment
// mapping, `packed_base` is the page-relative entry index of this slice,
// and `nbrs`/`edges` are null. Point access decodes through `cursor`
// (a one-block cache owned by the probing scratch) when wired, or the
// stateless reference decoder otherwise; batch access goes through the
// decode_varint_block kernel behind the same chokepoint as offset lists.
struct AdjListSlice {
  const vertex_id_t* nbrs = nullptr;
  const edge_id_t* edges = nullptr;
  const uint8_t* offsets = nullptr;
  const uint8_t* packed = nullptr;
  codec::PackedCursor* cursor = nullptr;
  uint32_t packed_base = 0;
  uint8_t offset_width = 0;
  uint32_t len = 0;

  uint32_t size() const { return len; }
  bool empty() const { return len == 0; }
  bool is_offset_list() const { return offsets != nullptr; }
  bool is_packed() const { return packed != nullptr; }
  // Direct lists expose flat sorted arrays the SIMD kernels can run on.
  bool is_direct() const { return offsets == nullptr && packed == nullptr; }

  // Position of entry i within the base primary list (identity for
  // direct lists; meaningless for packed lists).
  uint64_t BaseOffsetAt(uint32_t i) const {
    if (offsets == nullptr) return i;
    return LoadFixedWidth(offsets + static_cast<size_t>(i) * offset_width, offset_width);
  }

  vertex_id_t NbrAt(uint32_t i) const {
    if (packed != nullptr) {
      return cursor != nullptr ? cursor->NbrAt(packed, packed_base + i)
                               : codec::DecodeNbrAt(packed, packed_base + i);
    }
    return nbrs[BaseOffsetAt(i)];
  }
  edge_id_t EdgeAt(uint32_t i) const {
    if (packed != nullptr) {
      return cursor != nullptr ? cursor->EidAt(packed, packed_base + i)
                               : codec::DecodeEidAt(packed, packed_base + i);
    }
    return edges[BaseOffsetAt(i)];
  }
};

}  // namespace aplus

#endif  // APLUS_INDEX_ADJ_LIST_SLICE_H_
