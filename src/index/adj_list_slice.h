#ifndef APLUS_INDEX_ADJ_LIST_SLICE_H_
#define APLUS_INDEX_ADJ_LIST_SLICE_H_

#include <cstdint>

#include "storage/types.h"
#include "util/bit_util.h"

namespace aplus {

// A read-only view over one most-granular adjacency list.
//
// Primary A+ index lists are "direct": `nbrs`/`edges` point straight at
// the contiguous ID lists (4-byte neighbour IDs, 8-byte edge IDs,
// Section IV-B) and `offsets` is null.
//
// Secondary A+ index lists are "offset lists" (Section III-B3): `offsets`
// points at a fixed-width byte array of positions into the bound vertex's
// primary ID list, and `nbrs`/`edges` point at the *base* of that primary
// list. Entry i resolves through one indirection; because primary lists
// are short (average degree of real graphs), the indirection stays cache
// friendly, which is the design argument of Section III-B3.
struct AdjListSlice {
  const vertex_id_t* nbrs = nullptr;
  const edge_id_t* edges = nullptr;
  const uint8_t* offsets = nullptr;
  uint8_t offset_width = 0;
  uint32_t len = 0;

  uint32_t size() const { return len; }
  bool empty() const { return len == 0; }
  bool is_offset_list() const { return offsets != nullptr; }

  // Position of entry i within the base primary list (identity for
  // direct lists).
  uint64_t BaseOffsetAt(uint32_t i) const {
    if (offsets == nullptr) return i;
    return LoadFixedWidth(offsets + static_cast<size_t>(i) * offset_width, offset_width);
  }

  vertex_id_t NbrAt(uint32_t i) const { return nbrs[BaseOffsetAt(i)]; }
  edge_id_t EdgeAt(uint32_t i) const { return edges[BaseOffsetAt(i)]; }
};

}  // namespace aplus

#endif  // APLUS_INDEX_ADJ_LIST_SLICE_H_
