#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "index/index_store.h"
#include "storage/codec.h"
#include "storage/serialize.h"
#include "util/bit_util.h"
#include "util/logging.h"

namespace aplus {

namespace {

constexpr uint32_t kSegMagic = 0x47535041;  // "APSG"
constexpr uint32_t kSegVersion = 1;

// Fixed file header. All offsets are absolute file offsets; sections
// never overlap and every section starts 8-byte aligned.
struct SegmentHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t file_size;
  uint64_t graph_off;
  uint64_t graph_size;
  uint64_t index_off[2];  // [0] = FW metadata, [1] = BW metadata
  uint64_t index_size[2];
};
static_assert(sizeof(SegmentHeader) == 64);

// One page's location inside the file. `csr_off` points at the
// partition-level CSR (u32[csr_len]); `data_off` points at the adjacency
// payload: packed pages hold a codec stream of `data_size` bytes, raw
// pages hold u32 nbrs[num_entries], zero padding to an 8-byte boundary,
// then u64 eids[num_entries].
struct PageRecord {
  uint64_t csr_off;
  uint64_t data_off;
  uint64_t data_size;
  uint32_t csr_len;
  uint32_t num_entries;
  uint32_t flags;  // bit 0: packed
  uint32_t reserved;
};
static_assert(sizeof(PageRecord) == 40);

constexpr uint32_t kPageFlagPacked = 1u;

// Bytes a raw page's adjacency payload occupies.
uint64_t RawDataBytes(uint32_t num_entries) {
  return RoundUp(uint64_t{num_entries} * sizeof(vertex_id_t), 8) +
         uint64_t{num_entries} * sizeof(edge_id_t);
}

// ---------------------------------------------------------------------
// Seal side
// ---------------------------------------------------------------------

enum class CompressMode { kAuto, kOn, kOff };

CompressMode CompressModeFromEnv() {
  const char* env = std::getenv("APLUS_SEGMENT_COMPRESS");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) return CompressMode::kAuto;
  if (std::strcmp(env, "on") == 0) return CompressMode::kOn;
  if (std::strcmp(env, "off") == 0) return CompressMode::kOff;
  return CompressMode::kAuto;  // unrecognized: behave like auto
}

// Auto-mode packing threshold: a page packs only when its largest owner
// list is at most this long, so hub pages keep flat arrays for the SIMD
// frontier kernels.
constexpr uint32_t kAutoPackMaxDegree = 128;

// Growable file image. Everything is composed in memory (a sealed file
// is a few dozen bytes per edge; sealing is an offline operation) and
// written out in one pass.
class Blob {
 public:
  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  std::vector<uint8_t>* vec() { return &bytes_; }

  size_t Align8() {
    while (bytes_.size() % 8 != 0) bytes_.push_back(0);
    return bytes_.size();
  }

  size_t Append(const void* p, size_t n) {
    size_t off = bytes_.size();
    const uint8_t* src = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), src, src + n);
    return off;
  }

 private:
  std::vector<uint8_t> bytes_;
};

uint32_t MaxOwnerDegree(const IdListPage& page, uint32_t fanout_product) {
  uint32_t max_deg = 0;
  for (uint32_t o = 0; o < kGroupSize; ++o) {
    uint32_t begin = page.csr[o * fanout_product];
    uint32_t end = page.csr[(o + 1) * fanout_product];
    if (end - begin > max_deg) max_deg = end - begin;
  }
  return max_deg;
}

// Serializes one direction's pages into `blob` (data arena first, then
// the metadata section) and returns the metadata (offset, size).
std::pair<uint64_t, uint64_t> SealIndex(const PrimaryIndex& index, CompressMode mode, Blob* blob,
                                        SegmentStats* stats) {
  const uint32_t num_pages = index.num_pages();
  std::vector<PageRecord> records(num_pages);
  for (uint32_t p = 0; p < num_pages; ++p) {
    const IdListPage& page = index.page(p);
    PageRecord& rec = records[p];
    rec.csr_len = page.csr_len;
    rec.num_entries = page.num_entries;
    rec.csr_off = blob->Align8();
    blob->Append(page.csr, uint64_t{page.csr_len} * sizeof(uint32_t));
    stats->csr_bytes += uint64_t{page.csr_len} * sizeof(uint32_t);

    bool pack = mode == CompressMode::kOn ||
                (mode == CompressMode::kAuto &&
                 MaxOwnerDegree(page, index.fanout_product()) <= kAutoPackMaxDegree);
    if (pack) {
      rec.flags = kPageFlagPacked;
      rec.data_off = blob->Align8();
      rec.data_size = codec::PackAdjacency(page.nbrs, page.eids, page.num_entries, blob->vec());
      stats->packed_pages += 1;
      stats->packed_adj_bytes += rec.data_size;
      stats->packed_adj_unpacked_bytes += RawDataBytes(page.num_entries);
    } else {
      rec.flags = 0;
      rec.data_off = blob->Align8();
      blob->Append(page.nbrs, uint64_t{page.num_entries} * sizeof(vertex_id_t));
      blob->Align8();
      blob->Append(page.eids, uint64_t{page.num_entries} * sizeof(edge_id_t));
      rec.data_size = RawDataBytes(page.num_entries);
      stats->raw_pages += 1;
      stats->raw_adj_bytes += rec.data_size;
    }
  }

  const IndexConfig& config = index.config();
  uint64_t meta_off = blob->Align8();
  uint32_t counts[2] = {static_cast<uint32_t>(config.partitions.size()),
                        static_cast<uint32_t>(config.sorts.size())};
  blob->Append(counts, sizeof(counts));
  for (const PartitionCriterion& c : config.partitions) {
    uint32_t crit[2] = {static_cast<uint32_t>(c.source), c.key};
    blob->Append(crit, sizeof(crit));
  }
  for (const SortCriterion& c : config.sorts) {
    uint32_t crit[2] = {static_cast<uint32_t>(c.source), c.key};
    blob->Append(crit, sizeof(crit));
  }
  uint64_t edge_page_counts[2] = {index.num_edges_indexed(), num_pages};
  blob->Append(edge_page_counts, sizeof(edge_page_counts));
  blob->Append(records.data(), records.size() * sizeof(PageRecord));
  return {meta_off, blob->size() - meta_off};
}

// ---------------------------------------------------------------------
// Open side
// ---------------------------------------------------------------------

// Read-only streambuf over a byte range of the mapping, so the graph
// section reuses LoadGraphFromStream unchanged. The const_cast is safe:
// only the get area is set and nothing ever writes through it.
class MemStreambuf : public std::streambuf {
 public:
  MemStreambuf(const uint8_t* data, size_t size) {
    char* p = const_cast<char*>(reinterpret_cast<const char*>(data));
    setg(p, p, p + size);
  }
};

// Bounds-checked cursor over one metadata section.
class MetaReader {
 public:
  MetaReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadRaw(void* out, size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Validates one criterion key against the catalog so PartitionFanout /
// sort-key evaluation never index out of range (both would abort on a
// corrupted file otherwise).
bool ValidPropKey(const Catalog& catalog, uint32_t key, bool must_be_category) {
  if (key >= catalog.num_properties()) return false;
  return !must_be_category ||
         catalog.property(static_cast<prop_key_t>(key)).type == ValueType::kCategory;
}

bool ParseConfig(MetaReader* r, const Catalog& catalog, IndexConfig* config, std::string* error) {
  uint32_t num_partitions = 0;
  uint32_t num_sorts = 0;
  if (!r->ReadU32(&num_partitions) || !r->ReadU32(&num_sorts) || num_partitions > 16 ||
      num_sorts > 16) {
    return Fail(error, "segment: corrupt index config counts");
  }
  for (uint32_t i = 0; i < num_partitions; ++i) {
    uint32_t source = 0;
    uint32_t key = 0;
    if (!r->ReadU32(&source) || !r->ReadU32(&key) ||
        source > static_cast<uint32_t>(PartitionSource::kNbrProp)) {
      return Fail(error, "segment: corrupt partition criterion");
    }
    PartitionCriterion c;
    c.source = static_cast<PartitionSource>(source);
    c.key = static_cast<prop_key_t>(key);
    bool needs_key =
        c.source == PartitionSource::kEdgeProp || c.source == PartitionSource::kNbrProp;
    if (needs_key && !ValidPropKey(catalog, key, /*must_be_category=*/true)) {
      return Fail(error, "segment: partition criterion references an invalid property");
    }
    config->partitions.push_back(c);
  }
  for (uint32_t i = 0; i < num_sorts; ++i) {
    uint32_t source = 0;
    uint32_t key = 0;
    if (!r->ReadU32(&source) || !r->ReadU32(&key) ||
        source > static_cast<uint32_t>(SortSource::kNbrProp)) {
      return Fail(error, "segment: corrupt sort criterion");
    }
    SortCriterion c;
    c.source = static_cast<SortSource>(source);
    c.key = static_cast<prop_key_t>(key);
    bool needs_key = c.source == SortSource::kEdgeProp || c.source == SortSource::kNbrProp;
    if (needs_key && !ValidPropKey(catalog, key, /*must_be_category=*/false)) {
      return Fail(error, "segment: sort criterion references an invalid property");
    }
    config->sorts.push_back(c);
  }
  return true;
}

// A section range [off, off + len) that must land inside the mapped file
// past the header, with overflow-safe arithmetic.
bool RangeOk(uint64_t off, uint64_t len, uint64_t file_size) {
  return off >= sizeof(SegmentHeader) && off <= file_size && len <= file_size - off;
}

bool ValidateCsr(const uint32_t* csr, uint32_t csr_len, uint32_t num_entries) {
  if (csr[0] != 0 || csr[csr_len - 1] != num_entries) return false;
  for (uint32_t i = 1; i < csr_len; ++i) {
    if (csr[i] < csr[i - 1]) return false;
  }
  return true;
}

// Full value-range validation of one page's adjacency: every neighbour
// below num_vertices, every edge ID below num_edges. Queries index graph
// columns by these IDs, so a sealed file that decodes out-of-range IDs
// must be rejected at open, not at probe time.
bool ValidateIds(const IdListPage& page, uint64_t nv, uint64_t ne) {
  if (page.is_packed()) {
    vertex_id_t nbrs[codec::kBlockEntries];
    edge_id_t eids[codec::kBlockEntries];
    for (uint32_t i = 0; i < page.num_entries; i += codec::kBlockEntries) {
      uint32_t n = std::min(codec::kBlockEntries, page.num_entries - i);
      codec::DecodeRange(page.packed, i, n, nbrs, eids);
      for (uint32_t j = 0; j < n; ++j) {
        if (nbrs[j] >= nv || eids[j] >= ne) return false;
      }
    }
    return true;
  }
  for (uint32_t i = 0; i < page.num_entries; ++i) {
    if (page.nbrs[i] >= nv || page.eids[i] >= ne) return false;
  }
  return true;
}

bool ParseIndexPart(const uint8_t* base, uint64_t file_size, uint64_t off, uint64_t size,
                    const Graph& graph, SegmentIndexPart* part, SegmentStats* stats,
                    std::string* error) {
  MetaReader r(base + off, size);
  if (!ParseConfig(&r, graph.catalog(), &part->config, error)) return false;

  uint64_t num_pages = 0;
  if (!r.ReadU64(&part->num_edges) || !r.ReadU64(&num_pages)) {
    return Fail(error, "segment: truncated index metadata");
  }
  const uint64_t nv = graph.num_vertices();
  const uint64_t ne = graph.num_edges();
  if (part->num_edges != ne) return Fail(error, "segment: index edge count mismatch");
  if (num_pages != (nv + kGroupSize - 1) / kGroupSize) {
    return Fail(error, "segment: index page count mismatch");
  }

  uint32_t fanout_product = 1;
  for (const PartitionCriterion& c : part->config.partitions) {
    fanout_product *= PartitionFanout(graph.catalog(), c);
  }
  const uint32_t expected_csr_len = kGroupSize * fanout_product + 1;

  uint64_t total_entries = 0;
  part->pages.reserve(num_pages);
  for (uint64_t p = 0; p < num_pages; ++p) {
    PageRecord rec;
    if (!r.ReadRaw(&rec, sizeof(rec))) return Fail(error, "segment: truncated page records");
    if (rec.csr_len != expected_csr_len || (rec.flags & ~kPageFlagPacked) != 0 ||
        rec.csr_off % alignof(uint32_t) != 0 || rec.data_off % 8 != 0) {
      return Fail(error, "segment: malformed page record");
    }
    if (!RangeOk(rec.csr_off, uint64_t{rec.csr_len} * sizeof(uint32_t), file_size) ||
        !RangeOk(rec.data_off, rec.data_size, file_size)) {
      return Fail(error, "segment: page data out of bounds");
    }
    auto page = std::make_unique<IdListPage>();
    page->csr = reinterpret_cast<const uint32_t*>(base + rec.csr_off);
    page->csr_len = rec.csr_len;
    page->num_entries = rec.num_entries;
    if (!ValidateCsr(page->csr, page->csr_len, page->num_entries)) {
      return Fail(error, "segment: non-monotone page CSR");
    }
    if ((rec.flags & kPageFlagPacked) != 0) {
      size_t stream_bytes = 0;
      if (!codec::ValidatePacked(base + rec.data_off, rec.data_size, &stream_bytes) ||
          stream_bytes != rec.data_size ||
          codec::PackedNumEntries(base + rec.data_off) != rec.num_entries) {
        return Fail(error, "segment: malformed packed adjacency stream");
      }
      page->packed = base + rec.data_off;
      stats->packed_pages += 1;
      stats->packed_adj_bytes += rec.data_size;
      stats->packed_adj_unpacked_bytes += RawDataBytes(rec.num_entries);
    } else {
      if (rec.data_size != RawDataBytes(rec.num_entries)) {
        return Fail(error, "segment: raw page size mismatch");
      }
      page->nbrs = reinterpret_cast<const vertex_id_t*>(base + rec.data_off);
      page->eids = reinterpret_cast<const edge_id_t*>(
          base + rec.data_off + RoundUp(uint64_t{rec.num_entries} * sizeof(vertex_id_t), 8));
      stats->raw_pages += 1;
      stats->raw_adj_bytes += rec.data_size;
    }
    stats->csr_bytes += uint64_t{rec.csr_len} * sizeof(uint32_t);
    if (!ValidateIds(*page, nv, ne)) {
      return Fail(error, "segment: adjacency entry references an invalid vertex or edge");
    }
    total_entries += rec.num_entries;
    part->pages.push_back(std::move(page));
  }
  if (!r.exhausted()) return Fail(error, "segment: trailing bytes in index metadata");
  if (total_entries != part->num_edges) {
    return Fail(error, "segment: page entry counts do not sum to the edge count");
  }
  return true;
}

void ApplyMadvise(void* base, size_t size) {
  const char* env = std::getenv("APLUS_SEGMENT_MADVISE");
  int advice = MADV_RANDOM;  // auto: point probes dominate
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "off") == 0) return;
    if (std::strcmp(env, "sequential") == 0) advice = MADV_SEQUENTIAL;
    if (std::strcmp(env, "willneed") == 0) advice = MADV_WILLNEED;
    // "auto" / "random" / unrecognized all keep MADV_RANDOM.
  }
  madvise(base, size, advice);  // advisory; failure is harmless
}

}  // namespace

Segment::~Segment() {
  if (base_ != nullptr) munmap(base_, map_size_);
}

bool SealSegment(const Graph& graph, const IndexStore& store, const std::string& path,
                 std::string* error) {
  for (Direction dir : {Direction::kFwd, Direction::kBwd}) {
    const PrimaryIndex* index = store.primary(dir);
    if (index->num_pages() != (graph.num_vertices() + kGroupSize - 1) / kGroupSize ||
        index->num_edges_indexed() != graph.num_edges()) {
      return Fail(error, "seal: primary indexes are not built over the full graph");
    }
    if (index->HasPendingUpdates()) {
      return Fail(error, "seal: primary index has pending updates; flush first");
    }
  }

  Blob blob;
  SegmentHeader header;
  std::memset(&header, 0, sizeof(header));
  blob.Append(&header, sizeof(header));  // patched below

  std::ostringstream graph_stream;
  if (!SaveGraphToStream(graph, graph_stream)) {
    return Fail(error, "seal: graph snapshot serialization failed");
  }
  std::string graph_bytes = graph_stream.str();
  header.graph_off = blob.Align8();
  header.graph_size = graph_bytes.size();
  blob.Append(graph_bytes.data(), graph_bytes.size());

  SegmentStats stats;
  CompressMode mode = CompressModeFromEnv();
  for (int d = 0; d < 2; ++d) {
    Direction dir = d == 0 ? Direction::kFwd : Direction::kBwd;
    auto [off, size] = SealIndex(*store.primary(dir), mode, &blob, &stats);
    header.index_off[d] = off;
    header.index_size[d] = size;
  }

  header.magic = kSegMagic;
  header.version = kSegVersion;
  header.file_size = blob.size();
  std::memcpy(blob.data(), &header, sizeof(header));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Fail(error, "seal: cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out.good()) return Fail(error, "seal: short write to " + path);
  APLUS_LOG(Info) << "sealed " << path << ": " << blob.size() << " bytes, "
                  << stats.packed_pages << " packed / " << stats.raw_pages << " raw pages";
  return true;
}

std::unique_ptr<Segment> OpenSegment(const std::string& path, std::string* error) {
  auto fail = [error](const std::string& message) -> std::unique_ptr<Segment> {
    if (error != nullptr) *error = message;
    return nullptr;
  };

  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail("segment: cannot open " + path);
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size < 0) {
    close(fd);
    return fail("segment: cannot stat " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size < sizeof(SegmentHeader)) {
    close(fd);
    return fail("segment: file shorter than the header");
  }
  void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);
  if (base == MAP_FAILED) return fail("segment: mmap failed for " + path);

  std::unique_ptr<Segment> seg(new Segment());
  seg->base_ = base;
  seg->map_size_ = size;
  seg->path_ = path;
  const uint8_t* bytes = static_cast<const uint8_t*>(base);

  SegmentHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  if (header.magic != kSegMagic) return fail("segment: bad magic in " + path);
  if (header.version != kSegVersion) return fail("segment: unsupported version");
  if (header.file_size != size) return fail("segment: truncated file (size mismatch)");
  if (!RangeOk(header.graph_off, header.graph_size, size) ||
      !RangeOk(header.index_off[0], header.index_size[0], size) ||
      !RangeOk(header.index_off[1], header.index_size[1], size)) {
    return fail("segment: section out of bounds");
  }

  ApplyMadvise(base, size);

  MemStreambuf graph_buf(bytes + header.graph_off, header.graph_size);
  std::istream graph_in(&graph_buf);
  if (!LoadGraphFromStream(graph_in, &seg->graph_, path)) {
    return fail("segment: corrupt graph snapshot section");
  }

  seg->stats_.file_bytes = size;
  seg->stats_.graph_bytes = header.graph_size;
  std::string part_error;
  for (int d = 0; d < 2; ++d) {
    if (!ParseIndexPart(bytes, size, header.index_off[d], header.index_size[d], seg->graph_,
                        &seg->parts_[d], &seg->stats_, &part_error)) {
      return fail(part_error);
    }
  }
  return seg;
}

}  // namespace aplus
