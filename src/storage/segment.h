#ifndef APLUS_STORAGE_SEGMENT_H_
#define APLUS_STORAGE_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/index_config.h"
#include "index/list_page.h"
#include "storage/graph.h"

namespace aplus {

class IndexStore;

// Sealed segment tier: one immutable, mmap-friendly file holding a graph
// snapshot plus both primary A+ indexes in their final on-disk layout,
// so reopening skips the whole index build (bucket computation, sorting,
// CSR assembly) and pages fault in lazily.
//
// File layout ("APSG", version 1, little-endian):
//
//   SegmentHeader        fixed 64 bytes: magic, version, file size, and
//                        the (offset, size) of the graph section and of
//                        the two index sections
//   graph section        an "APLS" snapshot stream (storage/serialize.h);
//                        copied into an in-memory Graph at open — graph
//                        columns are the mutable side of the engine and
//                        stay heap-backed
//   per-index data arena 8-byte-aligned page payloads: the partition CSR
//                        of every page followed by either flat
//                        nbr/eid arrays (raw pages) or a delta/varint
//                        stream (packed pages, storage/codec.h)
//   per-index metadata   IndexConfig criteria, edge/page counts, and one
//                        PageRecord per page pointing into the arena
//
// Index sections are zero-copy: OpenSegment validates them (bounds,
// CSR monotonicity, codec structure, ID ranges) and builds IdListPage
// views that point straight into the read-only mapping. The Segment owns
// the mapping and must outlive every index attached to it
// (Database::OpenFromSegment keeps it alive for the database's
// lifetime).
//
// Environment knobs (read at seal / open time):
//   APLUS_SEGMENT_COMPRESS = auto|on|off
//     auto (default): pack a page's adjacency iff its largest owner list
//     has <= 128 entries — hub pages stay raw so the SIMD frontier
//     kernels keep operating on flat arrays; on/off force one side.
//   APLUS_SEGMENT_MADVISE = auto|random|sequential|willneed|off
//     madvise(2) hint applied to the mapping; auto = random (point
//     probes dominate the probe-heavy read path).

// Per-page adjacency representation statistics of a sealed file, for the
// bytes/edge benchmark and logs.
struct SegmentStats {
  uint64_t file_bytes = 0;
  uint64_t graph_bytes = 0;
  uint32_t raw_pages = 0;
  uint32_t packed_pages = 0;
  // Adjacency payload bytes (both directions, CSR excluded).
  uint64_t raw_adj_bytes = 0;
  uint64_t packed_adj_bytes = 0;
  // What the packed pages would occupy as flat nbr/eid arrays.
  uint64_t packed_adj_unpacked_bytes = 0;
  uint64_t csr_bytes = 0;
};

// One direction's sealed index, as parsed from a mapping: the config it
// was built under and one view-only IdListPage per vertex group, ready
// for PrimaryIndex::AttachSegmentPages.
struct SegmentIndexPart {
  IndexConfig config;
  uint64_t num_edges = 0;
  std::vector<std::unique_ptr<IdListPage>> pages;
};

// An open, validated segment mapping. Movable state lives behind the
// unique_ptr returned by OpenSegment; the destructor unmaps.
class Segment {
 public:
  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  // The graph copied out of the snapshot section. The caller may move it
  // out (index page views point into the mapping, not the graph).
  Graph& graph() { return graph_; }
  // Sealed pages of one direction; AttachSegment consumes `pages`.
  SegmentIndexPart& part(Direction dir) {
    return parts_[dir == Direction::kFwd ? 0 : 1];
  }
  const SegmentStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  friend std::unique_ptr<Segment> OpenSegment(const std::string& path, std::string* error);
  Segment() = default;

  void* base_ = nullptr;
  size_t map_size_ = 0;
  Graph graph_;
  SegmentIndexPart parts_[2];
  SegmentStats stats_;
  std::string path_;
};

// Writes the sealed segment file for `graph` + `store` at `path`. Both
// primary indexes must be built and clean (no pending deltas) — the
// Database seal path flushes first. Returns false with a description in
// *error on I/O failure or unmet preconditions.
bool SealSegment(const Graph& graph, const IndexStore& store, const std::string& path,
                 std::string* error);

// Maps `path` read-only and validates every section; returns null with a
// typed description in *error on any structural violation (truncation,
// bad magic/version, out-of-bounds offsets, non-monotone CSRs, malformed
// codec streams, out-of-range vertex/edge IDs). Never aborts on
// untrusted input.
std::unique_ptr<Segment> OpenSegment(const std::string& path, std::string* error);

}  // namespace aplus

#endif  // APLUS_STORAGE_SEGMENT_H_
