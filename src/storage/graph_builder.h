#ifndef APLUS_STORAGE_GRAPH_BUILDER_H_
#define APLUS_STORAGE_GRAPH_BUILDER_H_

#include <string>

#include "storage/graph.h"

namespace aplus {

// Convenience layer for constructing small graphs by name (tests, examples,
// CSV import). Resolves label/property names through the catalog once and
// forwards to the Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(Graph* graph) : graph_(graph) {}

  vertex_id_t AddVertex(const std::string& label);
  edge_id_t AddEdge(vertex_id_t src, vertex_id_t dst, const std::string& label);

  // Sets a property value, creating the column on first use. The column
  // type is inferred from the first value written; categorical columns
  // must be registered up-front via Graph::Add*Property.
  void SetVertexProp(vertex_id_t v, const std::string& name, const Value& value);
  void SetEdgeProp(edge_id_t e, const std::string& name, const Value& value);

  Graph* graph() { return graph_; }

 private:
  prop_key_t EnsureProperty(const std::string& name, PropTargetKind target, const Value& value);

  Graph* graph_;
};

}  // namespace aplus

#endif  // APLUS_STORAGE_GRAPH_BUILDER_H_
