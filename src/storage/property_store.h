#ifndef APLUS_STORAGE_PROPERTY_STORE_H_
#define APLUS_STORAGE_PROPERTY_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/catalog.h"
#include "storage/types.h"
#include "storage/value.h"

namespace aplus {

// A single typed, nullable property column, indexed by vertex or edge id.
// Strings are dictionary-encoded; categorical values are stored as dense
// int codes in [0, domain_size).
//
// Concurrent serving: size() reflects the atomically *published* length,
// stored with release after Resize has grown the payload vectors, so a
// reader racing an ingest writer never indexes past initialized memory.
// Growth past the reserved capacity would reallocate the vectors under
// the readers; Database::BeginConcurrentIngest calls Reserve to rule
// that out. Values of an id must be written before the id becomes
// reachable (i.e. before the edge/vertex is published to the indexes);
// string columns additionally grow their dictionary on write and are
// therefore writable only while queries are quiesced.
class PropertyColumn {
 public:
  PropertyColumn(prop_key_t key, ValueType type, uint32_t domain_size);

  prop_key_t key() const { return key_; }
  ValueType type() const { return type_; }
  uint32_t domain_size() const { return domain_size_; }
  size_t size() const { return published_size_.load(std::memory_order_acquire); }

  void Resize(size_t n);
  void Reserve(size_t n);

  void SetInt64(uint64_t id, int64_t v);
  void SetDouble(uint64_t id, double v);
  void SetBool(uint64_t id, bool v);
  void SetString(uint64_t id, const std::string& v);
  void SetCategory(uint64_t id, category_t v);
  void SetNull(uint64_t id);
  void Set(uint64_t id, const Value& v);

  bool IsNull(uint64_t id) const { return nulls_[id] != 0; }
  int64_t GetInt64(uint64_t id) const { return ints_[id]; }
  double GetDouble(uint64_t id) const { return doubles_[id]; }
  bool GetBool(uint64_t id) const { return ints_[id] != 0; }
  const std::string& GetString(uint64_t id) const { return dict_[codes_[id]]; }

  // Categorical accessor used by the partitioning levels: returns the
  // category code, or `domain_size()` (the extra null slot) when null.
  category_t GetCategoryOrNullSlot(uint64_t id) const {
    return nulls_[id] ? domain_size_ : static_cast<category_t>(ints_[id]);
  }

  // Generic accessor for predicate evaluation and tests.
  Value Get(uint64_t id) const;

  // Raw storage footprint in bytes (used by memory accounting).
  size_t MemoryBytes() const;

 private:
  prop_key_t key_;
  ValueType type_;
  uint32_t domain_size_;

  std::atomic<size_t> published_size_{0};
  std::vector<uint8_t> nulls_;     // 1 = null
  std::vector<int64_t> ints_;      // kInt64 / kBool / kCategory payload
  std::vector<double> doubles_;    // kDouble payload
  std::vector<uint32_t> codes_;    // kString payload (dictionary codes)
  std::vector<std::string> dict_;  // string dictionary
  std::unordered_map<std::string, uint32_t> dict_ids_;
};

// All property columns for one target kind (vertices or edges). Column
// lookup is by catalog property key; missing columns behave as all-null.
class PropertyStore {
 public:
  explicit PropertyStore(PropTargetKind target) : target_(target) {}

  // Moves happen only while quiesced (dataset construction); the atomic
  // published size blocks the defaulted special members.
  PropertyStore(PropertyStore&& other) noexcept
      : target_(other.target_),
        size_(other.size_.load(std::memory_order_relaxed)),
        columns_(std::move(other.columns_)) {
    other.size_.store(0, std::memory_order_relaxed);
  }
  PropertyStore& operator=(PropertyStore&& other) noexcept {
    target_ = other.target_;
    size_.store(other.size_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    columns_ = std::move(other.columns_);
    other.size_.store(0, std::memory_order_relaxed);
    return *this;
  }

  PropTargetKind target() const { return target_; }

  // Creates the column for `key` (idempotent) and returns it.
  PropertyColumn* AddColumn(const Catalog& catalog, prop_key_t key);

  // Returns nullptr if the column was never created.
  const PropertyColumn* column(prop_key_t key) const;
  PropertyColumn* mutable_column(prop_key_t key);

  // Grows every column to hold ids in [0, n).
  void Resize(size_t n);
  // Pre-allocates capacity in every column so a concurrent ingest phase
  // never reallocates payload vectors under lock-free readers.
  void Reserve(size_t n);
  size_t size() const { return size_.load(std::memory_order_acquire); }

  bool IsNull(prop_key_t key, uint64_t id) const;
  Value Get(prop_key_t key, uint64_t id) const;

  size_t MemoryBytes() const;

 private:
  PropTargetKind target_;
  std::atomic<size_t> size_{0};
  std::vector<std::unique_ptr<PropertyColumn>> columns_;  // indexed by key (sparse)
};

}  // namespace aplus

#endif  // APLUS_STORAGE_PROPERTY_STORE_H_
