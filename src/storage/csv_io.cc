#include "storage/csv_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace aplus {

std::vector<std::string> SplitCsvLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, delimiter)) fields.push_back(field);
  return fields;
}

int64_t LoadEdgeListCsv(const std::string& path, const CsvEdgeListOptions& options, Graph* graph) {
  std::ifstream in(path);
  if (!in.is_open()) {
    APLUS_LOG(Error) << "cannot open " << path;
    return -1;
  }
  label_t vlabel = graph->catalog().AddVertexLabel(options.default_vertex_label);
  label_t default_elabel = graph->catalog().AddEdgeLabel(options.default_edge_label);

  std::string line;
  bool first = true;
  int64_t edges = 0;
  while (std::getline(in, line)) {
    if (first && options.has_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (fields.size() < 2) continue;
    uint64_t src = std::stoull(fields[0]);
    uint64_t dst = std::stoull(fields[1]);
    uint64_t needed = std::max(src, dst) + 1;
    while (graph->num_vertices() < needed) graph->AddVertex(vlabel);
    label_t elabel = default_elabel;
    if (fields.size() >= 3 && !fields[2].empty()) {
      elabel = graph->catalog().AddEdgeLabel(fields[2]);
    }
    graph->AddEdge(static_cast<vertex_id_t>(src), static_cast<vertex_id_t>(dst), elabel);
    ++edges;
  }
  return edges;
}

bool SaveEdgeListCsv(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    APLUS_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    out << graph.edge_src(e) << ',' << graph.edge_dst(e) << ','
        << graph.catalog().EdgeLabelName(graph.edge_label(e)) << '\n';
  }
  return out.good();
}

}  // namespace aplus
