#include "storage/graph_builder.h"

#include "util/logging.h"

namespace aplus {

vertex_id_t GraphBuilder::AddVertex(const std::string& label) {
  return graph_->AddVertex(graph_->catalog().AddVertexLabel(label));
}

edge_id_t GraphBuilder::AddEdge(vertex_id_t src, vertex_id_t dst, const std::string& label) {
  return graph_->AddEdge(src, dst, graph_->catalog().AddEdgeLabel(label));
}

prop_key_t GraphBuilder::EnsureProperty(const std::string& name, PropTargetKind target,
                                        const Value& value) {
  prop_key_t key = graph_->catalog().FindProperty(name, target);
  if (key != kInvalidPropKey) return key;
  APLUS_CHECK(!value.is_null()) << "cannot infer type of property " << name << " from null";
  APLUS_CHECK(value.type() != ValueType::kCategory)
      << "categorical property " << name << " must be registered with a domain first";
  if (target == PropTargetKind::kVertex) {
    return graph_->AddVertexProperty(name, value.type());
  }
  return graph_->AddEdgeProperty(name, value.type());
}

void GraphBuilder::SetVertexProp(vertex_id_t v, const std::string& name, const Value& value) {
  prop_key_t key = EnsureProperty(name, PropTargetKind::kVertex, value);
  graph_->vertex_props().AddColumn(graph_->catalog(), key)->Set(v, value);
}

void GraphBuilder::SetEdgeProp(edge_id_t e, const std::string& name, const Value& value) {
  prop_key_t key = EnsureProperty(name, PropTargetKind::kEdge, value);
  graph_->edge_props().AddColumn(graph_->catalog(), key)->Set(e, value);
}

}  // namespace aplus
