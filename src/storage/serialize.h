#ifndef APLUS_STORAGE_SERIALIZE_H_
#define APLUS_STORAGE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "storage/graph.h"

namespace aplus {

// Binary snapshot of a property graph: catalog (labels, property
// metadata, category-value names), vertex/edge topology, and every
// property column. Indexes are not serialized — they rebuild from the
// graph deterministically (and reconfigurably), which is the point of
// the A+ design.
//
// Format: little-endian, versioned magic header; not portable across
// incompatible versions (the loader rejects unknown versions).
bool SaveGraph(const Graph& graph, const std::string& path);

// Loads a snapshot into `graph` (which must be default-constructed).
// Returns false on I/O error, bad magic, or version mismatch.
bool LoadGraph(const std::string& path, Graph* graph);

// Stream variants of the same format, used by the sealed-segment layer
// to embed a graph snapshot as one section of a larger file. The loader
// fails closed on truncation and on any out-of-range value (label IDs,
// value-type tags, category codes); `origin` names the source in error
// logs.
bool SaveGraphToStream(const Graph& graph, std::ostream& out);
bool LoadGraphFromStream(std::istream& in, Graph* graph, const std::string& origin);

}  // namespace aplus

#endif  // APLUS_STORAGE_SERIALIZE_H_
