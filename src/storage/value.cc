#include "storage/value.h"

#include <cstdio>

#include "util/logging.h"

namespace aplus {

const char* ToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kCategory:
      return "CATEGORY";
  }
  return "?";
}

int64_t Value::AsInt64() const {
  APLUS_CHECK(type_ == ValueType::kInt64 || type_ == ValueType::kBool ||
              type_ == ValueType::kCategory)
      << "Value is " << aplus::ToString(type_);
  return int_;
}

double Value::AsDouble() const {
  if (type_ == ValueType::kDouble) return double_;
  APLUS_CHECK(type_ == ValueType::kInt64 || type_ == ValueType::kCategory)
      << "Value is " << aplus::ToString(type_);
  return static_cast<double>(int_);
}

bool Value::AsBool() const {
  APLUS_CHECK(type_ == ValueType::kBool) << "Value is " << aplus::ToString(type_);
  return int_ != 0;
}

const std::string& Value::AsString() const {
  APLUS_CHECK(type_ == ValueType::kString) << "Value is " << aplus::ToString(type_);
  return string_;
}

int Value::Compare(const Value& a, const Value& b) {
  // Nulls sort after every non-null value.
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return 1;
  if (b.is_null()) return -1;
  if (a.type_ == ValueType::kString || b.type_ == ValueType::kString) {
    APLUS_CHECK(a.type_ == b.type_) << "cannot compare string with non-string";
    return a.string_.compare(b.string_) < 0 ? -1 : (a.string_ == b.string_ ? 0 : 1);
  }
  if (a.type_ == ValueType::kDouble || b.type_ == ValueType::kDouble) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    return x < y ? -1 : (x == y ? 0 : 1);
  }
  int64_t x = a.int_;
  int64_t y = b.int_;
  return x < y ? -1 : (x == y ? 0 : 1);
}

std::string Value::ToString() const {
  char buf[64];
  switch (type_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
    case ValueType::kCategory:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      return buf;
    case ValueType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    case ValueType::kBool:
      return int_ ? "true" : "false";
    case ValueType::kString:
      return string_;
  }
  return "?";
}

}  // namespace aplus
