#ifndef APLUS_STORAGE_GRAPH_H_
#define APLUS_STORAGE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "storage/catalog.h"
#include "storage/property_store.h"
#include "storage/types.h"

namespace aplus {

// In-memory property graph: labelled vertices and directed labelled edges
// with typed key-value properties (the property graph model of Section I).
// The graph itself is unindexed edge storage; all adjacency access goes
// through the A+ indexes in src/index/.
//
// Vertex ids are assigned consecutively from 0 (Section IV-B relies on
// this for the div/mod page addressing). Edge ids likewise.
class Graph {
 public:
  Graph() : vertex_props_(PropTargetKind::kVertex), edge_props_(PropTargetKind::kEdge) {}

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  vertex_id_t AddVertex(label_t label);
  edge_id_t AddEdge(vertex_id_t src, vertex_id_t dst, label_t label);

  uint64_t num_vertices() const { return vertex_labels_.size(); }
  uint64_t num_edges() const { return edge_srcs_.size(); }

  label_t vertex_label(vertex_id_t v) const { return vertex_labels_[v]; }
  label_t edge_label(edge_id_t e) const { return edge_labels_[e]; }

  // Relabeling is used by the dataset generators (G_{i,j} methodology);
  // indexes built before a relabel must be rebuilt.
  void set_vertex_label(vertex_id_t v, label_t label) { vertex_labels_[v] = label; }
  void set_edge_label(edge_id_t e, label_t label) { edge_labels_[e] = label; }

  vertex_id_t edge_src(edge_id_t e) const { return edge_srcs_[e]; }
  vertex_id_t edge_dst(edge_id_t e) const { return edge_dsts_[e]; }

  // Endpoint of `e` on the far side when traversing in direction `dir`
  // from the near side, i.e. dst for FW and src for BW.
  vertex_id_t edge_endpoint(edge_id_t e, Direction dir) const {
    return dir == Direction::kFwd ? edge_dsts_[e] : edge_srcs_[e];
  }

  PropertyStore& vertex_props() { return vertex_props_; }
  const PropertyStore& vertex_props() const { return vertex_props_; }
  PropertyStore& edge_props() { return edge_props_; }
  const PropertyStore& edge_props() const { return edge_props_; }

  // Convenience: registers property metadata in the catalog and creates
  // the backing column.
  prop_key_t AddVertexProperty(const std::string& name, ValueType type, uint32_t domain_size = 0);
  prop_key_t AddEdgeProperty(const std::string& name, ValueType type, uint32_t domain_size = 0);

  double average_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_vertices());
  }

  size_t MemoryBytes() const;

 private:
  Catalog catalog_;
  std::vector<label_t> vertex_labels_;
  std::vector<vertex_id_t> edge_srcs_;
  std::vector<vertex_id_t> edge_dsts_;
  std::vector<label_t> edge_labels_;
  PropertyStore vertex_props_;
  PropertyStore edge_props_;
};

}  // namespace aplus

#endif  // APLUS_STORAGE_GRAPH_H_
