#ifndef APLUS_STORAGE_GRAPH_H_
#define APLUS_STORAGE_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "storage/catalog.h"
#include "storage/property_store.h"
#include "storage/types.h"

namespace aplus {

// In-memory property graph: labelled vertices and directed labelled edges
// with typed key-value properties (the property graph model of Section I).
// The graph itself is unindexed edge storage; all adjacency access goes
// through the A+ indexes in src/index/.
//
// Vertex ids are assigned consecutively from 0 (Section IV-B relies on
// this for the div/mod page addressing). Edge ids likewise.
//
// Concurrent serving: num_vertices()/num_edges() return atomically
// *published* counts, stored with release only after the element data
// (labels, endpoints) is in place, so lock-free readers racing a single
// ingest writer see a consistent prefix of the graph. The backing
// vectors must not reallocate while readers are active —
// ReserveForIngest pre-sizes their capacity before a concurrent ingest
// phase, and AddVertex/AddEdge check they stay within it.
class Graph {
 public:
  Graph() : vertex_props_(PropTargetKind::kVertex), edge_props_(PropTargetKind::kEdge) {}

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  // Moves happen only while quiesced (dataset construction hands the
  // graph to a Database); the atomic counters block the defaults.
  Graph(Graph&& other) noexcept
      : catalog_(std::move(other.catalog_)),
        vertex_labels_(std::move(other.vertex_labels_)),
        edge_srcs_(std::move(other.edge_srcs_)),
        edge_dsts_(std::move(other.edge_dsts_)),
        edge_labels_(std::move(other.edge_labels_)),
        vertex_props_(std::move(other.vertex_props_)),
        edge_props_(std::move(other.edge_props_)) {
    ingest_reserved_ = other.ingest_reserved_;
    ingest_max_vertices_ = other.ingest_max_vertices_;
    ingest_max_edges_ = other.ingest_max_edges_;
    published_vertices_.store(other.published_vertices_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    published_edges_.store(other.published_edges_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    other.published_vertices_.store(0, std::memory_order_relaxed);
    other.published_edges_.store(0, std::memory_order_relaxed);
  }
  Graph& operator=(Graph&& other) noexcept {
    catalog_ = std::move(other.catalog_);
    vertex_labels_ = std::move(other.vertex_labels_);
    edge_srcs_ = std::move(other.edge_srcs_);
    edge_dsts_ = std::move(other.edge_dsts_);
    edge_labels_ = std::move(other.edge_labels_);
    vertex_props_ = std::move(other.vertex_props_);
    edge_props_ = std::move(other.edge_props_);
    ingest_reserved_ = other.ingest_reserved_;
    ingest_max_vertices_ = other.ingest_max_vertices_;
    ingest_max_edges_ = other.ingest_max_edges_;
    published_vertices_.store(other.published_vertices_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    published_edges_.store(other.published_edges_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    other.published_vertices_.store(0, std::memory_order_relaxed);
    other.published_edges_.store(0, std::memory_order_relaxed);
    return *this;
  }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // During a concurrent ingest phase (ReserveForIngest active), inserts
  // beyond the reserved capacity return kInvalidVertex / kInvalidEdge —
  // the graph is unchanged and the caller must not report the edge to
  // the maintainer. Outside a phase, storage grows freely.
  vertex_id_t AddVertex(label_t label);
  edge_id_t AddEdge(vertex_id_t src, vertex_id_t dst, label_t label);

  uint64_t num_vertices() const { return published_vertices_.load(std::memory_order_acquire); }
  uint64_t num_edges() const { return published_edges_.load(std::memory_order_acquire); }

  // Pre-allocates vertex/edge storage (including every property column)
  // so a concurrent ingest phase appends without reallocating under
  // lock-free readers. Must be called while quiesced. The max counts
  // become hard insert caps until EndIngestReservation.
  void ReserveForIngest(uint64_t max_vertices, uint64_t max_edges);
  // Lifts the insert caps once the phase quiesced (reallocation is safe
  // again with no readers in flight).
  void EndIngestReservation();

  label_t vertex_label(vertex_id_t v) const { return vertex_labels_[v]; }
  label_t edge_label(edge_id_t e) const { return edge_labels_[e]; }

  // Relabeling is used by the dataset generators (G_{i,j} methodology);
  // indexes built before a relabel must be rebuilt.
  void set_vertex_label(vertex_id_t v, label_t label) { vertex_labels_[v] = label; }
  void set_edge_label(edge_id_t e, label_t label) { edge_labels_[e] = label; }

  vertex_id_t edge_src(edge_id_t e) const { return edge_srcs_[e]; }
  vertex_id_t edge_dst(edge_id_t e) const { return edge_dsts_[e]; }

  // Endpoint of `e` on the far side when traversing in direction `dir`
  // from the near side, i.e. dst for FW and src for BW.
  vertex_id_t edge_endpoint(edge_id_t e, Direction dir) const {
    return dir == Direction::kFwd ? edge_dsts_[e] : edge_srcs_[e];
  }

  PropertyStore& vertex_props() { return vertex_props_; }
  const PropertyStore& vertex_props() const { return vertex_props_; }
  PropertyStore& edge_props() { return edge_props_; }
  const PropertyStore& edge_props() const { return edge_props_; }

  // Convenience: registers property metadata in the catalog and creates
  // the backing column.
  prop_key_t AddVertexProperty(const std::string& name, ValueType type, uint32_t domain_size = 0);
  prop_key_t AddEdgeProperty(const std::string& name, ValueType type, uint32_t domain_size = 0);

  double average_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_vertices());
  }

  size_t MemoryBytes() const;

 private:
  Catalog catalog_;
  std::atomic<uint64_t> published_vertices_{0};
  std::atomic<uint64_t> published_edges_{0};
  bool ingest_reserved_ = false;
  uint64_t ingest_max_vertices_ = 0;  // hard insert caps while reserved
  uint64_t ingest_max_edges_ = 0;
  std::vector<label_t> vertex_labels_;
  std::vector<vertex_id_t> edge_srcs_;
  std::vector<vertex_id_t> edge_dsts_;
  std::vector<label_t> edge_labels_;
  PropertyStore vertex_props_;
  PropertyStore edge_props_;
};

}  // namespace aplus

#endif  // APLUS_STORAGE_GRAPH_H_
