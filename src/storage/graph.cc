#include "storage/graph.h"

#include "util/fault.h"
#include "util/logging.h"

namespace aplus {

vertex_id_t Graph::AddVertex(label_t label) {
  vertex_id_t id = static_cast<vertex_id_t>(vertex_labels_.size());
  if (ingest_reserved_ && vertex_labels_.size() >= ingest_max_vertices_) {
    // Reallocating while lock-free readers walk the arrays would be a
    // use-after-free; overruns surface as a typed error instead.
    return kInvalidVertex;
  }
  vertex_labels_.push_back(label);
  vertex_props_.Resize(vertex_labels_.size());
  // Publish only once the label and property slots are in place.
  published_vertices_.store(vertex_labels_.size(), std::memory_order_release);
  return id;
}

edge_id_t Graph::AddEdge(vertex_id_t src, vertex_id_t dst, label_t label) {
  APLUS_DCHECK(src < num_vertices()) << "unknown source vertex";
  APLUS_DCHECK(dst < num_vertices()) << "unknown destination vertex";
  edge_id_t id = edge_srcs_.size();
  if (ingest_reserved_ &&
      (edge_srcs_.size() >= ingest_max_edges_ ||
       fault::ShouldFail(fault::kIngestAddEdge))) {
    return kInvalidEdge;
  }
  edge_srcs_.push_back(src);
  edge_dsts_.push_back(dst);
  edge_labels_.push_back(label);
  edge_props_.Resize(edge_srcs_.size());
  // Publish only once endpoints, label and property slots are in place.
  published_edges_.store(edge_srcs_.size(), std::memory_order_release);
  return id;
}

void Graph::ReserveForIngest(uint64_t max_vertices, uint64_t max_edges) {
  APLUS_CHECK_GE(max_vertices, num_vertices());
  APLUS_CHECK_GE(max_edges, num_edges());
  vertex_labels_.reserve(max_vertices);
  edge_srcs_.reserve(max_edges);
  edge_dsts_.reserve(max_edges);
  edge_labels_.reserve(max_edges);
  vertex_props_.Reserve(max_vertices);
  edge_props_.Reserve(max_edges);
  ingest_reserved_ = true;
  ingest_max_vertices_ = max_vertices;
  ingest_max_edges_ = max_edges;
}

void Graph::EndIngestReservation() { ingest_reserved_ = false; }

prop_key_t Graph::AddVertexProperty(const std::string& name, ValueType type,
                                    uint32_t domain_size) {
  prop_key_t key = catalog_.AddProperty(name, PropTargetKind::kVertex, type, domain_size);
  vertex_props_.AddColumn(catalog_, key);
  return key;
}

prop_key_t Graph::AddEdgeProperty(const std::string& name, ValueType type, uint32_t domain_size) {
  prop_key_t key = catalog_.AddProperty(name, PropTargetKind::kEdge, type, domain_size);
  edge_props_.AddColumn(catalog_, key);
  return key;
}

size_t Graph::MemoryBytes() const {
  return vertex_labels_.capacity() * sizeof(label_t) +
         edge_srcs_.capacity() * sizeof(vertex_id_t) +
         edge_dsts_.capacity() * sizeof(vertex_id_t) +
         edge_labels_.capacity() * sizeof(label_t) + vertex_props_.MemoryBytes() +
         edge_props_.MemoryBytes();
}

}  // namespace aplus
