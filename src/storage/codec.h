#ifndef APLUS_STORAGE_CODEC_H_
#define APLUS_STORAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/types.h"

namespace aplus {
namespace codec {

// Delta/varint codec for sealed adjacency lists (the cold-list
// representation of the segment tier, cf. ROADMAP "beyond-RAM scale").
//
// A packed stream encodes the (nbr, eid) entry sequence of one index
// page, little-endian and byte-aligned:
//
//   u32 num_entries
//   u32 num_blocks                   == ceil(num_entries / kBlockEntries)
//   u32 skip[num_blocks]             byte offset of block b from stream start
//   ...varint blocks...
//
// Block b covers entries [b*kBlockEntries, min(n, (b+1)*kBlockEntries)).
// Its first entry stores `nbr` and `eid` as plain LEB128 varints;
// subsequent entries store zigzag varints of the deltas against the
// previous entry. Zigzag (not plain delta) because only *buckets* are
// sorted by neighbour ID — across bucket boundaries, and under
// property-sort configurations, deltas go negative.
//
// The skip table is what keeps point probes cheap: entry i is reached by
// jumping to skip[i / kBlockEntries] and decoding at most
// kBlockEntries - 1 predecessors. Batch decodes walk blocks linearly.
inline constexpr uint32_t kBlockEntries = 32;
inline constexpr size_t kHeaderBytes = 2 * sizeof(uint32_t);

// Appends the packed stream of `n` entries to `*out` and returns the
// number of bytes appended. n == 0 writes the 8-byte empty header.
size_t PackAdjacency(const vertex_id_t* nbrs, const edge_id_t* eids, uint32_t n,
                     std::vector<uint8_t>* out);

// Entry count declared by a stream header (caller guarantees >= 8
// readable bytes).
inline uint32_t PackedNumEntries(const uint8_t* stream) {
  uint32_t n;
  __builtin_memcpy(&n, stream, sizeof(n));
  return n;
}

// Reference scalar decoder: decodes entries [begin, begin + count) into
// out_nbrs / out_eids (either may be null to skip that side). The stream
// must be valid (see ValidatePacked) and begin + count <= num_entries.
void DecodeRange(const uint8_t* stream, uint32_t begin, uint32_t count, vertex_id_t* out_nbrs,
                 edge_id_t* out_eids);

// Point decode of one entry (block jump + partial block decode).
vertex_id_t DecodeNbrAt(const uint8_t* stream, uint32_t i);
edge_id_t DecodeEidAt(const uint8_t* stream, uint32_t i);

// Structural validation against `avail` readable bytes: header in
// bounds, block count consistent with the entry count, every skip entry
// in bounds and monotonically increasing, and every varint of every
// block terminating inside the stream. Returns the total stream size in
// bytes through *stream_bytes (optional) on success; false on any
// violation (never reads past stream + avail).
bool ValidatePacked(const uint8_t* stream, size_t avail, size_t* stream_bytes = nullptr);

// One-block decode cache for repeated point access into the same stream
// (sequential enumeration, galloping probes). Owned by the probing
// scratch — one per plan list per worker replica — so use is
// single-threaded by construction.
struct PackedCursor {
  const uint8_t* stream = nullptr;
  uint32_t block = ~0u;
  uint32_t block_len = 0;
  vertex_id_t nbrs[kBlockEntries];
  edge_id_t eids[kBlockEntries];

  void LoadBlock(const uint8_t* s, uint32_t b);

  vertex_id_t NbrAt(const uint8_t* s, uint32_t i) {
    uint32_t b = i / kBlockEntries;
    if (stream != s || block != b) LoadBlock(s, b);
    return nbrs[i % kBlockEntries];
  }
  edge_id_t EidAt(const uint8_t* s, uint32_t i) {
    uint32_t b = i / kBlockEntries;
    if (stream != s || block != b) LoadBlock(s, b);
    return eids[i % kBlockEntries];
  }
};

}  // namespace codec
}  // namespace aplus

#endif  // APLUS_STORAGE_CODEC_H_
