#ifndef APLUS_STORAGE_CATALOG_H_
#define APLUS_STORAGE_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/types.h"
#include "storage/value.h"

namespace aplus {

// Whether a property key belongs to vertices or edges.
enum class PropTargetKind : uint8_t { kVertex = 0, kEdge = 1 };

inline constexpr category_t kInvalidCategory = 0xffffffffu;

// Metadata for a registered property key.
struct PropertyMeta {
  std::string name;
  ValueType type = ValueType::kNull;
  PropTargetKind target = PropTargetKind::kVertex;
  // For kCategory properties: number of distinct non-null categories. The
  // partitioning levels of an A+ index have fan-out domain_size + 1 (one
  // extra slot for nulls, Section III-A1).
  uint32_t domain_size = 0;
  // Optional human-readable names for category codes (e.g. currency "USD"
  // -> 0). Used by the DDL parser to resolve identifier constants.
  std::vector<std::string> category_names;
};

// Name <-> id dictionaries for vertex labels, edge labels, and property
// keys. Every structural name in the system resolves through the catalog
// exactly once, after which all hot paths operate on dense integer ids.
class Catalog {
 public:
  Catalog() = default;

  // Labels. Adding an existing name returns the existing id.
  label_t AddVertexLabel(const std::string& name);
  label_t AddEdgeLabel(const std::string& name);
  label_t FindVertexLabel(const std::string& name) const;  // kInvalidLabel if absent
  label_t FindEdgeLabel(const std::string& name) const;
  const std::string& VertexLabelName(label_t label) const;
  const std::string& EdgeLabelName(label_t label) const;
  uint32_t num_vertex_labels() const { return static_cast<uint32_t>(vertex_labels_.size()); }
  uint32_t num_edge_labels() const { return static_cast<uint32_t>(edge_labels_.size()); }

  // Properties. `domain_size` is required (> 0) iff type == kCategory.
  prop_key_t AddProperty(const std::string& name, PropTargetKind target, ValueType type,
                         uint32_t domain_size = 0);
  prop_key_t FindProperty(const std::string& name, PropTargetKind target) const;
  const PropertyMeta& property(prop_key_t key) const;
  uint32_t num_properties() const { return static_cast<uint32_t>(props_.size()); }

  // Names the next unnamed category code of a kCategory property (codes
  // are assigned in registration order and must stay within the domain).
  category_t RegisterCategoryValue(prop_key_t key, const std::string& value_name);
  // Returns kInvalidCategory when the name is unknown.
  category_t FindCategoryValue(prop_key_t key, const std::string& value_name) const;

 private:
  std::vector<std::string> vertex_labels_;
  std::vector<std::string> edge_labels_;
  std::unordered_map<std::string, label_t> vertex_label_ids_;
  std::unordered_map<std::string, label_t> edge_label_ids_;
  std::vector<PropertyMeta> props_;
  std::unordered_map<std::string, prop_key_t> vertex_prop_ids_;
  std::unordered_map<std::string, prop_key_t> edge_prop_ids_;
};

}  // namespace aplus

#endif  // APLUS_STORAGE_CATALOG_H_
