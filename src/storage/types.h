#ifndef APLUS_STORAGE_TYPES_H_
#define APLUS_STORAGE_TYPES_H_

#include <cstdint>
#include <limits>

namespace aplus {

// Identifier widths follow Section IV-B of the paper: neighbour vertex IDs
// are stored as 4-byte integers and edge IDs as 8-byte longs in the ID
// lists of the primary A+ index.
using vertex_id_t = uint32_t;
using edge_id_t = uint64_t;
using label_t = uint16_t;
using prop_key_t = uint16_t;

// Index of a categorical value within a property's domain. The domain is a
// small set of integers / enums (Section III-A1); nulls map to the last
// partition slot.
using category_t = uint32_t;

inline constexpr vertex_id_t kInvalidVertex = std::numeric_limits<vertex_id_t>::max();
inline constexpr edge_id_t kInvalidEdge = std::numeric_limits<edge_id_t>::max();
inline constexpr label_t kInvalidLabel = std::numeric_limits<label_t>::max();
inline constexpr prop_key_t kInvalidPropKey = std::numeric_limits<prop_key_t>::max();

// Adjacency direction of an index: FW partitions edges by source vertex,
// BW by destination vertex (Section III-A).
enum class Direction : uint8_t { kFwd = 0, kBwd = 1 };

inline Direction Reverse(Direction d) {
  return d == Direction::kFwd ? Direction::kBwd : Direction::kFwd;
}

inline const char* ToString(Direction d) { return d == Direction::kFwd ? "FW" : "BW"; }

// Number of vertices (or edges, for edge-partitioned indexes) per list
// page / CSR group (Section IV-B: "a CSR for groups of 64 vertices").
inline constexpr uint32_t kGroupSize = 64;

}  // namespace aplus

#endif  // APLUS_STORAGE_TYPES_H_
