#include "storage/property_store.h"

#include <memory>

#include "util/logging.h"

namespace aplus {

PropertyColumn::PropertyColumn(prop_key_t key, ValueType type, uint32_t domain_size)
    : key_(key), type_(type), domain_size_(domain_size) {
  APLUS_CHECK(type != ValueType::kNull);
  if (type == ValueType::kCategory) {
    APLUS_CHECK_GT(domain_size, 0u);
  }
}

void PropertyColumn::Resize(size_t n) {
  nulls_.resize(n, 1);
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
    case ValueType::kCategory:
      ints_.resize(n, 0);
      break;
    case ValueType::kDouble:
      doubles_.resize(n, 0.0);
      break;
    case ValueType::kString:
      codes_.resize(n, 0);
      break;
    case ValueType::kNull:
      break;
  }
  // Publish the new length only after the payload vectors hold it, so a
  // racing reader that passes the size() bound never reads off the end.
  published_size_.store(n, std::memory_order_release);
}

void PropertyColumn::Reserve(size_t n) {
  nulls_.reserve(n);
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
    case ValueType::kCategory:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      codes_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
}

void PropertyColumn::SetInt64(uint64_t id, int64_t v) {
  APLUS_DCHECK(type_ == ValueType::kInt64);
  ints_[id] = v;
  nulls_[id] = 0;
}

void PropertyColumn::SetDouble(uint64_t id, double v) {
  APLUS_DCHECK(type_ == ValueType::kDouble);
  doubles_[id] = v;
  nulls_[id] = 0;
}

void PropertyColumn::SetBool(uint64_t id, bool v) {
  APLUS_DCHECK(type_ == ValueType::kBool);
  ints_[id] = v ? 1 : 0;
  nulls_[id] = 0;
}

void PropertyColumn::SetString(uint64_t id, const std::string& v) {
  APLUS_DCHECK(type_ == ValueType::kString);
  auto it = dict_ids_.find(v);
  uint32_t code;
  if (it != dict_ids_.end()) {
    code = it->second;
  } else {
    code = static_cast<uint32_t>(dict_.size());
    dict_.push_back(v);
    dict_ids_.emplace(v, code);
  }
  codes_[id] = code;
  nulls_[id] = 0;
}

void PropertyColumn::SetCategory(uint64_t id, category_t v) {
  APLUS_DCHECK(type_ == ValueType::kCategory);
  APLUS_DCHECK(v < domain_size_) << "category out of domain";
  ints_[id] = v;
  nulls_[id] = 0;
}

void PropertyColumn::SetNull(uint64_t id) { nulls_[id] = 1; }

void PropertyColumn::Set(uint64_t id, const Value& v) {
  if (v.is_null()) {
    SetNull(id);
    return;
  }
  switch (type_) {
    case ValueType::kInt64:
      SetInt64(id, v.AsInt64());
      break;
    case ValueType::kDouble:
      SetDouble(id, v.AsDouble());
      break;
    case ValueType::kBool:
      SetBool(id, v.AsBool());
      break;
    case ValueType::kString:
      SetString(id, v.AsString());
      break;
    case ValueType::kCategory:
      SetCategory(id, static_cast<category_t>(v.AsInt64()));
      break;
    case ValueType::kNull:
      APLUS_CHECK(false);
  }
}

Value PropertyColumn::Get(uint64_t id) const {
  if (id >= nulls_.size() || nulls_[id]) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int64(ints_[id]);
    case ValueType::kDouble:
      return Value::Double(doubles_[id]);
    case ValueType::kBool:
      return Value::Bool(ints_[id] != 0);
    case ValueType::kString:
      return Value::String(dict_[codes_[id]]);
    case ValueType::kCategory:
      return Value::Category(ints_[id]);
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

size_t PropertyColumn::MemoryBytes() const {
  size_t bytes = nulls_.capacity() + ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) + codes_.capacity() * sizeof(uint32_t);
  for (const std::string& s : dict_) bytes += s.size();
  return bytes;
}

PropertyColumn* PropertyStore::AddColumn(const Catalog& catalog, prop_key_t key) {
  const PropertyMeta& meta = catalog.property(key);
  APLUS_CHECK(meta.target == target_) << "property " << meta.name << " targets the other kind";
  if (key >= columns_.size()) columns_.resize(key + 1);
  if (columns_[key] == nullptr) {
    columns_[key] = std::make_unique<PropertyColumn>(key, meta.type, meta.domain_size);
    columns_[key]->Resize(size());
  }
  return columns_[key].get();
}

const PropertyColumn* PropertyStore::column(prop_key_t key) const {
  if (key >= columns_.size()) return nullptr;
  return columns_[key].get();
}

PropertyColumn* PropertyStore::mutable_column(prop_key_t key) {
  if (key >= columns_.size()) return nullptr;
  return columns_[key].get();
}

void PropertyStore::Resize(size_t n) {
  for (auto& col : columns_) {
    if (col != nullptr) col->Resize(n);
  }
  size_.store(n, std::memory_order_release);
}

void PropertyStore::Reserve(size_t n) {
  for (auto& col : columns_) {
    if (col != nullptr) col->Reserve(n);
  }
}

bool PropertyStore::IsNull(prop_key_t key, uint64_t id) const {
  const PropertyColumn* col = column(key);
  return col == nullptr || id >= col->size() || col->IsNull(id);
}

Value PropertyStore::Get(prop_key_t key, uint64_t id) const {
  const PropertyColumn* col = column(key);
  if (col == nullptr) return Value::Null();
  return col->Get(id);
}

size_t PropertyStore::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) {
    if (col != nullptr) bytes += col->MemoryBytes();
  }
  return bytes;
}

}  // namespace aplus
