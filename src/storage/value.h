#ifndef APLUS_STORAGE_VALUE_H_
#define APLUS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>

namespace aplus {

// Types a vertex/edge property column can hold. kCategory is an integer
// restricted to a small domain [0, domain_size) and is the only type the
// nested partitioning levels of an A+ index accept (Section III-A1).
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
  kCategory = 5,
};

const char* ToString(ValueType type);

// A small tagged scalar used at API boundaries (predicate constants,
// property reads in tests/examples). Hot paths read typed columns directly
// and never materialize Values.
class Value {
 public:
  Value() : type_(ValueType::kNull), int_(0) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt64;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value Bool(bool v) {
    Value out;
    out.type_ = ValueType::kBool;
    out.int_ = v ? 1 : 0;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }
  static Value Category(int64_t v) {
    Value out;
    out.type_ = ValueType::kCategory;
    out.int_ = v;
    return out;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t AsInt64() const;
  double AsDouble() const;
  bool AsBool() const;
  const std::string& AsString() const;

  // Three-way comparison: negative / zero / positive. Nulls order last
  // (Section III-A2: "edges with null values on the sorting property are
  // ordered last"). Numeric types compare cross-type via double widening.
  static int Compare(const Value& a, const Value& b);

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return Compare(a, b) == 0; }

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace aplus

#endif  // APLUS_STORAGE_VALUE_H_
