#include "storage/catalog.h"

#include "util/logging.h"

namespace aplus {

label_t Catalog::AddVertexLabel(const std::string& name) {
  auto it = vertex_label_ids_.find(name);
  if (it != vertex_label_ids_.end()) return it->second;
  label_t id = static_cast<label_t>(vertex_labels_.size());
  vertex_labels_.push_back(name);
  vertex_label_ids_.emplace(name, id);
  return id;
}

label_t Catalog::AddEdgeLabel(const std::string& name) {
  auto it = edge_label_ids_.find(name);
  if (it != edge_label_ids_.end()) return it->second;
  label_t id = static_cast<label_t>(edge_labels_.size());
  edge_labels_.push_back(name);
  edge_label_ids_.emplace(name, id);
  return id;
}

label_t Catalog::FindVertexLabel(const std::string& name) const {
  auto it = vertex_label_ids_.find(name);
  return it == vertex_label_ids_.end() ? kInvalidLabel : it->second;
}

label_t Catalog::FindEdgeLabel(const std::string& name) const {
  auto it = edge_label_ids_.find(name);
  return it == edge_label_ids_.end() ? kInvalidLabel : it->second;
}

const std::string& Catalog::VertexLabelName(label_t label) const {
  APLUS_CHECK_LT(label, vertex_labels_.size());
  return vertex_labels_[label];
}

const std::string& Catalog::EdgeLabelName(label_t label) const {
  APLUS_CHECK_LT(label, edge_labels_.size());
  return edge_labels_[label];
}

prop_key_t Catalog::AddProperty(const std::string& name, PropTargetKind target, ValueType type,
                                uint32_t domain_size) {
  auto& ids = target == PropTargetKind::kVertex ? vertex_prop_ids_ : edge_prop_ids_;
  auto it = ids.find(name);
  if (it != ids.end()) {
    const PropertyMeta& meta = props_[it->second];
    APLUS_CHECK(meta.type == type) << "property " << name << " re-registered with another type";
    return it->second;
  }
  if (type == ValueType::kCategory) {
    APLUS_CHECK_GT(domain_size, 0u) << "categorical property " << name << " needs a domain";
  }
  prop_key_t key = static_cast<prop_key_t>(props_.size());
  props_.push_back(PropertyMeta{name, type, target, domain_size, {}});
  ids.emplace(name, key);
  return key;
}

prop_key_t Catalog::FindProperty(const std::string& name, PropTargetKind target) const {
  const auto& ids = target == PropTargetKind::kVertex ? vertex_prop_ids_ : edge_prop_ids_;
  auto it = ids.find(name);
  return it == ids.end() ? kInvalidPropKey : it->second;
}

const PropertyMeta& Catalog::property(prop_key_t key) const {
  APLUS_CHECK_LT(key, props_.size());
  return props_[key];
}

category_t Catalog::RegisterCategoryValue(prop_key_t key, const std::string& value_name) {
  APLUS_CHECK_LT(key, props_.size());
  PropertyMeta& meta = props_[key];
  APLUS_CHECK(meta.type == ValueType::kCategory)
      << "property " << meta.name << " is not categorical";
  for (size_t i = 0; i < meta.category_names.size(); ++i) {
    if (meta.category_names[i] == value_name) return static_cast<category_t>(i);
  }
  APLUS_CHECK_LT(meta.category_names.size(), meta.domain_size)
      << "too many named categories for " << meta.name;
  meta.category_names.push_back(value_name);
  return static_cast<category_t>(meta.category_names.size() - 1);
}

category_t Catalog::FindCategoryValue(prop_key_t key, const std::string& value_name) const {
  APLUS_CHECK_LT(key, props_.size());
  const PropertyMeta& meta = props_[key];
  for (size_t i = 0; i < meta.category_names.size(); ++i) {
    if (meta.category_names[i] == value_name) return static_cast<category_t>(i);
  }
  return kInvalidCategory;
}

}  // namespace aplus
