#include "storage/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace aplus {

namespace {

constexpr uint32_t kMagic = 0x41504c53;  // "APLS"
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::ostream* out) : out_(out) {}

  void U32(uint32_t v) { out_->write(reinterpret_cast<const char*>(&v), sizeof(v)); }
  void U64(uint64_t v) { out_->write(reinterpret_cast<const char*>(&v), sizeof(v)); }
  void I64(int64_t v) { out_->write(reinterpret_cast<const char*>(&v), sizeof(v)); }
  void F64(double v) { out_->write(reinterpret_cast<const char*>(&v), sizeof(v)); }
  void U8(uint8_t v) { out_->write(reinterpret_cast<const char*>(&v), sizeof(v)); }

  void Str(const std::string& s) {
    U64(s.size());
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    out_->write(reinterpret_cast<const char*>(v.data()),
                static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  bool ok() const { return out_->good(); }

 private:
  std::ostream* out_;
};

class Reader {
 public:
  explicit Reader(std::istream* in) : in_(in) {}

  uint32_t U32() { return Read<uint32_t>(); }
  uint64_t U64() { return Read<uint64_t>(); }
  int64_t I64() { return Read<int64_t>(); }
  double F64() { return Read<double>(); }
  uint8_t U8() { return Read<uint8_t>(); }

  std::string Str() {
    uint64_t n = U64();
    if (!Guard(n)) return "";
    std::string s(n, '\0');
    in_->read(s.data(), static_cast<std::streamsize>(n));
    return s;
  }

  template <typename T>
  std::vector<T> Vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = U64();
    if (!Guard(n * sizeof(T))) return {};
    std::vector<T> v(n);
    in_->read(reinterpret_cast<char*>(v.data()),
              static_cast<std::streamsize>(n * sizeof(T)));
    return v;
  }

  bool ok() const { return !failed_ && in_->good(); }
  void fail() { failed_ = true; }

 private:
  template <typename T>
  T Read() {
    T v{};
    in_->read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  }

  // Basic sanity bound against corrupted lengths (1 GiB).
  bool Guard(uint64_t bytes) {
    if (bytes > (1ULL << 30)) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::istream* in_;
  bool failed_ = false;
};

// Validates a serialized value-type tag before the enum cast. A
// corrupted tag would otherwise flow into switch statements as an
// out-of-range enum.
bool ValidTypeTag(uint8_t tag) { return tag <= static_cast<uint8_t>(ValueType::kCategory); }

void WriteColumn(Writer* w, const PropertyColumn& col, uint64_t n) {
  w->U8(static_cast<uint8_t>(col.type()));
  w->U32(col.domain_size());
  // Null mask + typed payload, element-wise via the generic accessor
  // (cold path; snapshots are not performance critical).
  for (uint64_t id = 0; id < n; ++id) {
    bool null = col.IsNull(id);
    w->U8(null ? 1 : 0);
    if (null) continue;
    switch (col.type()) {
      case ValueType::kInt64:
        w->I64(col.GetInt64(id));
        break;
      case ValueType::kBool:
        w->U8(col.GetBool(id) ? 1 : 0);
        break;
      case ValueType::kCategory:
        w->U32(col.GetCategoryOrNullSlot(id));
        break;
      case ValueType::kDouble:
        w->F64(col.GetDouble(id));
        break;
      case ValueType::kString:
        w->Str(col.GetString(id));
        break;
      case ValueType::kNull:
        break;
    }
  }
}

bool ReadColumn(Reader* r, PropertyColumn* col, uint64_t n) {
  uint8_t tag = r->U8();
  if (!ValidTypeTag(tag)) return false;
  ValueType type = static_cast<ValueType>(tag);
  uint32_t domain = r->U32();
  (void)domain;  // already registered through the catalog
  if (type != col->type()) return false;
  for (uint64_t id = 0; id < n && r->ok(); ++id) {
    bool null = r->U8() != 0;
    if (null) {
      col->SetNull(id);
      continue;
    }
    switch (type) {
      case ValueType::kInt64:
        col->SetInt64(id, r->I64());
        break;
      case ValueType::kBool:
        col->SetBool(id, r->U8() != 0);
        break;
      case ValueType::kCategory: {
        // Category codes feed partitioning levels as bucket indexes;
        // reject anything outside the registered domain.
        uint32_t code = r->U32();
        if (code >= col->domain_size()) return false;
        col->SetCategory(id, code);
        break;
      }
      case ValueType::kDouble:
        col->SetDouble(id, r->F64());
        break;
      case ValueType::kString:
        col->SetString(id, r->Str());
        break;
      case ValueType::kNull:
        return false;
    }
  }
  return r->ok();
}

}  // namespace

bool SaveGraphToStream(const Graph& graph, std::ostream& out) {
  Writer w(&out);
  w.U32(kMagic);
  w.U32(kVersion);

  // Catalog.
  const Catalog& catalog = graph.catalog();
  w.U32(catalog.num_vertex_labels());
  for (label_t l = 0; l < catalog.num_vertex_labels(); ++l) w.Str(catalog.VertexLabelName(l));
  w.U32(catalog.num_edge_labels());
  for (label_t l = 0; l < catalog.num_edge_labels(); ++l) w.Str(catalog.EdgeLabelName(l));
  w.U32(catalog.num_properties());
  for (prop_key_t k = 0; k < catalog.num_properties(); ++k) {
    const PropertyMeta& meta = catalog.property(k);
    w.Str(meta.name);
    w.U8(static_cast<uint8_t>(meta.type));
    w.U8(meta.target == PropTargetKind::kVertex ? 0 : 1);
    w.U32(meta.domain_size);
    w.U64(meta.category_names.size());
    for (const std::string& name : meta.category_names) w.Str(name);
  }

  // Topology.
  uint64_t nv = graph.num_vertices();
  uint64_t ne = graph.num_edges();
  w.U64(nv);
  w.U64(ne);
  for (vertex_id_t v = 0; v < nv; ++v) w.U32(graph.vertex_label(v));
  for (edge_id_t e = 0; e < ne; ++e) {
    w.U32(graph.edge_src(e));
    w.U32(graph.edge_dst(e));
    w.U32(graph.edge_label(e));
  }

  // Property columns (presence flag per catalog property).
  for (prop_key_t k = 0; k < catalog.num_properties(); ++k) {
    const PropertyMeta& meta = catalog.property(k);
    const PropertyStore& store =
        meta.target == PropTargetKind::kVertex ? graph.vertex_props() : graph.edge_props();
    const PropertyColumn* col = store.column(k);
    w.U8(col != nullptr ? 1 : 0);
    if (col != nullptr) {
      WriteColumn(&w, *col, meta.target == PropTargetKind::kVertex ? nv : ne);
    }
  }
  return w.ok();
}

bool LoadGraphFromStream(std::istream& in, Graph* graph, const std::string& origin) {
  APLUS_CHECK_EQ(graph->num_vertices(), 0u) << "LoadGraphFromStream needs an empty graph";
  Reader r(&in);
  if (r.U32() != kMagic || !r.ok()) {
    APLUS_LOG(Error) << origin << ": bad magic";
    return false;
  }
  if (r.U32() != kVersion || !r.ok()) {
    APLUS_LOG(Error) << origin << ": unsupported snapshot version";
    return false;
  }

  Catalog& catalog = graph->catalog();
  uint32_t num_vlabels = r.U32();
  if (num_vlabels > 65000 || !r.ok()) return false;
  for (uint32_t i = 0; i < num_vlabels && r.ok(); ++i) catalog.AddVertexLabel(r.Str());
  uint32_t num_elabels = r.U32();
  if (num_elabels > 65000 || !r.ok()) return false;
  for (uint32_t i = 0; i < num_elabels && r.ok(); ++i) catalog.AddEdgeLabel(r.Str());
  uint32_t num_props = r.U32();
  if (num_props > 65000 || !r.ok()) return false;
  for (uint32_t i = 0; i < num_props && r.ok(); ++i) {
    std::string name = r.Str();
    uint8_t tag = r.U8();
    if (!ValidTypeTag(tag)) return false;
    ValueType type = static_cast<ValueType>(tag);
    PropTargetKind target = r.U8() == 0 ? PropTargetKind::kVertex : PropTargetKind::kEdge;
    uint32_t domain = r.U32();
    prop_key_t key = catalog.AddProperty(name, target, type, domain);
    uint64_t num_names = r.U64();
    if (num_names > domain) return false;
    for (uint64_t j = 0; j < num_names && r.ok(); ++j) {
      catalog.RegisterCategoryValue(key, r.Str());
    }
  }

  uint64_t nv = r.U64();
  uint64_t ne = r.U64();
  if (!r.ok() || nv > (1ULL << 32) || ne > (1ULL << 40)) return false;
  for (uint64_t v = 0; v < nv && r.ok(); ++v) {
    uint32_t label = r.U32();
    if (label >= num_vlabels) return false;
    graph->AddVertex(static_cast<label_t>(label));
  }
  for (uint64_t e = 0; e < ne && r.ok(); ++e) {
    vertex_id_t src = r.U32();
    vertex_id_t dst = r.U32();
    uint32_t label = r.U32();
    if (src >= nv || dst >= nv || label >= num_elabels) return false;
    graph->AddEdge(src, dst, static_cast<label_t>(label));
  }

  for (prop_key_t k = 0; k < catalog.num_properties() && r.ok(); ++k) {
    bool present = r.U8() != 0;
    if (!present) continue;
    const PropertyMeta& meta = catalog.property(k);
    PropertyStore& store =
        meta.target == PropTargetKind::kVertex ? graph->vertex_props() : graph->edge_props();
    PropertyColumn* col = store.AddColumn(catalog, k);
    if (!ReadColumn(&r, col, meta.target == PropTargetKind::kVertex ? nv : ne)) return false;
  }
  return r.ok();
}

bool SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    APLUS_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  return SaveGraphToStream(graph, out);
}

bool LoadGraph(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    APLUS_LOG(Error) << "cannot open " << path;
    return false;
  }
  return LoadGraphFromStream(in, graph, path);
}

}  // namespace aplus
