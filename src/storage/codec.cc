#include "storage/codec.h"

#include <cstring>

#include "util/logging.h"

namespace aplus {
namespace codec {

namespace {

// Delta encoding works on two's-complement wraparound differences so
// extreme gaps (e.g. 0 -> ~0ull) stay defined behavior: `cur - prev`
// wraps in uint64, zigzag folds the sign bit of that wrapped value, and
// the decode side adds the unfolded delta back with wraparound. The
// round trip is exact for every (prev, cur) pair.
inline uint64_t ZigZagDiff(uint64_t cur, uint64_t prev) {
  uint64_t d = cur - prev;
  return (d << 1) ^ (0 - (d >> 63));
}

// Inverse fold; returned value is added to the accumulator with uint64
// wraparound.
inline uint64_t UnZigZag(uint64_t v) { return (v >> 1) ^ (0 - (v & 1)); }

inline void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

// Unchecked read: the stream was validated at open time (ValidatePacked
// walks every varint), so hot-path decodes skip bounds tests.
inline const uint8_t* GetVarint(const uint8_t* p, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = result;
  return p;
}

// Bounds-checked read for validation: nullptr when the varint runs past
// `end` or exceeds 10 bytes (the longest legal LEB128 of a u64).
inline const uint8_t* GetVarintChecked(const uint8_t* p, const uint8_t* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (p >= end) return nullptr;
    uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

inline uint32_t SkipAt(const uint8_t* stream, uint32_t b) {
  uint32_t v;
  std::memcpy(&v, stream + kHeaderBytes + static_cast<size_t>(b) * sizeof(uint32_t), sizeof(v));
  return v;
}

}  // namespace

size_t PackAdjacency(const vertex_id_t* nbrs, const edge_id_t* eids, uint32_t n,
                     std::vector<uint8_t>* out) {
  const size_t start = out->size();
  uint32_t num_blocks = (n + kBlockEntries - 1) / kBlockEntries;
  out->resize(start + kHeaderBytes + static_cast<size_t>(num_blocks) * sizeof(uint32_t));
  std::memcpy(out->data() + start, &n, sizeof(n));
  std::memcpy(out->data() + start + sizeof(uint32_t), &num_blocks, sizeof(num_blocks));

  for (uint32_t b = 0; b < num_blocks; ++b) {
    uint32_t skip = static_cast<uint32_t>(out->size() - start);
    std::memcpy(out->data() + start + kHeaderBytes + static_cast<size_t>(b) * sizeof(uint32_t),
                &skip, sizeof(skip));
    uint32_t lo = b * kBlockEntries;
    uint32_t hi = lo + kBlockEntries < n ? lo + kBlockEntries : n;
    PutVarint(out, nbrs[lo]);
    PutVarint(out, eids[lo]);
    for (uint32_t i = lo + 1; i < hi; ++i) {
      PutVarint(out, ZigZagDiff(nbrs[i], nbrs[i - 1]));
      PutVarint(out, ZigZagDiff(eids[i], eids[i - 1]));
    }
  }
  return out->size() - start;
}

void DecodeRange(const uint8_t* stream, uint32_t begin, uint32_t count, vertex_id_t* out_nbrs,
                 edge_id_t* out_eids) {
  if (count == 0) return;
  const uint32_t n = PackedNumEntries(stream);
  APLUS_DCHECK(begin + count <= n);
  uint32_t i = begin;
  const uint32_t end = begin + count;
  while (i < end) {
    uint32_t b = i / kBlockEntries;
    uint32_t lo = b * kBlockEntries;
    uint32_t hi = lo + kBlockEntries < n ? lo + kBlockEntries : n;
    const uint8_t* p = stream + SkipAt(stream, b);
    uint64_t nbr, eid;
    p = GetVarint(p, &nbr);
    p = GetVarint(p, &eid);
    for (uint32_t j = lo; j < hi; ++j) {
      if (j > lo) {
        uint64_t dn, de;
        p = GetVarint(p, &dn);
        p = GetVarint(p, &de);
        nbr += UnZigZag(dn);
        eid += UnZigZag(de);
      }
      if (j >= i && j < end) {
        if (out_nbrs != nullptr) out_nbrs[j - begin] = static_cast<vertex_id_t>(nbr);
        if (out_eids != nullptr) out_eids[j - begin] = static_cast<edge_id_t>(eid);
      }
      if (j + 1 >= end) break;
    }
    i = hi;
  }
}

vertex_id_t DecodeNbrAt(const uint8_t* stream, uint32_t i) {
  vertex_id_t nbr;
  DecodeRange(stream, i, 1, &nbr, nullptr);
  return nbr;
}

edge_id_t DecodeEidAt(const uint8_t* stream, uint32_t i) {
  edge_id_t eid;
  DecodeRange(stream, i, 1, nullptr, &eid);
  return eid;
}

bool ValidatePacked(const uint8_t* stream, size_t avail, size_t* stream_bytes) {
  if (avail < kHeaderBytes) return false;
  const uint32_t n = PackedNumEntries(stream);
  uint32_t num_blocks;
  std::memcpy(&num_blocks, stream + sizeof(uint32_t), sizeof(num_blocks));
  if (num_blocks != (n + kBlockEntries - 1) / kBlockEntries) return false;
  const size_t table_end = kHeaderBytes + static_cast<size_t>(num_blocks) * sizeof(uint32_t);
  if (table_end > avail) return false;
  const uint8_t* const end = stream + avail;
  const uint8_t* p = stream + table_end;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    uint32_t skip = SkipAt(stream, b);
    // Blocks are laid out back to back right after the skip table.
    if (skip != static_cast<size_t>(p - stream)) return false;
    uint32_t lo = b * kBlockEntries;
    uint32_t hi = lo + kBlockEntries < n ? lo + kBlockEntries : n;
    uint64_t v;
    for (uint32_t j = lo; j < hi; ++j) {
      p = GetVarintChecked(p, end, &v);
      if (p == nullptr) return false;
      p = GetVarintChecked(p, end, &v);
      if (p == nullptr) return false;
    }
  }
  if (stream_bytes != nullptr) *stream_bytes = static_cast<size_t>(p - stream);
  return true;
}

void PackedCursor::LoadBlock(const uint8_t* s, uint32_t b) {
  const uint32_t n = PackedNumEntries(s);
  uint32_t lo = b * kBlockEntries;
  uint32_t hi = lo + kBlockEntries < n ? lo + kBlockEntries : n;
  APLUS_DCHECK(lo < n);
  DecodeRange(s, lo, hi - lo, nbrs, eids);
  stream = s;
  block = b;
  block_len = hi - lo;
}

}  // namespace codec
}  // namespace aplus
