#ifndef APLUS_STORAGE_CSV_IO_H_
#define APLUS_STORAGE_CSV_IO_H_

#include <string>
#include <vector>

#include "storage/graph.h"

namespace aplus {

// Minimal CSV import/export for edge lists, used by the examples to load
// user-supplied graphs. Format: one "src,dst[,label]" row per edge;
// vertices are created implicitly with the given default label.
struct CsvEdgeListOptions {
  std::string default_vertex_label = "V";
  std::string default_edge_label = "E";
  char delimiter = ',';
  bool has_header = false;
};

// Appends the edges in `path` into `graph`. Returns the number of edges
// loaded, or -1 on I/O failure.
int64_t LoadEdgeListCsv(const std::string& path, const CsvEdgeListOptions& options, Graph* graph);

// Writes "src,dst,label_name" rows. Returns false on I/O failure.
bool SaveEdgeListCsv(const Graph& graph, const std::string& path);

// Splits one CSV line on `delimiter` (no quoting support; the datasets
// this project generates never need it).
std::vector<std::string> SplitCsvLine(const std::string& line, char delimiter);

}  // namespace aplus

#endif  // APLUS_STORAGE_CSV_IO_H_
