#ifndef APLUS_BASELINE_LINKED_LIST_ENGINE_H_
#define APLUS_BASELINE_LINKED_LIST_ENGINE_H_

#include <cstdint>
#include <vector>

#include "query/query_graph.h"
#include "util/memory_tracker.h"
#include "storage/graph.h"

namespace aplus {

// Baseline engine with a Neo4j-style linked-record adjacency store
// (Section II): edges of a vertex are partitioned by vertex ID and edge
// label, but edges in a list are NOT stored consecutively — each edge
// record carries next-pointers for its source's out-chain and its
// destination's in-chain, so traversal hops through the edge-record
// array with poor locality. Query evaluation is binary joins only
// (EXPAND-style), the plan space the paper attributes to Neo4j in
// Table V. See DESIGN.md "Substitutions".
class LinkedListEngine {
 public:
  explicit LinkedListEngine(const Graph* graph);

  // Calls fn(nbr, edge_id, edge_label) for every edge of v in `dir` by
  // chasing the per-(vertex, label) chains.
  template <typename Fn>
  void ForEachEdge(vertex_id_t v, Direction dir, Fn fn) const {
    uint32_t num_labels = num_edge_labels_ == 0 ? 1 : num_edge_labels_;
    for (uint32_t label = 0; label < num_labels; ++label) {
      ForEachEdgeWithLabel(v, static_cast<label_t>(label), dir, fn);
    }
  }

  template <typename Fn>
  void ForEachEdgeWithLabel(vertex_id_t v, label_t label, Direction dir, Fn fn) const {
    uint32_t num_labels = num_edge_labels_ == 0 ? 1 : num_edge_labels_;
    size_t head_idx = static_cast<size_t>(v) * num_labels + label;
    int64_t cursor =
        dir == Direction::kFwd ? out_heads_[head_idx] : in_heads_[head_idx];
    while (cursor >= 0) {
      const EdgeRecord& record = records_[static_cast<size_t>(cursor)];
      if (dir == Direction::kFwd) {
        fn(record.dst, static_cast<edge_id_t>(cursor), record.label);
        cursor = record.next_out;
      } else {
        fn(record.src, static_cast<edge_id_t>(cursor), record.label);
        cursor = record.next_in;
      }
    }
  }

  // Runs `query` with binary-join backtracking. `timeout_seconds` <= 0
  // means unbounded; on deadline the search stops and *timed_out (if
  // non-null) is set. `budget` (optional) charges the matcher's
  // candidate scratch so the baseline respects APLUS_MEM_CAP; when a
  // charge fails the search stops and *exhausted (if non-null) is set.
  uint64_t CountMatches(const QueryGraph& query, double timeout_seconds = 0.0,
                        bool* timed_out = nullptr, MemoryBudget* budget = nullptr,
                        bool* exhausted = nullptr) const;

  size_t MemoryBytes() const;
  const Graph* graph() const { return graph_; }

 private:
  struct EdgeRecord {
    vertex_id_t src;
    vertex_id_t dst;
    label_t label;
    int64_t next_out;  // next edge record in src's out-chain (-1 = end)
    int64_t next_in;   // next edge record in dst's in-chain
  };

  const Graph* graph_;
  uint32_t num_edge_labels_;
  std::vector<EdgeRecord> records_;
  std::vector<int64_t> out_heads_;  // (vertex, label) -> first edge record
  std::vector<int64_t> in_heads_;
};

}  // namespace aplus

#endif  // APLUS_BASELINE_LINKED_LIST_ENGINE_H_
