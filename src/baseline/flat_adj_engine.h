#ifndef APLUS_BASELINE_FLAT_ADJ_ENGINE_H_
#define APLUS_BASELINE_FLAT_ADJ_ENGINE_H_

#include <cstdint>
#include <vector>

#include "query/query_graph.h"
#include "util/memory_tracker.h"
#include "storage/graph.h"

namespace aplus {

// Baseline engine with a TigerGraph-style pure adjacency-list design
// (Section II): per-vertex contiguous, unsorted edge arrays with constant
// time access to all edges of a vertex, and no further partitioning or
// sorting — so no intersection-based (WCOJ) plans, and label predicates
// are checked per edge. For long path queries it additionally supports
// the distinct-frontier expansion the paper conjectures TigerGraph uses
// for SQ13 ("extends each distinct intermediate node only once").
// See DESIGN.md "Substitutions".
class FlatAdjEngine {
 public:
  explicit FlatAdjEngine(const Graph* graph);

  template <typename Fn>
  void ForEachEdge(vertex_id_t v, Direction dir, Fn fn) const {
    const std::vector<Entry>& list = dir == Direction::kFwd ? out_[v] : in_[v];
    for (const Entry& entry : list) {
      fn(entry.nbr, entry.eid, entry.label);
    }
  }

  // Runs `query` with binary-join backtracking. `timeout_seconds` <= 0
  // means unbounded; on deadline the search stops and *timed_out (if
  // non-null) is set. `budget` (optional) charges the matcher's
  // candidate scratch so the baseline respects APLUS_MEM_CAP; when a
  // charge fails the search stops and *exhausted (if non-null) is set.
  uint64_t CountMatches(const QueryGraph& query, double timeout_seconds = 0.0,
                        bool* timed_out = nullptr, MemoryBudget* budget = nullptr,
                        bool* exhausted = nullptr) const;

  // Distinct-frontier path expansion: for a query that is a simple
  // directed path with per-edge labels, counts the number of distinct
  // (start, end) vertex pairs connected by a matching path, extending
  // each distinct intermediate vertex once per level. Matches the
  // behaviour the paper attributes to TigerGraph on SQ13 (Section V-E):
  // fast, but reporting reachable pairs rather than path embeddings.
  uint64_t CountDistinctPathPairs(const std::vector<label_t>& edge_labels,
                                  const std::vector<label_t>& vertex_labels) const;

  size_t MemoryBytes() const;
  const Graph* graph() const { return graph_; }

 private:
  struct Entry {
    vertex_id_t nbr;
    edge_id_t eid;
    label_t label;
  };

  const Graph* graph_;
  std::vector<std::vector<Entry>> out_;
  std::vector<std::vector<Entry>> in_;
};

}  // namespace aplus

#endif  // APLUS_BASELINE_FLAT_ADJ_ENGINE_H_
