#include "baseline/flat_adj_engine.h"

#include "baseline/matcher.h"

namespace aplus {

FlatAdjEngine::FlatAdjEngine(const Graph* graph) : graph_(graph) {
  out_.resize(graph->num_vertices());
  in_.resize(graph->num_vertices());
  for (edge_id_t e = 0; e < graph->num_edges(); ++e) {
    vertex_id_t src = graph->edge_src(e);
    vertex_id_t dst = graph->edge_dst(e);
    label_t label = graph->edge_label(e);
    out_[src].push_back(Entry{dst, e, label});
    in_[dst].push_back(Entry{src, e, label});
  }
}

uint64_t FlatAdjEngine::CountMatches(const QueryGraph& query, double timeout_seconds,
                             bool* timed_out, MemoryBudget* budget,
                             bool* exhausted) const {
  BaselineMatcher<FlatAdjEngine> matcher(this, graph_, &query, timeout_seconds);
  matcher.set_budget(budget);
  uint64_t count = matcher.Count();
  if (timed_out != nullptr) *timed_out = matcher.timed_out();
  if (exhausted != nullptr) *exhausted = matcher.exhausted();
  return count;
}

uint64_t FlatAdjEngine::CountDistinctPathPairs(const std::vector<label_t>& edge_labels,
                                               const std::vector<label_t>& vertex_labels) const {
  // vertex_labels has edge_labels.size() + 1 entries (kInvalidLabel =
  // unconstrained). Per start vertex, expand a distinct frontier one hop
  // per level and count reachable end vertices.
  uint64_t pairs = 0;
  uint64_t nv = graph_->num_vertices();
  std::vector<uint64_t> seen(nv, 0);
  uint64_t stamp = 0;
  std::vector<vertex_id_t> frontier;
  std::vector<vertex_id_t> next;
  for (vertex_id_t start = 0; start < nv; ++start) {
    if (vertex_labels.front() != kInvalidLabel &&
        graph_->vertex_label(start) != vertex_labels.front()) {
      continue;
    }
    frontier.assign(1, start);
    for (size_t hop = 0; hop < edge_labels.size() && !frontier.empty(); ++hop) {
      ++stamp;
      next.clear();
      label_t elabel = edge_labels[hop];
      label_t vlabel = vertex_labels[hop + 1];
      for (vertex_id_t v : frontier) {
        for (const Entry& entry : out_[v]) {
          if (elabel != kInvalidLabel && entry.label != elabel) continue;
          if (vlabel != kInvalidLabel && graph_->vertex_label(entry.nbr) != vlabel) continue;
          if (seen[entry.nbr] == stamp) continue;  // distinct-frontier dedup
          seen[entry.nbr] = stamp;
          next.push_back(entry.nbr);
        }
      }
      frontier.swap(next);
    }
    pairs += frontier.size();
  }
  return pairs;
}

size_t FlatAdjEngine::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& list : out_) bytes += list.capacity() * sizeof(Entry);
  for (const auto& list : in_) bytes += list.capacity() * sizeof(Entry);
  return bytes;
}

}  // namespace aplus
