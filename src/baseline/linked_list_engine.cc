#include "baseline/linked_list_engine.h"

#include "baseline/matcher.h"

namespace aplus {

LinkedListEngine::LinkedListEngine(const Graph* graph)
    : graph_(graph), num_edge_labels_(graph->catalog().num_edge_labels()) {
  uint32_t num_labels = num_edge_labels_ == 0 ? 1 : num_edge_labels_;
  size_t heads = graph->num_vertices() * num_labels;
  out_heads_.assign(heads, -1);
  in_heads_.assign(heads, -1);
  records_.resize(graph->num_edges());
  // Insert edges in reverse so chains iterate in insertion order.
  for (edge_id_t e = graph->num_edges(); e-- > 0;) {
    EdgeRecord& record = records_[e];
    record.src = graph->edge_src(e);
    record.dst = graph->edge_dst(e);
    record.label = graph->edge_label(e);
    size_t out_idx = static_cast<size_t>(record.src) * num_labels + record.label;
    size_t in_idx = static_cast<size_t>(record.dst) * num_labels + record.label;
    record.next_out = out_heads_[out_idx];
    record.next_in = in_heads_[in_idx];
    out_heads_[out_idx] = static_cast<int64_t>(e);
    in_heads_[in_idx] = static_cast<int64_t>(e);
  }
}

uint64_t LinkedListEngine::CountMatches(const QueryGraph& query, double timeout_seconds,
                             bool* timed_out, MemoryBudget* budget,
                             bool* exhausted) const {
  BaselineMatcher<LinkedListEngine> matcher(this, graph_, &query, timeout_seconds);
  matcher.set_budget(budget);
  uint64_t count = matcher.Count();
  if (timed_out != nullptr) *timed_out = matcher.timed_out();
  if (exhausted != nullptr) *exhausted = matcher.exhausted();
  return count;
}

size_t LinkedListEngine::MemoryBytes() const {
  return records_.capacity() * sizeof(EdgeRecord) +
         (out_heads_.capacity() + in_heads_.capacity()) * sizeof(int64_t);
}

}  // namespace aplus
