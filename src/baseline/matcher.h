#ifndef APLUS_BASELINE_MATCHER_H_
#define APLUS_BASELINE_MATCHER_H_

#include <algorithm>
#include <functional>
#include <vector>

#include "query/query_graph.h"
#include "util/deadline.h"
#include "util/memory_tracker.h"

namespace aplus {

// Generic backtracking subgraph matcher shared by the baseline engines.
// `Engine` must provide:
//   template <typename Fn>
//   void ForEachEdge(vertex_id_t v, Direction dir, Fn fn) const;
// where fn(nbr, edge_id, edge_label) is invoked per adjacent edge.
//
// The matcher uses binary joins only (one query edge at a time, no
// intersections), which is exactly the plan space the paper ascribes to
// the fixed-index systems it compares against in Table V. Semantics match
// the A+ engine: subgraph isomorphism with directed labelled edges.
template <typename Engine>
class BaselineMatcher {
 public:
  // `timeout_seconds` <= 0 means unbounded; when the deadline passes the
  // search stops early and timed_out() reports true (the paper's "TL").
  BaselineMatcher(const Engine* engine, const Graph* graph, const QueryGraph* query,
                  double timeout_seconds = 0.0)
      : engine_(engine), graph_(graph), query_(query), timeout_seconds_(timeout_seconds) {
    BuildOrder();
  }

  uint64_t Count() {
    MatchState state;
    state.Reset(query_->num_vertices(), query_->num_edges());
    token_.Reset();
    if (timeout_seconds_ > 0.0) {
      token_.ArmDeadlineNanos(static_cast<int64_t>(timeout_seconds_ * 1e9));
    }
    steps_until_check_ = kCheckInterval;
    Recurse(0, &state);
    return state.count;
  }

  // Like Count(), invoking `fn(const MatchState&)` once per complete
  // match (every query vertex and edge bound). Serves as the row-level
  // oracle for the serving API's projection tests.
  template <typename Fn>
  uint64_t Enumerate(Fn&& fn) {
    on_match_ = std::forward<Fn>(fn);
    uint64_t count = Count();
    on_match_ = nullptr;
    return count;
  }

  bool timed_out() const { return token_.reason() == StopReason::kTimeout; }
  bool exhausted() const { return token_.reason() == StopReason::kResourceExhausted; }

  // Optional memory budget: per-level candidate scratch is charged
  // against it and released as the recursion unwinds, so the baselines
  // respect the same APLUS_MEM_CAP governance as the serving engine.
  // A failed charge stops the search with kResourceExhausted.
  void set_budget(MemoryBudget* budget) { budget_ = budget; }

 private:
  // Greedy connected order: bound vertices first, then vertices adjacent
  // to the chosen prefix (labelled ones preferred).
  void BuildOrder() {
    int n = query_->num_vertices();
    std::vector<bool> chosen(n, false);
    for (int step = 0; step < n; ++step) {
      int best = -1;
      int best_score = -1;
      for (int v = 0; v < n; ++v) {
        if (chosen[v]) continue;
        int score = 0;
        if (query_->vertex(v).bound != kInvalidVertex) score += 1000;
        if (query_->vertex(v).label != kInvalidLabel) score += 10;
        bool adjacent = step == 0;
        for (int e = 0; e < query_->num_edges(); ++e) {
          const QueryEdge& qe = query_->edge(e);
          int other = qe.from == v ? qe.to : (qe.to == v ? qe.from : -1);
          if (other >= 0 && chosen[other]) {
            adjacent = true;
            score += 100;
          }
        }
        if (!adjacent) continue;
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      if (best < 0) {  // disconnected query: take any remaining vertex
        for (int v = 0; v < n; ++v) {
          if (!chosen[v]) {
            best = v;
            break;
          }
        }
      }
      chosen[best] = true;
      order_.push_back(best);
    }
  }

  bool VertexOk(int var, vertex_id_t v, const MatchState& state) const {
    const QueryVertex& qv = query_->vertex(var);
    if (qv.bound != kInvalidVertex && qv.bound != v) return false;
    if (qv.label != kInvalidLabel && graph_->vertex_label(v) != qv.label) return false;
    if (state.VertexAlreadyBound(v)) return false;
    return true;
  }

  // Checks every query edge whose endpoints are both bound and whose edge
  // variable is still unbound: finds a matching data edge (or fails).
  // Returns predicates evaluable afterwards.
  bool CloseEdgesAndPredicates(int depth, MatchState* state) {
    // Evaluate all predicates that just became evaluable.
    for (const QueryComparison& cmp : query_->predicates()) {
      if (!ComparisonIsBound(cmp, *state)) continue;
      if (!EvalQueryComparison(*graph_, cmp, *state)) return false;
    }
    (void)depth;
    return true;
  }

  // The same cooperative token the serving engine polls (util/deadline.h):
  // cheap stop_requested() reads between coarse clock checks.
  bool CheckDeadline() {
    if (token_.stop_requested()) return true;
    if (timeout_seconds_ <= 0.0) return false;
    if (--steps_until_check_ == 0) {
      steps_until_check_ = kCheckInterval;
      return token_.PollClock();
    }
    return false;
  }

  // Charges per-level scratch against the optional budget; a failed
  // charge (over cap, process ceiling, or fault injection) stops the
  // whole search with kResourceExhausted.
  bool ChargeScratch(uint64_t bytes) {
    if (budget_ == nullptr || bytes == 0) return true;
    if (budget_->Charge(bytes)) return true;
    token_.RequestStop(StopReason::kResourceExhausted);
    return false;
  }

  void ReleaseScratch(uint64_t bytes) {
    if (budget_ != nullptr && bytes != 0) budget_->Release(bytes);
  }

  void Recurse(size_t depth, MatchState* state) {
    if (CheckDeadline()) return;
    if (depth == order_.size()) {
      state->count++;
      if (on_match_) on_match_(*state);
      return;
    }
    int var = order_[depth];
    // Query edges connecting var to already-bound vertices.
    std::vector<int> conn;
    for (int e = 0; e < query_->num_edges(); ++e) {
      const QueryEdge& qe = query_->edge(e);
      int other = qe.from == var ? qe.to : (qe.to == var ? qe.from : -1);
      if (other < 0) continue;
      if (state->v[other] != kInvalidVertex) conn.push_back(e);
    }
    const uint64_t conn_bytes = conn.capacity() * sizeof(int);
    if (!ChargeScratch(conn_bytes)) return;

    auto try_bind = [&](vertex_id_t v) {
      if (!VertexOk(var, v, *state)) return;
      state->v[var] = v;
      BindConnEdges(conn, 0, depth, state);
      state->v[var] = kInvalidVertex;
    };

    uint64_t cand_bytes = 0;
    if (query_->vertex(var).bound != kInvalidVertex) {
      try_bind(query_->vertex(var).bound);
    } else if (conn.empty()) {
      for (vertex_id_t v = 0; v < graph_->num_vertices(); ++v) try_bind(v);
    } else {
      // Expand along the first connecting edge; remaining edges verified
      // by BindConnEdges list walks (binary-join behaviour). Candidate
      // neighbours are deduplicated so parallel edges do not
      // double-count (BindConnEdges enumerates the edge bindings).
      const QueryEdge& first = query_->edge(conn.front());
      int pivot = first.from == var ? first.to : first.from;
      Direction dir = first.from == pivot ? Direction::kFwd : Direction::kBwd;
      std::vector<vertex_id_t> candidates;
      engine_->ForEachEdge(state->v[pivot], dir,
                           [&](vertex_id_t nbr, edge_id_t eid, label_t elabel) {
                             (void)eid;
                             if (first.label != kInvalidLabel && elabel != first.label) return;
                             candidates.push_back(nbr);
                           });
      cand_bytes = candidates.capacity() * sizeof(vertex_id_t);
      if (ChargeScratch(cand_bytes)) {
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
        for (vertex_id_t nbr : candidates) try_bind(nbr);
      } else {
        cand_bytes = 0;  // Charge() already undid the failed charge.
      }
    }
    ReleaseScratch(conn_bytes + cand_bytes);
  }

  // Binds data edges for every connecting query edge (cross-checking
  // multi-edge distinctness), then recurses deeper.
  void BindConnEdges(const std::vector<int>& conn, size_t i, size_t depth, MatchState* state) {
    if (i == conn.size()) {
      if (CloseEdgesAndPredicates(static_cast<int>(depth), state)) {
        Recurse(depth + 1, state);
      }
      return;
    }
    int qe_id = conn[i];
    const QueryEdge& qe = query_->edge(qe_id);
    vertex_id_t from_v = state->v[qe.from];
    vertex_id_t to_v = state->v[qe.to];
    engine_->ForEachEdge(from_v, Direction::kFwd,
                         [&](vertex_id_t nbr, edge_id_t eid, label_t elabel) {
                           if (nbr != to_v) return;
                           if (qe.label != kInvalidLabel && elabel != qe.label) return;
                           if (state->EdgeAlreadyBound(eid)) return;
                           state->e[qe_id] = eid;
                           BindConnEdges(conn, i + 1, depth, state);
                           state->e[qe_id] = kInvalidEdge;
                         });
  }

  static constexpr uint32_t kCheckInterval = 1 << 16;

  const Engine* engine_;
  const Graph* graph_;
  const QueryGraph* query_;
  double timeout_seconds_;
  MemoryBudget* budget_ = nullptr;
  ExecToken token_;
  uint32_t steps_until_check_ = kCheckInterval;
  std::vector<int> order_;
  std::function<void(const MatchState&)> on_match_;
};

}  // namespace aplus

#endif  // APLUS_BASELINE_MATCHER_H_
