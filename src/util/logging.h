#ifndef APLUS_UTIL_LOGGING_H_
#define APLUS_UTIL_LOGGING_H_

// Lightweight logging and invariant-checking macros.
//
// APLUS_CHECK(cond) aborts the process with a diagnostic when `cond` is
// false; it is always compiled in, mirroring the CHECK macros used by
// storage engines where silently continuing past a broken invariant
// corrupts data. APLUS_DCHECK compiles away in NDEBUG builds.

#include <cstdint>
#include <sstream>
#include <string>

namespace aplus {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal {

// Sink for a single log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Aborts after streaming the failure message.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

// Returns/sets the minimum level that is actually emitted to stderr.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

#define APLUS_LOG(level) \
  ::aplus::internal::LogMessage(::aplus::LogLevel::k##level, __FILE__, __LINE__)

#define APLUS_CHECK(cond)                                       \
  if (cond) {                                                   \
  } else /* NOLINT */                                           \
    ::aplus::internal::FatalMessage(__FILE__, __LINE__, #cond)

#define APLUS_CHECK_EQ(a, b) APLUS_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define APLUS_CHECK_NE(a, b) APLUS_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define APLUS_CHECK_LT(a, b) APLUS_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define APLUS_CHECK_LE(a, b) APLUS_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define APLUS_CHECK_GT(a, b) APLUS_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define APLUS_CHECK_GE(a, b) APLUS_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define APLUS_DCHECK(cond) \
  if (true) {              \
  } else /* NOLINT */      \
    ::aplus::internal::FatalMessage(__FILE__, __LINE__, #cond)
#else
#define APLUS_DCHECK(cond) APLUS_CHECK(cond)
#endif

}  // namespace aplus

#endif  // APLUS_UTIL_LOGGING_H_
