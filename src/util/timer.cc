#include "util/timer.h"

// WallTimer is header-only; this translation unit anchors the library.
