#include "util/memory_tracker.h"

#include <cstdio>

#include "util/logging.h"

namespace aplus {

int MemoryTracker::RegisterCategory(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  names_.push_back(name);
  bytes_.push_back(0);
  return static_cast<int>(names_.size() - 1);
}

void MemoryTracker::Set(int category, size_t bytes) {
  APLUS_CHECK_GE(category, 0);
  APLUS_CHECK_LT(static_cast<size_t>(category), bytes_.size());
  bytes_[category] = bytes;
}

void MemoryTracker::Add(int category, int64_t delta) {
  APLUS_CHECK_GE(category, 0);
  APLUS_CHECK_LT(static_cast<size_t>(category), bytes_.size());
  bytes_[category] = static_cast<size_t>(static_cast<int64_t>(bytes_[category]) + delta);
}

size_t MemoryTracker::Get(int category) const {
  APLUS_CHECK_GE(category, 0);
  APLUS_CHECK_LT(static_cast<size_t>(category), bytes_.size());
  return bytes_[category];
}

size_t MemoryTracker::Total() const {
  size_t total = 0;
  for (size_t b : bytes_) total += b;
  return total;
}

std::string MemoryTracker::Report() const {
  std::string out;
  char line[256];
  for (size_t i = 0; i < names_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%s: %zu bytes (%.2f MB)\n", names_[i].c_str(), bytes_[i],
                  static_cast<double>(bytes_[i]) / (1024.0 * 1024.0));
    out += line;
  }
  return out;
}

}  // namespace aplus
