#include "util/memory_tracker.h"

#include <cstdio>

#include "util/fault.h"
#include "util/logging.h"

namespace aplus {

int MemoryTracker::RegisterCategory(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  names_.push_back(name);
  bytes_.push_back(0);
  return static_cast<int>(names_.size() - 1);
}

void MemoryTracker::Set(int category, size_t bytes) {
  APLUS_CHECK_GE(category, 0);
  APLUS_CHECK_LT(static_cast<size_t>(category), bytes_.size());
  bytes_[category] = bytes;
}

void MemoryTracker::Add(int category, int64_t delta) {
  APLUS_CHECK_GE(category, 0);
  APLUS_CHECK_LT(static_cast<size_t>(category), bytes_.size());
  bytes_[category] = static_cast<size_t>(static_cast<int64_t>(bytes_[category]) + delta);
}

size_t MemoryTracker::Get(int category) const {
  APLUS_CHECK_GE(category, 0);
  APLUS_CHECK_LT(static_cast<size_t>(category), bytes_.size());
  return bytes_[category];
}

size_t MemoryTracker::Total() const {
  size_t total = 0;
  for (size_t b : bytes_) total += b;
  return total;
}

std::string MemoryTracker::Report() const {
  std::string out;
  char line[256];
  for (size_t i = 0; i < names_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%s: %zu bytes (%.2f MB)\n", names_[i].c_str(), bytes_[i],
                  static_cast<double>(bytes_[i]) / (1024.0 * 1024.0));
    out += line;
  }
  return out;
}

namespace {
std::atomic<uint64_t> g_process_used{0};
std::atomic<uint64_t> g_process_ceiling{0};  // 0 = unlimited
}  // namespace

void MemoryBudget::Reset(uint64_t cap_bytes) {
  const uint64_t prev = used_.exchange(0, std::memory_order_relaxed);
  if (prev != 0) g_process_used.fetch_sub(prev, std::memory_order_relaxed);
  cap_ = cap_bytes;
}

bool MemoryBudget::Charge(uint64_t bytes) {
  if (bytes == 0) return true;
  if (fault::ShouldFail(fault::kAlloc)) return false;
  const uint64_t local =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const uint64_t global =
      g_process_used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const uint64_t ceiling = g_process_ceiling.load(std::memory_order_relaxed);
  if ((cap_ != 0 && local > cap_) || (ceiling != 0 && global > ceiling)) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    g_process_used.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void MemoryBudget::Release(uint64_t bytes) {
  // Clamp to the outstanding amount so a stale release cannot underflow
  // the process pool.
  uint64_t cur = used_.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t give = bytes < cur ? bytes : cur;
    if (give == 0) return;
    if (used_.compare_exchange_weak(cur, cur - give,
                                    std::memory_order_relaxed)) {
      g_process_used.fetch_sub(give, std::memory_order_relaxed);
      return;
    }
  }
}

void MemoryBudget::SetProcessCeiling(uint64_t bytes) {
  g_process_ceiling.store(bytes, std::memory_order_relaxed);
}

uint64_t MemoryBudget::ProcessUsed() {
  return g_process_used.load(std::memory_order_relaxed);
}

}  // namespace aplus
