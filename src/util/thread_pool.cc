#include "util/thread_pool.h"

#include "util/fault.h"
#include "util/logging.h"

namespace aplus {

namespace {
// True while this thread is running inside a ThreadPool job (as the
// coordinator or as a pool worker). A nested Run from such a thread
// would deadlock on job_mu_ (the outer job holds it until completion,
// which requires the nested caller to finish), so nested parallel
// regions degrade to inline sequential execution instead.
thread_local bool tls_in_parallel_job = false;
}  // namespace

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::EnsureThreadsLocked(int needed) {
  while (static_cast<int>(threads_.size()) < needed) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Run(int num_workers, JobFn fn, void* ctx) {
  if (num_workers <= 1) {
    fn(ctx, 0);
    return;
  }
  if (tls_in_parallel_job || fault::ShouldFail(fault::kPoolDispatch)) {
    // Nested parallel region (e.g. a SinkOp callback executing a
    // sub-plan): run every worker id inline on this thread. The fault
    // point exercises the same degraded path from the top level —
    // results must match the truly parallel run.
    for (int id = 0; id < num_workers; ++id) fn(ctx, id);
    return;
  }
  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureThreadsLocked(num_workers - 1);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_workers_ = num_workers;
    job_next_id_.store(1, std::memory_order_relaxed);
    job_pending_ = num_workers - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  tls_in_parallel_job = true;
  fn(ctx, 0);
  tls_in_parallel_job = false;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return job_pending_ == 0; });
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stop_ || (generation_ != seen_generation && job_pending_ > 0); });
    if (stop_) return;
    seen_generation = generation_;
    // Unique worker id per (thread, job); threads beyond the job's width
    // (the pool outgrew this job) go straight back to sleep.
    int id = job_next_id_.fetch_add(1, std::memory_order_relaxed);
    if (id >= job_workers_) continue;
    JobFn fn = job_fn_;
    void* ctx = job_ctx_;
    lock.unlock();
    tls_in_parallel_job = true;
    fn(ctx, id);
    tls_in_parallel_job = false;
    lock.lock();
    if (--job_pending_ == 0) done_cv_.notify_all();
  }
}

// --- TaskQueue ---

TaskQueue::~TaskQueue() { Stop(); }

void TaskQueue::Start(int num_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!threads_.empty() || stop_) return;
  if (num_workers < 1) num_workers = 1;
  threads_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

bool TaskQueue::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || threads_.empty()) return false;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return true;
}

void TaskQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

size_t TaskQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_;
}

void TaskQueue::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and fully drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    job();
    lock.lock();
    --running_;
  }
}

}  // namespace aplus
