#ifndef APLUS_UTIL_MEMORY_TRACKER_H_
#define APLUS_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aplus {

// Accounts the bytes held by each index so that benchmark harnesses can
// report the memory columns (Mm / Mem) of the paper's Tables II-IV. Each
// index registers a named category and reports its physical footprint
// (partitioning levels + ID or offset lists) through it.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  // Registers (or fetches) a category and returns its id.
  int RegisterCategory(const std::string& name);

  void Set(int category, size_t bytes);
  void Add(int category, int64_t delta);

  size_t Get(int category) const;
  size_t Total() const;

  // Human-readable breakdown, one "name: N bytes (X MB)" line per category.
  std::string Report() const;

 private:
  std::vector<std::string> names_;
  std::vector<size_t> bytes_;
};

// Per-query memory governor. All transient execution arenas (group-by
// tables, sort buffers, projection batches, extend scratch) charge their
// growth here; a failed charge means the query must stop with
// RESOURCE_EXHAUSTED instead of growing without bound. Charges also count
// against an optional process-wide ceiling shared by all queries.
//
// Thread model: one MemoryBudget is shared by all worker replicas of a
// plan; Charge/Release are lock-free and safe from any worker. Reset()
// must only run between executions.
class MemoryBudget {
 public:
  ~MemoryBudget() { Reset(0); }

  // Returns the previous charges to the process pool and installs a new
  // per-query cap (0 = uncapped). Call at the start of each execution.
  void Reset(uint64_t cap_bytes);

  // Charges `bytes` against the per-query cap and the process ceiling.
  // Returns false (after undoing the charge) if either would be exceeded
  // or the `alloc` fault point fires; the caller must treat that as
  // resource exhaustion. Never throws, never allocates.
  bool Charge(uint64_t bytes);

  // Returns bytes previously charged (clamped to the outstanding amount).
  void Release(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t cap() const { return cap_; }

  // Process-wide ceiling shared by every MemoryBudget (0 = unlimited).
  static void SetProcessCeiling(uint64_t bytes);
  static uint64_t ProcessUsed();

 private:
  std::atomic<uint64_t> used_{0};
  uint64_t cap_ = 0;  // 0 = uncapped; written only by Reset().
};

}  // namespace aplus

#endif  // APLUS_UTIL_MEMORY_TRACKER_H_
