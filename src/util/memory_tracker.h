#ifndef APLUS_UTIL_MEMORY_TRACKER_H_
#define APLUS_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aplus {

// Accounts the bytes held by each index so that benchmark harnesses can
// report the memory columns (Mm / Mem) of the paper's Tables II-IV. Each
// index registers a named category and reports its physical footprint
// (partitioning levels + ID or offset lists) through it.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  // Registers (or fetches) a category and returns its id.
  int RegisterCategory(const std::string& name);

  void Set(int category, size_t bytes);
  void Add(int category, int64_t delta);

  size_t Get(int category) const;
  size_t Total() const;

  // Human-readable breakdown, one "name: N bytes (X MB)" line per category.
  std::string Report() const;

 private:
  std::vector<std::string> names_;
  std::vector<size_t> bytes_;
};

}  // namespace aplus

#endif  // APLUS_UTIL_MEMORY_TRACKER_H_
