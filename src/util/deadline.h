#pragma once

// Cooperative stop token for query execution: one place that unifies the
// LIMIT early-exit, wall-clock deadlines, user cancellation, and resource
// exhaustion. Operators poll `stop_requested()` (a relaxed atomic load) on
// their hot loops and call `PollClock()` on coarser boundaries (morsel
// claims, pivot groups) to check the deadline without a syscall per tuple.
//
// Thread model: one ExecToken is shared by every worker replica of a plan.
// Any thread may request a stop; the first reason to land wins and is the
// one reported. `Reset()` must only be called while no workers are running
// (between executions). A `Cancel()` racing with the start of the next
// `Execute()` may land on either execution — callers that need a precise
// target should sequence Cancel against Execute themselves.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace aplus {

enum class StopReason : uint8_t {
  kNone = 0,
  kLimit = 1,             // LIMIT satisfied: success, stop early.
  kTimeout = 2,           // Deadline passed.
  kCancelled = 3,         // User called Cancel().
  kResourceExhausted = 4  // MemoryBudget charge failed.
};

class ExecToken {
 public:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Clears stop state and disarms the deadline. Not thread-safe against
  // concurrent RequestStop; call only between executions.
  void Reset() {
    stop_.store(false, std::memory_order_relaxed);
    reason_.store(static_cast<uint8_t>(StopReason::kNone),
                  std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  // Arms a deadline `timeout_ns` from now; <= 0 disarms.
  void ArmDeadlineNanos(int64_t timeout_ns) {
    deadline_ns_.store(timeout_ns > 0 ? NowNanos() + timeout_ns : 0,
                       std::memory_order_relaxed);
  }
  void ArmDeadlineMillis(int64_t timeout_ms) {
    ArmDeadlineNanos(timeout_ms > 0 ? timeout_ms * 1000000 : 0);
  }

  // Requests a stop with the given reason. The first caller wins; later
  // reasons are dropped. Returns whether this call installed the reason.
  // Safe from any thread, including concurrent with running workers.
  bool RequestStop(StopReason reason) {
    uint8_t expected = static_cast<uint8_t>(StopReason::kNone);
    const bool won = reason_.compare_exchange_strong(
        expected, static_cast<uint8_t>(reason), std::memory_order_acq_rel,
        std::memory_order_acquire);
    if (won) stop_.store(true, std::memory_order_release);
    return won;
  }

  // Thread-safe user cancellation; effective until the next Reset().
  void Cancel() { RequestStop(StopReason::kCancelled); }

  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  StopReason reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

  // Checks the wall clock against the armed deadline. Call on coarse
  // boundaries only (it reads steady_clock). Returns stop_requested().
  bool PollClock() {
    if (stop_.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && NowNanos() >= deadline) {
      RequestStop(StopReason::kTimeout);
    }
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<uint8_t> reason_{static_cast<uint8_t>(StopReason::kNone)};
  std::atomic<int64_t> deadline_ns_{0};  // steady-clock nanos; 0 = unarmed.
};

}  // namespace aplus
