#ifndef APLUS_UTIL_TIMER_H_
#define APLUS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace aplus {

// Monotonic wall-clock timer used by the benchmark harnesses to report the
// runtime and index-creation (IC/IR) columns of the paper's tables.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aplus

#endif  // APLUS_UTIL_TIMER_H_
