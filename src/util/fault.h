#pragma once

// Fault-injection harness. Production code guards failure paths with
// `fault::ShouldFail(fault::kPoint)`; when no faults are configured this is
// a single relaxed atomic load (the whole registry stays cold).
//
// Configuration is a comma-separated spec, from the APLUS_FAULT environment
// variable at startup or from SetSpec() in tests:
//
//   point            fire on every hit
//   point:0.05       fire each hit with probability 0.05 (deterministic
//                    per-hit hash, so a given run is reproducible)
//   point:@7         fire exactly on the 7th hit of that point, once
//
// e.g. APLUS_FAULT="delta_full:0.02,pool_dispatch:0.05" or "alloc:@1".
// Unknown point names are accepted (they simply never match a call site).

#include <atomic>
#include <cstdint>

namespace aplus {
namespace fault {

// Known injection points (call sites pass these constants).
inline constexpr const char* kAlloc = "alloc";              // MemoryBudget::Charge
inline constexpr const char* kDeltaFull = "delta_full";     // PrimaryIndex::InsertEdge
inline constexpr const char* kIngestAddEdge = "ingest_add_edge";  // Graph::AddEdge
inline constexpr const char* kPoolDispatch = "pool_dispatch";     // ThreadPool::Run

namespace internal {
extern std::atomic<bool> g_enabled;
bool ShouldFailSlow(const char* point);
}  // namespace internal

// Fast path: false (one relaxed load) unless a spec is active.
inline bool ShouldFail(const char* point) {
  if (!internal::g_enabled.load(std::memory_order_relaxed)) return false;
  return internal::ShouldFailSlow(point);
}

// Replaces the active spec (test API; APLUS_FAULT is parsed at startup).
// Resets all hit counters. Returns false if the spec failed to parse
// (the previous spec is cleared either way).
bool SetSpec(const char* spec);

// Disables all fault points and resets counters.
void Clear();

// Number of times `point` has been evaluated (not necessarily fired)
// since the last SetSpec/Clear. Unconfigured points return 0.
uint64_t Hits(const char* point);

}  // namespace fault
}  // namespace aplus
