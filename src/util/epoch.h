#ifndef APLUS_UTIL_EPOCH_H_
#define APLUS_UTIL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace aplus {

// Epoch-based reclamation for the concurrent serving path: readers pin
// the current epoch for the duration of a plan execution, writers swap
// immutable index structures (sorted runs, delta buffers) behind atomic
// pointers and retire the old versions here. A retired object is freed
// only once every reader that could still hold a reference has unpinned,
// i.e. once the minimum pinned epoch has moved past the retire epoch.
//
// The protocol is the classic three-state scheme (Fraser '04, also used
// by the Hyper/Umbra family of morsel-driven systems): Pin() publishes
// the global epoch into a per-thread slot and re-reads the global to
// close the race with a concurrent Advance(); TryReclaim() frees garbage
// whose retire epoch is strictly below the minimum over all pinned slots
// (or below the global epoch when nothing is pinned). Writers call
// Advance() after retiring so garbage eventually becomes reclaimable.
//
// Readers are wait-free and allocation-free: Pin/Unpin are two atomic
// stores plus one load on the hot path. Retire/TryReclaim take a mutex
// and are meant for the (single) writer and the background merger only.
class EpochManager {
 public:
  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Process-wide manager used by the serving path. Intentionally leaked
  // so worker threads may unregister their slots during late shutdown.
  static EpochManager& Global();

  // Pins the calling thread to the current epoch and returns it. Nested
  // pins are cheap no-ops (only the outermost pair publishes). A thread
  // that never pinned claims a slot on first use and releases it at
  // thread exit; at most kMaxSlots threads may be registered at once.
  uint64_t Pin();
  void Unpin();

  // Hands `obj` to the reclamation queue; `deleter(obj)` runs once no
  // pinned reader can still reference it. Writer-side only.
  void Retire(void* obj, void (*deleter)(void*));
  template <typename T>
  void Retire(const T* obj) {
    if (obj == nullptr) return;
    Retire(const_cast<void*>(static_cast<const void*>(obj)),
           [](void* p) { delete static_cast<T*>(p); });
  }

  // Bumps the global epoch so earlier retirements can drain. Returns the
  // new epoch.
  uint64_t Advance();

  // Frees every garbage item whose retire epoch is below the minimum
  // active epoch. Returns the number of items freed.
  size_t TryReclaim();

  // Advance + reclaim until the queue is empty. Requires that no thread
  // stays pinned (quiesced writers-side shutdown); spins briefly waiting
  // for stragglers to unpin.
  void DrainAndReclaimAll();

  uint64_t current_epoch() const { return global_epoch_.load(std::memory_order_seq_cst); }
  // Minimum epoch over all pinned slots, or the global epoch when none
  // is pinned.
  uint64_t MinActiveEpoch() const;
  int num_pinned() const;
  size_t garbage_size() const;

  static constexpr int kMaxSlots = 256;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};   // 0 = not pinned
    std::atomic<bool> claimed{false};
  };
  struct GarbageItem {
    void* obj;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  Slot* LocalSlot();
  friend struct EpochThreadRegistry;

  // Process-unique identity. Thread-local slot caches are keyed on
  // (address, id) so a manager constructed at a recycled address (tests
  // build them on the stack) is never confused with its predecessor.
  const uint64_t id_;

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxSlots];

  mutable std::mutex garbage_mu_;
  std::deque<GarbageItem> garbage_;
};

// RAII pin: every Plan::Execute / prepared-query execution holds one of
// these for its whole duration, which also covers the pool workers it
// fans out to (they run strictly inside the spawn/join window).
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& mgr = EpochManager::Global()) : mgr_(mgr) { mgr_.Pin(); }
  ~EpochGuard() { mgr_.Unpin(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& mgr_;
};

}  // namespace aplus

#endif  // APLUS_UTIL_EPOCH_H_
