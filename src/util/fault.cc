#include "util/fault.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace aplus {
namespace fault {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct Point {
  std::string name;
  // Exactly one of these modes applies:
  //   nth > 0   -> fire once, on the nth evaluation
  //   prob      -> fire each evaluation with this probability
  uint64_t nth = 0;
  double prob = 1.0;
  std::atomic<uint64_t> hits{0};

  Point(std::string n, uint64_t nth_hit, double p)
      : name(std::move(n)), nth(nth_hit), prob(p) {}
};

// The registry is written only under g_mu (SetSpec/Clear) while
// g_enabled is false from the readers' perspective; readers only walk it
// after observing g_enabled == true, which is stored last.
std::mutex g_mu;
std::vector<Point*>* g_points = nullptr;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void ClearLocked() {
  internal::g_enabled.store(false, std::memory_order_release);
  if (g_points != nullptr) {
    for (Point* p : *g_points) delete p;
    delete g_points;
    g_points = nullptr;
  }
}

// Parses "point", "point:0.25", or "point:@7". Returns nullptr on error.
Point* ParseOne(const std::string& item) {
  const size_t colon = item.find(':');
  std::string name = item.substr(0, colon);
  if (name.empty()) return nullptr;
  uint64_t nth = 0;
  double prob = 1.0;
  if (colon != std::string::npos) {
    std::string arg = item.substr(colon + 1);
    if (arg.empty()) return nullptr;
    if (arg[0] == '@') {
      char* end = nullptr;
      nth = std::strtoull(arg.c_str() + 1, &end, 10);
      if (end == nullptr || *end != '\0' || nth == 0) return nullptr;
    } else {
      char* end = nullptr;
      prob = std::strtod(arg.c_str(), &end);
      if (end == nullptr || *end != '\0' || prob < 0.0 || prob > 1.0) {
        return nullptr;
      }
    }
  }
  return new Point(std::move(name), nth, prob);
}

bool SetSpecLocked(const char* spec) {
  ClearLocked();
  if (spec == nullptr || *spec == '\0') return true;
  auto* points = new std::vector<Point*>();
  const char* s = spec;
  bool ok = true;
  while (*s != '\0') {
    const char* comma = std::strchr(s, ',');
    std::string item = comma != nullptr ? std::string(s, comma - s)
                                        : std::string(s);
    Point* p = ParseOne(item);
    if (p == nullptr) {
      ok = false;
      break;
    }
    points->push_back(p);
    if (comma == nullptr) break;
    s = comma + 1;
  }
  if (!ok || points->empty()) {
    for (Point* p : *points) delete p;
    delete points;
    return ok;  // empty-but-valid spec leaves faults disabled
  }
  g_points = points;
  internal::g_enabled.store(true, std::memory_order_release);
  return true;
}

// Parses APLUS_FAULT once at process startup.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("APLUS_FAULT");
    if (env != nullptr && *env != '\0') {
      std::lock_guard<std::mutex> lock(g_mu);
      SetSpecLocked(env);
    }
  }
};
EnvInit g_env_init;

}  // namespace

namespace internal {

bool ShouldFailSlow(const char* point) {
  // g_enabled was observed true; the registry is immutable until the next
  // SetSpec/Clear, which callers must not race with active execution.
  std::vector<Point*>* points = g_points;
  if (points == nullptr) return false;
  for (Point* p : *points) {
    if (p->name != point) continue;
    const uint64_t hit = p->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (p->nth > 0) return hit == p->nth;
    if (p->prob >= 1.0) return true;
    if (p->prob <= 0.0) return false;
    // Deterministic per-hit coin flip: reproducible for a fixed spec.
    const uint64_t h = SplitMix64(hit ^ 0xa1b2c3d4e5f60718ULL);
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0) < p->prob;
  }
  return false;
}

}  // namespace internal

bool SetSpec(const char* spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  return SetSpecLocked(spec);
}

void Clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  ClearLocked();
}

uint64_t Hits(const char* point) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_points == nullptr) return 0;
  for (Point* p : *g_points) {
    if (p->name == point) return p->hits.load(std::memory_order_relaxed);
  }
  return 0;
}

}  // namespace fault
}  // namespace aplus
