#ifndef APLUS_UTIL_RNG_H_
#define APLUS_UTIL_RNG_H_

#include <cstdint>

namespace aplus {

// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). All dataset
// generation in this repository is seeded, so every benchmark table is
// reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 to spread the seed into two non-zero state words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace aplus

#endif  // APLUS_UTIL_RNG_H_
