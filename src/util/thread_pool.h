#ifndef APLUS_UTIL_THREAD_POOL_H_
#define APLUS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace aplus {

// A persistent worker pool for fork-join parallel regions (morsel-driven
// Plan::Execute, parallel index builds). Workers are spawned lazily on
// first use and kept alive for the pool's lifetime, so a steady stream
// of ParallelRun calls performs no thread creation and no heap
// allocation: the dispatch path stores a plain function pointer plus a
// context pointer, never a std::function.
//
// One job runs at a time; ParallelRun calls from different threads
// serialize on an internal mutex. The calling thread always participates
// as worker 0, so ParallelRun(1, body) degenerates to a direct call.
// A nested ParallelRun from inside a job (e.g. a SinkOp callback
// executing a sub-plan) runs every worker id inline on the calling
// thread instead of deadlocking on the job mutex.
class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs body(worker_id) for worker_id in [0, num_workers) and blocks
  // until every worker returns. `body` must be callable as void(int) and
  // stays alive for the duration of the call (it is passed by reference,
  // not copied — no allocation).
  template <typename Body>
  void ParallelRun(int num_workers, Body&& body) {
    Run(num_workers,
        [](void* ctx, int id) { (*static_cast<std::remove_reference_t<Body>*>(ctx))(id); },
        &body);
  }

  // Process-wide pool shared by every Plan, grown on demand and joined
  // at exit.
  static ThreadPool& Global();

 private:
  using JobFn = void (*)(void* ctx, int worker_id);

  void Run(int num_workers, JobFn fn, void* ctx);
  void WorkerLoop();
  void EnsureThreadsLocked(int needed);

  std::mutex job_mu_;  // serializes whole jobs across calling threads

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  uint64_t generation_ = 0;  // bumped per job; workers wake on change
  JobFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  int job_workers_ = 0;
  std::atomic<int> job_next_id_{0};  // worker ids handed out per job
  int job_pending_ = 0;              // pool workers still running the job
  bool stop_ = false;
};

// Request-level concurrency companion to the fork-join ThreadPool: N
// persistent workers drain a FIFO of independent jobs. Unlike
// ParallelRun (one job at a time, caller participates, no allocation),
// TaskQueue jobs overlap freely and each submission owns a
// std::function — the right shape for a server dispatching client
// requests, not for a query's inner loop. Jobs that need morsel
// parallelism still call ThreadPool::Global() from inside the task.
class TaskQueue {
 public:
  TaskQueue() = default;
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Spawns the workers. Call once, before the first Submit.
  void Start(int num_workers);

  // Enqueues `job` and wakes a worker; false (job dropped) after Stop.
  bool Submit(std::function<void()> job);

  // Stops accepting, runs every job already queued, joins the workers.
  // Safe to call twice; the destructor calls it.
  void Stop();

  int num_workers() const { return static_cast<int>(threads_.size()); }
  // Jobs submitted but not yet finished (approximate; for tests/stats).
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t running_ = 0;  // jobs currently executing
  bool stop_ = false;
};

}  // namespace aplus

#endif  // APLUS_UTIL_THREAD_POOL_H_
