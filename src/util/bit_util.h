#ifndef APLUS_UTIL_BIT_UTIL_H_
#define APLUS_UTIL_BIT_UTIL_H_

#include <cstddef>
#include <cstdint>

namespace aplus {

// Number of bytes required to represent any offset in [0, max_value].
// This is the fixed offset width rule of Section IV-B of the paper: "the
// logarithm of the length of the longest of the 64 lists rounded to the
// next byte".
inline uint8_t BytesForValue(uint64_t max_value) {
  if (max_value <= 0xffULL) return 1;
  if (max_value <= 0xffffULL) return 2;
  if (max_value <= 0xffffffULL) return 3;
  if (max_value <= 0xffffffffULL) return 4;
  if (max_value <= 0xffffffffffULL) return 5;
  if (max_value <= 0xffffffffffffULL) return 6;
  if (max_value <= 0xffffffffffffffULL) return 7;
  return 8;
}

// Reads a little-endian unsigned integer of `width` bytes at `p`.
inline uint64_t LoadFixedWidth(const uint8_t* p, uint8_t width) {
  uint64_t v = 0;
  for (uint8_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

// Writes a little-endian unsigned integer of `width` bytes at `p`.
inline void StoreFixedWidth(uint8_t* p, uint8_t width, uint64_t value) {
  for (uint8_t i = 0; i < width; ++i) {
    p[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

// Rounds `n` up to the next multiple of `m` (m > 0).
inline size_t RoundUp(size_t n, size_t m) { return (n + m - 1) / m * m; }

}  // namespace aplus

#endif  // APLUS_UTIL_BIT_UTIL_H_
