#include "util/epoch.h"

#include <set>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace aplus {
namespace {

// Liveness registry for manager identities, consulted by thread-exit
// cleanup so a thread never touches slots of a manager that was already
// destroyed (test fixtures build managers on the stack and destroy them
// while the main thread's registry still holds entries). Leaked so it
// outlives every thread_local destructor.
std::mutex& LiveManagersMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::set<uint64_t>& LiveManagers() {
  static std::set<uint64_t>* live = new std::set<uint64_t>();
  return *live;
}
std::atomic<uint64_t> g_next_manager_id{1};

}  // namespace

// Per-thread bookkeeping: which slot this thread holds in which manager,
// plus the nesting depth of Pin() calls. The registry's destructor runs
// at thread exit and returns the slots, so short-lived writer/reader
// threads (benches, stress tests) do not leak slots. Managers referenced
// here must outlive the threads that PIN them; the Global() manager is
// leaked to make that unconditionally true, and entries of managers that
// died while this thread was unpinned are skipped via the id check.
struct EpochThreadRegistry {
  struct Entry {
    EpochManager* mgr;
    uint64_t id;  // mgr->id_ at claim time; detects address reuse
    EpochManager::Slot* slot;
    int depth = 0;
  };
  std::vector<Entry> entries;

  Entry* Find(EpochManager* mgr) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].mgr != mgr) continue;
      if (entries[i].id == mgr->id_) return &entries[i];
      // Stale: a previous manager at a recycled address. Its slot is
      // gone with it; just drop the entry.
      APLUS_CHECK_EQ(entries[i].depth, 0) << "pinned manager was destroyed";
      entries.erase(entries.begin() + i);
      return nullptr;
    }
    return nullptr;
  }

  ~EpochThreadRegistry() {
    std::lock_guard<std::mutex> lock(LiveManagersMu());
    for (Entry& e : entries) {
      if (LiveManagers().count(e.id) == 0) continue;  // manager died first
      APLUS_CHECK_EQ(e.depth, 0) << "thread exited while epoch-pinned";
      e.slot->epoch.store(0, std::memory_order_release);
      e.slot->claimed.store(false, std::memory_order_release);
    }
  }
};

namespace {
thread_local EpochThreadRegistry t_epoch_registry;

EpochThreadRegistry::Entry* LocalEntry(EpochManager* mgr) {
  return t_epoch_registry.Find(mgr);
}
}  // namespace

EpochManager& EpochManager::Global() {
  static EpochManager* g = new EpochManager();
  return *g;
}

EpochManager::EpochManager() : id_(g_next_manager_id.fetch_add(1, std::memory_order_relaxed)) {
  std::lock_guard<std::mutex> lock(LiveManagersMu());
  LiveManagers().insert(id_);
}

EpochManager::~EpochManager() {
  {
    std::lock_guard<std::mutex> lock(LiveManagersMu());
    LiveManagers().erase(id_);
  }
  // Anything still queued is unreachable by contract (no pinned readers
  // may outlive the manager); free it.
  std::lock_guard<std::mutex> lock(garbage_mu_);
  for (GarbageItem& item : garbage_) item.deleter(item.obj);
  garbage_.clear();
}

EpochManager::Slot* EpochManager::LocalSlot() {
  EpochThreadRegistry::Entry* entry = LocalEntry(this);
  if (entry != nullptr) return entry->slot;
  for (int i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      t_epoch_registry.entries.push_back({this, id_, &slots_[i], 0});
      return &slots_[i];
    }
  }
  APLUS_CHECK(false) << "more than " << kMaxSlots << " threads registered with EpochManager";
  return nullptr;
}

uint64_t EpochManager::Pin() {
  Slot* slot = LocalSlot();
  EpochThreadRegistry::Entry* entry = LocalEntry(this);
  if (++entry->depth > 1) return slot->epoch.load(std::memory_order_relaxed);
  // Publish-then-recheck closes the race with a concurrent Advance(): if
  // the global moved between our load and our store, a reclaimer may
  // have scanned the slots before our store became visible, so retry
  // under the new epoch (seq_cst makes the case analysis sound).
  uint64_t e;
  do {
    e = global_epoch_.load(std::memory_order_seq_cst);
    slot->epoch.store(e, std::memory_order_seq_cst);
  } while (global_epoch_.load(std::memory_order_seq_cst) != e);
  return e;
}

void EpochManager::Unpin() {
  EpochThreadRegistry::Entry* entry = LocalEntry(this);
  APLUS_CHECK(entry != nullptr && entry->depth > 0) << "Unpin without matching Pin";
  if (--entry->depth == 0) entry->slot->epoch.store(0, std::memory_order_release);
}

void EpochManager::Retire(void* obj, void (*deleter)(void*)) {
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(garbage_mu_);
  garbage_.push_back({obj, deleter, e});
}

uint64_t EpochManager::Advance() {
  return global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = global_epoch_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

size_t EpochManager::TryReclaim() {
  uint64_t min = MinActiveEpoch();
  // Swap out the freeable items under the lock, run deleters outside it.
  std::vector<GarbageItem> freeable;
  {
    std::lock_guard<std::mutex> lock(garbage_mu_);
    size_t kept = 0;
    for (size_t i = 0; i < garbage_.size(); ++i) {
      if (garbage_[i].epoch < min) {
        freeable.push_back(garbage_[i]);
      } else {
        garbage_[kept++] = garbage_[i];
      }
    }
    garbage_.resize(kept);
  }
  for (GarbageItem& item : freeable) item.deleter(item.obj);
  return freeable.size();
}

void EpochManager::DrainAndReclaimAll() {
  while (garbage_size() > 0) {
    Advance();
    if (TryReclaim() == 0) std::this_thread::yield();
  }
}

int EpochManager::num_pinned() const {
  int n = 0;
  for (const Slot& slot : slots_) {
    if (slot.epoch.load(std::memory_order_seq_cst) != 0) ++n;
  }
  return n;
}

size_t EpochManager::garbage_size() const {
  std::lock_guard<std::mutex> lock(garbage_mu_);
  return garbage_.size();
}

}  // namespace aplus
