#include "datagen/financial_props.h"

#include "util/rng.h"

namespace aplus {

FinancialPropKeys AddFinancialProperties(uint64_t seed, Graph* graph, uint32_t num_cities) {
  Rng rng(seed);
  FinancialPropKeys keys;
  keys.acc = graph->AddVertexProperty("acc", ValueType::kCategory, kNumAccountTypes);
  keys.city = graph->AddVertexProperty("city", ValueType::kCategory, num_cities);
  keys.amount = graph->AddEdgeProperty("amount", ValueType::kInt64);
  keys.date = graph->AddEdgeProperty("date", ValueType::kInt64);

  PropertyColumn* acc = graph->vertex_props().mutable_column(keys.acc);
  PropertyColumn* city = graph->vertex_props().mutable_column(keys.city);
  for (vertex_id_t v = 0; v < graph->num_vertices(); ++v) {
    acc->SetCategory(v, static_cast<category_t>(rng.NextBounded(kNumAccountTypes)));
    city->SetCategory(v, static_cast<category_t>(rng.NextBounded(num_cities)));
  }
  PropertyColumn* amount = graph->edge_props().mutable_column(keys.amount);
  PropertyColumn* date = graph->edge_props().mutable_column(keys.date);
  for (edge_id_t e = 0; e < graph->num_edges(); ++e) {
    amount->SetInt64(e, rng.NextInRange(1, 1000));
    date->SetInt64(e, rng.NextInRange(0, kFiveYearsSeconds - 1));
  }
  return keys;
}

prop_key_t AddTimeProperty(uint64_t seed, int64_t time_range, Graph* graph) {
  Rng rng(seed);
  prop_key_t key = graph->AddEdgeProperty("time", ValueType::kInt64);
  PropertyColumn* time = graph->edge_props().mutable_column(key);
  for (edge_id_t e = 0; e < graph->num_edges(); ++e) {
    time->SetInt64(e, rng.NextInRange(0, time_range - 1));
  }
  return key;
}

}  // namespace aplus
