#ifndef APLUS_DATAGEN_POWER_LAW_GENERATOR_H_
#define APLUS_DATAGEN_POWER_LAW_GENERATOR_H_

#include <cstdint>
#include <string>

#include "storage/graph.h"

namespace aplus {

// Parameters for the synthetic power-law graph generator that stands in
// for the paper's public datasets (Orkut, LiveJournal, Wiki-topcats,
// BerkStan; Table I). See DESIGN.md "Substitutions": the generator
// preserves the properties the experiments depend on — skewed degrees and
// a small average degree — while being runnable offline and scaled down.
struct PowerLawParams {
  uint64_t num_vertices = 100000;
  double avg_degree = 15.0;
  // Fraction of edge endpoints chosen by preferential attachment (the
  // rest are uniform). 1.0 gives the heaviest skew.
  double preferential_fraction = 0.75;
  uint64_t seed = 42;
};

// Generates a directed graph into `graph` (which must be empty). All
// vertices get label "V" and all edges label "E"; labels can be
// re-assigned afterwards with AssignRandomLabels (the paper's G_{i,j}
// methodology).
void GeneratePowerLawGraph(const PowerLawParams& params, Graph* graph);

// Named dataset analogue of Table I, scaled by `scale` in (0, 1]:
//   "Ork" 3.0M/117.1M avg 39.03   "LJ" 4.8M/68.5M avg 14.27
//   "WT"  1.8M/28.5M  avg 15.83   "Brk" 685K/7.6M avg 11.09
// At scale s the generated graph has s * paper vertex count (minimum
// 2000) with the paper's average degree preserved.
struct DatasetSpec {
  std::string name;
  uint64_t paper_vertices = 0;
  uint64_t paper_edges = 0;
  double avg_degree = 0.0;
};

// The four Table I datasets.
const DatasetSpec* TableOneDatasets(size_t* count);

// Builds the scaled analogue of dataset `spec`.
void GenerateDataset(const DatasetSpec& spec, double scale, uint64_t seed, Graph* graph);

// Reads the APLUS_SCALE environment variable (default `fallback`, clamped
// to (0, 1]). Benchmarks use this so the full table harness stays
// laptop-sized by default but can approach paper scale.
double ScaleFromEnv(double fallback);

}  // namespace aplus

#endif  // APLUS_DATAGEN_POWER_LAW_GENERATOR_H_
