#ifndef APLUS_DATAGEN_LABEL_ASSIGNER_H_
#define APLUS_DATAGEN_LABEL_ASSIGNER_H_

#include <cstdint>

#include "storage/graph.h"

namespace aplus {

// Implements the paper's G_{i,j} dataset methodology (Section V-A): a
// dataset G_{i,j} has i randomly generated vertex labels and j randomly
// generated edge labels. Labels are named "VL<k>" / "EL<k>" and assigned
// uniformly at random, deterministically from `seed`.
void AssignRandomLabels(uint32_t num_vertex_labels, uint32_t num_edge_labels, uint64_t seed,
                        Graph* graph);

}  // namespace aplus

#endif  // APLUS_DATAGEN_LABEL_ASSIGNER_H_
