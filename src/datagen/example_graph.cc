#include "datagen/example_graph.h"

#include "util/logging.h"

namespace aplus {

namespace {

struct TransferSpec {
  int src;  // 1-based account index (v1..v5)
  int dst;
  bool wire;  // false => Dir-Deposit
  int64_t amount;
  uint32_t currency;
};

// t1..t20. Dates equal the transfer's ordinal. Endpoints satisfy the
// textual constraints listed in the header.
constexpr TransferSpec kTransfers[20] = {
    {3, 1, false, 40, kCurrencyUsd},   // t1:DD ($40)
    {4, 3, false, 20, kCurrencyGbp},   // t2:DD (£20)
    {3, 5, false, 200, kCurrencyUsd},  // t3:DD ($200)
    {1, 3, true, 200, kCurrencyEur},   // t4:W (€200)
    {4, 2, true, 50, kCurrencyUsd},    // t5:W ($50)
    {3, 2, false, 70, kCurrencyUsd},   // t6:DD ($70)
    {2, 3, false, 75, kCurrencyUsd},   // t7:DD ($75)
    {2, 4, true, 75, kCurrencyUsd},    // t8:W ($75)
    {4, 5, true, 75, kCurrencyUsd},    // t9:W ($75)
    {5, 4, false, 80, kCurrencyUsd},   // t10:DD ($80)
    {4, 3, true, 5, kCurrencyEur},     // t11:W (€5)
    {5, 3, false, 50, kCurrencyUsd},   // t12:DD ($50)
    {2, 5, false, 10, kCurrencyGbp},   // t13:DD (£10)
    {3, 4, true, 10, kCurrencyUsd},    // t14:W ($10)
    {5, 2, false, 25, kCurrencyUsd},   // t15:DD ($25)
    {4, 1, false, 195, kCurrencyUsd},  // t16:DD ($195)
    {1, 2, true, 25, kCurrencyEur},    // t17:W (€25)
    {1, 5, false, 30, kCurrencyEur},   // t18:DD (€30)
    {5, 3, true, 5, kCurrencyGbp},     // t19:W (£5)
    {1, 4, true, 80, kCurrencyUsd},    // t20:W ($80)
};

struct AccountSpec {
  uint32_t acc;  // kAccCq / kAccSv analogue, local to the example
  uint32_t city;
};

// v1: SV/SF, v2: CQ/SF, v3: SV/BOS, v4: CQ/BOS, v5: SV/LA (Figure 1).
constexpr AccountSpec kAccounts[5] = {
    {1, kCitySf}, {0, kCitySf}, {1, kCityBos}, {0, kCityBos}, {1, kCityLa},
};

}  // namespace

ExampleGraph BuildExampleGraph() {
  ExampleGraph ex;
  Graph& g = ex.graph;
  ex.account_label = g.catalog().AddVertexLabel("Account");
  ex.customer_label = g.catalog().AddVertexLabel("Customer");
  ex.owns_label = g.catalog().AddEdgeLabel("O");
  ex.dd_label = g.catalog().AddEdgeLabel("DD");
  ex.wire_label = g.catalog().AddEdgeLabel("W");

  ex.name_key = g.AddVertexProperty("name", ValueType::kString);
  ex.acc_key = g.AddVertexProperty("acc", ValueType::kCategory, 2);
  ex.city_key = g.AddVertexProperty("city", ValueType::kCategory, 3);
  ex.amount_key = g.AddEdgeProperty("amount", ValueType::kInt64);
  ex.currency_key = g.AddEdgeProperty("currency", ValueType::kCategory, 3);
  ex.date_key = g.AddEdgeProperty("date", ValueType::kInt64);

  PropertyColumn* acc = g.vertex_props().mutable_column(ex.acc_key);
  PropertyColumn* city = g.vertex_props().mutable_column(ex.city_key);
  for (int i = 0; i < 5; ++i) {
    ex.accounts[i] = g.AddVertex(ex.account_label);
    acc->SetCategory(ex.accounts[i], kAccounts[i].acc);
    city->SetCategory(ex.accounts[i], kAccounts[i].city);
  }

  PropertyColumn* name = g.vertex_props().mutable_column(ex.name_key);
  const char* kNames[3] = {"Charles", "Alice", "Bob"};
  for (int i = 0; i < 3; ++i) {
    ex.customers[i] = g.AddVertex(ex.customer_label);
    name->SetString(ex.customers[i], kNames[i]);
  }

  // Owns edges e1..e5: Charles owns v3; Alice owns v1 and v4; Bob owns v2
  // and v5. (The figure shows five Owns edges; the exact assignment only
  // matters for Alice, whose account the text calls v1.)
  const int kOwners[5] = {1, 2, 0, 1, 2};  // index into customers, for accounts v1..v5
  for (int i = 0; i < 5; ++i) {
    ex.owns[i] = g.AddEdge(ex.customers[kOwners[i]], ex.accounts[i], ex.owns_label);
  }

  PropertyColumn* amount = g.edge_props().mutable_column(ex.amount_key);
  PropertyColumn* currency = g.edge_props().mutable_column(ex.currency_key);
  PropertyColumn* date = g.edge_props().mutable_column(ex.date_key);
  for (int i = 0; i < 20; ++i) {
    const TransferSpec& t = kTransfers[i];
    label_t label = t.wire ? ex.wire_label : ex.dd_label;
    edge_id_t e = g.AddEdge(ex.accounts[t.src - 1], ex.accounts[t.dst - 1], label);
    ex.transfers[i] = e;
    amount->SetInt64(e, t.amount);
    currency->SetCategory(e, t.currency);
    date->SetInt64(e, i + 1);
  }
  return ex;
}

}  // namespace aplus
