#include "datagen/power_law_generator.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace aplus {

void GeneratePowerLawGraph(const PowerLawParams& params, Graph* graph) {
  APLUS_CHECK_EQ(graph->num_vertices(), 0u) << "generator needs an empty graph";
  APLUS_CHECK_GT(params.num_vertices, 1u);
  Rng rng(params.seed);
  label_t vlabel = graph->catalog().AddVertexLabel("V");
  label_t elabel = graph->catalog().AddEdgeLabel("E");
  for (uint64_t i = 0; i < params.num_vertices; ++i) graph->AddVertex(vlabel);

  uint64_t target_edges =
      static_cast<uint64_t>(params.avg_degree * static_cast<double>(params.num_vertices));
  // `endpoint_pool` implements preferential attachment: every time an edge
  // touches a vertex we append it, so future draws are degree-biased.
  std::vector<vertex_id_t> endpoint_pool;
  endpoint_pool.reserve(2 * target_edges + 2);
  endpoint_pool.push_back(0);
  endpoint_pool.push_back(1 % static_cast<vertex_id_t>(params.num_vertices));

  auto draw = [&](bool preferential) -> vertex_id_t {
    if (preferential && !endpoint_pool.empty()) {
      return endpoint_pool[rng.NextBounded(endpoint_pool.size())];
    }
    return static_cast<vertex_id_t>(rng.NextBounded(params.num_vertices));
  };

  for (uint64_t i = 0; i < target_edges; ++i) {
    bool src_pref = rng.NextDouble() < params.preferential_fraction;
    bool dst_pref = rng.NextDouble() < params.preferential_fraction;
    vertex_id_t src = draw(src_pref);
    vertex_id_t dst = draw(dst_pref);
    if (src == dst) dst = static_cast<vertex_id_t>((dst + 1) % params.num_vertices);
    graph->AddEdge(src, dst, elabel);
    endpoint_pool.push_back(src);
    endpoint_pool.push_back(dst);
  }
}

namespace {
const DatasetSpec kDatasets[] = {
    {"Ork", 3000000, 117100000, 39.03},
    {"LJ", 4800000, 68500000, 14.27},
    {"WT", 1800000, 28500000, 15.83},
    {"Brk", 685000, 7600000, 11.09},
};
}  // namespace

const DatasetSpec* TableOneDatasets(size_t* count) {
  *count = sizeof(kDatasets) / sizeof(kDatasets[0]);
  return kDatasets;
}

void GenerateDataset(const DatasetSpec& spec, double scale, uint64_t seed, Graph* graph) {
  PowerLawParams params;
  params.num_vertices =
      std::max<uint64_t>(2000, static_cast<uint64_t>(scale * static_cast<double>(spec.paper_vertices)));
  params.avg_degree = spec.avg_degree;
  params.seed = seed;
  GeneratePowerLawGraph(params, graph);
}

double ScaleFromEnv(double fallback) {
  const char* env = std::getenv("APLUS_SCALE");
  if (env == nullptr) return fallback;
  double scale = std::atof(env);
  if (scale <= 0.0) return fallback;
  return std::min(scale, 1.0);
}

}  // namespace aplus
