#ifndef APLUS_DATAGEN_FINANCIAL_PROPS_H_
#define APLUS_DATAGEN_FINANCIAL_PROPS_H_

#include <cstdint>

#include "storage/graph.h"

namespace aplus {

// Property keys created by the financial / recommendation workload
// generators of Section V.
struct FinancialPropKeys {
  prop_key_t acc = kInvalidPropKey;     // vertex, categorical {CQ, SV}
  prop_key_t city = kInvalidPropKey;    // vertex, categorical (4417 cities)
  prop_key_t amount = kInvalidPropKey;  // edge, int64 in [1, 1000]
  prop_key_t date = kInvalidPropKey;    // edge, int64 within a 5-year range
};

inline constexpr uint32_t kAccCq = 0;
inline constexpr uint32_t kAccSv = 1;
inline constexpr uint32_t kNumAccountTypes = 2;
inline constexpr uint32_t kNumCities = 4417;  // Section V-C2
inline constexpr int64_t kFiveYearsSeconds = 5LL * 365 * 24 * 3600;

// Section V-C2: "we randomly added each vertex an account type property
// from [CQ, SV], a city from 4417 cities, and to each edge an amount in
// the range of [1, 1000] and a date within a 5 year range." `num_cities`
// can be reduced for small graphs so the city equality predicates keep a
// selectivity comparable to the paper's setup.
FinancialPropKeys AddFinancialProperties(uint64_t seed, Graph* graph,
                                         uint32_t num_cities = kNumCities);

// Section V-C1 (MagicRecs): adds an integer `time` property to every edge,
// uniform in [0, time_range). The benchmark picks the predicate constant
// alpha as the 5th percentile so that P(e.time < alpha) = 5%.
prop_key_t AddTimeProperty(uint64_t seed, int64_t time_range, Graph* graph);

}  // namespace aplus

#endif  // APLUS_DATAGEN_FINANCIAL_PROPS_H_
