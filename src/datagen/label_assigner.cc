#include "datagen/label_assigner.h"

#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace aplus {

void AssignRandomLabels(uint32_t num_vertex_labels, uint32_t num_edge_labels, uint64_t seed,
                        Graph* graph) {
  APLUS_CHECK_GT(num_vertex_labels, 0u);
  APLUS_CHECK_GT(num_edge_labels, 0u);
  Rng rng(seed);
  std::vector<label_t> vlabels;
  for (uint32_t i = 0; i < num_vertex_labels; ++i) {
    vlabels.push_back(graph->catalog().AddVertexLabel("VL" + std::to_string(i)));
  }
  std::vector<label_t> elabels;
  for (uint32_t i = 0; i < num_edge_labels; ++i) {
    elabels.push_back(graph->catalog().AddEdgeLabel("EL" + std::to_string(i)));
  }
  for (vertex_id_t v = 0; v < graph->num_vertices(); ++v) {
    graph->set_vertex_label(v, vlabels[rng.NextBounded(num_vertex_labels)]);
  }
  for (edge_id_t e = 0; e < graph->num_edges(); ++e) {
    graph->set_edge_label(e, elabels[rng.NextBounded(num_edge_labels)]);
  }
}

}  // namespace aplus
