#ifndef APLUS_DATAGEN_EXAMPLE_GRAPH_H_
#define APLUS_DATAGEN_EXAMPLE_GRAPH_H_

#include <array>

#include "storage/graph.h"

namespace aplus {

// The running-example financial graph of Figure 1: five Account vertices
// (v1..v5), three Customer vertices (v6 Charles, v7 Alice, v8 Bob), five
// Owns edges (e1..e5) and twenty Transfer edges (t1..t20) with
// Dir-Deposit (DD) / Wire (W) labels and amount / currency / date
// properties. Edge ti has date i, so ti.date < tj.date iff i < j, exactly
// as the paper stipulates.
//
// The figure in the paper is a drawing; the concrete endpoint assignment
// here is reconstructed to satisfy every behavioural fact the text states:
//   * t13 goes from v2 to v5 (Example 7);
//   * v2's incoming transfers are {t5, t6, t15, t17} and its outgoing
//     transfers are {t7, t8, t13} (Section III-B2, "Redundant" example);
//   * under the MoneyFlow 2-hop view (eb.date < eadj.date and
//     eb.amt > eadj.amt, Destination-FW) the list of t13 is exactly {t19};
//   * t17 appears in the MoneyFlow lists of both t1 and t16.
// Unit tests in tests/example_graph_test.cc assert all of these.
struct ExampleGraph {
  Graph graph;

  // Labels.
  label_t customer_label;
  label_t account_label;
  label_t owns_label;  // "O"
  label_t dd_label;    // "DD" Dir-Deposit
  label_t wire_label;  // "W" Wire

  // Properties.
  prop_key_t name_key;      // Customer.name (string)
  prop_key_t acc_key;       // Account.acc, categorical {CQ=0, SV=1}
  prop_key_t city_key;      // Account.city, categorical {SF=0, BOS=1, LA=2}
  prop_key_t amount_key;    // Transfer.amount (int64)
  prop_key_t currency_key;  // Transfer.currency, categorical {USD=0, EUR=1, GBP=2}
  prop_key_t date_key;      // Transfer.date (int64)

  // Vertex ids: accounts[0] is the paper's v1, ..., accounts[4] is v5;
  // customers[0] is v6 (Charles), [1] is v7 (Alice), [2] is v8 (Bob).
  std::array<vertex_id_t, 5> accounts;
  std::array<vertex_id_t, 3> customers;

  // Edge ids: owns[k] is e(k+1); transfers[k] is t(k+1).
  std::array<edge_id_t, 5> owns;
  std::array<edge_id_t, 20> transfers;
};

inline constexpr uint32_t kCitySf = 0;
inline constexpr uint32_t kCityBos = 1;
inline constexpr uint32_t kCityLa = 2;
inline constexpr uint32_t kCurrencyUsd = 0;
inline constexpr uint32_t kCurrencyEur = 1;
inline constexpr uint32_t kCurrencyGbp = 2;

ExampleGraph BuildExampleGraph();

}  // namespace aplus

#endif  // APLUS_DATAGEN_EXAMPLE_GRAPH_H_
