#ifndef APLUS_OPTIMIZER_INDEX_MATCHER_H_
#define APLUS_OPTIMIZER_INDEX_MATCHER_H_

#include <vector>

#include "index/index_store.h"
#include "optimizer/catalog_stats.h"
#include "query/operators.h"
#include "view/subsumption.h"

namespace aplus {

// The predicate of one extension step in view-site form: conjuncts over
// the adjacent edge (eadj), the neighbour to be bound (vnbr), and — for
// edge-bound extensions — the bound edge (eb). `query_conjunct_ids` maps
// each conjunct back to the query's WHERE-clause conjunct it came from so
// the optimizer can mark covered conjuncts as applied.
struct ExtensionPredicate {
  Predicate pred;
  std::vector<int> query_conjunct_ids;
};

// One usable adjacency-list access path for an extension, as returned by
// the INDEX STORE lookup of Section IV-A.
struct CandidateList {
  ListDescriptor desc;  // index + partition-category prefix (targets unset)
  // Query conjuncts guaranteed by the index view predicate and/or the
  // bound partition categories; everything else stays residual.
  std::vector<int> covered_conjuncts;
  // Estimated number of entries the operator reads from the list (the
  // i-cost contribution).
  double est_len = 0.0;
  // Estimated number of entries surviving the descriptor's label filters
  // (the cardinality contribution); est_out <= est_len.
  double est_out = 0.0;
  // True when the list's first sort criterion holds within BoundedRange
  // (innermost sublist, no neighbour-ID/label pin in the way): the
  // optimizer may fold $param range conjuncts on the sort key into
  // bind-time-patched descriptor bounds (ParamSlots::RangeSlot).
  bool allow_param_range_bounds = false;
};

// Matches extension requirements against the INDEX STORE: checks sort
// compatibility, binds partition-category prefixes from equality
// predicates / labels, and verifies view-predicate subsumption
// (Section IV-A).
class IndexMatcher {
 public:
  IndexMatcher(const IndexStore* store, const GraphStats* stats)
      : store_(store), stats_(stats) {}

  // Lists for a vertex-bound extension in direction `dir` matching a
  // query edge with label `edge_label` towards a vertex with label
  // `nbr_label` (either may be kInvalidLabel). If `required_sort` is
  // non-null, only lists whose first sort criterion equals it qualify.
  std::vector<CandidateList> FindVertexLists(Direction dir, label_t edge_label,
                                             label_t nbr_label,
                                             const ExtensionPredicate& ext_pred,
                                             const SortCriterion* required_sort) const;

  // Lists for an edge-bound extension of kind `kind` (EP indexes only).
  // ext_pred may contain cross-edge conjuncts (eb vs eadj).
  std::vector<CandidateList> FindEdgeLists(EpKind kind, label_t edge_label, label_t nbr_label,
                                           const ExtensionPredicate& ext_pred,
                                           const SortCriterion* required_sort) const;

 private:
  // Tries to bind a category prefix for `config.partitions` from labels
  // and equality conjuncts. Returns the number of bound criteria and
  // appends consumed conjunct positions (indices into ext_pred.pred).
  size_t BindPartitionPrefix(const IndexConfig& config, label_t edge_label, label_t nbr_label,
                             const ExtensionPredicate& ext_pred, std::vector<category_t>* cats,
                             std::vector<int>* consumed) const;

  const IndexStore* store_;
  const GraphStats* stats_;
};

}  // namespace aplus

#endif  // APLUS_OPTIMIZER_INDEX_MATCHER_H_
