#include "optimizer/index_advisor.h"

#include "view/predicate.h"

namespace aplus {

std::vector<IndexCandidate> EnumerateIndexCandidates(
    const Graph& graph, const std::vector<const QueryGraph*>& workload) {
  std::vector<IndexCandidate> candidates;
  auto bump = [&candidates](IndexCandidate::Kind kind, bool on_edge, prop_key_t key,
                            const std::string& description) {
    for (IndexCandidate& c : candidates) {
      if (c.kind == kind && c.on_edge == on_edge && c.key == key &&
          c.description == description) {
        c.support++;
        return;
      }
    }
    IndexCandidate c;
    c.kind = kind;
    c.on_edge = on_edge;
    c.key = key;
    c.description = description;
    c.support = 1;
    candidates.push_back(std::move(c));
  };

  for (const QueryGraph* query : workload) {
    for (const QueryComparison& cmp : query->predicates()) {
      if (cmp.lhs.is_id || cmp.lhs.key == kInvalidPropKey) continue;
      const PropertyMeta& meta = graph.catalog().property(cmp.lhs.key);
      bool categorical = meta.type == ValueType::kCategory;
      if (cmp.op == CmpOp::kEq && cmp.rhs_is_const && categorical) {
        // Equality on a categorical property -> partitioning candidate.
        bump(IndexCandidate::Kind::kPartitionCriterion, cmp.lhs.is_edge, cmp.lhs.key,
             meta.name);
      } else {
        // Any other predicate -> sorting candidate on the property, and a
        // 1-hop view predicate candidate when compared to a constant.
        bump(IndexCandidate::Kind::kSortCriterion, cmp.lhs.is_edge, cmp.lhs.key, meta.name);
        if (cmp.rhs_is_const) {
          std::string desc = meta.name;
          desc += ToString(cmp.op);
          desc += cmp.rhs_const.ToString();
          bump(IndexCandidate::Kind::kOneHopViewPredicate, cmp.lhs.is_edge, cmp.lhs.key, desc);
        }
      }
    }
  }
  return candidates;
}

}  // namespace aplus
