#ifndef APLUS_OPTIMIZER_CATALOG_STATS_H_
#define APLUS_OPTIMIZER_CATALOG_STATS_H_

#include <cstdint>
#include <vector>

#include "storage/graph.h"

namespace aplus {

// Cardinality statistics the optimizer's i-cost estimates are based on:
// label histograms and average degrees. Recomputed on demand; cheap (one
// pass over vertices and edges).
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  std::vector<uint64_t> vertex_label_counts;
  std::vector<uint64_t> edge_label_counts;

  static GraphStats Compute(const Graph& graph);

  // Expected adjacency-list length of one vertex restricted to an edge
  // label (kInvalidLabel = all labels).
  double AvgListLen(label_t edge_label) const {
    if (num_vertices == 0) return 0.0;
    uint64_t edges = edge_label == kInvalidLabel ? num_edges
                     : edge_label < edge_label_counts.size() ? edge_label_counts[edge_label]
                                                             : 0;
    return static_cast<double>(edges) / static_cast<double>(num_vertices);
  }

  // Fraction of vertices carrying `label` (1.0 for kInvalidLabel).
  double VertexLabelFraction(label_t label) const {
    if (label == kInvalidLabel || num_vertices == 0) return 1.0;
    if (label >= vertex_label_counts.size()) return 0.0;
    return static_cast<double>(vertex_label_counts[label]) /
           static_cast<double>(num_vertices);
  }

  uint64_t VertexLabelCount(label_t label) const {
    if (label == kInvalidLabel) return num_vertices;
    if (label >= vertex_label_counts.size()) return 0;
    return vertex_label_counts[label];
  }
};

}  // namespace aplus

#endif  // APLUS_OPTIMIZER_CATALOG_STATS_H_
