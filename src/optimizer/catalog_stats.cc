#include "optimizer/catalog_stats.h"

namespace aplus {

GraphStats GraphStats::Compute(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  stats.vertex_label_counts.assign(graph.catalog().num_vertex_labels(), 0);
  stats.edge_label_counts.assign(graph.catalog().num_edge_labels(), 0);
  for (vertex_id_t v = 0; v < stats.num_vertices; ++v) {
    label_t label = graph.vertex_label(v);
    if (label < stats.vertex_label_counts.size()) stats.vertex_label_counts[label]++;
  }
  for (edge_id_t e = 0; e < stats.num_edges; ++e) {
    label_t label = graph.edge_label(e);
    if (label < stats.edge_label_counts.size()) stats.edge_label_counts[label]++;
  }
  return stats;
}

}  // namespace aplus
