#include "optimizer/dp_optimizer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace aplus {

namespace {

// Per-conjunct metadata: which query vertices must be bound before the
// conjunct can be evaluated (edge variables imply both endpoints).
uint32_t ConjunctVertexMask(const QueryGraph& query, const QueryComparison& cmp) {
  uint32_t mask = 0;
  auto add = [&](const QueryPropRef& ref) {
    if (ref.var < 0) return;
    if (ref.is_edge) {
      const QueryEdge& qe = query.edge(ref.var);
      mask |= 1u << qe.from;
      mask |= 1u << qe.to;
    } else {
      mask |= 1u << ref.var;
    }
  };
  add(cmp.lhs);
  if (!cmp.rhs_is_const) add(cmp.rhs_ref);
  return mask;
}

struct DpEntry {
  double icost = 0.0;
  double card = 0.0;
  std::vector<PlanStep> steps;
  bool valid = false;
};

}  // namespace

double EstimateSelectivity(const Graph& graph, const QueryComparison& cmp) {
  auto domain_of = [&graph](const QueryPropRef& ref) -> uint32_t {
    if (ref.is_id || ref.key == kInvalidPropKey) return 0;
    const PropertyMeta& meta = graph.catalog().property(ref.key);
    return meta.type == ValueType::kCategory ? meta.domain_size : 0;
  };
  // Vertex-ID ranges against constants are exact: IDs are dense in
  // [0, num_vertices).
  if (!cmp.lhs.is_edge && cmp.lhs.is_id && cmp.rhs_is_const &&
      !cmp.rhs_const.is_null()) {
    double nv = std::max<double>(1.0, static_cast<double>(graph.num_vertices()));
    double bound = static_cast<double>(cmp.rhs_const.AsInt64());
    double frac;
    switch (cmp.op) {
      case CmpOp::kLt:
        frac = bound / nv;
        break;
      case CmpOp::kLe:
        frac = (bound + 1.0) / nv;
        break;
      case CmpOp::kGt:
        frac = (nv - bound - 1.0) / nv;
        break;
      case CmpOp::kGe:
        frac = (nv - bound) / nv;
        break;
      case CmpOp::kEq:
        frac = 1.0 / nv;
        break;
      case CmpOp::kNe:
        frac = (nv - 1.0) / nv;
        break;
      default:
        frac = 0.3;
    }
    return std::min(1.0, std::max(frac, 1.0 / nv));
  }
  switch (cmp.op) {
    case CmpOp::kEq: {
      uint32_t domain = domain_of(cmp.lhs);
      if (domain == 0 && !cmp.rhs_is_const) domain = domain_of(cmp.rhs_ref);
      if (domain > 0) return 1.0 / static_cast<double>(domain);
      return 0.1;
    }
    case CmpOp::kNe:
      return 0.9;
    default:
      return 0.3;
  }
}

double EstimateCombinedSelectivity(const Graph& graph,
                                   const std::vector<QueryComparison>& conjuncts) {
  double nv = std::max<double>(1.0, static_cast<double>(graph.num_vertices()));
  // Per-variable ID windows [lo, hi).
  struct Window {
    double lo = 0.0;
    double hi = -1.0;  // -1 = unset (defaults to nv)
  };
  std::unordered_map<int, Window> windows;
  double selectivity = 1.0;
  for (const QueryComparison& cmp : conjuncts) {
    bool is_vertex_id_range = !cmp.lhs.is_edge && cmp.lhs.is_id && cmp.rhs_is_const &&
                              !cmp.rhs_const.is_null() &&
                              (cmp.op == CmpOp::kLt || cmp.op == CmpOp::kLe ||
                               cmp.op == CmpOp::kGt || cmp.op == CmpOp::kGe);
    if (!is_vertex_id_range) {
      selectivity *= EstimateSelectivity(graph, cmp);
      continue;
    }
    Window& w = windows[cmp.lhs.var];
    if (w.hi < 0.0) w.hi = nv;
    double bound = static_cast<double>(cmp.rhs_const.AsInt64());
    switch (cmp.op) {
      case CmpOp::kLt:
        w.hi = std::min(w.hi, bound);
        break;
      case CmpOp::kLe:
        w.hi = std::min(w.hi, bound + 1.0);
        break;
      case CmpOp::kGt:
        w.lo = std::max(w.lo, bound + 1.0);
        break;
      case CmpOp::kGe:
        w.lo = std::max(w.lo, bound);
        break;
      default:
        break;
    }
  }
  for (const auto& [var, w] : windows) {
    (void)var;
    double width = std::max(0.0, w.hi - w.lo);
    selectivity *= std::min(1.0, std::max(width / nv, 1.0 / nv));
  }
  return selectivity;
}

DpOptimizer::DpOptimizer(const Graph* graph, const IndexStore* store)
    : graph_(graph), store_(store), stats_(GraphStats::Compute(*graph)) {}

std::unique_ptr<Plan> DpOptimizer::Optimize(const QueryGraph& query,
                                            std::unique_ptr<Operator> sink) {
  const int n = query.num_vertices();
  APLUS_CHECK_GT(n, 0);
  APLUS_CHECK_LE(n, 20) << "query too large for the subset DP";
  IndexMatcher matcher(store_, &stats_);
  const auto& conjuncts = query.predicates();
  std::vector<uint32_t> conjunct_masks;
  conjunct_masks.reserve(conjuncts.size());
  for (const QueryComparison& cmp : conjuncts) {
    conjunct_masks.push_back(ConjunctVertexMask(query, cmp));
  }
  const uint32_t full = n == 32 ? 0xffffffffu : (1u << n) - 1;
  std::vector<DpEntry> table(static_cast<size_t>(full) + 1);

  // Residual conjuncts that become evaluable when moving prev -> now,
  // excluding those in `covered`.
  auto residual_for = [&](uint32_t prev, uint32_t now,
                          const std::vector<int>& covered) -> std::vector<QueryComparison> {
    std::vector<QueryComparison> out;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      uint32_t need = conjunct_masks[c];
      if ((need & now) != need) continue;                   // not yet evaluable
      if (prev != 0 && (need & ~prev) == 0 && prev != now) continue;  // already applied earlier
      if (prev == now && prev != 0) continue;
      bool is_covered = false;
      for (int id : covered) {
        if (id == static_cast<int>(c)) {
          is_covered = true;
          break;
        }
      }
      if (!is_covered) out.push_back(conjuncts[c]);
      // A conjunct is applied exactly once: at the first state where it
      // became evaluable. Because we always extend by consuming all
      // connecting edges, "first evaluable" is deterministic per mask.
    }
    return out;
  };

  // Seeds: every query vertex as a scan.
  for (int v = 0; v < n; ++v) {
    uint32_t mask = 1u << v;
    const QueryVertex& qv = query.vertex(v);
    double card = qv.bound != kInvalidVertex
                      ? 1.0
                      : static_cast<double>(stats_.VertexLabelCount(qv.label));
    std::vector<int> no_cover;
    std::vector<QueryComparison> preds = residual_for(0, mask, no_cover);
    card *= EstimateCombinedSelectivity(*graph_, preds);
    if (card < 1.0) card = 1.0;
    DpEntry entry;
    entry.valid = true;
    entry.icost = qv.bound != kInvalidVertex ? 0.0 : static_cast<double>(stats_.num_vertices);
    entry.card = card;
    PlanStep step;
    step.kind = PlanStep::Kind::kScan;
    step.scan_var = v;
    step.residual = std::move(preds);
    entry.steps.push_back(std::move(step));
    DpEntry& slot = table[mask];
    if (!slot.valid || entry.icost < slot.icost) slot = std::move(entry);
  }

  // Builds the ExtensionPredicate for extending along query edge `qe_id`
  // towards vertex `target`, optionally pairing with bound edge `eb_id`
  // (for EP lists; -1 otherwise).
  auto build_ext_pred = [&](int qe_id, int target, int eb_id) -> ExtensionPredicate {
    ExtensionPredicate ext;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      const QueryComparison& cmp = conjuncts[c];
      // A $param conjunct has no constant until bind time: it can never
      // certify subsumption by a predicate-filtered index (a null
      // rhs_const would compare as +infinity and wrongly imply upper
      // bounds), so it stays a residual.
      if (cmp.rhs_param >= 0) continue;
      // Translate into view-site form when every reference maps.
      auto translate = [&](const QueryPropRef& ref, PropRef* out) -> bool {
        if (ref.is_edge) {
          if (ref.var == qe_id) {
            out->site = PropSite::kAdjEdge;
          } else if (ref.var == eb_id && eb_id >= 0) {
            out->site = PropSite::kBoundEdge;
          } else {
            return false;
          }
        } else {
          if (ref.var == target) {
            out->site = PropSite::kNbrVertex;
          } else {
            return false;
          }
        }
        out->key = ref.key;
        out->is_id = ref.is_id;
        out->is_label = false;
        return true;
      };
      Comparison translated;
      if (!translate(cmp.lhs, &translated.lhs)) continue;
      translated.op = cmp.op;
      translated.rhs_is_const = cmp.rhs_is_const;
      translated.rhs_const = cmp.rhs_const;
      translated.rhs_addend = cmp.rhs_addend;
      if (!cmp.rhs_is_const) {
        if (!translate(cmp.rhs_ref, &translated.rhs_ref)) continue;
      }
      ext.pred.Add(std::move(translated));
      ext.query_conjunct_ids.push_back(static_cast<int>(c));
    }
    return ext;
  };

  // Folds $param range conjuncts on the candidate's first sort key into
  // bind-time-patched descriptor bounds (ParamSlots::RangeSlot). A
  // $param has no constant at plan time, so it can never certify
  // subsumption or a literal bound — but when the list is sorted on the
  // conjunct's property, the *bound value* is the only missing piece,
  // and patching it at Bind re-enables the sorted-prefix binary search
  // (the MagicRecs time-window parameter, Section V-C1). The folded
  // conjunct is marked covered and leaves the residual set.
  auto fold_param_range_bounds = [&](CandidateList* c) {
    if (!c->allow_param_range_bounds) return;
    const std::vector<SortCriterion>& sorts = c->desc.sorts();
    if (sorts.empty()) return;
    const SortCriterion& sort = sorts.front();
    for (size_t qc = 0; qc < conjuncts.size(); ++qc) {
      const QueryComparison& cmp = conjuncts[qc];
      if (cmp.rhs_param < 0 || !cmp.rhs_is_const) continue;
      bool matches = false;
      switch (sort.source) {
        case SortSource::kEdgeProp:
          matches = cmp.lhs.is_edge && cmp.lhs.var == c->desc.target_edge_var &&
                    !cmp.lhs.is_id && cmp.lhs.key == sort.key;
          break;
        case SortSource::kNbrProp:
          matches = !cmp.lhs.is_edge && cmp.lhs.var == c->desc.target_vertex_var &&
                    !cmp.lhs.is_id && cmp.lhs.key == sort.key;
          break;
        case SortSource::kNbrId:
          matches = !cmp.lhs.is_edge && cmp.lhs.var == c->desc.target_vertex_var &&
                    cmp.lhs.is_id;
          break;
        default:
          break;
      }
      if (!matches) continue;
      // One param bound per side; literal bounds installed by the
      // matcher keep priority (the extra conjunct stays residual).
      bool folded = false;
      switch (cmp.op) {
        case CmpOp::kLt:
        case CmpOp::kLe:
          if (!c->desc.has_upper_bound) {
            c->desc.has_upper_bound = true;
            c->desc.upper_strict = cmp.op == CmpOp::kLt;
            c->desc.upper_bound_param = cmp.rhs_param;
            folded = true;
          }
          break;
        case CmpOp::kGt:
        case CmpOp::kGe:
          if (!c->desc.has_lower_bound) {
            c->desc.has_lower_bound = true;
            c->desc.lower_strict = cmp.op == CmpOp::kGt;
            c->desc.lower_bound_param = cmp.rhs_param;
            folded = true;
          }
          break;
        case CmpOp::kEq:
          if (!c->desc.has_lower_bound && !c->desc.has_upper_bound) {
            c->desc.has_lower_bound = true;
            c->desc.lower_strict = false;
            c->desc.lower_bound_param = cmp.rhs_param;
            c->desc.has_upper_bound = true;
            c->desc.upper_strict = false;
            c->desc.upper_bound_param = cmp.rhs_param;
            folded = true;
          }
          break;
        default:
          break;
      }
      if (folded) {
        c->desc.bound_param_double = sort.source != SortSource::kNbrId &&
                                     sort.key != kInvalidPropKey &&
                                     graph_->catalog().property(sort.key).type ==
                                         ValueType::kDouble;
        c->covered_conjuncts.push_back(static_cast<int>(qc));
        c->est_len *= 0.3;  // rough range selectivity, as for literal bounds
        c->est_out *= 0.3;
      }
    }
  };

  // Candidate lists for extending along query edge `qe_id` from bound set
  // `mask` to `target`. Includes vertex-bound lists and, when a bound
  // query edge shares the pivot vertex and a cross-edge predicate exists,
  // edge-bound (EP) lists.
  auto candidates_for_edge = [&](uint32_t mask, int qe_id, int target,
                                 const SortCriterion* required_sort) {
    std::vector<CandidateList> all;
    const QueryEdge& qe = query.edge(qe_id);
    int pivot = qe.from == target ? qe.to : qe.from;
    Direction dir = qe.from == pivot ? Direction::kFwd : Direction::kBwd;
    label_t nbr_label = query.vertex(target).label;

    vertex_id_t target_bound = query.vertex(target).bound;
    ExtensionPredicate ext = build_ext_pred(qe_id, target, -1);
    for (CandidateList& c : matcher.FindVertexLists(dir, qe.label, nbr_label, ext,
                                                    required_sort)) {
      c.desc.bound_var = pivot;
      c.desc.target_vertex_var = target;
      c.desc.target_edge_var = qe_id;
      c.desc.target_bound = target_bound;
      if (target_bound != kInvalidVertex) c.est_out = std::min(c.est_out, 1.0);
      fold_param_range_bounds(&c);
      all.push_back(std::move(c));
    }
    // EP candidates: every bound query edge incident to the pivot.
    for (int eb_id = 0; eb_id < query.num_edges(); ++eb_id) {
      if (eb_id == qe_id) continue;
      const QueryEdge& eb = query.edge(eb_id);
      bool bound = ((mask >> eb.from) & 1) && ((mask >> eb.to) & 1);
      if (!bound) continue;
      if (eb.from != pivot && eb.to != pivot) continue;
      EpKind kind;
      if (eb.to == pivot) {
        kind = dir == Direction::kFwd ? EpKind::kDstFwd : EpKind::kDstBwd;
      } else {
        kind = dir == Direction::kFwd ? EpKind::kSrcBwd : EpKind::kSrcFwd;
      }
      ExtensionPredicate ep_ext = build_ext_pred(qe_id, target, eb_id);
      for (CandidateList& c : matcher.FindEdgeLists(kind, qe.label, nbr_label, ep_ext,
                                                    required_sort)) {
        c.desc.bound_var = eb_id;
        c.desc.target_vertex_var = target;
        c.desc.target_edge_var = qe_id;
        c.desc.target_bound = target_bound;
        if (target_bound != kInvalidVertex) c.est_out = std::min(c.est_out, 1.0);
        fold_param_range_bounds(&c);
        all.push_back(std::move(c));
      }
    }
    return all;
  };

  auto try_update = [&](uint32_t now, DpEntry candidate) {
    DpEntry& slot = table[now];
    if (!slot.valid || candidate.icost < slot.icost ||
        (candidate.icost == slot.icost && candidate.card < slot.card)) {
      slot = std::move(candidate);
    }
  };

  // Subset DP in order of increasing popcount (masks increase with
  // popcount only within equal-size groups, so iterate by size).
  std::vector<std::vector<uint32_t>> by_size(n + 1);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    by_size[__builtin_popcount(mask)].push_back(mask);
  }

  for (int size = 1; size < n; ++size) {
    for (uint32_t mask : by_size[size]) {
      const DpEntry base = table[mask];
      if (!base.valid) continue;

      // --- E/I extensions by one vertex ---
      for (int target = 0; target < n; ++target) {
        if ((mask >> target) & 1) continue;
        std::vector<int> conn;
        for (int qe_id = 0; qe_id < query.num_edges(); ++qe_id) {
          const QueryEdge& qe = query.edge(qe_id);
          int other = -1;
          if (qe.from == target) other = qe.to;
          if (qe.to == target) other = qe.from;
          if (other < 0 || other == target) continue;
          if ((mask >> other) & 1) conn.push_back(qe_id);
        }
        if (conn.empty()) continue;
        uint32_t now = mask | (1u << target);

        SortCriterion nbr_id_sort{SortSource::kNbrId, kInvalidPropKey};
        const SortCriterion* required = conn.size() >= 2 ? &nbr_id_sort : nullptr;
        std::vector<ListDescriptor> lists;
        std::vector<int> covered;
        double sum_len = 0.0;
        double prod_len = 1.0;
        bool ok = true;
        bool verify_fallback = false;
        auto gather = [&](const SortCriterion* sort_requirement) {
          lists.clear();
          covered.clear();
          sum_len = 0.0;
          prod_len = 1.0;
          ok = true;
          for (int qe_id : conn) {
            std::vector<CandidateList> cands =
                candidates_for_edge(mask, qe_id, target, sort_requirement);
            if (cands.empty()) {
              ok = false;
              return;
            }
            size_t best = 0;
            for (size_t i = 1; i < cands.size(); ++i) {
              if (cands[i].est_len < cands[best].est_len) best = i;
            }
            lists.push_back(cands[best].desc);
            covered.insert(covered.end(), cands[best].covered_conjuncts.begin(),
                           cands[best].covered_conjuncts.end());
            sum_len += cands[best].est_len;
            prod_len *= std::max(cands[best].est_out, 1e-9);
          }
        };
        gather(required);
        if (!ok && conn.size() >= 2) {
          // No sorted lists for an intersection (e.g. the Ds config with
          // an unlabelled target): fall back to extend + verify.
          gather(nullptr);
          verify_fallback = ok;
        }
        if (!ok) continue;

        DpEntry entry = base;
        entry.icost += base.card * sum_len;
        double est_out;
        if (conn.size() == 1) {
          est_out = base.card * std::max(prod_len, 1e-9);
        } else {
          double nv = std::max<double>(1.0, static_cast<double>(stats_.num_vertices));
          est_out = base.card * prod_len /
                    std::pow(nv, static_cast<double>(conn.size() - 1));
        }
        PlanStep step;
        step.kind = conn.size() == 1
                        ? PlanStep::Kind::kExtend
                        : (verify_fallback ? PlanStep::Kind::kExtendVerify
                                           : PlanStep::Kind::kExtendIntersect);
        step.lists = std::move(lists);
        step.target_var = target;
        step.residual = residual_for(mask, now, covered);
        est_out *= EstimateCombinedSelectivity(*graph_, step.residual);
        entry.card = std::max(est_out, 1e-9);
        entry.steps.push_back(std::move(step));
        try_update(now, std::move(entry));
      }

      // --- MULTI-EXTEND extensions by a group of vertices related by a
      // shared-property equality (Section IV-A). ---
      // Eligible member: unbound, exactly one edge into `mask`.
      std::vector<int> eligible;
      std::vector<int> conn_edge_of(n, -1);
      for (int v = 0; v < n; ++v) {
        if ((mask >> v) & 1) continue;
        int count = 0;
        int the_edge = -1;
        for (int qe_id = 0; qe_id < query.num_edges(); ++qe_id) {
          const QueryEdge& qe = query.edge(qe_id);
          int other = -1;
          if (qe.from == v) other = qe.to;
          if (qe.to == v) other = qe.from;
          if (other < 0) continue;
          if ((mask >> other) & 1) {
            ++count;
            the_edge = qe_id;
          } else if (other != v && !((mask >> other) & 1) && other != v) {
            // edge to another unbound vertex: fine, handled later.
          }
        }
        if (count == 1) {
          eligible.push_back(v);
          conn_edge_of[v] = the_edge;
        }
      }
      // Group eligible vertices by property-equality components. The
      // union-find runs over ALL query vertices so chained equalities
      // (a1.city = a2.city = a3.city, MF2) transitively connect
      // eligible members even when the middle vertex is already bound.
      for (prop_key_t key = 0; key < graph_->catalog().num_properties(); ++key) {
        std::vector<int> comp(n);
        for (int v = 0; v < n; ++v) comp[v] = v;
        auto find = [&](int v) {
          while (comp[v] != v) v = comp[v] = comp[comp[v]];
          return v;
        };
        bool any_link = false;
        for (const QueryComparison& cmp : conjuncts) {
          if (cmp.rhs_is_const || cmp.op != CmpOp::kEq) continue;
          if (cmp.lhs.is_edge || cmp.rhs_ref.is_edge) continue;
          if (cmp.lhs.key != key || cmp.rhs_ref.key != key || cmp.rhs_addend != 0) continue;
          comp[find(cmp.lhs.var)] = find(cmp.rhs_ref.var);
          any_link = true;
        }
        if (!any_link) continue;
        // Collect eligible members per component; components of >= 2
        // eligible members can merge-join on the shared key.
        std::unordered_map<int, std::vector<int>> groups;
        for (int v : eligible) groups[find(v)].push_back(v);
        for (auto& [root, members] : groups) {
          (void)root;
          if (members.size() < 2) continue;
          SortCriterion prop_sort{SortSource::kNbrProp, key};
          std::vector<ListDescriptor> lists;
          std::vector<int> covered;
          double sum_len = 0.0;
          double prod_len = 1.0;
          bool ok = true;
          uint32_t now = mask;
          for (int v : members) {
            std::vector<CandidateList> cands =
                candidates_for_edge(mask, conn_edge_of[v], v, &prop_sort);
            if (cands.empty()) {
              ok = false;
              break;
            }
            size_t best = 0;
            for (size_t i = 1; i < cands.size(); ++i) {
              if (cands[i].est_len < cands[best].est_len) best = i;
            }
            lists.push_back(cands[best].desc);
            covered.insert(covered.end(), cands[best].covered_conjuncts.begin(),
                           cands[best].covered_conjuncts.end());
            sum_len += cands[best].est_len;
            prod_len *= std::max(cands[best].est_out, 1e-9);
            now |= 1u << v;
          }
          if (!ok) continue;
          // The merge guarantees the pairwise equalities within the
          // group on `key`; mark those conjuncts covered.
          for (size_t c = 0; c < conjuncts.size(); ++c) {
            const QueryComparison& cmp = conjuncts[c];
            if (cmp.rhs_is_const || cmp.op != CmpOp::kEq) continue;
            if (cmp.lhs.is_edge || cmp.rhs_ref.is_edge) continue;
            if (cmp.lhs.key != key || cmp.rhs_ref.key != key) continue;
            bool lhs_in = std::find(members.begin(), members.end(), cmp.lhs.var) != members.end();
            bool rhs_in =
                std::find(members.begin(), members.end(), cmp.rhs_ref.var) != members.end();
            if (lhs_in && rhs_in) covered.push_back(static_cast<int>(c));
          }

          DpEntry entry = base;
          entry.icost += base.card * sum_len;
          const PropertyMeta& meta = graph_->catalog().property(key);
          double domain = meta.type == ValueType::kCategory
                              ? static_cast<double>(meta.domain_size)
                              : 1000.0;
          double est_out = base.card * prod_len /
                           std::pow(domain, static_cast<double>(members.size() - 1));
          PlanStep step;
          step.kind = PlanStep::Kind::kMultiExtend;
          step.lists = std::move(lists);
          step.residual = residual_for(mask, now, covered);
          est_out *= EstimateCombinedSelectivity(*graph_, step.residual);
          entry.card = std::max(est_out, 1e-9);
          entry.steps.push_back(std::move(step));
          try_update(now, std::move(entry));
        }
      }
    }
  }

  const DpEntry& winner = table[full];
  if (!winner.valid) return nullptr;
  last_steps_ = winner.steps;
  last_cost_ = winner.icost;

  PlanBuilder builder(graph_, &query);
  for (const PlanStep& step : winner.steps) {
    switch (step.kind) {
      case PlanStep::Kind::kScan:
        builder.Scan(step.scan_var, step.residual);
        break;
      case PlanStep::Kind::kExtend:
        builder.Extend(step.lists.front(), step.residual);
        break;
      case PlanStep::Kind::kExtendVerify: {
        // Residuals run on the last probe, when every edge is bound.
        builder.Extend(step.lists.front(), {});
        for (size_t i = 1; i < step.lists.size(); ++i) {
          bool last = i + 1 == step.lists.size();
          builder.Extend(step.lists[i], last ? step.residual : std::vector<QueryComparison>{},
                         /*closing=*/true);
        }
        if (step.lists.size() == 1) builder.Filter(step.residual);
        break;
      }
      case PlanStep::Kind::kExtendIntersect:
        builder.ExtendIntersect(step.lists, step.target_var, step.residual);
        break;
      case PlanStep::Kind::kMultiExtend:
        builder.MultiExtend(step.lists, step.residual);
        break;
    }
  }
  return sink != nullptr ? builder.BuildWithSink(std::move(sink)) : builder.Build();
}

std::string DpOptimizer::DescribeSteps(const QueryGraph& query) const {
  std::string out;
  const Catalog& catalog = graph_->catalog();
  for (const PlanStep& step : last_steps_) {
    switch (step.kind) {
      case PlanStep::Kind::kScan:
        out += "Scan " + query.vertex(step.scan_var).name;
        break;
      case PlanStep::Kind::kExtend:
        out += "Extend " + step.lists.front().Describe(catalog, query);
        break;
      case PlanStep::Kind::kExtendVerify:
        out += "Extend+Verify -> " + query.vertex(step.target_var).name + " [";
        for (size_t i = 0; i < step.lists.size(); ++i) {
          if (i > 0) out += " ? ";
          out += step.lists[i].Describe(catalog, query);
        }
        out += "]";
        break;
      case PlanStep::Kind::kExtendIntersect:
        out += "Extend/Intersect -> " + query.vertex(step.target_var).name + " [";
        for (size_t i = 0; i < step.lists.size(); ++i) {
          if (i > 0) out += " n ";
          out += step.lists[i].Describe(catalog, query);
        }
        out += "]";
        break;
      case PlanStep::Kind::kMultiExtend:
        out += "Multi-Extend [";
        for (size_t i = 0; i < step.lists.size(); ++i) {
          if (i > 0) out += " n ";
          out += step.lists[i].Describe(catalog, query);
        }
        out += "]";
        break;
    }
    if (!step.residual.empty()) {
      out += " +" + std::to_string(step.residual.size()) + " residual";
    }
    out += "\n";
  }
  return out;
}

}  // namespace aplus
