#ifndef APLUS_OPTIMIZER_DP_OPTIMIZER_H_
#define APLUS_OPTIMIZER_DP_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "index/index_store.h"
#include "optimizer/catalog_stats.h"
#include "optimizer/index_matcher.h"
#include "query/plan.h"
#include "query/query_graph.h"

namespace aplus {

// One logical step of an enumerated plan; the optimizer materializes the
// winning step sequence into a physical operator pipeline at the end.
struct PlanStep {
  // kExtendVerify: binary-join fallback when no (effectively) sorted
  // lists exist for a multi-edge extension — extend along lists[0], then
  // verify the remaining query edges by membership probes (closing
  // extends) over lists[1..].
  enum class Kind { kScan, kExtend, kExtendIntersect, kExtendVerify, kMultiExtend };

  Kind kind = Kind::kScan;
  int scan_var = -1;
  std::vector<ListDescriptor> lists;
  int target_var = -1;  // kExtend / kExtendIntersect
  std::vector<QueryComparison> residual;
};

// The DP join optimizer of Section IV-A: enumerates sub-queries one query
// vertex at a time, considering (i) E/I extensions over every index the
// INDEX STORE can supply with subsuming predicates, and (ii) MULTI-EXTEND
// extensions that bind several query vertices at once by intersecting
// lists sorted on a shared non-ID property (including edge-partitioned
// lists). The cost metric is i-cost: the total estimated size of the
// adjacency lists a plan's E/I and MULTI-EXTEND operators read.
class DpOptimizer {
 public:
  DpOptimizer(const Graph* graph, const IndexStore* store);

  // Returns the lowest-i-cost plan, or nullptr if the query graph is
  // disconnected / unsupported. `sink` replaces the default counting
  // SinkOp as the pipeline's terminal operator when non-null (the
  // serving layer passes a ProjectSinkOp).
  std::unique_ptr<Plan> Optimize(const QueryGraph& query,
                                 std::unique_ptr<Operator> sink = nullptr);

  // Introspection for tests and the plan printer.
  const std::vector<PlanStep>& last_steps() const { return last_steps_; }
  double last_cost() const { return last_cost_; }
  std::string DescribeSteps(const QueryGraph& query) const;

 private:
  const Graph* graph_;
  const IndexStore* store_;
  GraphStats stats_;
  std::vector<PlanStep> last_steps_;
  double last_cost_ = 0.0;
};

// Rough selectivity of one residual conjunct, used by cardinality
// estimation.
double EstimateSelectivity(const Graph& graph, const QueryComparison& cmp);

// Combined selectivity of a conjunct set. Vertex-ID range conjuncts on
// the same variable are intersected exactly (a window [lo, hi) has
// selectivity (hi - lo) / |V|, not the product of its two bounds);
// everything else multiplies independently.
double EstimateCombinedSelectivity(const Graph& graph,
                                   const std::vector<QueryComparison>& conjuncts);

}  // namespace aplus

#endif  // APLUS_OPTIMIZER_DP_OPTIMIZER_H_
