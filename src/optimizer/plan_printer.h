#ifndef APLUS_OPTIMIZER_PLAN_PRINTER_H_
#define APLUS_OPTIMIZER_PLAN_PRINTER_H_

#include <string>
#include <vector>

#include "optimizer/dp_optimizer.h"

namespace aplus {

// Renders an optimized step sequence as a bottom-up plan tree in the
// style of Figure 6 (Scan at the bottom, each operator above its input).
// `sink_chain` (ProjectSinkOp::ChainLines: projection first, each sink
// stage after it) renders above the operator tree, most-downstream stage
// (LIMIT / ORDER BY) outermost, so QueryOutcome::plan explains the full
// result path of aggregate plans.
std::string RenderPlanTree(const QueryGraph& query, const Catalog& catalog,
                           const std::vector<PlanStep>& steps,
                           const std::vector<std::string>& sink_chain = {});

}  // namespace aplus

#endif  // APLUS_OPTIMIZER_PLAN_PRINTER_H_
