#ifndef APLUS_OPTIMIZER_PLAN_PRINTER_H_
#define APLUS_OPTIMIZER_PLAN_PRINTER_H_

#include <string>
#include <vector>

#include "optimizer/dp_optimizer.h"

namespace aplus {

// Renders an optimized step sequence as a bottom-up plan tree in the
// style of Figure 6 (Scan at the bottom, each operator above its input).
std::string RenderPlanTree(const QueryGraph& query, const Catalog& catalog,
                           const std::vector<PlanStep>& steps);

}  // namespace aplus

#endif  // APLUS_OPTIMIZER_PLAN_PRINTER_H_
