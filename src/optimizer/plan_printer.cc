#include "optimizer/plan_printer.h"

namespace aplus {

std::string RenderPlanTree(const QueryGraph& query, const Catalog& catalog,
                           const std::vector<PlanStep>& steps,
                           const std::vector<std::string>& sink_chain) {
  // Bottom-up: the scan prints last, each subsequent operator above it.
  std::vector<std::string> lines;
  for (const PlanStep& step : steps) {
    std::string line;
    switch (step.kind) {
      case PlanStep::Kind::kScan: {
        const QueryVertex& qv = query.vertex(step.scan_var);
        line = "SCAN " + qv.name;
        if (qv.bound_param >= 0) {
          line += " (ID=$param)";  // pinned by a prepared-query parameter
        } else if (qv.bound != kInvalidVertex) {
          line += " (ID=" + std::to_string(qv.bound) + ")";
        }
        break;
      }
      case PlanStep::Kind::kExtend:
        line = "EXTEND " + step.lists.front().Describe(catalog, query);
        break;
      case PlanStep::Kind::kExtendVerify: {
        line = "EXTEND+VERIFY ";
        for (size_t i = 0; i < step.lists.size(); ++i) {
          if (i > 0) line += " ? ";
          line += step.lists[i].Describe(catalog, query);
        }
        break;
      }
      case PlanStep::Kind::kExtendIntersect: {
        line = "EXTEND/INTERSECT ";
        for (size_t i = 0; i < step.lists.size(); ++i) {
          if (i > 0) line += " \xE2\x88\xA9 ";  // set-intersection glyph
          line += step.lists[i].Describe(catalog, query);
        }
        break;
      }
      case PlanStep::Kind::kMultiExtend: {
        line = "MULTI-EXTEND ";
        for (size_t i = 0; i < step.lists.size(); ++i) {
          if (i > 0) line += " \xE2\x88\xA9 ";
          line += step.lists[i].Describe(catalog, query);
        }
        break;
      }
    }
    if (!step.residual.empty()) {
      line += "  [FILTER x" + std::to_string(step.residual.size()) + "]";
    }
    lines.push_back(std::move(line));
  }
  // The sink chain consumes the operator tree's output: each entry is one
  // step further downstream, so it stacks on top in chain order.
  for (const std::string& stage : sink_chain) lines.push_back(stage);
  std::string out;
  for (size_t i = lines.size(); i-- > 0;) {
    size_t depth = lines.size() - 1 - i;
    out += std::string(2 * depth, ' ');
    out += lines[i];
    out += "\n";
  }
  return out;
}

}  // namespace aplus
