#ifndef APLUS_OPTIMIZER_INDEX_ADVISOR_H_
#define APLUS_OPTIMIZER_INDEX_ADVISOR_H_

#include <string>
#include <vector>

#include "index/index_config.h"
#include "query/query_graph.h"

namespace aplus {

// A candidate index tuning derived from a workload (Section IV-D): the
// advisor enumerates the 1-hop sub-queries of each query, proposing
// equality predicates on categorical properties as partitioning criteria
// and non-equality predicates as sorting criteria. Ranking/selection
// under a space budget ("what-if" analysis) is future work in the paper
// and out of scope here too; the advisor reports the candidate space.
struct IndexCandidate {
  enum class Kind { kPartitionCriterion, kSortCriterion, kOneHopViewPredicate };
  Kind kind = Kind::kPartitionCriterion;
  // For partition/sort candidates.
  bool on_edge = true;  // eadj.* vs vnbr.*
  prop_key_t key = kInvalidPropKey;
  // For view-predicate candidates: a printable description.
  std::string description;
  // How many conjuncts across the workload motivated this candidate.
  int support = 0;
};

std::vector<IndexCandidate> EnumerateIndexCandidates(const Graph& graph,
                                                     const std::vector<const QueryGraph*>& workload);

}  // namespace aplus

#endif  // APLUS_OPTIMIZER_INDEX_ADVISOR_H_
