#include "optimizer/index_matcher.h"

#include "util/logging.h"

namespace aplus {

namespace {

// If the candidate list is sorted on a property and the extension
// predicate contains a constant range comparison on that property, turn
// it into a binary-searchable bound on the descriptor (Section III-A2 /
// V-C1: sorted lists replace per-edge predicate evaluation). Marks the
// consumed conjuncts as covered. Only valid on innermost sublists, where
// the sort order actually holds.
void ApplySortKeyBounds(const IndexConfig& config, const ExtensionPredicate& ext_pred,
                        CandidateList* candidate) {
  if (config.sorts.empty()) return;
  const SortCriterion& sort = config.sorts.front();
  PropSite site;
  prop_key_t key = sort.key;
  bool is_id = false;
  switch (sort.source) {
    case SortSource::kEdgeProp:
      site = PropSite::kAdjEdge;
      break;
    case SortSource::kNbrProp:
      site = PropSite::kNbrVertex;
      break;
    case SortSource::kNbrId:
      site = PropSite::kNbrVertex;
      is_id = true;
      break;
    default:
      return;
  }
  const auto& conjuncts = ext_pred.pred.conjuncts();
  for (size_t q = 0; q < conjuncts.size(); ++q) {
    const Comparison& cmp = conjuncts[q];
    if (!cmp.rhs_is_const || cmp.lhs.site != site || cmp.lhs.is_label) continue;
    if (is_id != cmp.lhs.is_id) continue;
    if (!is_id && cmp.lhs.key != key) continue;
    if (cmp.rhs_const.is_null()) continue;
    int64_t bound;
    switch (cmp.rhs_const.type()) {
      case ValueType::kInt64:
      case ValueType::kCategory:
      case ValueType::kBool:
        bound = cmp.rhs_const.AsInt64();
        break;
      case ValueType::kDouble:
        bound = EncodeDoubleSortKey(cmp.rhs_const.AsDouble());
        break;
      default:
        continue;
    }
    bool consumed = true;
    switch (cmp.op) {
      case CmpOp::kLt:
        candidate->desc.has_upper_bound = true;
        candidate->desc.upper_bound = bound;
        candidate->desc.upper_strict = true;
        break;
      case CmpOp::kLe:
        candidate->desc.has_upper_bound = true;
        candidate->desc.upper_bound = bound;
        candidate->desc.upper_strict = false;
        break;
      case CmpOp::kGt:
        candidate->desc.has_lower_bound = true;
        candidate->desc.lower_bound = bound;
        candidate->desc.lower_strict = true;
        break;
      case CmpOp::kGe:
        candidate->desc.has_lower_bound = true;
        candidate->desc.lower_bound = bound;
        candidate->desc.lower_strict = false;
        break;
      case CmpOp::kEq:
        candidate->desc.has_lower_bound = true;
        candidate->desc.lower_bound = bound;
        candidate->desc.lower_strict = false;
        candidate->desc.has_upper_bound = true;
        candidate->desc.upper_bound = bound;
        candidate->desc.upper_strict = false;
        break;
      default:
        consumed = false;
        break;
    }
    if (consumed) {
      candidate->covered_conjuncts.push_back(ext_pred.query_conjunct_ids[q]);
      candidate->est_len *= 0.3;  // rough range selectivity
      candidate->est_out *= 0.3;
    }
  }
}

// Conjuncts of ext_pred guaranteed by the index view predicate, i.e.
// implied back by some index conjunct.
void CollectGuaranteed(const Predicate& index_pred, const ExtensionPredicate& ext_pred,
                       std::vector<int>* covered) {
  const auto& conjuncts = ext_pred.pred.conjuncts();
  for (size_t q = 0; q < conjuncts.size(); ++q) {
    for (const Comparison& ic : index_pred.conjuncts()) {
      if (ConjunctImplies(ic, conjuncts[q])) {
        covered->push_back(ext_pred.query_conjunct_ids[q]);
        break;
      }
    }
  }
}

// Sort compatibility outcome for one candidate.
struct SortResolution {
  bool usable = false;
  bool nbr_sorted = false;
  bool label_pinned = false;  // Ds case: leading nbr-label key pinned
  bool allow_range_bounds = false;
};

// Determines whether the list (given the bound category prefix) can
// serve the required sort, and whether it is effectively neighbour-ID
// sorted. Sort orders only hold within innermost sublists.
SortResolution ResolveSort(const IndexConfig& config, bool innermost, label_t nbr_label,
                           const SortCriterion* required_sort) {
  SortResolution out;
  if (innermost && !config.sorts.empty()) {
    if (config.sorts.front().source == SortSource::kNbrId) {
      out.nbr_sorted = true;
    } else if (config.sorts.front().source == SortSource::kNbrLabel &&
               nbr_label != kInvalidLabel && config.sorts.size() >= 2 &&
               config.sorts[1].source == SortSource::kNbrId) {
      // The Ds configuration: pinning the neighbour label with an
      // equality bound leaves a neighbour-ID-sorted run ("binary
      // searches inside lists", Section V-B).
      out.nbr_sorted = true;
      out.label_pinned = true;
    }
  }
  if (required_sort == nullptr) {
    out.usable = true;
    out.allow_range_bounds = innermost && !out.label_pinned;
    return out;
  }
  if (required_sort->source == SortSource::kNbrId) {
    out.usable = out.nbr_sorted;
    out.allow_range_bounds = false;  // bounds would clash with the pin
    return out;
  }
  // Property-sorted requirement (MULTI-EXTEND): first criterion must
  // match exactly on an innermost sublist.
  out.usable = innermost && !config.sorts.empty() && config.sorts.front() == *required_sort;
  out.allow_range_bounds = false;
  return out;
}

}  // namespace

size_t IndexMatcher::BindPartitionPrefix(const IndexConfig& config, label_t edge_label,
                                         label_t nbr_label, const ExtensionPredicate& ext_pred,
                                         std::vector<category_t>* cats,
                                         std::vector<int>* consumed) const {
  const auto& conjuncts = ext_pred.pred.conjuncts();
  for (const PartitionCriterion& criterion : config.partitions) {
    switch (criterion.source) {
      case PartitionSource::kEdgeLabel:
        if (edge_label == kInvalidLabel) return cats->size();
        cats->push_back(edge_label);
        break;
      case PartitionSource::kNbrLabel:
        if (nbr_label == kInvalidLabel) return cats->size();
        cats->push_back(nbr_label);
        break;
      case PartitionSource::kEdgeProp:
      case PartitionSource::kNbrProp: {
        PropSite site = criterion.source == PartitionSource::kEdgeProp ? PropSite::kAdjEdge
                                                                       : PropSite::kNbrVertex;
        int found = -1;
        for (size_t q = 0; q < conjuncts.size(); ++q) {
          const Comparison& cmp = conjuncts[q];
          if (cmp.op == CmpOp::kEq && cmp.rhs_is_const && cmp.lhs.site == site &&
              !cmp.lhs.is_label && !cmp.lhs.is_id && cmp.lhs.key == criterion.key &&
              !cmp.rhs_const.is_null()) {
            found = static_cast<int>(q);
            break;
          }
        }
        if (found < 0) return cats->size();
        cats->push_back(static_cast<category_t>(conjuncts[found].rhs_const.AsInt64()));
        consumed->push_back(found);
        break;
      }
    }
  }
  return cats->size();
}

std::vector<CandidateList> IndexMatcher::FindVertexLists(Direction dir, label_t edge_label,
                                                         label_t nbr_label,
                                                         const ExtensionPredicate& ext_pred,
                                                         const SortCriterion* required_sort) const {
  std::vector<CandidateList> candidates;
  const Catalog& catalog = store_->graph()->catalog();

  auto consider = [&](ListDescriptor::Source source, const PrimaryIndex* primary,
                      const VpIndex* vp) {
    const IndexConfig& config = source == ListDescriptor::Source::kVp ? vp->config()
                                                                      : primary->config();
    // View-predicate subsumption (primary indexes have an empty view).
    const Predicate empty;
    const Predicate& index_pred =
        source == ListDescriptor::Source::kVp ? vp->view().pred : empty;
    if (!PredicateSubsumes(index_pred, ext_pred.pred, nullptr)) return;

    CandidateList candidate;
    candidate.desc.source = source;
    candidate.desc.primary = primary;
    candidate.desc.vp = vp;

    std::vector<int> consumed;
    BindPartitionPrefix(config, edge_label, nbr_label, ext_pred, &candidate.desc.cats,
                        &consumed);
    bool innermost = candidate.desc.cats.size() == config.partitions.size();

    SortResolution sort = ResolveSort(config, innermost, nbr_label, required_sort);
    if (!sort.usable) return;
    candidate.desc.nbr_sorted = sort.nbr_sorted;
    if (sort.label_pinned) {
      candidate.desc.has_lower_bound = true;
      candidate.desc.lower_bound = nbr_label;
      candidate.desc.lower_strict = false;
      candidate.desc.has_upper_bound = true;
      candidate.desc.upper_bound = nbr_label;
      candidate.desc.upper_strict = false;
    }

    // Which label filters remain for the operator to apply.
    bool edge_label_covered = false;
    bool nbr_label_covered = sort.label_pinned;
    for (size_t i = 0; i < candidate.desc.cats.size(); ++i) {
      if (config.partitions[i].source == PartitionSource::kEdgeLabel) edge_label_covered = true;
      if (config.partitions[i].source == PartitionSource::kNbrLabel) nbr_label_covered = true;
    }
    if (!edge_label_covered && edge_label != kInvalidLabel) {
      candidate.desc.edge_label_filter = edge_label;
    }
    if (!nbr_label_covered && nbr_label != kInvalidLabel) {
      candidate.desc.target_vertex_label = nbr_label;
    }

    // Covered conjuncts: those consumed by partition binding plus those
    // guaranteed by the view predicate.
    for (int pos : consumed) {
      candidate.covered_conjuncts.push_back(ext_pred.query_conjunct_ids[pos]);
    }
    CollectGuaranteed(index_pred, ext_pred, &candidate.covered_conjuncts);

    // Estimated list length.
    double est = stats_->AvgListLen(edge_label_covered || edge_label == kInvalidLabel
                                        ? edge_label
                                        : kInvalidLabel);
    for (size_t i = 0; i < candidate.desc.cats.size(); ++i) {
      const PartitionCriterion& criterion = config.partitions[i];
      if (criterion.source == PartitionSource::kNbrLabel) {
        est *= stats_->VertexLabelFraction(nbr_label);
      } else if (criterion.source == PartitionSource::kEdgeProp ||
                 criterion.source == PartitionSource::kNbrProp) {
        uint32_t fanout = PartitionFanout(catalog, criterion);
        if (fanout > 1) est /= static_cast<double>(fanout - 1);
      }
    }
    if (sort.label_pinned) est *= stats_->VertexLabelFraction(nbr_label);
    if (source == ListDescriptor::Source::kVp) {
      uint64_t base = primary->num_edges_indexed();
      if (base > 0 && !vp->view().pred.IsTrue()) {
        est *= static_cast<double>(vp->num_edges_indexed()) / static_cast<double>(base);
      }
    }
    candidate.est_len = est;
    // Label filters applied while consuming entries reduce the output
    // but not the list-read cost.
    double out = est;
    if (candidate.desc.target_vertex_label != kInvalidLabel) {
      out *= stats_->VertexLabelFraction(nbr_label);
    }
    if (candidate.desc.edge_label_filter != kInvalidLabel && stats_->num_edges > 0) {
      out *= stats_->AvgListLen(edge_label) / std::max(stats_->AvgListLen(kInvalidLabel), 1e-9);
    }
    candidate.est_out = out;
    candidate.allow_param_range_bounds = sort.allow_range_bounds;
    if (sort.allow_range_bounds) ApplySortKeyBounds(config, ext_pred, &candidate);
    candidates.push_back(std::move(candidate));
  };

  const PrimaryIndex* primary = store_->primary(dir);
  consider(ListDescriptor::Source::kPrimary, primary, nullptr);
  for (const auto& vp : store_->vp_indexes()) {
    if (vp->direction() != dir) continue;
    consider(ListDescriptor::Source::kVp, vp->primary(), vp.get());
  }
  return candidates;
}

std::vector<CandidateList> IndexMatcher::FindEdgeLists(EpKind kind, label_t edge_label,
                                                       label_t nbr_label,
                                                       const ExtensionPredicate& ext_pred,
                                                       const SortCriterion* required_sort) const {
  std::vector<CandidateList> candidates;
  const Catalog& catalog = store_->graph()->catalog();
  for (const auto& ep : store_->ep_indexes()) {
    if (ep->kind() != kind) continue;
    // Partially materialized EP indexes cannot serve sorted
    // intersections: unmaterialized lists are derived at run time in
    // base-list order.
    if (required_sort != nullptr && !ep->fully_materialized()) continue;
    const IndexConfig& config = ep->config();
    if (!PredicateSubsumes(ep->view().pred, ext_pred.pred, nullptr)) continue;

    CandidateList candidate;
    candidate.desc.source = ListDescriptor::Source::kEp;
    candidate.desc.ep = ep.get();
    std::vector<int> consumed;
    BindPartitionPrefix(config, edge_label, nbr_label, ext_pred, &candidate.desc.cats,
                        &consumed);
    bool innermost = candidate.desc.cats.size() == config.partitions.size();
    SortResolution sort = ResolveSort(config, innermost, nbr_label, required_sort);
    if (!sort.usable) continue;
    candidate.desc.nbr_sorted = sort.nbr_sorted;
    if (sort.label_pinned) {
      candidate.desc.has_lower_bound = true;
      candidate.desc.lower_bound = nbr_label;
      candidate.desc.lower_strict = false;
      candidate.desc.has_upper_bound = true;
      candidate.desc.upper_bound = nbr_label;
      candidate.desc.upper_strict = false;
    }
    bool edge_label_covered = false;
    bool nbr_label_covered = sort.label_pinned;
    for (size_t i = 0; i < candidate.desc.cats.size(); ++i) {
      if (config.partitions[i].source == PartitionSource::kEdgeLabel) edge_label_covered = true;
      if (config.partitions[i].source == PartitionSource::kNbrLabel) nbr_label_covered = true;
    }
    if (!edge_label_covered && edge_label != kInvalidLabel) {
      candidate.desc.edge_label_filter = edge_label;
    }
    if (!nbr_label_covered && nbr_label != kInvalidLabel) {
      candidate.desc.target_vertex_label = nbr_label;
    }
    for (int pos : consumed) {
      candidate.covered_conjuncts.push_back(ext_pred.query_conjunct_ids[pos]);
    }
    CollectGuaranteed(ep->view().pred, ext_pred, &candidate.covered_conjuncts);

    double est = stats_->num_edges == 0
                     ? 0.0
                     : static_cast<double>(ep->num_edges_indexed()) /
                           static_cast<double>(stats_->num_edges);
    for (size_t i = 0; i < candidate.desc.cats.size(); ++i) {
      const PartitionCriterion& criterion = config.partitions[i];
      uint32_t fanout = PartitionFanout(catalog, criterion);
      if (fanout > 1) est /= static_cast<double>(fanout);
    }
    candidate.est_len = est;
    double out = est;
    if (candidate.desc.target_vertex_label != kInvalidLabel) {
      out *= stats_->VertexLabelFraction(nbr_label);
    }
    candidate.est_out = out;
    candidate.allow_param_range_bounds = sort.allow_range_bounds;
    if (sort.allow_range_bounds) ApplySortKeyBounds(config, ext_pred, &candidate);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

}  // namespace aplus
