// Quickstart: build the paper's Figure 1 financial graph, tune the
// primary A+ index with the DDL from Section III, create the secondary
// indexes of Examples 6 and 7, run the running-example queries, and
// serve a prepared parameterized query through the Session API.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "datagen/example_graph.h"

using namespace aplus;  // NOLINT: example brevity

int main() {
  // 1. Build the Figure 1 graph: 5 Account + 3 Customer vertices, 5 Owns
  //    edges and 20 Wire / Dir-Deposit transfers with amount, currency,
  //    and date properties.
  ExampleGraph ex = BuildExampleGraph();
  label_t account = ex.account_label;
  label_t customer = ex.customer_label;
  label_t owns = ex.owns_label;
  label_t wire = ex.wire_label;
  prop_key_t currency = ex.currency_key;
  Database db(std::move(ex.graph));
  db.graph().catalog().RegisterCategoryValue(currency, "USD");
  db.graph().catalog().RegisterCategoryValue(currency, "EUR");
  db.graph().catalog().RegisterCategoryValue(currency, "GBP");

  // 2. Build the mandatory primary A+ indexes (forward + backward),
  //    default config: partitioned by edge label, sorted by neighbour ID.
  double seconds = db.BuildPrimaryIndexes();
  std::printf("primary A+ indexes built in %.3f ms (%zu bytes)\n", seconds * 1e3,
              db.IndexMemoryBytes());

  // 3. Example 1: MATCH c1-[r1]->a1-[r2]->a2 WHERE c1.name = 'Alice'.
  //    (Alice is v7; we bind her directly instead of a name scan.)
  QueryGraph two_hop;
  int c1 = two_hop.AddVertex("c1", customer, ex.customers[1]);
  int a1 = two_hop.AddVertex("a1", account);
  int a2 = two_hop.AddVertex("a2", account);
  two_hop.AddEdge(c1, a1, owns, "r1");
  two_hop.AddEdge(a1, a2, wire, "r2");
  QueryOutcome r = db.Execute(two_hop);
  std::printf("\nExample 2 (Alice's wire destinations): %llu matches in %.3f ms\nplan:\n%s\n",
              static_cast<unsigned long long>(r.count), r.seconds * 1e3, r.plan.c_str());

  // 4. Section III-A1: reconfigure the primary index so currency-equality
  //    queries read a nested partition directly (Example 4).
  DdlResult reconf = db.ExecuteDdl(
      "RECONFIGURE PRIMARY INDEXES "
      "PARTITION BY eadj.label, eadj.currency "
      "SORT BY vnbr.ID");
  std::printf("%s (%.3f ms)\n", reconf.message.c_str(), reconf.seconds * 1e3);

  QueryGraph usd_wires = two_hop;
  QueryComparison usd;
  usd.lhs = QueryPropRef{1, true, currency, false};
  usd.op = CmpOp::kEq;
  usd.rhs_const = Value::Category(0);
  usd_wires.AddPredicate(usd);
  r = db.Execute(usd_wires);
  std::printf("Example 4 (USD wires only): %llu matches\nplan:\n%s\n",
              static_cast<unsigned long long>(r.count), r.plan.c_str());

  // 5. Example 6: a secondary vertex-partitioned index over a 1-hop view.
  DdlResult vp = db.ExecuteDdl(
      "CREATE 1-HOP VIEW LargeUSDTrnx "
      "MATCH vs-[eadj]->vd "
      "WHERE eadj.currency=USD, eadj.amount>100 "
      "INDEX AS FW-BW PARTITION BY eadj.label SORT BY vnbr.ID");
  std::printf("%s (%.3f ms)\n", vp.message.c_str(), vp.seconds * 1e3);

  // 6. Example 7: the MoneyFlow edge-partitioned index.
  DdlResult ep = db.ExecuteDdl(
      "CREATE 2-HOP VIEW MoneyFlow "
      "MATCH vs-[eb]->vd-[eadj]->vnbr "
      "WHERE eb.date<eadj.date, eadj.amount<eb.amount "
      "INDEX AS PARTITION BY eadj.label SORT BY vnbr.ID");
  std::printf("%s (%.3f ms)\n", ep.message.c_str(), ep.seconds * 1e3);

  // t13's MoneyFlow adjacency — the paper's Example 7 says it contains
  // exactly one edge, t19.
  EpIndex* money_flow = db.index_store().FindEpIndex("MoneyFlow");
  AdjListSlice t13_list = money_flow->GetFullList(ex.transfers[12]);
  std::printf("\nMoneyFlow list of t13 has %u edge(s):", t13_list.size());
  for (uint32_t i = 0; i < t13_list.size(); ++i) {
    std::printf(" t%llu", static_cast<unsigned long long>(t13_list.EdgeAt(i) - ex.transfers[0] + 1));
  }
  std::printf("  (paper: exactly {t19})\n");

  // 7. The serving API: prepare once, bind + execute per request. The
  //    $src pin is patched straight into the cached plan (no re-parse,
  //    no re-optimization) and projected rows stream in typed batches.
  struct PrintRows : RowConsumer {
    void OnBatch(const RowBatch& batch) override {
      for (uint32_t row = 0; row < batch.num_rows(); ++row) {
        std::printf("  row:");
        for (size_t col = 0; col < batch.num_columns(); ++col) {
          std::printf(" %s=%s", batch.column(col).name.c_str(),
                      batch.Cell(col, row).ToString().c_str());
        }
        std::printf("\n");
      }
    }
  } printer;
  Session session(&db);
  PreparedQuery* wires_of = session.Prepare(
      "MATCH (a1:Account)-[r:W]->(a2:Account) WHERE a1.ID = $src "
      "RETURN a2, r.amount, r.currency LIMIT 5");
  if (!wires_of->ok()) {
    std::printf("prepare failed: %s\n", wires_of->error().c_str());
    return 1;
  }
  for (vertex_id_t src : {ex.accounts[0], ex.accounts[3]}) {
    std::printf("\nwires out of v%u (prepared, LIMIT 5):\n", src + 1);
    wires_of->Bind("src", Value::Int64(src));
    QueryOutcome out = wires_of->Execute(&printer);
    std::printf("  -> %llu row(s) in %.3f ms\n",
                static_cast<unsigned long long>(out.rows), out.seconds * 1e3);
  }

  std::printf("\ntotal index memory: %zu bytes\n", db.IndexMemoryBytes());
  return 0;
}
