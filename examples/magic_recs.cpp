// MagicRecs recommendations (Section V-C1): on a synthetic follower
// graph, find users to recommend to a1 — the common followers of the
// users a1 recently started following. Shows the benefit of a secondary
// vertex-partitioned index sorted on edge time (VPt) that shares the
// primary index's partitioning levels.
//
//   ./build/examples/magic_recs [num_vertices]

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"

using namespace aplus;  // NOLINT: example brevity

namespace {

// MR2 (Figure 4b): a1 recently followed a2 and a3; a4 follows both.
QueryGraph Mr2(prop_key_t time_key, int64_t alpha, vertex_id_t a1_id, label_t follows) {
  QueryGraph q;
  int a1 = q.AddVertex("a1", kInvalidLabel, a1_id);
  int a2 = q.AddVertex("a2");
  int a3 = q.AddVertex("a3");
  int a4 = q.AddVertex("a4");
  int e1 = q.AddEdge(a1, a2, follows, "e1");
  int e2 = q.AddEdge(a1, a3, follows, "e2");
  q.AddEdge(a4, a2, follows, "f1");
  q.AddEdge(a4, a3, follows, "f2");
  for (int e : {e1, e2}) {
    QueryComparison recent;
    recent.lhs = QueryPropRef{e, true, time_key, false};
    recent.op = CmpOp::kLt;
    recent.rhs_const = Value::Int64(alpha);
    q.AddPredicate(recent);
  }
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t nv = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  Graph graph;
  PowerLawParams params;
  params.num_vertices = nv;
  params.avg_degree = 12.0;
  GeneratePowerLawGraph(params, &graph);
  const int64_t time_range = 1000000;
  prop_key_t time_key = AddTimeProperty(7, time_range, &graph);
  const int64_t alpha = time_range / 20;  // 5% selectivity, as in Section V-C1
  std::printf("follower graph: %llu users, %llu follows\n",
              static_cast<unsigned long long>(graph.num_vertices()),
              static_cast<unsigned long long>(graph.num_edges()));

  Database db(std::move(graph));
  db.BuildPrimaryIndexes();
  label_t follows = db.graph().catalog().FindEdgeLabel("E");

  // Run recommendations for a sample of users under config D.
  const vertex_id_t kSampleUsers = 100;
  const uint64_t user_count = db.graph().num_vertices();
  // Sample ordinary users: under preferential attachment the lowest IDs
  // are extreme hubs whose intersection-bound work would dominate.
  auto sample_user = [user_count](uint32_t i) {
    return static_cast<vertex_id_t>(
        user_count / 2 + (static_cast<uint64_t>(i) * 2654435761ULL) % (user_count / 2));
  };
  double d_total = 0.0;
  uint64_t d_matches = 0;
  for (vertex_id_t i = 0; i < kSampleUsers; ++i) {
    vertex_id_t u = sample_user(i);
    QueryGraph q = Mr2(time_key, alpha, u, follows);
    QueryOutcome r = db.Execute(q);
    d_total += r.seconds;
    d_matches += r.count;
  }
  std::printf("[D     ] %llu recommendations over %u users in %.1f ms\n",
              static_cast<unsigned long long>(d_matches), kSampleUsers, d_total * 1e3);

  // Add VPt: same partitioning as the primary index (so it shares the
  // partitioning levels), inner lists sorted on edge time.
  IndexConfig vpt = IndexConfig::Default();
  vpt.sorts.clear();
  vpt.sorts.push_back({SortSource::kEdgeProp, time_key});
  double ic = 0.0;
  db.CreateVpIndex("VPt", Predicate(), vpt, Direction::kFwd, &ic);
  std::printf("created VPt in %.1f ms; shares primary levels: %s; memory +%zu bytes\n",
              ic * 1e3,
              db.index_store().FindVpIndex("VPt", Direction::kFwd)->shares_partition_levels()
                  ? "yes"
                  : "no",
              db.index_store().FindVpIndex("VPt", Direction::kFwd)->MemoryBytes());

  double vpt_total = 0.0;
  uint64_t vpt_matches = 0;
  for (vertex_id_t i = 0; i < kSampleUsers; ++i) {
    vertex_id_t u = sample_user(i);
    QueryGraph q = Mr2(time_key, alpha, u, follows);
    QueryOutcome r = db.Execute(q);
    vpt_total += r.seconds;
    vpt_matches += r.count;
  }
  std::printf("[D+VPt ] %llu recommendations in %.1f ms (%.2fx)\n",
              static_cast<unsigned long long>(vpt_matches), vpt_total * 1e3,
              d_total / vpt_total);
  if (d_matches != vpt_matches) {
    std::printf("ERROR: configs disagree on results!\n");
    return 1;
  }

  QueryGraph sample = Mr2(time_key, alpha, 0, follows);
  std::printf("\nplan under D+VPt:\n%s", db.Explain(sample).c_str());
  return 0;
}
