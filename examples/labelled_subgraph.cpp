// Labelled subgraph matching (Section V-B): generates a G_{i,j} labelled
// graph, runs a labelled triangle and a labelled diamond under the three
// primary-index configurations of Table II (D, Ds, Dp) and prints the
// runtimes — the per-query effect the paper's Table II aggregates.
//
//   ./build/examples/labelled_subgraph [num_vertices]

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"

using namespace aplus;  // NOLINT: example brevity

int main(int argc, char** argv) {
  uint64_t nv = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  Graph graph;
  PowerLawParams params;
  params.num_vertices = nv;
  params.avg_degree = 10.0;
  GeneratePowerLawGraph(params, &graph);
  AssignRandomLabels(/*vertex labels=*/4, /*edge labels=*/2, /*seed=*/5, &graph);
  label_t vl0 = graph.catalog().FindVertexLabel("VL0");
  label_t vl1 = graph.catalog().FindVertexLabel("VL1");
  label_t vl2 = graph.catalog().FindVertexLabel("VL2");
  label_t el0 = graph.catalog().FindEdgeLabel("EL0");
  label_t el1 = graph.catalog().FindEdgeLabel("EL1");
  std::printf("G_{4,2}: %llu vertices, %llu edges\n",
              static_cast<unsigned long long>(graph.num_vertices()),
              static_cast<unsigned long long>(graph.num_edges()));
  Database db(std::move(graph));

  // Labelled triangle.
  QueryGraph triangle;
  {
    int a = triangle.AddVertex("a", vl0);
    int b = triangle.AddVertex("b", vl1);
    int c = triangle.AddVertex("c", vl2);
    triangle.AddEdge(a, b, el0);
    triangle.AddEdge(b, c, el1);
    triangle.AddEdge(a, c, el0);
  }
  // Labelled diamond.
  QueryGraph diamond;
  {
    int a = diamond.AddVertex("a", vl0);
    int b = diamond.AddVertex("b", vl1);
    int c = diamond.AddVertex("c", vl1);
    int d = diamond.AddVertex("d", vl2);
    diamond.AddEdge(a, b, el0);
    diamond.AddEdge(a, c, el0);
    diamond.AddEdge(b, d, el1);
    diamond.AddEdge(c, d, el1);
  }

  struct Config {
    const char* name;
    IndexConfig config;
  };
  std::vector<Config> configs;
  configs.push_back({"D ", IndexConfig::Default()});
  IndexConfig ds = IndexConfig::Default();
  ds.sorts.clear();
  ds.sorts.push_back({SortSource::kNbrLabel, kInvalidPropKey});
  ds.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
  configs.push_back({"Ds", ds});
  IndexConfig dp = IndexConfig::Default();
  dp.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
  configs.push_back({"Dp", dp});

  for (const Config& c : configs) {
    double ir = db.BuildPrimaryIndexes(c.config);
    QueryOutcome t = db.Execute(triangle);
    QueryOutcome d = db.Execute(diamond);
    std::printf("[%s] IR %.1f ms | triangle: %llu in %.2f ms | diamond: %llu in %.2f ms | %zu B\n",
                c.name, ir * 1e3, static_cast<unsigned long long>(t.count), t.seconds * 1e3,
                static_cast<unsigned long long>(d.count), d.seconds * 1e3,
                db.IndexMemoryBytes());
  }
  return 0;
}
