// Fraud detection on a synthetic financial network (Section V-C2/V-D):
// generates a transfer graph, then hunts cyclic money flows (MF1) and
// decreasing money-flow paths (MF5-style) under three configurations —
// primary only, +VPc (city-sorted secondary), +EPc (MoneyFlow
// edge-partitioned index) — printing runtimes and the plans used.
//
//   ./build/examples/fraud_detection [num_vertices]

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"

using namespace aplus;  // NOLINT: example brevity

namespace {

QueryGraph CycleQuery(const FinancialPropKeys& keys, label_t elabel) {
  // MF1: 4-cycle of transfers among CQ accounts where the two "middle"
  // accounts sit in the same city.
  QueryGraph q;
  int a1 = q.AddVertex("a1");
  int a2 = q.AddVertex("a2");
  int a3 = q.AddVertex("a3");
  int a4 = q.AddVertex("a4");
  q.AddEdge(a1, a2, elabel, "e1");
  q.AddEdge(a2, a3, elabel, "e2");
  q.AddEdge(a3, a4, elabel, "e3");
  q.AddEdge(a4, a1, elabel, "e4");
  for (int v : {a1, a2, a3, a4}) {
    QueryComparison acc;
    acc.lhs = QueryPropRef{v, false, keys.acc, false};
    acc.op = CmpOp::kEq;
    acc.rhs_const = Value::Category(kAccCq);
    q.AddPredicate(acc);
  }
  QueryComparison same_city;
  same_city.lhs = QueryPropRef{a2, false, keys.city, false};
  same_city.op = CmpOp::kEq;
  same_city.rhs_is_const = false;
  same_city.rhs_ref = QueryPropRef{a4, false, keys.city, false};
  q.AddPredicate(same_city);
  return q;
}

QueryGraph FlowPathQuery(const FinancialPropKeys& keys, int64_t alpha, int64_t id_bound,
                         label_t elabel) {
  // 3-step decreasing flow: each hop later and smaller (by at most
  // alpha), Example 7's core pattern.
  QueryGraph q;
  int a1 = q.AddVertex("a1");
  int a2 = q.AddVertex("a2");
  int a3 = q.AddVertex("a3");
  int a4 = q.AddVertex("a4");
  q.AddEdge(a1, a2, elabel, "e1");
  q.AddEdge(a2, a3, elabel, "e2");
  q.AddEdge(a3, a4, elabel, "e3");
  QueryComparison bound;
  bound.lhs = QueryPropRef{a1, false, kInvalidPropKey, true};
  bound.op = CmpOp::kLt;
  bound.rhs_const = Value::Int64(id_bound);
  q.AddPredicate(bound);
  for (auto [ei, ej] : {std::pair<int, int>{0, 1}, {1, 2}}) {
    QueryComparison date;
    date.lhs = QueryPropRef{ei, true, keys.date, false};
    date.op = CmpOp::kLt;
    date.rhs_is_const = false;
    date.rhs_ref = QueryPropRef{ej, true, keys.date, false};
    q.AddPredicate(date);
    QueryComparison amt;
    amt.lhs = QueryPropRef{ei, true, keys.amount, false};
    amt.op = CmpOp::kGt;
    amt.rhs_is_const = false;
    amt.rhs_ref = QueryPropRef{ej, true, keys.amount, false};
    q.AddPredicate(amt);
    QueryComparison cut;
    cut.lhs = QueryPropRef{ei, true, keys.amount, false};
    cut.op = CmpOp::kLt;
    cut.rhs_is_const = false;
    cut.rhs_ref = QueryPropRef{ej, true, keys.amount, false};
    cut.rhs_addend = alpha;
    q.AddPredicate(cut);
  }
  return q;
}

void Report(const char* config, const char* name, const QueryOutcome& r) {
  std::printf("[%s] %-10s %10llu matches  %8.2f ms\n", config, name,
              static_cast<unsigned long long>(r.count), r.seconds * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t nv = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  Graph graph;
  PowerLawParams params;
  params.num_vertices = nv;
  params.avg_degree = 8.0;
  GeneratePowerLawGraph(params, &graph);
  FinancialPropKeys keys = AddFinancialProperties(42, &graph, 50);
  std::printf("financial network: %llu accounts, %llu transfers\n",
              static_cast<unsigned long long>(graph.num_vertices()),
              static_cast<unsigned long long>(graph.num_edges()));

  Database db(std::move(graph));
  db.BuildPrimaryIndexes();

  label_t elabel = db.graph().catalog().FindEdgeLabel("E");
  QueryGraph cycle = CycleQuery(keys, elabel);
  QueryGraph flow = FlowPathQuery(keys, /*alpha=*/25, /*id_bound=*/200, elabel);

  // Config D: primary indexes only.
  QueryOutcome cycle_d = db.Execute(cycle);
  QueryOutcome flow_d = db.Execute(flow);
  Report("D        ", "cycle", cycle_d);
  Report("D        ", "flow-path", flow_d);

  // Config D+VPc: city-sorted secondary vertex-partitioned indexes.
  IndexConfig city_sorted = IndexConfig::Default();
  city_sorted.sorts.clear();
  city_sorted.sorts.push_back({SortSource::kNbrProp, keys.city});
  double ic = 0.0;
  double total_ic = 0.0;
  db.CreateVpIndex("VPc", Predicate(), city_sorted, Direction::kFwd, &ic);
  total_ic += ic;
  db.CreateVpIndex("VPc", Predicate(), city_sorted, Direction::kBwd, &ic);
  total_ic += ic;
  std::printf("created VPc (FW+BW) in %.1f ms\n", total_ic * 1e3);
  QueryOutcome cycle_vpc = db.Execute(cycle);
  Report("D+VPc    ", "cycle", cycle_vpc);
  std::printf("  speedup vs D: %.2fx; plan:\n%s", cycle_d.seconds / cycle_vpc.seconds,
              cycle_vpc.plan.c_str());

  // Config D+VPc+EPc: the MoneyFlow edge-partitioned index.
  Predicate money_flow;
  money_flow.AddRef(PropRef{PropSite::kBoundEdge, keys.date, false, false}, CmpOp::kLt,
                    PropRef{PropSite::kAdjEdge, keys.date, false, false});
  money_flow.AddRef(PropRef{PropSite::kAdjEdge, keys.amount, false, false}, CmpOp::kLt,
                    PropRef{PropSite::kBoundEdge, keys.amount, false, false});
  money_flow.AddRef(PropRef{PropSite::kBoundEdge, keys.amount, false, false}, CmpOp::kLt,
                    PropRef{PropSite::kAdjEdge, keys.amount, false, false}, 25);
  IndexConfig ep_config = IndexConfig::Default();
  db.CreateEpIndex("EPc", EpKind::kDstFwd, money_flow, ep_config, &ic);
  std::printf("created EPc in %.1f ms (|E_indexed| = %llu)\n", ic * 1e3,
              static_cast<unsigned long long>(db.index_store().FindEpIndex("EPc")->num_edges_indexed()));
  QueryOutcome flow_ep = db.Execute(flow);
  Report("D+VPc+EPc", "flow-path", flow_ep);
  std::printf("  speedup vs D: %.2fx; plan:\n%s", flow_d.seconds / flow_ep.seconds,
              flow_ep.plan.c_str());

  std::printf("\nindex memory: %zu bytes\n", db.IndexMemoryBytes());
  return 0;
}
