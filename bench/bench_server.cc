// Server-layer load generator (built as both `bench_server` and its
// operator-facing alias `aplus_loadgen`): drives the aplusd wire
// protocol with N concurrent connections issuing a prepared
// point-lookup + grouped-aggregate mix, and reports queries/s with
// p50/p99 request latencies.
//
//   * "point_c1_w1" / "point_c8_w4": the acceptance arms — prepared
//     point-lookups on 1 connection x 1 worker vs 8 connections x 4
//     workers. Target: >= 5x queries/s (cross-connection concurrency,
//     not per-query parallelism).
//   * "mix_c8_w<k>": the 80/20 point-lookup / grouped-aggregate mix on
//     8 connections at 1..8 workers (the worker-pool scaling sweep).
//   * "overload": admission capped at 1 running / 0 queued while 8
//     connections fire; every request must complete with either OK or
//     a typed OVERLOADED frame — no hangs, no connection drops.
//
// The shared-plan-cache hit rate across the whole run is reported and
// (in strict mode) gated at >= 90%: each arm re-prepares both texts on
// every connection, so all prepares after the first two per text must
// hit.
//
// By default the bench spins up an in-process Server on an ephemeral
// loopback port (same engine, real sockets). Point APLUS_SERVER_ADDR at
// a running aplusd (host:port) to drive an external server instead —
// the sweep then reuses that server's worker pool for every arm and
// the overload arm is skipped (admission is server-side config).
//
// Env knobs: APLUS_SCALE (graph size), APLUS_SERVER_REQS (requests per
// connection per arm), APLUS_BENCH_JSON (per-case metrics),
// APLUS_BENCH_STRICT=1 (fail the process when the scaling, hit-rate or
// overload acceptance targets are missed).
//
// APLUS_LOADGEN_SEAL=<path> switches the binary into dataset-prep mode:
// it generates the bench dataset at APLUS_SCALE, seals it to a segment
// file (storage/segment.h) and exits. The workflow for driving an
// external server on the exact same dataset:
//
//   APLUS_LOADGEN_SEAL=/tmp/bench.seg aplus_loadgen
//   aplusd --graph=/tmp/bench.seg &
//   APLUS_SERVER_ADDR=127.0.0.1:7601 aplus_loadgen

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "server/client.h"
#include "server/server.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

constexpr const char* kPointLookup =
    "MATCH (a)-[r:E]->(b) WHERE a.ID = $src RETURN b, r.amt";
constexpr const char* kGroupedAgg =
    "MATCH (a)-[r:E]->(b) WHERE a.ID = $src "
    "RETURN b, COUNT(*), SUM(r.amt)";
// Single-source triangle count — the paper's per-request serving query
// (same text as bench_serving's prepared arm). The acceptance arms use
// it because its per-request execution dominates the wire round-trip,
// which is what worker-pool scaling can actually speed up.
constexpr const char* kPointTriangle =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) "
    "WHERE a.ID = $src RETURN COUNT(*)";
// Whole-graph triangle count: the overload arm's slot occupant (slow
// enough to hold the single admission slot while point lookups arrive).
constexpr const char* kHeavyOccupant =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)";

struct ArmResult {
  std::string name;
  double seconds = 0.0;
  uint64_t queries = 0;
  int connections = 0;
  int workers = 0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
};

double Percentile(std::vector<double>* sorted_micros, double p) {
  if (sorted_micros->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_micros->size() - 1));
  return (*sorted_micros)[idx];
}

// One connection's share of an arm: prepare both statements, run
// `requests` point-lookups (and every 5th request a grouped aggregate
// instead when `mixed`), recording per-request latency.
void RunConnection(const std::string& host, int port, const char* point_text,
                   const std::vector<vertex_id_t>& sources, uint64_t requests, bool mixed,
                   uint32_t seed, std::vector<double>* latencies_micros,
                   std::atomic<uint64_t>* failures) {
  Client client;
  std::string error;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    failures->fetch_add(requests);
    return;
  }
  Client::PreparedInfo point = client.Prepare(point_text);
  Client::PreparedInfo agg = client.Prepare(kGroupedAgg);
  if (!point.ok() || !agg.ok()) {
    std::fprintf(stderr, "prepare failed: %s%s\n", point.error.c_str(), agg.error.c_str());
    failures->fetch_add(requests);
    return;
  }
  Rng rng(seed);
  latencies_micros->reserve(requests);
  for (uint64_t i = 0; i < requests; ++i) {
    vertex_id_t src = sources[rng.NextBounded(sources.size())];
    bool use_agg = mixed && (i % 5 == 4);
    WallTimer timer;
    Client::Result r = client.Execute(use_agg ? agg.stmt_id : point.stmt_id,
                                      {{"src", Value::Int64(static_cast<int64_t>(src))}});
    double micros = timer.ElapsedSeconds() * 1e6;
    if (!r.ok()) {
      failures->fetch_add(1);
    } else {
      latencies_micros->push_back(micros);
    }
  }
  client.Close();
}

// Runs one arm: `connections` client threads x `requests` each against
// host:port. Latencies are merged and summarized.
ArmResult RunArm(const std::string& name, const std::string& host, int port,
                 const char* point_text, int connections, int workers,
                 const std::vector<vertex_id_t>& sources, uint64_t requests, bool mixed) {
  std::vector<std::vector<double>> per_conn(static_cast<size_t>(connections));
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  WallTimer timer;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(RunConnection, host, port, point_text, std::cref(sources), requests,
                         mixed, static_cast<uint32_t>(1000 + c),
                         &per_conn[static_cast<size_t>(c)], &failures);
  }
  for (std::thread& t : threads) t.join();
  double elapsed = timer.ElapsedSeconds();

  std::vector<double> all;
  for (std::vector<double>& v : per_conn) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  APLUS_CHECK_EQ(failures.load(), 0u) << name << ": requests failed";

  ArmResult r;
  r.name = name;
  r.seconds = elapsed;
  r.queries = all.size();
  r.connections = connections;
  r.workers = workers;
  r.qps = elapsed > 0.0 ? static_cast<double>(all.size()) / elapsed : 0.0;
  r.p50_micros = Percentile(&all, 0.50);
  r.p99_micros = Percentile(&all, 0.99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  double scale = ScaleFromEnv(0.02);
  uint64_t requests = IntFromEnv("APLUS_SERVER_REQS", 2000);
  bool strict = false;
  if (const char* env = std::getenv("APLUS_BENCH_STRICT")) {
    strict = std::strcmp(env, "0") != 0;
  }

  // External-server mode: APLUS_SERVER_ADDR=host:port.
  std::string ext_host;
  int ext_port = 0;
  if (const char* addr = std::getenv("APLUS_SERVER_ADDR")) {
    const char* colon = std::strrchr(addr, ':');
    if (colon != nullptr && colon != addr) {
      ext_host.assign(addr, static_cast<size_t>(colon - addr));
      ext_port = std::atoi(colon + 1);
    }
    if (ext_host.empty() || ext_port <= 0) {
      std::fprintf(stderr, "bad APLUS_SERVER_ADDR '%s' (want host:port)\n", addr);
      return 1;
    }
  }
  const bool external = !ext_host.empty();

  // Same dataset as bench_serving / aplusd --scale: sources drawn from
  // the moderate-out-degree bulk so per-request work stays point-sized.
  std::unique_ptr<Database> db;
  std::vector<vertex_id_t> sources;
  if (!external) {
    Graph graph;
    PowerLawParams params;
    params.num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
    params.avg_degree = 8.0;
    params.preferential_fraction = 0.75;
    params.seed = 97;
    GeneratePowerLawGraph(params, &graph);
    prop_key_t amt_key = graph.AddEdgeProperty("amt", ValueType::kInt64);
    PropertyColumn* amt = graph.edge_props().mutable_column(amt_key);
    Rng rng(13);
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      amt->SetInt64(e, static_cast<int64_t>(rng.NextBounded(10000)));
    }
    uint64_t num_vertices = graph.num_vertices();
    std::vector<uint32_t> out_degree(num_vertices, 0);
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) out_degree[graph.edge_src(e)]++;
    for (vertex_id_t v = 0; v < num_vertices; ++v) {
      if (out_degree[v] >= 1 && out_degree[v] <= 8) sources.push_back(v);
    }
    if (sources.empty()) {
      for (vertex_id_t v = 0; v < num_vertices; ++v) sources.push_back(v);
    }
    db = std::make_unique<Database>(std::move(graph));
    db->BuildPrimaryIndexes();
  } else {
    // The external server generated its own graph (aplusd --scale); the
    // same ID space bound keeps the lookups point-sized.
    uint64_t num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
    for (vertex_id_t v = 0; v < num_vertices; ++v) sources.push_back(v);
  }

  // Dataset-prep mode: seal the generated dataset for `aplusd --graph`.
  if (const char* seal = std::getenv("APLUS_LOADGEN_SEAL")) {
    if (external) {
      std::fprintf(stderr,
                   "APLUS_LOADGEN_SEAL requires in-process mode (unset APLUS_SERVER_ADDR)\n");
      return 1;
    }
    std::string error;
    if (!db->SealToSegment(seal, &error)) {
      std::fprintf(stderr, "seal %s: %s\n", seal, error.c_str());
      return 1;
    }
    std::printf("aplus_loadgen: sealed %llu vertices, %llu edges to %s; "
                "serve it with aplusd --graph=%s\n",
                static_cast<unsigned long long>(db->graph().num_vertices()),
                static_cast<unsigned long long>(db->graph().num_edges()), seal, seal);
    return 0;
  }

  PrintBanner(std::string("aplus_loadgen (") +
              (external ? ext_host + ":" + std::to_string(ext_port)
                        : TablePrinter::Count(db->graph().num_edges()) + " edges, in-process") +
              ", " + std::to_string(requests) + " reqs/conn)");

  std::vector<ArmResult> results;
  TablePrinter table({"arm", "conns x workers", "queries/s", "p50", "p99"});
  auto add_row = [&](const ArmResult& r) {
    table.AddRow({r.name,
                  std::to_string(r.connections) + " x " + std::to_string(r.workers),
                  TablePrinter::Count(static_cast<uint64_t>(r.qps)),
                  TablePrinter::Seconds(r.p50_micros / 1e6),
                  TablePrinter::Seconds(r.p99_micros / 1e6)});
    results.push_back(r);
  };

  // Hit rate is measured AFTER warmup (the acceptance target): each
  // in-process server gets a small untimed warmup pass, the cache
  // counters are snapshotted, and only the deltas from the timed arm
  // count. Post-warmup prepares should all hit the shared cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double point_qps_c1w1 = 0.0;
  double point_qps_c8w4 = 0.0;
  uint64_t overloaded_frames = 0;
  uint64_t overload_completed = 0;

  auto snapshot_stats = [&](const std::string& host, int port, uint64_t* hits,
                            uint64_t* misses) {
    Client c;
    std::string err;
    if (!c.Connect(host, port, &err)) return;
    Client::Stats stats = c.GetStats();
    if (stats.ok) {
      *hits = stats.cache_hits;
      *misses = stats.cache_misses;
    }
    c.Close();
  };

  if (external) {
    // One mixed arm against the provided server; workers unknown (0).
    uint64_t h0 = 0, m0 = 0, h1 = 0, m1 = 0;
    ArmResult warm = RunArm("warmup", ext_host, ext_port, kPointLookup, 8, 0, sources,
                            std::min<uint64_t>(requests, 50), true);
    (void)warm;
    snapshot_stats(ext_host, ext_port, &h0, &m0);
    ArmResult mix =
        RunArm("mix_ext", ext_host, ext_port, kPointLookup, 8, 0, sources, requests, true);
    add_row(mix);
    snapshot_stats(ext_host, ext_port, &h1, &m1);
    cache_hits = h1 - h0;
    cache_misses = m1 - m0;
  } else {
    // Runs one in-process server at `workers` workers, warms the cache,
    // then times `conns` connections and accumulates post-warm deltas.
    auto run_server_arm = [&](const std::string& name, const char* point_text, int conns,
                              int workers, bool mixed) -> ArmResult {
      ServerOptions options = ServerOptions::FromEnv();
      options.num_workers = workers;
      Server server(db.get(), options);
      std::string error;
      APLUS_CHECK(server.Start(&error)) << error;
      ArmResult warm =
          RunArm("warmup", "127.0.0.1", server.port(), point_text, conns, workers, sources,
                 std::min<uint64_t>(requests / 10 + 1, 200), mixed);
      (void)warm;
      uint64_t h0 = 0, m0 = 0, h1 = 0, m1 = 0;
      snapshot_stats("127.0.0.1", server.port(), &h0, &m0);
      ArmResult r = RunArm(name, "127.0.0.1", server.port(), point_text, conns, workers,
                           sources, requests, mixed);
      snapshot_stats("127.0.0.1", server.port(), &h1, &m1);
      cache_hits += h1 - h0;
      cache_misses += m1 - m0;
      server.Stop();
      return r;
    };

    // --- Acceptance arms: prepared point-lookups, 1x1 vs 8x4. ---
    {
      ArmResult r = run_server_arm("point_c1_w1", kPointTriangle, 1, 1, false);
      point_qps_c1w1 = r.qps;
      add_row(r);
    }
    {
      ArmResult r = run_server_arm("point_c8_w4", kPointTriangle, 8, 4, false);
      point_qps_c8w4 = r.qps;
      add_row(r);
    }

    // --- Worker-pool scaling sweep: 8 connections, 80/20 mix. ---
    for (int workers : {1, 2, 4, 8}) {
      add_row(
          run_server_arm("mix_c8_w" + std::to_string(workers), kPointLookup, 8, workers, true));
    }

    // --- Overload arm: admission 1 running / 0 queued. One blocker
    // connection keeps the single slot occupied with whole-graph
    // triangle counts while 7 connections fire point lookups; every
    // request must complete as OK or a typed OVERLOADED frame. ---
    {
      AdmissionConfig cap;
      cap.max_concurrent = 1;
      cap.max_queue = 0;
      cap.queue_timeout_ms = 0;
      db->admission().Configure(cap);
      ServerOptions options = ServerOptions::FromEnv();
      options.num_workers = 4;
      Server server(db.get(), options);
      std::string error;
      APLUS_CHECK(server.Start(&error)) << error;
      const uint64_t per_conn = std::min<uint64_t>(requests, 200);
      std::atomic<uint64_t> overloaded{0};
      std::atomic<uint64_t> completed{0};
      std::atomic<bool> lookups_done{false};
      std::vector<std::thread> threads;
      WallTimer timer;
      threads.emplace_back([&]() {  // blocker: heavy executes back to back
        Client client;
        std::string err;
        if (!client.Connect("127.0.0.1", server.port(), &err)) return;
        Client::PreparedInfo heavy = client.Prepare(kHeavyOccupant);
        if (!heavy.ok()) return;
        while (!lookups_done.load(std::memory_order_relaxed)) {
          Client::Result r = client.Execute(heavy.stmt_id, {});
          completed.fetch_add(1);
          if (r.status == wire::WireStatus::kOverloaded) overloaded.fetch_add(1);
        }
        client.Close();
      });
      for (int c = 0; c < 7; ++c) {
        threads.emplace_back([&, c]() {
          Client client;
          std::string err;
          if (!client.Connect("127.0.0.1", server.port(), &err)) return;
          Client::PreparedInfo point = client.Prepare(kPointLookup);
          if (!point.ok()) return;
          Rng rng(static_cast<uint32_t>(77 + c));
          for (uint64_t i = 0; i < per_conn; ++i) {
            vertex_id_t src = sources[rng.NextBounded(sources.size())];
            Client::Result r = client.Execute(
                point.stmt_id, {{"src", Value::Int64(static_cast<int64_t>(src))}});
            completed.fetch_add(1);
            if (r.status == wire::WireStatus::kOverloaded) overloaded.fetch_add(1);
          }
          client.Close();
        });
      }
      for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
      lookups_done.store(true, std::memory_order_relaxed);
      threads[0].join();
      double elapsed = timer.ElapsedSeconds();
      overloaded_frames = overloaded.load();
      overload_completed = completed.load();
      table.AddRow({"overload", "8 x 4",
                    TablePrinter::Count(overload_completed) + " done",
                    TablePrinter::Count(overloaded_frames) + " overloaded",
                    TablePrinter::Seconds(elapsed)});
      ArmResult ov;
      ov.name = "overload";
      ov.seconds = elapsed;
      ov.queries = overload_completed;
      ov.connections = 8;
      ov.workers = 4;
      results.push_back(ov);
      server.Stop();
      db->admission().Configure(AdmissionConfig{});  // restore: disabled
    }
  }

  table.Print();

  double hit_rate = (cache_hits + cache_misses) > 0
                        ? static_cast<double>(cache_hits) /
                              static_cast<double>(cache_hits + cache_misses)
                        : 0.0;
  double scaling = point_qps_c1w1 > 0.0 ? point_qps_c8w4 / point_qps_c1w1 : 0.0;
  std::printf("\nShared plan cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(cache_misses), hit_rate * 100.0);
  if (!external) {
    std::printf("Point-lookup scaling: 8conn/4workers = %.1fx of 1conn/1worker "
                "(target >= 5x)\n", scaling);
    std::printf("Overload arm: %llu/%llu requests answered OVERLOADED, all completed\n",
                static_cast<unsigned long long>(overloaded_frames),
                static_cast<unsigned long long>(overload_completed));
  }

  const char* json_path = std::getenv("APLUS_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    APLUS_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"bench_server\",\n");
    std::fprintf(f, "  \"point_scaling\": %.3f,\n  \"cache_hit_rate\": %.4f,\n", scaling,
                 hit_rate);
    std::fprintf(f, "  \"overloaded_frames\": %llu,\n  \"cases\": {\n",
                 static_cast<unsigned long long>(overloaded_frames));
    for (size_t i = 0; i < results.size(); ++i) {
      const ArmResult& r = results[i];
      std::fprintf(f,
                   "    \"%s\": {\"seconds\": %.6f, \"rows\": %llu, \"qps\": %.1f, "
                   "\"p50_micros\": %.1f, \"p99_micros\": %.1f}%s\n",
                   r.name.c_str(), r.seconds, static_cast<unsigned long long>(r.queries),
                   r.qps, r.p50_micros, r.p99_micros, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("Wrote per-case metrics to %s\n", json_path);
  }

  // The 5x point-lookup scaling target needs hardware that can actually
  // run connections in parallel: on fewer than 4 cores every thread
  // serializes onto the same CPU and concurrency cannot beat latency.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool scaling_measurable = cores >= 4;
  if (!external && !scaling_measurable) {
    std::printf("NOTE: %u core(s) visible; the 5x scaling target needs >= 4, "
                "reporting only.\n", cores);
  }

  if (strict && !external) {
    int rc = 0;
    if (scaling_measurable && scaling < 5.0) {
      std::fprintf(stderr, "STRICT FAIL: point-lookup scaling %.2fx < 5x\n", scaling);
      rc = 1;
    }
    if (hit_rate < 0.90) {
      std::fprintf(stderr, "STRICT FAIL: plan-cache hit rate %.1f%% < 90%%\n",
                   hit_rate * 100.0);
      rc = 1;
    }
    if (overloaded_frames == 0) {
      std::fprintf(stderr, "STRICT FAIL: overload arm produced no OVERLOADED frames\n");
      rc = 1;
    }
    if (overload_completed < 7 * std::min<uint64_t>(requests, 200)) {
      std::fprintf(stderr, "STRICT FAIL: overload arm dropped requests\n");
      rc = 1;
    }
    return rc;
  }
  if (!external) {
    if (scaling_measurable && scaling < 5.0) {
      std::printf("WARNING: point-lookup scaling %.2fx below the 5x target.\n", scaling);
    }
    if (hit_rate < 0.90) {
      std::printf("WARNING: plan-cache hit rate %.1f%% below the 90%% target.\n",
                  hit_rate * 100.0);
    }
  }
  return 0;
}
