// Regenerates the Section V-F maintenance microbenchmark: load 50% of a
// dataset, insert the remaining 50% one edge at a time, and report the
// sustained insert rate (edges/second) under five configurations of
// increasing maintenance work:
//   Ds      : no secondary partitioning, sort by neighbour ID
//   Dp      : partition by edge label (unsorted beyond bucket order)
//   Dps     : partition by edge label + sort by neighbour ID
//   Dps+VPt : plus a time-sorted secondary VP index
//   Dps+EPt : plus an edge-partitioned index with a 1%-selectivity
//             cross-edge time predicate.
// Expected shape (paper): rates degrade with config complexity; VP
// maintenance stays within the same order of magnitude while EP
// maintenance is 1-2 orders slower (delta queries per insert).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/financial_props.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "index/maintenance.h"
#include "util/timer.h"
#include "workloads.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

struct EdgeTriple {
  vertex_id_t src, dst;
  label_t label;
  int64_t time;
};

struct DatasetHalves {
  Graph graph;  // holds the first half; tail edges are streamed in
  std::vector<EdgeTriple> tail;
  prop_key_t time_key = kInvalidPropKey;
};

DatasetHalves MakeHalves(const DatasetSpec& spec, double scale, uint32_t elabels,
                         uint64_t seed) {
  Graph full;
  GenerateDataset(spec, scale, seed, &full);
  AssignRandomLabels(2, elabels, seed + 1, &full);
  prop_key_t full_time = AddTimeProperty(seed + 2, 1000000, &full);

  DatasetHalves halves;
  // Mirror the full graph's catalog registration order exactly so label
  // ids line up: the generator registers "V"/"E" first, then the
  // G_{i,j} labels.
  label_t vlabel = halves.graph.catalog().AddVertexLabel("V");
  halves.graph.catalog().AddEdgeLabel("E");
  halves.graph.catalog().AddVertexLabel("VL0");
  halves.graph.catalog().AddVertexLabel("VL1");
  for (uint32_t i = 0; i < elabels; ++i) {
    halves.graph.catalog().AddEdgeLabel("EL" + std::to_string(i));
  }
  for (vertex_id_t v = 0; v < full.num_vertices(); ++v) {
    halves.graph.AddVertex(vlabel);
    halves.graph.set_vertex_label(v, full.vertex_label(v));
  }
  halves.time_key = halves.graph.AddEdgeProperty("time", ValueType::kInt64);
  PropertyColumn* time = halves.graph.edge_props().mutable_column(halves.time_key);
  const PropertyColumn* full_col = full.edge_props().column(full_time);
  uint64_t split = full.num_edges() / 2;
  for (edge_id_t e = 0; e < full.num_edges(); ++e) {
    if (e < split) {
      edge_id_t ne = halves.graph.AddEdge(full.edge_src(e), full.edge_dst(e), full.edge_label(e));
      time->SetInt64(ne, full_col->GetInt64(e));
    } else {
      halves.tail.push_back(
          {full.edge_src(e), full.edge_dst(e), full.edge_label(e), full_col->GetInt64(e)});
    }
  }
  return halves;
}

// Streams the tail into the store and returns edges/second.
double MeasureInsertRate(DatasetHalves* halves, IndexStore* store) {
  Maintainer maintainer(&halves->graph, store);
  PropertyColumn* time = halves->graph.edge_props().mutable_column(halves->time_key);
  WallTimer timer;
  for (const EdgeTriple& t : halves->tail) {
    edge_id_t e = halves->graph.AddEdge(t.src, t.dst, t.label);
    time->SetInt64(e, t.time);
    maintainer.OnEdgeInserted(e);
  }
  maintainer.Finalize();
  double seconds = timer.ElapsedSeconds();
  return static_cast<double>(halves->tail.size()) / seconds;
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.0008);
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);
  struct Run {
    std::string name;
    size_t spec_index;
    uint32_t elabels;
  };
  std::vector<Run> runs = {{"LJ2,4", 1, 4}, {"Brk2,2", 3, 2}};

  PrintBanner("Section V-F: index maintenance (insert 50% of edges one at a time)");
  TablePrinter table({"Dataset", "Ds", "Dp", "Dps", "Dps+VPt", "Dps+EPt"});

  for (const Run& run : runs) {
    std::vector<std::string> row = {run.name};
    for (int config_idx = 0; config_idx < 5; ++config_idx) {
      DatasetHalves halves = MakeHalves(specs[run.spec_index], scale, run.elabels,
                                        7000 + run.spec_index);
      IndexStore store(&halves.graph);
      IndexConfig config;
      switch (config_idx) {
        case 0:  // Ds: flat, sorted by neighbour ID
          config = IndexConfig::Flat();
          break;
        case 1: {  // Dp: label partitioning, bucket order only
          config.partitions.push_back({PartitionSource::kEdgeLabel, kInvalidPropKey});
          config.sorts.clear();
          break;
        }
        default:  // Dps and extensions
          config = IndexConfig::Default();
          break;
      }
      store.BuildPrimary(config);
      if (config_idx == 3) {
        IndexConfig vpt = IndexConfig::Default();
        vpt.sorts.clear();
        vpt.sorts.push_back({SortSource::kEdgeProp, halves.time_key});
        OneHopViewDef view;
        view.name = "VPt";
        store.CreateVpIndex(view, vpt, Direction::kFwd);
      }
      if (config_idx == 4) {
        // EPt: vs-[eb]<-vd ... the paper's query vs-[eb]<-vd-[eadj]->vnbr
        // with eb.time < eadj.time + alpha at 1% selectivity.
        TwoHopViewDef view;
        view.name = "EPt";
        view.kind = EpKind::kDstFwd;
        view.pred.AddRef(PropRef{PropSite::kBoundEdge, halves.time_key, false, false},
                         CmpOp::kLt,
                         PropRef{PropSite::kAdjEdge, halves.time_key, false, false},
                         -980000);  // time_range - 1%: eb.time < eadj.time - 980000
        store.CreateEpIndex(view, IndexConfig::Default());
      }
      double rate = MeasureInsertRate(&halves, &store);
      char buf[32];
      if (rate >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.2fM/s", rate / 1e6);
      } else {
        std::snprintf(buf, sizeof(buf), "%.0fK/s", rate / 1e3);
      }
      row.push_back(buf);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nShape vs paper: rates fall as maintenance work grows; the EP config\n"
      "is 1-2 orders of magnitude slower than the VP configs (delta queries\n"
      "per insert), matching the 41K-110K vs 706K-2.1M split in Section V-F.\n");
  return 0;
}
