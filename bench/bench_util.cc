#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace aplus {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t width : widths) {
    for (size_t i = 0; i < width + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string TablePrinter::Seconds(double s) {
  char buf[32];
  if (s < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.4fms", s * 1000.0);
  } else if (s < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", s);
  }
  return buf;
}

std::string TablePrinter::Mb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fMB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

std::string TablePrinter::Speedup(double base, double other) {
  char buf[32];
  if (other <= 0.0) return "-";
  std::snprintf(buf, sizeof(buf), "%.2fx", base / other);
  return buf;
}

std::string TablePrinter::Count(uint64_t n) {
  char buf[32];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::fflush(stdout);
}

uint64_t IntFromEnv(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long long v = std::atoll(env);
  return v > 0 ? static_cast<uint64_t>(v) : fallback;
}

uint64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  unsigned long long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<uint64_t>(kb) * 1024;
}

}  // namespace aplus
