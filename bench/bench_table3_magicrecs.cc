// Regenerates Table III: the MagicRecs recommendation queries MR1..MR3
// (Section V-C1, Figure 4) under configs
//   D     : primary indexes only
//   D+VPt : plus a forward secondary vertex-partitioned index that shares
//           the primary's partitioning levels and sorts inner lists on
//           the edge `time` property.
// alpha is picked at 5% selectivity. Expected shape (paper): uniform
// speedups (up to ~10x on MR3) at ~1.1x memory, because VPt shares the
// primary partitioning levels and stores only offset lists.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "workloads.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

// Aggregate runtime of one MR query over a fixed sample of start users
// (the paper fixes a1 samples for MR3; we sample uniformly for all).
struct MrResult {
  double seconds = 0.0;
  uint64_t matches = 0;
};

// Start users for the MR queries: ordinary users, spread across the ID
// space. Under preferential attachment the lowest IDs are extreme hubs;
// a single hub start would dominate the aggregate with
// intersection-bound work that no index configuration can change. The
// paper similarly restricts a1 to a fixed vertex sample for MR3 (§V-C1).
std::vector<vertex_id_t> SampleUsers(const Database& db, uint32_t sample) {
  uint64_t nv = db.graph().num_vertices();
  double avg = db.graph().average_degree();
  const PrimaryIndex* fwd = db.index_store().primary(Direction::kFwd);
  std::vector<vertex_id_t> users;
  for (uint64_t i = 0; users.size() < sample && i < sample * 20ULL; ++i) {
    vertex_id_t u =
        static_cast<vertex_id_t>(nv / 2 + (i * 2654435761ULL) % (nv / 2));
    if (fwd->GetFullList(u).size() > 3 * avg) continue;  // skip hubs
    users.push_back(u);
  }
  return users;
}

MrResult RunMr(Database* db, int mr, prop_key_t time_key, int64_t alpha,
               const std::vector<vertex_id_t>& users) {
  MrResult result;
  label_t follows = db->graph().catalog().FindEdgeLabel("E");
  std::vector<double> per_user;
  for (vertex_id_t u : users) {
    QueryGraph query = MakeMrQuery(mr, time_key, alpha, u, follows);
    // Best of two runs per start user (suppresses cold-cache noise on
    // sub-millisecond queries).
    QueryOutcome r1 = db->Execute(query);
    QueryOutcome r2 = db->Execute(query);
    per_user.push_back(std::min(r1.seconds, r2.seconds));
    result.matches += r1.count;
  }
  // Median x count: robust to the heavy-tailed start users whose
  // intersection-bound work no index configuration changes.
  std::sort(per_user.begin(), per_user.end());
  double median = per_user.empty() ? 0.0 : per_user[per_user.size() / 2];
  result.seconds = median * static_cast<double>(per_user.size());
  return result;
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.0008);
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);
  const int64_t time_range = 1000000;
  const int64_t alpha = time_range / 20;  // 5% selectivity

  for (size_t spec_idx = 0; spec_idx < 3; ++spec_idx) {  // Ork, LJ, WT
    Graph graph;
    GenerateDataset(specs[spec_idx], scale, 4000 + spec_idx, &graph);
    prop_key_t time_key = AddTimeProperty(4100 + spec_idx, time_range, &graph);
    uint64_t ne = graph.num_edges();
    Database db(std::move(graph));
    db.BuildPrimaryIndexes();
    size_t mm_d = db.IndexMemoryBytes();

    uint32_t sample = specs[spec_idx].name == "Ork" ? 40 : 80;
    std::vector<vertex_id_t> mr12_users = SampleUsers(db, sample);
    std::vector<vertex_id_t> mr3_users = SampleUsers(db, sample / 2);

    PrintBanner("Table III: " + specs[spec_idx].name + " (" + TablePrinter::Count(ne) +
                " edges, alpha at 5%)");
    std::vector<MrResult> d_results;
    for (int mr = 1; mr <= 3; ++mr) {
      d_results.push_back(RunMr(&db, mr, time_key, alpha, mr == 3 ? mr3_users : mr12_users));
    }

    // D+VPt: shares the primary partitioning levels; sorts on time.
    IndexConfig vpt_config = IndexConfig::Default();
    vpt_config.sorts.clear();
    vpt_config.sorts.push_back({SortSource::kEdgeProp, time_key});
    double ic = 0.0;
    db.CreateVpIndex("VPt", Predicate(), vpt_config, Direction::kFwd, &ic);
    size_t mm_vpt = db.IndexMemoryBytes();

    std::vector<MrResult> vpt_results;
    for (int mr = 1; mr <= 3; ++mr) {
      vpt_results.push_back(RunMr(&db, mr, time_key, alpha, mr == 3 ? mr3_users : mr12_users));
    }

    TablePrinter table({"Config", "MR1", "MR2", "MR3", "Mm", "IC"});
    table.AddRow({"D", TablePrinter::Seconds(d_results[0].seconds),
                  TablePrinter::Seconds(d_results[1].seconds),
                  TablePrinter::Seconds(d_results[2].seconds), TablePrinter::Mb(mm_d), "-"});
    table.AddRow(
        {"D+VPt",
         TablePrinter::Seconds(vpt_results[0].seconds) + " (" +
             TablePrinter::Speedup(d_results[0].seconds, vpt_results[0].seconds) + ")",
         TablePrinter::Seconds(vpt_results[1].seconds) + " (" +
             TablePrinter::Speedup(d_results[1].seconds, vpt_results[1].seconds) + ")",
         TablePrinter::Seconds(vpt_results[2].seconds) + " (" +
             TablePrinter::Speedup(d_results[2].seconds, vpt_results[2].seconds) + ")",
         TablePrinter::Mb(mm_vpt) + " (" +
             TablePrinter::Speedup(static_cast<double>(mm_vpt), static_cast<double>(mm_d)) + ")",
         TablePrinter::Seconds(ic)});
    table.Print();

    for (int mr = 0; mr < 3; ++mr) {
      if (d_results[mr].matches != vpt_results[mr].matches) {
        std::printf("WARNING: MR%d counts disagree: %llu vs %llu\n", mr + 1,
                    static_cast<unsigned long long>(d_results[mr].matches),
                    static_cast<unsigned long long>(vpt_results[mr].matches));
      }
    }
    // Clean up the secondary index before the next dataset (db goes out
    // of scope anyway; kept explicit for clarity).
    db.index_store().DropSecondaryIndexes();
  }
  std::printf(
      "\nShape vs paper: uniform D+VPt speedups at ~1.1x memory (shared\n"
      "partitioning levels + offset lists).\n");
  return 0;
}
