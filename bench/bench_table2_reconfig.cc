// Regenerates Table II: labelled subgraph queries SQ1..SQ13 under the
// three primary A+ index configurations of Section V-B —
//   D  : partition by edge label, sort by neighbour ID (system default)
//   Ds : D's partitioning, sort by neighbour label then neighbour ID
//   Dp : D's sorting, extra partitioning level on neighbour label
// Reports runtime per query, speedup vs D, index memory (Mm) and
// reconfiguration time (IR). The expected *shape* (paper): Ds beats D on
// every query with zero memory overhead; Dp beats Ds with a small
// (~1.05-1.15x) memory overhead from the extra partitioning level.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "workloads.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

struct DatasetRun {
  std::string name;
  size_t spec_index;
  uint32_t vlabels;
  uint32_t elabels;
};

IndexConfig ConfigD() { return IndexConfig::Default(); }

IndexConfig ConfigDs() {
  IndexConfig config = IndexConfig::Default();
  config.sorts.clear();
  config.sorts.push_back({SortSource::kNbrLabel, kInvalidPropKey});
  config.sorts.push_back({SortSource::kNbrId, kInvalidPropKey});
  return config;
}

IndexConfig ConfigDp() {
  IndexConfig config = IndexConfig::Default();
  config.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
  return config;
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.0008);
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);
  // Ork_{8,2}, LJ_{2,4}, WT_{4,2} as in Table II.
  std::vector<DatasetRun> runs = {
      {"Ork8,2", 0, 8, 2},
      {"LJ2,4", 1, 2, 4},
      {"WT4,2", 2, 4, 2},
  };
  // Smoke knobs: cap the per-dataset query count (SQ5/SQ13 dominate the
  // full sweep) and/or the dataset count so a smoke run finishes in a
  // few seconds; both default to the full Table II sweep.
  const size_t max_queries = static_cast<size_t>(IntFromEnv("APLUS_TABLE2_QUERIES", 13));
  const size_t max_datasets = static_cast<size_t>(IntFromEnv("APLUS_TABLE2_DATASETS", runs.size()));
  if (max_datasets < runs.size()) runs.resize(max_datasets);

  for (const DatasetRun& run : runs) {
    Graph graph;
    GenerateDataset(specs[run.spec_index], scale, 2000 + run.spec_index, &graph);
    AssignRandomLabels(run.vlabels, run.elabels, 3000 + run.spec_index, &graph);
    uint64_t ne = graph.num_edges();
    Database db(std::move(graph));
    std::vector<NamedQuery> workload = MakeSqWorkload(db.graph());

    PrintBanner("Table II: " + run.name + " (" + TablePrinter::Count(ne) + " edges)");
    TablePrinter table({"Query", "D", "Ds", "Ds speedup", "Dp", "Dp speedup", "count"});

    struct ConfigResult {
      double seconds;
      uint64_t count;
    };
    // Query -> config -> result. SQ14 is omitted like in the paper.
    const size_t kNumQueries = std::min<size_t>(13, max_queries);
    std::vector<std::vector<ConfigResult>> results(kNumQueries);

    double ir_ds = 0.0;
    double ir_dp = 0.0;
    size_t mm_d = 0;
    size_t mm_dp = 0;
    for (int config_idx = 0; config_idx < 3; ++config_idx) {
      IndexConfig config =
          config_idx == 0 ? ConfigD() : (config_idx == 1 ? ConfigDs() : ConfigDp());
      double ir = db.BuildPrimaryIndexes(config);
      if (config_idx == 0) mm_d = db.IndexMemoryBytes();
      if (config_idx == 1) ir_ds = ir;
      if (config_idx == 2) {
        ir_dp = ir;
        mm_dp = db.IndexMemoryBytes();
      }
      for (size_t q = 0; q < kNumQueries; ++q) {
        QueryOutcome r = db.Execute(workload[q].query);
        results[q].push_back({r.seconds, r.count});
      }
    }

    for (size_t q = 0; q < kNumQueries; ++q) {
      const auto& r = results[q];
      if (r[0].count != r[1].count || r[0].count != r[2].count) {
        std::printf("WARNING: %s config counts disagree: %llu / %llu / %llu\n",
                    workload[q].name.c_str(), static_cast<unsigned long long>(r[0].count),
                    static_cast<unsigned long long>(r[1].count),
                    static_cast<unsigned long long>(r[2].count));
      }
      table.AddRow({workload[q].name, TablePrinter::Seconds(r[0].seconds),
                    TablePrinter::Seconds(r[1].seconds),
                    TablePrinter::Speedup(r[0].seconds, r[1].seconds),
                    TablePrinter::Seconds(r[2].seconds),
                    TablePrinter::Speedup(r[0].seconds, r[2].seconds),
                    TablePrinter::Count(r[0].count)});
    }
    table.AddRow({"Mm", TablePrinter::Mb(mm_d), TablePrinter::Mb(mm_d), "1.0x",
                  TablePrinter::Mb(mm_dp),
                  TablePrinter::Speedup(static_cast<double>(mm_dp), static_cast<double>(mm_d)),
                  ""});
    table.AddRow({"IR", "-", TablePrinter::Seconds(ir_ds), "", TablePrinter::Seconds(ir_dp), "",
                  ""});
    table.Print();
  }
  std::printf(
      "\nShape vs paper: Ds >= 1x on all queries at 1.0x memory; Dp fastest\n"
      "with ~1.05-1.15x memory from the extra partitioning level.\n");
  return 0;
}
