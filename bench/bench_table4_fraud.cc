// Regenerates Table IV: fraud-detection queries MF1..MF5 (Figure 5)
// under configs
//   D          : primary indexes only
//   D+VPc      : city-sorted secondary VP indexes in both directions
//                (enables the MULTI-EXTEND WCOJ plans of Section V-C2)
//   D+VPc+EPc  : plus the MoneyFlow edge-partitioned index of Section V-D
//                (second-level partitioning on vnbr.acc, sort on
//                vnbr.city, predicate Pf with 5%-selectivity alpha).
// Reports runtime, memory, |E_indexed| and IC time. Also prints the MF3
// plan under the full config, which should be the Figure 6 shape
// (Scan -> Extend -> 3-way MULTI-EXTEND mixing VPc and EPc lists).
// Expected shape (paper): VPc speeds up MF1..MF4 (up to ~25x) at ~1.17x
// memory; EPc adds plans for MF3/MF4/MF5 (up to ~72x) at ~2.2x memory.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "workloads.h"

using namespace aplus;  // NOLINT: bench brevity

int main() {
  double scale = ScaleFromEnv(0.0008);
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);

  for (size_t spec_idx = 0; spec_idx < 3; ++spec_idx) {  // Ork, LJ, WT
    Graph graph;
    GenerateDataset(specs[spec_idx], scale, 5000 + spec_idx, &graph);
    // Keep the paper's 4417-city domain: the city-equality JOIN
    // selectivity (1/#cities) is what enables the MULTI-EXTEND wins of
    // Section V-C2, and it must not be diluted by the scale-down.
    uint32_t num_cities = kNumCities;
    FinancialPropKeys keys = AddFinancialProperties(5100 + spec_idx, &graph, num_cities);
    uint64_t ne = graph.num_edges();
    Database db(std::move(graph));
    db.BuildPrimaryIndexes();

    MfParams params;
    params.keys = keys;
    params.alpha = 50;  // ~5% of the [1,1000] amount range
    params.id_base = static_cast<int64_t>(db.graph().num_vertices() / 2);
    params.id_span = static_cast<int64_t>(db.graph().num_vertices() / 50);
    // MF4's bound city beta: a city that actually occurs (the sparse
    // 4417-city domain on a scaled-down graph leaves many cities empty).
    params.beta_city = static_cast<category_t>(
        db.graph()
            .vertex_props()
            .Get(keys.city, static_cast<vertex_id_t>(db.graph().num_vertices() / 2))
            .AsInt64());
    params.transfer_label = db.graph().catalog().FindEdgeLabel("E");

    PrintBanner("Table IV: " + specs[spec_idx].name + " (" + TablePrinter::Count(ne) +
                " edges, " + std::to_string(num_cities) + " cities)");

    struct Row {
      std::vector<double> seconds = std::vector<double>(5, -1.0);
      std::vector<uint64_t> counts = std::vector<uint64_t>(5, 0);
      size_t memory = 0;
      uint64_t edges_indexed = 0;
      double ic = 0.0;
    };
    Row row_d;
    Row row_vpc;
    Row row_epc;

    auto run_all = [&](Row* row, bool skip_mf5) {
      for (int mf = 1; mf <= 5; ++mf) {
        if (mf == 5 && skip_mf5) continue;  // MF5 takes very long pre-EPc on big sets
        QueryGraph query = MakeMfQuery(mf, params);
        QueryOutcome r = db.Execute(query);
        row->seconds[mf - 1] = r.seconds;
        row->counts[mf - 1] = r.count;
      }
      row->memory = db.IndexMemoryBytes();
      row->edges_indexed = db.index_store().TotalEdgesIndexed();
    };

    run_all(&row_d, /*skip_mf5=*/false);

    // D+VPc.
    IndexConfig vpc = IndexConfig::Default();
    vpc.sorts.clear();
    vpc.sorts.push_back({SortSource::kNbrProp, keys.city});
    double ic1 = 0.0;
    double ic2 = 0.0;
    db.CreateVpIndex("VPc", Predicate(), vpc, Direction::kFwd, &ic1);
    db.CreateVpIndex("VPc", Predicate(), vpc, Direction::kBwd, &ic2);
    row_vpc.ic = ic1 + ic2;
    run_all(&row_vpc, /*skip_mf5=*/true);  // paper reports no VPc-only plan for MF5

    // D+VPc+EPc: Section V-D — Destination-FW MoneyFlow view with
    // vnbr.acc second-level partitioning, vnbr.city sort, Pf predicate.
    Predicate flow;
    flow.AddRef(PropRef{PropSite::kBoundEdge, keys.date, false, false}, CmpOp::kLt,
                PropRef{PropSite::kAdjEdge, keys.date, false, false});
    flow.AddRef(PropRef{PropSite::kAdjEdge, keys.amount, false, false}, CmpOp::kLt,
                PropRef{PropSite::kBoundEdge, keys.amount, false, false});
    flow.AddRef(PropRef{PropSite::kBoundEdge, keys.amount, false, false}, CmpOp::kLt,
                PropRef{PropSite::kAdjEdge, keys.amount, false, false}, params.alpha);
    IndexConfig epc;
    epc.partitions.push_back({PartitionSource::kNbrProp, keys.acc});
    epc.sorts.push_back({SortSource::kNbrProp, keys.city});
    double ic3 = 0.0;
    db.CreateEpIndex("EPc", EpKind::kDstFwd, flow, epc, &ic3);
    row_epc.ic = ic3;
    run_all(&row_epc, /*skip_mf5=*/false);

    auto cell = [&](const Row& row, const Row& base, int mf) -> std::string {
      double s = row.seconds[mf - 1];
      if (s < 0) return "-";
      std::string out = TablePrinter::Seconds(s);
      if (&row != &base && base.seconds[mf - 1] >= 0) {
        out += " (" + TablePrinter::Speedup(base.seconds[mf - 1], s) + ")";
      }
      return out;
    };

    TablePrinter table(
        {"Config", "MF1", "MF2", "MF3", "MF4", "MF5", "Mem", "|Eindexed|", "IC"});
    table.AddRow({"D", cell(row_d, row_d, 1), cell(row_d, row_d, 2), cell(row_d, row_d, 3),
                  cell(row_d, row_d, 4), cell(row_d, row_d, 5), TablePrinter::Mb(row_d.memory),
                  TablePrinter::Count(row_d.edges_indexed), "-"});
    table.AddRow({"D+VPc", cell(row_vpc, row_d, 1), cell(row_vpc, row_d, 2),
                  cell(row_vpc, row_d, 3), cell(row_vpc, row_d, 4), cell(row_vpc, row_d, 5),
                  TablePrinter::Mb(row_vpc.memory) + " (" +
                      TablePrinter::Speedup(static_cast<double>(row_vpc.memory),
                                            static_cast<double>(row_d.memory)) +
                      ")",
                  TablePrinter::Count(row_vpc.edges_indexed), TablePrinter::Seconds(row_vpc.ic)});
    table.AddRow({"D+VPc+EPc", cell(row_epc, row_d, 1), cell(row_epc, row_d, 2),
                  cell(row_epc, row_d, 3), cell(row_epc, row_d, 4), cell(row_epc, row_d, 5),
                  TablePrinter::Mb(row_epc.memory) + " (" +
                      TablePrinter::Speedup(static_cast<double>(row_epc.memory),
                                            static_cast<double>(row_d.memory)) +
                      ")",
                  TablePrinter::Count(row_epc.edges_indexed), TablePrinter::Seconds(row_epc.ic)});
    table.Print();

    for (int mf = 1; mf <= 5; ++mf) {
      if (row_vpc.seconds[mf - 1] >= 0 && row_d.counts[mf - 1] != row_vpc.counts[mf - 1]) {
        std::printf("WARNING: MF%d counts disagree under VPc\n", mf);
      }
      if (row_epc.seconds[mf - 1] >= 0 && row_d.seconds[mf - 1] >= 0 &&
          row_d.counts[mf - 1] != row_epc.counts[mf - 1]) {
        std::printf("WARNING: MF%d counts disagree under EPc\n", mf);
      }
    }

    // Figure 6: the MF3 plan under the full configuration.
    std::printf("\nMF3 plan under D+VPc+EPc (expected Figure 6 shape):\n%s\n",
                db.Explain(MakeMfQuery(3, params)).c_str());
  }
  std::printf(
      "\nShape vs paper: VPc uniformly accelerates MF1..MF4 at ~1.2x memory;\n"
      "EPc unlocks MF3/MF4/MF5 plans with the largest speedups at ~2.2x memory.\n");
  return 0;
}
