#include "workloads.h"

#include "util/logging.h"

namespace aplus {

namespace {

// Cyclic label pickers over the graph's generated VL*/EL* sets.
struct LabelPool {
  explicit LabelPool(const Graph& graph) {
    for (uint32_t i = 0;; ++i) {
      label_t label = graph.catalog().FindVertexLabel("VL" + std::to_string(i));
      if (label == kInvalidLabel) break;
      vlabels.push_back(label);
    }
    for (uint32_t i = 0;; ++i) {
      label_t label = graph.catalog().FindEdgeLabel("EL" + std::to_string(i));
      if (label == kInvalidLabel) break;
      elabels.push_back(label);
    }
    if (vlabels.empty()) vlabels.push_back(kInvalidLabel);
    if (elabels.empty()) elabels.push_back(kInvalidLabel);
  }

  label_t V(int i) const { return vlabels[i % vlabels.size()]; }
  label_t E(int i) const { return elabels[i % elabels.size()]; }

  std::vector<label_t> vlabels;
  std::vector<label_t> elabels;
};

// Builds a query from an edge list over `n` vertices, labelling vertex i
// with pool.V(i) and edge j with pool.E(j).
QueryGraph FromShape(const LabelPool& pool, int n,
                     const std::vector<std::pair<int, int>>& edges) {
  QueryGraph query;
  for (int i = 0; i < n; ++i) {
    query.AddVertex("v" + std::to_string(i + 1), pool.V(i));
  }
  int j = 0;
  for (auto [from, to] : edges) {
    query.AddEdge(from, to, pool.E(j), "e" + std::to_string(j + 1));
    ++j;
  }
  return query;
}

}  // namespace

std::vector<NamedQuery> MakeSqWorkload(const Graph& graph) {
  LabelPool pool(graph);
  std::vector<NamedQuery> workload;
  auto add = [&](const std::string& name, int n,
                 const std::vector<std::pair<int, int>>& edges) {
    workload.push_back(NamedQuery{name, FromShape(pool, n, edges)});
  };

  // Acyclic, sparse.
  add("SQ1", 3, {{0, 1}, {1, 2}});                            // 2-path
  add("SQ2", 4, {{0, 1}, {1, 2}, {2, 3}});                    // 3-path
  add("SQ3", 4, {{0, 1}, {0, 2}, {0, 3}});                    // out-star
  add("SQ4", 4, {{1, 0}, {2, 0}, {0, 3}});                    // in-in-out
  add("SQ5", 5, {{0, 1}, {1, 2}, {0, 3}, {3, 4}});            // two branches
  // Cyclic, increasingly dense.
  add("SQ6", 3, {{0, 1}, {1, 2}, {0, 2}});                    // triangle
  add("SQ7", 4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});            // square
  add("SQ8", 4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});            // tailed triangle
  add("SQ9", 4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}});    // diamond
  add("SQ10", 4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}, {1, 3}});  // 4-clique
  add("SQ11", 5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});   // 5-cycle
  add("SQ12", 5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});  // bowtie
  add("SQ13", 6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});   // 5-edge path
  // SQ14: 7 vertices, dense (near-clique; omitted from Table II in the
  // paper for producing almost no tuples, kept here for completeness).
  add("SQ14", 7,
      {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6},
       {2, 3}, {2, 4}, {2, 5}, {2, 6}, {3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6}});
  return workload;
}

QueryGraph MakeMrQuery(int index, prop_key_t time_key, int64_t alpha, vertex_id_t a1,
                       label_t follows_label) {
  APLUS_CHECK_GE(index, 1);
  APLUS_CHECK_LE(index, 3);
  int k = index + 1;  // number of recently-followed users a2..a(k)
  QueryGraph query;
  int v_a1 = query.AddVertex("a1", kInvalidLabel, a1);
  std::vector<int> followed;
  for (int i = 0; i < k - 1; ++i) {
    followed.push_back(query.AddVertex("a" + std::to_string(i + 2)));
  }
  int recommended = query.AddVertex("a" + std::to_string(k + 1));
  for (int i = 0; i < k - 1; ++i) {
    int e = query.AddEdge(v_a1, followed[i], follows_label, "e" + std::to_string(i + 1));
    // P_alpha(e_i): e_i.time < alpha on a1's edges (Figure 4).
    QueryComparison recent;
    recent.lhs = QueryPropRef{e, true, time_key, false};
    recent.op = CmpOp::kLt;
    recent.rhs_const = Value::Int64(alpha);
    query.AddPredicate(recent);
  }
  for (int i = 0; i < k - 1; ++i) {
    query.AddEdge(recommended, followed[i], follows_label, "f" + std::to_string(i + 1));
  }
  return query;
}

void AddFlowPredicate(QueryGraph* query, int ei_var, int ej_var, const FinancialPropKeys& keys,
                      int64_t alpha) {
  // ei.date < ej.date
  QueryComparison date;
  date.lhs = QueryPropRef{ei_var, true, keys.date, false};
  date.op = CmpOp::kLt;
  date.rhs_is_const = false;
  date.rhs_ref = QueryPropRef{ej_var, true, keys.date, false};
  query->AddPredicate(date);
  // ei.amt > ej.amt
  QueryComparison amt;
  amt.lhs = QueryPropRef{ei_var, true, keys.amount, false};
  amt.op = CmpOp::kGt;
  amt.rhs_is_const = false;
  amt.rhs_ref = QueryPropRef{ej_var, true, keys.amount, false};
  query->AddPredicate(amt);
  // ei.amt < ej.amt + alpha
  QueryComparison cut;
  cut.lhs = QueryPropRef{ei_var, true, keys.amount, false};
  cut.op = CmpOp::kLt;
  cut.rhs_is_const = false;
  cut.rhs_ref = QueryPropRef{ej_var, true, keys.amount, false};
  cut.rhs_addend = alpha;
  query->AddPredicate(cut);
}

namespace {

void AddCityEq(QueryGraph* query, int a, int b, const FinancialPropKeys& keys) {
  QueryComparison eq;
  eq.lhs = QueryPropRef{a, false, keys.city, false};
  eq.op = CmpOp::kEq;
  eq.rhs_is_const = false;
  eq.rhs_ref = QueryPropRef{b, false, keys.city, false};
  query->AddPredicate(eq);
}

void AddAccEq(QueryGraph* query, int v, category_t acc, const FinancialPropKeys& keys) {
  QueryComparison eq;
  eq.lhs = QueryPropRef{v, false, keys.acc, false};
  eq.op = CmpOp::kEq;
  eq.rhs_const = Value::Category(acc);
  query->AddPredicate(eq);
}

void AddIdWindow(QueryGraph* query, int v, int64_t base, int64_t span) {
  QueryComparison ge;
  ge.lhs = QueryPropRef{v, false, kInvalidPropKey, true};
  ge.op = CmpOp::kGe;
  ge.rhs_const = Value::Int64(base);
  query->AddPredicate(ge);
  QueryComparison lt;
  lt.lhs = QueryPropRef{v, false, kInvalidPropKey, true};
  lt.op = CmpOp::kLt;
  lt.rhs_const = Value::Int64(base + span);
  query->AddPredicate(lt);
}

}  // namespace

QueryGraph MakeMfQuery(int index, const MfParams& params) {
  const FinancialPropKeys& keys = params.keys;
  QueryGraph query;
  switch (index) {
    case 1: {
      // MF1 (Figure 5a): directed 4-cycle a1->a2->a3->a4->a1 with
      // ai.acc = CQ and a2.city = a4.city.
      int a1 = query.AddVertex("a1");
      int a2 = query.AddVertex("a2");
      int a3 = query.AddVertex("a3");
      int a4 = query.AddVertex("a4");
      query.AddEdge(a1, a2, params.transfer_label, "e1");
      query.AddEdge(a2, a3, params.transfer_label, "e2");
      query.AddEdge(a3, a4, params.transfer_label, "e3");
      query.AddEdge(a4, a1, params.transfer_label, "e4");
      for (int v : {a1, a2, a3, a4}) AddAccEq(&query, v, kAccCq, keys);
      AddCityEq(&query, a2, a4, keys);
      return query;
    }
    case 2: {
      // MF2 (Figure 5b): 3-edge path with all cities equal.
      int a1 = query.AddVertex("a1");
      int a2 = query.AddVertex("a2");
      int a3 = query.AddVertex("a3");
      int a4 = query.AddVertex("a4");
      query.AddEdge(a1, a2, params.transfer_label, "e1");
      query.AddEdge(a2, a3, params.transfer_label, "e2");
      query.AddEdge(a3, a4, params.transfer_label, "e3");
      AddCityEq(&query, a1, a2, keys);
      AddCityEq(&query, a2, a3, keys);
      AddCityEq(&query, a3, a4, keys);
      return query;
    }
    case 3: {
      // MF3 (Figure 5c / Figure 6): a1->a2, a1->a3, a3->a5, a1->a4 with
      // a2.city = a4.city = a5.city, a3.ID < bound, ai.acc = CQ for
      // a1..a4, a5.acc = SV, Pf(e2, e3).
      int a1 = query.AddVertex("a1");
      int a2 = query.AddVertex("a2");
      int a3 = query.AddVertex("a3");
      int a4 = query.AddVertex("a4");
      int a5 = query.AddVertex("a5");
      int e1 = query.AddEdge(a1, a2, params.transfer_label, "e1");
      int e2 = query.AddEdge(a1, a3, params.transfer_label, "e2");
      int e3 = query.AddEdge(a3, a5, params.transfer_label, "e3");
      int e4 = query.AddEdge(a1, a4, params.transfer_label, "e4");
      (void)e1;
      (void)e4;
      AddCityEq(&query, a2, a4, keys);
      AddCityEq(&query, a4, a5, keys);
      AddIdWindow(&query, a3, params.id_base, params.id_span);
      for (int v : {a1, a2, a3, a4}) AddAccEq(&query, v, kAccCq, keys);
      AddAccEq(&query, a5, kAccSv, keys);
      AddFlowPredicate(&query, e2, e3, keys, params.alpha);
      return query;
    }
    case 4: {
      // MF4 (Figure 5d): two 2-step flows out of a1 — a5<-a4<-a1->a2->a3
      // with Pf(e1, e2) on the a2 branch and Pf(e3, e4) on the a4
      // branch, a1.city = beta, a2.city = a4.city, a2/a3 CQ, a4/a5 SV.
      int a1 = query.AddVertex("a1");
      int a2 = query.AddVertex("a2");
      int a3 = query.AddVertex("a3");
      int a4 = query.AddVertex("a4");
      int a5 = query.AddVertex("a5");
      int e1 = query.AddEdge(a1, a2, params.transfer_label, "e1");
      int e2 = query.AddEdge(a2, a3, params.transfer_label, "e2");
      int e3 = query.AddEdge(a1, a4, params.transfer_label, "e3");
      int e4 = query.AddEdge(a4, a5, params.transfer_label, "e4");
      QueryComparison beta;
      beta.lhs = QueryPropRef{a1, false, keys.city, false};
      beta.op = CmpOp::kEq;
      beta.rhs_const = Value::Category(params.beta_city);
      query.AddPredicate(beta);
      AddCityEq(&query, a2, a4, keys);
      AddAccEq(&query, a2, kAccCq, keys);
      AddAccEq(&query, a3, kAccCq, keys);
      AddAccEq(&query, a4, kAccSv, keys);
      AddAccEq(&query, a5, kAccSv, keys);
      AddFlowPredicate(&query, e1, e2, keys, params.alpha);
      AddFlowPredicate(&query, e3, e4, keys, params.alpha);
      return query;
    }
    case 5: {
      // MF5 (Figure 5e): 4-edge flow path with chained Pf predicates,
      // a1.ID < bound and ai.acc = CQ.
      int a1 = query.AddVertex("a1");
      int a2 = query.AddVertex("a2");
      int a3 = query.AddVertex("a3");
      int a4 = query.AddVertex("a4");
      int a5 = query.AddVertex("a5");
      int e1 = query.AddEdge(a1, a2, params.transfer_label, "e1");
      int e2 = query.AddEdge(a2, a3, params.transfer_label, "e2");
      int e3 = query.AddEdge(a3, a4, params.transfer_label, "e3");
      int e4 = query.AddEdge(a4, a5, params.transfer_label, "e4");
      AddIdWindow(&query, a1, params.id_base, params.id_span);
      for (int v : {a1, a2, a3, a4, a5}) AddAccEq(&query, v, kAccCq, keys);
      AddFlowPredicate(&query, e1, e2, keys, params.alpha);
      AddFlowPredicate(&query, e2, e3, keys, params.alpha);
      AddFlowPredicate(&query, e3, e4, keys, params.alpha);
      return query;
    }
    default:
      APLUS_CHECK(false) << "MF index out of range: " << index;
  }
  return query;
}

}  // namespace aplus
