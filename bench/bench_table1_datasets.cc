// Regenerates Table I: the datasets used throughout Section V. The
// paper's graphs are public snapshots (Orkut, LiveJournal, Wiki-topcats,
// BerkStan); this harness generates their offline analogues (see
// DESIGN.md "Substitutions") at APLUS_SCALE (default 0.002) and prints
// the generated and paper statistics side by side.

#include <cstdio>

#include "bench_util.h"
#include "datagen/power_law_generator.h"

using namespace aplus;  // NOLINT: bench brevity

int main() {
  double scale = ScaleFromEnv(0.002);
  PrintBanner("Table I: Datasets used (generated analogues at scale " + std::to_string(scale) +
              ")");
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);
  TablePrinter table({"Name", "#Vertices", "#Edges", "Avg. degree", "paper #V", "paper #E",
                      "paper avg"});
  for (size_t i = 0; i < count; ++i) {
    Graph graph;
    GenerateDataset(specs[i], scale, /*seed=*/1000 + i, &graph);
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.2f", graph.average_degree());
    char paper_avg[32];
    std::snprintf(paper_avg, sizeof(paper_avg), "%.2f", specs[i].avg_degree);
    table.AddRow({specs[i].name, TablePrinter::Count(graph.num_vertices()),
                  TablePrinter::Count(graph.num_edges()), avg,
                  TablePrinter::Count(specs[i].paper_vertices),
                  TablePrinter::Count(specs[i].paper_edges), paper_avg});
  }
  table.Print();
  std::printf(
      "\nNote: generated graphs preserve the paper datasets' average degrees\n"
      "and skewed (power-law) degree distributions at laptop scale; set\n"
      "APLUS_SCALE to grow them toward paper scale.\n");
  return 0;
}
