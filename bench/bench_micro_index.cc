// Google-benchmark microbenchmarks of the index primitives: list lookup,
// offset-list indirection overhead, sorted intersections, and
// binary-searched sorted-prefix access (the VPt access path).

#include <benchmark/benchmark.h>

#include "datagen/financial_props.h"
#include "datagen/power_law_generator.h"
#include "index/primary_index.h"
#include "index/vp_index.h"

namespace aplus {
namespace {

struct Fixture {
  Fixture() {
    PowerLawParams params;
    params.num_vertices = 50000;
    params.avg_degree = 15.0;
    GeneratePowerLawGraph(params, &graph);
    keys = AddFinancialProperties(3, &graph, 100);
    primary = std::make_unique<PrimaryIndex>(&graph, Direction::kFwd);
    primary->Build(IndexConfig::Default());
    OneHopViewDef view;
    view.name = "all";
    vp = std::make_unique<VpIndex>(&graph, primary.get(), view, IndexConfig::Default());
    vp->Build();

    IndexConfig by_date = IndexConfig::Default();
    by_date.sorts.clear();
    by_date.sorts.push_back({SortSource::kEdgeProp, keys.date});
    OneHopViewDef view2;
    view2.name = "by_date";
    vp_date = std::make_unique<VpIndex>(&graph, primary.get(), view2, by_date);
    vp_date->Build();
  }

  Graph graph;
  FinancialPropKeys keys;
  std::unique_ptr<PrimaryIndex> primary;
  std::unique_ptr<VpIndex> vp;
  std::unique_ptr<VpIndex> vp_date;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_PrimaryGetList(benchmark::State& state) {
  Fixture& f = GetFixture();
  vertex_id_t v = 0;
  for (auto _ : state) {
    AdjListSlice slice = f.primary->GetFullList(v);
    benchmark::DoNotOptimize(slice.len);
    v = (v + 97) % f.graph.num_vertices();
  }
}
BENCHMARK(BM_PrimaryGetList);

void BM_ScanDirectIdList(benchmark::State& state) {
  Fixture& f = GetFixture();
  uint64_t sum = 0;
  vertex_id_t v = 0;
  for (auto _ : state) {
    AdjListSlice slice = f.primary->GetFullList(v);
    for (uint32_t i = 0; i < slice.size(); ++i) sum += slice.NbrAt(i);
    benchmark::DoNotOptimize(sum);
    v = (v + 97) % f.graph.num_vertices();
  }
}
BENCHMARK(BM_ScanDirectIdList);

void BM_ScanOffsetList(benchmark::State& state) {
  // Same scan through the offset-list indirection (Section III-B3's
  // "one indirection, still cache friendly" claim).
  Fixture& f = GetFixture();
  uint64_t sum = 0;
  vertex_id_t v = 0;
  for (auto _ : state) {
    AdjListSlice slice = f.vp->GetFullList(v);
    for (uint32_t i = 0; i < slice.size(); ++i) sum += slice.NbrAt(i);
    benchmark::DoNotOptimize(sum);
    v = (v + 97) % f.graph.num_vertices();
  }
}
BENCHMARK(BM_ScanOffsetList);

void BM_SortedIntersection(benchmark::State& state) {
  Fixture& f = GetFixture();
  vertex_id_t a = 1;
  vertex_id_t b = 2;
  uint64_t matches = 0;
  for (auto _ : state) {
    AdjListSlice la = f.primary->GetFullList(a);
    AdjListSlice lb = f.primary->GetFullList(b);
    uint32_t i = 0;
    uint32_t j = 0;
    while (i < la.size() && j < lb.size()) {
      vertex_id_t na = la.NbrAt(i);
      vertex_id_t nb = lb.NbrAt(j);
      if (na == nb) {
        ++matches;
        ++i;
        ++j;
      } else if (na < nb) {
        ++i;
      } else {
        ++j;
      }
    }
    benchmark::DoNotOptimize(matches);
    a = (a + 131) % f.graph.num_vertices();
    b = (b + 257) % f.graph.num_vertices();
  }
}
BENCHMARK(BM_SortedIntersection);

void BM_TimeSortedPrefix(benchmark::State& state) {
  // Binary search to the alpha cutoff in a time-sorted list vs reading
  // the whole list — the VPt advantage of Table III.
  Fixture& f = GetFixture();
  const PropertyColumn* date = f.graph.edge_props().column(f.keys.date);
  const int64_t alpha = kFiveYearsSeconds / 20;
  vertex_id_t v = 0;
  uint64_t sum = 0;
  for (auto _ : state) {
    AdjListSlice slice = f.vp_date->GetFullList(v);
    // Binary search the first entry with date >= alpha.
    uint32_t lo = 0;
    uint32_t hi = slice.size();
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if (date->GetInt64(slice.EdgeAt(mid)) < alpha) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    for (uint32_t i = 0; i < lo; ++i) sum += slice.NbrAt(i);
    benchmark::DoNotOptimize(sum);
    v = (v + 97) % f.graph.num_vertices();
  }
}
BENCHMARK(BM_TimeSortedPrefix);

void BM_FullListWithPredicate(benchmark::State& state) {
  // The config-D equivalent: scan everything, evaluate the predicate.
  Fixture& f = GetFixture();
  const PropertyColumn* date = f.graph.edge_props().column(f.keys.date);
  const int64_t alpha = kFiveYearsSeconds / 20;
  vertex_id_t v = 0;
  uint64_t sum = 0;
  for (auto _ : state) {
    AdjListSlice slice = f.primary->GetFullList(v);
    for (uint32_t i = 0; i < slice.size(); ++i) {
      if (date->GetInt64(slice.EdgeAt(i)) < alpha) sum += slice.NbrAt(i);
    }
    benchmark::DoNotOptimize(sum);
    v = (v + 97) % f.graph.num_vertices();
  }
}
BENCHMARK(BM_FullListWithPredicate);

}  // namespace
}  // namespace aplus

BENCHMARK_MAIN();
