#ifndef APLUS_BENCH_WORKLOADS_H_
#define APLUS_BENCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "datagen/financial_props.h"
#include "query/query_graph.h"
#include "storage/graph.h"

namespace aplus {

// ---------------------------------------------------------------------
// SQ1..SQ14 (Section V-B): the labelled subgraph queries of the
// Graphflow optimizer paper, reconstructed per the paper's description —
// acyclic and cyclic, dense and sparse, up to 7 query vertices and up to
// 21 query edges, with both vertex and edge labels fixed. Labels are
// assigned cyclically from the graph's VL*/EL* label sets.
// ---------------------------------------------------------------------
struct NamedQuery {
  std::string name;
  QueryGraph query;
};

std::vector<NamedQuery> MakeSqWorkload(const Graph& graph);

// ---------------------------------------------------------------------
// MagicRecs MR1..MR3 (Section V-C1, Figure 4): a1 recently followed
// a2..ak (edge time < alpha on a1's edges); find their common follower.
// `a1` pins the start vertex when != kInvalidVertex.
// ---------------------------------------------------------------------
// `follows_label` pins the follow-edge label (the social graphs have a
// single edge label; pinning it lets extensions read innermost —
// sorted — sublists, as GraphflowDB's default indexes assume).
QueryGraph MakeMrQuery(int index /* 1..3 */, prop_key_t time_key, int64_t alpha,
                       vertex_id_t a1 = kInvalidVertex, label_t follows_label = kInvalidLabel);

// ---------------------------------------------------------------------
// Fraud MF1..MF5 (Section V-C2/V-D, Figure 5). Pf(ei, ej) is
// ei.date < ej.date, ei.amt > ej.amt, ei.amt < ej.amt + alpha; beta is
// the bound city for MF4.
// ---------------------------------------------------------------------
struct MfParams {
  FinancialPropKeys keys;
  int64_t alpha = 50;       // Pf "intermediate cut"
  // The paper bounds a3.ID (MF3) / a1.ID (MF5) to a fixed vertex sample
  // for tractability. In the generated graphs vertex IDs correlate with
  // degree (preferential attachment assigns low IDs to hubs), so the
  // sample is taken as a window [id_base, id_base + id_span) of ordinary
  // vertices rather than the paper's plain upper bound.
  int64_t id_base = 0;
  int64_t id_span = 10000;
  category_t beta_city = 0; // MF4's a1.city = beta
  // Transfer edge label of the generated financial graphs; pinning it
  // lets extensions read innermost (sorted) sublists.
  label_t transfer_label = kInvalidLabel;
};

QueryGraph MakeMfQuery(int index /* 1..5 */, const MfParams& params);

// Adds Pf(ei, ej) to `query` between edge variables ei_var and ej_var.
void AddFlowPredicate(QueryGraph* query, int ei_var, int ej_var, const FinancialPropKeys& keys,
                      int64_t alpha);

}  // namespace aplus

#endif  // APLUS_BENCH_WORKLOADS_H_
