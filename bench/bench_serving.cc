// Serving-layer benchmark: prepared-query throughput vs per-request
// parse+optimize+run, projected-row streaming rates at 1/4 threads, and
// a RowBatch capacity sweep — all on the power-law triangle workload of
// the PR 2/3 benches.
//
//   * "adhoc" / "prepared": per-request single-source triangle counting
//     (`a.ID = $src`). The ad-hoc arm rebuilds the query text and goes
//     through Database::ExecuteCypher (parse + optimize + execute) every
//     request; the prepared arm binds + executes one cached plan. The
//     headline metric is the per-request speedup (target: >= 5x).
//   * "rows_t1" / "rows_t4": full 2-hop projection streamed through a
//     RowConsumer, serial vs 4 workers, reported as rows/s.
//   * "batch_<n>": the same streaming scan at different RowBatch
//     capacities (consumer-callback amortization sweep).
//   * "agg_adhoc" / "agg_prepared": per-request grouped top-k
//     recommendation (GROUP BY + ORDER BY COUNT DESC + LIMIT through the
//     sink-stage pipeline); same >= 5x prepared-speedup target.
//   * "agg_rollup_t<k>": whole-graph grouped rollup
//     (b, COUNT(*), SUM(r.amt)) at 1/4 workers — the parallel
//     partial-aggregate merge path.
//   * "orderby_topk_t<k>": whole-graph top-100 by edge amount at 1/4
//     workers (sort-stage partial_sort path).
//
// Env knobs: APLUS_SCALE (graph size), APLUS_SERVING_REQS (requests per
// throughput arm), APLUS_SERVING_REPS (timed repetitions, best-of),
// APLUS_BENCH_JSON (per-case metrics for scripts/bench_compare.py).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

struct CaseResult {
  std::string name;
  double seconds = 0.0;
  uint64_t rows = 0;
  int threads = 0;  // 0 = not thread-keyed
  double per_request = 0.0;
};

struct NullConsumer : RowConsumer {
  std::atomic<uint64_t> rows{0};
  void OnBatch(const RowBatch& batch) override {
    rows.fetch_add(batch.num_rows(), std::memory_order_relaxed);
  }
};

constexpr const char* kTriangleCount =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) "
    "WHERE a.ID = $src RETURN COUNT(*)";

constexpr const char* kTwoHopRows =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN a, b, c";

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.02);
  uint64_t requests = IntFromEnv("APLUS_SERVING_REQS", 2000);
  int reps = static_cast<int>(IntFromEnv("APLUS_SERVING_REPS", 3));
  unsigned cores = std::thread::hardware_concurrency();

  Graph graph;
  PowerLawParams params;
  params.num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
  params.avg_degree = 8.0;
  params.preferential_fraction = 0.75;
  params.seed = 97;
  GeneratePowerLawGraph(params, &graph);
  uint64_t num_vertices = graph.num_vertices();
  prop_key_t amt_key = graph.AddEdgeProperty("amt", ValueType::kInt64);
  {
    PropertyColumn* amt = graph.edge_props().mutable_column(amt_key);
    Rng rng(13);
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      amt->SetInt64(e, static_cast<int64_t>(rng.NextBounded(10000)));
    }
  }
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();
  Session session(&db);

  PrintBanner("Serving API (" + TablePrinter::Count(db.graph().num_edges()) + " edges, " +
              std::to_string(requests) + " reqs, " + std::to_string(reps) + " reps best-of)");

  std::vector<CaseResult> results;
  TablePrinter table({"case", "seconds", "per-request / rows-per-s", "notes"});

  // Pre-draw one request stream shared by both throughput arms. Serving
  // point-lookups target ordinary vertices, so sources are drawn from
  // the moderate-out-degree bulk of the power-law distribution (hub
  // sources would make per-request *execution* dominate both arms and
  // hide the planning cost this bench isolates).
  std::vector<vertex_id_t> sources;
  {
    std::vector<uint32_t> out_degree(num_vertices, 0);
    for (edge_id_t e = 0; e < db.graph().num_edges(); ++e) out_degree[db.graph().edge_src(e)]++;
    std::vector<vertex_id_t> ordinary;
    for (vertex_id_t v = 0; v < num_vertices; ++v) {
      if (out_degree[v] >= 1 && out_degree[v] <= 8) ordinary.push_back(v);
    }
    if (ordinary.empty()) {
      for (vertex_id_t v = 0; v < num_vertices; ++v) ordinary.push_back(v);
    }
    Rng rng(7);
    sources.reserve(requests);
    for (uint64_t i = 0; i < requests; ++i) {
      sources.push_back(ordinary[rng.NextBounded(ordinary.size())]);
    }
  }

  // --- Arm 1: ad-hoc per-request parse + optimize + run. ---
  uint64_t adhoc_matches = 0;
  double adhoc_best = -1.0;
  for (int r = 0; r < reps; ++r) {
    uint64_t matches = 0;
    WallTimer timer;
    for (vertex_id_t src : sources) {
      std::string text =
          "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) WHERE a.ID = " +
          std::to_string(src) + " RETURN COUNT(*)";
      QueryOutcome out = db.ExecuteCypher(text);
      APLUS_CHECK(out.ok()) << out.error;
      matches += out.count;
    }
    double elapsed = timer.ElapsedSeconds();
    if (adhoc_best < 0.0 || elapsed < adhoc_best) adhoc_best = elapsed;
    adhoc_matches = matches;
  }
  results.push_back({"adhoc", adhoc_best, adhoc_matches, 0,
                     adhoc_best / static_cast<double>(requests)});

  // --- Arm 2: prepared bind + execute on the cached plan. ---
  PreparedQuery* prepared = session.Prepare(kTriangleCount);
  APLUS_CHECK(prepared->ok()) << prepared->error();
  prepared->Bind("src", Value::Int64(sources.front()));
  APLUS_CHECK(prepared->Execute().ok());  // warm-up: plan scratch high-water mark
  uint64_t prepared_matches = 0;
  double prepared_best = -1.0;
  for (int r = 0; r < reps; ++r) {
    uint64_t matches = 0;
    WallTimer timer;
    for (vertex_id_t src : sources) {
      prepared->Bind("src", Value::Int64(src));
      QueryOutcome out = prepared->Execute();
      matches += out.count;
    }
    double elapsed = timer.ElapsedSeconds();
    if (prepared_best < 0.0 || elapsed < prepared_best) prepared_best = elapsed;
    prepared_matches = matches;
  }
  APLUS_CHECK_EQ(prepared_matches, adhoc_matches)
      << "prepared and ad-hoc arms disagree on the triangle count";
  results.push_back({"prepared", prepared_best, prepared_matches, 0,
                     prepared_best / static_cast<double>(requests)});
  double speedup = prepared_best > 0.0 ? adhoc_best / prepared_best : 0.0;

  table.AddRow({"adhoc (parse+optimize+run)", TablePrinter::Seconds(adhoc_best),
                TablePrinter::Seconds(adhoc_best / static_cast<double>(requests)) + "/req",
                TablePrinter::Count(adhoc_matches) + " matches"});
  table.AddRow({"prepared (bind+execute)", TablePrinter::Seconds(prepared_best),
                TablePrinter::Seconds(prepared_best / static_cast<double>(requests)) + "/req",
                TablePrinter::Speedup(adhoc_best, prepared_best) + " vs adhoc"});

  // --- Arm 3: projected-row streaming at 1 and 4 workers. ---
  PreparedQuery* stream = session.Prepare(kTwoHopRows);
  APLUS_CHECK(stream->ok()) << stream->error();
  uint64_t t1_rows = 0;
  for (int threads : {1, 4}) {
    NullConsumer consumer;
    QueryOutcome warm = stream->Execute(&consumer, threads);  // replicas + scratch
    APLUS_CHECK(warm.ok()) << warm.error;
    double best = -1.0;
    uint64_t rows = 0;
    for (int r = 0; r < reps; ++r) {
      consumer.rows.store(0);
      WallTimer timer;
      QueryOutcome out = stream->Execute(&consumer, threads);
      double elapsed = timer.ElapsedSeconds();
      APLUS_CHECK(out.ok()) << out.error;
      rows = consumer.rows.load();
      APLUS_CHECK_EQ(rows, out.rows);
      if (best < 0.0 || elapsed < best) best = elapsed;
    }
    if (threads == 1) t1_rows = rows;
    APLUS_CHECK_EQ(rows, t1_rows) << "row count drifted across thread counts";
    double rows_per_s = best > 0.0 ? static_cast<double>(rows) / best : 0.0;
    results.push_back({"rows_t" + std::to_string(threads), best, rows, threads, 0.0});
    table.AddRow({"stream rows t" + std::to_string(threads), TablePrinter::Seconds(best),
                  TablePrinter::Count(static_cast<uint64_t>(rows_per_s)) + " rows/s",
                  TablePrinter::Count(rows) + " rows"});
  }

  // --- Arm 4: RowBatch capacity sweep (serial streaming). ---
  for (uint32_t batch : {64u, 256u, 1024u, 4096u}) {
    PrepareOptions options;
    options.batch_rows = batch;
    std::unique_ptr<PreparedQuery> swept = db.Prepare(kTwoHopRows, options);
    APLUS_CHECK(swept->ok()) << swept->error();
    NullConsumer consumer;
    APLUS_CHECK(swept->Execute(&consumer, 1).ok());  // warm-up
    double best = -1.0;
    for (int r = 0; r < reps; ++r) {
      WallTimer timer;
      QueryOutcome out = swept->Execute(&consumer, 1);
      double elapsed = timer.ElapsedSeconds();
      APLUS_CHECK(out.ok()) << out.error;
      if (best < 0.0 || elapsed < best) best = elapsed;
    }
    results.push_back({"batch_" + std::to_string(batch), best, t1_rows, 0, 0.0});
    table.AddRow({"batch=" + std::to_string(batch), TablePrinter::Seconds(best),
                  TablePrinter::Count(static_cast<uint64_t>(
                      best > 0.0 ? static_cast<double>(t1_rows) / best : 0.0)) +
                      " rows/s",
                  ""});
  }

  // --- Arm 5: per-request grouped top-k through the sink-stage
  // pipeline, ad-hoc vs prepared (the aggregate serving target). The
  // pattern is a single-source fan-out rollup: execution stays bounded
  // by the source's degree, so the arm isolates planning amortization
  // exactly like the plain triangle arm (whose intersection prunes). ---
  constexpr const char* kAggSuffix =
      " RETURN b, COUNT(*), SUM(r.amt) ORDER BY SUM(r.amt) DESC, b LIMIT 5";
  uint64_t agg_adhoc_rows = 0;
  double agg_adhoc_best = -1.0;
  for (int r = 0; r < reps; ++r) {
    uint64_t rows = 0;
    WallTimer timer;
    for (vertex_id_t src : sources) {
      std::string text =
          "MATCH (a)-[r:E]->(b) WHERE a.ID = " + std::to_string(src) + kAggSuffix;
      QueryOutcome out = db.ExecuteCypher(text);
      APLUS_CHECK(out.ok()) << out.error;
      rows += out.rows;
    }
    double elapsed = timer.ElapsedSeconds();
    if (agg_adhoc_best < 0.0 || elapsed < agg_adhoc_best) agg_adhoc_best = elapsed;
    agg_adhoc_rows = rows;
  }
  results.push_back({"agg_adhoc", agg_adhoc_best, agg_adhoc_rows, 0,
                     agg_adhoc_best / static_cast<double>(requests)});
  PreparedQuery* agg_prepared = session.Prepare(
      std::string("MATCH (a)-[r:E]->(b) WHERE a.ID = $src") + kAggSuffix);
  APLUS_CHECK(agg_prepared->ok()) << agg_prepared->error();
  agg_prepared->Bind("src", Value::Int64(sources.front()));
  APLUS_CHECK(agg_prepared->Execute().ok());  // warm-up: arenas to high-water mark
  uint64_t agg_prepared_rows = 0;
  double agg_prepared_best = -1.0;
  for (int r = 0; r < reps; ++r) {
    uint64_t rows = 0;
    WallTimer timer;
    for (vertex_id_t src : sources) {
      agg_prepared->Bind("src", Value::Int64(src));
      QueryOutcome out = agg_prepared->Execute();
      rows += out.rows;
    }
    double elapsed = timer.ElapsedSeconds();
    if (agg_prepared_best < 0.0 || elapsed < agg_prepared_best) agg_prepared_best = elapsed;
    agg_prepared_rows = rows;
  }
  APLUS_CHECK_EQ(agg_prepared_rows, agg_adhoc_rows)
      << "prepared and ad-hoc aggregate arms disagree on the output rows";
  results.push_back({"agg_prepared", agg_prepared_best, agg_prepared_rows, 0,
                     agg_prepared_best / static_cast<double>(requests)});
  double agg_speedup = agg_prepared_best > 0.0 ? agg_adhoc_best / agg_prepared_best : 0.0;
  table.AddRow({"agg adhoc (grouped top-k)", TablePrinter::Seconds(agg_adhoc_best),
                TablePrinter::Seconds(agg_adhoc_best / static_cast<double>(requests)) + "/req",
                TablePrinter::Count(agg_adhoc_rows) + " rows"});
  table.AddRow({"agg prepared (bind+execute)", TablePrinter::Seconds(agg_prepared_best),
                TablePrinter::Seconds(agg_prepared_best / static_cast<double>(requests)) +
                    "/req",
                TablePrinter::Speedup(agg_adhoc_best, agg_prepared_best) + " vs adhoc"});

  // --- Arm 6: whole-graph grouped rollup at 1/4 workers (parallel
  // partial-aggregate merge). ---
  PreparedQuery* rollup =
      session.Prepare("MATCH (a)-[r:E]->(b) RETURN b, COUNT(*), SUM(r.amt)");
  APLUS_CHECK(rollup->ok()) << rollup->error();
  uint64_t rollup_t1_groups = 0;
  for (int threads : {1, 4}) {
    NullConsumer consumer;
    APLUS_CHECK(rollup->Execute(&consumer, threads).ok());  // warm-up
    double best = -1.0;
    uint64_t groups = 0;
    for (int r = 0; r < reps; ++r) {
      consumer.rows.store(0);
      WallTimer timer;
      QueryOutcome out = rollup->Execute(&consumer, threads);
      double elapsed = timer.ElapsedSeconds();
      APLUS_CHECK(out.ok()) << out.error;
      groups = consumer.rows.load();
      APLUS_CHECK_EQ(groups, out.rows);
      if (best < 0.0 || elapsed < best) best = elapsed;
    }
    if (threads == 1) rollup_t1_groups = groups;
    APLUS_CHECK_EQ(groups, rollup_t1_groups) << "group count drifted across thread counts";
    results.push_back({"agg_rollup_t" + std::to_string(threads), best, groups, threads, 0.0});
    table.AddRow({"agg rollup t" + std::to_string(threads), TablePrinter::Seconds(best),
                  TablePrinter::Count(groups) + " groups", ""});
  }

  // --- Arm 7: whole-graph top-100 by edge amount at 1/4 workers
  // (sort-stage partial_sort). ---
  PreparedQuery* topk = session.Prepare(
      "MATCH (a)-[r:E]->(b) RETURN a, b, r.amt ORDER BY r.amt DESC, a LIMIT 100");
  APLUS_CHECK(topk->ok()) << topk->error();
  for (int threads : {1, 4}) {
    NullConsumer consumer;
    APLUS_CHECK(topk->Execute(&consumer, threads).ok());  // warm-up
    double best = -1.0;
    uint64_t rows = 0;
    for (int r = 0; r < reps; ++r) {
      consumer.rows.store(0);
      WallTimer timer;
      QueryOutcome out = topk->Execute(&consumer, threads);
      double elapsed = timer.ElapsedSeconds();
      APLUS_CHECK(out.ok()) << out.error;
      rows = consumer.rows.load();
      APLUS_CHECK_EQ(rows, out.rows);
      if (best < 0.0 || elapsed < best) best = elapsed;
    }
    results.push_back({"orderby_topk_t" + std::to_string(threads), best, rows, threads, 0.0});
    table.AddRow({"orderby top-100 t" + std::to_string(threads), TablePrinter::Seconds(best),
                  TablePrinter::Count(rows) + " rows", ""});
  }

  table.Print();
  std::printf(
      "\nShape: the prepared arm amortizes parsing + DP optimization across\n"
      "requests (plan-cache hit, $src patched in place), so per-request cost\n"
      "collapses to plan execution. Target: prepared >= 5x adhoc per request\n"
      "(got %.1fx plain, %.1fx grouped top-k). Streaming and the grouped\n"
      "rollup scale with workers until the merge or memory bandwidth\n"
      "saturates.\n",
      speedup, agg_speedup);
  if (speedup < 5.0) {
    std::printf("WARNING: prepared speedup %.1fx below the 5x serving target.\n", speedup);
  }
  if (agg_speedup < 5.0) {
    std::printf("WARNING: aggregate prepared speedup %.1fx below the 5x serving target.\n",
                agg_speedup);
  }

  const char* json_path = std::getenv("APLUS_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    APLUS_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"bench_serving\",\n  \"cores\": %u,\n", cores);
    std::fprintf(f, "  \"prepared_speedup\": %.3f,\n", speedup);
    std::fprintf(f, "  \"agg_prepared_speedup\": %.3f,\n  \"cases\": {\n", agg_speedup);
    for (size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(f, "    \"%s\": {\"seconds\": %.6f, \"rows\": %llu", r.name.c_str(),
                   r.seconds, static_cast<unsigned long long>(r.rows));
      if (r.threads > 0) std::fprintf(f, ", \"threads\": %d", r.threads);
      if (r.per_request > 0.0) std::fprintf(f, ", \"per_request\": %.9f", r.per_request);
      std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("Wrote per-case metrics to %s\n", json_path);
  }
  return 0;
}
