// Microbenchmark for the intersection hot path (EXTEND/INTERSECT and
// MULTI-EXTEND, Section IV-A): drives the operators tuple-at-a-time over
// a power-law graph, varying z, list-length skew, and the list
// representation (direct primary lists vs offset-list VP lists), and
// compares against a reference implementation of the pre-optimization
// executor (per-Run heap allocations + binary searches restarting from
// the range start + per-comparison sort-key computation). Reported
// speedups therefore track exactly the frontier/galloping/zero-alloc
// rewrite, on every run.
//
// Env knobs: APLUS_SCALE (graph size multiplier), APLUS_INTERSECT_TUPLES
// (tuples per case), APLUS_INTERSECT_REPS (timed repetitions, best-of),
// APLUS_BENCH_JSON (when set, per-case metrics are written there as
// JSON for scripts/bench_compare.py).

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datagen/power_law_generator.h"
#include "index/primary_index.h"
#include "index/vp_index.h"
#include "query/intersect_kernels.h"
#include "query/operators.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

// ---------------------------------------------------------------------
// Reference (pre-optimization) operator implementations. These replicate
// the executor hot path as it stood before the frontier-based rewrite:
// scratch vectors allocated per Run(), every probe a binary search over
// [bounds.first, bounds.second), and MULTI-EXTEND sort keys recomputed
// per comparison through ListDescriptor::SortKeyAt.
// ---------------------------------------------------------------------

std::pair<uint32_t, uint32_t> BinaryEqualRangeByNbr(const AdjListSlice& slice, vertex_id_t n,
                                                    uint32_t begin, uint32_t end) {
  uint32_t lo = begin;
  uint32_t hi = end;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (slice.NbrAt(mid) < n) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint32_t first = lo;
  hi = end;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (slice.NbrAt(mid) <= n) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {first, lo};
}

bool ReferenceEvalResiduals(const Graph& graph, const std::vector<QueryComparison>& preds,
                            const MatchState& state) {
  for (const QueryComparison& cmp : preds) {
    if (!EvalQueryComparison(graph, cmp, state)) return false;
  }
  return true;
}

// Verbatim replica of the pre-optimization ExtendIntersectOp::Run (same
// Emit/residual machinery as the real operator, so timings isolate the
// hot-path rewrite).
class ReferenceExtendIntersectOp : public Operator {
 public:
  ReferenceExtendIntersectOp(const Graph* graph, std::vector<ListDescriptor> lists,
                             int target_vertex_var)
      : graph_(graph), lists_(std::move(lists)), target_var_(target_vertex_var) {}

  std::string Describe() const override { return "Reference E/I"; }
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<ReferenceExtendIntersectOp>(graph_, lists_, target_var_);
  }

  void Run(MatchState* state) override {
    size_t z = lists_.size();
    std::vector<AdjListSlice> slices(z);
    std::vector<std::pair<uint32_t, uint32_t>> bounds(z);
    size_t pivot = 0;
    for (size_t i = 0; i < z; ++i) {
      slices[i] = lists_[i].Fetch(*state);
      bounds[i] = lists_[i].BoundedRange(slices[i]);
      uint32_t len_i = bounds[i].second - bounds[i].first;
      uint32_t len_p = bounds[pivot].second - bounds[pivot].first;
      if (len_i < len_p) pivot = i;
    }
    const AdjListSlice& ps = slices[pivot];
    label_t target_label = kInvalidLabel;
    for (const ListDescriptor& list : lists_) {
      if (list.target_vertex_label != kInvalidLabel) target_label = list.target_vertex_label;
    }
    uint32_t i = bounds[pivot].first;
    const uint32_t pivot_end = bounds[pivot].second;
    std::vector<std::pair<uint32_t, uint32_t>> ranges(z);
    while (i < pivot_end) {
      vertex_id_t n = ps.NbrAt(i);
      uint32_t group_end = i + 1;
      while (group_end < pivot_end && ps.NbrAt(group_end) == n) ++group_end;
      vertex_id_t pivot_bound = lists_[pivot].target_bound;
      if (state->VertexAlreadyBound(n) || (pivot_bound != kInvalidVertex && n != pivot_bound) ||
          (target_label != kInvalidLabel && graph_->vertex_label(n) != target_label)) {
        i = group_end;
        continue;
      }
      bool all_present = true;
      for (size_t l = 0; l < z && all_present; ++l) {
        if (l == pivot) {
          ranges[l] = {i, group_end};
          continue;
        }
        ranges[l] = BinaryEqualRangeByNbr(slices[l], n, bounds[l].first, bounds[l].second);
        all_present = ranges[l].first < ranges[l].second;
      }
      if (all_present) {
        state->v[target_var_] = n;
        std::vector<uint32_t> idx(z);
        for (size_t l = 0; l < z; ++l) idx[l] = ranges[l].first;
        size_t depth = 0;
        while (true) {
          if (depth == z) {
            if (ReferenceEvalResiduals(*graph_, residual_, *state)) Emit(state);
            --depth;
            state->e[lists_[depth].target_edge_var] = kInvalidEdge;
            ++idx[depth];
          }
          if (idx[depth] >= ranges[depth].second) {
            idx[depth] = ranges[depth].first;
            if (depth == 0) break;
            --depth;
            state->e[lists_[depth].target_edge_var] = kInvalidEdge;
            ++idx[depth];
            continue;
          }
          edge_id_t e = slices[depth].EdgeAt(idx[depth]);
          if (state->EdgeAlreadyBound(e) ||
              (lists_[depth].edge_label_filter != kInvalidLabel &&
               graph_->edge_label(e) != lists_[depth].edge_label_filter)) {
            ++idx[depth];
            continue;
          }
          state->e[lists_[depth].target_edge_var] = e;
          ++depth;
        }
        state->v[target_var_] = kInvalidVertex;
      }
      i = group_end;
    }
  }

 private:
  const Graph* graph_;
  std::vector<ListDescriptor> lists_;
  int target_var_;
  std::vector<QueryComparison> residual_;
};

// Verbatim replica of the pre-optimization MultiExtendOp::Run (sort keys
// recomputed per comparison via ListDescriptor::SortKeyAt).
class ReferenceMultiExtendOp : public Operator {
 public:
  ReferenceMultiExtendOp(const Graph* graph, std::vector<ListDescriptor> lists)
      : graph_(graph), lists_(std::move(lists)) {}

  std::string Describe() const override { return "Reference Multi-Extend"; }
  std::unique_ptr<Operator> Clone() const override {
    return std::make_unique<ReferenceMultiExtendOp>(graph_, lists_);
  }

  void Run(MatchState* state) override {
    size_t z = lists_.size();
    std::vector<AdjListSlice> slices(z);
    std::vector<uint32_t> pos(z);
    std::vector<uint32_t> ends(z);
    for (size_t l = 0; l < z; ++l) {
      slices[l] = lists_[l].Fetch(*state);
      auto [begin, end] = lists_[l].BoundedRange(slices[l]);
      pos[l] = begin;
      ends[l] = end;
      if (begin >= end) return;
    }
    std::vector<std::pair<uint32_t, uint32_t>> ranges(z);
    while (true) {
      int64_t max_key = INT64_MIN;
      for (size_t l = 0; l < z; ++l) {
        if (pos[l] >= ends[l]) return;
        int64_t key = lists_[l].SortKeyAt(slices[l], pos[l]);
        if (key > max_key) max_key = key;
      }
      bool all_equal = true;
      for (size_t l = 0; l < z; ++l) {
        while (pos[l] < ends[l] && lists_[l].SortKeyAt(slices[l], pos[l]) < max_key) ++pos[l];
        if (pos[l] >= ends[l]) return;
        if (lists_[l].SortKeyAt(slices[l], pos[l]) != max_key) all_equal = false;
      }
      if (!all_equal) continue;
      if (max_key == kNullSortKey) return;
      for (size_t l = 0; l < z; ++l) {
        uint32_t end = pos[l];
        while (end < ends[l] && lists_[l].SortKeyAt(slices[l], end) == max_key) ++end;
        ranges[l] = {pos[l], end};
      }
      EmitCombinations(state, slices, ranges, 0);
      for (size_t l = 0; l < z; ++l) pos[l] = ranges[l].second;
    }
  }

 private:
  void EmitCombinations(MatchState* state, const std::vector<AdjListSlice>& slices,
                        const std::vector<std::pair<uint32_t, uint32_t>>& ranges, size_t depth) {
    if (depth == lists_.size()) {
      if (ReferenceEvalResiduals(*graph_, residual_, *state)) Emit(state);
      return;
    }
    const ListDescriptor& list = lists_[depth];
    const AdjListSlice& slice = slices[depth];
    for (uint32_t i = ranges[depth].first; i < ranges[depth].second; ++i) {
      vertex_id_t n = slice.NbrAt(i);
      edge_id_t e = slice.EdgeAt(i);
      if (state->VertexAlreadyBound(n) || state->EdgeAlreadyBound(e)) continue;
      if (list.target_bound != kInvalidVertex && n != list.target_bound) continue;
      if (!list.EntryPassesLabels(*graph_, slice, i)) continue;
      state->v[list.target_vertex_var] = n;
      state->e[list.target_edge_var] = e;
      EmitCombinations(state, slices, ranges, depth + 1);
      state->v[list.target_vertex_var] = kInvalidVertex;
      state->e[list.target_edge_var] = kInvalidEdge;
    }
  }

  const Graph* graph_;
  std::vector<ListDescriptor> lists_;
  std::vector<QueryComparison> residual_;
};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

struct CaseResult {
  std::string name;
  double seconds = 0.0;
  double ref_seconds = 0.0;
  uint64_t matches = 0;
  uint64_t tuples = 0;
  simd::Level simd = simd::Level::kScalar;  // dispatch level the case ran at

  double Speedup() const { return seconds > 0.0 ? ref_seconds / seconds : 0.0; }
};

// One intersection case: z source variables bound per tuple, one target.
struct IntersectCase {
  std::string name;
  std::vector<ListDescriptor> lists;
  std::vector<std::vector<vertex_id_t>> tuples;  // tuples[t][l] binds var l
  bool multi_extend = false;
  // Kernel-variant sweeps pin the dispatch level for this case; -1 keeps
  // whatever APLUS_SIMD resolved (the serving default).
  int forced_level = -1;
};

CaseResult RunCase(const Graph& graph, const IntersectCase& c, int reps) {
  size_t z = c.lists.size();
  int target_var = static_cast<int>(z);
  CaseResult result;
  result.name = c.name;
  result.tuples = c.tuples.size();
  simd::Level prev_level = simd::ActiveLevel();
  if (c.forced_level >= 0) {
    simd::SetLevel(static_cast<simd::Level>(c.forced_level));
  }
  result.simd = simd::ActiveLevel();

  // Optimized path: the real operators; reference path: the pre-PR
  // replicas. Both emit into the same SinkOp.
  SinkOp sink;
  std::unique_ptr<Operator> op;
  std::unique_ptr<Operator> ref_op;
  if (c.multi_extend) {
    op = std::make_unique<MultiExtendOp>(&graph, c.lists, std::vector<QueryComparison>{});
    ref_op = std::make_unique<ReferenceMultiExtendOp>(&graph, c.lists);
  } else {
    op = std::make_unique<ExtendIntersectOp>(&graph, c.lists, target_var,
                                             std::vector<QueryComparison>{});
    ref_op = std::make_unique<ReferenceExtendIntersectOp>(&graph, c.lists, target_var);
  }
  op->set_next(&sink);
  ref_op->set_next(&sink);

  MatchState state;
  auto drive = [&](auto&& run_one) {
    state.Reset(static_cast<int>(z) + (c.multi_extend ? static_cast<int>(z) : 1),
                static_cast<int>(z));
    for (const std::vector<vertex_id_t>& tuple : c.tuples) {
      for (size_t l = 0; l < z; ++l) state.v[l] = tuple[l];
      run_one();
    }
    return state.count;
  };

  // In MULTI-EXTEND cases each list binds its own target vertex; the
  // bound source vars occupy [0, z) and the targets [z, 2z).
  double best = -1.0;
  uint64_t count = 0;
  for (int r = 0; r < reps + 1; ++r) {  // rep 0 is warm-up
    WallTimer timer;
    count = drive([&] { op->Run(&state); });
    double elapsed = timer.ElapsedSeconds();
    if (r > 0 && (best < 0.0 || elapsed < best)) best = elapsed;
  }
  result.seconds = best;
  result.matches = count;

  double ref_best = -1.0;
  uint64_t ref_count = 0;
  for (int r = 0; r < reps + 1; ++r) {
    WallTimer timer;
    ref_count = drive([&] { ref_op->Run(&state); });
    double elapsed = timer.ElapsedSeconds();
    if (r > 0 && (ref_best < 0.0 || elapsed < ref_best)) ref_best = elapsed;
  }
  result.ref_seconds = ref_best;
  APLUS_CHECK_EQ(count, ref_count) << "optimized and reference paths disagree on " << c.name;
  if (c.forced_level >= 0) simd::SetLevel(prev_level);
  return result;
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.02);
  uint64_t num_tuples = IntFromEnv("APLUS_INTERSECT_TUPLES", 4000);
  int reps = static_cast<int>(IntFromEnv("APLUS_INTERSECT_REPS", 3));

  Graph graph;
  PowerLawParams params;
  params.num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
  params.avg_degree = 16.0;
  params.preferential_fraction = 0.85;  // heavy skew: hubs vs long tail
  GeneratePowerLawGraph(params, &graph);
  label_t elabel = graph.catalog().FindEdgeLabel("E");
  label_t vlabel = graph.catalog().FindVertexLabel("V");
  const uint64_t pool = graph.num_vertices();  // synthetic targets come from the base

  // Controlled-intersection source groups appended to the power-law
  // base: for each (z, ratio) shape, kGroups groups of z fresh source
  // vertices whose forward lists have the given length ratio and share
  // only a small planted set of common targets. Probing (frontier /
  // galloping / offset decoding) dominates the measured time instead of
  // result enumeration, which is identical code on both paths.
  constexpr size_t kGroups = 8;
  constexpr size_t kCommon = 16;
  const uint32_t pivot_len = static_cast<uint32_t>(std::min<uint64_t>(1024, pool / 16));
  Rng srng(23);
  std::vector<uint8_t> used(pool, 0);
  auto build_group_set = [&](size_t z, uint32_t ratio) {
    std::vector<std::vector<vertex_id_t>> groups;
    for (size_t g = 0; g < kGroups; ++g) {
      std::vector<vertex_id_t> commons;
      while (commons.size() < kCommon) {
        vertex_id_t t = static_cast<vertex_id_t>(srng.NextBounded(pool));
        if (!used[t]) {
          used[t] = 1;
          commons.push_back(t);
        }
      }
      for (vertex_id_t t : commons) used[t] = 0;
      std::vector<vertex_id_t> sources;
      for (size_t l = 0; l < z; ++l) {
        uint32_t len = l == 0 ? pivot_len
                              : static_cast<uint32_t>(std::min<uint64_t>(
                                    static_cast<uint64_t>(pivot_len) * ratio, pool / 2));
        vertex_id_t src = graph.AddVertex(vlabel);
        std::vector<vertex_id_t> targets = commons;
        for (vertex_id_t t : commons) used[t] = 1;
        while (targets.size() < len) {
          vertex_id_t t = static_cast<vertex_id_t>(srng.NextBounded(pool));
          if (!used[t]) {
            used[t] = 1;
            targets.push_back(t);
          }
        }
        for (vertex_id_t t : targets) {
          graph.AddEdge(src, t, elabel);
          used[t] = 0;
        }
        sources.push_back(src);
      }
      groups.push_back(std::move(sources));
    }
    return groups;
  };
  // groups[z - 2][skewed]: ratio 8 when skewed, 1 when balanced.
  std::vector<std::array<std::vector<std::vector<vertex_id_t>>, 2>> group_sets;
  for (size_t z : {2, 3, 4}) {
    std::array<std::vector<std::vector<vertex_id_t>>, 2> sets;
    sets[0] = build_group_set(z, 1);  // balanced
    sets[1] = build_group_set(z, 8);  // skewed lengths
    group_sets.push_back(std::move(sets));
  }

  // Small-domain edge weight for the MULTI-EXTEND merge cases.
  prop_key_t weight = graph.AddEdgeProperty("w", ValueType::kInt64);
  PropertyColumn* wcol = graph.edge_props().mutable_column(weight);
  Rng wrng(11);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    wcol->SetInt64(e, static_cast<int64_t>(wrng.NextBounded(64)));
  }

  PrimaryIndex primary(&graph, Direction::kFwd);
  primary.Build(IndexConfig::Default());
  // All-edges VP index: shares the primary partition levels and stores
  // permuted offset lists, the Section III-B3 representation.
  OneHopViewDef all_edges;
  all_edges.name = "all";
  VpIndex vp(&graph, &primary, all_edges, IndexConfig::Default());
  vp.Build();
  // Property-sorted variants driving the MULTI-EXTEND merge: a second
  // primary (direct lists) and a VP index (offset lists), both sorted on
  // the edge weight.
  IndexConfig weight_config = IndexConfig::Default();
  weight_config.sorts.clear();
  weight_config.sorts.push_back({SortSource::kEdgeProp, weight});
  PrimaryIndex primary_w(&graph, Direction::kFwd);
  primary_w.Build(weight_config);
  OneHopViewDef all_edges_w;
  all_edges_w.name = "all_w";
  VpIndex vp_w(&graph, &primary, all_edges_w, weight_config);
  vp_w.Build();

  // Degree-ranked vertices of the power-law base (synthetic sources
  // excluded): hubs give long lists, the mid band moderate ones, used by
  // the natural-graph cases.
  std::vector<uint32_t> degrees(pool);
  for (vertex_id_t v = 0; v < pool; ++v) degrees[v] = primary.GetFullList(v).len;
  std::vector<vertex_id_t> by_degree(pool);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(),
            [&degrees](vertex_id_t a, vertex_id_t b) { return degrees[a] > degrees[b]; });
  std::vector<vertex_id_t> hubs(by_degree.begin(),
                                by_degree.begin() + std::min<size_t>(16, by_degree.size()));
  // Mid-degree vertices with non-empty lists for the balanced cases.
  std::vector<vertex_id_t> mids;
  for (size_t i = by_degree.size() / 8; i < by_degree.size() && mids.size() < 4096; ++i) {
    if (primary.GetFullList(by_degree[i]).len > 0) mids.push_back(by_degree[i]);
  }
  APLUS_CHECK(!mids.empty());

  Rng rng(7);
  auto make_tuples = [&](size_t z, bool skewed) {
    std::vector<std::vector<vertex_id_t>> tuples;
    tuples.reserve(num_tuples);
    for (uint64_t t = 0; t < num_tuples; ++t) {
      std::vector<vertex_id_t> tuple;
      for (size_t l = 0; l < z; ++l) {
        // Skewed cases intersect hub lists with tail lists (the paper's
        // power-law graphs make this the common shape); balanced cases
        // draw every side from the mid-degree band.
        vertex_id_t v = skewed && l == 0 ? hubs[t % hubs.size()]
                                         : mids[rng.NextBounded(mids.size())];
        while (std::find(tuple.begin(), tuple.end(), v) != tuple.end()) {
          v = mids[rng.NextBounded(mids.size())];
        }
        tuple.push_back(v);
      }
      tuples.push_back(std::move(tuple));
    }
    return tuples;
  };

  auto make_list = [&](int bound_var, int target_var, int target_edge_var, bool offset) {
    ListDescriptor desc;
    if (offset) {
      desc.source = ListDescriptor::Source::kVp;
      desc.vp = &vp;
    } else {
      desc.source = ListDescriptor::Source::kPrimary;
      desc.primary = &primary;
    }
    desc.bound_var = bound_var;
    desc.cats = {elabel};
    desc.target_vertex_var = target_var;
    desc.target_edge_var = target_edge_var;
    desc.nbr_sorted = true;
    return desc;
  };
  auto make_weight_list = [&](int bound_var, int target_var, int target_edge_var, bool offset) {
    ListDescriptor desc;
    if (offset) {
      desc.source = ListDescriptor::Source::kVp;
      desc.vp = &vp_w;
    } else {
      desc.source = ListDescriptor::Source::kPrimary;
      desc.primary = &primary_w;
    }
    desc.bound_var = bound_var;
    desc.cats = {elabel};
    desc.target_vertex_var = target_var;
    desc.target_edge_var = target_edge_var;
    return desc;
  };

  auto make_group_tuples = [&](const std::vector<std::vector<vertex_id_t>>& groups) {
    std::vector<std::vector<vertex_id_t>> tuples;
    tuples.reserve(num_tuples);
    for (uint64_t t = 0; t < num_tuples; ++t) tuples.push_back(groups[t % groups.size()]);
    return tuples;
  };

  std::vector<IntersectCase> cases;
  // Controlled shapes: skew = 8x length ratio between the pivot and the
  // probed lists, balanced = equal lengths; both with a small planted
  // intersection.
  for (size_t z : {2, 3, 4}) {
    for (bool skewed : {true, false}) {
      if (!skewed && z == 4) continue;  // keep the matrix small
      for (bool offset : {false, true}) {
        if (!skewed && offset) continue;
        IntersectCase c;
        c.name = "z" + std::to_string(z) + (skewed ? "_skew" : "_balanced") +
                 (offset ? "_offset" : "_direct");
        for (size_t l = 0; l < z; ++l) {
          c.lists.push_back(
              make_list(static_cast<int>(l), static_cast<int>(z), static_cast<int>(l), offset));
        }
        c.tuples = make_group_tuples(group_sets[z - 2][skewed ? 1 : 0]);
        cases.push_back(std::move(c));
      }
    }
  }
  // Natural power-law cases (hub list x mid lists): result enumeration
  // dominates, so these track the end-to-end emission path instead.
  for (size_t z : {2, 3}) {
    IntersectCase c;
    c.name = "z" + std::to_string(z) + "_natural_direct";
    for (size_t l = 0; l < z; ++l) {
      c.lists.push_back(
          make_list(static_cast<int>(l), static_cast<int>(z), static_cast<int>(l), false));
    }
    c.tuples = make_tuples(z, /*skewed=*/true);
    cases.push_back(std::move(c));
  }
  // MULTI-EXTEND merge on the weight-sorted lists: z lists bound to z
  // distinct sources, each binding its own target for every combination
  // of entries agreeing on the weight.
  for (size_t z : {2, 3}) {
    for (bool offset : {false, true}) {
      IntersectCase c;
      c.name = "z" + std::to_string(z) + "_multiext" + (offset ? "_offset" : "_direct");
      c.multi_extend = true;
      for (size_t l = 0; l < z; ++l) {
        c.lists.push_back(make_weight_list(static_cast<int>(l), static_cast<int>(z + l),
                                           static_cast<int>(l), offset));
      }
      c.tuples = make_tuples(z, /*skewed=*/true);
      cases.push_back(std::move(c));
    }
  }
  // Kernel-variant A/B sweep: the representative skewed shape, direct
  // and offset, pinned to each dispatch level this host can execute
  // (z3_skew_scalar / z3_skew_sse / z3_skew_avx2, ...). Levels the host
  // lacks emit no case; scripts/bench_compare.py skips them via the
  // per-case "simd" field instead of failing the gate.
  for (bool offset : {false, true}) {
    for (simd::Level level : {simd::Level::kScalar, simd::Level::kSse, simd::Level::kAvx2}) {
      if (level > simd::HostMaxLevel()) continue;
      IntersectCase c;
      c.name = std::string("z3_skew") + (offset ? "_offset_" : "_") + simd::ToString(level);
      for (size_t l = 0; l < 3; ++l) {
        c.lists.push_back(make_list(static_cast<int>(l), 3, static_cast<int>(l), offset));
      }
      c.tuples = make_group_tuples(group_sets[1][1]);
      c.forced_level = static_cast<int>(level);
      cases.push_back(std::move(c));
    }
  }

  PrintBanner("Intersection hot path: optimized vs pre-optimization reference (" +
              TablePrinter::Count(graph.num_edges()) + " edges, " +
              TablePrinter::Count(num_tuples) + " tuples/case, simd=" +
              simd::ToString(simd::ActiveLevel()) + ", host max " +
              simd::ToString(simd::HostMaxLevel()) + ")");
  TablePrinter table({"Case", "simd", "optimized", "reference", "speedup", "matches"});
  std::vector<CaseResult> results;
  for (const IntersectCase& c : cases) {
    CaseResult r = RunCase(graph, c, reps);
    table.AddRow({r.name, simd::ToString(r.simd), TablePrinter::Seconds(r.seconds),
                  TablePrinter::Seconds(r.ref_seconds),
                  TablePrinter::Speedup(r.ref_seconds, r.seconds), TablePrinter::Count(r.matches)});
    results.push_back(r);
  }
  table.Print();
  std::printf(
      "\nShape: speedup grows with z and with list-length skew (monotone\n"
      "frontiers turn repeated binary-search restarts into short gallops),\n"
      "and offset-list cases gain from batch-decoding probed lists.\n");

  const char* json_path = std::getenv("APLUS_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    APLUS_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"bench_intersect\",\n  \"host_simd\": \"%s\",\n  \"cases\": {\n",
                 simd::ToString(simd::HostMaxLevel()));
    for (size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(f,
                   "    \"%s\": {\"seconds\": %.6f, \"reference_seconds\": %.6f, "
                   "\"speedup\": %.3f, \"simd\": \"%s\", \"matches\": %llu}%s\n",
                   r.name.c_str(), r.seconds, r.ref_seconds, r.Speedup(),
                   simd::ToString(r.simd), static_cast<unsigned long long>(r.matches),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("Wrote per-case metrics to %s\n", json_path);
  }
  return 0;
}
