// Sealed-segment bench: storage footprint and hot-path cost of serving
// queries out of an mmap'd immutable segment (storage/segment.h) versus
// the in-memory index it was sealed from.
//
//   * footprint: bytes/edge of the raw flat layout vs the delta/varint
//     packed layout (APLUS_SEGMENT_COMPRESS=off vs on), and the
//     compression ratio over the adjacency payload alone. Acceptance:
//     packed adjacency >= 1.5x smaller than raw on the power-law
//     dataset.
//   * open_to_first_query: OpenFromSegment (mmap + graph copy + index
//     attach, no index build) through the first point lookup — the
//     cold-start story of `aplusd --graph`.
//   * tri/two_hop/agg arms: intersection-heavy hot-path queries timed
//     in-memory and segment-backed (auto compression, after a warm-up
//     pass touches the mapping). Acceptance: segment-backed within
//     1.3x of in-memory.
//
// Runs at 2x the default bench scale so packed hub pages and the page
// cache actually matter. Env knobs: APLUS_SCALE, APLUS_SEGMENT_REPS
// (timed repetitions, best-of), APLUS_BENCH_JSON (per-case metrics),
// APLUS_BENCH_STRICT=1 (fail the process on the acceptance targets).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "storage/segment.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

struct QueryArm {
  const char* name;
  const char* text;
};

const QueryArm kArms[] = {
    {"tri", "MATCH (a)-[r1:E]->(b)-[r2:E]->(c), (a)-[r3:E]->(c) RETURN COUNT(*)"},
    {"two_hop", "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN COUNT(*)"},
    {"agg", "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN COUNT(*), SUM(r1.amt)"},
};

struct CaseResult {
  std::string name;
  double seconds = 0.0;
  std::string extra;  // extra JSON fields, ", \"k\": v" form
};

// Best-of-`reps` execution time of one counting query.
double TimeQuery(Database* db, const char* text, int reps) {
  auto prepared = db->Prepare(text);
  APLUS_CHECK(prepared->ok()) << text << ": " << prepared->error();
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    QueryOutcome out = prepared->Execute(nullptr, 1);
    double seconds = timer.ElapsedSeconds();
    APLUS_CHECK(out.ok()) << text << ": " << out.error;
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

std::string SegPath(const char* suffix) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  return dir + "/aplus_bench_segments_" + suffix + ".seg";
}

}  // namespace

int main() {
  // 2x the serving benches' default scale: hub pages must be big enough
  // that the raw-vs-packed split and the skip-table probes show up.
  double scale = ScaleFromEnv(0.04);
  int reps = static_cast<int>(IntFromEnv("APLUS_SEGMENT_REPS", 3));
  bool strict = false;
  if (const char* env = std::getenv("APLUS_BENCH_STRICT")) {
    strict = std::strcmp(env, "0") != 0;
  }

  Graph graph;
  PowerLawParams params;
  params.num_vertices = std::max<uint64_t>(4000, static_cast<uint64_t>(1000000 * scale));
  params.avg_degree = 8.0;
  params.preferential_fraction = 0.75;
  params.seed = 97;
  GeneratePowerLawGraph(params, &graph);
  prop_key_t amt_key = graph.AddEdgeProperty("amt", ValueType::kInt64);
  {
    PropertyColumn* amt = graph.edge_props().mutable_column(amt_key);
    Rng rng(13);
    for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
      amt->SetInt64(e, static_cast<int64_t>(rng.NextBounded(10000)));
    }
  }
  const uint64_t num_edges = graph.num_edges();
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();

  PrintBanner("bench_segments (" + TablePrinter::Count(db.graph().num_vertices()) +
              " vertices, " + TablePrinter::Count(num_edges) + " edges, best of " +
              std::to_string(reps) + ")");

  std::vector<CaseResult> results;
  bool failed = false;

  // --- Footprint: raw vs packed seal ---------------------------------
  std::string raw_path = SegPath("raw");
  std::string packed_path = SegPath("packed");
  uint64_t raw_file = 0, packed_file = 0;
  double seal_seconds = 0.0, compression_ratio = 0.0;
  {
    std::string error;
    setenv("APLUS_SEGMENT_COMPRESS", "off", 1);
    APLUS_CHECK(db.SealToSegment(raw_path, &error)) << error;
    setenv("APLUS_SEGMENT_COMPRESS", "on", 1);
    WallTimer timer;
    APLUS_CHECK(db.SealToSegment(packed_path, &error)) << error;
    seal_seconds = timer.ElapsedSeconds();
    unsetenv("APLUS_SEGMENT_COMPRESS");

    std::unique_ptr<Segment> raw_seg = OpenSegment(raw_path, &error);
    APLUS_CHECK(raw_seg != nullptr) << error;
    std::unique_ptr<Segment> packed_seg = OpenSegment(packed_path, &error);
    APLUS_CHECK(packed_seg != nullptr) << error;
    raw_file = raw_seg->stats().file_bytes;
    packed_file = packed_seg->stats().file_bytes;
    const SegmentStats& ps = packed_seg->stats();
    compression_ratio = ps.packed_adj_bytes > 0
                            ? static_cast<double>(ps.packed_adj_unpacked_bytes) /
                                  static_cast<double>(ps.packed_adj_bytes)
                            : 0.0;
  }
  std::remove(raw_path.c_str());

  double raw_bpe = static_cast<double>(raw_file) / static_cast<double>(num_edges);
  double packed_bpe = static_cast<double>(packed_file) / static_cast<double>(num_edges);
  {
    CaseResult r;
    r.name = "footprint";
    r.seconds = seal_seconds;  // packed seal time, the write-path cost
    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  ", \"raw_bytes_per_edge\": %.2f, \"packed_bytes_per_edge\": %.2f, "
                  "\"adj_compression_ratio\": %.3f",
                  raw_bpe, packed_bpe, compression_ratio);
    r.extra = extra;
    results.push_back(r);
  }
  if (compression_ratio < 1.5) {
    std::fprintf(stderr, "FAIL: adjacency compression ratio %.3f < 1.5x\n", compression_ratio);
    failed = true;
  }

  // --- Open-to-first-query (auto compression, the --graph cold start) -
  std::string auto_path = SegPath("auto");
  {
    std::string error;
    APLUS_CHECK(db.SealToSegment(auto_path, &error)) << error;
  }
  double open_seconds = 0.0;
  std::unique_ptr<Database> seg_db;
  {
    WallTimer timer;
    std::string error;
    seg_db = Database::OpenFromSegment(auto_path, &error);
    APLUS_CHECK(seg_db != nullptr) << error;
    auto point = seg_db->Prepare("MATCH (a)-[r:E]->(b) WHERE a.ID = $src RETURN COUNT(*)");
    APLUS_CHECK(point->ok()) << point->error();
    APLUS_CHECK(point->Bind("src", Value::Int64(42))) << point->bind_error();
    QueryOutcome out = point->Execute(nullptr, 1);
    APLUS_CHECK(out.ok()) << out.error;
    open_seconds = timer.ElapsedSeconds();
  }
  results.push_back({"open_to_first_query", open_seconds, ""});

  // --- Hot-path arms: in-memory vs segment-backed --------------------
  TablePrinter table({"arm", "in-memory", "segment", "seg/mem", "raw B/e", "packed B/e"});
  for (const QueryArm& arm : kArms) {
    // Warm-up pass on the segment side first: fault in the mapped pages
    // so the timed reps measure decode cost, not page-in cost.
    TimeQuery(seg_db.get(), arm.text, 1);
    double mem = TimeQuery(&db, arm.text, reps);
    double seg = TimeQuery(seg_db.get(), arm.text, reps);
    double ratio = mem > 0.0 ? seg / mem : 0.0;
    table.AddRow({arm.name, TablePrinter::Seconds(mem), TablePrinter::Seconds(seg),
                  TablePrinter::Speedup(seg, mem),
                  arm.name == std::string("tri") ? TablePrinter::Mb(raw_file) : "",
                  arm.name == std::string("tri") ? TablePrinter::Mb(packed_file) : ""});
    char extra[128];
    std::snprintf(extra, sizeof(extra), ", \"seg_over_mem\": %.3f", ratio);
    results.push_back({std::string(arm.name) + "_mem", mem, ""});
    results.push_back({std::string(arm.name) + "_seg", seg, extra});
    if (ratio > 1.3) {
      std::fprintf(stderr, "%s: segment-backed %.3fx in-memory (budget 1.3x)\n", arm.name,
                   ratio);
      if (strict) failed = true;
    }
  }
  table.Print();
  std::printf("\nfootprint: raw %.2f B/edge, packed %.2f B/edge "
              "(adjacency ratio %.2fx); open-to-first-query %s; peak RSS %s\n",
              raw_bpe, packed_bpe, compression_ratio,
              TablePrinter::Seconds(open_seconds).c_str(),
              TablePrinter::Mb(PeakRssBytes()).c_str());

  seg_db.reset();
  std::remove(auto_path.c_str());
  std::remove(packed_path.c_str());

  const char* json_path = std::getenv("APLUS_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    APLUS_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_segments\",\n"
                 "  \"edges\": %llu,\n  \"peak_rss_bytes\": %llu,\n  \"cases\": {\n",
                 static_cast<unsigned long long>(num_edges),
                 static_cast<unsigned long long>(PeakRssBytes()));
    for (size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(f, "    \"%s\": {\"seconds\": %.6f%s}%s\n", r.name.c_str(), r.seconds,
                   r.extra.c_str(), i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("Wrote per-case metrics to %s\n", json_path);
  }
  if (failed) {
    std::fprintf(stderr, "bench_segments: acceptance targets missed\n");
    return 1;
  }
  return 0;
}
