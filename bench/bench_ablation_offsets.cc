// Ablation for the Section III-B3 design discussion: offset lists versus
// the bitmap alternative versus a full ID-list copy, across view
// selectivities. Reports storage bytes and sequential scan time of the
// view through each representation. Expected shape (from the paper's
// analysis): bitmaps cost a constant bit per *primary* edge and their
// access time does not improve with selectivity, while offset lists
// shrink with selectivity and scan only the view's edges; a full ID copy
// is fastest to scan but costs 12 bytes per indexed edge.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/power_law_generator.h"
#include "index/bitmap_index.h"
#include "index/vp_index.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

int main() {
  double scale = ScaleFromEnv(1.0);
  Graph graph;
  PowerLawParams params;
  params.num_vertices = static_cast<uint64_t>(200000 * scale) + 20000;
  params.avg_degree = 15.0;
  GeneratePowerLawGraph(params, &graph);
  prop_key_t score = graph.AddEdgeProperty("score", ValueType::kInt64);
  PropertyColumn* col = graph.edge_props().mutable_column(score);
  for (edge_id_t e = 0; e < graph.num_edges(); ++e) {
    col->SetInt64(e, static_cast<int64_t>(e % 1000));
  }
  PrimaryIndex primary(&graph, Direction::kFwd);
  primary.Build(IndexConfig::Default());

  PrintBanner("Ablation: offset lists vs bitmap vs ID-list copy (" +
              TablePrinter::Count(graph.num_edges()) + " primary edges)");
  TablePrinter table({"Selectivity", "offsets bytes", "bitmap bytes", "id-copy bytes",
                      "offsets scan", "bitmap scan", "B/edge offsets"});

  for (int64_t threshold : {10, 50, 200, 500, 900}) {
    OneHopViewDef view;
    view.name = "v";
    view.pred.AddConst(PropRef{PropSite::kAdjEdge, score, false, false}, CmpOp::kLt,
                       Value::Int64(threshold));
    VpIndex vp(&graph, &primary, view, IndexConfig::Default());
    vp.Build();
    BitmapIndex bitmap(&graph, &primary, view);
    bitmap.Build();

    // Scan every vertex's view list through both representations.
    volatile uint64_t sink = 0;
    WallTimer offsets_timer;
    for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) {
      AdjListSlice slice = vp.GetFullList(v);
      for (uint32_t i = 0; i < slice.size(); ++i) sink += slice.NbrAt(i);
    }
    double offsets_scan = offsets_timer.ElapsedSeconds();

    WallTimer bitmap_timer;
    for (vertex_id_t v = 0; v < graph.num_vertices(); ++v) {
      AdjListSlice slice = primary.GetFullList(v);
      BitmapIndex::BitmapSlice bits = bitmap.GetBits(v, {});
      for (uint32_t i = 0; i < slice.size(); ++i) {
        if (bits.TestAt(i)) sink += slice.NbrAt(i);
      }
    }
    double bitmap_scan = bitmap_timer.ElapsedSeconds();

    size_t id_copy_bytes = vp.num_edges_indexed() * (sizeof(vertex_id_t) + sizeof(edge_id_t));
    char selectivity[16];
    std::snprintf(selectivity, sizeof(selectivity), "%.0f%%",
                  static_cast<double>(threshold) / 10.0);
    char per_edge[16];
    std::snprintf(per_edge, sizeof(per_edge), "%.2f",
                  vp.num_edges_indexed() == 0
                      ? 0.0
                      : static_cast<double>(vp.MemoryBytes()) /
                            static_cast<double>(vp.num_edges_indexed()));
    table.AddRow({selectivity, TablePrinter::Mb(vp.MemoryBytes()),
                  TablePrinter::Mb(bitmap.MemoryBytes()), TablePrinter::Mb(id_copy_bytes),
                  TablePrinter::Seconds(offsets_scan), TablePrinter::Seconds(bitmap_scan),
                  per_edge});
  }
  table.Print();
  std::printf(
      "\nShape: offset-list bytes grow with selectivity while bitmap bytes\n"
      "stay constant; bitmap scan time stays flat (one mask test per primary\n"
      "edge) while offset-list scan time tracks the view size.\n");
  return 0;
}
