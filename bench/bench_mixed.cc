// Mixed read/write serving benchmark: prepared point-lookup throughput
// while a single ingest thread streams edges through the concurrent
// delta-buffer path (BeginConcurrentIngest / OnEdgeInserted).
//
//   * "read_only_t1" / "read_only_t4": MagicRecs-style two-hop point
//     lookups (`a.ID = $src`, recommendation fan-out) from 1/4 serving
//     threads on a quiesced database — the baseline.
//   * "mixed_t1" / "mixed_t4": the same readers and request counts while
//     a fraud-style ingest thread appends transfer edges at a target
//     rate (APLUS_MIXED_RATE edges/s). Reported per case: reader
//     throughput plus the achieved ingest rate. The concurrency target
//     is reader throughput within ~10% of the read-only baseline at the
//     same thread count.
//
// Every case runs a fixed request budget per reader (not a fixed wall
// duration), so the per-case `seconds` in the JSON is real work and the
// perf gate's ratio check tracks throughput regressions directly.
//
// Env knobs: APLUS_SCALE (graph size), APLUS_MIXED_REQS (requests per
// reader thread), APLUS_MIXED_RATE (target ingest edges/s),
// APLUS_BENCH_JSON (per-case metrics for scripts/bench_compare.py).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

struct CaseResult {
  std::string name;
  double seconds = 0.0;
  uint64_t rows = 0;  // completed reader requests
  int threads = 0;
  double ingest_rate = 0.0;  // achieved edges/s (mixed cases only)
};

struct EdgeTriple {
  vertex_id_t src;
  vertex_id_t dst;
  label_t label;
};

// The MagicRecs serving shape: who do the accounts I follow recommend?
constexpr const char* kPointLookup =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = $src RETURN COUNT(*)";

// One reader arm: `num_readers` threads, each with its own Session and
// prepared plan, each burning through `reqs` point lookups. All
// preparation happens on the calling thread before any worker starts:
// Database::Prepare is not safe against a concurrent ingest thread, and
// surviving ingest without re-preparing is exactly the plan-cache
// behavior this bench exercises.
struct ReaderArm {
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<PreparedQuery*> queries;

  ReaderArm(Database* db, int num_readers) {
    for (int i = 0; i < num_readers; ++i) {
      sessions.push_back(std::make_unique<Session>(db));
      PreparedQuery* q = sessions.back()->Prepare(kPointLookup);
      APLUS_CHECK(q->ok()) << q->error();
      queries.push_back(q);
    }
  }

  // Returns wall seconds from first request to last reader done.
  double Run(const std::vector<vertex_id_t>& sources, uint64_t reqs,
             std::atomic<uint64_t>* total_matches) {
    std::vector<std::thread> readers;
    WallTimer timer;
    for (size_t i = 0; i < queries.size(); ++i) {
      PreparedQuery* q = queries[i];
      size_t offset = i * 7919;  // decorrelate request streams
      readers.emplace_back([q, &sources, reqs, offset, total_matches] {
        uint64_t matches = 0;
        for (uint64_t n = 0; n < reqs; ++n) {
          vertex_id_t src = sources[(offset + n) % sources.size()];
          APLUS_CHECK(q->Bind("src", Value::Int64(src)));
          QueryOutcome out = q->Execute(nullptr, /*num_threads=*/1);
          APLUS_CHECK(out.ok()) << out.error;
          matches += out.count;
        }
        total_matches->fetch_add(matches, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : readers) t.join();
    return timer.ElapsedSeconds();
  }
};

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.02);
  uint64_t reqs = IntFromEnv("APLUS_MIXED_REQS", 2000);
  double target_rate = static_cast<double>(IntFromEnv("APLUS_MIXED_RATE", 20000));
  unsigned cores = std::thread::hardware_concurrency();

  // Fraud-style transfer network: power-law degree (a few exchange hubs,
  // many ordinary accounts). The tail 25% of the generated edges are
  // held back as the ingest stream — new transfers arriving while the
  // lookup service keeps answering.
  PowerLawParams params;
  params.num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
  params.avg_degree = 8.0;
  params.preferential_fraction = 0.75;
  params.seed = 131;
  Graph generated;
  GeneratePowerLawGraph(params, &generated);
  uint64_t num_vertices = generated.num_vertices();

  std::vector<EdgeTriple> all_edges;
  all_edges.reserve(generated.num_edges());
  for (edge_id_t e = 0; e < generated.num_edges(); ++e) {
    all_edges.push_back({generated.edge_src(e), generated.edge_dst(e), generated.edge_label(e)});
  }
  size_t base_count = all_edges.size() - all_edges.size() / 4;

  Graph graph;
  {
    label_t vlabel = graph.catalog().AddVertexLabel("V");
    graph.catalog().AddEdgeLabel("E");
    for (vertex_id_t v = 0; v < num_vertices; ++v) graph.AddVertex(vlabel);
    for (size_t i = 0; i < base_count; ++i) {
      graph.AddEdge(all_edges[i].src, all_edges[i].dst, all_edges[i].label);
    }
  }
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();

  PrintBanner("Mixed read/write (" + TablePrinter::Count(db.graph().num_edges()) +
              " base edges, " + TablePrinter::Count(all_edges.size() - base_count) +
              " streamed, " + std::to_string(reqs) + " reqs/reader, target " +
              TablePrinter::Count(static_cast<uint64_t>(target_rate)) + " edges/s)");

  // Point-lookup sources come from the ordinary-degree bulk of the
  // distribution (hub sources would make a handful of requests dominate
  // and swamp the reader-vs-ingest interference this bench measures).
  std::vector<vertex_id_t> sources;
  {
    std::vector<uint32_t> out_degree(num_vertices, 0);
    for (edge_id_t e = 0; e < db.graph().num_edges(); ++e) out_degree[db.graph().edge_src(e)]++;
    std::vector<vertex_id_t> ordinary;
    for (vertex_id_t v = 0; v < num_vertices; ++v) {
      if (out_degree[v] >= 1 && out_degree[v] <= 8) ordinary.push_back(v);
    }
    if (ordinary.empty()) {
      for (vertex_id_t v = 0; v < num_vertices; ++v) ordinary.push_back(v);
    }
    Rng rng(17);
    uint64_t draw = std::max<uint64_t>(reqs, 1024);
    sources.reserve(draw);
    for (uint64_t i = 0; i < draw; ++i) {
      sources.push_back(ordinary[rng.NextBounded(ordinary.size())]);
    }
  }

  std::vector<CaseResult> results;
  TablePrinter table({"case", "seconds", "reader throughput", "ingest"});
  double read_only_qps[2] = {0.0, 0.0};
  double mixed_qps[2] = {0.0, 0.0};
  const int kThreadArms[2] = {1, 4};

  // --- Baseline: readers on a quiesced database. ---
  for (int arm = 0; arm < 2; ++arm) {
    int threads = kThreadArms[arm];
    ReaderArm readers(&db, threads);
    std::atomic<uint64_t> matches{0};
    readers.Run(sources, std::min<uint64_t>(reqs, 64), &matches);  // warm-up
    matches.store(0);
    double elapsed = readers.Run(sources, reqs, &matches);
    uint64_t total = reqs * static_cast<uint64_t>(threads);
    read_only_qps[arm] = elapsed > 0.0 ? static_cast<double>(total) / elapsed : 0.0;
    results.push_back({"read_only_t" + std::to_string(threads), elapsed, total, threads, 0.0});
    table.AddRow({"read-only t" + std::to_string(threads), TablePrinter::Seconds(elapsed),
                  TablePrinter::Count(static_cast<uint64_t>(read_only_qps[arm])) + " req/s",
                  "idle"});
  }

  // --- Mixed: same request budget while the ingest thread streams its
  // half of the held-back edges at the target rate. ---
  size_t stream_begin = base_count;
  size_t stream_half = (all_edges.size() - base_count) / 2;
  for (int arm = 0; arm < 2; ++arm) {
    int threads = kThreadArms[arm];
    size_t begin = stream_begin + static_cast<size_t>(arm) * stream_half;
    size_t end = std::min(begin + stream_half, all_edges.size());

    ConcurrentIngestOptions options;
    options.max_vertices = num_vertices;
    options.max_edges = all_edges.size();
    db.BeginConcurrentIngest(options);

    ReaderArm readers(&db, threads);
    std::atomic<uint64_t> matches{0};
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> inserted{0};
    std::atomic<double> writer_seconds{0.0};
    std::thread writer([&] {
      // Paced open-loop writer: insert whatever the target rate says
      // should have arrived by now, then nap. Stops when the readers
      // finish (rate accounting uses its own active window).
      WallTimer timer;
      size_t next = begin;
      while (!stop.load(std::memory_order_acquire) && next < end) {
        uint64_t due = static_cast<uint64_t>(target_rate * timer.ElapsedSeconds());
        due = std::min<uint64_t>(due, end - begin);
        while (next - begin < due) {
          const EdgeTriple& t = all_edges[next];
          edge_id_t e = db.graph().AddEdge(t.src, t.dst, t.label);
          db.maintainer().OnEdgeInserted(e);
          ++next;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      writer_seconds.store(timer.ElapsedSeconds(), std::memory_order_relaxed);
      inserted.store(next - begin, std::memory_order_relaxed);
    });
    double elapsed = readers.Run(sources, reqs, &matches);
    stop.store(true, std::memory_order_release);
    writer.join();
    db.EndConcurrentIngest();

    uint64_t total = reqs * static_cast<uint64_t>(threads);
    mixed_qps[arm] = elapsed > 0.0 ? static_cast<double>(total) / elapsed : 0.0;
    double w_secs = writer_seconds.load(std::memory_order_relaxed);
    double rate = w_secs > 0.0 ? static_cast<double>(inserted.load()) / w_secs : 0.0;
    results.push_back(
        {"mixed_t" + std::to_string(threads), elapsed, total, threads, rate});
    table.AddRow({"mixed t" + std::to_string(threads), TablePrinter::Seconds(elapsed),
                  TablePrinter::Count(static_cast<uint64_t>(mixed_qps[arm])) + " req/s",
                  TablePrinter::Count(static_cast<uint64_t>(rate)) + " edges/s"});
  }

  table.Print();
  double ratio_t1 = read_only_qps[0] > 0.0 ? mixed_qps[0] / read_only_qps[0] : 0.0;
  double ratio_t4 = read_only_qps[1] > 0.0 ? mixed_qps[1] / read_only_qps[1] : 0.0;
  std::printf(
      "\nShape: readers pin an epoch and merge each page's published run +\n"
      "delta, so the ingest thread never blocks a probe; the cost visible\n"
      "here is delta-merge work on touched pages plus cache pressure from\n"
      "the writer. Target: mixed throughput >= 0.9x read-only at the same\n"
      "thread count (got %.2fx at t1, %.2fx at t4).\n",
      ratio_t1, ratio_t4);
  // The target only means anything when readers + the writer actually
  // fit on the machine; on fewer cores the ratio measures timeslicing.
  bool t1_warn = cores >= 2 && ratio_t1 < 0.9;
  bool t4_warn = cores >= 5 && ratio_t4 < 0.9;
  if (t1_warn || t4_warn) {
    std::printf("WARNING: reader throughput under ingest fell below the 0.9x target.\n");
  }

  const char* json_path = std::getenv("APLUS_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    APLUS_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"bench_mixed\",\n  \"cores\": %u,\n", cores);
    std::fprintf(f, "  \"mixed_ratio_t1\": %.3f,\n  \"mixed_ratio_t4\": %.3f,\n  \"cases\": {\n",
                 ratio_t1, ratio_t4);
    for (size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(f, "    \"%s\": {\"seconds\": %.6f, \"rows\": %llu, \"threads\": %d",
                   r.name.c_str(), r.seconds, static_cast<unsigned long long>(r.rows),
                   r.threads);
      if (r.ingest_rate > 0.0) std::fprintf(f, ", \"ingest_rate\": %.1f", r.ingest_rate);
      std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("Wrote per-case metrics to %s\n", json_path);
  }
  return 0;
}
