// Regenerates Table V: system comparison on SQ1, SQ2, SQ3 and SQ13 —
// our engine under configs D and Dp versus the two fixed-adjacency-list
// baseline engines standing in for Neo4j (linked-record store, binary
// joins only) and TigerGraph (flat per-vertex adjacency, with its
// distinct-frontier path mode for SQ13). See DESIGN.md "Substitutions".
// Expected shape (paper): the A+ engine wins everywhere except long
// paths where the TigerGraph-like distinct-pair expansion is fastest,
// and Dp closes that gap.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baseline/flat_adj_engine.h"
#include "baseline/linked_list_engine.h"
#include "bench_util.h"
#include "core/database.h"
#include "datagen/label_assigner.h"
#include "datagen/power_law_generator.h"
#include "util/memory_tracker.h"
#include "util/timer.h"
#include "workloads.h"

using namespace aplus;  // NOLINT: bench brevity

int main() {
  double scale = ScaleFromEnv(0.0008);
  size_t count = 0;
  const DatasetSpec* specs = TableOneDatasets(&count);

  struct DatasetRun {
    std::string name;
    size_t spec_index;
    uint32_t vlabels;
    uint32_t elabels;
  };
  std::vector<DatasetRun> runs = {{"LJ12,2", 1, 12, 2}, {"WT4,2", 2, 4, 2}};
  const std::vector<std::string> query_names = {"SQ1", "SQ2", "SQ3", "SQ13"};

  for (const DatasetRun& run : runs) {
    Graph graph;
    GenerateDataset(specs[run.spec_index], scale, 6000 + run.spec_index, &graph);
    AssignRandomLabels(run.vlabels, run.elabels, 6100 + run.spec_index, &graph);
    uint64_t ne = graph.num_edges();

    Database db(std::move(graph));
    // Baselines index the same (moved-into) graph storage.
    LinkedListEngine neo4j_like(&db.graph());
    FlatAdjEngine tigergraph_like(&db.graph());
    std::vector<NamedQuery> workload = MakeSqWorkload(db.graph());

    // Pick out SQ1, SQ2, SQ3, SQ13.
    std::vector<const QueryGraph*> queries;
    for (const std::string& name : query_names) {
      for (const NamedQuery& nq : workload) {
        if (nq.name == name) queries.push_back(&nq.query);
      }
    }

    PrintBanner("Table V: " + run.name + " (" + TablePrinter::Count(ne) + " edges)");
    TablePrinter table({"System", "SQ1", "SQ2", "SQ3", "SQ13"});

    // Our engine, configs D and Dp.
    std::vector<uint64_t> reference_counts;
    {
      db.BuildPrimaryIndexes(IndexConfig::Default());
      std::vector<std::string> row = {"AplusDB D"};
      for (const QueryGraph* q : queries) {
        QueryOutcome r = db.Execute(*q);
        reference_counts.push_back(r.count);
        row.push_back(TablePrinter::Seconds(r.seconds));
      }
      table.AddRow(row);
    }
    {
      IndexConfig dp = IndexConfig::Default();
      dp.partitions.push_back({PartitionSource::kNbrLabel, kInvalidPropKey});
      db.BuildPrimaryIndexes(dp);
      std::vector<std::string> row = {"AplusDB Dp"};
      for (size_t i = 0; i < queries.size(); ++i) {
        QueryOutcome r = db.Execute(*queries[i]);
        row.push_back(TablePrinter::Seconds(r.seconds));
        if (r.count != reference_counts[i]) {
          std::printf("WARNING: Dp count mismatch on %s\n", query_names[i].c_str());
        }
      }
      table.AddRow(row);
    }
    // Baseline time limit, like the paper's TL (>30min there; scaled
    // down with the graphs here). APLUS_BASELINE_TL_SECONDS overrides it
    // so smoke runs can cap the slow baselines at a couple of seconds.
    double time_limit_seconds = 60.0;
    if (const char* env = std::getenv("APLUS_BASELINE_TL_SECONDS")) {
      char* end = nullptr;
      double parsed = std::strtod(env, &end);
      if (end != env && parsed > 0.0) time_limit_seconds = parsed;
    }
    const double kTimeLimitSeconds = time_limit_seconds;
    // Baselines honour the same per-query memory cap the serving engine
    // reads (APLUS_MEM_CAP, bytes; 0/unset = uncapped): the matcher's
    // candidate scratch is charged and "MEM" is reported on exhaustion,
    // so the whole binary respects the cap, not just the A+ rows.
    uint64_t mem_cap_bytes = 0;
    if (const char* env = std::getenv("APLUS_MEM_CAP")) {
      char* end = nullptr;
      long long parsed = std::strtoll(env, &end, 10);
      if (end != env && parsed > 0) mem_cap_bytes = static_cast<uint64_t>(parsed);
    }
    MemoryBudget baseline_budget;
    // TigerGraph-like: flat adjacency; distinct-frontier mode for SQ13.
    {
      std::vector<std::string> row = {"TG-like"};
      for (size_t i = 0; i < queries.size(); ++i) {
        WallTimer timer;
        uint64_t matches;
        if (query_names[i] == "SQ13") {
          // The path-pair expansion the paper conjectures for TigerGraph.
          std::vector<label_t> elabels;
          std::vector<label_t> vlabels;
          const QueryGraph& q = *queries[i];
          vlabels.push_back(q.vertex(0).label);
          for (int e = 0; e < q.num_edges(); ++e) {
            elabels.push_back(q.edge(e).label);
            vlabels.push_back(q.vertex(q.edge(e).to).label);
          }
          matches = tigergraph_like.CountDistinctPathPairs(elabels, vlabels);
          row.push_back(TablePrinter::Seconds(timer.ElapsedSeconds()) + "*");
        } else {
          bool timed_out = false;
          bool exhausted = false;
          baseline_budget.Reset(mem_cap_bytes);
          matches = tigergraph_like.CountMatches(*queries[i], kTimeLimitSeconds, &timed_out,
                                                 &baseline_budget, &exhausted);
          row.push_back(exhausted ? "MEM"
                        : timed_out ? "TL"
                                    : TablePrinter::Seconds(timer.ElapsedSeconds()));
          if (!timed_out && !exhausted && matches != reference_counts[i]) {
            std::printf("WARNING: TG-like count mismatch on %s\n", query_names[i].c_str());
          }
        }
        (void)matches;
      }
      table.AddRow(row);
    }
    // Neo4j-like: linked-record adjacency, binary joins.
    {
      std::vector<std::string> row = {"N4-like"};
      for (size_t i = 0; i < queries.size(); ++i) {
        WallTimer timer;
        bool timed_out = false;
        bool exhausted = false;
        baseline_budget.Reset(mem_cap_bytes);
        uint64_t matches = neo4j_like.CountMatches(*queries[i], kTimeLimitSeconds, &timed_out,
                                                   &baseline_budget, &exhausted);
        row.push_back(exhausted ? "MEM"
                      : timed_out ? "TL"
                                  : TablePrinter::Seconds(timer.ElapsedSeconds()));
        if (!timed_out && !exhausted && matches != reference_counts[i]) {
          std::printf("WARNING: N4-like count mismatch on %s\n", query_names[i].c_str());
        }
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("* distinct-pair path expansion (reports reachable pairs, Section V-E)\n");
  }
  std::printf(
      "\nShape vs paper: AplusDB D beats both baselines on SQ1-SQ3; the\n"
      "TG-like distinct-pair mode wins the long path SQ13, with Dp closing\n"
      "the gap.\n");
  return 0;
}
