#ifndef APLUS_BENCH_BENCH_UTIL_H_
#define APLUS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aplus {

// Plain-text table printer used by every bench binary so the output
// mirrors the paper's tables row for row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  static std::string Seconds(double s);
  static std::string Mb(size_t bytes);
  static std::string Speedup(double base, double other);
  static std::string Count(uint64_t n);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a "=== title ===" banner.
void PrintBanner(const std::string& title);

// Reads a positive integer from the environment, falling back when the
// variable is unset or unparsable. Benches use this for smoke-path knobs
// (iteration counts, sub-workload sizes).
uint64_t IntFromEnv(const char* name, uint64_t fallback);

// Peak resident set size of this process in bytes (the VmHWM line of
// /proc/self/status); 0 where procfs is unavailable. Benches report it
// in their APLUS_BENCH_JSON payloads so memory regressions show up on
// the same trajectory as runtime ones.
uint64_t PeakRssBytes();

}  // namespace aplus

#endif  // APLUS_BENCH_BENCH_UTIL_H_
