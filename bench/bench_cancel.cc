// Cancellation / deadline latency benchmark: how long past its deadline
// (or past a Cancel() from another thread) a heavy enumeration keeps
// running before every worker quiesces and Execute returns. This is the
// robustness counterpart of the throughput benches — the metric is
// tail *time-to-stop*, not rows/s.
//
//   * "deadline_t1" / "deadline_t4": a combinatorial 5-variable chain
//     over an embedded dense clique with a 50 ms deadline, serial and
//     4-worker. Reported: p50/p99 overshoot (Execute wall time minus
//     the deadline).
//   * "cancel_t4": the same query cancelled from a second thread ~25 ms
//     in. Reported: p50/p99 latency from the Cancel() call to Execute
//     returning.
//
// Env knobs: APLUS_CANCEL_REPS (samples per case, default 30),
// APLUS_BENCH_JSON (per-case metrics; `seconds` is the p99 so
// bench_compare.py gates the tail).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "util/logging.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

constexpr int64_t kDeadlineMs = 50;
constexpr const char* kHeavyText =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c)-[r3:E]->(d)-[r4:E]->(e) RETURN b, e";

struct CaseStats {
  std::string name;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int threads = 1;
};

double Percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  if (samples.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

}  // namespace

int main() {
  const int reps = static_cast<int>(IntFromEnv("APLUS_CANCEL_REPS", 30));

  Graph graph;
  PowerLawParams params;
  params.num_vertices = 400;
  params.avg_degree = 4.0;
  params.seed = 29;
  GeneratePowerLawGraph(params, &graph);
  const label_t elabel = graph.catalog().FindEdgeLabel("E");
  // Dense clique: the 5-hop chain explodes combinatorially inside it, so
  // an un-stopped execute would run many orders of magnitude past the
  // deadline — the measured overshoot is all stop-propagation latency.
  constexpr vertex_id_t kClique = 70;
  for (vertex_id_t u = 0; u < kClique; ++u) {
    for (vertex_id_t v = 0; v < kClique; ++v) {
      if (u != v) graph.AddEdge(u, v, elabel);
    }
  }
  Database db(std::move(graph));
  db.BuildPrimaryIndexes();
  Session session(&db);

  PrintBanner("Cancellation latency (" + TablePrinter::Count(db.graph().num_edges()) +
              " edges, " + std::to_string(reps) + " samples/case, deadline " +
              std::to_string(kDeadlineMs) + " ms)");

  PreparedQuery* heavy = session.Prepare(kHeavyText);
  APLUS_CHECK(heavy->ok()) << heavy->error();

  std::vector<CaseStats> cases;
  TablePrinter table({"case", "p50 time-to-stop", "p99 time-to-stop", "notes"});

  // --- Deadline overshoot, serial and 4-worker. ---
  for (int threads : {1, 4}) {
    heavy->set_deadline_millis(kDeadlineMs);
    std::vector<double> overshoot_ms;
    for (int r = 0; r < reps; ++r) {
      WallTimer timer;
      QueryOutcome out = heavy->Execute(nullptr, threads);
      const double elapsed_ms = timer.ElapsedSeconds() * 1e3;
      APLUS_CHECK(out.status == QueryOutcome::Status::kTimeout) << out.error;
      overshoot_ms.push_back(elapsed_ms - static_cast<double>(kDeadlineMs));
    }
    heavy->set_deadline_millis(0);
    CaseStats stats;
    stats.name = "deadline_t" + std::to_string(threads);
    stats.p50_ms = Percentile(overshoot_ms, 0.5);
    stats.p99_ms = Percentile(overshoot_ms, 0.99);
    stats.threads = threads;
    cases.push_back(stats);
    table.AddRow({stats.name, TablePrinter::Seconds(stats.p50_ms / 1e3),
                  TablePrinter::Seconds(stats.p99_ms / 1e3),
                  "overshoot past " + std::to_string(kDeadlineMs) + " ms deadline"});
  }

  // --- Cancel from another thread, 4-worker. ---
  {
    std::vector<double> cancel_ms;
    for (int r = 0; r < reps; ++r) {
      std::atomic<double> cancelled_at{0.0};
      WallTimer timer;
      std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        cancelled_at.store(timer.ElapsedSeconds());
        heavy->Cancel();
      });
      QueryOutcome out = heavy->Execute(nullptr, 4);
      const double returned_at = timer.ElapsedSeconds();
      canceller.join();
      APLUS_CHECK(out.status == QueryOutcome::Status::kCancelled) << out.error;
      cancel_ms.push_back((returned_at - cancelled_at.load()) * 1e3);
    }
    CaseStats stats;
    stats.name = "cancel_t4";
    stats.p50_ms = Percentile(cancel_ms, 0.5);
    stats.p99_ms = Percentile(cancel_ms, 0.99);
    stats.threads = 4;
    cases.push_back(stats);
    table.AddRow({stats.name, TablePrinter::Seconds(stats.p50_ms / 1e3),
                  TablePrinter::Seconds(stats.p99_ms / 1e3), "Cancel() -> Execute returned"});
  }

  table.Print();
  std::printf(
      "\nShape: every worker polls the shared ExecToken on morsel claims and\n"
      "coarse enumeration boundaries, so time-to-stop is the longest single\n"
      "uninterrupted enumeration stretch, independent of total query size.\n"
      "Target: p99 overshoot in the low milliseconds at both thread counts.\n");

  const char* json_path = std::getenv("APLUS_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    APLUS_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"bench_cancel\",\n  \"cases\": {\n");
    for (size_t i = 0; i < cases.size(); ++i) {
      const CaseStats& c = cases[i];
      std::fprintf(f,
                   "    \"%s\": {\"seconds\": %.6f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                   "\"threads\": %d}%s\n",
                   c.name.c_str(), c.p99_ms / 1e3, c.p50_ms, c.p99_ms, c.threads,
                   i + 1 < cases.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("Wrote per-case metrics to %s\n", json_path);
  }
  return 0;
}
