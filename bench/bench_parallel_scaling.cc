// Parallel-scaling benchmark for morsel-driven Plan::Execute: sweeps
// worker counts over intersection-heavy triangle plans on (1) the PR 2
// power-law intersection graph shape and (2) a Table I dataset analogue
// (Brk), reporting per-thread-count runtimes and speedups vs the serial
// executor. Counts are checked identical across thread counts on every
// run, so the bench doubles as a coarse differential.
//
// Env knobs: APLUS_SCALE (graph size multiplier), APLUS_PAR_MAX_THREADS
// (cap on the 1/2/4/8 sweep, e.g. the runner's core count),
// APLUS_PAR_REPS (timed repetitions, best-of), APLUS_BENCH_JSON
// (per-case metrics for scripts/bench_compare.py, keyed by thread
// count: "<workload>_t<k>").

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/power_law_generator.h"
#include "index/primary_index.h"
#include "query/plan.h"
#include "util/logging.h"
#include "util/timer.h"

using namespace aplus;  // NOLINT: bench brevity

namespace {

struct CaseResult {
  std::string workload;
  int threads = 1;
  double seconds = 0.0;
  double t1_seconds = 0.0;
  uint64_t matches = 0;

  double Speedup() const { return seconds > 0.0 ? t1_seconds / seconds : 0.0; }
};

// One workload: a graph + its forward primary index + a triangle plan.
struct Workload {
  std::string name;
  std::unique_ptr<Graph> graph;
  std::unique_ptr<PrimaryIndex> primary;
  std::unique_ptr<QueryGraph> query;
  std::unique_ptr<Plan> plan;
  // Executes per timed repetition: tiny-domain (pinned) plans finish in
  // microseconds each, so one rep times a batch.
  int exec_batch = 1;
};

// When `pin` is a valid vertex the triangle's `a` is bound to it: the
// scan domain collapses to one vertex and Execute(k) takes the
// deep-morselization path (the first EXTEND's entry domain splits
// across the workers instead of scan morsels).
Workload MakeTriangleWorkload(std::string name, std::unique_ptr<Graph> graph,
                              vertex_id_t pin = kInvalidVertex) {
  Workload w;
  w.name = std::move(name);
  w.graph = std::move(graph);
  w.primary = std::make_unique<PrimaryIndex>(w.graph.get(), Direction::kFwd);
  w.primary->Build(IndexConfig::Default());
  label_t elabel = w.graph->catalog().FindEdgeLabel("E");

  w.query = std::make_unique<QueryGraph>();
  int a = w.query->AddVertex("a", kInvalidLabel, pin);
  int b = w.query->AddVertex("b");
  int c = w.query->AddVertex("c");
  w.query->AddEdge(a, b, elabel, "e0");
  w.query->AddEdge(a, c, elabel, "e1");
  w.query->AddEdge(b, c, elabel, "e2");

  auto list = [&](int bound_var, int target_v, int target_e) {
    ListDescriptor desc;
    desc.source = ListDescriptor::Source::kPrimary;
    desc.primary = w.primary.get();
    desc.bound_var = bound_var;
    desc.cats = {elabel};
    desc.target_vertex_var = target_v;
    desc.target_edge_var = target_e;
    desc.nbr_sorted = true;
    return desc;
  };
  PlanBuilder builder(w.graph.get(), w.query.get());
  w.plan = builder.Scan(a)
               .Extend(list(a, b, 0))
               .ExtendIntersect({list(a, c, 1), list(b, c, 2)}, c)
               .Build();
  return w;
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.02);
  int reps = static_cast<int>(IntFromEnv("APLUS_PAR_REPS", 3));
  int max_threads = static_cast<int>(IntFromEnv("APLUS_PAR_MAX_THREADS", 8));
  unsigned cores = std::thread::hardware_concurrency();

  std::vector<Workload> workloads;
  {
    // The PR 2 intersection shape: power-law skew with a moderate
    // degree so triangle enumeration stays seconds-scale per sweep.
    auto graph = std::make_unique<Graph>();
    PowerLawParams params;
    params.num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
    params.avg_degree = 8.0;
    params.preferential_fraction = 0.75;
    GeneratePowerLawGraph(params, graph.get());
    workloads.push_back(MakeTriangleWorkload("triangle_pl", std::move(graph)));
  }
  {
    // Table I analogue (Brk: 685K vertices, avg degree 11.09 at scale 1).
    size_t count = 0;
    const DatasetSpec* specs = TableOneDatasets(&count);
    const DatasetSpec* brk = specs;
    for (size_t i = 0; i < count; ++i) {
      if (specs[i].name == "Brk") brk = &specs[i];
    }
    auto graph = std::make_unique<Graph>();
    GenerateDataset(*brk, std::min(1.0, scale), /*seed=*/1003, graph.get());
    workloads.push_back(MakeTriangleWorkload("triangle_brk", std::move(graph)));
  }
  {
    // Single-vertex-domain triangle: `a` pinned to the highest-degree
    // hub of a fresh power-law graph. The scan offers one morsel, so
    // scaling here measures the deep-morselization path (entry-domain
    // splitting below the scan); each rep times a batch of executes.
    auto graph = std::make_unique<Graph>();
    PowerLawParams params;
    params.num_vertices = std::max<uint64_t>(2000, static_cast<uint64_t>(1000000 * scale));
    params.avg_degree = 8.0;
    params.preferential_fraction = 0.75;
    params.seed = 77;
    GeneratePowerLawGraph(params, graph.get());
    // Pin to the highest-degree vertex whose list stays moderate (<= 256
    // entries): the top hub's quadratic triangle neighbourhood would
    // make the case emission-bound, which is not what this case measures.
    PrimaryIndex degree_probe(graph.get(), Direction::kFwd);
    degree_probe.Build(IndexConfig::Default());
    vertex_id_t hub = 0;
    uint32_t best_len = 0;
    for (vertex_id_t v = 0; v < graph->num_vertices(); ++v) {
      uint32_t len = degree_probe.GetFullList(v).len;
      if (len > best_len && len <= 256) {
        best_len = len;
        hub = v;
      }
    }
    Workload w = MakeTriangleWorkload("pinned", std::move(graph), hub);
    w.exec_batch = 32;
    workloads.push_back(std::move(w));
  }

  std::vector<int> thread_counts;
  for (int k : {1, 2, 4, 8}) {
    if (k <= std::max(1, max_threads)) thread_counts.push_back(k);
  }

  PrintBanner("Morsel-driven parallel scaling (" + std::to_string(cores) + " hardware threads, " +
              std::to_string(reps) + " reps best-of)");
  TablePrinter table({"Workload", "threads", "seconds", "speedup", "matches"});
  std::vector<CaseResult> results;
  bool scaling_ok = true;
  for (Workload& w : workloads) {
    uint64_t t1_matches = 0;
    double t1_seconds = 0.0;
    for (int k : thread_counts) {
      uint64_t matches = w.plan->Execute(k);  // warm-up: replicas + pool threads + scratch
      double best = -1.0;
      for (int r = 0; r < reps; ++r) {
        WallTimer timer;
        uint64_t got = 0;
        for (int e = 0; e < w.exec_batch; ++e) got = w.plan->Execute(k);
        double elapsed = timer.ElapsedSeconds();
        APLUS_CHECK_EQ(got, matches) << w.name << " t" << k << " count drifted across reps";
        if (best < 0.0 || elapsed < best) best = elapsed;
      }
      if (k == 1) {
        t1_matches = matches;
        t1_seconds = best;
      }
      APLUS_CHECK_EQ(matches, t1_matches)
          << w.name << ": Execute(" << k << ") disagrees with the serial count";
      CaseResult r;
      r.workload = w.name;
      r.threads = k;
      r.seconds = best;
      r.t1_seconds = t1_seconds;
      r.matches = matches;
      table.AddRow({w.name + " (" + TablePrinter::Count(w.graph->num_edges()) + " edges)",
                    std::to_string(k), TablePrinter::Seconds(r.seconds),
                    TablePrinter::Speedup(r.t1_seconds, r.seconds),
                    TablePrinter::Count(r.matches)});
      results.push_back(r);
      // Expected scaling on multi-core hosts: >= 0.6x the core count the
      // sweep can actually use (oversubscribed thread counts excluded).
      // The deep-morselized pinned case contends on one entry cursor and
      // re-runs the tiny scan per replica, so it gets a softer 0.5x bar
      // (t4 >= 2x t1).
      if (cores > 1 && static_cast<unsigned>(k) <= cores && k > 1) {
        double target = (w.exec_batch > 1 ? 0.5 : 0.6) * k;
        if (r.Speedup() < target) scaling_ok = false;
      }
    }
  }
  table.Print();
  std::printf(
      "\nShape: morsels carve the leading scan's vertex domain; workers run\n"
      "cloned allocation-free pipelines over a read-only graph, so speedup\n"
      "tracks the core count until the scan domain or memory bandwidth\n"
      "saturates. Single-core hosts time the oversubscribed (correctness)\n"
      "path only.\n");
  if (cores > 1 && !scaling_ok) {
    std::printf("WARNING: scaling below 0.6x cores on this host (see table).\n");
  }

  const char* json_path = std::getenv("APLUS_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    APLUS_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"bench_parallel_scaling\",\n  \"cores\": %u,\n", cores);
    std::fprintf(f, "  \"cases\": {\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(f,
                   "    \"%s_t%d\": {\"seconds\": %.6f, \"threads\": %d, "
                   "\"speedup_vs_t1\": %.3f, \"matches\": %llu}%s\n",
                   r.workload.c_str(), r.threads, r.seconds, r.threads, r.Speedup(),
                   static_cast<unsigned long long>(r.matches), i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("Wrote per-case metrics to %s\n", json_path);
  }
  return 0;
}
