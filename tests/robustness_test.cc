// Query-lifecycle robustness tests: every non-OK QueryOutcome status the
// serving layer can produce (TIMEOUT, CANCELLED, RESOURCE_EXHAUSTED,
// OVERLOADED) is exercised at 1 and 4 worker threads, plus cancellation
// from another thread mid-execute, re-execute-after-failure against a
// fresh-database oracle, and the fault-injection points (util/fault.h)
// at allocation, ingest, delta-merge and pool-dispatch. The invariant
// throughout: a failed execute leaves the Session/Database fully
// reusable — the next execute on the same prepared plan must equal a
// database that never failed.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/database.h"
#include "datagen/power_law_generator.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/memory_tracker.h"
#include "util/rng.h"

namespace aplus {
namespace {

using Status = QueryOutcome::Status;

// Mutex-guarded so the same collector works under parallel execution.
struct RowCollector : RowConsumer {
  std::mutex mu;
  std::vector<std::vector<Value>> rows;
  void OnBatch(const RowBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu);
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < batch.num_columns(); ++c) row.push_back(batch.Cell(c, r));
      rows.push_back(std::move(row));
    }
  }
};

struct RowCounter : RowConsumer {
  std::atomic<uint64_t> rows{0};
  void OnBatch(const RowBatch& batch) override {
    rows.fetch_add(batch.num_rows(), std::memory_order_relaxed);
  }
};

// A power-law graph with an embedded dense clique: the clique gives the
// multi-hop enumeration queries a combinatorial region big enough that a
// 4-thread run still takes long past any deadline we arm.
constexpr uint64_t kBaseVertices = 400;
constexpr uint64_t kCliqueVertices = 70;

Graph MakeGraph() {
  Graph graph;
  PowerLawParams params;
  params.num_vertices = kBaseVertices;
  params.avg_degree = 4.0;
  params.seed = 29;
  GeneratePowerLawGraph(params, &graph);
  label_t elabel = graph.catalog().FindEdgeLabel("E");
  // Dense clique over the first vertices: ~kCliqueVertices^2 extra edges.
  for (vertex_id_t u = 0; u < kCliqueVertices; ++u) {
    for (vertex_id_t v = 0; v < kCliqueVertices; ++v) {
      if (u != v) graph.AddEdge(u, v, elabel);
    }
  }
  return graph;
}

// Long-running enumeration: 4 hops through the clique region explode
// combinatorially (~70^4 partial bindings from any clique source).
constexpr const char* kHeavyText =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c)-[r3:E]->(d)-[r4:E]->(e) RETURN b, e";
// Same shape with a grouped aggregate, so the sink runs the staged
// (merge + Finish) path.
constexpr const char* kHeavyAggText =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c)-[r3:E]->(d) RETURN b, COUNT(*)";
// A quick query every thread can finish comfortably.
constexpr const char* kLightText = "MATCH (a)-[r1:E]->(b) WHERE a.ID = 3 RETURN b";
// ORDER BY over the full 2-hop row set: the sort arena charges the
// memory budget proportionally to the enumerated rows.
constexpr const char* kSortText =
    "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) RETURN a, c ORDER BY c LIMIT 10";

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() {
    db_ = std::make_unique<Database>(MakeGraph());
    db_->BuildPrimaryIndexes();
    session_ = std::make_unique<Session>(db_.get());
  }
  ~RobustnessTest() override { fault::Clear(); }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

// Sanity floor for every partial-progress assertion below: the heavy
// query must genuinely outlast the deadlines we arm. One serial probe
// with a 50 ms deadline has to hit it.
TEST_F(RobustnessTest, HeavyQueryOutlastsDeadline) {
  PreparedQuery* q = session_->Prepare(kHeavyText);
  ASSERT_TRUE(q->ok()) << q->error();
  q->set_deadline_millis(50);
  QueryOutcome out = q->Execute(nullptr, 1);
  ASSERT_EQ(out.status, Status::kTimeout) << out.error;
}

TEST_F(RobustnessTest, TimeoutSerialAndParallel) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PreparedQuery* q = session_->Prepare(kHeavyText);
    ASSERT_TRUE(q->ok()) << q->error();
    q->set_deadline_millis(50);
    RowCounter rc;
    const auto start = std::chrono::steady_clock::now();
    QueryOutcome out = q->Execute(&rc, threads);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(out.status, Status::kTimeout);
    EXPECT_NE(out.error.find("deadline"), std::string::npos) << out.error;
    // Partial progress is reported, not discarded.
    EXPECT_EQ(out.rows, rc.rows.load());
    // Workers must quiesce promptly past the deadline. The acceptance
    // bar is 10 ms of slack; sanitizer / debug builds get a generous
    // multiplier since every poll is instrumented.
#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
    // 10 ms is a scheduling bound, not an engine bound: with ctest
    // running sibling suites in parallel on a single visible core, the
    // whole process can sit descheduled past the deadline through no
    // fault of the stop path. Keep the tight bar where a spare core
    // exists (CI runners have 4).
    const double slack_ms = std::thread::hardware_concurrency() >= 2 ? 10.0 : 100.0;
#else
    const double slack_ms = 500.0;
#endif
    EXPECT_LT(elapsed_ms, 50.0 + slack_ms);
    q->set_deadline_millis(0);  // disarm for the next loop iteration
  }
}

// A deadline landing during the Finish cascade of a staged query must
// produce kTimeout with no (or a partial) row set — never a silently
// wrong aggregate.
TEST_F(RobustnessTest, TimeoutStagedQuery) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PreparedQuery* q = session_->Prepare(kHeavyAggText);
    ASSERT_TRUE(q->ok()) << q->error();
    q->set_deadline_millis(40);
    RowCollector rows;
    QueryOutcome out = q->Execute(&rows, threads);
    ASSERT_EQ(out.status, Status::kTimeout) << out.error;
    EXPECT_EQ(out.rows, 0u);  // enumeration was cut short: no merge ran
    q->set_deadline_millis(0);
  }
}

TEST_F(RobustnessTest, SessionDefaultDeadlineAndEnvFallback) {
  session_->set_default_deadline_millis(50);
  PreparedQuery* q = session_->Prepare(kHeavyText);
  ASSERT_TRUE(q->ok()) << q->error();
  EXPECT_EQ(q->deadline_millis(), 50);
  QueryOutcome out = q->Execute(nullptr, 1);
  EXPECT_EQ(out.status, Status::kTimeout);

  // Env fallback: only queries with no explicit/session deadline read it.
  setenv("APLUS_QUERY_TIMEOUT_MS", "50", 1);
  Session fresh(db_.get());
  PreparedQuery* q2 = fresh.Prepare(kHeavyText);
  ASSERT_TRUE(q2->ok());
  EXPECT_EQ(fresh.Execute(kHeavyText).status, Status::kTimeout);
  unsetenv("APLUS_QUERY_TIMEOUT_MS");
  // Light queries under the same knob still succeed.
  setenv("APLUS_QUERY_TIMEOUT_MS", "10000", 1);
  EXPECT_TRUE(fresh.Execute(kLightText).ok());
  unsetenv("APLUS_QUERY_TIMEOUT_MS");
  EXPECT_EQ(q2->deadline_millis(), -1);
}

TEST_F(RobustnessTest, CancelFromAnotherThread) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PreparedQuery* q = session_->Prepare(kHeavyText);
    ASSERT_TRUE(q->ok()) << q->error();
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      q->Cancel();  // documented as the one thread-safe member
    });
    QueryOutcome out = q->Execute(nullptr, threads);
    canceller.join();
    EXPECT_EQ(out.status, Status::kCancelled);
    EXPECT_NE(out.error.find("cancelled"), std::string::npos) << out.error;
  }
}

// A Cancel with no execute in flight applies to the next Execute.
TEST_F(RobustnessTest, CancelBeforeExecute) {
  PreparedQuery* q = session_->Prepare(kHeavyText);
  ASSERT_TRUE(q->ok());
  q->Cancel();
  EXPECT_EQ(q->Execute(nullptr, 1).status, Status::kCancelled);
  // The token resets per execute, so the one after runs (until its
  // deadline, here).
  q->set_deadline_millis(50);
  EXPECT_EQ(q->Execute(nullptr, 1).status, Status::kTimeout);
}

TEST_F(RobustnessTest, ResourceExhaustedGroupBy) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PreparedQuery* q = session_->Prepare("MATCH (a)-[r1:E]->(b) RETURN a, COUNT(*)");
    ASSERT_TRUE(q->ok()) << q->error();
    q->set_mem_cap_bytes(256);
    RowCollector rows;
    QueryOutcome out = q->Execute(&rows, threads);
    EXPECT_EQ(out.status, Status::kResourceExhausted);
    EXPECT_NE(out.error.find("set_mem_cap_bytes"), std::string::npos) << out.error;
    EXPECT_EQ(out.rows, 0u);
    EXPECT_TRUE(rows.rows.empty());
    // Lifting the cap on the same prepared plan recovers fully.
    q->set_mem_cap_bytes(0);
    QueryOutcome ok = q->Execute(nullptr, threads);
    EXPECT_TRUE(ok.ok()) << ok.error;
    EXPECT_GT(ok.rows, 0u);
  }
}

TEST_F(RobustnessTest, ResourceExhaustedSort) {
  PreparedQuery* q = session_->Prepare(kSortText);
  ASSERT_TRUE(q->ok()) << q->error();
  q->set_mem_cap_bytes(64 << 10);  // far below the 2-hop row volume
  QueryOutcome out = q->Execute(nullptr, 1);
  EXPECT_EQ(out.status, Status::kResourceExhausted) << out.error;
  q->set_mem_cap_bytes(0);
  EXPECT_TRUE(q->Execute(nullptr, 1).ok());
}

TEST_F(RobustnessTest, ResourceExhaustedEnvCapAndProcessCeiling) {
  // APLUS_MEM_CAP applies when no explicit cap is set.
  setenv("APLUS_MEM_CAP", "256", 1);
  QueryOutcome out = session_->Execute("MATCH (a)-[r1:E]->(b) RETURN b, COUNT(*)");
  EXPECT_EQ(out.status, Status::kResourceExhausted);
  EXPECT_NE(out.error.find("APLUS_MEM_CAP"), std::string::npos) << out.error;
  unsetenv("APLUS_MEM_CAP");

  // The process-wide ceiling trips even when the per-query cap is absent.
  setenv("APLUS_MEM_CAP_TOTAL", "256", 1);
  out = session_->Execute("MATCH (a)-[r1:E]->(b) RETURN b, COUNT(*)");
  EXPECT_EQ(out.status, Status::kResourceExhausted);
  unsetenv("APLUS_MEM_CAP_TOTAL");

  // With both unset the same cached plan runs clean again. The retained
  // arena charges stay attributed to this query's budget until its next
  // reset (they really are resident), never more than what it used.
  EXPECT_TRUE(session_->Execute("MATCH (a)-[r1:E]->(b) RETURN b, COUNT(*)").ok());
  EXPECT_GT(MemoryBudget::ProcessUsed(), 0u);
  session_.reset();  // destroys the cached plans: accounting drains
  EXPECT_EQ(MemoryBudget::ProcessUsed(), 0u);
}

TEST_F(RobustnessTest, OverloadedRejectAndQueueTimeout) {
  // One slot, zero queue: a second concurrent execute is rejected.
  db_->admission().Configure({/*max_concurrent=*/1, /*max_queue=*/0, /*queue_timeout_ms=*/0});
  PreparedQuery* heavy = session_->Prepare(kHeavyText);
  ASSERT_TRUE(heavy->ok());
  heavy->set_deadline_millis(400);
  std::atomic<bool> started{false};
  std::thread runner([&] {
    started.store(true);
    heavy->Execute(nullptr, 1);
  });
  while (!started.load() || db_->admission().running() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Session other(db_.get());
  QueryOutcome rejected = other.Execute(kLightText);
  EXPECT_EQ(rejected.status, Status::kOverloaded);
  EXPECT_NE(rejected.error.find("APLUS_MAX_CONCURRENT"), std::string::npos) << rejected.error;
  runner.join();

  // One slot, queue of 4 with a 30 ms wait: a waiter behind a long query
  // times out in the queue instead of blocking forever.
  db_->admission().Configure({1, 4, 30});
  std::thread runner2([&] { heavy->Execute(nullptr, 1); });
  while (db_->admission().running() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  QueryOutcome timed_out = other.Execute(kLightText);
  EXPECT_EQ(timed_out.status, Status::kOverloaded);
  EXPECT_NE(timed_out.error.find("timed out"), std::string::npos) << timed_out.error;
  runner2.join();

  // Disabled again: everything admits.
  db_->admission().Configure({0, 0, 0});
  EXPECT_TRUE(other.Execute(kLightText).ok());
  EXPECT_EQ(db_->admission().running(), 0);
  EXPECT_EQ(db_->admission().queued(), 0);
}

TEST_F(RobustnessTest, AdmissionQueueAdmitsWhenSlotFrees) {
  db_->admission().Configure({1, 4, 5000});
  PreparedQuery* heavy = session_->Prepare(kHeavyText);
  ASSERT_TRUE(heavy->ok());
  heavy->set_deadline_millis(100);
  std::thread runner([&] { heavy->Execute(nullptr, 1); });
  while (db_->admission().running() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queued behind a 100 ms query with a 5 s allowance: must succeed.
  Session other(db_.get());
  EXPECT_TRUE(other.Execute(kLightText).ok());
  runner.join();
  db_->admission().Configure({0, 0, 0});
}

// After every failure mode, the same session + prepared plan must
// produce exactly the rows of a fresh database that never failed.
TEST_F(RobustnessTest, ReExecuteAfterFailureMatchesFreshDatabase) {
  constexpr const char* kProbe = "MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = 5 RETURN b, c";
  // Fresh-database oracle.
  Database fresh_db(MakeGraph());
  fresh_db.BuildPrimaryIndexes();
  Session fresh_session(&fresh_db);
  RowCollector oracle;
  QueryOutcome oracle_out = fresh_session.Execute(kProbe, &oracle);
  ASSERT_TRUE(oracle_out.ok()) << oracle_out.error;
  ASSERT_GT(oracle.rows.size(), 0u);

  // Failure gauntlet on the shared db: timeout, cancel, exhaustion.
  PreparedQuery* heavy = session_->Prepare(kHeavyText);
  heavy->set_deadline_millis(40);
  EXPECT_EQ(heavy->Execute(nullptr, 4).status, Status::kTimeout);
  heavy->set_deadline_millis(0);
  heavy->Cancel();
  EXPECT_EQ(heavy->Execute(nullptr, 1).status, Status::kCancelled);
  PreparedQuery* agg = session_->Prepare("MATCH (a)-[r1:E]->(b) RETURN a, COUNT(*)");
  agg->set_mem_cap_bytes(256);
  EXPECT_EQ(agg->Execute(nullptr, 1).status, Status::kResourceExhausted);
  agg->set_mem_cap_bytes(0);

  for (int threads : {1, 4}) {
    RowCollector got;
    QueryOutcome out = session_->Execute(kProbe, &got, threads);
    ASSERT_TRUE(out.ok()) << out.error;
    ASSERT_EQ(got.rows.size(), oracle.rows.size());
    std::vector<std::pair<int64_t, int64_t>> a, b;
    for (const auto& row : oracle.rows) a.emplace_back(row[0].AsInt64(), row[1].AsInt64());
    for (const auto& row : got.rows) b.emplace_back(row[0].AsInt64(), row[1].AsInt64());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

// The happy path with a deadline and a memory cap armed must stay
// allocation-free in steady state — the whole point of the atomic
// token/budget design. Asserted indirectly: zero_alloc_test owns the
// counting allocator; here we assert the cheap observable instead, that
// repeated executes return identical results with the governor armed.
TEST_F(RobustnessTest, GovernorArmedSteadyStateStable) {
  PreparedQuery* q = session_->Prepare(kLightText);
  ASSERT_TRUE(q->ok());
  q->set_deadline_millis(10000);
  q->set_mem_cap_bytes(64 << 20);
  RowCounter first;
  ASSERT_TRUE(q->Execute(&first, 1).ok());
  for (int i = 0; i < 50; ++i) {
    RowCounter rc;
    QueryOutcome out = q->Execute(&rc, 1);
    ASSERT_TRUE(out.ok()) << out.error;
    ASSERT_EQ(rc.rows.load(), first.rows.load());
  }
}

// --- Fault injection ---

TEST_F(RobustnessTest, FaultSpecParsing) {
  EXPECT_TRUE(fault::SetSpec("alloc"));
  EXPECT_TRUE(fault::SetSpec("alloc:0.5,delta_full:@3"));
  EXPECT_TRUE(fault::SetSpec(""));
  EXPECT_FALSE(fault::SetSpec("alloc:nope"));
  EXPECT_FALSE(fault::SetSpec("alloc:@0"));
  EXPECT_FALSE(fault::SetSpec("alloc:1.5"));
  fault::Clear();
  EXPECT_FALSE(fault::ShouldFail(fault::kAlloc));
}

TEST_F(RobustnessTest, AllocFaultSurfacesAsResourceExhaustedThenRecovers) {
  PreparedQuery* q = session_->Prepare("MATCH (a)-[r1:E]->(b) RETURN a, COUNT(*)");
  ASSERT_TRUE(q->ok());
  // Make the budget active so Charge() is consulted, then fail its first
  // allocation check.
  q->set_mem_cap_bytes(1 << 30);
  ASSERT_TRUE(fault::SetSpec("alloc:@1"));
  QueryOutcome out = q->Execute(nullptr, 1);
  EXPECT_EQ(out.status, Status::kResourceExhausted) << out.error;
  EXPECT_GE(fault::Hits(fault::kAlloc), 1u);
  fault::Clear();
  // Same plan, clean re-execute.
  QueryOutcome ok = q->Execute(nullptr, 1);
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_GT(ok.rows, 0u);
}

// The pool-dispatch fault degrades parallel runs to inline sequential
// execution; results must be identical to the truly parallel run.
TEST_F(RobustnessTest, PoolDispatchFaultPreservesResults) {
  PreparedQuery* q =
      session_->Prepare("MATCH (a)-[r1:E]->(b)-[r2:E]->(c) WHERE a.ID = 2 RETURN b, c");
  ASSERT_TRUE(q->ok());
  RowCounter parallel_rc;
  QueryOutcome parallel_out = q->Execute(&parallel_rc, 4);
  ASSERT_TRUE(parallel_out.ok()) << parallel_out.error;
  ASSERT_TRUE(fault::SetSpec("pool_dispatch"));
  RowCounter degraded_rc;
  QueryOutcome degraded_out = q->Execute(&degraded_rc, 4);
  fault::Clear();
  ASSERT_TRUE(degraded_out.ok()) << degraded_out.error;
  EXPECT_EQ(degraded_out.count, parallel_out.count);
  EXPECT_EQ(degraded_rc.rows.load(), parallel_rc.rows.load());
  EXPECT_GE(fault::Hits(fault::kPoolDispatch), 0u);  // counters reset by Clear
}

// --- Concurrent ingest: typed capacity errors + fault points ---

class IngestRobustnessTest : public ::testing::Test {
 protected:
  IngestRobustnessTest() {
    Graph graph;
    PowerLawParams params;
    params.num_vertices = 300;
    params.avg_degree = 4.0;
    params.seed = 41;
    GeneratePowerLawGraph(params, &graph);
    elabel_ = graph.catalog().FindEdgeLabel("E");
    db_ = std::make_unique<Database>(std::move(graph));
    db_->BuildPrimaryIndexes();
  }
  ~IngestRobustnessTest() override { fault::Clear(); }

  uint64_t CountOneHop(vertex_id_t src) {
    Session session(db_.get());
    PreparedQuery* q = session.Prepare("MATCH (a)-[r:E]->(b) WHERE a.ID = $src RETURN b");
    q->Bind("src", Value::Int64(static_cast<int64_t>(src)));
    QueryOutcome out = q->Execute();
    EXPECT_TRUE(out.ok()) << out.error;
    return out.rows;
  }

  label_t elabel_ = kInvalidLabel;
  std::unique_ptr<Database> db_;
};

TEST_F(IngestRobustnessTest, CapacityOverrunIsTypedErrorAndEndFlushesCleanly) {
  const uint64_t base = db_->graph().num_edges();
  ConcurrentIngestOptions options;
  options.max_vertices = db_->graph().num_vertices();
  options.max_edges = base + 2;  // room for exactly two inserts
  db_->BeginConcurrentIngest(options);

  const uint64_t before = CountOneHop(7);
  for (int i = 0; i < 2; ++i) {
    edge_id_t e = db_->graph().AddEdge(7, static_cast<vertex_id_t>(20 + i), elabel_);
    ASSERT_NE(e, kInvalidEdge);
    db_->maintainer().OnEdgeInserted(e);
  }
  // Third insert overruns the reservation: typed error, no abort, and
  // the maintainer is (correctly) never told about it.
  EXPECT_EQ(db_->graph().AddEdge(7, 50, elabel_), kInvalidEdge);
  EXPECT_EQ(db_->graph().num_edges(), base + 2);

  db_->EndConcurrentIngest();
  // Indexes are exact over the edges that did insert.
  EXPECT_EQ(CountOneHop(7), before + 2);
}

TEST_F(IngestRobustnessTest, VertexCapacityOverrunIsTypedError) {
  ConcurrentIngestOptions options;
  options.max_vertices = db_->graph().num_vertices();  // zero headroom
  options.max_edges = db_->graph().num_edges() + 4;
  db_->BeginConcurrentIngest(options);
  EXPECT_EQ(db_->graph().AddVertex(kInvalidLabel), kInvalidVertex);
  db_->EndConcurrentIngest();
}

TEST_F(IngestRobustnessTest, IngestFaultPointSkipsExactlyOneEdge) {
  const uint64_t base = db_->graph().num_edges();
  ConcurrentIngestOptions options;
  options.max_vertices = db_->graph().num_vertices();
  options.max_edges = base + 16;
  db_->BeginConcurrentIngest(options);
  ASSERT_TRUE(fault::SetSpec("ingest_add_edge:@3"));
  uint64_t inserted = 0;
  for (int i = 0; i < 8; ++i) {
    edge_id_t e = db_->graph().AddEdge(9, static_cast<vertex_id_t>(30 + i), elabel_);
    if (e == kInvalidEdge) continue;  // the injected failure
    db_->maintainer().OnEdgeInserted(e);
    ++inserted;
  }
  fault::Clear();
  EXPECT_EQ(inserted, 7u);
  db_->EndConcurrentIngest();
  EXPECT_EQ(db_->graph().num_edges(), base + 7);
}

// delta_full forces the inline-merge path on every insert; the indexes
// must still be exact after the phase.
TEST_F(IngestRobustnessTest, DeltaFullFaultKeepsIndexesExact) {
  const uint64_t before = CountOneHop(11);
  ConcurrentIngestOptions options;
  options.max_vertices = db_->graph().num_vertices();
  options.max_edges = db_->graph().num_edges() + 32;
  options.background_merge = false;  // merge inline on the ingest thread
  db_->BeginConcurrentIngest(options);
  ASSERT_TRUE(fault::SetSpec("delta_full:0.5"));
  for (int i = 0; i < 32; ++i) {
    edge_id_t e =
        db_->graph().AddEdge(11, static_cast<vertex_id_t>(40 + (i % 20)), elabel_);
    ASSERT_NE(e, kInvalidEdge);
    db_->maintainer().OnEdgeInserted(e);
  }
  fault::Clear();
  db_->EndConcurrentIngest();
  EXPECT_EQ(CountOneHop(11), before + 32);
}

}  // namespace
}  // namespace aplus
